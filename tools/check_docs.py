#!/usr/bin/env python
"""Documentation reference checker — keeps README/docs honest.

Three classes of rot this catches, run over ``README.md`` and ``docs/``:

* **relative links**: every ``[text](path)`` markdown link that isn't an
  absolute URL must resolve to a file or directory in the repository;
* **dotted references**: every ```` `repro.x.y` ```` token must import —
  either as a module, or as an attribute reachable from its longest
  importable module prefix (so ``repro.serve.QueryBatcher`` and
  ``repro.io.report.run_report`` both count);
* **module commands**: every ``python -m repro.x`` command must name an
  importable module.

Used by CI (``python tools/check_docs.py``) and by ``tests/test_docs.py``.
Exits non-zero listing every broken reference.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: the documentation set under contract
DOC_FILES = ("README.md", "docs/architecture.md", "docs/serving.md")

_LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_DOTTED_RE = re.compile(r"`(repro(?:\.\w+)+)`")
_MODULE_CMD_RE = re.compile(r"python -m (repro(?:\.\w+)*)")


def _display(path: Path) -> str:
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def iter_relative_links(text: str):
    """Relative link targets in markdown (URLs and pure anchors skipped)."""
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


def check_links(path: Path) -> list[str]:
    """Broken relative links in one markdown file."""
    errors = []
    for target in iter_relative_links(path.read_text()):
        if not (path.parent / target).exists():
            errors.append(f"{_display(path)}: broken link -> {target}")
    return errors


def resolve_dotted(ref: str) -> bool:
    """True when ``ref`` is an importable module or a reachable attribute."""
    parts = ref.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def check_dotted_refs(path: Path) -> list[str]:
    """Dotted ``repro.*`` references that no longer import."""
    errors = []
    text = path.read_text()
    for ref in sorted({*_DOTTED_RE.findall(text), *_MODULE_CMD_RE.findall(text)}):
        if not resolve_dotted(ref):
            errors.append(f"{_display(path)}: unresolvable reference -> {ref}")
    return errors


def check_file(path: Path) -> list[str]:
    return check_links(path) + check_dotted_refs(path)


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    errors: list[str] = []
    for name in DOC_FILES:
        path = REPO_ROOT / name
        if not path.exists():
            errors.append(f"missing documentation file: {name}")
            continue
        errors.extend(check_file(path))
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} broken documentation reference(s)")
        return 1
    print(f"docs OK: {len(DOC_FILES)} files, all links and repro.* references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
