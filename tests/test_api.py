"""Tests for the top-level package API and global configuration."""

import numpy as np

import repro
from repro.config import DEFAULTS, ReproConfig
from repro.core.align_phase import AlignmentPhase, EDGE_DTYPE
from repro.core.costing import CostModel
from repro.core.params import PastisParams
from repro.mpi.communicator import SimCommunicator
from repro.sparse.coo import CooMatrix
from repro.sparse.semiring import OVERLAP_DTYPE
from repro.sequences.synthetic import synthetic_dataset


def test_package_exports():
    assert repro.__version__
    assert "protein similarity search" in repro.PAPER
    for name in (
        "SequenceSet",
        "synthetic_dataset",
        "read_fasta",
        "write_fasta",
        "PastisParams",
        "PastisPipeline",
        "SearchResult",
        "SimilarityGraph",
    ):
        assert hasattr(repro, name), name


def test_defaults_match_paper_parameters():
    assert DEFAULTS.kmer_length == 6
    assert DEFAULTS.gap_open == 11
    assert DEFAULTS.gap_extend == 2
    assert DEFAULTS.common_kmer_threshold == 2
    assert DEFAULTS.ani_threshold == 0.30
    assert DEFAULTS.coverage_threshold == 0.70
    # frozen dataclass: defaults cannot be mutated accidentally
    try:
        DEFAULTS.kmer_length = 7  # type: ignore[misc]
        mutated = True
    except AttributeError:
        mutated = False
    assert not mutated
    assert isinstance(ReproConfig(), ReproConfig)


def test_default_spgemm_backend_is_wired_and_registered():
    from repro.core.params import PastisParams
    from repro.sparse import DEFAULT_OVERLAP_KERNEL, available_kernels

    assert DEFAULTS.spgemm_backend in available_kernels()
    # one source of truth: registry overlap default -> config -> params default
    assert DEFAULTS.spgemm_backend == DEFAULT_OVERLAP_KERNEL == "gustavson"
    assert PastisParams().spgemm_backend == DEFAULTS.spgemm_backend


def _candidates_for(pairs, n, with_seeds):
    rows = np.array([p[0] for p in pairs], dtype=np.int64)
    cols = np.array([p[1] for p in pairs], dtype=np.int64)
    if with_seeds:
        values = np.zeros(len(pairs), dtype=OVERLAP_DTYPE)
        values["count"] = 2
        values["first_pos_a"] = 0
        values["first_pos_b"] = 0
        values["second_pos_a"] = -1
        values["second_pos_b"] = -1
    else:
        values = np.full(len(pairs), 2, dtype=np.int64)
    return CooMatrix((n, n), rows, cols, values)


def test_alignment_phase_full_sw_and_seed_extend_agree_on_easy_pairs():
    seqs = synthetic_dataset(n_sequences=20, seed=31)
    comm = SimCommunicator(4)
    pairs = [(0, 1), (2, 3), (4, 5)]
    per_rank = [
        _candidates_for(pairs, len(seqs), with_seeds=True),
        CooMatrix.empty((len(seqs), len(seqs)), dtype=OVERLAP_DTYPE),
        CooMatrix.empty((len(seqs), len(seqs)), dtype=OVERLAP_DTYPE),
        CooMatrix.empty((len(seqs), len(seqs)), dtype=OVERLAP_DTYPE),
    ]
    full = AlignmentPhase(
        seqs, PastisParams(nodes=4, common_kmer_threshold=1), comm, CostModel()
    ).align_block(per_rank)
    assert full.pairs_aligned == 3
    assert full.pairs_aligned_per_rank.tolist() == [3, 0, 0, 0]
    assert full.cells > 0
    assert full.edges.dtype == EDGE_DTYPE

    comm2 = SimCommunicator(4)
    seed_mode = AlignmentPhase(
        seqs,
        PastisParams(nodes=4, common_kmer_threshold=1, alignment_mode="seed_extend"),
        comm2,
        CostModel(),
    ).align_block(per_rank)
    assert seed_mode.pairs_aligned == 3
    # x-drop ungapped extension cannot admit more pairs than full Smith-Waterman
    assert seed_mode.edges.size <= full.edges.size


def test_alignment_phase_empty_block():
    seqs = synthetic_dataset(n_sequences=10, seed=32)
    comm = SimCommunicator(4)
    phase = AlignmentPhase(seqs, PastisParams(nodes=4), comm, CostModel())
    empty = [CooMatrix.empty((10, 10), dtype=OVERLAP_DTYPE) for _ in range(4)]
    output = phase.align_block(empty)
    assert output.pairs_aligned == 0
    assert output.edges.size == 0
    assert output.kernel_seconds == 0.0
