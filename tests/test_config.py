"""Calibration feedback loop: measured defaults round-trip through config.

``bench_auto_threshold.py --write-default`` persists the measured best
``auto_compression_threshold`` crossover via
:func:`repro.config.write_calibration`; :data:`repro.config.DEFAULTS` (and
therefore ``PastisParams``) rebuilds from it at import.  These tests pin the
round-trip and the validation that keeps a corrupt calibration from
silently steering every run.
"""

from __future__ import annotations

import json

import pytest

from repro import config
from repro.core.params import PastisParams
from repro.sparse.kernels import AUTO_COMPRESSION_THRESHOLD


def test_written_calibration_round_trips(tmp_path):
    path = tmp_path / "calibration.json"
    written = config.write_calibration({"auto_compression_threshold": 3.25}, path)
    assert written == path
    assert config.load_calibration(path) == {"auto_compression_threshold": 3.25}
    defaults = config.calibrated_defaults(path)
    assert defaults.auto_compression_threshold == 3.25
    # uncalibrated fields keep their shipped values
    assert defaults.spgemm_backend == config.ReproConfig().spgemm_backend


def test_missing_calibration_uses_registry_constant(tmp_path):
    defaults = config.calibrated_defaults(tmp_path / "nope.json")
    assert defaults.auto_compression_threshold == AUTO_COMPRESSION_THRESHOLD


def test_params_default_follows_defaults_singleton():
    assert PastisParams().auto_compression_threshold == (
        config.DEFAULTS.auto_compression_threshold
    )


def test_unknown_calibration_field_rejected(tmp_path):
    with pytest.raises(ValueError, match="unknown calibration field"):
        config.write_calibration({"gap_open": 5}, tmp_path / "c.json")
    path = tmp_path / "c.json"
    path.write_text(json.dumps({"mystery_knob": 1.0}))
    with pytest.raises(ValueError, match="unknown calibration field"):
        config.load_calibration(path)


def test_invalid_calibration_value_rejected(tmp_path):
    path = tmp_path / "c.json"
    with pytest.raises(ValueError, match="invalid value"):
        config.write_calibration({"auto_compression_threshold": 0.0}, path)
    path.write_text(json.dumps({"auto_compression_threshold": -2.0}))
    with pytest.raises(ValueError, match="invalid value"):
        config.load_calibration(path)
    # JSON booleans are ints in Python; they must not sneak in as 1.0/0.0
    path.write_text(json.dumps({"auto_compression_threshold": True}))
    with pytest.raises(ValueError, match="invalid value"):
        config.load_calibration(path)
    path.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(ValueError, match="JSON object"):
        config.load_calibration(path)


def test_calibrated_threshold_reaches_pipeline_params(tmp_path):
    """The full feedback path: write -> load -> ReproConfig -> PastisParams."""
    path = tmp_path / "calibration.json"
    config.write_calibration({"auto_compression_threshold": 1.75}, path)
    defaults = config.calibrated_defaults(path)
    params = PastisParams(auto_compression_threshold=defaults.auto_compression_threshold)
    assert params.auto_compression_threshold == 1.75


def test_failed_calibration_write_leaves_no_tmp_litter(tmp_path, monkeypatch):
    """Regression: a failure between writing the temp file and renaming it
    (full disk, permission error) used to strand ``calibration.json.tmp``
    next to the target; the hardened writer unlinks it before re-raising."""
    import os

    path = tmp_path / "calibration.json"
    config.write_calibration({"auto_compression_threshold": 2.0}, path)

    def failing_replace(src, dst):
        raise OSError("simulated rename failure")

    monkeypatch.setattr(os, "replace", failing_replace)
    with pytest.raises(OSError, match="simulated rename failure"):
        config.write_calibration({"auto_compression_threshold": 9.0}, path)
    monkeypatch.undo()

    assert list(tmp_path.iterdir()) == [path]  # no .tmp stranded
    # the previous contents survived the failed overwrite intact
    assert config.load_calibration(path) == {"auto_compression_threshold": 2.0}


def test_atomic_write_bytes_round_trip_and_cleanup(tmp_path, monkeypatch):
    import os

    target = tmp_path / "blob.bin"
    assert config.atomic_write_bytes(target, b"payload") == target
    assert target.read_bytes() == b"payload"
    assert list(tmp_path.iterdir()) == [target]

    monkeypatch.setattr(os, "replace", lambda s, d: (_ for _ in ()).throw(OSError("boom")))
    with pytest.raises(OSError, match="boom"):
        config.atomic_write_bytes(target, b"new payload")
    assert target.read_bytes() == b"payload"
    assert list(tmp_path.iterdir()) == [target]
