"""The documentation set stays truthful: links resolve, references import.

Runs the same checks CI's docs job runs (``tools/check_docs.py``) from
inside the test suite, so a rename that orphans a ``repro.x.y`` reference
or a moved file that breaks a relative link fails tier-1 locally too.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_docs = _load_checker()


def test_documentation_set_exists():
    for name in check_docs.DOC_FILES:
        assert (REPO_ROOT / name).exists(), f"missing documentation file: {name}"


@pytest.mark.parametrize("name", check_docs.DOC_FILES)
def test_links_resolve(name):
    errors = check_docs.check_links(REPO_ROOT / name)
    assert not errors, "\n".join(errors)


@pytest.mark.parametrize("name", check_docs.DOC_FILES)
def test_dotted_references_import(name):
    errors = check_docs.check_dotted_refs(REPO_ROOT / name)
    assert not errors, "\n".join(errors)


def test_checker_catches_rot(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text(
        "See [missing](./nowhere.md) and `repro.not_a_module.at_all` "
        "plus `python -m repro.also_missing`.\n"
    )
    errors = check_docs.check_file(bad)
    assert len(errors) == 3
    assert any("nowhere.md" in e for e in errors)
    assert any("repro.not_a_module.at_all" in e for e in errors)
    assert any("repro.also_missing" in e for e in errors)


def test_readme_documents_both_workloads():
    text = (REPO_ROOT / "README.md").read_text()
    assert "all-vs-all" in text
    assert "repro.serve" in text
    assert "docs/serving.md" in text and "docs/architecture.md" in text
