"""The serve contract: query-mode runs are row restrictions of all-vs-all.

For any query subset Q of the database, ``mode="query"`` with
``query_dedup=True`` must be *bit-identical* to the corresponding rows of
the all-vs-all run over the database — per-block records, edges, SpGEMM
stats — across schedulers and kernels.  These tests pin that contract plus
the serving semantics around it (novel queries, dedup-off neighborhoods,
cache warm replay).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.sequences.sequence import SequenceSet
from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset
from repro.serve import build_index

N_DB = 24


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    """Database sequences, base params, and a built index."""
    sequences = synthetic_dataset(
        config=SyntheticDatasetConfig(
            n_sequences=N_DB, seed=5, family_fraction=0.8, mean_family_size=4.0
        )
    )
    params = PastisParams(
        kmer_length=4, nodes=4, num_blocks=4, common_kmer_threshold=1, cache_dir=None
    )
    index_dir = tmp_path_factory.mktemp("serve-index")
    build_index(sequences, params, index_dir)
    return sequences, params, str(index_dir)


def _assert_records_identical(query_records, base_records):
    base = {(r.block_row, r.block_col): r for r in base_records}
    assert len(query_records) > 0
    for rec in query_records:
        ref = base[(rec.block_row, rec.block_col)]
        assert rec.kind == ref.kind
        assert rec.candidates == ref.candidates
        assert rec.aligned_pairs == ref.aligned_pairs
        assert rec.similar_pairs == ref.similar_pairs
        assert rec.block_bytes == ref.block_bytes
        np.testing.assert_array_equal(rec.sparse_seconds_per_rank, ref.sparse_seconds_per_rank)
        np.testing.assert_array_equal(rec.align_seconds_per_rank, ref.align_seconds_per_rank)
        np.testing.assert_array_equal(rec.pairs_per_rank, ref.pairs_per_rank)
        np.testing.assert_array_equal(rec.cells_per_rank, ref.cells_per_rank)


@pytest.mark.parametrize("scheduler", ["serial", "threaded"])
@pytest.mark.parametrize("backend", ["expand", "gustavson"])
def test_whole_db_query_bit_identical_to_all_vs_all(db, scheduler, backend):
    """Q = the whole database: the query run IS the all-vs-all run."""
    sequences, params, index_dir = db
    params = params.replace(scheduler=scheduler, spgemm_backend=backend)
    base = PastisPipeline(params).run(sequences)
    query = PastisPipeline(
        params.replace(mode="query", index_dir=index_dir, query_dedup=True)
    ).run(sequences)

    np.testing.assert_array_equal(
        base.similarity_graph.edges, query.similarity_graph.edges
    )
    _assert_records_identical(query.block_records, base.block_records)
    assert query.stats.spgemm_flops == base.stats.spgemm_flops
    assert query.stats.candidates_discovered == base.stats.candidates_discovered
    assert query.stats.alignments_performed == base.stats.alignments_performed
    assert query.stats.similar_pairs == base.stats.similar_pairs
    assert query.stats.alignment_cells == base.stats.alignment_cells
    np.testing.assert_array_equal(query.query_rows, np.arange(N_DB))


@pytest.mark.parametrize("load_balancing", ["index", "triangularity"])
def test_block_row_subset_restriction(db, load_balancing):
    """Q = one block row: per-block records and edges restrict exactly."""
    sequences, params, index_dir = db
    params = params.replace(load_balancing=load_balancing)
    base = PastisPipeline(params).run(sequences)
    lo, hi = N_DB // 2, N_DB  # block row 1 of the 2x2 schedule
    query = PastisPipeline(
        params.replace(mode="query", index_dir=index_dir, query_dedup=True)
    ).run(sequences.subset(np.arange(lo, hi)))

    # only block rows containing query rows are computed
    assert {rec.block_row for rec in query.block_records} == {1}
    _assert_records_identical(query.block_records, base.block_records)

    # the query edge set is exactly the all-vs-all edges whose scheme-kept
    # coordinate falls in Q (recomputed from first principles per scheme)
    edges = base.similarity_graph.edges
    if load_balancing == "index":
        # parity rule: equal parity keeps (hi, lo) — kept row is the max —
        # opposite parity keeps (lo, hi) — kept row is the min
        def kept_row(a, b):
            a, b = min(a, b), max(a, b)
            return b if (a % 2) == (b % 2) else a
    else:
        # triangularity keeps the strictly-upper element: kept row is the min
        def kept_row(a, b):
            return min(a, b)

    mask = np.array(
        [kept_row(int(e["row"]), int(e["col"])) >= lo for e in edges], dtype=bool
    )
    np.testing.assert_array_equal(edges[mask], query.similarity_graph.edges)


def test_partitioned_queries_union_to_all_vs_all(db):
    """Disjoint dedup query runs partition the all-vs-all edge set exactly."""
    sequences, params, index_dir = db
    base = PastisPipeline(params).run(sequences)
    qparams = params.replace(mode="query", index_dir=index_dir, query_dedup=True)
    half = N_DB // 2
    first = PastisPipeline(qparams).run(sequences.subset(np.arange(0, half)))
    second = PastisPipeline(qparams).run(sequences.subset(np.arange(half, N_DB)))

    union = np.concatenate(
        [first.similarity_graph.edges, second.similarity_graph.edges]
    )
    union.sort(order=["row", "col"])
    reference = base.similarity_graph.edges.copy()
    reference.sort(order=["row", "col"])
    np.testing.assert_array_equal(union, reference)


def test_dedup_requires_database_members(db):
    sequences, params, index_dir = db
    novel = SequenceSet.from_strings(["MKVLAWQQNNPRS"], names=["novel"])
    with pytest.raises(ValueError, match="database member"):
        PastisPipeline(
            params.replace(mode="query", index_dir=index_dir, query_dedup=True)
        ).run(novel)


def test_member_query_neighborhood_without_dedup(db):
    """dedup=False: row q carries every match of q exactly once."""
    sequences, params, index_dir = db
    open_params = params.replace(ani_threshold=0.0, coverage_threshold=0.0)
    base = PastisPipeline(open_params).run(sequences)
    q = 3
    query = PastisPipeline(
        open_params.replace(mode="query", index_dir=index_dir)
    ).run(sequences.subset(np.array([q])))

    edges = base.similarity_graph.edges
    expected = set(edges["col"][edges["row"] == q]) | set(
        edges["row"][edges["col"] == q]
    )
    got = query.similarity_graph.edges
    partners = [int(e["col"]) if int(e["row"]) == q else int(e["row"]) for e in got]
    assert len(partners) == len(set(partners)), "each match exactly once"
    assert set(partners) == {int(p) for p in expected}


def test_novel_query_searches_against_database(db):
    """A never-indexed sequence gets an appended row and real matches."""
    sequences, params, index_dir = db
    member = sequences.codes(0)
    data = np.concatenate([member, member[:10]])
    novel = SequenceSet(
        data=data,
        offsets=np.array([0, data.size], dtype=np.int64),
        names=["novel-variant"],
        alphabet=sequences.alphabet,
    )
    result = PastisPipeline(
        params.replace(
            mode="query", index_dir=index_dir, ani_threshold=0.0, coverage_threshold=0.0
        )
    ).run(novel)
    assert result.query_rows.tolist() == [N_DB]  # appended past the database
    edges = result.similarity_graph.edges
    incident = (edges["row"] == N_DB).sum() + (edges["col"] == N_DB).sum()
    assert incident == edges.size  # every edge touches the query row
    assert incident > 0  # the variant of db[0] finds db[0]'s family
    assert result.stats.extras["query"]["novel"] == 1
    assert result.stats.extras["query"]["members"] == 0


def test_query_run_warm_cache_replays(db, tmp_path):
    """A cached query run replays bit-identically (mode is in the cache key)."""
    sequences, params, index_dir = db
    qparams = params.replace(
        mode="query",
        index_dir=index_dir,
        query_dedup=True,
        cache_dir=str(tmp_path / "stage-cache"),
    )
    queries = sequences.subset(np.arange(0, N_DB // 2))
    cold = PastisPipeline(qparams).run(queries)
    assert cold.stats.extras["cache"]["misses"] > 0
    warm = PastisPipeline(qparams).run(queries, resume=True)
    counters = warm.stats.extras["cache"]
    assert counters["hits"] > 0 and counters["misses"] == 0
    np.testing.assert_array_equal(
        cold.similarity_graph.edges, warm.similarity_graph.edges
    )


def test_query_extras_hoisted_into_report(db):
    from repro.io.report import run_report

    sequences, params, index_dir = db
    result = PastisPipeline(
        params.replace(mode="query", index_dir=index_dir)
    ).run(sequences.subset(np.arange(0, 4)))
    report = run_report(result.stats)
    assert report["query_n_queries"] == 4
    assert report["query_members"] == 4
    assert report["query_novel"] == 0
    assert report["query_db_sequences"] == N_DB
