"""Tests for the hardware models."""

import pytest

from repro.hardware.cluster import SUMMIT, summit_subset
from repro.hardware.gpu import HOPPER_DPX, V100, GpuSpec
from repro.hardware.node import SUMMIT_NODE, NodeSpec
from repro.hardware.topology import SUMMIT_NETWORK, NetworkSpec


def test_summit_node_matches_paper_description():
    assert SUMMIT_NODE.cores == 42
    assert SUMMIT_NODE.gpus_per_node == 6
    assert SUMMIT_NODE.cpu_memory_gb == 512.0
    assert SUMMIT_NODE.gpu.name == "V100"


def test_summit_system_scale():
    assert SUMMIT.nodes == 4608
    assert SUMMIT.total_gpus == 4608 * 6
    production = summit_subset(3364)
    assert production.nodes == 3364
    assert production.total_gpus == 20184  # the paper's "over 20,000 GPUs"
    assert production.total_cores == 141288


def test_summit_subset_validation():
    with pytest.raises(ValueError):
        summit_subset(0)


def test_gpu_kernel_time_scales_with_cells():
    assert V100.kernel_seconds(2 * 10**9) == pytest.approx(2 * V100.kernel_seconds(10**9))
    assert V100.batch_seconds(10**9, 10**6) > V100.kernel_seconds(10**9)
    assert HOPPER_DPX.kernel_seconds(10**9) < V100.kernel_seconds(10**9)


def test_node_aggregate_throughput():
    node = NodeSpec(gpus_per_node=6, gpu=GpuSpec(gcups=10.0))
    assert node.node_gcups == 60.0
    assert node.total_gpu_memory_gb == 6 * 16.0


def test_network_cost_model_monotonicity():
    net = SUMMIT_NETWORK
    assert net.tree_broadcast_seconds(10**6, 16) > net.tree_broadcast_seconds(10**6, 4)
    assert net.tree_broadcast_seconds(10**7, 16) > net.tree_broadcast_seconds(10**6, 16)
    assert net.tree_broadcast_seconds(100, 1) == 0.0
    assert net.point_to_point_seconds(0) == pytest.approx(net.alpha_s)
    assert net.allgather_seconds(1000, 1) == 0.0
    assert net.alltoallv_seconds(10**6, 8) > 0


def test_custom_network_parameters():
    slow = NetworkSpec(alpha_s=1e-3, beta_s_per_byte=1e-6)
    fast = NetworkSpec(alpha_s=1e-6, beta_s_per_byte=1e-9)
    assert slow.tree_broadcast_seconds(10**4, 4) > fast.tree_broadcast_seconds(10**4, 4)


def test_io_seconds_scales_with_bytes_and_saturates():
    small = SUMMIT.io_seconds(10**6, nodes_used=100)
    big = SUMMIT.io_seconds(10**12, nodes_used=100)
    assert big > small
    # with few nodes the achievable bandwidth is lower, so IO takes longer
    assert SUMMIT.io_seconds(10**12, nodes_used=10) > SUMMIT.io_seconds(10**12, nodes_used=1000)
