"""Tests for repro.sequences.synthetic and distribution."""

import numpy as np
import pytest

from repro.sequences.distribution import (
    LengthDistribution,
    metagenome_length_distribution,
    uniform_length_distribution,
)
from repro.sequences.synthetic import (
    SyntheticDatasetConfig,
    family_labels,
    make_family,
    synthetic_dataset,
)


def test_dataset_size_and_determinism():
    a = synthetic_dataset(n_sequences=50, seed=1)
    b = synthetic_dataset(n_sequences=50, seed=1)
    assert len(a) == 50
    assert np.array_equal(a.data, b.data)
    assert list(a.names) == list(b.names)


def test_different_seeds_differ():
    a = synthetic_dataset(n_sequences=50, seed=1)
    b = synthetic_dataset(n_sequences=50, seed=2)
    assert not np.array_equal(a.lengths, b.lengths) or a.data.shape != b.data.shape or not np.array_equal(a.data[:100], b.data[:100])


def test_lengths_respect_distribution_bounds():
    config = SyntheticDatasetConfig(
        n_sequences=60, length_distribution=uniform_length_distribution(50, 120), seed=3
    )
    seqs = synthetic_dataset(config=config)
    assert int(seqs.lengths.min()) >= 30  # fragments may shorten members
    assert int(seqs.lengths.max()) <= 140  # indels may lengthen slightly


def test_family_structure_present():
    seqs = synthetic_dataset(n_sequences=100, seed=5)
    labels = family_labels(seqs)
    families, counts = np.unique(labels[labels >= 0], return_counts=True)
    assert families.size >= 5
    assert counts.max() >= 2
    singletons = (labels < 0).sum()
    assert singletons > 0


def test_family_members_are_similar():
    from repro.align.smith_waterman import smith_waterman

    config = SyntheticDatasetConfig(
        n_sequences=20, family_fraction=1.0, mutation_rate=0.05, fragment_probability=0.0, seed=9
    )
    seqs = synthetic_dataset(config=config)
    labels = family_labels(seqs)
    # find two members of the same family
    fam_ids, counts = np.unique(labels, return_counts=True)
    fam = fam_ids[counts >= 2][0]
    members = np.flatnonzero(labels == fam)[:2]
    result = smith_waterman(seqs.codes(members[0]), seqs.codes(members[1]))
    assert result.identity > 0.7


def test_make_family_member_count(rng):
    config = SyntheticDatasetConfig(n_sequences=10, seed=0)
    members, names = make_family(4, config, rng, family_id=3)
    assert len(members) == 4
    assert names == [f"fam3_m{i}" for i in range(4)]


def test_config_validation():
    with pytest.raises(ValueError):
        SyntheticDatasetConfig(n_sequences=0).validate()
    with pytest.raises(ValueError):
        SyntheticDatasetConfig(family_fraction=1.5).validate()
    with pytest.raises(ValueError):
        SyntheticDatasetConfig(mutation_rate=1.0).validate()
    with pytest.raises(ValueError):
        SyntheticDatasetConfig(indel_rate=0.6).validate()


def test_length_distribution_sampling(rng):
    dist = LengthDistribution(log_mean=5.0, log_sigma=0.4, min_length=30, max_length=500)
    lengths = dist.sample(500, rng)
    assert lengths.min() >= 30
    assert lengths.max() <= 500
    assert 80 < lengths.mean() < 300
    assert dist.mean_length() > 0


def test_metagenome_distribution_defaults():
    dist = metagenome_length_distribution()
    assert dist.min_length == 30
    assert dist.max_length == 2000


def test_zero_singletons_configuration():
    config = SyntheticDatasetConfig(n_sequences=30, family_fraction=1.0, seed=2)
    seqs = synthetic_dataset(config=config)
    labels = family_labels(seqs)
    assert (labels < 0).sum() == 0
