"""Tests for repro.sparse.spgemm: the semiring SpGEMM kernel."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.coo import CooMatrix
from repro.sparse.semiring import (
    ArithmeticSemiring,
    CountSemiring,
    MinPlusSemiring,
    OverlapSemiring,
)
from repro.sparse.spgemm import SpGemmStats, spgemm, spgemm_reference
from repro.sparse.spops import from_scipy


def random_coo(shape, density, seed):
    mat = sp.random(shape[0], shape[1], density=density, random_state=seed, format="coo")
    return from_scipy(mat)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_spgemm_matches_scipy(seed):
    a = random_coo((30, 25), 0.15, seed)
    b = random_coo((25, 40), 0.15, seed + 100)
    c = spgemm(a, b)
    ref = (sp.csr_matrix((a.values, (a.rows, a.cols)), shape=a.shape)
           @ sp.csr_matrix((b.values, (b.rows, b.cols)), shape=b.shape)).toarray()
    assert np.allclose(c.todense(), ref)


def test_spgemm_matches_reference_implementation():
    rng = np.random.default_rng(5)
    a = CooMatrix((10, 12), rng.integers(0, 10, 30), rng.integers(0, 12, 30),
                  rng.integers(1, 5, 30).astype(np.float64)).deduplicate()
    b = CooMatrix((12, 8), rng.integers(0, 12, 30), rng.integers(0, 8, 30),
                  rng.integers(1, 5, 30).astype(np.float64)).deduplicate()
    fast = spgemm(a, b)
    slow = spgemm_reference(a, b)
    assert fast == slow


def test_spgemm_dimension_mismatch():
    a = CooMatrix.empty((3, 4))
    b = CooMatrix.empty((5, 3))
    with pytest.raises(ValueError):
        spgemm(a, b)
    with pytest.raises(ValueError):
        spgemm_reference(a, b)


def test_spgemm_empty_operands():
    a = CooMatrix.empty((5, 6))
    b = CooMatrix.empty((6, 7))
    c, stats = spgemm(a, b, return_stats=True)
    assert c.nnz == 0
    assert stats.flops == 0
    assert stats.compression_factor == 1.0


def test_spgemm_stats_compression_factor():
    # A column shared by 3 rows of A and 3 cols of B gives 9 flops, 9 outputs
    a = CooMatrix((3, 1), np.array([0, 1, 2]), np.array([0, 0, 0]), np.ones(3))
    b = CooMatrix((1, 3), np.array([0, 0, 0]), np.array([0, 1, 2]), np.ones(3))
    c, stats = spgemm(a, b, return_stats=True)
    assert stats.flops == 9
    assert stats.output_nnz == 9
    assert stats.compression_factor == pytest.approx(1.0)
    # duplicate-producing structure: A (1x2 dense) x B (2x1 dense)
    a2 = CooMatrix((1, 2), np.array([0, 0]), np.array([0, 1]), np.ones(2))
    b2 = CooMatrix((2, 1), np.array([0, 1]), np.array([0, 0]), np.ones(2))
    _, stats2 = spgemm(a2, b2, return_stats=True)
    assert stats2.flops == 2
    assert stats2.output_nnz == 1
    assert stats2.compression_factor == pytest.approx(2.0)


def test_spgemm_stats_merge():
    s1 = SpGemmStats(flops=10, output_nnz=5, intermediate_bytes=100, compression_factor=2.0)
    s2 = SpGemmStats(flops=30, output_nnz=5, intermediate_bytes=300, compression_factor=6.0)
    merged = s1.merge(s2)
    assert merged.flops == 40
    assert merged.output_nnz == 10
    assert merged.intermediate_bytes == 300
    assert merged.compression_factor == pytest.approx(4.0)


def test_count_semiring_counts_shared_inner_indices():
    # A: sequences x kmers pattern, C = A * A^T counts shared k-mers
    a = CooMatrix(
        (3, 6),
        np.array([0, 0, 0, 1, 1, 2]),
        np.array([0, 1, 2, 1, 2, 5]),
        np.ones(6, dtype=np.int64),
    )
    c = spgemm(a, a.transpose(), CountSemiring())
    dense = np.zeros((3, 3))
    dense[c.rows, c.cols] = c.values
    assert dense[0, 1] == 2  # share k-mers 1 and 2
    assert dense[0, 2] == 0
    assert dense[1, 1] == 2  # self-count = own k-mer count


def test_overlap_semiring_positions():
    # A[seq, kmer] = position of kmer in seq
    a = CooMatrix(
        (2, 4),
        np.array([0, 0, 1, 1]),
        np.array([0, 1, 0, 1]),
        np.array([3, 7, 11, 15], dtype=np.int32),
    )
    c = spgemm(a, a.transpose(), OverlapSemiring())
    pair = c.values[(c.rows == 0) & (c.cols == 1)]
    assert pair["count"][0] == 2
    seeds = {
        (int(pair["first_pos_a"][0]), int(pair["first_pos_b"][0])),
        (int(pair["second_pos_a"][0]), int(pair["second_pos_b"][0])),
    }
    assert seeds == {(3, 11), (7, 15)}


def test_overlap_semiring_fast_equals_reference():
    rng = np.random.default_rng(8)
    a = CooMatrix(
        (8, 50),
        rng.integers(0, 8, 60),
        rng.integers(0, 50, 60),
        rng.integers(0, 90, 60).astype(np.int32),
    ).deduplicate()
    fast = spgemm(a, a.transpose(), OverlapSemiring())
    slow = spgemm_reference(a, a.transpose(), OverlapSemiring())
    assert fast.nnz == slow.nnz
    assert np.array_equal(fast.rows, slow.rows)
    assert np.array_equal(fast.cols, slow.cols)
    assert np.array_equal(fast.values["count"], slow.values["count"])


def test_minplus_semiring_shortest_two_hop():
    # path 0 -> 1 -> 2 with weights 2 and 3: two-hop distance is 5
    a = CooMatrix((3, 3), np.array([0, 1]), np.array([1, 2]), np.array([2.0, 3.0]))
    c = spgemm(a, a, MinPlusSemiring())
    val = c.values[(c.rows == 0) & (c.cols == 2)]
    assert val[0] == 5.0


def test_spgemm_output_is_sorted_and_unique():
    a = random_coo((20, 15), 0.3, 9)
    b = random_coo((15, 18), 0.3, 10)
    c = spgemm(a, b)
    keys = c.rows * c.shape[1] + c.cols
    assert np.all(np.diff(keys) > 0)
