"""Tests for repro.metrics and repro.io."""

import numpy as np
import pytest

from repro.core.stats import SearchStats
from repro.io.report import load_json, run_report, save_json
from repro.io.tables import format_markdown_table, format_table
from repro.metrics.counters import RateCounters, format_rate, tcups
from repro.metrics.efficiency import parallel_efficiency, speedup, weak_scaling_efficiency
from repro.metrics.imbalance import imbalance_percent, imbalance_stats
from repro.metrics.memory import MemoryTracker
from repro.metrics.timers import Timer, TimerRegistry


# ---------------------------------------------------------------- timers
def test_timer_accumulates():
    t = Timer()
    with t:
        sum(range(1000))
    first = t.elapsed
    with t:
        sum(range(1000))
    assert t.elapsed > first
    t.reset()
    assert t.elapsed == 0.0


def test_timer_registry():
    reg = TimerRegistry()
    with reg.timer("align"):
        pass
    with reg.timer("io"):
        pass
    summary = reg.summary()
    assert set(summary.keys()) == {"align", "io"}
    assert reg.total() == pytest.approx(sum(summary.values()))
    assert reg.elapsed("missing") == 0.0


# ---------------------------------------------------------------- counters
def test_rate_counters():
    rc = RateCounters(alignments=1000, cells=10**9, total_seconds=10.0, kernel_seconds=2.0)
    assert rc.alignments_per_second() == 100.0
    assert rc.cups() == 5e8
    assert rc.tcups() == pytest.approx(5e-4)
    merged = rc.merge(RateCounters(alignments=500, total_seconds=5.0))
    assert merged.alignments == 1500
    assert merged.alignments_per_second() == 100.0
    assert RateCounters().alignments_per_second() == 0.0


def test_tcups_and_format_rate():
    assert tcups(1e12, 1.0) == 1.0
    assert tcups(1.0, 0.0) == 0.0
    assert format_rate(690.6e6) == "690.6 M/s"
    assert format_rate(176.3e12) == "176.3 T/s"
    assert format_rate(5.0) == "5.0 /s"


# ---------------------------------------------------------------- imbalance / efficiency
def test_imbalance_metrics():
    stats = imbalance_stats([1.0, 2.0, 3.0])
    assert stats.maximum == 3.0
    assert imbalance_percent([2.0, 2.0, 2.0]) == 0.0
    assert imbalance_percent([1.0, 1.0, 2.0]) == pytest.approx(50.0)
    assert imbalance_percent([]) == 0.0


def test_efficiency_helpers():
    assert speedup(100.0, 25.0, 1, 4) == 4.0
    assert parallel_efficiency(100.0, 25.0, 1, 4) == 1.0
    assert parallel_efficiency(100.0, 50.0, 1, 4) == 0.5
    assert parallel_efficiency(100.0, 0.0, 1, 4) == 0.0
    assert weak_scaling_efficiency(10.0, 12.5) == 0.8
    assert weak_scaling_efficiency(10.0, 0.0) == 0.0


# ---------------------------------------------------------------- memory
def test_memory_tracker():
    tracker = MemoryTracker()
    tracker.allocate("overlap", 1000)
    tracker.allocate("overlap", 500)
    tracker.release("overlap", 800)
    assert tracker.current("overlap") == 700
    assert tracker.peak("overlap") == 1500
    tracker.set_usage("kmer", 200)
    assert tracker.peak_total() == 1700
    assert tracker.summary() == {"kmer": 200, "overlap": 1500}
    with pytest.raises(ValueError):
        tracker.allocate("x", -1)


# ---------------------------------------------------------------- search stats
def test_search_stats_derived_metrics():
    stats = SearchStats(
        n_sequences=1000,
        candidates_discovered=10_000,
        alignments_performed=1_000,
        similar_pairs=120,
        alignment_cells=10**9,
        time_align=2.0,
        time_spgemm=1.0,
        time_io=0.1,
        time_total=4.0,
        kernel_seconds=0.5,
    )
    assert stats.aligned_fraction == 0.1
    assert stats.similar_fraction == 0.12
    assert stats.search_space == 10**6
    assert stats.alignment_space == pytest.approx(1e-3)
    assert stats.alignments_per_second == 250.0
    assert stats.cups == 2e9
    assert stats.io_percent == pytest.approx(2.5)
    assert "alignments_per_second" in stats.as_dict()


def test_search_stats_zero_division_safety():
    empty = SearchStats()
    assert empty.aligned_fraction == 0.0
    assert empty.alignments_per_second == 0.0
    assert empty.cups == 0.0
    assert empty.io_percent == 0.0


# ---------------------------------------------------------------- tables / reports
def test_format_table_alignment():
    table = format_table(["a", "value"], [["x", 1.23456], ["long", 7]], precision=2)
    lines = table.splitlines()
    assert len(lines) == 4
    assert "1.23" in table
    assert "long" in table


def test_format_markdown_table():
    md = format_markdown_table(["col1", "col2"], [[1, 2.5]])
    assert md.splitlines()[0] == "| col1 | col2 |"
    assert "2.500" in md


def test_run_report_and_json_roundtrip(tmp_path):
    stats = SearchStats(n_sequences=10, alignments_performed=5, time_total=1.0)
    report = run_report(stats, extra={"numpy_value": np.int64(7), "arr": np.arange(3)})
    assert report["numpy_value"] == 7
    assert report["arr"] == [0, 1, 2]
    path = tmp_path / "report.json"
    save_json(report, path)
    loaded = load_json(path)
    assert loaded["n_sequences"] == 10
    assert loaded["alignments_performed"] == 5
