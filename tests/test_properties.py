"""Property-based tests (Hypothesis) for the core kernels and data structures.

These cover the invariants the reproduction leans on most heavily:

* the three Smith-Waterman implementations agree on the optimal score;
* semiring SpGEMM agrees with SciPy (arithmetic) and with a slow reference
  (overlap semiring), and SUMMA/Blocked-SUMMA agree with the local kernel;
* the index-parity pruning rule keeps exactly one representative of every
  unordered pair;
* COO deduplication and CSR/DCSC conversions are lossless.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.align.batch import batch_smith_waterman
from repro.align.smith_waterman import smith_waterman, smith_waterman_reference
from repro.align.substitution import DEFAULT_SCORING
from repro.core.load_balance import make_scheme
from repro.core.filtering import drop_self_pairs
from repro.distsparse.blocked_summa import BlockedSpGemm, BlockSchedule
from repro.distsparse.distmat import DistSparseMatrix
from repro.mpi.communicator import SimCommunicator
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.dcsc import DcscMatrix
from repro.sparse.semiring import ArithmeticSemiring, CountSemiring, OverlapSemiring
from repro.sparse.spgemm import spgemm, spgemm_reference

SETTINGS = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)

protein_seq = st.lists(st.integers(min_value=0, max_value=19), min_size=1, max_size=40).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


@given(a=protein_seq, b=protein_seq)
@settings(**SETTINGS)
def test_sw_vectorized_matches_reference(a, b):
    ref = smith_waterman_reference(a, b)
    vec = smith_waterman(a, b)
    assert vec.score == ref.score
    assert 0 <= vec.matches <= vec.length
    if vec.score > 0:
        assert vec.begin_a <= vec.end_a
        assert vec.begin_b <= vec.end_b


@given(a=protein_seq, b=protein_seq)
@settings(**SETTINGS)
def test_sw_batch_matches_reference(a, b):
    ref = smith_waterman_reference(a, b)
    res = batch_smith_waterman([a], [b])[0]
    assert int(res["score"]) == ref.score
    assert int(res["matches"]) <= int(res["length"])
    # identity and coverage are well-formed
    if res["length"] > 0:
        assert 0.0 <= res["matches"] / res["length"] <= 1.0


@given(a=protein_seq)
@settings(**SETTINGS)
def test_sw_self_alignment_is_perfect(a):
    res = smith_waterman(a, a)
    assert res.matches == len(a)
    assert res.length == len(a)
    assert res.score == int(DEFAULT_SCORING.matrix[a, a].sum())


@given(a=protein_seq, b=protein_seq)
@settings(**SETTINGS)
def test_sw_score_is_symmetric(a, b):
    assert smith_waterman(a, b).score == smith_waterman(b, a).score


coo_strategy = st.builds(
    lambda rows, cols, vals: (rows, cols, vals),
    rows=st.lists(st.integers(0, 14), min_size=0, max_size=60),
    cols=st.lists(st.integers(0, 11), min_size=0, max_size=60),
    vals=st.lists(st.integers(1, 9), min_size=0, max_size=60),
)


def build_coo(shape, data):
    rows, cols, vals = data
    n = min(len(rows), len(cols), len(vals))
    return CooMatrix(
        shape,
        np.array(rows[:n], dtype=np.int64),
        np.array(cols[:n], dtype=np.int64),
        np.array(vals[:n], dtype=np.float64),
    ).deduplicate()


@given(data_a=coo_strategy, data_b=coo_strategy)
@settings(**SETTINGS)
def test_spgemm_matches_scipy_property(data_a, data_b):
    import scipy.sparse as sp

    a = build_coo((15, 12), data_a)
    b_raw = build_coo((15, 12), data_b)
    b = b_raw.transpose()  # (12, 15)
    c = spgemm(a.transpose(), b.transpose(), ArithmeticSemiring())  # (12,15)x(15,12)
    ref = (
        sp.csr_matrix((a.values, (a.cols, a.rows)), shape=(12, 15))
        @ sp.csr_matrix((b.values, (b.cols, b.rows)), shape=(15, 12))
    ).toarray()
    assert np.allclose(c.todense(), ref)


@given(data=coo_strategy)
@settings(**SETTINGS)
def test_overlap_spgemm_matches_reference_property(data):
    a = build_coo((15, 12), data)
    a = CooMatrix(a.shape, a.rows, a.cols, a.values.astype(np.int32))
    fast = spgemm(a, a.transpose(), OverlapSemiring())
    slow = spgemm_reference(a, a.transpose(), OverlapSemiring())
    assert fast.nnz == slow.nnz
    assert np.array_equal(fast.values["count"], slow.values["count"])


@given(data=coo_strategy)
@settings(**SETTINGS)
def test_conversions_are_lossless(data):
    coo = build_coo((15, 12), data)
    assert CsrMatrix.from_coo(coo).to_coo() == coo.copy().sort_rowmajor()
    assert DcscMatrix.from_coo(coo).to_coo().sort_rowmajor() == coo.copy().sort_rowmajor()


@given(data=coo_strategy, br=st.integers(1, 4), bc=st.integers(1, 4))
@settings(**SETTINGS)
def test_blocked_summa_blocking_invariance_property(data, br, bc):
    """Any blocking of the output produces exactly the direct SpGEMM result."""
    rows, cols, vals = data
    n = min(len(rows), len(cols), len(vals))
    a = CooMatrix(
        (15, 12),
        np.array(rows[:n], dtype=np.int64),
        np.array(cols[:n], dtype=np.int64),
        np.array(vals[:n], dtype=np.int32),
    ).deduplicate()
    sr = CountSemiring()
    direct = spgemm(a, a.transpose(), sr)
    comm = SimCommunicator(4)
    engine = BlockedSpGemm(
        DistSparseMatrix.from_global_coo(a, comm),
        DistSparseMatrix.from_global_coo(a.transpose(), comm),
        sr,
        BlockSchedule(15, 15, br, bc),
    )
    pieces = [blk.result.to_global(sr) for blk in engine.iter_blocks()]
    nonempty = [p for p in pieces if p.nnz]
    if not nonempty:
        assert direct.nnz == 0
        return
    merged = CooMatrix(
        (15, 15),
        np.concatenate([p.rows for p in nonempty]),
        np.concatenate([p.cols for p in nonempty]),
        np.concatenate([p.values for p in nonempty]),
        check=False,
    ).deduplicate(sr)
    assert merged == direct


symmetric_pairs = st.lists(
    st.tuples(st.integers(0, 19), st.integers(0, 19)), min_size=0, max_size=80
)


@given(pairs=symmetric_pairs)
@settings(**SETTINGS)
def test_parity_pruning_keeps_each_pair_once_property(pairs):
    """Symmetrize arbitrary pairs, prune with both schemes: each unordered
    off-diagonal pair survives exactly once under either scheme."""
    if not pairs:
        return
    rows = np.array([p[0] for p in pairs] + [p[1] for p in pairs], dtype=np.int64)
    cols = np.array([p[1] for p in pairs] + [p[0] for p in pairs], dtype=np.int64)
    matrix = CooMatrix((20, 20), rows, cols, np.ones(rows.size)).deduplicate()
    expected = {(min(r, c), max(r, c)) for r, c in zip(matrix.rows, matrix.cols) if r != c}
    for scheme_name in ("index", "triangularity"):
        scheme = make_scheme(scheme_name)
        pruned = drop_self_pairs(scheme.prune(matrix))
        got = [(min(r, c), max(r, c)) for r, c in zip(pruned.rows, pruned.cols)]
        assert len(got) == len(set(got))
        assert set(got) == expected


@given(data=coo_strategy)
@settings(**SETTINGS)
def test_deduplicate_idempotent_property(data):
    coo = build_coo((15, 12), data)
    once = coo.deduplicate()
    twice = once.deduplicate()
    assert once == twice
    keys = once.rows * 12 + once.cols
    assert np.unique(keys).size == keys.size
