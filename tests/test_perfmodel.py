"""Tests for the analytic performance model and its calibration."""

import numpy as np
import pytest

from repro.hardware.topology import SUMMIT_NETWORK
from repro.perfmodel.analytic import (
    AnalyticModel,
    blocked_summa_communication_seconds,
    summa_communication_seconds,
)
from repro.perfmodel.calibration import calibrate_profile
from repro.perfmodel.profile import WorkloadProfile
from repro.perfmodel.scaling import strong_scaling_series, weak_scaling_series


# ---------------------------------------------------------------- profiles
def test_paper_production_profile_matches_table_iv():
    prof = WorkloadProfile.paper_production()
    assert prof.n_sequences == 404_999_880
    assert prof.candidates == 95_855_955_765_012
    assert prof.alignments == 8_552_623_259_518
    assert prof.output_pairs == 1_048_288_620_764
    assert prof.num_blocks == 400


def test_profile_scaling_rules():
    prof = WorkloadProfile.paper_strong_scaling()
    double = prof.scaled_to(prof.n_sequences * 2)
    assert double.alignments == pytest.approx(prof.alignments * 4)
    assert double.kmer_nnz == pytest.approx(prof.kmer_nnz * 2)
    assert double.cells == pytest.approx(prof.cells * 4)
    with pytest.raises(ValueError):
        WorkloadProfile(0, 0, 0, 0, 0, 0, 0, 0).scaled_to(10)
    assert prof.with_blocks(100).num_blocks == 100


# ---------------------------------------------------------------- communication formulas
def test_summa_cost_formulas_match_paper_structure():
    p, s = 64, 1e8
    plain = summa_communication_seconds(p, s, SUMMIT_NETWORK)
    blocked_1x1 = blocked_summa_communication_seconds(p, s, 1, 1, SUMMIT_NETWORK)
    # with br=bc=1 both bandwidth terms are 2*beta*s*sqrt(p)log(sqrt p)
    assert blocked_1x1 == pytest.approx(plain, rel=1e-9)
    blocked = blocked_summa_communication_seconds(p, s, 8, 8, SUMMIT_NETWORK)
    assert blocked > plain
    # bandwidth term scales with (br+bc), latency with br*bc
    b4 = blocked_summa_communication_seconds(p, s, 4, 4, SUMMIT_NETWORK)
    b8 = blocked_summa_communication_seconds(p, s, 8, 8, SUMMIT_NETWORK)
    assert b8 < 2.5 * b4  # dominated by the bandwidth term which only doubles
    assert summa_communication_seconds(1, s, SUMMIT_NETWORK) == 0.0


# ---------------------------------------------------------------- component model
def test_component_times_positive_and_total_consistent():
    model = AnalyticModel(load_balancing="index", pre_blocking=False)
    times = model.component_times(WorkloadProfile.paper_strong_scaling(), 100)
    assert times.align > 0 and times.spgemm > 0 and times.io > 0
    assert times.total == pytest.approx(
        times.align + times.spgemm + times.sparse_other + times.comm + times.io + times.cwait
    )
    d = times.as_dict()
    assert d["sparse_all"] == pytest.approx(times.spgemm + times.sparse_other)


def test_preblocking_reduces_total_in_model():
    profile = WorkloadProfile.paper_strong_scaling()
    with_pre = AnalyticModel(load_balancing="index", pre_blocking=True).component_times(profile, 100)
    without = AnalyticModel(load_balancing="index", pre_blocking=False).component_times(profile, 100)
    assert with_pre.total < without.total
    assert with_pre.align > without.align  # contention slows the components themselves


def test_triangularity_saves_sparse_time():
    profile = WorkloadProfile.paper_strong_scaling()
    index = AnalyticModel(load_balancing="index", pre_blocking=False).component_times(profile, 100)
    tri = AnalyticModel(load_balancing="triangularity", pre_blocking=False).component_times(
        profile, 100
    )
    assert tri.spgemm < index.spgemm
    assert tri.align > index.align  # worse alignment balance


def test_model_validation():
    with pytest.raises(ValueError):
        AnalyticModel(load_balancing="bogus")
    with pytest.raises(ValueError):
        AnalyticModel().component_times(WorkloadProfile.paper_strong_scaling(), 0)


def test_production_metrics_land_in_paper_ballpark():
    """Projection of the full-scale run vs. Table IV (order-of-magnitude check)."""
    metrics = AnalyticModel(load_balancing="triangularity", pre_blocking=True).production_metrics(
        WorkloadProfile.paper_production(), 3364
    )
    assert 2.0 < metrics["runtime_hours"] < 5.5          # paper: 3.44 h
    assert 3e8 < metrics["alignments_per_second"] < 1.5e9  # paper: 690.6 M/s
    assert 100 < metrics["tcups"] < 300                   # paper: 176.3 TCUPs
    assert metrics["io_percent"] < 5.0                    # paper: ~3%
    assert metrics["cwait_percent"] < 1.0


# ---------------------------------------------------------------- scaling series
def test_strong_scaling_efficiency_decreases():
    series = strong_scaling_series(
        WorkloadProfile.paper_strong_scaling(),
        [49, 100, 196, 400],
        AnalyticModel(load_balancing="index", pre_blocking=True),
    )
    assert [p.nodes for p in series] == [49, 100, 196, 400]
    assert series[0].efficiency_total == pytest.approx(1.0)
    effs = [p.efficiency_total for p in series]
    assert all(effs[i] >= effs[i + 1] for i in range(len(effs) - 1))
    assert 0.5 < effs[-1] < 1.0
    assert series[-1].speedup_total > 1.0
    # align scales at least as well as the sparse component at the top end
    last = series[-1].efficiency_per_component
    assert last["align"] >= last["spgemm"] - 0.15
    assert "time_total" in series[-1].as_dict()


def test_strong_scaling_empty_input():
    assert strong_scaling_series(WorkloadProfile.paper_strong_scaling(), [], AnalyticModel()) == []


def test_weak_scaling_efficiency_stays_high():
    series = weak_scaling_series(
        WorkloadProfile.paper_weak_scaling_base(),
        [25, 49, 100, 196, 400, 784],
        AnalyticModel(load_balancing="index", pre_blocking=True),
    )
    assert series[0].efficiency_total == pytest.approx(1.0)
    assert series[-1].efficiency_total > 0.75  # paper: stays above 0.80
    # the sequence counts follow the sqrt rule of §VIII-B (20M -> 112M)
    assert series[0].n_sequences == pytest.approx(20e6, rel=0.01)
    assert series[-1].n_sequences == pytest.approx(112e6, rel=0.01)
    # alignments grow roughly linearly with nodes (quadratic in sequences)
    ratio = series[-1].alignments / series[0].alignments
    assert ratio == pytest.approx(784 / 25, rel=0.05)


# ---------------------------------------------------------------- calibration
def test_calibration_from_pipeline_run(pipeline_result):
    coeffs = calibrate_profile(pipeline_result)
    assert coeffs.candidates_per_pair > 0
    assert coeffs.alignments_per_pair > 0
    assert coeffs.cells_per_alignment > 1
    profile = coeffs.profile_for(1_000_000, num_blocks=64)
    assert profile.n_sequences == 1_000_000
    assert profile.alignments == pytest.approx(
        coeffs.alignments_per_pair * 1_000_000**2
    )
    # a calibrated profile can drive the scaling model end to end
    series = strong_scaling_series(profile, [49, 100], AnalyticModel())
    assert series[-1].times.total > 0


# ---------------------------------------------------------------- cluster stage
def test_cluster_strong_scaling_series():
    from repro.perfmodel.scaling import cluster_strong_scaling_series

    points = cluster_strong_scaling_series(
        expand_flops=1e12,
        iterate_bytes=1e9,
        n_iterations=15,
        node_counts=[1, 4, 16, 64],
        overlap=False,
    )
    assert [p.nodes for p in points] == [1, 4, 16, 64]
    # compute components strong-scale perfectly in the model ...
    expands = [p.expand_seconds for p in points]
    assert all(a > b for a, b in zip(expands, expands[1:]))
    assert points[0].efficiency_total == pytest.approx(1.0)
    # ... while the blocked-SUMMA broadcast term grows with the node count
    assert points[-1].comm_seconds > points[0].comm_seconds
    as_dict = points[-1].as_dict()
    assert set(as_dict) >= {"nodes", "expand_seconds", "comm_seconds", "total_seconds"}


def test_cluster_scaling_overlap_hides_smaller_component():
    from repro.perfmodel.scaling import cluster_strong_scaling_series

    kwargs = dict(
        expand_flops=1e12, iterate_bytes=1e9, n_iterations=15, node_counts=[4, 16]
    )
    plain = cluster_strong_scaling_series(overlap=False, **kwargs)
    overlapped = cluster_strong_scaling_series(overlap=True, **kwargs)
    for p, o in zip(plain, overlapped):
        assert o.total_seconds < p.total_seconds
        assert o.total_seconds == pytest.approx(
            max(o.expand_seconds, o.prune_seconds) + o.comm_seconds
        )


def test_cluster_scaling_rejects_non_square_nodes():
    from repro.perfmodel.scaling import cluster_strong_scaling_series

    with pytest.raises(ValueError, match="perfect square"):
        cluster_strong_scaling_series(1e9, 1e6, 10, [1, 2])
