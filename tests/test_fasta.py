"""Tests for repro.sequences.fasta."""

import io

import pytest

from repro.sequences.fasta import (
    FastaRecord,
    iter_fasta,
    read_fasta,
    read_fasta_partitioned,
    write_fasta,
)
from repro.sequences.sequence import SequenceSet
from repro.sequences.synthetic import synthetic_dataset


def test_iter_fasta_basic():
    text = ">a desc\nACDE\nFGH\n>b\nKLM\n"
    records = list(iter_fasta(io.StringIO(text)))
    assert records == [
        FastaRecord(header="a desc", sequence="ACDEFGH"),
        FastaRecord(header="b", sequence="KLM"),
    ]
    assert records[0].name == "a"


def test_iter_fasta_skips_blank_lines():
    text = ">a\nAC\n\nDE\n"
    records = list(iter_fasta(io.StringIO(text)))
    assert records[0].sequence == "ACDE"


def test_iter_fasta_rejects_headerless_content():
    with pytest.raises(ValueError):
        list(iter_fasta(io.StringIO("ACDEF\n")))


def test_write_and_read_roundtrip(tmp_path):
    seqs = SequenceSet.from_strings(["ACDEFGHIKL", "MNPQRSTVWY"], names=["x", "y"])
    path = tmp_path / "test.fasta"
    count = write_fasta(path, seqs, line_width=4)
    assert count == 2
    loaded = read_fasta(path)
    assert len(loaded) == 2
    assert loaded.residues(0) == "ACDEFGHIKL"
    assert list(loaded.names) == ["x", "y"]


def test_write_fasta_from_records(tmp_path):
    path = tmp_path / "recs.fasta"
    write_fasta(path, [FastaRecord("r1", "AAAA"), FastaRecord("r2", "CCCC")])
    loaded = read_fasta(path)
    assert loaded.residues(1) == "CCCC"


def test_roundtrip_synthetic_dataset(tmp_path):
    seqs = synthetic_dataset(n_sequences=25, seed=3)
    path = tmp_path / "synthetic.fasta"
    write_fasta(path, seqs)
    loaded = read_fasta(path)
    assert len(loaded) == len(seqs)
    assert loaded.total_residues == seqs.total_residues
    for i in (0, 10, 24):
        assert loaded.residues(i) == seqs.residues(i)


@pytest.mark.parametrize("nparts", [1, 2, 3, 5])
def test_partitioned_read_covers_everything_once(tmp_path, nparts):
    seqs = synthetic_dataset(n_sequences=40, seed=4)
    path = tmp_path / "p.fasta"
    write_fasta(path, seqs)
    parts = read_fasta_partitioned(path, nparts)
    assert len(parts) == nparts
    total = sum(len(p) for p in parts)
    assert total == len(seqs)
    names = [str(n) for p in parts for n in p.names]
    assert sorted(names) == sorted(str(n) for n in seqs.names)


def test_partitioned_read_invalid_parts(tmp_path):
    path = tmp_path / "x.fasta"
    write_fasta(path, SequenceSet.from_strings(["AC"]))
    with pytest.raises(ValueError):
        read_fasta_partitioned(path, 0)
