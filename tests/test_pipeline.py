"""End-to-end tests of the PASTIS pipeline and its paper-level invariants."""

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceSearch
from repro.baselines.common import candidate_recall
from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.core.similarity_graph import SimilarityGraph


def test_pipeline_produces_similarity_graph(pipeline_result, small_seqs):
    graph = pipeline_result.similarity_graph
    assert isinstance(graph, SimilarityGraph)
    assert graph.n_vertices == len(small_seqs)
    assert graph.num_edges > 0
    # edges are canonical: row < col, no duplicates
    pairs = graph.edge_pairs()
    assert np.all(pairs[:, 0] < pairs[:, 1])
    assert len(graph.edge_key_set()) == graph.num_edges


def test_pipeline_statistics_consistency(pipeline_result):
    stats = pipeline_result.stats
    assert stats.candidates_discovered >= stats.alignments_performed
    assert stats.alignments_performed >= stats.similar_pairs
    assert stats.similar_pairs == pipeline_result.similarity_graph.num_edges
    assert 0 < stats.aligned_fraction <= 1.0
    assert 0 < stats.similar_fraction <= 1.0
    assert stats.time_total > 0
    assert stats.alignments_per_second > 0
    assert stats.tcups > 0
    assert stats.wall_seconds > 0
    assert stats.blocks_computed <= stats.blocks_total
    table = stats.as_table()
    assert "Performed alignments" in table
    assert "TCUPs" in table


def test_pipeline_block_records(pipeline_result):
    records = pipeline_result.block_records
    assert len(records) == pipeline_result.stats.blocks_computed
    assert sum(r.aligned_pairs for r in records) == pipeline_result.stats.alignments_performed
    assert sum(r.similar_pairs for r in records) >= pipeline_result.stats.similar_pairs
    for rec in records:
        assert rec.sparse_seconds_per_rank.shape == (pipeline_result.params.nodes,)
        assert rec.pairs_per_rank.sum() == rec.aligned_pairs


def test_pipeline_ledger_categories(pipeline_result):
    ledger = pipeline_result.ledger
    for category in ("align", "spgemm", "io", "cwait", "comm"):
        assert category in ledger.categories()
    assert ledger.counter_total("alignments") == pipeline_result.stats.alignments_performed


def test_similarity_edges_have_valid_metrics(pipeline_result):
    edges = pipeline_result.similarity_graph.edges
    params = pipeline_result.params
    assert np.all(edges["ani"] >= params.ani_threshold)
    assert np.all(edges["ani"] <= 1.0)
    assert np.all(edges["coverage"] >= params.coverage_threshold)
    assert np.all(edges["score"] > 0)


def test_results_identical_across_blockings(small_seqs, fast_params, pipeline_result):
    """The paper's claim: identical results irrespective of the blocking chosen."""
    other = PastisPipeline(fast_params.replace(num_blocks=9)).run(small_seqs)
    single = PastisPipeline(fast_params.replace(num_blocks=1)).run(small_seqs)
    assert other.similarity_graph == pipeline_result.similarity_graph
    assert single.similarity_graph == pipeline_result.similarity_graph
    assert other.stats.alignments_performed == pipeline_result.stats.alignments_performed


def test_results_identical_across_load_balancing(small_seqs, fast_params, pipeline_result):
    """Both load-balancing schemes must align each pair exactly once and agree."""
    tri = PastisPipeline(fast_params.replace(load_balancing="triangularity", num_blocks=9)).run(
        small_seqs
    )
    assert tri.similarity_graph == pipeline_result.similarity_graph
    assert tri.stats.alignments_performed == pipeline_result.stats.alignments_performed
    # the triangularity scheme avoids computing some blocks entirely
    assert tri.stats.blocks_computed < tri.stats.blocks_total
    # and therefore discovers fewer raw candidates
    assert tri.stats.candidates_discovered <= pipeline_result.stats.candidates_discovered


def test_results_identical_across_node_counts(small_seqs, fast_params, pipeline_result):
    """The paper's claim: identical results irrespective of the parallelism used."""
    wider = PastisPipeline(fast_params.replace(nodes=9)).run(small_seqs)
    assert wider.similarity_graph == pipeline_result.similarity_graph


def test_preblocking_does_not_change_results(small_seqs, fast_params, pipeline_result):
    pre = PastisPipeline(fast_params.replace(pre_blocking=True, num_blocks=4)).run(small_seqs)
    assert pre.similarity_graph == pipeline_result.similarity_graph
    assert pre.preblocking_report is not None
    report = pre.preblocking_report
    # the overlapped schedule never exceeds running the (contention-inflated)
    # components back to back
    assert report.combined_seconds_pre <= report.align_seconds_pre + report.sparse_seconds_pre
    assert report.efficiency_percent <= 100.0


def test_seed_extend_mode_runs_and_is_less_or_equally_sensitive(small_seqs, fast_params,
                                                                pipeline_result):
    se = PastisPipeline(
        fast_params.replace(alignment_mode="seed_extend", num_blocks=2)
    ).run(small_seqs)
    assert se.stats.alignments_performed == pipeline_result.stats.alignments_performed
    # ungapped x-drop extension cannot find more similar pairs than full SW
    assert se.similarity_graph.num_edges <= pipeline_result.similarity_graph.num_edges


@pytest.mark.slow
def test_pipeline_recall_against_brute_force(small_seqs, fast_params, pipeline_result):
    """Seeded search with a permissive threshold recovers most true similar pairs."""
    truth = BruteForceSearch(
        ani_threshold=fast_params.ani_threshold,
        coverage_threshold=fast_params.coverage_threshold,
    ).run(small_seqs)
    recall = candidate_recall(pipeline_result.similarity_graph, truth.similarity_graph)
    assert recall > 0.7
    # and finds nothing the exhaustive search does not
    extra = pipeline_result.similarity_graph.edge_key_set() - truth.similarity_graph.edge_key_set()
    assert not extra


def test_common_kmer_threshold_monotonicity(small_seqs, fast_params, pipeline_result):
    stricter = PastisPipeline(fast_params.replace(common_kmer_threshold=3)).run(small_seqs)
    assert stricter.stats.alignments_performed <= pipeline_result.stats.alignments_performed
    assert stricter.similarity_graph.num_edges <= pipeline_result.similarity_graph.num_edges


def test_ani_threshold_monotonicity(small_seqs, fast_params, pipeline_result):
    stricter = PastisPipeline(fast_params.replace(ani_threshold=0.9)).run(small_seqs)
    assert stricter.similarity_graph.num_edges <= pipeline_result.similarity_graph.num_edges
    assert np.all(stricter.similarity_graph.edges["ani"] >= 0.9)


def test_results_identical_across_spgemm_backends(small_seqs, fast_params, pipeline_result):
    """The registry's promise end-to-end: swapping the SpGEMM backend through
    ``PastisParams`` changes nothing about the results or the accounting."""
    gustavson = PastisPipeline(fast_params.replace(spgemm_backend="gustavson")).run(small_seqs)
    assert gustavson.params.spgemm_backend == "gustavson"
    assert gustavson.similarity_graph == pipeline_result.similarity_graph
    assert gustavson.stats.spgemm_flops == pipeline_result.stats.spgemm_flops
    assert gustavson.stats.candidates_discovered == pipeline_result.stats.candidates_discovered
    assert gustavson.stats.alignments_performed == pipeline_result.stats.alignments_performed


def test_pipeline_input_validation(small_seqs, fast_params):
    with pytest.raises(ValueError, match="perfect square"):
        PastisPipeline(fast_params.replace(nodes=3)).run(small_seqs)
    with pytest.raises(ValueError, match="at least two"):
        PastisPipeline(fast_params).run(small_seqs[0:1])


def test_measured_clock_mode(small_seqs, fast_params):
    measured = PastisPipeline(
        fast_params.replace(clock="measured", num_blocks=2, nodes=4)
    ).run(small_seqs)
    assert measured.stats.time_total > 0
    # measured Python time is much larger than the modelled Summit-node time
    assert measured.stats.time_align > 0


@pytest.mark.slow
def test_reduced_alphabet_seeding_finds_at_least_as_many_candidates(small_seqs, fast_params,
                                                                    pipeline_result):
    murphy = PastisPipeline(
        fast_params.replace(seed_alphabet="murphy10", num_blocks=2)
    ).run(small_seqs)
    # reduced-alphabet k-mers collide more often, so candidate discovery is broader
    assert murphy.stats.candidates_discovered >= pipeline_result.stats.candidates_discovered
