"""The stage-graph execution engine: scheduler equivalence and streaming memory.

The central contract of :mod:`repro.core.engine`: scheduling policy (serial
vs. overlapped pre-blocking) changes *when* work runs and what the clock
reads, never *what* is computed.  The harness here asserts bit-identical
similarity graphs, statistics and block records across schedulers over
seeds, blockings and both load-balancing schemes; that the overlapped
schedule's derived Table-I report equals the closed-form
:class:`~repro.core.preblocking.PreblockingModel` on the same per-block
times; and that the streaming accumulator's peak live memory beats
retaining all block outputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import (
    OverlappedScheduler,
    SerialScheduler,
    StreamingGraphAccumulator,
    make_scheduler,
)
from repro.core.engine.schedulers import OVERLAP_HIDDEN_CATEGORY
from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.core.preblocking import PreblockingModel
from repro.sequences.synthetic import synthetic_dataset

#: SearchStats keys that legitimately differ between schedulers: clock
#: readings (the overlapped schedule is the point of pre-blocking) and the
#: memory footprint (two live blocks instead of one).
TIMING_AND_MEMORY_KEYS = frozenset(
    {
        "time_total",
        "time_align",
        "time_spgemm",
        "time_sparse_all",
        "alignments_per_second",
        "tcups",
        "io_percent",
        "cwait_percent",
        "wall_seconds",
        "measured_align_seconds",
        "peak_live_block_bytes",
        "edge_buffer_bytes",
    }
)


def _run(seqs, **overrides):
    params = PastisParams(
        kmer_length=5,
        nodes=4,
        common_kmer_threshold=1,
        align_batch_size=64,
        **overrides,
    )
    return PastisPipeline(params).run(seqs)


# shared runs on the session dataset (the serial 4-block counterpart is the
# session-scoped ``pipeline_result`` fixture) — several tests read different
# facets of the same execution, so run each configuration once per module
@pytest.fixture(scope="module")
def overlapped_result(small_seqs, fast_params):
    """pre_blocking=True counterpart of ``pipeline_result`` (4 blocks)."""
    return PastisPipeline(fast_params.replace(pre_blocking=True)).run(small_seqs)


@pytest.fixture(scope="module")
def serial6_result(small_seqs, fast_params):
    return PastisPipeline(fast_params.replace(num_blocks=6)).run(small_seqs)


@pytest.fixture(scope="module")
def overlapped6_result(small_seqs, fast_params):
    return PastisPipeline(
        fast_params.replace(num_blocks=6, pre_blocking=True)
    ).run(small_seqs)


def _assert_records_equal(records_a, records_b):
    assert len(records_a) == len(records_b)
    for ra, rb in zip(records_a, records_b):
        assert (ra.block_row, ra.block_col, ra.kind) == (rb.block_row, rb.block_col, rb.kind)
        assert ra.candidates == rb.candidates
        assert ra.aligned_pairs == rb.aligned_pairs
        assert ra.similar_pairs == rb.similar_pairs
        assert ra.block_bytes == rb.block_bytes
        assert np.array_equal(ra.pairs_per_rank, rb.pairs_per_rank)
        assert np.array_equal(ra.cells_per_rank, rb.cells_per_rank)
        # records keep *raw* seconds, so under the deterministic modeled
        # clock they agree bit-for-bit even across schedulers
        assert np.array_equal(ra.sparse_seconds_per_rank, rb.sparse_seconds_per_rank)
        assert np.array_equal(ra.align_seconds_per_rank, rb.align_seconds_per_rank)


# ---------------------------------------------------------------- equivalence harness
# the default run covers both schemes and both blockings on one seed (a
# ~40-sequence dataset keeps each run around a second); the second seed
# re-runs the whole matrix in the slow suite (CI on push)
@pytest.mark.parametrize("seed", [3, pytest.param(19, marks=pytest.mark.slow)])
@pytest.mark.parametrize("num_blocks", [4, 6])
@pytest.mark.parametrize("load_balancing", ["index", "triangularity"])
def test_scheduler_equivalence(seed, num_blocks, load_balancing):
    """Overlapped scheduling is bit-identical to serial, modulo timing fields."""
    seqs = synthetic_dataset(n_sequences=40, seed=seed)
    serial = _run(seqs, num_blocks=num_blocks, load_balancing=load_balancing)
    overlapped = _run(
        seqs, num_blocks=num_blocks, load_balancing=load_balancing, pre_blocking=True
    )
    assert serial.scheduler == "serial"
    assert overlapped.scheduler == "overlapped"

    # the similarity graph agrees down to every edge attribute
    assert np.array_equal(
        serial.similarity_graph.edges, overlapped.similarity_graph.edges
    )

    # statistics agree on everything but clock readings / live-memory shape
    stats_serial = serial.stats.as_dict()
    stats_overlapped = overlapped.stats.as_dict()
    assert set(stats_serial) == set(stats_overlapped)
    for key, value in stats_serial.items():
        if key in TIMING_AND_MEMORY_KEYS:
            continue
        if key.startswith("imbalance_"):
            # (max/avg - 1) is invariant under the scalar contention
            # multiplier up to float associativity of the per-block sums
            assert stats_overlapped[key] == pytest.approx(value, rel=1e-9), key
        else:
            assert stats_overlapped[key] == value, key

    _assert_records_equal(serial.block_records, overlapped.block_records)


def test_overlapped_report_matches_closed_form_model(overlapped6_result):
    """The executed schedule derives the exact report the closed form predicts."""
    result = overlapped6_result
    report = result.preblocking_report
    assert report is not None

    ledger = result.ledger
    other_seconds = sum(
        ledger.component_time(c) for c in ("sparse_other", "io", "cwait", "comm")
    )
    sparse = np.stack([r.sparse_seconds_per_rank for r in result.block_records])
    align = np.stack([r.align_seconds_per_rank for r in result.block_records])
    expected = PreblockingModel().evaluate(sparse, align, other_seconds)
    for field in (
        "blocks",
        "align_seconds",
        "sparse_seconds",
        "sum_seconds",
        "total_seconds",
        "align_seconds_pre",
        "sparse_seconds_pre",
        "combined_seconds_pre",
        "total_seconds_pre",
    ):
        assert getattr(report, field) == getattr(expected, field), field


def test_overlap_hidden_reconciles_ledger_with_clock(overlapped_result, pipeline_result):
    """align + spgemm - overlap_hidden equals the simulated combined clock."""
    ledger = overlapped_result.ledger
    assert OVERLAP_HIDDEN_CATEGORY in ledger.categories()
    reconstructed = (
        ledger.per_rank("align")
        + ledger.per_rank("spgemm")
        - ledger.per_rank(OVERLAP_HIDDEN_CATEGORY)
    )
    np.testing.assert_allclose(
        reconstructed, overlapped_result.timeline.combined_per_rank, rtol=1e-12
    )
    # and the hidden time never appears in serial runs
    assert OVERLAP_HIDDEN_CATEGORY not in pipeline_result.ledger.categories()


def test_no_posthoc_report_without_preblocking(pipeline_result):
    assert pipeline_result.preblocking_report is None
    assert pipeline_result.timeline is not None
    assert pipeline_result.timeline.combined_per_rank is None
    assert pipeline_result.timeline.preblocking_report(1.0) is None


# ---------------------------------------------------------------- streaming memory
def test_streaming_peak_is_below_retaining_all_blocks(serial6_result, overlapped6_result):
    """Acceptance: streaming holds strictly less than all block outputs."""
    for result in (serial6_result, overlapped6_result):
        extras = result.stats.extras
        assert result.stats.blocks_computed > 1
        assert 0 < extras["peak_live_block_bytes"] < extras["retained_block_bytes"]
        # the run is over: nothing is left live
        assert result.memory.current("live_blocks") == 0


def test_serial_holds_one_block_overlapped_at_most_two(serial6_result, overlapped6_result):
    # serial: exactly one live block at a time -> peak is the largest block
    assert (
        serial6_result.stats.extras["peak_live_block_bytes"]
        == serial6_result.stats.peak_block_bytes
    )
    # overlapped: current block + in-flight next block, never more
    peak = overlapped6_result.stats.extras["peak_live_block_bytes"]
    assert peak >= overlapped6_result.stats.peak_block_bytes
    assert peak <= 2 * overlapped6_result.stats.peak_block_bytes


def test_accumulator_lifecycle_and_finalize():
    from repro.core.align_phase import EDGE_DTYPE

    acc = StreamingGraphAccumulator(n_vertices=10)
    acc.block_computed(1000)
    edges = np.zeros(2, dtype=EDGE_DTYPE)
    edges["row"] = [1, 5]
    edges["col"] = [2, 3]
    acc.consume(edges)
    acc.block_discarded(1000)
    acc.block_computed(400)
    acc.consume(np.zeros(0, dtype=EDGE_DTYPE))
    acc.block_discarded(400)
    assert acc.peak_live_block_bytes == 1000
    assert acc.live_block_bytes == 0
    assert acc.retained_block_bytes == 1400
    assert acc.edges_streamed == 2
    graph = acc.finalize()
    assert graph.num_edges == 2
    assert graph.edge_key_set() == {(1, 2), (3, 5)}


def test_accumulator_all_empty_blocks():
    """A run whose every block yields zero edges produces the empty graph."""
    from repro.core.align_phase import EDGE_DTYPE

    acc = StreamingGraphAccumulator(n_vertices=8)
    for nbytes in (300, 0, 120):
        acc.block_computed(nbytes)
        acc.consume(np.zeros(0, dtype=EDGE_DTYPE))
        acc.block_discarded(nbytes)
    assert acc.edges_streamed == 0
    assert acc.memory.peak("edge_buffer") == 0  # nothing buffered for empty streams
    assert acc.peak_live_block_bytes == 300
    assert acc.retained_block_bytes == 420
    graph = acc.finalize()
    assert graph.num_edges == 0
    assert graph.n_vertices == 8


def test_accumulator_deduplicates_edges_across_blocks():
    """The same pair arriving from two different blocks survives only once."""
    from repro.core.align_phase import EDGE_DTYPE

    def one_edge(row, col, score):
        edges = np.zeros(1, dtype=EDGE_DTYPE)
        edges["row"], edges["col"], edges["score"] = row, col, score
        return edges

    acc = StreamingGraphAccumulator(n_vertices=6)
    acc.block_computed(100)
    acc.consume(one_edge(1, 4, score=50))
    acc.block_discarded(100)
    acc.block_computed(100)
    acc.consume(one_edge(4, 1, score=99))  # same unordered pair, later block
    acc.consume(one_edge(2, 3, score=10))
    acc.block_discarded(100)
    assert acc.edges_streamed == 3  # streamed count is pre-canonicalization
    graph = acc.finalize()
    assert graph.num_edges == 2
    assert graph.edge_key_set() == {(1, 4), (2, 3)}
    # first occurrence wins the duplicate's attributes
    pair = graph.edges[(graph.edges["row"] == 1) & (graph.edges["col"] == 4)]
    assert pair["score"][0] == 50


def test_accumulator_zero_edge_block_memory_accounting():
    """A block that yields no edges still counts toward live/retained bytes."""
    from repro.core.align_phase import EDGE_DTYPE

    acc = StreamingGraphAccumulator(n_vertices=4)
    acc.block_computed(5000)  # live but will produce nothing
    acc.consume(np.zeros(0, dtype=EDGE_DTYPE))
    assert acc.live_block_bytes == 5000
    acc.block_computed(2000)  # second block live concurrently (pre-blocking)
    assert acc.peak_live_block_bytes == 7000
    acc.block_discarded(5000)
    edges = np.zeros(1, dtype=EDGE_DTYPE)
    edges["row"], edges["col"] = 0, 2
    acc.consume(edges)
    acc.block_discarded(2000)
    assert acc.live_block_bytes == 0
    assert acc.peak_live_block_bytes == 7000
    assert acc.retained_block_bytes == 7000
    assert acc.memory.peak("edge_buffer") == edges.nbytes
    assert acc.finalize().num_edges == 1


# ---------------------------------------------------------------- satellite plumbing
def test_batch_flops_forces_multi_group_batching_end_to_end(
    small_seqs, fast_params, pipeline_result
):
    """A small PastisParams.batch_flops budget reaches the Gustavson kernel."""
    # fast_params uses the default backend, which is gustavson — the shared
    # session run is the unconstrained baseline
    assert fast_params.spgemm_backend == "gustavson"
    roomy = pipeline_result
    tight = PastisPipeline(
        fast_params.replace(spgemm_backend="gustavson", batch_flops=64)
    ).run(small_seqs)
    # identical results, strictly more row groups under the tight budget
    assert tight.similarity_graph == roomy.similarity_graph
    assert tight.stats.spgemm_flops == roomy.stats.spgemm_flops
    assert (
        tight.stats.extras["spgemm_row_groups"]
        > roomy.stats.extras["spgemm_row_groups"]
        > 0
    )


def test_batch_flops_rejected_by_non_batching_backend(small_seqs, fast_params):
    with pytest.raises(ValueError, match="batch_flops"):
        PastisPipeline(
            fast_params.replace(spgemm_backend="expand", batch_flops=64)
        ).run(small_seqs)
    with pytest.raises(ValueError, match="batch_flops"):
        PastisParams(batch_flops=0)


def test_auto_backend_matches_fixed_backends(small_seqs, fast_params, pipeline_result):
    """Per-stage auto selection changes nothing about results or accounting."""
    auto = PastisPipeline(fast_params.replace(spgemm_backend="auto")).run(small_seqs)
    assert auto.similarity_graph == pipeline_result.similarity_graph
    assert auto.stats.spgemm_flops == pipeline_result.stats.spgemm_flops
    assert auto.stats.candidates_discovered == pipeline_result.stats.candidates_discovered


def test_auto_compression_threshold_plumbs_to_dispatch(small_seqs, fast_params):
    """The params knob reaches every SUMMA stage's auto dispatch.

    Forcing the threshold to the extremes pins the dispatch to one backend
    each way; the graphs must agree (backends are bit-identical) while the
    forced-Gustavson run shows its row-group batching in the stats.
    """
    base = fast_params.replace(spgemm_backend="auto", batch_flops=64)
    all_gustavson = PastisPipeline(
        base.replace(auto_compression_threshold=1e-9)
    ).run(small_seqs)
    # batch_flops forces the gustavson path regardless, so drop it for the
    # expand-pinning run
    all_expand = PastisPipeline(
        base.replace(auto_compression_threshold=1e9, batch_flops=None)
    ).run(small_seqs)
    assert all_gustavson.similarity_graph == all_expand.similarity_graph
    assert (
        all_gustavson.stats.extras["spgemm_row_groups"]
        > all_expand.stats.extras["spgemm_row_groups"]
    )


def test_predict_compression_factor_is_a_lower_bound():
    from repro.sparse import CooMatrix, predict_compression_factor, spgemm

    rng = np.random.default_rng(5)
    n, k, nnz = 60, 12, 600
    a = CooMatrix(
        (n, k),
        rng.integers(0, n, nnz),
        rng.integers(0, k, nnz),
        rng.integers(1, 9, nnz).astype(np.int64),
    ).deduplicate()
    _, stats = spgemm(a, a.transpose(), return_stats=True)
    predicted = predict_compression_factor(a, a.transpose())
    assert 1.0 <= predicted <= stats.compression_factor
    # dense-ish overlap product: the bound is informative, not vacuous
    assert predicted > 1.5
    empty = CooMatrix.empty((4, 4))
    assert predict_compression_factor(empty, empty) == 1.0


# ---------------------------------------------------------------- scheduler contract
def test_make_scheduler_factory():
    assert isinstance(make_scheduler("serial"), SerialScheduler)
    overlapped = make_scheduler("overlapped")
    assert isinstance(overlapped, OverlappedScheduler)
    assert overlapped.contention.align_contention > 1.0
    with pytest.raises(ValueError, match="unknown scheduler"):
        make_scheduler("speculative")


def test_overlapped_scheduler_empty_task_list(small_seqs, fast_params):
    """Degenerate schedule: no tasks still yields a coherent outcome."""
    from repro.core.engine import OverlappedScheduler

    outcome = OverlappedScheduler().run([], ctx=None)
    assert outcome.records == []
    assert outcome.timeline.combined_per_rank is None
    assert outcome.timeline.preblocking_report(1.0) is None
