"""The stage-graph execution engine: scheduler equivalence and streaming memory.

The central contract of :mod:`repro.core.engine`: scheduling policy (serial
vs. overlapped pre-blocking) changes *when* work runs and what the clock
reads, never *what* is computed.  The harness here asserts bit-identical
similarity graphs, statistics and block records across schedulers over
seeds, blockings and both load-balancing schemes; that the overlapped
schedule's derived Table-I report equals the closed-form
:class:`~repro.core.preblocking.PreblockingModel` on the same per-block
times; and that the streaming accumulator's peak live memory beats
retaining all block outputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import (
    OverlappedScheduler,
    ProcessScheduler,
    SerialScheduler,
    StreamingGraphAccumulator,
    ThreadedScheduler,
    make_scheduler,
)
from repro.core.engine.schedulers import OVERLAP_HIDDEN_CATEGORY
from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.core.preblocking import PreblockingModel
from repro.sequences.synthetic import synthetic_dataset

#: SearchStats keys that legitimately differ between schedulers: clock
#: readings (the overlapped schedule is the point of pre-blocking) and the
#: memory footprint (k + 1 live blocks instead of one).
TIMING_AND_MEMORY_KEYS = frozenset(
    {
        "time_total",
        "time_align",
        "time_spgemm",
        "time_sparse_all",
        "alignments_per_second",
        "tcups",
        "io_percent",
        "cwait_percent",
        "wall_seconds",
        "measured_align_seconds",
        "measured_discover_seconds",
        "peak_live_block_bytes",
        "peak_live_blocks",
        "edge_buffer_bytes",
        "phase_seconds",
    }
)


def _run(seqs, **overrides):
    params = PastisParams(
        kmer_length=5,
        nodes=4,
        common_kmer_threshold=1,
        align_batch_size=64,
        **overrides,
    )
    return PastisPipeline(params).run(seqs)


# shared runs on the session dataset (the serial 4-block counterpart is the
# session-scoped ``pipeline_result`` fixture) — several tests read different
# facets of the same execution, so run each configuration once per module
@pytest.fixture(scope="module")
def overlapped_result(small_seqs, fast_params):
    """pre_blocking=True counterpart of ``pipeline_result`` (4 blocks)."""
    return PastisPipeline(fast_params.replace(pre_blocking=True)).run(small_seqs)


@pytest.fixture(scope="module")
def serial6_result(small_seqs, fast_params):
    return PastisPipeline(fast_params.replace(num_blocks=6)).run(small_seqs)


@pytest.fixture(scope="module")
def overlapped6_result(small_seqs, fast_params):
    return PastisPipeline(
        fast_params.replace(num_blocks=6, pre_blocking=True)
    ).run(small_seqs)


def _assert_records_equal(records_a, records_b):
    assert len(records_a) == len(records_b)
    for ra, rb in zip(records_a, records_b):
        assert (ra.block_row, ra.block_col, ra.kind) == (rb.block_row, rb.block_col, rb.kind)
        assert ra.candidates == rb.candidates
        assert ra.aligned_pairs == rb.aligned_pairs
        assert ra.similar_pairs == rb.similar_pairs
        assert ra.block_bytes == rb.block_bytes
        assert np.array_equal(ra.pairs_per_rank, rb.pairs_per_rank)
        assert np.array_equal(ra.cells_per_rank, rb.cells_per_rank)
        # records keep *raw* seconds, so under the deterministic modeled
        # clock they agree bit-for-bit even across schedulers
        assert np.array_equal(ra.sparse_seconds_per_rank, rb.sparse_seconds_per_rank)
        assert np.array_equal(ra.align_seconds_per_rank, rb.align_seconds_per_rank)


# ---------------------------------------------------------------- equivalence harness
# the default run covers both schemes and both blockings on one seed (a
# ~40-sequence dataset keeps each run around a second); the second seed
# re-runs the whole matrix in the slow suite (CI on push)
@pytest.mark.parametrize("seed", [3, pytest.param(19, marks=pytest.mark.slow)])
@pytest.mark.parametrize("num_blocks", [4, 6])
@pytest.mark.parametrize("load_balancing", ["index", "triangularity"])
def test_scheduler_equivalence(seed, num_blocks, load_balancing):
    """Overlapped scheduling is bit-identical to serial, modulo timing fields."""
    seqs = synthetic_dataset(n_sequences=40, seed=seed)
    serial = _run(seqs, num_blocks=num_blocks, load_balancing=load_balancing)
    overlapped = _run(
        seqs, num_blocks=num_blocks, load_balancing=load_balancing, pre_blocking=True
    )
    assert serial.scheduler == "serial"
    assert overlapped.scheduler == "overlapped"

    # the similarity graph agrees down to every edge attribute
    assert np.array_equal(
        serial.similarity_graph.edges, overlapped.similarity_graph.edges
    )

    # statistics agree on everything but clock readings / live-memory shape
    stats_serial = serial.stats.as_dict()
    stats_overlapped = overlapped.stats.as_dict()
    assert set(stats_serial) == set(stats_overlapped)
    for key, value in stats_serial.items():
        if key in TIMING_AND_MEMORY_KEYS:
            continue
        if key.startswith("imbalance_"):
            # (max/avg - 1) is invariant under the scalar contention
            # multiplier up to float associativity of the per-block sums
            assert stats_overlapped[key] == pytest.approx(value, rel=1e-9), key
        else:
            assert stats_overlapped[key] == value, key

    _assert_records_equal(serial.block_records, overlapped.block_records)


def test_overlapped_report_matches_closed_form_model(overlapped6_result):
    """The executed schedule derives the exact report the closed form predicts."""
    result = overlapped6_result
    report = result.preblocking_report
    assert report is not None

    ledger = result.ledger
    other_seconds = sum(
        ledger.component_time(c) for c in ("sparse_other", "io", "cwait", "comm")
    )
    sparse = np.stack([r.sparse_seconds_per_rank for r in result.block_records])
    align = np.stack([r.align_seconds_per_rank for r in result.block_records])
    expected = PreblockingModel().evaluate(sparse, align, other_seconds)
    for field in (
        "blocks",
        "align_seconds",
        "sparse_seconds",
        "sum_seconds",
        "total_seconds",
        "align_seconds_pre",
        "sparse_seconds_pre",
        "combined_seconds_pre",
        "total_seconds_pre",
    ):
        assert getattr(report, field) == getattr(expected, field), field


def test_overlap_hidden_reconciles_ledger_with_clock(overlapped_result, pipeline_result):
    """align + spgemm - overlap_hidden equals the simulated combined clock."""
    ledger = overlapped_result.ledger
    assert OVERLAP_HIDDEN_CATEGORY in ledger.categories()
    reconstructed = (
        ledger.per_rank("align")
        + ledger.per_rank("spgemm")
        - ledger.per_rank(OVERLAP_HIDDEN_CATEGORY)
    )
    np.testing.assert_allclose(
        reconstructed, overlapped_result.timeline.combined_per_rank, rtol=1e-12
    )
    # and the hidden time never appears in serial runs
    assert OVERLAP_HIDDEN_CATEGORY not in pipeline_result.ledger.categories()


def test_no_posthoc_report_without_preblocking(pipeline_result):
    assert pipeline_result.preblocking_report is None
    assert pipeline_result.timeline is not None
    assert pipeline_result.timeline.combined_per_rank is None
    assert pipeline_result.timeline.preblocking_report(1.0) is None


# ---------------------------------------------------------------- streaming memory
def test_streaming_peak_is_below_retaining_all_blocks(serial6_result, overlapped6_result):
    """Acceptance: streaming holds strictly less than all block outputs."""
    for result in (serial6_result, overlapped6_result):
        extras = result.stats.extras
        assert result.stats.blocks_computed > 1
        assert 0 < extras["peak_live_block_bytes"] < extras["retained_block_bytes"]
        # the run is over: nothing is left live
        assert result.memory.current("live_blocks") == 0


def test_serial_holds_one_block_overlapped_at_most_two(serial6_result, overlapped6_result):
    # serial: exactly one live block at a time -> peak is the largest block
    assert (
        serial6_result.stats.extras["peak_live_block_bytes"]
        == serial6_result.stats.peak_block_bytes
    )
    # overlapped: current block + in-flight next block, never more
    peak = overlapped6_result.stats.extras["peak_live_block_bytes"]
    assert peak >= overlapped6_result.stats.peak_block_bytes
    assert peak <= 2 * overlapped6_result.stats.peak_block_bytes


def test_accumulator_lifecycle_and_finalize():
    from repro.core.align_phase import EDGE_DTYPE

    acc = StreamingGraphAccumulator(n_vertices=10)
    acc.block_computed(1000)
    edges = np.zeros(2, dtype=EDGE_DTYPE)
    edges["row"] = [1, 5]
    edges["col"] = [2, 3]
    acc.consume(edges)
    acc.block_discarded(1000)
    acc.block_computed(400)
    acc.consume(np.zeros(0, dtype=EDGE_DTYPE))
    acc.block_discarded(400)
    assert acc.peak_live_block_bytes == 1000
    assert acc.live_block_bytes == 0
    assert acc.retained_block_bytes == 1400
    assert acc.edges_streamed == 2
    graph = acc.finalize()
    assert graph.num_edges == 2
    assert graph.edge_key_set() == {(1, 2), (3, 5)}


def test_accumulator_all_empty_blocks():
    """A run whose every block yields zero edges produces the empty graph."""
    from repro.core.align_phase import EDGE_DTYPE

    acc = StreamingGraphAccumulator(n_vertices=8)
    for nbytes in (300, 0, 120):
        acc.block_computed(nbytes)
        acc.consume(np.zeros(0, dtype=EDGE_DTYPE))
        acc.block_discarded(nbytes)
    assert acc.edges_streamed == 0
    assert acc.memory.peak("edge_buffer") == 0  # nothing buffered for empty streams
    assert acc.peak_live_block_bytes == 300
    assert acc.retained_block_bytes == 420
    graph = acc.finalize()
    assert graph.num_edges == 0
    assert graph.n_vertices == 8


def test_accumulator_deduplicates_edges_across_blocks():
    """The same pair arriving from two different blocks survives only once."""
    from repro.core.align_phase import EDGE_DTYPE

    def one_edge(row, col, score):
        edges = np.zeros(1, dtype=EDGE_DTYPE)
        edges["row"], edges["col"], edges["score"] = row, col, score
        return edges

    acc = StreamingGraphAccumulator(n_vertices=6)
    acc.block_computed(100)
    acc.consume(one_edge(1, 4, score=50))
    acc.block_discarded(100)
    acc.block_computed(100)
    acc.consume(one_edge(4, 1, score=99))  # same unordered pair, later block
    acc.consume(one_edge(2, 3, score=10))
    acc.block_discarded(100)
    assert acc.edges_streamed == 3  # streamed count is pre-canonicalization
    graph = acc.finalize()
    assert graph.num_edges == 2
    assert graph.edge_key_set() == {(1, 4), (2, 3)}
    # first occurrence wins the duplicate's attributes
    pair = graph.edges[(graph.edges["row"] == 1) & (graph.edges["col"] == 4)]
    assert pair["score"][0] == 50


def test_accumulator_zero_edge_block_memory_accounting():
    """A block that yields no edges still counts toward live/retained bytes."""
    from repro.core.align_phase import EDGE_DTYPE

    acc = StreamingGraphAccumulator(n_vertices=4)
    acc.block_computed(5000)  # live but will produce nothing
    acc.consume(np.zeros(0, dtype=EDGE_DTYPE))
    assert acc.live_block_bytes == 5000
    acc.block_computed(2000)  # second block live concurrently (pre-blocking)
    assert acc.peak_live_block_bytes == 7000
    acc.block_discarded(5000)
    edges = np.zeros(1, dtype=EDGE_DTYPE)
    edges["row"], edges["col"] = 0, 2
    acc.consume(edges)
    acc.block_discarded(2000)
    assert acc.live_block_bytes == 0
    assert acc.peak_live_block_bytes == 7000
    assert acc.retained_block_bytes == 7000
    assert acc.memory.peak("edge_buffer") == edges.nbytes
    assert acc.finalize().num_edges == 1


# ---------------------------------------------------------------- satellite plumbing
def test_batch_flops_forces_multi_group_batching_end_to_end(
    small_seqs, fast_params, pipeline_result
):
    """A small PastisParams.batch_flops budget reaches the Gustavson kernel."""
    # fast_params uses the default backend, which is gustavson — the shared
    # session run is the unconstrained baseline
    assert fast_params.spgemm_backend == "gustavson"
    roomy = pipeline_result
    tight = PastisPipeline(
        fast_params.replace(spgemm_backend="gustavson", batch_flops=64)
    ).run(small_seqs)
    # identical results, strictly more row groups under the tight budget
    assert tight.similarity_graph == roomy.similarity_graph
    assert tight.stats.spgemm_flops == roomy.stats.spgemm_flops
    assert (
        tight.stats.extras["spgemm_row_groups"]
        > roomy.stats.extras["spgemm_row_groups"]
        > 0
    )


def test_batch_flops_rejected_by_non_batching_backend(small_seqs, fast_params):
    with pytest.raises(ValueError, match="batch_flops"):
        PastisPipeline(
            fast_params.replace(spgemm_backend="expand", batch_flops=64)
        ).run(small_seqs)
    with pytest.raises(ValueError, match="batch_flops"):
        PastisParams(batch_flops=0)


def test_auto_backend_matches_fixed_backends(small_seqs, fast_params, pipeline_result):
    """Per-stage auto selection changes nothing about results or accounting."""
    auto = PastisPipeline(fast_params.replace(spgemm_backend="auto")).run(small_seqs)
    assert auto.similarity_graph == pipeline_result.similarity_graph
    assert auto.stats.spgemm_flops == pipeline_result.stats.spgemm_flops
    assert auto.stats.candidates_discovered == pipeline_result.stats.candidates_discovered


def test_auto_compression_threshold_plumbs_to_dispatch(small_seqs, fast_params):
    """The params knob reaches every SUMMA stage's auto dispatch.

    Forcing the threshold to the extremes pins the dispatch to one backend
    each way; the graphs must agree (backends are bit-identical) while the
    forced-Gustavson run shows its row-group batching in the stats.
    """
    base = fast_params.replace(spgemm_backend="auto", batch_flops=64)
    all_gustavson = PastisPipeline(
        base.replace(auto_compression_threshold=1e-9)
    ).run(small_seqs)
    # batch_flops forces the gustavson path regardless, so drop it for the
    # expand-pinning run
    all_expand = PastisPipeline(
        base.replace(auto_compression_threshold=1e9, batch_flops=None)
    ).run(small_seqs)
    assert all_gustavson.similarity_graph == all_expand.similarity_graph
    assert (
        all_gustavson.stats.extras["spgemm_row_groups"]
        > all_expand.stats.extras["spgemm_row_groups"]
    )


def test_predict_compression_factor_is_a_lower_bound():
    from repro.sparse import CooMatrix, predict_compression_factor, spgemm

    rng = np.random.default_rng(5)
    n, k, nnz = 60, 12, 600
    a = CooMatrix(
        (n, k),
        rng.integers(0, n, nnz),
        rng.integers(0, k, nnz),
        rng.integers(1, 9, nnz).astype(np.int64),
    ).deduplicate()
    _, stats = spgemm(a, a.transpose(), return_stats=True)
    predicted = predict_compression_factor(a, a.transpose())
    assert 1.0 <= predicted <= stats.compression_factor
    # dense-ish overlap product: the bound is informative, not vacuous
    assert predicted > 1.5
    empty = CooMatrix.empty((4, 4))
    assert predict_compression_factor(empty, empty) == 1.0


# ---------------------------------------------------------------- threaded executor
def _stats_equal_modulo_timing(stats_a, stats_b, ignore=frozenset()):
    assert set(stats_a) - ignore == set(stats_b) - ignore
    for key, value in stats_a.items():
        if key in TIMING_AND_MEMORY_KEYS or key in ignore:
            continue
        if key.startswith("imbalance_"):
            assert stats_b[key] == pytest.approx(value, rel=1e-9), key
        else:
            assert stats_b[key] == value, key


@pytest.fixture(scope="module")
def threaded_serial_baseline():
    """Serial reference run for the depth x threads bit-identity matrix."""
    seqs = synthetic_dataset(n_sequences=40, seed=3)
    return seqs, _run(seqs, num_blocks=6)


# acceptance: bit-identical records/edges across depth {1, 2, 4} x threads
# {1, 2, 4} — concurrency may reorder execution, never results
@pytest.mark.parametrize("depth", [1, 2, 4])
@pytest.mark.parametrize("threads", [1, 2, 4])
def test_threaded_scheduler_bit_identical_to_serial(
    depth, threads, threaded_serial_baseline
):
    seqs, serial = threaded_serial_baseline
    threaded = _run(
        seqs,
        num_blocks=6,
        pre_blocking=True,
        preblock_depth=depth,
        preblock_workers=threads,
        scheduler="threaded",
    )
    assert threaded.scheduler == "threaded"
    assert np.array_equal(
        serial.similarity_graph.edges, threaded.similarity_graph.edges
    )
    _assert_records_equal(serial.block_records, threaded.block_records)
    _stats_equal_modulo_timing(serial.stats.as_dict(), threaded.stats.as_dict())
    # the ordered discover lane makes even the per-rank ledger sums of the
    # modeled categories bit-identical to the serial schedule
    for category in ("align", "spgemm", "comm", "cwait", "sparse_other", "io"):
        assert np.array_equal(
            serial.ledger.per_rank(category), threaded.ledger.per_rank(category)
        ), category
    # memory bound: at most depth + 1 blocks were ever live
    assert threaded.stats.extras["peak_live_blocks"] <= depth + 1


def test_threaded_scheduler_clock_identity_and_report(threaded_serial_baseline):
    """align + spgemm - overlap_hidden == combined clock, and a report derives."""
    seqs, serial = threaded_serial_baseline
    threaded = _run(
        seqs, num_blocks=6, pre_blocking=True, preblock_depth=2, scheduler="threaded"
    )
    ledger = threaded.ledger
    assert OVERLAP_HIDDEN_CATEGORY in ledger.categories()
    reconstructed = (
        ledger.per_rank("align")
        + ledger.per_rank("spgemm")
        - ledger.per_rank(OVERLAP_HIDDEN_CATEGORY)
    )
    np.testing.assert_allclose(
        reconstructed, threaded.timeline.combined_per_rank, rtol=1e-12
    )
    assert threaded.timeline.preblock_depth == 2
    assert threaded.timeline.measured_phase_seconds > 0.0
    report = threaded.preblocking_report
    assert report is not None
    # no synthetic contention in the executor: scheduled == raw components
    assert report.align_seconds_pre == report.align_seconds
    assert report.sparse_seconds_pre == report.sparse_seconds
    # the schedule hid something, so the combined clock beats the sum
    assert report.combined_seconds_pre < report.sum_seconds


def test_threaded_scheduler_measured_clock_same_results(threaded_serial_baseline):
    """Under clock="measured" the executor still produces the serial results."""
    seqs, serial = threaded_serial_baseline
    threaded = _run(
        seqs,
        num_blocks=6,
        clock="measured",
        pre_blocking=True,
        preblock_depth=2,
        preblock_workers=2,
    )
    assert threaded.scheduler == "threaded"  # measured + pre-blocking selects it
    assert np.array_equal(
        serial.similarity_graph.edges, threaded.similarity_graph.edges
    )
    # the invariant holds for measured wall seconds, not just modeled ones
    ledger = threaded.ledger
    reconstructed = (
        ledger.per_rank("align")
        + ledger.per_rank("spgemm")
        - ledger.per_rank(OVERLAP_HIDDEN_CATEGORY)
    )
    np.testing.assert_allclose(
        reconstructed, threaded.timeline.combined_per_rank, rtol=1e-9
    )


# ---------------------------------------------------------------- process executor
#: SearchStats extras only the process scheduler reports (per-lane process
#: timings and shared-memory transport bytes) — excluded from cross-scheduler
#: stats-identity comparisons, asserted separately below.
PROCESS_EXTRAS_KEYS = frozenset(
    {"process_lanes", "shm_peak_block_bytes", "shm_total_bytes"}
)


# acceptance: bit-identical records/edges/stats/ledger across depth {1, 2, 4}
# x worker processes {1, 2, 4} — fork, shm transport and parent-ordered
# replay may move work across processes, never change results
@pytest.mark.parametrize("depth", [1, 2, 4])
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_process_scheduler_bit_identical_to_serial(
    depth, workers, threaded_serial_baseline
):
    seqs, serial = threaded_serial_baseline
    process = _run(
        seqs,
        num_blocks=6,
        pre_blocking=True,
        preblock_depth=depth,
        preblock_workers=workers,
        scheduler="process",
    )
    assert process.scheduler == "process"
    assert np.array_equal(
        serial.similarity_graph.edges, process.similarity_graph.edges
    )
    _assert_records_equal(serial.block_records, process.block_records)
    _stats_equal_modulo_timing(
        serial.stats.as_dict(), process.stats.as_dict(), ignore=PROCESS_EXTRAS_KEYS
    )
    # parent-ordered replay of the workers' ledger journals makes the
    # per-rank sums of every modeled category bit-identical to serial
    for category in ("align", "spgemm", "comm", "cwait", "sparse_other", "io"):
        assert np.array_equal(
            serial.ledger.per_rank(category), process.ledger.per_rank(category)
        ), category
    # memory bound: at most depth + 1 blocks were ever live
    assert process.stats.extras["peak_live_blocks"] <= depth + 1
    # the process-specific extras are present and coherent
    lanes = process.stats.extras["process_lanes"]
    assert sum(lane["blocks"] for lane in lanes.values()) == 6
    assert len(lanes) <= workers
    assert process.stats.extras["shm_peak_block_bytes"] > 0
    assert (
        process.stats.extras["shm_total_bytes"]
        >= process.stats.extras["shm_peak_block_bytes"]
    )


def test_process_scheduler_clock_identity_and_report(threaded_serial_baseline):
    """The process schedule closes through the same depth-k overlap algebra."""
    seqs, serial = threaded_serial_baseline
    process = _run(
        seqs, num_blocks=6, pre_blocking=True, preblock_depth=2, scheduler="process"
    )
    ledger = process.ledger
    assert OVERLAP_HIDDEN_CATEGORY in ledger.categories()
    reconstructed = (
        ledger.per_rank("align")
        + ledger.per_rank("spgemm")
        - ledger.per_rank(OVERLAP_HIDDEN_CATEGORY)
    )
    np.testing.assert_allclose(
        reconstructed, process.timeline.combined_per_rank, rtol=1e-12
    )
    assert process.timeline.preblock_depth == 2
    assert process.timeline.measured_phase_seconds > 0.0
    report = process.preblocking_report
    assert report is not None
    assert report.combined_seconds_pre < report.sum_seconds
    # the modeled clock is scheduler-independent: same combined clock as the
    # threaded executor at the same depth
    threaded = _run(
        seqs, num_blocks=6, pre_blocking=True, preblock_depth=2, scheduler="threaded"
    )
    np.testing.assert_array_equal(
        process.timeline.combined_per_rank, threaded.timeline.combined_per_rank
    )


def test_process_scheduler_measured_clock_same_results(threaded_serial_baseline):
    """Under clock="measured" the process executor still matches serial."""
    seqs, serial = threaded_serial_baseline
    process = _run(
        seqs,
        num_blocks=6,
        clock="measured",
        pre_blocking=True,
        preblock_depth=2,
        preblock_workers=2,
        scheduler="process",
    )
    assert process.scheduler == "process"
    assert np.array_equal(
        serial.similarity_graph.edges, process.similarity_graph.edges
    )
    ledger = process.ledger
    reconstructed = (
        ledger.per_rank("align")
        + ledger.per_rank("spgemm")
        - ledger.per_rank(OVERLAP_HIDDEN_CATEGORY)
    )
    np.testing.assert_allclose(
        reconstructed, process.timeline.combined_per_rank, rtol=1e-9
    )


def test_process_worker_death_fails_fast_and_sweeps_shm(
    small_seqs, fast_params, monkeypatch
):
    """Satellite acceptance: SIGKILL a discover worker mid-block; the run must
    surface a clear error promptly (no deadlock on the broken pool) and leave
    no shared-memory segment behind in /dev/shm."""
    import glob
    import os
    import signal
    import threading

    from repro.distsparse.blocked_summa import BlockedSpGemm

    calls = {"n": 0}  # forked per worker: counts that worker's blocks only
    original = BlockedSpGemm.compute_block

    def kamikaze(self, block_row, block_col):
        calls["n"] += 1
        if calls["n"] == 2:
            os.kill(os.getpid(), signal.SIGKILL)
        return original(self, block_row, block_col)

    # patch the class before run(): the pool forks after submission starts,
    # so every worker inherits the kamikaze discover stage
    monkeypatch.setattr(BlockedSpGemm, "compute_block", kamikaze)
    params = fast_params.replace(
        num_blocks=6,
        pre_blocking=True,
        scheduler="process",
        preblock_depth=3,
        preblock_workers=2,
    )
    outcome: list[BaseException] = []

    def run():
        try:
            PastisPipeline(params).run(small_seqs)
        except BaseException as exc:  # noqa: BLE001 - the assertion target
            outcome.append(exc)

    runner = threading.Thread(target=run)
    runner.start()
    runner.join(timeout=60.0)
    assert not runner.is_alive(), "killed process run deadlocked in teardown"
    assert len(outcome) == 1
    assert isinstance(outcome[0], RuntimeError)
    assert "discover worker died" in str(outcome[0])
    # teardown hygiene: every segment the run created (or could have) is gone
    assert glob.glob("/dev/shm/repro-psched-*") == []


def test_process_worker_exception_propagates(small_seqs, fast_params, monkeypatch):
    """An ordinary exception in a worker (not a crash) surfaces unchanged."""
    from repro.distsparse.blocked_summa import BlockedSpGemm

    original = BlockedSpGemm.compute_block

    def failing(self, block_row, block_col):
        raise ValueError("injected worker failure")

    monkeypatch.setattr(BlockedSpGemm, "compute_block", failing)
    params = fast_params.replace(
        num_blocks=6, pre_blocking=True, scheduler="process", preblock_workers=2
    )
    with pytest.raises(ValueError, match="injected worker failure"):
        PastisPipeline(params).run(small_seqs)
    import glob

    assert glob.glob("/dev/shm/repro-psched-*") == []


def test_pipeline_scheduler_selection(small_seqs, fast_params):
    """pre_blocking x clock x depth derive the documented scheduler choice."""
    modeled = fast_params.replace(pre_blocking=True)
    assert PastisPipeline(modeled).run(small_seqs).scheduler == "overlapped"
    deep = fast_params.replace(pre_blocking=True, preblock_depth=2)
    assert PastisPipeline(deep).run(small_seqs).scheduler == "threaded"


def test_dist_mcl_labels_bit_identical_across_overlap_depths(pipeline_result):
    """Distributed MCL inherits the depth-k overlap algebra: labels unchanged."""
    from repro.graph.dist import (
        CLUSTER_EXPAND_CATEGORY,
        CLUSTER_OVERLAP_HIDDEN_CATEGORY,
        CLUSTER_PRUNE_CATEGORY,
        DistMarkovClustering,
    )
    from repro.graph.mcl import MarkovClustering

    graph = pipeline_result.similarity_graph
    serial = MarkovClustering().fit_graph(graph)
    for depth in (1, 2, 4):
        dist = DistMarkovClustering(
            nprocs=4, overlap=True, overlap_depth=depth
        ).fit_graph(graph)
        assert np.array_equal(dist.labels, serial.labels), depth
        assert dist.final_matrix.same_bits(serial.final_matrix)
        ledger = dist.ledger
        reconstructed = (
            ledger.per_rank(CLUSTER_EXPAND_CATEGORY)
            + ledger.per_rank(CLUSTER_PRUNE_CATEGORY)
            - ledger.per_rank(CLUSTER_OVERLAP_HIDDEN_CATEGORY)
        )
        np.testing.assert_allclose(reconstructed, dist.clock_per_rank, rtol=1e-12)


# ---------------------------------------------------------------- bounded admission
def test_accumulator_peak_accounting_with_k_plus_1_live_blocks():
    """depth+1 bounded admission: peak bytes and counts track the k+1 window."""
    from repro.core.align_phase import EDGE_DTYPE

    acc = StreamingGraphAccumulator(n_vertices=12, max_live_blocks=3)
    sizes = [1000, 400, 2500, 800, 50]
    # admit/compute the first k+1 = 3 blocks (speculation fills the window)
    for nbytes in sizes[:3]:
        acc.admit_block()
        acc.block_computed(nbytes)
    assert acc.live_blocks == 3
    assert acc.peak_live_blocks == 3
    assert acc.peak_live_block_bytes == 1000 + 400 + 2500
    # consume/discard in block order while admitting the remaining blocks
    acc.consume(np.zeros(0, dtype=EDGE_DTYPE))
    acc.block_discarded(sizes[0])
    acc.admit_block()
    acc.block_computed(sizes[3])
    assert acc.live_blocks == 3
    assert acc.peak_live_block_bytes == 1000 + 400 + 2500  # old peak stands
    acc.block_discarded(sizes[1])
    acc.block_discarded(sizes[2])
    acc.admit_block()
    acc.block_computed(sizes[4])
    acc.block_discarded(sizes[3])
    acc.block_discarded(sizes[4])
    assert acc.live_blocks == 0
    assert acc.peak_live_blocks == 3
    assert acc.retained_block_bytes == sum(sizes)
    assert acc.live_block_bytes == 0


def test_accumulator_duplicate_edges_arriving_out_of_block_order():
    """Cross-block duplicates keep first-consumed attributes even when block
    lifetimes interleave out of discard order (deep speculation)."""
    from repro.core.align_phase import EDGE_DTYPE

    def one_edge(row, col, score):
        edges = np.zeros(1, dtype=EDGE_DTYPE)
        edges["row"], edges["col"], edges["score"] = row, col, score
        return edges

    acc = StreamingGraphAccumulator(n_vertices=8, max_live_blocks=3)
    # three blocks live at once; edges consumed in block order but discards
    # interleave (block 1 outlives block 2's consumption)
    for _ in range(3):
        acc.admit_block()
    acc.block_computed(100)
    acc.block_computed(200)
    acc.block_computed(300)
    acc.consume(one_edge(2, 6, score=40))       # block 0: first occurrence
    acc.block_discarded(100)
    acc.consume(one_edge(6, 2, score=90))       # block 1: same unordered pair
    acc.consume(one_edge(1, 3, score=10))       # block 2
    acc.block_discarded(300)                    # block 2 discarded before block 1
    acc.block_discarded(200)
    assert acc.edges_streamed == 3
    graph = acc.finalize()
    assert graph.num_edges == 2
    assert graph.edge_key_set() == {(2, 6), (1, 3)}
    pair = graph.edges[(graph.edges["row"] == 2) & (graph.edges["col"] == 6)]
    assert pair["score"][0] == 40  # first occurrence wins, block order decides


def test_accumulator_forced_eviction_ordering():
    """A full window blocks admission until the oldest block is evicted."""
    import threading
    import time as _time

    acc = StreamingGraphAccumulator(n_vertices=4, max_live_blocks=2)
    admitted: list[int] = []

    def lane():
        for block in range(4):
            acc.admit_block()
            acc.block_computed(100 * (block + 1))
            admitted.append(block)

    worker = threading.Thread(target=lane)
    worker.start()
    deadline = _time.monotonic() + 5.0
    while len(admitted) < 2 and _time.monotonic() < deadline:
        _time.sleep(0.005)
    _time.sleep(0.05)
    # the window is full: block 2 must wait for an eviction
    assert admitted == [0, 1]
    assert acc.live_blocks == 2
    acc.block_discarded(100)          # evict block 0 -> admits block 2
    while len(admitted) < 3 and _time.monotonic() < deadline:
        _time.sleep(0.005)
    assert admitted == [0, 1, 2]
    acc.block_discarded(200)          # evict block 1 -> admits block 3
    worker.join(timeout=5.0)
    assert not worker.is_alive()
    assert admitted == [0, 1, 2, 3]
    assert acc.peak_live_blocks == 2  # the bound held throughout
    acc.block_discarded(300)
    acc.block_discarded(400)
    assert acc.live_blocks == 0


def test_accumulator_single_thread_over_bound_raises_not_hangs():
    """Registering past the bound without a pre-admission fails loudly: the
    registering thread may be the only one able to evict, so waiting for a
    slot it would itself have to free would deadlock silently."""
    acc = StreamingGraphAccumulator(n_vertices=4, max_live_blocks=1)
    acc.block_computed(100)  # self-admits
    with pytest.raises(RuntimeError, match="live-block bound exceeded"):
        acc.block_computed(200)
    acc.block_discarded(100)
    acc.block_computed(200)  # a freed slot admits again
    assert acc.live_blocks == 1


def test_accumulator_abort_admission_unblocks_waiters():
    import threading

    acc = StreamingGraphAccumulator(n_vertices=4, max_live_blocks=1)
    acc.admit_block()
    acc.block_computed(10)
    errors: list[Exception] = []

    def blocked():
        try:
            acc.admit_block()
        except RuntimeError as exc:
            errors.append(exc)

    worker = threading.Thread(target=blocked)
    worker.start()
    acc.abort_admission()
    worker.join(timeout=5.0)
    assert not worker.is_alive()
    assert len(errors) == 1


def test_turnstile_abort_wakes_parked_turn_waiters():
    """A worker parked for a turn whose predecessor will never run (e.g. its
    future was cancelled during teardown) can only be freed by aborting the
    turnstile itself — the admission gate's abort does not reach this lane."""
    import threading

    from repro.core.engine.executor import _Turnstile

    turnstile = _Turnstile()
    errors: list[Exception] = []
    entered = threading.Event()

    def parked():
        try:
            with turnstile.turn(5):  # tickets 0..4 will never run
                entered.set()
        except RuntimeError as exc:
            errors.append(exc)

    worker = threading.Thread(target=parked)
    worker.start()
    turnstile.abort()
    worker.join(timeout=5.0)
    assert not worker.is_alive()
    assert not entered.is_set()
    assert len(errors) == 1 and "aborted" in str(errors[0])
    # an aborted turnstile refuses new entrants too
    with pytest.raises(RuntimeError, match="aborted"):
        with turnstile.turn(0):
            pass


def test_threaded_discover_failure_propagates_without_deadlock(
    small_seqs, fast_params, monkeypatch
):
    """Regression: a discover-lane failure must surface the original error
    and tear the run down promptly.  Before the fix, teardown aborted only
    the accumulator's admission gate; a later-block worker parked in the
    determinism *turnstile* (waiting for the dead block's turn, which can
    never come) left ``pool.shutdown(wait=True)`` joining a thread that
    could never wake."""
    import threading

    from repro.distsparse.blocked_summa import BlockedSpGemm

    calls = {"n": 0}
    original = BlockedSpGemm.compute_block

    def failing_compute(self, block_row, block_col):
        calls["n"] += 1
        if calls["n"] == 2:
            raise RuntimeError("injected discover failure")
        return original(self, block_row, block_col)

    monkeypatch.setattr(BlockedSpGemm, "compute_block", failing_compute)
    params = fast_params.replace(
        num_blocks=6,
        pre_blocking=True,
        use_threads=True,
        preblock_depth=3,
        preblock_workers=3,
    )
    outcome: list[BaseException] = []

    def run():
        try:
            PastisPipeline(params).run(small_seqs)
        except BaseException as exc:  # noqa: BLE001 - the assertion target
            outcome.append(exc)

    runner = threading.Thread(target=run)
    runner.start()
    runner.join(timeout=60.0)
    assert not runner.is_alive(), "failed threaded run deadlocked in teardown"
    assert len(outcome) == 1
    assert isinstance(outcome[0], RuntimeError)
    assert "injected discover failure" in str(outcome[0])


# ---------------------------------------------------------------- scheduler contract
def test_make_scheduler_factory():
    assert isinstance(make_scheduler("serial"), SerialScheduler)
    overlapped = make_scheduler("overlapped")
    assert isinstance(overlapped, OverlappedScheduler)
    assert overlapped.contention.align_contention > 1.0
    threaded = make_scheduler("threaded", depth=3, max_workers=2)
    assert isinstance(threaded, ThreadedScheduler)
    assert (threaded.depth, threaded.max_workers) == (3, 2)
    process = make_scheduler("process", depth=2, max_workers=3)
    assert isinstance(process, ProcessScheduler)
    assert (process.depth, process.max_workers) == (2, 3)
    with pytest.raises(ValueError, match="depth"):
        make_scheduler("threaded", depth=0)
    with pytest.raises(ValueError, match="depth"):
        make_scheduler("process", depth=0)
    with pytest.raises(ValueError, match="max_workers"):
        make_scheduler("process", max_workers=0)
    with pytest.raises(ValueError, match="unknown scheduler"):
        make_scheduler("speculative")


def test_overlapped_scheduler_empty_task_list(small_seqs, fast_params):
    """Degenerate schedule: no tasks still yields a coherent outcome."""
    from repro.core.engine import OverlappedScheduler

    outcome = OverlappedScheduler().run([], ctx=None)
    assert outcome.records == []
    assert outcome.timeline.combined_per_rank is None
    assert outcome.timeline.preblocking_report(1.0) is None
