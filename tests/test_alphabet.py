"""Tests for repro.sequences.alphabet."""

import numpy as np
import pytest

from repro.sequences.alphabet import (
    AMINO_ACIDS,
    DAYHOFF6,
    MURPHY10,
    PROTEIN,
    reduced_alphabet,
)


def test_protein_alphabet_size():
    assert PROTEIN.size == 20
    assert len(PROTEIN) == 20
    assert PROTEIN.letters == AMINO_ACIDS


def test_encode_decode_roundtrip():
    seq = "ACDEFGHIKLMNPQRSTVWY"
    codes = PROTEIN.encode(seq)
    assert codes.dtype == np.uint8
    assert PROTEIN.decode(codes) == seq


def test_encode_is_case_insensitive():
    assert np.array_equal(PROTEIN.encode("acdef"), PROTEIN.encode("ACDEF"))


def test_ambiguous_codes_map_to_canonical():
    codes = PROTEIN.encode("BZJXUO*")
    assert codes.shape == (7,)
    assert int(codes.max()) < PROTEIN.size


def test_unknown_character_raises():
    with pytest.raises(ValueError, match="unknown residue"):
        PROTEIN.encode("AC1DE")


def test_decode_rejects_out_of_range_codes():
    with pytest.raises(ValueError):
        PROTEIN.decode(np.array([25], dtype=np.uint8))


def test_murphy10_size_and_grouping():
    assert MURPHY10.size == 10
    # L, V, I, M collapse to the same symbol
    codes = MURPHY10.encode("LVIM")
    assert len(set(codes.tolist())) == 1
    # K and R collapse, but K and H do not
    assert MURPHY10.encode("K")[0] == MURPHY10.encode("R")[0]
    assert MURPHY10.encode("K")[0] != MURPHY10.encode("H")[0]


def test_dayhoff6_size():
    assert DAYHOFF6.size == 6


def test_projection_to_reduced_alphabet():
    codes = PROTEIN.encode("LVIMKR")
    reduced = PROTEIN.project(MURPHY10, codes)
    assert len(set(reduced[:4].tolist())) == 1
    assert reduced[4] == reduced[5]


def test_reduced_alphabet_requires_full_coverage():
    with pytest.raises(ValueError, match="do not cover"):
        reduced_alphabet("bad", ["AR", "N"])


def test_reduced_alphabet_rejects_duplicates():
    groups = ["AR", "RN"] + [c for c in AMINO_ACIDS if c not in "ARN"]
    with pytest.raises(ValueError, match="more than one group"):
        reduced_alphabet("dup", groups)


def test_all_amino_acids_encodable_in_every_alphabet():
    for alphabet in (PROTEIN, MURPHY10, DAYHOFF6):
        codes = alphabet.encode(AMINO_ACIDS)
        assert codes.size == 20
        assert int(codes.max()) < alphabet.size
