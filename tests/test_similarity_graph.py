"""Tests for the similarity graph container."""

import numpy as np
import pytest

from repro.core.align_phase import EDGE_DTYPE
from repro.core.similarity_graph import SimilarityGraph


def make_edges(pairs, ani=0.8, coverage=0.9, score=50):
    edges = np.zeros(len(pairs), dtype=EDGE_DTYPE)
    for idx, (i, j) in enumerate(pairs):
        edges[idx]["row"] = i
        edges[idx]["col"] = j
        edges[idx]["ani"] = ani
        edges[idx]["coverage"] = coverage
        edges[idx]["score"] = score
    return edges


def test_from_edges_canonicalizes():
    graph = SimilarityGraph.from_edges(make_edges([(3, 1), (1, 3), (2, 2), (0, 4)]), 5)
    assert graph.num_edges == 2  # duplicate and self-loop removed
    pairs = graph.edge_key_set()
    assert pairs == {(1, 3), (0, 4)}


def test_from_edges_dedup_keeps_first_occurrence_attributes():
    edges = make_edges([(3, 1), (1, 3), (1, 3)], score=10)
    edges["score"] = [10, 20, 30]
    graph = SimilarityGraph.from_edges(edges, 5)
    assert graph.num_edges == 1
    assert graph.edges["score"][0] == 10  # first occurrence wins


def test_from_edges_no_int64_key_collisions_at_large_n_vertices():
    """The former ``row * n + col`` dedup key wrapped past int64 for huge n.

    With ``n_vertices = 2**62`` the pairs (4, 5) and (0, 5) produced keys
    ``2**64 + 5`` and ``5`` — identical after int64 wraparound — so one of
    two *distinct* edges was silently dropped.  The coordinate-wise dedup
    must keep both.
    """
    n = 2**62
    edges = make_edges([(4, 5), (0, 5), (4, 5)])  # one true duplicate
    graph = SimilarityGraph.from_edges(edges, n)
    assert graph.num_edges == 2
    assert graph.edge_key_set() == {(4, 5), (0, 5)}
    # pairs built from genuinely huge indices survive too
    big = make_edges([(n - 2, n - 1), (0, n - 1), (n - 2, n - 1)])
    graph = SimilarityGraph.from_edges(big, n)
    assert graph.num_edges == 2
    assert graph.edge_key_set() == {(n - 2, n - 1), (0, n - 1)}


def test_empty_graph():
    graph = SimilarityGraph.empty(10)
    assert graph.num_edges == 0
    assert graph.degrees().sum() == 0
    assert len(np.unique(graph.connected_components())) == 10


def test_degrees():
    graph = SimilarityGraph.from_edges(make_edges([(0, 1), (1, 2)]), 4)
    assert graph.degrees().tolist() == [1, 2, 1, 0]


def test_connected_components_cluster_families():
    graph = SimilarityGraph.from_edges(make_edges([(0, 1), (1, 2), (4, 5)]), 7)
    labels = graph.connected_components()
    assert labels[0] == labels[1] == labels[2]
    assert labels[4] == labels[5]
    assert labels[0] != labels[4]
    assert labels[6] not in (labels[0], labels[4])


def test_to_networkx_attributes():
    graph = SimilarityGraph.from_edges(make_edges([(0, 1)], ani=0.75, score=42), 3)
    g = graph.to_networkx()
    assert g.number_of_nodes() == 3
    assert g.number_of_edges() == 1
    assert g.edges[0, 1]["score"] == 42
    assert g.edges[0, 1]["ani"] == pytest.approx(0.75, abs=1e-6)


def test_to_coo():
    graph = SimilarityGraph.from_edges(make_edges([(0, 2)]), 3)
    coo = graph.to_coo()
    assert coo.shape == (3, 3)
    assert coo.nnz == 1


def test_triples_roundtrip(tmp_path):
    graph = SimilarityGraph.from_edges(make_edges([(0, 1), (2, 3)], ani=0.5), 5)
    path = tmp_path / "graph.tsv"
    nbytes = graph.write_triples(path)
    assert nbytes > 0
    loaded = SimilarityGraph.read_triples(path, 5)
    assert loaded == graph
    assert np.allclose(loaded.edges["ani"], 0.5, atol=1e-3)


def test_write_triples_with_names(tmp_path):
    graph = SimilarityGraph.from_edges(make_edges([(0, 1)]), 2)
    path = tmp_path / "named.tsv"
    graph.write_triples(path, names=np.array(["seqA", "seqB"], dtype=object))
    assert "seqA\tseqB" in path.read_text()


def test_equality_ignores_edge_order():
    a = SimilarityGraph.from_edges(make_edges([(0, 1), (2, 3)]), 5)
    b = SimilarityGraph.from_edges(make_edges([(3, 2), (1, 0)]), 5)
    c = SimilarityGraph.from_edges(make_edges([(0, 1)]), 5)
    assert a == b
    assert a != c
    assert a != "something else"
