"""The serving layer itself: index persistence, providers, CLI, batcher.

Contract-level bit-identity of query runs lives in ``test_query_mode.py``;
this module covers the machinery around it — the on-disk index (round-trip,
refusals, integrity taxonomy), the pluggable sequence providers, the
``python -m repro.serve`` CLI, and the request-batching front end.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.distsparse.blocked_summa import BlockSchedule
from repro.distsparse.distmat import DistSparseMatrix
from repro.core.kmer_matrix import build_kmer_coo
from repro.mpi.communicator import SimCommunicator
from repro.sequences import SequenceSet, write_fasta
from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset
from repro.serve import (
    IndexCompatibilityError,
    IndexIntegrityError,
    KmerIndex,
    QueryBatcher,
    ServeIndexError,
    available_providers,
    build_index,
    load_sequences,
    register_provider,
)
from repro.serve.cli import main as serve_main
from repro.serve.index import SEQUENCES_NAME, SHARD_DIR, shard_filename

N_DB = 16


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    """Database sequences, base params, and a built index."""
    sequences = synthetic_dataset(
        config=SyntheticDatasetConfig(
            n_sequences=N_DB, seed=11, family_fraction=0.8, mean_family_size=4.0
        )
    )
    params = PastisParams(
        kmer_length=4, nodes=4, num_blocks=4, common_kmer_threshold=1, cache_dir=None
    )
    index_dir = tmp_path_factory.mktemp("serve-index")
    build_index(sequences, params, index_dir)
    return sequences, params, str(index_dir)


# ---------------------------------------------------------------------- index
def test_index_round_trip_bitwise(db):
    """Stored stripes reload bitwise equal to freshly computed ones."""
    sequences, params, index_dir = db
    index = KmerIndex.open(index_dir)
    comm = SimCommunicator(params.nodes)
    coo, _ = build_kmer_coo(sequences, params)
    bt = DistSparseMatrix.from_global_coo(coo.transpose(), comm)
    schedule = BlockSchedule(n_rows=N_DB, n_cols=N_DB, br=1, bc=index.bc)
    for c in range(index.bc):
        expected = bt.col_stripe(schedule.col_range(c))
        got = index.stripe(c, comm)
        assert got.shape == expected.shape
        for rank in range(params.nodes):
            assert got.offsets(rank) == expected.offsets(rank)
            want, have = expected.local(rank), got.local(rank)
            np.testing.assert_array_equal(have.rows, want.rows)
            np.testing.assert_array_equal(have.cols, want.cols)
            np.testing.assert_array_equal(have.values, want.values)


def test_index_round_trips_sequences_and_summary(db):
    sequences, params, index_dir = db
    index = KmerIndex.open(index_dir)
    stored = index.sequences()
    np.testing.assert_array_equal(stored.data, sequences.data)
    np.testing.assert_array_equal(stored.offsets, sequences.offsets)
    assert [str(n) for n in stored.names] == [str(n) for n in sequences.names]
    summary = index.summary()
    assert summary["n_sequences"] == N_DB
    assert summary["params"]["kmer_length"] == params.kmer_length
    report = index.verify()
    assert report["ok"] and report["stripes"] == index.bc


def test_build_refuses_overwrite_without_force(db, tmp_path):
    sequences, params, index_dir = db
    with pytest.raises(ServeIndexError, match="refusing to overwrite"):
        build_index(sequences, params, index_dir)
    # force=True rebuilds in place and the result still verifies
    rebuilt = build_index(sequences, params, index_dir, force=True)
    assert rebuilt.verify()["ok"]


def test_index_refuses_mismatched_params(db):
    sequences, params, index_dir = db
    index = KmerIndex.open(index_dir)
    with pytest.raises(IndexCompatibilityError, match="different parameters"):
        index.validate_params(params.replace(kmer_length=5))
    with pytest.raises(IndexCompatibilityError, match="bc="):
        index.validate_params(params.replace(num_blocks=16))
    # the pipeline front door refuses the same way
    with pytest.raises(IndexCompatibilityError):
        PastisPipeline(
            params.replace(mode="query", index_dir=index_dir, kmer_length=5)
        ).run(sequences.subset(np.array([0])))


def test_stale_sequences_payload_is_refused(db, tmp_path):
    """Tampered database residues must never be served from."""
    sequences, params, _ = db
    index_dir = tmp_path / "index"
    build_index(sequences, params, index_dir)
    payload = index_dir / SEQUENCES_NAME
    raw = bytearray(payload.read_bytes())
    # flip one residue code inside the npz payload
    raw[len(raw) // 2] ^= 0x01
    payload.write_bytes(bytes(raw))
    index = KmerIndex.open(index_dir)
    with pytest.raises(IndexIntegrityError):
        index.sequences()


def test_corrupt_shard_is_refused_with_file_named(db, tmp_path):
    sequences, params, _ = db
    index_dir = tmp_path / "index"
    build_index(sequences, params, index_dir)
    victim = index_dir / SHARD_DIR / shard_filename(0, 0)
    victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])
    index = KmerIndex.open(index_dir)
    comm = SimCommunicator(params.nodes)
    with pytest.raises(IndexIntegrityError, match="corrupt index shard for stripe 0"):
        index.stripe(0, comm)
    with pytest.raises(IndexIntegrityError):
        index.verify()


def test_open_refuses_non_index_directory(tmp_path):
    with pytest.raises(ServeIndexError, match="no index manifest"):
        KmerIndex.open(tmp_path)
    (tmp_path / "index.json").write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(ServeIndexError, match="not a pastis-kmer-index"):
        KmerIndex.open(tmp_path)


# ------------------------------------------------------------------ edge cases
def test_empty_query_batch(db):
    """Zero queries is a served no-op, not a crash."""
    sequences, params, index_dir = db
    empty = SequenceSet.from_strings([], alphabet=sequences.alphabet)
    result = PastisPipeline(
        params.replace(mode="query", index_dir=index_dir)
    ).run(empty)
    assert result.similarity_graph.edges.size == 0
    assert result.query_rows.size == 0
    assert result.stats.extras["query"]["n_queries"] == 0


def test_query_longer_than_any_database_sequence(db):
    """An over-length novel query degrades to 'no matches', never a crash."""
    sequences, params, index_dir = db
    longest = int(np.diff(sequences.offsets).max())
    rng = np.random.default_rng(0)
    residues = "".join(rng.choice(list("ACDEFGHIKLMNPQRSTVWY"), size=longest * 3))
    query = SequenceSet.from_strings([residues], names=["long-novel"])
    result = PastisPipeline(
        params.replace(mode="query", index_dir=index_dir)
    ).run(query)
    assert result.query_rows.tolist() == [N_DB]
    edges = result.similarity_graph.edges
    # every admitted edge (if any survived coverage) touches the query row
    assert all(N_DB in (int(e["row"]), int(e["col"])) for e in edges)


# ------------------------------------------------------------------- providers
def test_synthetic_provider_specs():
    bare = load_sequences("synthetic:12")
    assert len(bare) == 12
    seeded = load_sequences("synthetic:n_sequences=8,seed=3,family_fraction=0.5")
    again = load_sequences("synthetic:n_sequences=8,seed=3,family_fraction=0.5")
    np.testing.assert_array_equal(seeded.data, again.data)


def test_fasta_provider_round_trip(db, tmp_path):
    sequences, _, _ = db
    path = tmp_path / "db.fasta"
    assert write_fasta(path, sequences) == N_DB
    loaded = load_sequences(f"fasta:{path}")
    np.testing.assert_array_equal(loaded.data, sequences.data)
    assert [str(n) for n in loaded.names] == [str(n) for n in sequences.names]


def test_provider_spec_errors():
    with pytest.raises(ValueError, match="provider:arguments"):
        load_sequences("no-colon-here")
    with pytest.raises(ValueError, match="unknown sequence provider"):
        load_sequences("s3:bucket/key")
    with pytest.raises(ValueError, match="bad synthetic argument"):
        load_sequences("synthetic:bogus=1")
    with pytest.raises(ValueError, match="needs a path"):
        load_sequences("fasta:")


def test_register_custom_provider():
    def tiny(args: str) -> SequenceSet:
        return SequenceSet.from_strings(["ACDEFGHIK"] * int(args))

    register_provider("tiny", tiny)
    try:
        assert "tiny" in available_providers()
        assert len(load_sequences("tiny:3")) == 3
        with pytest.raises(ValueError, match="invalid provider name"):
            register_provider("bad:name", tiny)
    finally:
        from repro.serve import providers

        providers._REGISTRY.pop("tiny", None)


# ------------------------------------------------------------------------- CLI
def test_cli_build_inspect_query(tmp_path, capsys):
    out = tmp_path / "cli-index"
    source = "synthetic:n_sequences=12,seed=4,family_fraction=0.8,mean_family_size=4.0"
    assert (
        serve_main(
            [
                "build",
                "--source", source,
                "--out", str(out),
                "--kmer-length", "4",
                "--nodes", "4",
                "--num-blocks", "4",
            ]
        )
        == 0
    )
    assert (out / "index.json").exists()
    assert "built index" in capsys.readouterr().out

    assert serve_main(["inspect", str(out), "--verify"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["n_sequences"] == 12
    assert summary["verify"]["ok"] is True

    report_path = tmp_path / "report.json"
    assert (
        serve_main(
            [
                "query",
                "--index", str(out),
                "--source", source,
                "--dedup",
                "--common-kmer-threshold", "1",
                "--report", str(report_path),
            ]
        )
        == 0
    )
    assert "matches:" in capsys.readouterr().out
    report = json.loads(report_path.read_text())
    assert report["query_n_queries"] == 12
    assert report["query_members"] == 12


# --------------------------------------------------------------------- batcher
def test_batcher_coalescing_and_split_answers(db):
    """Requests coalesce under the bound, never split, and each request's
    matches equal a standalone run of its own queries."""
    sequences, params, index_dir = db
    batcher = QueryBatcher(index_dir, params, max_batch_queries=4)
    r1 = batcher.submit(sequences.subset(np.arange(0, 3)))
    r2 = batcher.submit(sequences.subset(np.arange(3, 5)))
    r3 = batcher.submit(sequences.subset(np.arange(5, 6)))
    assert batcher.pending_requests == 3
    answers = {a.request_id: a for a in batcher.drain()}
    assert batcher.pending_requests == 0
    # 3 + 2 > 4 forces a new batch; 2 + 1 <= 4 coalesces
    assert answers[r1].batch_index == 0
    assert answers[r2].batch_index == answers[r3].batch_index == 1

    # each request's matches == a standalone query run over its own queries
    for rid, lo, hi in ((r1, 0, 3), (r2, 3, 5), (r3, 5, 6)):
        solo = PastisPipeline(
            params.replace(mode="query", index_dir=index_dir)
        ).run(sequences.subset(np.arange(lo, hi)))
        edges = solo.similarity_graph.edges
        for q, row in enumerate(answers[rid].rows):
            expected = set(edges["col"][edges["row"] == row]) | set(
                edges["row"][edges["col"] == row]
            )
            assert set(answers[rid].matches[q]["partner"]) == {
                int(p) for p in expected
            }

    summary = batcher.queue_summary()
    assert summary["batches"] == 2 and summary["queries"] == 6
    assert summary["identity_residual"] == pytest.approx(0.0, abs=1e-12)
    # overlap hides work: the windowed clock never exceeds the serial clock
    assert summary["clock_seconds"] <= summary["serial_clock_seconds"] + 1e-12


def test_batcher_metrics_and_empty_drain(db):
    sequences, params, index_dir = db
    batcher = QueryBatcher(index_dir, params, max_batch_queries=8)
    assert batcher.drain() == []
    batcher.submit(sequences.subset(np.arange(0, 2)), request_id="mine")
    (answer,) = batcher.drain()
    assert answer.request_id == "mine"
    assert answer.total_matches == sum(m.size for m in answer.matches)
    hub = batcher.hub
    assert hub.value("serve_requests") == 1.0
    assert hub.value("serve_queries") == 2.0
    assert hub.value("serve_batches") == 1.0
    assert hub.histogram("serve_batch_wall_seconds")["count"] == 1.0


def test_batcher_oversized_request_forms_own_batch(db):
    sequences, params, index_dir = db
    batcher = QueryBatcher(index_dir, params, max_batch_queries=2)
    big = batcher.submit(sequences.subset(np.arange(0, 5)))
    small = batcher.submit(sequences.subset(np.arange(5, 6)))
    answers = {a.request_id: a for a in batcher.drain()}
    assert answers[big].batch_index == 0
    assert answers[small].batch_index == 1
    assert len(answers[big].matches) == 5
