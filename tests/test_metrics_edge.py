"""Edge cases of the scaling-efficiency and load-imbalance metrics.

These helpers back the Fig. 7/8/9 benchmarks and the stats table; the
degenerate inputs here (zero times, empty or single-rank vectors,
all-zero phases) show up in real runs — a phase that never executed, a
1×1 grid, a killed run's empty per-rank vector — and must degrade to
well-defined zeros rather than divide.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.efficiency import (
    parallel_efficiency,
    speedup,
    weak_scaling_efficiency,
)
from repro.metrics.imbalance import imbalance_percent, imbalance_stats


# ---------------------------------------------------------------------------
# scaling efficiency
# ---------------------------------------------------------------------------


def test_speedup_normal_and_zero_time():
    assert speedup(10.0, 2.0, 1, 8) == pytest.approx(5.0)
    assert speedup(10.0, 0.0, 1, 8) == 0.0
    assert speedup(10.0, -1.0, 1, 8) == 0.0
    assert speedup(0.0, 2.0, 1, 8) == 0.0  # zero base time is no speedup


def test_parallel_efficiency_ideal_and_degenerate():
    # perfect strong scaling: 4x units, 4x faster → efficiency 1
    assert parallel_efficiency(8.0, 2.0, 1, 4) == pytest.approx(1.0)
    # half-efficient
    assert parallel_efficiency(8.0, 4.0, 1, 4) == pytest.approx(0.5)
    # degenerate denominators all collapse to 0, not a ZeroDivisionError
    assert parallel_efficiency(8.0, 0.0, 1, 4) == 0.0
    assert parallel_efficiency(8.0, 2.0, 0, 4) == 0.0
    assert parallel_efficiency(8.0, 2.0, 1, 0) == 0.0
    # single-rank "scaling" is the identity
    assert parallel_efficiency(8.0, 8.0, 1, 1) == pytest.approx(1.0)


def test_weak_scaling_efficiency_flat_runtime_is_ideal():
    assert weak_scaling_efficiency(5.0, 5.0) == pytest.approx(1.0)
    assert weak_scaling_efficiency(5.0, 10.0) == pytest.approx(0.5)
    # mildly superlinear results (cache effects) pass through unclamped
    assert weak_scaling_efficiency(5.0, 4.0) == pytest.approx(1.25)
    assert weak_scaling_efficiency(5.0, 0.0) == 0.0
    assert weak_scaling_efficiency(0.0, 0.0) == 0.0


# ---------------------------------------------------------------------------
# load imbalance
# ---------------------------------------------------------------------------


def test_imbalance_stats_empty_vector_is_all_zero():
    stats = imbalance_stats(np.array([]))
    assert (stats.minimum, stats.average, stats.maximum) == (0.0, 0.0, 0.0)
    assert stats.imbalance_percent == 0.0
    assert imbalance_percent([]) == 0.0


def test_imbalance_single_rank_grid_is_balanced():
    stats = imbalance_stats([7.5])
    assert stats.minimum == stats.average == stats.maximum == 7.5
    assert stats.imbalance_percent == 0.0


def test_imbalance_zero_time_phase_does_not_divide():
    # a phase no rank spent time in: avg 0 → defined as perfectly balanced
    assert imbalance_percent(np.zeros(4)) == 0.0
    stats = imbalance_stats(np.zeros(4))
    assert stats.imbalance_percent == 0.0


def test_imbalance_known_vector_and_list_input():
    # max/avg - 1 = 3/2 - 1 = 50%, identical for list and ndarray input
    assert imbalance_percent([1.0, 3.0]) == pytest.approx(50.0)
    assert imbalance_percent(np.array([1.0, 3.0])) == pytest.approx(50.0)
    stats = imbalance_stats([1.0, 3.0])
    assert (stats.minimum, stats.average, stats.maximum) == (1.0, 2.0, 3.0)


def test_imbalance_integer_input_promotes_to_float():
    stats = imbalance_stats([1, 2, 3])
    assert stats.average == pytest.approx(2.0)
    assert stats.imbalance_percent == pytest.approx(50.0)
