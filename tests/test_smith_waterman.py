"""Tests for the Smith-Waterman kernels (reference, vectorized, banded, seed-extend)."""

import numpy as np
import pytest

from repro.align.banded import banded_smith_waterman
from repro.align.seed_extend import seed_and_extend, ungapped_extension
from repro.align.smith_waterman import score_only, smith_waterman, smith_waterman_reference
from repro.align.substitution import BLOSUM62, DEFAULT_SCORING, ScoringScheme, identity_matrix
from repro.sequences.alphabet import PROTEIN


def encode(s):
    return PROTEIN.encode(s)


def test_identical_sequences_full_identity():
    seq = encode("ACDEFGHIKLMNPQRSTVWY")
    res = smith_waterman(seq, seq)
    assert res.identity == 1.0
    assert res.length == 20
    assert res.begin_a == 0 and res.end_a == 19
    assert res.score == int(BLOSUM62[np.arange(20), np.arange(20)].sum())


def test_reference_matches_vectorized_on_known_pair():
    a = encode("HEAGAWGHEE")
    b = encode("PAWHEAE")
    r1 = smith_waterman_reference(a, b)
    r2 = smith_waterman(a, b)
    assert r1.score == r2.score
    assert r1.matches == r2.matches
    assert r1.length == r2.length


def test_empty_sequences():
    res = smith_waterman(encode(""), encode("ACD"))
    assert res.score == 0
    assert res.length == 0
    res_ref = smith_waterman_reference(encode("ACD"), encode(""))
    assert res_ref.score == 0


def test_completely_dissimilar_sequences_score_zero_or_low():
    a = encode("WWWWWW")
    b = encode("PPPPPP")
    res = smith_waterman(a, b)
    assert res.score == 0
    assert res.length == 0


def test_local_alignment_finds_embedded_motif():
    motif = "HEAGAWGHEE"
    a = encode("PPPP" + motif + "PPPP")
    b = encode(motif)
    res = smith_waterman(a, b)
    assert res.begin_a == 4
    assert res.end_a == 13
    assert res.identity == 1.0


def test_gap_penalty_effect():
    a = encode("ACDEFGHIKL")
    b = encode("ACDEFXXGHIKL")  # insertion of XX
    cheap_gaps = ScoringScheme(matrix=BLOSUM62, gap_open=1, gap_extend=1)
    strict_gaps = ScoringScheme(matrix=BLOSUM62, gap_open=20, gap_extend=5)
    res_cheap = smith_waterman(a, b, cheap_gaps)
    res_strict = smith_waterman(a, b, strict_gaps)
    assert res_cheap.score >= res_strict.score
    # with cheap gaps the alignment spans both halves
    assert res_cheap.length >= 12


def test_affine_gap_cost_arithmetic():
    # one long gap should beat two separate gaps under affine scoring
    match = identity_matrix(PROTEIN, match=5, mismatch=-8)
    scoring = ScoringScheme(matrix=match, gap_open=10, gap_extend=1)
    a = encode("AAAAAAAAAA")
    b = encode("AAAAACCCAAAAA")
    res = smith_waterman(a, b, scoring)
    # 10 matches, one gap of length 3: 50 - (10 + 3*1) = 37, better than
    # paying three mismatches (50 - 24 = 26)
    assert res.score == 37


def test_score_only_helper():
    a = encode("ACDEFG")
    assert score_only(a, a) == smith_waterman(a, a).score


def test_cells_metric():
    a = encode("ACDEFG")
    b = encode("ACD")
    assert smith_waterman(a, b).cells == 18
    assert smith_waterman_reference(a, b).cells == 18


@pytest.mark.parametrize("seed", range(4))
def test_wavefront_matches_reference_on_all_fields(seed, make_random_seq_pairs):
    """Property test: the wavefront kernel reproduces the reference exactly —
    score, begin/end coordinates, match count and alignment length — on a
    seeded mix of related and unrelated random pairs."""
    for a, b in make_random_seq_pairs(seed, n_pairs=6):
        ref = smith_waterman_reference(a, b)
        vec = smith_waterman(a, b)
        assert vec.score == ref.score
        assert (vec.begin_a, vec.end_a) == (ref.begin_a, ref.end_a)
        assert (vec.begin_b, vec.end_b) == (ref.begin_b, ref.end_b)
        assert vec.matches == ref.matches
        assert vec.length == ref.length


@pytest.mark.parametrize("seed", range(6))
def test_reference_and_vectorized_agree_on_random_pairs(seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 20, rng.integers(5, 50)).astype(np.uint8)
    b = rng.integers(0, 20, rng.integers(5, 50)).astype(np.uint8)
    r_ref = smith_waterman_reference(a, b)
    r_vec = smith_waterman(a, b)
    assert r_ref.score == r_vec.score
    assert r_ref.matches <= r_ref.length
    assert r_vec.matches <= r_vec.length


# ---------------------------------------------------------------- banded
def test_banded_equals_full_when_band_covers_matrix():
    a = encode("HEAGAWGHEE")
    b = encode("PAWHEAE")
    full = smith_waterman(a, b)
    banded = banded_smith_waterman(a, b, bandwidth=50)
    assert banded.score == full.score


def test_banded_with_narrow_band_is_lower_bound():
    rng = np.random.default_rng(3)
    a = rng.integers(0, 20, 60).astype(np.uint8)
    b = rng.integers(0, 20, 60).astype(np.uint8)
    full = smith_waterman(a, b)
    banded = banded_smith_waterman(a, b, bandwidth=2)
    assert banded.score <= full.score
    assert banded.cells < full.cells


def test_banded_empty_input():
    assert banded_smith_waterman(encode(""), encode("AC")).score == 0


# ---------------------------------------------------------------- seed & extend
def test_ungapped_extension_perfect_match():
    a = encode("ACDEFGHIKL")
    res = ungapped_extension(a, a, seed_a=3, seed_b=3, seed_length=4)
    assert res.identity == 1.0
    assert res.begin_a == 0
    assert res.end_a == 9


def test_ungapped_extension_stops_at_divergence():
    a = encode("ACDEFGHIKL" + "WWWWWWWWWW")
    b = encode("ACDEFGHIKL" + "PPPPPPPPPP")
    res = ungapped_extension(a, b, seed_a=2, seed_b=2, seed_length=4, xdrop=6)
    assert res.end_a <= 12  # extension abandoned soon after the divergence point


def test_seed_and_extend_picks_best_seed():
    a = encode("ACDEFGHIKLMNPQRSTVWY")
    b = encode("ACDEFGHIKLMNPQRSTVWY")
    res = seed_and_extend(a, b, seeds=[(15, 15), (2, 2)], seed_length=4)
    assert res.identity == 1.0
    assert res.length == 20


def test_seed_and_extend_ignores_invalid_seeds():
    a = encode("ACDEFGH")
    res = seed_and_extend(a, a, seeds=[(-1, -1)], seed_length=3)
    assert res.score == 0
