"""Tests for repro.graph.dist — distributed Markov clustering on the 2D grid.

Acceptance criteria of the subsystem:

* distributed MCL labels *and* the final matrix are bit-identical to
  single-rank :class:`~repro.graph.mcl.MarkovClustering` across grid sizes
  {1, 4, 9} and every registered SpGEMM backend (including ``"scipy"``
  when present), with and without the overlapped schedule;
* the per-rank ledger reconciles with the simulated clock:
  ``cluster_expand + cluster_prune − cluster_overlap_hidden == combined``;
* the ``cluster_comm`` byte counters match the closed-form broadcast
  volume model to the bit;
* the stage is wired end to end: ``ClusterParams.nprocs/overlap`` →
  pipeline cluster stage → ``SearchResult.clustering`` + per-rank comm
  stats in ``stats.extras`` + report rendering.
"""

import numpy as np
import pytest

from repro.core.align_phase import EDGE_DTYPE
from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.core.similarity_graph import SimilarityGraph
from repro.graph import (
    CLUSTER_COMM_CATEGORY,
    CLUSTER_EXPAND_CATEGORY,
    CLUSTER_OVERLAP_HIDDEN_CATEGORY,
    CLUSTER_PRUNE_CATEGORY,
    ClusterParams,
    DistMarkovClustering,
    DistStochasticMatrix,
    MarkovClustering,
    StochasticMatrix,
    cluster_similarity_graph,
    expansion_broadcast_bytes,
)
from repro.graph.dist import CLUSTER_COUNTER_PREFIX
from repro.io.report import clustering_report, clustering_table
from repro.mpi.communicator import SimCommunicator
from repro.sequences.synthetic import synthetic_dataset
from repro.sparse.kernels import available_kernels

#: Every registered backend participates ("scipy" exactly when importable).
MCL_BACKENDS = [k for k in ("expand", "gustavson", "auto", "scipy") if k in available_kernels()]
GRID_SIZES = [1, 4, 9]


def make_edges(pairs, ani=0.8, coverage=0.9, score=50):
    edges = np.zeros(len(pairs), dtype=EDGE_DTYPE)
    for idx, (i, j) in enumerate(pairs):
        edges[idx]["row"] = i
        edges[idx]["col"] = j
        edges[idx]["ani"] = ani
        edges[idx]["coverage"] = coverage
        edges[idx]["score"] = score
    return edges


def random_graph(seed, n=36, m=60):
    rng = np.random.default_rng(seed)
    edges = make_edges(
        [(int(a), int(b)) for a, b in rng.integers(0, n, size=(m, 2))], ani=0.55
    )
    return SimilarityGraph.from_edges(edges, n)


def bridged_cliques(size=5):
    """Two cliques joined by one bridge edge — the over-merge fixture."""
    pairs = [
        (a, b)
        for group in (range(size), range(size, 2 * size))
        for i, a in enumerate(group)
        for b in list(group)[i + 1:]
    ] + [(size - 1, size)]
    return SimilarityGraph.from_edges(make_edges(pairs), 2 * size)


@pytest.fixture(scope="module")
def matrix():
    return StochasticMatrix.from_similarity_graph(random_graph(7))


@pytest.fixture(scope="module")
def serial_result(matrix):
    return MarkovClustering(spgemm_backend="expand").fit(matrix)


# ---------------------------------------------------------------- bit-identity
@pytest.mark.parametrize("nprocs", GRID_SIZES)
@pytest.mark.parametrize("backend", MCL_BACKENDS)
def test_dist_mcl_bit_identical_to_serial(matrix, serial_result, nprocs, backend):
    """Labels and final matrix match single-rank MCL bit for bit."""
    dist = DistMarkovClustering(nprocs=nprocs, spgemm_backend=backend).fit(matrix)
    assert np.array_equal(dist.labels, serial_result.labels)
    assert dist.final_matrix.same_bits(serial_result.final_matrix)
    assert dist.converged == serial_result.converged
    assert dist.n_iterations == serial_result.n_iterations


@pytest.mark.parametrize("nprocs", [4, 9])
def test_overlapped_schedule_does_not_change_results(matrix, serial_result, nprocs):
    dist = DistMarkovClustering(nprocs=nprocs, overlap=True).fit(matrix)
    assert np.array_equal(dist.labels, serial_result.labels)
    assert dist.final_matrix.same_bits(serial_result.final_matrix)


def test_dist_mcl_top_k_and_inflation_parity():
    """Bit-identity holds for non-default knobs too (top-k pruning, inflation)."""
    matrix = StochasticMatrix.from_similarity_graph(bridged_cliques())
    serial = MarkovClustering(inflation=1.6, top_k=4, prune_threshold=1e-3).fit(matrix)
    dist = DistMarkovClustering(
        nprocs=4, inflation=1.6, top_k=4, prune_threshold=1e-3, overlap=True
    ).fit(matrix)
    assert np.array_equal(dist.labels, serial.labels)
    assert dist.final_matrix.same_bits(serial.final_matrix)


def test_regularized_parity_and_effect(matrix):
    """Regularized MCL: serial and distributed agree; expansion flops differ
    from plain MCL (the right operand stays the original, sparser matrix)."""
    serial = MarkovClustering(regularized=True).fit(matrix)
    dist = DistMarkovClustering(nprocs=4, regularized=True, overlap=True).fit(matrix)
    assert np.array_equal(dist.labels, serial.labels)
    assert dist.final_matrix.same_bits(serial.final_matrix)
    plain = MarkovClustering().fit(matrix)
    assert serial.total_flops != plain.total_flops
    # a partition is still produced and is valid
    assert serial.labels.size == matrix.n
    assert serial.labels.min() == 0


def test_rmcl_residual_criterion_bit_identical_to_serial():
    """The flow-balance stop criterion fires at the same iteration on both
    drivers, with identical labels, final matrices and per-iteration
    residuals (the residual is a stripe-wise max, so distribution is exact)."""
    graph = bridged_cliques(6)
    mcl_kwargs = dict(
        regularized=True, max_iterations=40, tolerance=0.0, rmcl_tolerance=1e-6
    )
    serial = MarkovClustering(**mcl_kwargs).fit_graph(graph)
    assert serial.converged and serial.n_iterations < 40
    for nprocs in (4, 9):
        dist = DistMarkovClustering(nprocs=nprocs, overlap=True, **mcl_kwargs).fit_graph(graph)
        assert dist.converged
        assert dist.n_iterations == serial.n_iterations
        assert np.array_equal(dist.labels, serial.labels)
        assert dist.final_matrix.same_bits(serial.final_matrix)
        for s_it, d_it in zip(serial.iterations, dist.iterations):
            assert d_it.flow_residual == s_it.flow_residual
        # the extra residual allreduce is mirrored in the volume prediction
        assert dist.volume["predicted_bytes_sent"] == dist.volume["charged_bytes_sent"]


@pytest.mark.parametrize("depth", [2, 4])
def test_overlap_depth_does_not_change_results(matrix, serial_result, depth):
    """Depth-k speculative expansion: same labels, identity still reconciles."""
    dist = DistMarkovClustering(nprocs=4, overlap=True, overlap_depth=depth).fit(matrix)
    assert np.array_equal(dist.labels, serial_result.labels)
    assert dist.final_matrix.same_bits(serial_result.final_matrix)
    ledger = dist.ledger
    reconstructed = (
        ledger.per_rank(CLUSTER_EXPAND_CATEGORY)
        + ledger.per_rank(CLUSTER_PRUNE_CATEGORY)
        - ledger.per_rank(CLUSTER_OVERLAP_HIDDEN_CATEGORY)
    )
    np.testing.assert_allclose(reconstructed, dist.clock_per_rank, rtol=1e-12)


def test_overlap_depth_hides_no_less_than_depth1(matrix):
    """The depth-k schedule can only hide more background work than depth 1."""
    hidden = {}
    for depth in (1, 2, 4):
        dist = DistMarkovClustering(
            nprocs=4, overlap=True, overlap_depth=depth, blocks_per_grid_row=4
        ).fit(matrix)
        hidden[depth] = float(
            dist.ledger.per_rank(CLUSTER_OVERLAP_HIDDEN_CATEGORY).sum()
        )
    assert hidden[1] <= hidden[2] + 1e-12
    assert hidden[2] <= hidden[4] + 1e-12


# ---------------------------------------------------------------- ledger identities
@pytest.mark.parametrize("overlap", [False, True])
def test_cluster_ledger_reconciles_with_clock(matrix, overlap):
    """cluster_expand + cluster_prune − cluster_overlap_hidden == clock."""
    dist = DistMarkovClustering(nprocs=9, overlap=overlap).fit(matrix)
    ledger = dist.ledger
    reconstructed = (
        ledger.per_rank(CLUSTER_EXPAND_CATEGORY)
        + ledger.per_rank(CLUSTER_PRUNE_CATEGORY)
        - ledger.per_rank(CLUSTER_OVERLAP_HIDDEN_CATEGORY)
    )
    np.testing.assert_allclose(reconstructed, dist.clock_per_rank, rtol=1e-12)
    hidden = ledger.per_rank(CLUSTER_OVERLAP_HIDDEN_CATEGORY)
    if overlap:
        assert hidden.sum() > 0.0  # something was actually hidden
        # the overlapped clock beats the serial sum by exactly the hidden time
        assert dist.clock_per_rank.max() < (
            ledger.per_rank(CLUSTER_EXPAND_CATEGORY)
            + ledger.per_rank(CLUSTER_PRUNE_CATEGORY)
        ).max()
    else:
        assert hidden.sum() == 0.0


@pytest.mark.parametrize("nprocs", GRID_SIZES)
def test_charged_volume_matches_closed_form_model(matrix, nprocs):
    """cluster_bytes_* counters equal the closed-form prediction to the bit."""
    dist = DistMarkovClustering(nprocs=nprocs, overlap=True).fit(matrix)
    assert dist.volume["charged_bytes_sent"] == dist.volume["predicted_bytes_sent"]
    assert dist.volume["charged_bytes_received"] == dist.volume["predicted_bytes_received"]
    if nprocs == 1:
        assert dist.volume["charged_bytes_sent"] == 0  # nothing leaves the rank
    else:
        assert dist.volume["charged_bytes_sent"] > 0
        assert dist.ledger.component_time(CLUSTER_COMM_CATEGORY) > 0.0


def test_expansion_broadcast_closed_form_standalone(matrix):
    """The expansion broadcasts alone charge exactly the §VI-A closed form.

    Drives the blocked deferred-merge expansion directly (the same schedule
    the driver uses: blocks_per_grid_row sub-blocks per grid row) through a
    cluster CollectiveEngine, with no row-op collectives in the ledger, so
    the byte counters isolate the expansion term that
    :func:`expansion_broadcast_bytes` models.
    """
    from repro.graph.dist import CLUSTER_COMM_CATEGORY as COMM_CAT
    from repro.graph.dist import _balanced_chunks
    from repro.mpi.collectives import CollectiveEngine
    from repro.distsparse.summa import summa
    from repro.sparse.semiring import ArithmeticSemiring

    comm = SimCommunicator(4)
    grid = comm.require_grid()
    engine = CollectiveEngine(
        network=comm.cluster.network,
        ledger=comm.ledger,
        comm_category=COMM_CAT,
        counter_prefix=CLUSTER_COUNTER_PREFIX,
    )
    dist_matrix = DistStochasticMatrix.from_matrix(matrix, comm)
    a_dist = dist_matrix.to_dist_sparse()
    blocks = [
        chunk
        for r in range(grid.grid_dim)
        for chunk in _balanced_chunks(*grid.block_bounds(matrix.n, r), 2)
    ]
    for lo, hi in blocks:
        summa(
            a_dist.row_stripe((lo, hi)),
            a_dist,
            ArithmeticSemiring(),
            output_shape=dist_matrix.shape,
            deferred_merge=True,
            collectives=engine,
        )
    t_bytes = dist_matrix.triplet_bytes()
    expected = expansion_broadcast_bytes(
        grid.grid_dim, t_bytes, t_bytes, n_blocks=len(blocks)
    )
    assert expected > 0
    assert comm.ledger.counter_total(CLUSTER_COUNTER_PREFIX + "bytes_sent") == expected
    assert (
        comm.ledger.counter_total(CLUSTER_COUNTER_PREFIX + "bytes_received") == expected
    )


def test_measured_expand_seconds_kept_out_of_identity(matrix):
    """The wall-clock SUMMA seconds live in their own excluded category."""
    dist = DistMarkovClustering(nprocs=4).fit(matrix)
    assert dist.ledger.component_time("cluster_expand_measured") > 0.0
    # the identity categories are modeled, not measured
    assert dist.ledger.component_time(CLUSTER_EXPAND_CATEGORY) > 0.0


# ---------------------------------------------------------------- DistStochasticMatrix
def test_dist_matrix_round_trip_and_accounting(matrix):
    comm = SimCommunicator(9)
    dist = DistStochasticMatrix.from_matrix(matrix, comm)
    assert dist.nnz == matrix.nnz
    assert dist.to_matrix().same_bits(matrix)
    assert int(dist.nnz_per_rank().sum()) == matrix.nnz
    assert dist.triplet_bytes() == matrix.nnz * 24
    sparse = dist.to_dist_sparse()
    assert sparse.nnz == matrix.nnz
    # the COO blocks reassemble to the stored transpose exactly
    global_coo = sparse.to_global_coo()
    tcsr_coo = matrix.tcsr.to_coo().sort_rowmajor()
    assert np.array_equal(global_coo.rows, tcsr_coo.rows)
    assert np.array_equal(global_coo.cols, tcsr_coo.cols)
    assert np.array_equal(global_coo.values, tcsr_coo.values)


def test_grid_larger_than_matrix_rejected():
    tiny = StochasticMatrix.from_similarity_graph(bridged_cliques(1))  # n = 2
    with pytest.raises(ValueError, match="grid dimension"):
        DistMarkovClustering(nprocs=9).fit(tiny)


def test_non_square_nprocs_rejected():
    with pytest.raises(ValueError, match="perfect square"):
        DistMarkovClustering(nprocs=6)


# ---------------------------------------------------------------- wiring
def test_cluster_params_validation():
    with pytest.raises(ValueError, match="perfect square"):
        ClusterParams(nprocs=3)
    with pytest.raises(ValueError, match="method 'mcl'"):
        ClusterParams(method="components", nprocs=4)
    params = ClusterParams(nprocs=4, overlap=True, regularized=True)
    assert params.nprocs == 4


def test_cluster_similarity_graph_dist_route(matrix):
    graph = random_graph(7)
    serial = cluster_similarity_graph(graph, ClusterParams())
    dist = cluster_similarity_graph(graph, ClusterParams(nprocs=4, overlap=True))
    assert np.array_equal(serial.labels, dist.labels)
    assert dist.nprocs == 4
    assert dist.dist is not None
    assert dist.dist["grid"] == "2x2"
    assert dist.dist["charged_bytes_sent"] == dist.dist["predicted_bytes_sent"]
    assert len(dist.dist["expand_seconds_per_rank"]) == 4
    summary = dist.summary()
    assert summary["nprocs"] == 4
    assert "dist" in summary


def test_pipeline_dist_cluster_stage_end_to_end():
    seqs = synthetic_dataset(n_sequences=50, seed=23)
    base = dict(kmer_length=5, common_kmer_threshold=1, nodes=4, num_blocks=4)
    serial = PastisPipeline(
        PastisParams(**base, cluster=ClusterParams(enabled=True, nprocs=1))
    ).run(seqs)
    dist = PastisPipeline(
        PastisParams(**base, cluster=ClusterParams(enabled=True, nprocs=4, overlap=True))
    ).run(seqs)
    assert np.array_equal(serial.clustering.labels, dist.clustering.labels)
    extras = dist.stats.extras["clustering"]
    assert extras["dist"]["nprocs"] == 4
    assert len(extras["dist"]["comm_seconds_per_rank"]) == 4
    assert extras["dist"]["charged_bytes_sent"] == extras["dist"]["predicted_bytes_sent"]
    # the cluster stage charges its own category on the search ledger and
    # stays out of the search totals
    assert dist.ledger.component_time("cluster") > 0.0
    assert dist.stats.time_total > 0.0


def test_report_renders_dist_stats(matrix):
    graph = random_graph(7)
    clustering = cluster_similarity_graph(graph, ClusterParams(nprocs=4, overlap=True))
    table = clustering_table(clustering)
    assert "Distributed grid" in table
    assert "2x2" in table
    assert "Cluster comm volume" in table
    report = clustering_report(clustering)
    assert report["dist"]["nprocs"] == 4
    assert report["iterations"][0]["flops_per_rank"]


def test_counter_prefix_keeps_search_counters_clean(matrix):
    """Cluster traffic must not leak into the search's bytes_sent counters."""
    dist = DistMarkovClustering(nprocs=4).fit(matrix)
    ledger = dist.ledger
    assert ledger.counter_total(CLUSTER_COUNTER_PREFIX + "bytes_sent") > 0
    assert ledger.counter_total("bytes_sent") == 0


def test_pipeline_measured_clock_charges_wall_seconds_for_dist_cluster():
    """clock="measured" must charge wall time for the cluster stage even when
    the distributed driver (which models its own grid) produced it."""
    seqs = synthetic_dataset(n_sequences=40, seed=31)
    result = PastisPipeline(
        PastisParams(
            kmer_length=5, common_kmer_threshold=1, nodes=4, num_blocks=4,
            clock="measured",
            cluster=ClusterParams(enabled=True, nprocs=4, overlap=True),
        )
    ).run(seqs)
    cluster_seconds = result.ledger.component_time("cluster")
    assert 0.0 < cluster_seconds < result.stats.wall_seconds


def test_reused_communicator_reports_per_run_deltas(matrix):
    """fit(matrix, comm) on a communicator that already carries cluster
    charges must still report this run's volume/identity, not the total."""
    mcl = DistMarkovClustering(nprocs=4, overlap=True)
    comm = SimCommunicator(4)
    first = mcl.fit(matrix, comm)
    second = mcl.fit(matrix, comm)
    # deterministic algorithm on the same matrix: identical per-run stats
    assert second.volume == first.volume
    assert second.volume["charged_bytes_sent"] == second.volume["predicted_bytes_sent"]
    stats = second.comm_stats()
    np.testing.assert_allclose(
        np.asarray(stats["expand_seconds_per_rank"])
        + np.asarray(stats["prune_seconds_per_rank"])
        - np.asarray(stats["overlap_hidden_per_rank"]),
        second.clock_per_rank,
        rtol=1e-12,
    )
    # the shared ledger itself holds both runs
    assert comm.ledger.counter_total(CLUSTER_COUNTER_PREFIX + "bytes_sent") == (
        first.volume["charged_bytes_sent"] + second.volume["charged_bytes_sent"]
    )
