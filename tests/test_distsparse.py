"""Tests for the distributed sparse layer: DistSparseMatrix, SUMMA, Blocked SUMMA."""

import numpy as np
import pytest

from repro.distsparse.blocked_summa import BlockedSpGemm, BlockSchedule
from repro.distsparse.distmat import DistSparseMatrix
from repro.distsparse.distribute import distribute_coo, distribute_sequences
from repro.distsparse.gather import gather_to_root
from repro.distsparse.summa import summa
from repro.mpi.communicator import SimCommunicator
from repro.sequences.synthetic import synthetic_dataset
from repro.sparse.coo import CooMatrix
from repro.sparse.semiring import ArithmeticSemiring, CountSemiring, OverlapSemiring
from repro.sparse.spgemm import spgemm


def random_coo(shape, nnz, seed, dtype=np.float64):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, shape[0], nnz)
    cols = rng.integers(0, shape[1], nnz)
    if dtype == np.int32:
        vals = rng.integers(0, 100, nnz).astype(np.int32)
    else:
        vals = rng.integers(1, 9, nnz).astype(np.float64)
    return CooMatrix(shape, rows, cols, vals).deduplicate()


# ---------------------------------------------------------------- DistSparseMatrix
def test_distribution_partitions_all_nonzeros():
    comm = SimCommunicator(4)
    mat = random_coo((20, 30), 80, 0)
    dist = DistSparseMatrix.from_global_coo(mat, comm)
    assert dist.nnz == mat.nnz
    assert dist.to_global_coo() == mat.copy().sort_rowmajor()
    assert dist.nnz_per_rank().sum() == mat.nnz
    assert dist.memory_bytes_per_rank().sum() > 0


def test_distribution_block_ownership():
    comm = SimCommunicator(4)
    mat = CooMatrix((4, 4), np.array([0, 3]), np.array([0, 3]), np.array([1.0, 2.0]))
    dist = DistSparseMatrix.from_global_coo(mat, comm)
    # element (0,0) belongs to rank (0,0); (3,3) to rank (1,1)
    assert dist.local(comm.grid.rank_of(0, 0)).nnz == 1
    assert dist.local(comm.grid.rank_of(1, 1)).nnz == 1
    assert dist.local(comm.grid.rank_of(0, 1)).nnz == 0


def test_grid_block_offsets():
    comm = SimCommunicator(4)
    mat = random_coo((10, 10), 30, 1)
    dist = DistSparseMatrix.from_global_coo(mat, comm)
    block, roff, coff = dist.grid_block(1, 0)
    assert roff == 5 and coff == 0
    assert block.shape == (5, 5)


def test_empty_distributed_matrix():
    comm = SimCommunicator(9)
    dist = DistSparseMatrix.empty((12, 12), comm)
    assert dist.nnz == 0
    assert dist.to_global_coo().nnz == 0


def test_row_and_col_stripes_cover_matrix():
    comm = SimCommunicator(4)
    mat = random_coo((16, 12), 70, 2)
    dist = DistSparseMatrix.from_global_coo(mat, comm)
    stripe = dist.row_stripe((4, 11))
    global_stripe = stripe.to_global_coo()
    expected = mat.select((mat.rows >= 4) & (mat.rows < 11)).sort_rowmajor()
    assert set(zip(global_stripe.rows.tolist(), global_stripe.cols.tolist())) == set(
        zip(expected.rows.tolist(), expected.cols.tolist())
    )
    cstripe = dist.col_stripe((0, 5))
    expected_c = mat.select(mat.cols < 5)
    assert cstripe.nnz == expected_c.nnz


def test_set_local_shape_check():
    comm = SimCommunicator(4)
    dist = DistSparseMatrix.empty((8, 8), comm)
    with pytest.raises(ValueError):
        dist.set_local(0, CooMatrix.empty((3, 3)))
    dist.set_local(0, CooMatrix.empty((4, 4)))


def test_wrong_block_count_raises():
    comm = SimCommunicator(4)
    with pytest.raises(ValueError):
        DistSparseMatrix((8, 8), comm, [CooMatrix.empty((4, 4))])


# ---------------------------------------------------------------- SUMMA
@pytest.mark.parametrize("nprocs", [1, 4, 9])
def test_summa_equals_direct_spgemm(nprocs):
    comm = SimCommunicator(nprocs)
    a = random_coo((18, 22), 90, 3)
    b = random_coo((22, 15), 70, 4)
    sr = ArithmeticSemiring()
    dist_result = summa(
        DistSparseMatrix.from_global_coo(a, comm),
        DistSparseMatrix.from_global_coo(b, comm),
        sr,
    )
    direct = spgemm(a, b, sr)
    merged = dist_result.to_global(sr)
    assert np.array_equal(merged.rows, direct.rows)
    assert np.array_equal(merged.cols, direct.cols)
    assert np.allclose(merged.values, direct.values)


@pytest.mark.parametrize("backend", ["expand", "gustavson"])
def test_summa_backend_selection_preserves_results(backend):
    """Every registered backend yields the same SUMMA result and flop count."""
    comm = SimCommunicator(4)
    a = random_coo((20, 60), 150, 7, dtype=np.int32)
    a_dist = DistSparseMatrix.from_global_coo(a, comm)
    at_dist = DistSparseMatrix.from_global_coo(a.transpose(), comm)
    res = summa(a_dist, at_dist, OverlapSemiring(), spgemm_backend=backend)
    baseline = summa(a_dist, at_dist, OverlapSemiring())
    assert res.stats.flops == baseline.stats.flops
    assert res.stats.output_nnz == baseline.stats.output_nnz
    merged = res.to_global()
    assert merged == baseline.to_global()


def test_summa_unknown_backend_raises():
    comm = SimCommunicator(4)
    a = DistSparseMatrix.empty((4, 4), comm)
    with pytest.raises(ValueError, match="unknown SpGEMM kernel"):
        summa(a, a, ArithmeticSemiring(), spgemm_backend="bogus")


def test_summa_charges_communication_and_compute():
    comm = SimCommunicator(4)
    a = random_coo((20, 20), 120, 5)
    summa(
        DistSparseMatrix.from_global_coo(a, comm),
        DistSparseMatrix.from_global_coo(a.transpose(), comm),
        CountSemiring(),
    )
    assert comm.ledger.component_time("comm") > 0
    assert comm.ledger.component_time("spgemm") > 0
    assert comm.ledger.counter_total("spgemm_flops") > 0


def test_summa_dimension_mismatch():
    comm = SimCommunicator(4)
    a = DistSparseMatrix.empty((4, 5), comm)
    b = DistSparseMatrix.empty((6, 4), comm)
    with pytest.raises(ValueError):
        summa(a, b, ArithmeticSemiring())


def test_summa_requires_same_communicator():
    a = DistSparseMatrix.empty((4, 4), SimCommunicator(4))
    b = DistSparseMatrix.empty((4, 4), SimCommunicator(4))
    with pytest.raises(ValueError):
        summa(a, b, ArithmeticSemiring())


def test_summa_result_flops_per_rank():
    comm = SimCommunicator(4)
    a = random_coo((20, 20), 150, 6)
    res = summa(
        DistSparseMatrix.from_global_coo(a, comm),
        DistSparseMatrix.from_global_coo(a.transpose(), comm),
        CountSemiring(),
    )
    assert res.flops_per_rank.sum() == res.stats.flops
    assert res.nnz == res.nnz_per_rank().sum()


# ---------------------------------------------------------------- Blocked SUMMA
def test_block_schedule_ranges_cover_matrix():
    sched = BlockSchedule(n_rows=17, n_cols=17, br=3, bc=4)
    assert sched.num_blocks == 12
    rows_covered = sum(sched.row_range(r)[1] - sched.row_range(r)[0] for r in range(3))
    cols_covered = sum(sched.col_range(c)[1] - sched.col_range(c)[0] for c in range(4))
    assert rows_covered == 17
    assert cols_covered == 17
    assert len(sched.all_blocks()) == 12


def test_block_schedule_validation():
    with pytest.raises(ValueError):
        BlockSchedule(n_rows=10, n_cols=10, br=0, bc=2)
    with pytest.raises(ValueError):
        BlockSchedule(n_rows=3, n_cols=3, br=5, bc=1)
    with pytest.raises(IndexError):
        BlockSchedule(n_rows=10, n_cols=10, br=2, bc=2).row_range(2)


@pytest.mark.parametrize("blocking", [(1, 1), (2, 2), (3, 5), (4, 1)])
def test_blocked_summa_union_equals_direct(blocking):
    comm = SimCommunicator(4)
    n, k = 24, 120
    a = random_coo((n, k), 200, 7, dtype=np.int32)
    sr = CountSemiring()
    direct = spgemm(a, a.transpose(), sr)
    engine = BlockedSpGemm(
        DistSparseMatrix.from_global_coo(a, comm),
        DistSparseMatrix.from_global_coo(a.transpose(), comm),
        sr,
        BlockSchedule(n, n, blocking[0], blocking[1]),
    )
    pieces = [blk.result.to_global(sr) for blk in engine.iter_blocks()]
    rows = np.concatenate([p.rows for p in pieces])
    cols = np.concatenate([p.cols for p in pieces])
    vals = np.concatenate([p.values for p in pieces])
    merged = CooMatrix((n, n), rows, cols, vals, check=False).deduplicate(sr)
    assert merged == direct


def test_blocked_summa_peak_memory_decreases_with_more_blocks():
    comm = SimCommunicator(4)
    n, k = 30, 200
    a = random_coo((n, k), 400, 8, dtype=np.int32)
    sr = OverlapSemiring()
    peaks = {}
    for blocks in [(1, 1), (5, 5)]:
        engine = BlockedSpGemm(
            DistSparseMatrix.from_global_coo(a, comm),
            DistSparseMatrix.from_global_coo(a.transpose(), comm),
            sr,
            BlockSchedule(n, n, *blocks),
        )
        for _ in engine.iter_blocks():
            pass
        peaks[blocks] = engine.peak_block_bytes
    assert peaks[(5, 5)] < peaks[(1, 1)]


def test_blocked_summa_validation():
    comm = SimCommunicator(4)
    a = DistSparseMatrix.empty((10, 20), comm)
    b = DistSparseMatrix.empty((20, 10), comm)
    with pytest.raises(ValueError):
        BlockedSpGemm(a, b, CountSemiring(), BlockSchedule(8, 10, 2, 2))
    with pytest.raises(ValueError):
        BlockedSpGemm(a, DistSparseMatrix.empty((15, 10), comm), CountSemiring(),
                      BlockSchedule(10, 10, 2, 2))


def test_blocked_summa_broadcast_volume_model():
    comm = SimCommunicator(4)
    a = random_coo((20, 50), 100, 9, dtype=np.int32)
    engine = BlockedSpGemm(
        DistSparseMatrix.from_global_coo(a, comm),
        DistSparseMatrix.from_global_coo(a.transpose(), comm),
        CountSemiring(),
        BlockSchedule(20, 20, 4, 4),
    )
    model = engine.broadcast_volume_model()
    # blocked variant sends more messages but the bandwidth term grows only
    # with (br + bc), not br * bc
    assert model["blocked_latency_messages"] == pytest.approx(
        16 * model["plain_latency_messages"]
    )
    assert model["blocked_bandwidth_bytes"] == pytest.approx(
        4 * model["plain_bandwidth_bytes"]
    )


# ---------------------------------------------------------------- distribute / gather
def test_distribute_coo_charges_traffic():
    comm = SimCommunicator(4)
    mat = random_coo((20, 20), 100, 10)
    dist = distribute_coo(mat, comm)
    assert dist.to_global_coo() == mat.copy().sort_rowmajor()
    assert comm.ledger.component_time("comm") > 0


def test_distribute_sequences_assigns_row_and_col_ranges():
    comm = SimCommunicator(4)
    seqs = synthetic_dataset(n_sequences=20, seed=1)
    needed = distribute_sequences(seqs, comm)
    assert len(needed) == 4
    union = set()
    for idx in needed:
        union.update(idx.tolist())
    assert union == set(range(20))
    assert comm.ledger.component_time("cwait") > 0


def test_gather_to_root():
    comm = SimCommunicator(4)
    pieces = [CooMatrix.empty((6, 6), dtype=np.float64) for _ in range(4)]
    pieces[1] = CooMatrix((6, 6), np.array([2]), np.array([3]), np.array([1.5]))
    pieces[3] = CooMatrix((6, 6), np.array([4]), np.array([5]), np.array([2.5]))
    merged = gather_to_root(pieces, (6, 6), comm)
    assert merged.nnz == 2
    with pytest.raises(ValueError):
        gather_to_root(pieces[:2], (6, 6), comm)


# ---------------------------------------------------------------- deferred merge
@pytest.mark.parametrize("nprocs", [1, 4, 9])
@pytest.mark.parametrize("backend", ["expand", "gustavson", "auto"])
def test_deferred_merge_bit_identical_to_serial_kernel(nprocs, backend):
    """Deferred-merge SUMMA matches a serial kernel invocation bit for bit.

    The operand values are probabilities (not exactly representable), so the
    per-stage merge's re-association *would* drift in the last ulp — the
    deferred local multiply must not.
    """
    from repro.sparse.kernels import get_kernel

    rng = np.random.default_rng(42)
    n = 21
    a = CooMatrix(
        (n, n), rng.integers(0, n, 260), rng.integers(0, n, 260),
        rng.random(260) * 0.1 + 1e-3,
    ).deduplicate()
    comm = SimCommunicator(nprocs)
    dist = DistSparseMatrix.from_global_coo(a, comm)
    result = summa(
        dist, dist, ArithmeticSemiring(), spgemm_backend=backend, deferred_merge=True
    )
    merged = result.to_global()
    direct = get_kernel(backend)(a, a, ArithmeticSemiring())
    assert np.array_equal(merged.rows, direct.rows)
    assert np.array_equal(merged.cols, direct.cols)
    assert np.array_equal(merged.values, direct.values)  # bitwise, not allclose


def test_deferred_merge_charges_identical_communication():
    """Deferring the local multiply must not change what the network does."""
    rng = np.random.default_rng(5)
    a = CooMatrix(
        (16, 16), rng.integers(0, 16, 120), rng.integers(0, 16, 120),
        rng.random(120),
    ).deduplicate()
    volumes = {}
    times = {}
    for deferred in (False, True):
        comm = SimCommunicator(9)
        dist = DistSparseMatrix.from_global_coo(a, comm)
        summa(dist, dist, ArithmeticSemiring(), deferred_merge=deferred)
        volumes[deferred] = comm.ledger.counter_total("bytes_sent")
        times[deferred] = comm.ledger.component_time("comm")
    assert volumes[True] == volumes[False]
    assert times[True] == times[False]
    assert volumes[True] > 0


def test_deferred_merge_flops_match_per_stage():
    rng = np.random.default_rng(6)
    a = CooMatrix(
        (12, 12), rng.integers(0, 12, 80), rng.integers(0, 12, 80), rng.random(80)
    ).deduplicate()
    comm = SimCommunicator(4)
    dist = DistSparseMatrix.from_global_coo(a, comm)
    staged = summa(dist, dist, ArithmeticSemiring())
    deferred = summa(dist, dist, ArithmeticSemiring(), deferred_merge=True)
    assert deferred.stats.flops == staged.stats.flops
    assert deferred.flops_per_rank.sum() == staged.flops_per_rank.sum()


def test_summa_custom_collectives_category():
    """A substitute CollectiveEngine routes comm charges to its own category."""
    from repro.mpi.collectives import CollectiveEngine

    rng = np.random.default_rng(8)
    a = CooMatrix(
        (10, 10), rng.integers(0, 10, 60), rng.integers(0, 10, 60), rng.random(60)
    ).deduplicate()
    comm = SimCommunicator(4)
    engine = CollectiveEngine(
        network=comm.cluster.network,
        ledger=comm.ledger,
        comm_category="cluster_comm",
        counter_prefix="cluster_",
    )
    dist = DistSparseMatrix.from_global_coo(a, comm)
    result = summa(dist, dist, ArithmeticSemiring(), collectives=engine)
    assert comm.ledger.component_time("cluster_comm") > 0
    assert comm.ledger.component_time("comm") == 0
    assert comm.ledger.counter_total("cluster_bytes_sent") > 0
    assert comm.ledger.counter_total("bytes_sent") == 0
    assert result.comm_seconds > 0  # measured against the substitute category


# -------------------------------------------------- volume model edge cases
def test_broadcast_volume_model_1x1_grid():
    """A 1x1 grid has no partners: the model must stay finite and ordered."""
    comm = SimCommunicator(1)
    a = random_coo((10, 10), 40, 11)
    engine = BlockedSpGemm(
        DistSparseMatrix.from_global_coo(a, comm),
        DistSparseMatrix.from_global_coo(a.transpose(), comm),
        CountSemiring(),
        BlockSchedule(10, 10, 2, 3),
    )
    model = engine.broadcast_volume_model()
    assert np.isfinite(list(model.values())).all()
    assert model["blocked_latency_messages"] == 6 * model["plain_latency_messages"]
    # and the actual run moves zero bytes (nothing leaves the only rank)
    for _ in engine.iter_blocks():
        pass
    assert comm.ledger.counter_total("bytes_sent") == 0


def test_broadcast_volume_model_non_divisible_dims():
    """Matrix dims not divisible by the grid or the blocking still cover/charge."""
    comm = SimCommunicator(9)
    n, k = 17, 23  # neither divisible by grid_dim=3
    a = random_coo((n, k), 90, 12, dtype=np.int32)
    engine = BlockedSpGemm(
        DistSparseMatrix.from_global_coo(a, comm),
        DistSparseMatrix.from_global_coo(a.transpose(), comm),
        CountSemiring(),
        BlockSchedule(n, n, 4, 3),  # 17 rows into 4 blocks: uneven chunks
    )
    direct = spgemm(a, a.transpose(), CountSemiring())
    pieces = [blk.result.to_global(CountSemiring()) for blk in engine.iter_blocks()]
    rows = np.concatenate([p.rows for p in pieces])
    cols = np.concatenate([p.cols for p in pieces])
    vals = np.concatenate([p.values for p in pieces])
    assert CooMatrix((n, n), rows, cols, vals, check=False).deduplicate(
        CountSemiring()
    ) == direct
    model = engine.broadcast_volume_model()
    assert model["blocked_bandwidth_bytes"] > 0


def test_broadcast_volume_model_consistent_with_ledger_charges():
    """The charged byte counters follow the same (dim-1)-per-broadcast law the
    closed-form model is built from: every block broadcast moves
    bytes * (grid_dim - 1), summed over the stripes actually broadcast."""
    comm = SimCommunicator(4)
    grid = comm.require_grid()
    n, k = 12, 30
    a = random_coo((n, k), 80, 13, dtype=np.int32)
    a_dist = DistSparseMatrix.from_global_coo(a, comm)
    at_dist = DistSparseMatrix.from_global_coo(a.transpose(), comm)
    schedule = BlockSchedule(n, n, 2, 2)
    engine = BlockedSpGemm(a_dist, at_dist, CountSemiring(), schedule)
    for _ in engine.iter_blocks():
        pass
    expected = 0
    dim = grid.grid_dim
    for br_idx in range(schedule.br):
        stripe = a_dist.row_stripe(schedule.row_range(br_idx))
        for bc_idx in range(schedule.bc):
            cstripe = at_dist.col_stripe(schedule.col_range(bc_idx))
            for kk in range(dim):
                for i in range(dim):
                    expected += stripe.grid_block(i, kk)[0].memory_bytes() * (dim - 1)
                for j in range(dim):
                    expected += cstripe.grid_block(kk, j)[0].memory_bytes() * (dim - 1)
    assert comm.ledger.counter_total("bytes_sent") == expected
    assert comm.ledger.counter_total("bytes_received") == expected


# -------------------------------------------------- process grid edge cases
def test_process_grid_1x1_edges():
    from repro.mpi.process_grid import ProcessGrid

    grid = ProcessGrid(1)
    assert grid.nprocs == 1
    assert grid.row_group(0) == [0] and grid.col_group(0) == [0]
    assert grid.block_bounds(7, 0) == (0, 7)
    assert grid.owner_of(5, 5, 4, 4) == 0


def test_process_grid_more_ranks_than_rows():
    """n < grid_dim: trailing chunks are empty but everything stays valid."""
    from repro.mpi.process_grid import ProcessGrid

    grid = ProcessGrid(3)
    bounds = [grid.block_bounds(2, i) for i in range(3)]
    assert bounds == [(0, 1), (1, 2), (2, 2)]
    assert sum(hi - lo for lo, hi in bounds) == 2
    comm = SimCommunicator(9)
    dist = DistSparseMatrix.from_global_coo(random_coo((2, 2), 3, 14), comm)
    assert dist.nnz_per_rank().sum() == dist.nnz
    assert dist.local(8).shape == (0, 0)
