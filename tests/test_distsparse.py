"""Tests for the distributed sparse layer: DistSparseMatrix, SUMMA, Blocked SUMMA."""

import numpy as np
import pytest

from repro.distsparse.blocked_summa import BlockedSpGemm, BlockSchedule
from repro.distsparse.distmat import DistSparseMatrix
from repro.distsparse.distribute import distribute_coo, distribute_sequences
from repro.distsparse.gather import gather_to_root
from repro.distsparse.summa import summa
from repro.mpi.communicator import SimCommunicator
from repro.sequences.synthetic import synthetic_dataset
from repro.sparse.coo import CooMatrix
from repro.sparse.semiring import ArithmeticSemiring, CountSemiring, OverlapSemiring
from repro.sparse.spgemm import spgemm


def random_coo(shape, nnz, seed, dtype=np.float64):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, shape[0], nnz)
    cols = rng.integers(0, shape[1], nnz)
    if dtype == np.int32:
        vals = rng.integers(0, 100, nnz).astype(np.int32)
    else:
        vals = rng.integers(1, 9, nnz).astype(np.float64)
    return CooMatrix(shape, rows, cols, vals).deduplicate()


# ---------------------------------------------------------------- DistSparseMatrix
def test_distribution_partitions_all_nonzeros():
    comm = SimCommunicator(4)
    mat = random_coo((20, 30), 80, 0)
    dist = DistSparseMatrix.from_global_coo(mat, comm)
    assert dist.nnz == mat.nnz
    assert dist.to_global_coo() == mat.copy().sort_rowmajor()
    assert dist.nnz_per_rank().sum() == mat.nnz
    assert dist.memory_bytes_per_rank().sum() > 0


def test_distribution_block_ownership():
    comm = SimCommunicator(4)
    mat = CooMatrix((4, 4), np.array([0, 3]), np.array([0, 3]), np.array([1.0, 2.0]))
    dist = DistSparseMatrix.from_global_coo(mat, comm)
    # element (0,0) belongs to rank (0,0); (3,3) to rank (1,1)
    assert dist.local(comm.grid.rank_of(0, 0)).nnz == 1
    assert dist.local(comm.grid.rank_of(1, 1)).nnz == 1
    assert dist.local(comm.grid.rank_of(0, 1)).nnz == 0


def test_grid_block_offsets():
    comm = SimCommunicator(4)
    mat = random_coo((10, 10), 30, 1)
    dist = DistSparseMatrix.from_global_coo(mat, comm)
    block, roff, coff = dist.grid_block(1, 0)
    assert roff == 5 and coff == 0
    assert block.shape == (5, 5)


def test_empty_distributed_matrix():
    comm = SimCommunicator(9)
    dist = DistSparseMatrix.empty((12, 12), comm)
    assert dist.nnz == 0
    assert dist.to_global_coo().nnz == 0


def test_row_and_col_stripes_cover_matrix():
    comm = SimCommunicator(4)
    mat = random_coo((16, 12), 70, 2)
    dist = DistSparseMatrix.from_global_coo(mat, comm)
    stripe = dist.row_stripe((4, 11))
    global_stripe = stripe.to_global_coo()
    expected = mat.select((mat.rows >= 4) & (mat.rows < 11)).sort_rowmajor()
    assert set(zip(global_stripe.rows.tolist(), global_stripe.cols.tolist())) == set(
        zip(expected.rows.tolist(), expected.cols.tolist())
    )
    cstripe = dist.col_stripe((0, 5))
    expected_c = mat.select(mat.cols < 5)
    assert cstripe.nnz == expected_c.nnz


def test_set_local_shape_check():
    comm = SimCommunicator(4)
    dist = DistSparseMatrix.empty((8, 8), comm)
    with pytest.raises(ValueError):
        dist.set_local(0, CooMatrix.empty((3, 3)))
    dist.set_local(0, CooMatrix.empty((4, 4)))


def test_wrong_block_count_raises():
    comm = SimCommunicator(4)
    with pytest.raises(ValueError):
        DistSparseMatrix((8, 8), comm, [CooMatrix.empty((4, 4))])


# ---------------------------------------------------------------- SUMMA
@pytest.mark.parametrize("nprocs", [1, 4, 9])
def test_summa_equals_direct_spgemm(nprocs):
    comm = SimCommunicator(nprocs)
    a = random_coo((18, 22), 90, 3)
    b = random_coo((22, 15), 70, 4)
    sr = ArithmeticSemiring()
    dist_result = summa(
        DistSparseMatrix.from_global_coo(a, comm),
        DistSparseMatrix.from_global_coo(b, comm),
        sr,
    )
    direct = spgemm(a, b, sr)
    merged = dist_result.to_global(sr)
    assert np.array_equal(merged.rows, direct.rows)
    assert np.array_equal(merged.cols, direct.cols)
    assert np.allclose(merged.values, direct.values)


@pytest.mark.parametrize("backend", ["expand", "gustavson"])
def test_summa_backend_selection_preserves_results(backend):
    """Every registered backend yields the same SUMMA result and flop count."""
    comm = SimCommunicator(4)
    a = random_coo((20, 60), 150, 7, dtype=np.int32)
    a_dist = DistSparseMatrix.from_global_coo(a, comm)
    at_dist = DistSparseMatrix.from_global_coo(a.transpose(), comm)
    res = summa(a_dist, at_dist, OverlapSemiring(), spgemm_backend=backend)
    baseline = summa(a_dist, at_dist, OverlapSemiring())
    assert res.stats.flops == baseline.stats.flops
    assert res.stats.output_nnz == baseline.stats.output_nnz
    merged = res.to_global()
    assert merged == baseline.to_global()


def test_summa_unknown_backend_raises():
    comm = SimCommunicator(4)
    a = DistSparseMatrix.empty((4, 4), comm)
    with pytest.raises(ValueError, match="unknown SpGEMM kernel"):
        summa(a, a, ArithmeticSemiring(), spgemm_backend="bogus")


def test_summa_charges_communication_and_compute():
    comm = SimCommunicator(4)
    a = random_coo((20, 20), 120, 5)
    summa(
        DistSparseMatrix.from_global_coo(a, comm),
        DistSparseMatrix.from_global_coo(a.transpose(), comm),
        CountSemiring(),
    )
    assert comm.ledger.component_time("comm") > 0
    assert comm.ledger.component_time("spgemm") > 0
    assert comm.ledger.counter_total("spgemm_flops") > 0


def test_summa_dimension_mismatch():
    comm = SimCommunicator(4)
    a = DistSparseMatrix.empty((4, 5), comm)
    b = DistSparseMatrix.empty((6, 4), comm)
    with pytest.raises(ValueError):
        summa(a, b, ArithmeticSemiring())


def test_summa_requires_same_communicator():
    a = DistSparseMatrix.empty((4, 4), SimCommunicator(4))
    b = DistSparseMatrix.empty((4, 4), SimCommunicator(4))
    with pytest.raises(ValueError):
        summa(a, b, ArithmeticSemiring())


def test_summa_result_flops_per_rank():
    comm = SimCommunicator(4)
    a = random_coo((20, 20), 150, 6)
    res = summa(
        DistSparseMatrix.from_global_coo(a, comm),
        DistSparseMatrix.from_global_coo(a.transpose(), comm),
        CountSemiring(),
    )
    assert res.flops_per_rank.sum() == res.stats.flops
    assert res.nnz == res.nnz_per_rank().sum()


# ---------------------------------------------------------------- Blocked SUMMA
def test_block_schedule_ranges_cover_matrix():
    sched = BlockSchedule(n_rows=17, n_cols=17, br=3, bc=4)
    assert sched.num_blocks == 12
    rows_covered = sum(sched.row_range(r)[1] - sched.row_range(r)[0] for r in range(3))
    cols_covered = sum(sched.col_range(c)[1] - sched.col_range(c)[0] for c in range(4))
    assert rows_covered == 17
    assert cols_covered == 17
    assert len(sched.all_blocks()) == 12


def test_block_schedule_validation():
    with pytest.raises(ValueError):
        BlockSchedule(n_rows=10, n_cols=10, br=0, bc=2)
    with pytest.raises(ValueError):
        BlockSchedule(n_rows=3, n_cols=3, br=5, bc=1)
    with pytest.raises(IndexError):
        BlockSchedule(n_rows=10, n_cols=10, br=2, bc=2).row_range(2)


@pytest.mark.parametrize("blocking", [(1, 1), (2, 2), (3, 5), (4, 1)])
def test_blocked_summa_union_equals_direct(blocking):
    comm = SimCommunicator(4)
    n, k = 24, 120
    a = random_coo((n, k), 200, 7, dtype=np.int32)
    sr = CountSemiring()
    direct = spgemm(a, a.transpose(), sr)
    engine = BlockedSpGemm(
        DistSparseMatrix.from_global_coo(a, comm),
        DistSparseMatrix.from_global_coo(a.transpose(), comm),
        sr,
        BlockSchedule(n, n, blocking[0], blocking[1]),
    )
    pieces = [blk.result.to_global(sr) for blk in engine.iter_blocks()]
    rows = np.concatenate([p.rows for p in pieces])
    cols = np.concatenate([p.cols for p in pieces])
    vals = np.concatenate([p.values for p in pieces])
    merged = CooMatrix((n, n), rows, cols, vals, check=False).deduplicate(sr)
    assert merged == direct


def test_blocked_summa_peak_memory_decreases_with_more_blocks():
    comm = SimCommunicator(4)
    n, k = 30, 200
    a = random_coo((n, k), 400, 8, dtype=np.int32)
    sr = OverlapSemiring()
    peaks = {}
    for blocks in [(1, 1), (5, 5)]:
        engine = BlockedSpGemm(
            DistSparseMatrix.from_global_coo(a, comm),
            DistSparseMatrix.from_global_coo(a.transpose(), comm),
            sr,
            BlockSchedule(n, n, *blocks),
        )
        for _ in engine.iter_blocks():
            pass
        peaks[blocks] = engine.peak_block_bytes
    assert peaks[(5, 5)] < peaks[(1, 1)]


def test_blocked_summa_validation():
    comm = SimCommunicator(4)
    a = DistSparseMatrix.empty((10, 20), comm)
    b = DistSparseMatrix.empty((20, 10), comm)
    with pytest.raises(ValueError):
        BlockedSpGemm(a, b, CountSemiring(), BlockSchedule(8, 10, 2, 2))
    with pytest.raises(ValueError):
        BlockedSpGemm(a, DistSparseMatrix.empty((15, 10), comm), CountSemiring(),
                      BlockSchedule(10, 10, 2, 2))


def test_blocked_summa_broadcast_volume_model():
    comm = SimCommunicator(4)
    a = random_coo((20, 50), 100, 9, dtype=np.int32)
    engine = BlockedSpGemm(
        DistSparseMatrix.from_global_coo(a, comm),
        DistSparseMatrix.from_global_coo(a.transpose(), comm),
        CountSemiring(),
        BlockSchedule(20, 20, 4, 4),
    )
    model = engine.broadcast_volume_model()
    # blocked variant sends more messages but the bandwidth term grows only
    # with (br + bc), not br * bc
    assert model["blocked_latency_messages"] == pytest.approx(
        16 * model["plain_latency_messages"]
    )
    assert model["blocked_bandwidth_bytes"] == pytest.approx(
        4 * model["plain_bandwidth_bytes"]
    )


# ---------------------------------------------------------------- distribute / gather
def test_distribute_coo_charges_traffic():
    comm = SimCommunicator(4)
    mat = random_coo((20, 20), 100, 10)
    dist = distribute_coo(mat, comm)
    assert dist.to_global_coo() == mat.copy().sort_rowmajor()
    assert comm.ledger.component_time("comm") > 0


def test_distribute_sequences_assigns_row_and_col_ranges():
    comm = SimCommunicator(4)
    seqs = synthetic_dataset(n_sequences=20, seed=1)
    needed = distribute_sequences(seqs, comm)
    assert len(needed) == 4
    union = set()
    for idx in needed:
        union.update(idx.tolist())
    assert union == set(range(20))
    assert comm.ledger.component_time("cwait") > 0


def test_gather_to_root():
    comm = SimCommunicator(4)
    pieces = [CooMatrix.empty((6, 6), dtype=np.float64) for _ in range(4)]
    pieces[1] = CooMatrix((6, 6), np.array([2]), np.array([3]), np.array([1.5]))
    pieces[3] = CooMatrix((6, 6), np.array([4]), np.array([5]), np.array([2.5]))
    merged = gather_to_root(pieces, (6, 6), comm)
    assert merged.nnz == 2
    with pytest.raises(ValueError):
        gather_to_root(pieces[:2], (6, 6), comm)
