"""Metrics facade, run registry, and regression detector.

The observability contract under test has four legs:

* **Non-perturbation** — a run with metrics enabled is bit-identical to
  the same run without, per scheduler: records, edges, every
  deterministic ledger category and counter (the same contract
  ``tests/test_trace.py`` asserts for tracing).
* **Fidelity** — the hub's ``ledger_seconds`` counters equal the
  ledger's own per-category sums, SUMMA-stage kernel histograms are
  journaled in the discover workers and merged parent-side, and
  ``spgemm_auto`` dispatch decisions are counted.
* **Manifests** — every run, success *and* failure path (including a
  SIGKILLed worker), leaves a schema-versioned, loadable ``run.json``
  in the registry; a crashed run records its partial phase timers.
* **Regression gate** — an injected 2× slowdown against a stored
  baseline is flagged (exit 2) and an identical re-run passes (exit 0).
"""

from __future__ import annotations

import importlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.core.stats import SearchStats
from repro.io.report import run_report
from repro.obs import (
    LedgerFanout,
    MetricsHub,
    current_metrics,
    prometheus_from_snapshot,
)
from repro.obs.__main__ import main as obs_cli
from repro.obs.manifest import (
    RUN_SCHEMA_VERSION,
    config_key,
    host_fingerprint,
    new_run_id,
)
from repro.obs.regress import detect, doc_metrics, flatten_numeric, load_baseline_docs
from repro.obs.registry import RunRegistry

#: same bit-identity surface as tests/test_trace.py
LEDGER_CATEGORIES = (
    "align", "spgemm", "comm", "cwait", "sparse_other", "io", "overlap_hidden",
)
LEDGER_COUNTERS = (
    "spgemm_flops", "bytes_sent", "bytes_received", "alignments", "alignment_cells",
)
NONCOMPARABLE_STATS_KEYS = frozenset(
    {
        "wall_seconds",
        "phase_seconds",
        "cache",
        "measured_align_seconds",
        "measured_discover_seconds",
        "peak_live_blocks",
        "peak_live_block_bytes",
        "process_lanes",
        "shm_peak_block_bytes",
        "shm_total_bytes",
    }
)

SCHEDULER_OVERRIDES = [
    pytest.param({}, id="serial"),
    pytest.param({"pre_blocking": True}, id="overlapped"),
    pytest.param(
        {"pre_blocking": True, "preblock_depth": 2, "preblock_workers": 2,
         "scheduler": "threaded"},
        id="threaded",
    ),
    pytest.param(
        {"pre_blocking": True, "preblock_depth": 2, "preblock_workers": 2,
         "scheduler": "process"},
        id="process",
    ),
]


def _run(seqs, fast_params, **overrides):
    return PastisPipeline(fast_params.replace(num_blocks=4, **overrides)).run(seqs)


def assert_observed_identical(plain, observed):
    """Bit-identity of everything deterministic between an observed and an
    unobserved execution of the same configuration."""
    assert np.array_equal(
        plain.similarity_graph.edges, observed.similarity_graph.edges
    )
    assert len(plain.block_records) == len(observed.block_records)
    for ra, rb in zip(plain.block_records, observed.block_records):
        assert (ra.block_row, ra.block_col) == (rb.block_row, rb.block_col)
        assert (ra.candidates, ra.aligned_pairs, ra.similar_pairs) == (
            rb.candidates, rb.aligned_pairs, rb.similar_pairs
        )
        assert np.array_equal(ra.sparse_seconds_per_rank, rb.sparse_seconds_per_rank)
        assert np.array_equal(ra.align_seconds_per_rank, rb.align_seconds_per_rank)
    for category in LEDGER_CATEGORIES:
        assert np.array_equal(
            plain.ledger.per_rank(category), observed.ledger.per_rank(category)
        ), f"ledger category {category!r} perturbed by metrics"
    for counter in LEDGER_COUNTERS:
        assert np.array_equal(
            plain.ledger.counter_per_rank(counter),
            observed.ledger.counter_per_rank(counter),
        ), f"ledger counter {counter!r} perturbed by metrics"
    su, st = plain.stats.as_dict(), observed.stats.as_dict()
    assert set(su) == set(st), "metrics changed the stats key set"
    for key in su:
        if key in NONCOMPARABLE_STATS_KEYS:
            continue
        assert su[key] == st[key], f"stats key {key!r} perturbed by metrics"


# ---------------------------------------------------------------------------
# hub unit behavior
# ---------------------------------------------------------------------------


def test_hub_counter_gauge_histogram_basics():
    hub = MetricsHub()
    hub.counter_add("requests", 2.0, route="a")
    hub.counter_add("requests", 3.0, route="a")
    hub.counter_add("requests", 1.0, route="b")
    hub.gauge_set("depth", 4.0)
    hub.gauge_set("depth", 2.0)  # gauges overwrite
    hub.observe("latency", 0.5, stage="0")
    hub.observe("latency", 1.5, stage="0")
    assert hub.value("requests", route="a") == 5.0
    assert hub.value("requests", route="b") == 1.0
    assert hub.value("requests", route="missing") == 0.0
    assert hub.value("depth") == 2.0
    hist = hub.histogram("latency", stage="0")
    assert hist == {"count": 2.0, "sum": 2.0, "min": 0.5, "max": 1.5}
    assert hub.histogram("latency", stage="9") is None


def test_hub_snapshot_is_sorted_and_jsonable():
    hub = MetricsHub()
    hub.counter_add("z", 1.0)
    hub.counter_add("a", 1.0, k="v")
    hub.gauge_set("g", 7.0)
    hub.observe("h", 0.25)
    snapshot = hub.snapshot()
    assert [c["name"] for c in snapshot["counters"]] == ["a", "z"]
    assert snapshot["counters"][0]["labels"] == {"k": "v"}
    assert snapshot["gauges"] == [{"name": "g", "labels": {}, "value": 7.0}]
    assert snapshot["histograms"][0]["count"] == 1.0
    json.dumps(snapshot)  # must serialize as-is


def test_hub_speaks_the_ledger_hook_protocol():
    hub = MetricsHub()
    hub.bump("ledger.align", 0.25)
    hub.bump("ledger.align", 0.25)
    hub.bump("live_blocks", 1.0)  # non-ledger bumps become plain counters
    assert hub.value("ledger_seconds", category="align") == 0.5
    assert hub.value("live_blocks") == 1.0
    # cache replay restores absolute sums: set_value overwrites the counter
    hub.set_value("ledger.align", 9.0)
    assert hub.value("ledger_seconds", category="align") == 9.0
    hub.set_value("shm_total_bytes", 1024.0)  # non-ledger sets are gauges
    assert hub.value("shm_total_bytes") == 1024.0


def test_hub_drain_and_merge_replay_events_in_order():
    worker = MetricsHub(journal=True)
    worker.counter_add("c", 1.0, k="v")
    worker.observe("h", 0.5)
    worker.bump("ledger.align", 0.1)
    worker.set_value("ledger.align", 2.0)  # "cs": absolute, must win on merge
    events = worker.drain()
    assert worker.drain() == []  # drained
    parent = MetricsHub()
    parent.counter_add("c", 1.0, k="v")  # merge adds onto existing series
    parent.merge(events)
    assert parent.value("c", k="v") == 2.0
    assert parent.histogram("h")["count"] == 1.0
    assert parent.value("ledger_seconds", category="align") == 2.0
    # merging into a journaling hub re-journals (relay through a middle hop)
    relay = MetricsHub(journal=True)
    relay.merge(events)
    parent2 = MetricsHub()
    parent2.merge(relay.drain())
    assert parent2.value("c", k="v") == 1.0
    assert parent2.value("ledger_seconds", category="align") == 2.0


def test_ledger_fanout_forwards_to_all_sinks():
    a, b = MetricsHub(), MetricsHub()
    fanout = LedgerFanout(a, None, b)
    fanout.bump("ledger.io", 1.5)
    fanout.set_value("x", 3.0)
    for hub in (a, b):
        assert hub.value("ledger_seconds", category="io") == 1.5
        assert hub.value("x") == 3.0


def test_prometheus_text_exposition():
    hub = MetricsHub()
    hub.counter_add("reqs", 2.0, route='a"b\\c')
    hub.gauge_set("depth", 3.0)
    hub.observe("lat", 0.5, stage="0")
    text = hub.prometheus_text()
    assert "# TYPE pastis_reqs counter" in text
    assert 'pastis_reqs{route="a\\"b\\\\c"} 2' in text
    assert "pastis_depth 3" in text
    # histograms expose count/sum counters and min/max gauges
    assert 'pastis_lat_count{stage="0"} 1' in text
    assert 'pastis_lat_sum{stage="0"} 0.5' in text
    assert "# TYPE pastis_lat_min gauge" in text
    assert text.endswith("\n")
    # extra lines ride along verbatim
    extra = prometheus_from_snapshot(hub.snapshot(), extra_lines=["custom 1"])
    assert extra.rstrip().endswith("custom 1")


def test_active_hub_defaults_to_none():
    assert current_metrics() is None


def test_record_spgemm_stage_and_dispatch():
    hub = MetricsHub()
    hub.record_spgemm_stage("gustavson", 0, 0.01, 100.0, 4.0)
    hub.record_spgemm_stage("gustavson", 0, 0.03, 300.0, 2.0)
    hub.record_dispatch("expand", 1.5)
    hub.record_dispatch("gustavson", None)  # no prediction → no histogram
    assert hub.value("spgemm_stage_invocations", backend="gustavson") == 2.0
    assert hub.value("spgemm_stage_flops", backend="gustavson") == 400.0
    kernel = hub.histogram("spgemm_kernel_seconds", backend="gustavson", stage="0")
    assert kernel["count"] == 2.0 and kernel["max"] == 0.03
    cf = hub.histogram("spgemm_compression_factor", backend="gustavson", stage="0")
    assert cf["min"] == 2.0 and cf["max"] == 4.0
    assert hub.value("spgemm_dispatch", kernel="expand") == 1.0
    assert hub.value("spgemm_dispatch", kernel="gustavson") == 1.0
    predicted = hub.histogram("spgemm_predicted_compression_factor", kernel="expand")
    assert predicted["count"] == 1.0
    assert hub.histogram(
        "spgemm_predicted_compression_factor", kernel="gustavson"
    ) is None


# ---------------------------------------------------------------------------
# non-perturbation: observed == unobserved, per scheduler
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("overrides", SCHEDULER_OVERRIDES)
def test_metrics_are_non_perturbing_per_scheduler(tiny_seqs, fast_params, overrides):
    plain = _run(tiny_seqs, fast_params, **overrides)
    observed = _run(tiny_seqs, fast_params, metrics=True, **overrides)
    assert plain.metrics is None
    hub = observed.metrics
    assert hub is not None
    assert_observed_identical(plain, observed)
    assert current_metrics() is None  # teardown deactivated the hub

    # ledger fidelity: the hub's counters equal the ledger's own sums
    for category in ("align", "spgemm", "comm", "io"):
        assert hub.value("ledger_seconds", category=category) == pytest.approx(
            float(observed.ledger.per_rank(category).sum())
        ), f"hub ledger_seconds[{category}] diverged from the ledger"
    # phase gauges arrive through the end-of-run feed
    for phase in ("input_io", "kmer_matrix", "stage_graph", "output_io"):
        assert hub.value("phase_seconds", default=-1.0, phase=phase) >= 0.0
    # SUMMA stage kernels were recorded — for the process scheduler this
    # proves the worker journal made it home through the block headers
    kernel = hub.histogram("spgemm_kernel_seconds", backend="gustavson", stage="0")
    assert kernel is not None and kernel["count"] > 0
    if overrides.get("scheduler") == "process":
        lanes = observed.stats.extras["process_lanes"]
        for pid in lanes:
            assert hub.value("process_lane_blocks", default=-1.0, pid=pid) >= 0.0


def test_tracing_and_metrics_fan_out_the_ledger_hook(tiny_seqs, fast_params):
    both = _run(tiny_seqs, fast_params, trace=True, metrics=True)
    assert both.trace is not None and both.metrics is not None
    align_sum = float(both.ledger.per_rank("align").sum())
    # the tracer's sampled counter series and the hub's counter both saw it
    assert both.metrics.value("ledger_seconds", category="align") == pytest.approx(
        align_sum
    )
    traced_align = [c.value for c in both.trace.counters if c.name == "ledger.align"]
    assert traced_align and traced_align[-1] == pytest.approx(align_sum)


def test_auto_dispatch_decisions_are_counted(tiny_seqs, fast_params):
    plain = _run(tiny_seqs, fast_params, spgemm_backend="auto")
    observed = _run(tiny_seqs, fast_params, spgemm_backend="auto", metrics=True)
    assert_observed_identical(plain, observed)
    hub = observed.metrics
    dispatched = hub.value("spgemm_dispatch", kernel="gustavson") + hub.value(
        "spgemm_dispatch", kernel="expand"
    )
    assert dispatched > 0


# ---------------------------------------------------------------------------
# run manifests and the registry
# ---------------------------------------------------------------------------


def test_successful_run_records_a_manifest(tmp_path, tiny_seqs, fast_params):
    registry = RunRegistry(tmp_path / "reg")
    result = _run(tiny_seqs, fast_params, run_registry=str(tmp_path / "reg"))
    assert result.metrics is not None  # run_registry implies metrics
    ids = registry.run_ids()
    assert len(ids) == 1
    manifest = registry.load(ids[0])
    assert manifest["schema"] == RUN_SCHEMA_VERSION
    assert manifest["status"] == "ok"
    assert manifest["error"] is None
    assert manifest["config"]["scheduler"] == "serial"
    assert manifest["config_key"] == config_key(manifest["params_token"])
    assert manifest["host"]["fingerprint"] == host_fingerprint()["fingerprint"]
    assert {"input_io", "kmer_matrix", "stage_graph", "output_io"} <= set(
        manifest["phase_seconds"]
    )
    assert manifest["wall_seconds"] == pytest.approx(result.stats.wall_seconds)
    for category in ("align", "spgemm", "io"):
        assert manifest["ledger"]["category_seconds"][category] == pytest.approx(
            float(result.ledger.per_rank(category).sum())
        )
    assert manifest["ledger"]["counters"]["alignments"] > 0
    assert manifest["peak_memory"]["peak_block_bytes"] > 0
    assert manifest["stats"]["similar_pairs"] == result.stats.similar_pairs
    assert manifest["metrics"]["counters"]  # snapshot rode along
    # resolve: exact id, unique prefix, latest
    assert registry.resolve(ids[0])["run_id"] == ids[0]
    assert registry.resolve(ids[0][:12])["run_id"] == ids[0]
    assert registry.resolve("latest")["run_id"] == ids[0]
    with pytest.raises(KeyError):
        registry.resolve("nope")


def test_run_ids_sort_chronologically():
    first, second = new_run_id(), new_run_id()
    assert first < second  # microsecond stamp orders same-second runs


def test_registry_rejects_newer_schema(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.record({"run_id": "r1", "schema": RUN_SCHEMA_VERSION + 1})
    with pytest.raises(ValueError, match="newer"):
        registry.load("r1")


def _manifest(run_id, scale=1.0, *, status="ok", host="f0", key="k0"):
    """Handcrafted minimal manifest for registry/regress tests."""
    return {
        "schema": RUN_SCHEMA_VERSION,
        "run_id": run_id,
        "created_at": 0.0,
        "status": status,
        "host": {"hostname": "h", "fingerprint": host},
        "config_key": key,
        "config": {"scheduler": "serial"},
        "wall_seconds": 10.0 * scale,
        "phase_seconds": {"stage_graph": 8.0 * scale, "input_io": 0.5 * scale},
        "error": None,
    }


def test_baselines_filter_host_config_and_status(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.record(_manifest("run-a"))
    registry.record(_manifest("run-b", host="other"))
    registry.record(_manifest("run-c", key="other"))
    registry.record(_manifest("run-d", status="error"))
    registry.record(_manifest("run-e"))
    target = registry.load("run-e")
    baselines = registry.baselines_for(target)
    assert [b["run_id"] for b in baselines] == ["run-a"]


# ---------------------------------------------------------------------------
# failure paths: fault injection and SIGKILL
# ---------------------------------------------------------------------------


def test_failed_run_records_partial_phase_timers(
    tmp_path, tiny_seqs, fast_params, monkeypatch
):
    """Mid-schedule fault injection: the manifest from a crashed run must
    carry the phase timers that had accumulated when it died."""
    from repro.core.engine.schedulers import SerialScheduler

    def boom(self, tasks, ctx):
        raise RuntimeError("injected scheduler failure")

    monkeypatch.setattr(SerialScheduler, "run", boom)
    registry_dir = tmp_path / "reg"
    with pytest.raises(RuntimeError, match="injected scheduler failure"):
        PastisPipeline(
            fast_params.replace(num_blocks=4, run_registry=str(registry_dir))
        ).run(tiny_seqs)
    registry = RunRegistry(registry_dir)
    manifest = registry.latest()
    assert manifest is not None
    assert manifest["status"] == "error"
    assert manifest["error"] == {
        "type": "RuntimeError",
        "message": "injected scheduler failure",
    }
    # phases completed before the crash are present; the interrupted
    # stage_graph phase still accumulated its partial seconds on exit
    phases = manifest["phase_seconds"]
    assert {"input_io", "kmer_matrix", "stage_graph"} <= set(phases)
    assert "output_io" not in phases
    assert manifest["config"]["scheduler"] == "serial"
    assert "ledger" in manifest  # the communicator existed at death
    assert current_metrics() is None  # teardown deactivated the hub


def test_sigkilled_process_run_leaves_valid_manifest(
    tmp_path, small_seqs, fast_params, monkeypatch
):
    """A worker SIGKILL mid-run must still leave a loadable run.json
    (the acceptance-criterion run)."""
    import os
    import signal
    import threading

    from repro.distsparse.blocked_summa import BlockedSpGemm

    calls = {"n": 0}
    original = BlockedSpGemm.compute_block

    def kamikaze(self, block_row, block_col):
        calls["n"] += 1
        if calls["n"] == 2:
            os.kill(os.getpid(), signal.SIGKILL)
        return original(self, block_row, block_col)

    monkeypatch.setattr(BlockedSpGemm, "compute_block", kamikaze)
    registry_dir = tmp_path / "reg"
    params = fast_params.replace(
        num_blocks=6,
        pre_blocking=True,
        scheduler="process",
        preblock_depth=3,
        preblock_workers=2,
        run_registry=str(registry_dir),
    )
    outcome: list[BaseException] = []

    def run():
        try:
            PastisPipeline(params).run(small_seqs)
        except BaseException as exc:  # noqa: BLE001 - the assertion target
            outcome.append(exc)

    runner = threading.Thread(target=run)
    runner.start()
    runner.join(timeout=60.0)
    assert not runner.is_alive(), "killed observed run deadlocked in teardown"
    assert len(outcome) == 1 and isinstance(outcome[0], RuntimeError)
    registry = RunRegistry(registry_dir)
    manifest = registry.latest()
    assert manifest is not None  # valid JSON, schema-checked by load()
    assert manifest["status"] == "error"
    assert manifest["error"]["type"] == "RuntimeError"
    assert "kmer_matrix" in manifest["phase_seconds"]
    assert manifest["config"]["scheduler"] == "process"
    assert current_metrics() is None


# ---------------------------------------------------------------------------
# regression detection
# ---------------------------------------------------------------------------


def test_detect_flags_2x_slowdown_and_passes_identical():
    baseline = flatten_numeric(_manifest("b", 1.0))
    identical = flatten_numeric(_manifest("i", 1.0))
    slowed = flatten_numeric(_manifest("s", 2.0))
    assert detect(identical, [baseline]) == []
    findings = detect(slowed, [baseline])
    flagged = {f.metric for f in findings}
    assert {"wall_seconds", "phase_seconds.stage_graph"} <= flagged
    worst = findings[0]
    assert worst.ratio == pytest.approx(2.0)
    assert "REGRESSION" not in worst.describe()  # CLI adds the prefix
    assert "2.00x" in worst.describe()


def test_detect_ignores_non_duration_metrics_and_noise():
    base = {"wall_seconds": 1.0, "similar_pairs": 100.0, "tiny_seconds": 1e-9}
    # counters doubling is not a slowdown; sub-noise durations are skipped
    current = {"wall_seconds": 1.0, "similar_pairs": 200.0, "tiny_seconds": 1e-7}
    assert detect(current, [base]) == []
    # metrics missing from either side are skipped, not flagged
    assert detect({"new_phase_seconds": 5.0}, [base]) == []
    assert detect({"wall_seconds": 1.0}, [{"gone_seconds": 5.0}]) == []


def test_detect_mad_band_tolerates_observed_variance():
    # noisy baseline: median 1.0 with wide spread → a 1.3x value stays
    # inside the MAD band even though it exceeds the ratio floor... but the
    # threshold takes the *max* of the two, so it must not flag
    baselines = [{"wall_seconds": v} for v in (0.6, 0.8, 1.0, 1.2, 1.4)]
    assert detect({"wall_seconds": 1.3}, baselines) == []
    # far outside both bands → flagged
    assert len(detect({"wall_seconds": 3.0}, baselines)) == 1


def test_flatten_numeric_skips_descriptive_roots_and_bools():
    doc = {
        "wall_seconds": 1.5,
        "ok": True,
        "host": {"cpu_count": 8},
        "config": {"nodes": 4},
        "nested": {"host": {"x": 1.0}},  # only top-level roots are skipped
    }
    flat = flatten_numeric(doc)
    assert flat == {"wall_seconds": 1.5, "nested.host.x": 1.0}


def test_cli_regress_flags_slowdown_against_registry(tmp_path):
    registry = RunRegistry(tmp_path)
    registry.record(_manifest("run-a"))
    registry.record(_manifest("run-b", 1.0))
    assert obs_cli(["regress", "run-b", "--registry", str(tmp_path)]) == 0
    registry.record(_manifest("run-c", 2.0))
    assert obs_cli(["regress", "run-c", "--registry", str(tmp_path)]) == 2
    assert obs_cli(
        ["regress", "run-c", "--registry", str(tmp_path), "--warn-only"]
    ) == 0
    # an empty comparable set is not a failure (first run on a new host)
    registry.record(_manifest("run-z", 2.0, host="fresh"))
    assert obs_cli(["regress", "run-z", "--registry", str(tmp_path)]) == 0


def test_cli_regress_over_bench_files(tmp_path, capsys):
    """BENCH_*.json + --baseline dir: the CI wiring, end to end."""
    prior = tmp_path / "prior-results"
    prior.mkdir()
    meta = {"schema": 1, "bench": "cache", "host": {"fingerprint": "f0"}}
    (prior / "BENCH_cache.json").write_text(
        json.dumps({"cold_seconds": 2.0, "warm_seconds": 0.2, "meta": meta})
    )
    # a different bench's file in the same dir must be filtered out
    (prior / "BENCH_other.json").write_text(
        json.dumps({"cold_seconds": 99.0, "meta": {**meta, "bench": "other"}})
    )
    target = tmp_path / "BENCH_cache.json"
    target.write_text(
        json.dumps({"cold_seconds": 2.05, "warm_seconds": 0.21, "meta": meta})
    )
    assert obs_cli(["regress", str(target), "--baseline", str(prior)]) == 0
    target.write_text(
        json.dumps({"cold_seconds": 4.2, "warm_seconds": 0.21, "meta": meta})
    )
    assert obs_cli(["regress", str(target), "--baseline", str(prior)]) == 2
    out = capsys.readouterr().out
    assert "cold_seconds" in out and "99" not in out
    # a missing baseline dir contributes nothing → OK, exit 0
    assert obs_cli(
        ["regress", str(target), "--baseline", str(tmp_path / "absent")]
    ) == 0


# ---------------------------------------------------------------------------
# CLI over real manifests
# ---------------------------------------------------------------------------


@pytest.fixture()
def observed_registry(tmp_path, tiny_seqs, fast_params):
    registry_dir = tmp_path / "reg"
    _run(tiny_seqs, fast_params, run_registry=str(registry_dir))
    _run(tiny_seqs, fast_params, run_registry=str(registry_dir))
    return registry_dir


def test_cli_ls_show_diff_export(observed_registry, tmp_path, capsys):
    reg = str(observed_registry)
    assert obs_cli(["ls", "--registry", reg]) == 0
    out = capsys.readouterr().out
    assert "run id" in out and out.count("serial") == 2
    assert obs_cli(["show", "latest", "--registry", reg]) == 0
    out = capsys.readouterr().out
    assert "phases" in out and "ledger (sum over ranks)" in out
    ids = RunRegistry(observed_registry).run_ids()
    assert obs_cli(["diff", ids[0], ids[1], "--registry", reg]) == 0
    out = capsys.readouterr().out
    assert "delta" in out
    out_path = tmp_path / "metrics.prom"
    assert obs_cli(
        ["export", "latest", "--registry", reg, "-o", str(out_path)]
    ) == 0
    text = out_path.read_text()
    assert "# TYPE pastis_ledger_seconds counter" in text
    assert "pastis_run_info{" in text
    assert "pastis_wall_seconds" in text
    capsys.readouterr()  # flush the "wrote <path>" line
    assert obs_cli(["ls", "--registry", reg, "--json"]) == 0
    parsed = json.loads(capsys.readouterr().out)
    assert len(parsed) == 2 and all(m["schema"] == 1 for m in parsed)


def test_cli_regress_on_real_manifests(observed_registry, tmp_path, capsys):
    """The acceptance criterion over a real manifest: an identical re-run
    passes, a 2× slowdown injected into the stored timers is flagged.
    (The re-run is an exact copy so wall-clock jitter can't flake this.)"""
    source = RunRegistry(observed_registry).resolve("latest")
    reg = str(tmp_path / "fresh")
    fresh = RunRegistry(reg)
    fresh.record(source)
    rerun = dict(source)
    rerun["run_id"] = rerun["run_id"] + "-rerun"
    fresh.record(rerun)
    assert obs_cli(["regress", rerun["run_id"], "--registry", reg]) == 0
    slow = dict(source)
    slow["run_id"] = slow["run_id"] + "-slow"
    slow["phase_seconds"] = {
        k: v * 2.0 for k, v in slow["phase_seconds"].items()
    }
    slow["wall_seconds"] = slow["wall_seconds"] * 2.0
    fresh.record(slow)
    assert obs_cli(["regress", slow["run_id"], "--registry", reg]) == 2
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "wall_seconds" in out


# ---------------------------------------------------------------------------
# benchmark result writer (satellite: benchmarks/_results.py)
# ---------------------------------------------------------------------------


@pytest.fixture()
def bench_results(tmp_path, monkeypatch):
    bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
    monkeypatch.syspath_prepend(str(bench_dir))
    _results = importlib.import_module("_results")
    monkeypatch.setattr(_results, "RESULTS_DIR", tmp_path / "results")
    monkeypatch.setattr(_results, "TRAJECTORY_PATH", tmp_path / "results" / "trajectory.jsonl")
    return _results


def test_save_results_stamps_meta_and_appends_trajectory(bench_results):
    _results = bench_results
    _results.save_results("BENCH_demo", {"warm_seconds": 0.5, "pairs": 10})
    doc = json.loads((_results.RESULTS_DIR / "BENCH_demo.json").read_text())
    meta = doc["meta"]
    assert meta["schema"] == _results.BENCH_SCHEMA_VERSION
    assert meta["bench"] == "BENCH_demo"
    assert meta["host"]["fingerprint"] == host_fingerprint()["fingerprint"]
    assert meta["timestamp"] > 0
    lines = _results.TRAJECTORY_PATH.read_text().splitlines()
    assert len(lines) == 1
    entry = json.loads(lines[0])
    assert entry["bench"] == "BENCH_demo"
    assert entry["host_fingerprint"] == meta["host"]["fingerprint"]
    assert entry["metrics"]["warm_seconds"] == 0.5
    # non-dict series are written unchanged and skipped by the trajectory
    _results.save_results("fig_points", [1, 2, 3])
    assert json.loads((_results.RESULTS_DIR / "fig_points.json").read_text()) == [1, 2, 3]
    assert len(_results.TRAJECTORY_PATH.read_text().splitlines()) == 1


def test_trajectory_feeds_the_regression_detector(bench_results):
    """The full CI loop: past save_results calls become the baseline set
    a fresh BENCH result regresses against."""
    _results = bench_results
    for _ in range(3):
        _results.save_results("BENCH_demo", {"warm_seconds": 0.5})
    docs = load_baseline_docs(
        [_results.TRAJECTORY_PATH],
        bench="BENCH_demo",
        host=host_fingerprint()["fingerprint"],
    )
    assert len(docs) == 3
    assert detect({"warm_seconds": 0.52}, [doc_metrics(d) for d in docs]) == []
    findings = detect({"warm_seconds": 1.1}, [doc_metrics(d) for d in docs])
    assert [f.metric for f in findings] == ["warm_seconds"]
    # CLI path: fresh result file vs the trajectory
    _results.save_results("BENCH_demo", {"warm_seconds": 1.1})
    target = _results.RESULTS_DIR / "BENCH_demo.json"
    assert obs_cli(
        ["regress", str(target), "--baseline", str(_results.TRAJECTORY_PATH)]
    ) == 2


# ---------------------------------------------------------------------------
# report hoisting, table section, params plumbing (satellites)
# ---------------------------------------------------------------------------


def test_run_report_hoists_phase_seconds(pipeline_result):
    report = run_report(pipeline_result.stats)
    phases = pipeline_result.stats.extras["phase_seconds"]
    for name, seconds in phases.items():
        assert report[f"phase_{name}_seconds"] == pytest.approx(float(seconds))
    assert "phase_stage_graph_seconds" in report


def test_as_table_phase_timer_section(pipeline_result):
    table = pipeline_result.stats.as_table()
    assert "Phase timers" in table
    assert "stage_graph" in table
    # stats without phase timers render no empty section
    assert "Phase timers" not in SearchStats().as_table()


def test_obs_params_validation():
    with pytest.raises(ValueError, match="run_registry"):
        PastisParams(run_registry="   ")
    assert PastisParams(metrics=True).metrics_enabled
    assert PastisParams(run_registry="/tmp/reg").metrics_enabled
    assert not PastisParams().metrics_enabled
