"""Randomized cross-kernel SpGEMM equivalence harness.

The kernel registry promises that every backend produces *bit-identical*
output — indices, values (including the order-sensitive fields of the
overlap semiring), and the flop/nnz statistics.  This suite is what makes it
safe to swap the default: ~50 seeded random matrices covering varied shapes,
densities, duplicate coordinates, empty rows/columns and zero-dimension edge
cases are multiplied with both backends under both the arithmetic and the
overlap semiring, and the results are compared field by field.
"""

import numpy as np
import pytest

from repro.sparse.coo import CooMatrix
from repro.sparse.gustavson import spgemm_gustavson
from repro.sparse.kernels import available_kernels, get_kernel, register_kernel, resolve_kernel
from repro.sparse.semiring import ArithmeticSemiring, OverlapSemiring
from repro.sparse.spgemm import spgemm


def random_coo(rng, shape, nnz):
    """A random COO matrix; duplicate coordinates are kept, not merged."""
    n, m = shape
    if n == 0 or m == 0:
        nnz = 0
    return CooMatrix(
        shape,
        rng.integers(0, max(n, 1), nnz),
        rng.integers(0, max(m, 1), nnz),
        rng.integers(0, 97, nnz).astype(np.int32),
        check=False,
    )


def _random_case(seed):
    """One (A, B) operand pair with compatible shapes from a seeded rng."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(0, 35))
    k = int(rng.integers(0, 45))
    m = int(rng.integers(0, 35))
    # densities from near-empty to duplicate-heavy (nnz can exceed n*k)
    nnz_a = int(rng.integers(0, 3 * max(n, 1) * max(min(k, 8), 1)))
    nnz_b = int(rng.integers(0, 3 * max(k, 1) * max(min(m, 8), 1)))
    a = random_coo(rng, (n, k), nnz_a)
    b = random_coo(rng, (k, m), nnz_b)
    return a, b


def assert_kernels_identical(a, b, semiring, batch_flops=None):
    kwargs = {} if batch_flops is None else {"batch_flops": batch_flops}
    c1, s1 = spgemm(a, b, semiring, return_stats=True)
    c2, s2 = spgemm_gustavson(a, b, semiring, return_stats=True, **kwargs)
    assert c1.shape == c2.shape
    assert np.array_equal(c1.rows, c2.rows)
    assert np.array_equal(c1.cols, c2.cols)
    assert c1.values.dtype == c2.values.dtype
    if c1.values.dtype.names:
        for field in c1.values.dtype.names:
            assert np.array_equal(c1.values[field], c2.values[field]), field
    else:
        assert np.array_equal(c1.values, c2.values)
    assert s1.flops == s2.flops
    assert s1.output_nnz == s2.output_nnz
    assert s1.compression_factor == pytest.approx(s2.compression_factor)
    # the whole point of the Gustavson backend
    assert s2.intermediate_bytes <= s1.intermediate_bytes


# 25 seeds x 2 semirings = 50 randomized cases
@pytest.mark.parametrize("seed", range(25))
@pytest.mark.parametrize("semiring", [ArithmeticSemiring(), OverlapSemiring()],
                         ids=["arithmetic", "overlap"])
def test_random_cross_kernel_equivalence(seed, semiring):
    a, b = _random_case(seed)
    # a small flop budget forces the multi-row-group path even on tiny inputs
    assert_kernels_identical(a, b, semiring, batch_flops=97)


@pytest.mark.parametrize("semiring", [ArithmeticSemiring(), OverlapSemiring()],
                         ids=["arithmetic", "overlap"])
def test_overlap_product_a_at_equivalence(semiring):
    """The pipeline's actual shape: C = A·Aᵀ on a k-mer-position-like matrix."""
    rng = np.random.default_rng(99)
    a = random_coo(rng, (30, 120), 400)
    assert_kernels_identical(a, a.transpose(), semiring)
    assert_kernels_identical(a, a.transpose(), semiring, batch_flops=1)


@pytest.mark.parametrize(
    "shape_a,shape_b",
    [
        ((0, 5), (5, 4)),   # no output rows
        ((4, 0), (0, 5)),   # zero inner dimension
        ((5, 6), (6, 0)),   # no output columns
        ((0, 0), (0, 0)),   # fully degenerate
    ],
)
@pytest.mark.parametrize("semiring", [ArithmeticSemiring(), OverlapSemiring()],
                         ids=["arithmetic", "overlap"])
def test_zero_dimension_edge_cases(shape_a, shape_b, semiring):
    a = CooMatrix.empty(shape_a, dtype=np.int32)
    b = CooMatrix.empty(shape_b, dtype=np.int32)
    assert_kernels_identical(a, b, semiring)


@pytest.mark.parametrize("semiring", [ArithmeticSemiring(), OverlapSemiring()],
                         ids=["arithmetic", "overlap"])
def test_empty_operands_and_empty_rows(semiring):
    # nonzero shapes but no entries
    assert_kernels_identical(
        CooMatrix.empty((7, 9), dtype=np.int32), CooMatrix.empty((9, 3), dtype=np.int32), semiring
    )
    # A touches only inner indices whose B rows are empty: flops == 0
    a = CooMatrix((4, 6), np.array([1, 3]), np.array([0, 5]), np.array([2, 3], dtype=np.int32))
    b = CooMatrix((6, 4), np.array([2]), np.array([1]), np.array([4], dtype=np.int32))
    assert_kernels_identical(a, b, semiring)


def test_duplicate_coordinates_keep_first_two_seeds():
    """Duplicates are separate partial products, in original input order."""
    a = CooMatrix(
        (2, 3),
        np.array([0, 0, 0]),
        np.array([1, 1, 2]),  # duplicate (0, 1)
        np.array([10, 20, 30], dtype=np.int32),
    )
    b = CooMatrix(
        (3, 2),
        np.array([1, 1, 2]),
        np.array([0, 0, 0]),  # duplicate (1, 0)
        np.array([5, 6, 7], dtype=np.int32),
    )
    assert_kernels_identical(a, b, OverlapSemiring(), batch_flops=1)
    c = spgemm_gustavson(a, b, OverlapSemiring())
    rec = c.values[(c.rows == 0) & (c.cols == 0)][0]
    assert rec["count"] == 5  # 2 A-dups x 2 B-dups + the (2,0) product
    assert (rec["first_pos_a"], rec["first_pos_b"]) == (10, 5)
    assert (rec["second_pos_a"], rec["second_pos_b"]) == (10, 6)


def test_gustavson_accepts_csr_operands():
    from repro.sparse.csr import CsrMatrix

    rng = np.random.default_rng(3)
    a = random_coo(rng, (12, 15), 60)
    b = random_coo(rng, (15, 9), 60)
    via_coo = spgemm_gustavson(a, b)
    via_csr = spgemm_gustavson(CsrMatrix.from_coo(a), CsrMatrix.from_coo(b))
    assert via_coo == via_csr


def test_gustavson_rejects_unsorted_csr():
    """Hand-built CSR with unsorted columns would silently break bit-identity."""
    from repro.sparse.csr import CsrMatrix

    unsorted = CsrMatrix(
        (2, 2),
        np.array([0, 2, 3]),
        np.array([1, 0, 0]),  # row 0 columns out of order
        np.array([1.0, 2.0, 3.0]),
    )
    ok = CsrMatrix.from_coo(unsorted.to_coo())
    with pytest.raises(ValueError, match="unsorted columns"):
        spgemm_gustavson(unsorted, ok)
    with pytest.raises(ValueError, match="unsorted columns"):
        spgemm_gustavson(ok, unsorted)
    # descending columns across a row boundary are fine
    boundary = CsrMatrix(
        (2, 2), np.array([0, 1, 2]), np.array([1, 0]), np.array([1.0, 2.0])
    )
    assert spgemm_gustavson(boundary, ok) == spgemm_gustavson(boundary.to_coo(), ok.to_coo())


def test_gustavson_validation():
    a = CooMatrix.empty((3, 4))
    b = CooMatrix.empty((5, 3))
    with pytest.raises(ValueError, match="inner dimensions"):
        spgemm_gustavson(a, b)
    with pytest.raises(ValueError, match="batch_flops"):
        spgemm_gustavson(CooMatrix.empty((3, 4)), CooMatrix.empty((4, 3)), batch_flops=0)


def test_gustavson_bounds_intermediate_memory():
    """On a high-compression product the peak intermediate is strictly lower."""
    rng = np.random.default_rng(17)
    a = random_coo(rng, (150, 20), 2000).deduplicate()
    c1, s1 = spgemm(a, a.transpose(), OverlapSemiring(), return_stats=True)
    c2, s2 = spgemm_gustavson(
        a, a.transpose(), OverlapSemiring(), return_stats=True, batch_flops=4096
    )
    assert s1.compression_factor > 2.0
    assert s2.intermediate_bytes < s1.intermediate_bytes
    assert c1 == c2


def test_reduce_by_coordinate_empty_input():
    """The shared epilogue honours its contract even on zero partial products."""
    from repro.sparse.spgemm import reduce_by_coordinate

    empty = np.empty(0, dtype=np.int64)
    rows, cols, vals = reduce_by_coordinate(empty, empty, empty, OverlapSemiring())
    assert rows.size == cols.size == vals.size == 0
    assert vals.dtype == OverlapSemiring().value_dtype


# ------------------------------------------------------------------ scipy backend
def _has_scipy():
    return "scipy" in available_kernels()


def _random_float_case(seed):
    """Canonical (duplicate-free) float64 operands for the scipy backend."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 40))
    k = int(rng.integers(1, 50))
    m = int(rng.integers(1, 40))
    nnz_a = int(rng.integers(0, n * min(k, 10)))
    nnz_b = int(rng.integers(0, k * min(m, 10)))
    a = CooMatrix(
        (n, k), rng.integers(0, n, nnz_a), rng.integers(0, k, nnz_a), rng.random(nnz_a)
    ).deduplicate()
    b = CooMatrix(
        (k, m), rng.integers(0, k, nnz_b), rng.integers(0, m, nnz_b), rng.random(nnz_b)
    ).deduplicate()
    return a, b


@pytest.mark.skipif(not _has_scipy(), reason="scipy not importable")
@pytest.mark.parametrize("seed", range(15))
def test_scipy_backend_bit_identical_under_arithmetic_semiring(seed):
    """Values, indices, and flop accounting all match the native kernels.

    Bit-identity (not allclose) holds because the arithmetic semiring
    reduces with strict left-to-right association — the same order SciPy's
    scalar accumulator adds partial products in.
    """
    from repro.sparse.kernels import spgemm_scipy

    a, b = _random_float_case(seed)
    c1, s1 = spgemm(a, b, ArithmeticSemiring(), return_stats=True)
    c2, s2 = spgemm_gustavson(a, b, ArithmeticSemiring(), return_stats=True, batch_flops=131)
    c3, s3 = spgemm_scipy(a, b, ArithmeticSemiring(), return_stats=True)
    assert c1 == c2 == c3
    assert np.array_equal(c1.values, c3.values)  # bitwise, beyond __eq__'s dtype check
    assert s1.flops == s2.flops == s3.flops
    assert s1.output_nnz == s3.output_nnz


@pytest.mark.skipif(not _has_scipy(), reason="scipy not importable")
def test_scipy_backend_accepts_csr_and_default_semiring():
    from repro.sparse.csr import CsrMatrix
    from repro.sparse.kernels import spgemm_scipy

    a, b = _random_float_case(3)
    via_coo = spgemm_scipy(a, b)
    via_csr = spgemm_scipy(CsrMatrix.from_coo(a), CsrMatrix.from_coo(b))
    assert via_coo == via_csr == spgemm(a, b)


@pytest.mark.skipif(not _has_scipy(), reason="scipy not importable")
def test_scipy_backend_rejects_overloaded_semirings():
    from repro.sparse.kernels import kernel_supports_semiring, spgemm_scipy

    a, b = _random_float_case(0)
    with pytest.raises(ValueError, match="plain arithmetic"):
        spgemm_scipy(a, b, OverlapSemiring())
    assert not kernel_supports_semiring(spgemm_scipy, OverlapSemiring())
    assert kernel_supports_semiring(spgemm_scipy, ArithmeticSemiring())
    assert kernel_supports_semiring(spgemm_scipy, None)
    # generic backends remain semiring-agnostic
    assert kernel_supports_semiring(spgemm, OverlapSemiring())


@pytest.mark.skipif(not _has_scipy(), reason="scipy not importable")
def test_scipy_backend_empty_cases():
    from repro.sparse.kernels import spgemm_scipy

    c, s = spgemm_scipy(
        CooMatrix.empty((4, 6), dtype=np.float64),
        CooMatrix.empty((6, 3), dtype=np.float64),
        return_stats=True,
    )
    assert c.nnz == 0 and c.shape == (4, 3)
    assert s.flops == 0
    with pytest.raises(ValueError, match="inner dimensions"):
        spgemm_scipy(CooMatrix.empty((3, 4)), CooMatrix.empty((5, 3)))


def test_scipy_backend_excluded_from_pipeline_params():
    """The overlap pipeline must reject plain-arithmetic-only backends."""
    if not _has_scipy():
        pytest.skip("scipy not importable")
    from repro.core.params import PastisParams

    with pytest.raises(ValueError, match="overlap semiring"):
        PastisParams(spgemm_backend="scipy")


# ------------------------------------------------------------------ auto threshold
def test_auto_compression_threshold_steers_dispatch():
    """threshold -> 0 forces Gustavson, threshold -> inf forces expand."""
    from repro.sparse.kernels import (
        kernel_supports_compression_threshold,
        spgemm_auto,
    )

    rng = np.random.default_rng(21)
    a = CooMatrix(
        (150, 20), rng.integers(0, 150, 3000), rng.integers(0, 20, 3000),
        rng.random(3000),
    ).deduplicate()
    # big enough that the Gustavson default flop budget forces >1 row group,
    # making the chosen backend observable through SpGemmStats
    _, low = spgemm_auto(
        a, a.transpose(), ArithmeticSemiring(), return_stats=True, compression_threshold=0.0
    )
    _, high = spgemm_auto(
        a, a.transpose(), ArithmeticSemiring(), return_stats=True,
        compression_threshold=float("inf"),
    )
    assert low.row_groups > 1  # Gustavson path, batched
    assert high.row_groups == 1  # expand path, single pass
    assert low.intermediate_bytes < high.intermediate_bytes
    assert low.flops == high.flops
    assert kernel_supports_compression_threshold(spgemm_auto)
    assert not kernel_supports_compression_threshold(spgemm)
    assert not kernel_supports_compression_threshold(spgemm_gustavson)


def test_auto_compression_threshold_plumbs_through_params():
    from repro.core.params import PastisParams
    from repro.sparse.kernels import AUTO_COMPRESSION_THRESHOLD

    assert PastisParams().auto_compression_threshold == AUTO_COMPRESSION_THRESHOLD
    params = PastisParams(auto_compression_threshold=7.5)
    assert params.auto_compression_threshold == 7.5
    with pytest.raises(ValueError, match="auto_compression_threshold"):
        PastisParams(auto_compression_threshold=0.0)


# ------------------------------------------------------------------ numba backend
def _has_numba():
    return "gustavson-numba" in available_kernels()


def assert_numba_identical(a, b, semiring, batch_flops=None):
    """The compiled backend against both NumPy kernels, field by field."""
    from repro.sparse.gustavson_numba import spgemm_gustavson_numba

    kwargs = {} if batch_flops is None else {"batch_flops": batch_flops}
    c1, s1 = spgemm(a, b, semiring, return_stats=True)
    c2, s2 = spgemm_gustavson(a, b, semiring, return_stats=True, **kwargs)
    c3, s3 = spgemm_gustavson_numba(a, b, semiring, return_stats=True, **kwargs)
    assert c3.shape == c1.shape
    assert np.array_equal(c3.rows, c1.rows)
    assert np.array_equal(c3.cols, c1.cols)
    assert c3.values.dtype == c1.values.dtype
    if c1.values.dtype.names:
        for field in c1.values.dtype.names:
            assert np.array_equal(c3.values[field], c1.values[field]), field
    else:
        assert np.array_equal(c3.values, c1.values)
    assert s3.flops == s1.flops
    assert s3.output_nnz == s1.output_nnz
    assert s3.compression_factor == pytest.approx(s1.compression_factor)
    # same flop-bounded grouping as the NumPy Gustavson kernel
    assert s3.row_groups == s2.row_groups


@pytest.mark.skipif(not _has_numba(), reason="numba not importable")
@pytest.mark.parametrize("seed", range(25))
@pytest.mark.parametrize("semiring", [ArithmeticSemiring(), OverlapSemiring()],
                         ids=["arithmetic", "overlap"])
def test_numba_random_cross_kernel_equivalence(seed, semiring):
    a, b = _random_case(seed)
    assert_numba_identical(a, b, semiring, batch_flops=97)


@pytest.mark.skipif(not _has_numba(), reason="numba not importable")
@pytest.mark.parametrize("semiring", [ArithmeticSemiring(), OverlapSemiring()],
                         ids=["arithmetic", "overlap"])
def test_numba_overlap_product_a_at_equivalence(semiring):
    rng = np.random.default_rng(99)
    a = random_coo(rng, (30, 120), 400)
    assert_numba_identical(a, a.transpose(), semiring)
    assert_numba_identical(a, a.transpose(), semiring, batch_flops=1)


@pytest.mark.skipif(not _has_numba(), reason="numba not importable")
@pytest.mark.parametrize(
    "shape_a,shape_b",
    [((0, 5), (5, 4)), ((4, 0), (0, 5)), ((5, 6), (6, 0)), ((0, 0), (0, 0))],
)
def test_numba_zero_dimension_edge_cases(shape_a, shape_b):
    a = CooMatrix.empty(shape_a, dtype=np.int32)
    b = CooMatrix.empty(shape_b, dtype=np.int32)
    assert_numba_identical(a, b, ArithmeticSemiring())
    assert_numba_identical(a, b, OverlapSemiring())


@pytest.mark.skipif(not _has_numba(), reason="numba not importable")
def test_numba_duplicate_coordinates_and_float_values():
    # duplicates stay separate partial products in original input order
    a = CooMatrix(
        (2, 3), np.array([0, 0, 0]), np.array([1, 1, 2]),
        np.array([10, 20, 30], dtype=np.int32),
    )
    b = CooMatrix(
        (3, 2), np.array([1, 1, 2]), np.array([0, 0, 0]),
        np.array([5, 6, 7], dtype=np.int32),
    )
    assert_numba_identical(a, b, OverlapSemiring(), batch_flops=1)
    # float association: left-to-right accumulation matches the NumPy kernels
    af, bf = _random_float_case(11)
    assert_numba_identical(af, bf, ArithmeticSemiring(), batch_flops=131)


@pytest.mark.skipif(not _has_numba(), reason="numba not importable")
def test_numba_registry_and_semiring_declaration():
    from repro.sparse.gustavson_numba import spgemm_gustavson_numba
    from repro.sparse.kernels import kernel_supports_batch_flops, kernel_supports_semiring

    assert get_kernel("gustavson-numba") is spgemm_gustavson_numba
    assert kernel_supports_batch_flops(spgemm_gustavson_numba)
    assert kernel_supports_semiring(spgemm_gustavson_numba, ArithmeticSemiring())
    assert kernel_supports_semiring(spgemm_gustavson_numba, OverlapSemiring())
    from repro.sparse.semiring import MinPlusSemiring

    assert not kernel_supports_semiring(spgemm_gustavson_numba, MinPlusSemiring())
    with pytest.raises(ValueError, match="semiring"):
        spgemm_gustavson_numba(
            CooMatrix.empty((2, 2)), CooMatrix.empty((2, 2)), MinPlusSemiring()
        )


# ------------------------------------------------------------------ registry
def test_registry_lookup_and_default():
    assert set(available_kernels()) >= {"expand", "gustavson"}
    assert get_kernel("expand") is spgemm
    assert get_kernel("gustavson") is spgemm_gustavson
    assert resolve_kernel(None) is spgemm
    assert resolve_kernel("gustavson") is spgemm_gustavson
    assert resolve_kernel(spgemm_gustavson) is spgemm_gustavson


def test_registry_unknown_and_duplicate_names():
    with pytest.raises(ValueError, match="unknown SpGEMM kernel"):
        get_kernel("bogus")
    with pytest.raises(ValueError, match="already registered"):
        register_kernel("expand", spgemm)
