"""Tests for repro.sparse.semiring."""

import numpy as np
import pytest

import repro.sparse.semiring as semiring_mod
from repro.sparse.semiring import (
    ArithmeticSemiring,
    CountSemiring,
    MaxSemiring,
    MinPlusSemiring,
    OverlapSemiring,
    OVERLAP_DTYPE,
    Semiring,
    sequential_segment_sum,
)


def _left_to_right_reference(values, group_starts):
    """Scalar ``acc += v`` loop — the association contract being tested."""
    values = np.asarray(values, dtype=np.float64)
    ends = list(group_starts[1:]) + [values.size]
    out = []
    for start, end in zip(group_starts, ends):
        acc = values[start]
        for v in values[start + 1 : end]:
            acc = acc + v
        out.append(acc)
    return np.array(out, dtype=np.float64)


def _random_groups(rng, n_groups, max_size):
    sizes = rng.integers(1, max_size + 1, n_groups)
    group_starts = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.int64)
    # magnitudes spread over many orders so association changes the bits
    values = rng.standard_normal(int(sizes.sum())) * 10.0 ** rng.integers(
        -8, 8, int(sizes.sum())
    )
    return values, group_starts


def test_sequential_segment_sum_matches_scalar_loop_bitwise():
    rng = np.random.default_rng(42)
    for n_groups, max_size in [(1, 1), (7, 3), (50, 17), (200, 1)]:
        values, group_starts = _random_groups(rng, n_groups, max_size)
        got = sequential_segment_sum(values, group_starts)
        want = _left_to_right_reference(values, group_starts)
        # bitwise equality: left-to-right association exactly preserved
        assert np.array_equal(got.view(np.uint64), want.view(np.uint64))


def test_sequential_segment_sum_empty():
    out = sequential_segment_sum(np.array([]), np.array([], dtype=np.int64))
    assert out.size == 0


def test_sequential_segment_sum_pathological_cost(monkeypatch):
    """One huge group among many singletons: bit-identical, bounded work.

    The pre-blocked implementation looped ``max_group_size`` times over all
    groups — ``O(total x max_group_size)`` when one group dominates (the
    pathological-compression-factor regime).  The width-class rewrite pads
    each group to at most twice its size, so the cells actually touched by
    the prefix sums stay within ``2 x total`` no matter how skewed the
    distribution is.
    """
    rng = np.random.default_rng(7)
    big = 4096
    n_singletons = 4096
    values = rng.standard_normal(big + n_singletons) * 10.0 ** rng.integers(
        -6, 6, big + n_singletons
    )
    group_starts = np.concatenate(
        [[0], big + np.arange(n_singletons, dtype=np.int64)]
    )

    padded_cells = 0
    real_accumulate = semiring_mod._accumulate

    def counting_accumulate(table, axis=0):
        nonlocal padded_cells
        padded_cells += table.size
        return real_accumulate(table, axis=axis)

    monkeypatch.setattr(semiring_mod, "_accumulate", counting_accumulate)
    got = sequential_segment_sum(values, group_starts)
    want = _left_to_right_reference(values, group_starts)
    assert np.array_equal(got.view(np.uint64), want.view(np.uint64))
    total = values.size
    assert padded_cells <= 2 * total, (
        f"blocked sum touched {padded_cells} cells for {total} values; "
        "the 2x-total work bound regressed"
    )


def test_abstract_semiring_raises():
    s = Semiring()
    with pytest.raises(NotImplementedError):
        s.multiply(np.array([1.0]), np.array([1.0]))
    with pytest.raises(NotImplementedError):
        s.reduce(np.array([1.0]), np.array([0]))


def test_arithmetic_semiring():
    s = ArithmeticSemiring()
    products = s.multiply(np.array([2.0, 3.0]), np.array([4.0, 5.0]))
    assert products.tolist() == [8.0, 15.0]
    reduced = s.reduce(np.array([1.0, 2.0, 3.0]), np.array([0, 2]))
    assert reduced.tolist() == [3.0, 3.0]
    assert s.scalar_add(2.0, 5.0) == 7.0


def test_count_semiring():
    s = CountSemiring()
    products = s.multiply(np.array([7, 8, 9]), np.array([1, 1, 1]))
    assert products.tolist() == [1, 1, 1]
    reduced = s.reduce(np.ones(4, dtype=np.int64), np.array([0, 1]))
    assert reduced.tolist() == [1, 3]


def test_minplus_semiring():
    s = MinPlusSemiring()
    products = s.multiply(np.array([1.0, 2.0]), np.array([3.0, 1.0]))
    assert products.tolist() == [4.0, 3.0]
    reduced = s.reduce(np.array([5.0, 2.0, 7.0]), np.array([0]))
    assert reduced.tolist() == [2.0]


def test_max_semiring():
    s = MaxSemiring()
    reduced = s.reduce(np.array([1.0, 9.0, 4.0]), np.array([0, 2]))
    assert reduced.tolist() == [9.0, 4.0]


def test_overlap_semiring_multiply():
    s = OverlapSemiring()
    out = s.multiply(np.array([10, 20], dtype=np.int32), np.array([30, 40], dtype=np.int32))
    assert out.dtype == OVERLAP_DTYPE
    assert out["count"].tolist() == [1, 1]
    assert out["first_pos_a"].tolist() == [10, 20]
    assert out["first_pos_b"].tolist() == [30, 40]
    assert out["second_pos_a"].tolist() == [-1, -1]


def test_overlap_semiring_reduce_counts_and_seeds():
    s = OverlapSemiring()
    products = s.multiply(
        np.array([1, 2, 3, 4], dtype=np.int32), np.array([5, 6, 7, 8], dtype=np.int32)
    )
    # two groups: [0, 1, 2] and [3]
    reduced = s.reduce(products, np.array([0, 3]))
    assert reduced["count"].tolist() == [3, 1]
    assert reduced["first_pos_a"].tolist() == [1, 4]
    assert reduced["second_pos_a"].tolist() == [2, -1]
    assert reduced["second_pos_b"].tolist() == [6, -1]


def test_overlap_semiring_single_member_group():
    s = OverlapSemiring()
    products = s.multiply(np.array([9], dtype=np.int32), np.array([11], dtype=np.int32))
    reduced = s.reduce(products, np.array([0]))
    assert reduced["count"][0] == 1
    assert reduced["second_pos_a"][0] == -1


def test_value_dtypes():
    assert ArithmeticSemiring().value_dtype == np.dtype(np.float64)
    assert CountSemiring().value_dtype == np.dtype(np.int64)
    assert OverlapSemiring().value_dtype == OVERLAP_DTYPE
