"""Tests for repro.sparse.semiring."""

import numpy as np
import pytest

from repro.sparse.semiring import (
    ArithmeticSemiring,
    CountSemiring,
    MaxSemiring,
    MinPlusSemiring,
    OverlapSemiring,
    OVERLAP_DTYPE,
    Semiring,
)


def test_abstract_semiring_raises():
    s = Semiring()
    with pytest.raises(NotImplementedError):
        s.multiply(np.array([1.0]), np.array([1.0]))
    with pytest.raises(NotImplementedError):
        s.reduce(np.array([1.0]), np.array([0]))


def test_arithmetic_semiring():
    s = ArithmeticSemiring()
    products = s.multiply(np.array([2.0, 3.0]), np.array([4.0, 5.0]))
    assert products.tolist() == [8.0, 15.0]
    reduced = s.reduce(np.array([1.0, 2.0, 3.0]), np.array([0, 2]))
    assert reduced.tolist() == [3.0, 3.0]
    assert s.scalar_add(2.0, 5.0) == 7.0


def test_count_semiring():
    s = CountSemiring()
    products = s.multiply(np.array([7, 8, 9]), np.array([1, 1, 1]))
    assert products.tolist() == [1, 1, 1]
    reduced = s.reduce(np.ones(4, dtype=np.int64), np.array([0, 1]))
    assert reduced.tolist() == [1, 3]


def test_minplus_semiring():
    s = MinPlusSemiring()
    products = s.multiply(np.array([1.0, 2.0]), np.array([3.0, 1.0]))
    assert products.tolist() == [4.0, 3.0]
    reduced = s.reduce(np.array([5.0, 2.0, 7.0]), np.array([0]))
    assert reduced.tolist() == [2.0]


def test_max_semiring():
    s = MaxSemiring()
    reduced = s.reduce(np.array([1.0, 9.0, 4.0]), np.array([0, 2]))
    assert reduced.tolist() == [9.0, 4.0]


def test_overlap_semiring_multiply():
    s = OverlapSemiring()
    out = s.multiply(np.array([10, 20], dtype=np.int32), np.array([30, 40], dtype=np.int32))
    assert out.dtype == OVERLAP_DTYPE
    assert out["count"].tolist() == [1, 1]
    assert out["first_pos_a"].tolist() == [10, 20]
    assert out["first_pos_b"].tolist() == [30, 40]
    assert out["second_pos_a"].tolist() == [-1, -1]


def test_overlap_semiring_reduce_counts_and_seeds():
    s = OverlapSemiring()
    products = s.multiply(
        np.array([1, 2, 3, 4], dtype=np.int32), np.array([5, 6, 7, 8], dtype=np.int32)
    )
    # two groups: [0, 1, 2] and [3]
    reduced = s.reduce(products, np.array([0, 3]))
    assert reduced["count"].tolist() == [3, 1]
    assert reduced["first_pos_a"].tolist() == [1, 4]
    assert reduced["second_pos_a"].tolist() == [2, -1]
    assert reduced["second_pos_b"].tolist() == [6, -1]


def test_overlap_semiring_single_member_group():
    s = OverlapSemiring()
    products = s.multiply(np.array([9], dtype=np.int32), np.array([11], dtype=np.int32))
    reduced = s.reduce(products, np.array([0]))
    assert reduced["count"][0] == 1
    assert reduced["second_pos_a"][0] == -1


def test_value_dtypes():
    assert ArithmeticSemiring().value_dtype == np.dtype(np.float64)
    assert CountSemiring().value_dtype == np.dtype(np.int64)
    assert OverlapSemiring().value_dtype == OVERLAP_DTYPE
