"""Tests for the baseline search tools and their comparison properties."""

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceSearch
from repro.baselines.common import BaselineStats, candidate_recall
from repro.baselines.diamond_like import DiamondLikeSearch
from repro.baselines.mmseqs_like import MmseqsLikeSearch
from repro.core.similarity_graph import SimilarityGraph
from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset


@pytest.fixture(scope="module")
def dataset():
    # 48 sequences keep every family-recall assertion comfortably satisfied
    # while roughly halving the quadratic brute-force ground-truth cost
    config = SyntheticDatasetConfig(
        n_sequences=48, family_fraction=0.7, mean_family_size=4.0, mutation_rate=0.08, seed=42
    )
    return synthetic_dataset(config=config)


@pytest.fixture(scope="module")
def truth(dataset):
    return BruteForceSearch(batch_size=256).run(dataset)


def test_brute_force_alignment_count(dataset, truth):
    n = len(dataset)
    assert truth.stats.alignments == n * (n - 1) // 2
    assert truth.stats.candidates == truth.stats.alignments
    assert truth.similarity_graph.num_edges > 0
    assert truth.stats.modeled_seconds > 0
    assert truth.stats.alignments_per_second > 0


def test_brute_force_trivial_input():
    tiny = synthetic_dataset(n_sequences=1, seed=0)
    result = BruteForceSearch().run(tiny)
    assert result.similarity_graph.num_edges == 0


def test_mmseqs_like_finds_family_pairs(dataset, truth):
    result = MmseqsLikeSearch(kmer_length=5, common_kmer_threshold=1, nodes=4).run(dataset)
    assert result.similarity_graph.num_edges > 0
    assert candidate_recall(result.similarity_graph, truth.similarity_graph) > 0.8
    # seeded search cannot invent pairs the exhaustive search rejects
    assert not (
        result.similarity_graph.edge_key_set() - truth.similarity_graph.edge_key_set()
    )


def test_mmseqs_like_replicates_index(dataset):
    result = MmseqsLikeSearch(kmer_length=5, nodes=4).run(dataset)
    # the replicated index is charged per node regardless of node count —
    # the §IV memory-scaling criticism
    more_nodes = MmseqsLikeSearch(kmer_length=5, nodes=16).run(dataset)
    assert result.stats.replicated_index_bytes_per_node > 0
    assert (
        more_nodes.stats.replicated_index_bytes_per_node
        == result.stats.replicated_index_bytes_per_node
    )


@pytest.mark.slow
def test_mmseqs_like_modes_equivalent_results(dataset):
    a = MmseqsLikeSearch(kmer_length=5, common_kmer_threshold=1, mode="split_reference").run(dataset)
    b = MmseqsLikeSearch(kmer_length=5, common_kmer_threshold=1, mode="split_query").run(dataset)
    assert a.similarity_graph == b.similarity_graph


def test_mmseqs_like_validation():
    with pytest.raises(ValueError):
        MmseqsLikeSearch(mode="bogus")
    with pytest.raises(ValueError):
        MmseqsLikeSearch(nodes=0)


def test_diamond_like_finds_family_pairs(dataset, truth):
    result = DiamondLikeSearch(kmer_length=5, common_kmer_threshold=1).run(dataset)
    assert result.similarity_graph.num_edges > 0
    assert candidate_recall(result.similarity_graph, truth.similarity_graph) > 0.7
    assert result.stats.intermediate_io_bytes > 0
    assert result.stats.extras["work_packages"] == 4.0


@pytest.mark.slow
def test_diamond_like_io_grows_with_chunking(dataset):
    few = DiamondLikeSearch(kmer_length=5, common_kmer_threshold=1,
                            query_chunks=1, reference_chunks=1).run(dataset)
    many = DiamondLikeSearch(kmer_length=5, common_kmer_threshold=1,
                             query_chunks=4, reference_chunks=4).run(dataset)
    assert many.stats.extras["work_packages"] == 16.0
    # more packages stage at least as many intermediate bytes
    assert many.stats.intermediate_io_bytes >= few.stats.intermediate_io_bytes * 0.9


@pytest.mark.slow
def test_diamond_like_results_depend_on_chunking(dataset):
    """DIAMOND's documented behaviour: block size can change the results.

    With chunk-local frequent-seed masking, different chunkings may mask
    different seeds; PASTIS (see test_pipeline) is blocking-invariant instead.
    The candidate sets are allowed to differ — this test just documents that
    both configurations run and produce canonical graphs.
    """
    a = DiamondLikeSearch(kmer_length=5, common_kmer_threshold=1, max_seed_fraction=0.2,
                          query_chunks=1, reference_chunks=1).run(dataset)
    b = DiamondLikeSearch(kmer_length=5, common_kmer_threshold=1, max_seed_fraction=0.2,
                          query_chunks=3, reference_chunks=3).run(dataset)
    assert a.stats.candidates > 0
    assert b.stats.candidates > 0


def test_diamond_like_validation():
    with pytest.raises(ValueError):
        DiamondLikeSearch(query_chunks=0)
    with pytest.raises(ValueError):
        DiamondLikeSearch(max_seed_fraction=0.0)


def test_candidate_recall_edge_cases():
    empty = SimilarityGraph.empty(5)
    assert candidate_recall(empty, empty) == 1.0
    stats = BaselineStats(alignments=10, modeled_seconds=0.0)
    assert stats.alignments_per_second == 0.0
