"""Tests for the simulated MPI runtime: ledger, grid, collectives, executor, IO."""

import numpy as np
import pytest

from repro.hardware.cluster import summit_subset
from repro.mpi.collectives import CollectiveEngine, payload_nbytes
from repro.mpi.communicator import SimCommunicator
from repro.mpi.costmodel import (
    CostLedger,
    OverlapWindow,
    TimeBreakdown,
    charge_overlap_slot,
)
from repro.mpi.executor import SpmdExecutor
from repro.mpi.io import ParallelIoModel
from repro.mpi.process_grid import ProcessGrid, is_perfect_square
from repro.sparse.coo import CooMatrix


# ---------------------------------------------------------------- cost ledger
def test_ledger_charge_and_query():
    ledger = CostLedger(4)
    ledger.charge(0, "align", 2.0)
    ledger.charge(1, "align", 4.0)
    ledger.charge_all("io", 1.0)
    assert ledger.component_time("align") == 4.0
    assert ledger.component_time("io") == 1.0
    assert ledger.total_time() == 5.0
    assert ledger.per_rank("align").tolist() == [2.0, 4.0, 0.0, 0.0]


def test_ledger_percentage_and_exclude():
    ledger = CostLedger(2)
    ledger.charge_all("align", 8.0)
    ledger.charge_all("io", 2.0)
    assert ledger.percentage("io") == pytest.approx(20.0)
    assert ledger.total_time(exclude=("io",)) == 8.0


def test_ledger_counters():
    ledger = CostLedger(3)
    ledger.count(0, "alignments", 10)
    ledger.count(2, "alignments", 5)
    ledger.count_all("flops", 2.0)
    assert ledger.counter_total("alignments") == 15
    assert ledger.counter_per_rank("flops").tolist() == [2.0, 2.0, 2.0]


def test_ledger_validation():
    ledger = CostLedger(2)
    with pytest.raises(IndexError):
        ledger.charge(5, "x", 1.0)
    with pytest.raises(ValueError):
        ledger.charge(0, "x", -1.0)
    with pytest.raises(ValueError):
        CostLedger(0)


def test_ledger_merge():
    a = CostLedger(2)
    b = CostLedger(2)
    a.charge(0, "align", 1.0)
    b.charge(0, "align", 2.0)
    b.charge(1, "io", 3.0)
    merged = a.merge(b)
    assert merged.per_rank("align").tolist() == [3.0, 0.0]
    assert merged.component_time("io") == 3.0
    with pytest.raises(ValueError):
        a.merge(CostLedger(3))


def test_time_breakdown_imbalance():
    tb = TimeBreakdown.from_values([1.0, 2.0, 3.0])
    assert tb.minimum == 1.0
    assert tb.maximum == 3.0
    assert tb.imbalance_percent == pytest.approx(50.0)
    assert TimeBreakdown.from_values([]).average == 0.0


# ---------------------------------------------------------------- overlap window
def _random_stage_seconds(rng, blocks, nranks):
    return [rng.uniform(0.1, 3.0, nranks) for _ in range(blocks)]


def test_overlap_window_depth1_matches_charge_overlap_slot():
    """At depth 1 the window reproduces the classic slot algebra to the bit."""
    rng = np.random.default_rng(7)
    nranks, blocks = 4, 6
    fg = _random_stage_seconds(rng, blocks, nranks)
    bg = _random_stage_seconds(rng, blocks, nranks)

    slot_ledger = CostLedger(nranks)
    slot_clock = np.zeros(nranks)
    slot_clock += bg[0]
    for b in range(blocks):
        if b + 1 < blocks:
            charge_overlap_slot(slot_ledger, slot_clock, fg[b], bg[b + 1], "hidden")
        else:
            slot_clock += fg[b]

    win_ledger = CostLedger(nranks)
    win_clock = np.zeros(nranks)
    window = OverlapWindow(win_ledger, win_clock, "hidden")
    window.push(bg[0])
    window.barrier(1)
    for b in range(blocks):
        if b + 1 < blocks:
            window.push(bg[b + 1])
        window.foreground(fg[b], require_seq=b + 1 if b + 1 < blocks else None)
    window.finish()

    assert np.array_equal(slot_clock, win_clock)
    assert np.array_equal(slot_ledger.per_rank("hidden"), win_ledger.per_rank("hidden"))


@pytest.mark.parametrize("depth", [1, 2, 3, 5])
def test_overlap_window_identity_holds_for_every_depth(depth):
    """sum(foreground) + sum(background) - hidden == clock, per rank."""
    rng = np.random.default_rng(depth)
    nranks, blocks = 3, 8
    fg = _random_stage_seconds(rng, blocks, nranks)
    bg = _random_stage_seconds(rng, blocks, nranks)

    ledger = CostLedger(nranks)
    clock = np.zeros(nranks)
    window = OverlapWindow(ledger, clock, "hidden")
    window.run_schedule(fg, bg, depth=depth)

    total = np.sum(fg, axis=0) + np.sum(bg, axis=0)
    np.testing.assert_allclose(total - ledger.per_rank("hidden"), clock, rtol=1e-12)
    assert window.backlog_stages == 0


def test_overlap_window_run_schedule_matches_manual_driving():
    """run_schedule is exactly the documented prologue/require/epilogue loop."""
    rng = np.random.default_rng(17)
    nranks, blocks, depth = 4, 7, 3
    fg = _random_stage_seconds(rng, blocks, nranks)
    bg = _random_stage_seconds(rng, blocks, nranks)

    manual_ledger = CostLedger(nranks)
    manual_clock = np.zeros(nranks)
    manual = OverlapWindow(manual_ledger, manual_clock, "hidden")
    manual.push(bg[0])
    manual.barrier(1)
    pushed = 1
    for b in range(blocks):
        while pushed <= min(b + depth, blocks - 1):
            manual.push(bg[pushed])
            pushed += 1
        manual.foreground(fg[b], require_seq=b + 1 if b + 1 < blocks else None)
    manual.finish()

    ledger = CostLedger(nranks)
    clock = np.zeros(nranks)
    OverlapWindow(ledger, clock, "hidden").run_schedule(fg, bg, depth=depth)
    assert np.array_equal(clock, manual_clock)
    assert np.array_equal(ledger.per_rank("hidden"), manual_ledger.per_rank("hidden"))


def test_overlap_window_run_schedule_validation():
    window = OverlapWindow(CostLedger(2), np.zeros(2), "hidden")
    with pytest.raises(ValueError, match="one background stage"):
        window.run_schedule([np.ones(2)], [])
    with pytest.raises(ValueError, match="depth"):
        window.run_schedule([np.ones(2)], [np.ones(2)], depth=0)
    window.run_schedule([], [], depth=1)  # empty schedule is a no-op
    window.push(np.ones(2))
    with pytest.raises(ValueError, match="fresh"):
        window.run_schedule([np.ones(2)], [np.ones(2)])


def test_overlap_window_deeper_speculation_hides_no_less():
    """Hidden seconds are monotone non-decreasing in the speculative depth."""
    rng = np.random.default_rng(42)
    nranks, blocks = 4, 10
    fg = _random_stage_seconds(rng, blocks, nranks)
    bg = [s * 0.4 for s in _random_stage_seconds(rng, blocks, nranks)]

    def hidden_at(depth):
        ledger = CostLedger(nranks)
        OverlapWindow(ledger, np.zeros(nranks), "hidden").run_schedule(
            fg, bg, depth=depth
        )
        return float(ledger.per_rank("hidden").sum())

    values = [hidden_at(depth) for depth in (1, 2, 4, 8)]
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:])), values


def test_overlap_window_speculative_stage_does_not_block_slot():
    """A drained speculative stage never re-enters a later slot's due work."""
    ledger = CostLedger(1)
    clock = np.zeros(1)
    window = OverlapWindow(ledger, clock, "hidden")
    # two tiny background stages both drain entirely behind one long
    # foreground; the second slot then has nothing due and costs only its
    # own foreground
    window.push(np.array([1.0]))
    window.push(np.array([1.0]))
    window.foreground(np.array([5.0]), require_seq=0)
    assert window.backlog_stages == 0
    window.foreground(np.array([2.0]), require_seq=1)
    assert clock[0] == 7.0
    assert ledger.per_rank("hidden")[0] == 2.0


def test_overlap_window_barrier_runs_remaining_alone():
    ledger = CostLedger(2)
    clock = np.zeros(2)
    window = OverlapWindow(ledger, clock, "hidden")
    window.push(np.array([2.0, 1.0]))
    window.barrier(1)
    assert clock.tolist() == [2.0, 1.0]
    assert ledger.per_rank("hidden").tolist() == [0.0, 0.0]
    window.push(np.array([3.0, 3.0]))
    window.finish()
    assert clock.tolist() == [5.0, 4.0]


# ---------------------------------------------------------------- process grid
def test_is_perfect_square():
    assert is_perfect_square(1)
    assert is_perfect_square(3364)
    assert not is_perfect_square(2)
    assert not is_perfect_square(0)


def test_grid_coords_roundtrip():
    grid = ProcessGrid.from_nprocs(9)
    assert grid.grid_dim == 3
    for rank in range(9):
        row, col = grid.coords(rank)
        assert grid.rank_of(row, col) == rank


def test_grid_rejects_non_square():
    with pytest.raises(ValueError):
        ProcessGrid.from_nprocs(6)


def test_grid_row_and_col_groups():
    grid = ProcessGrid(3)
    assert grid.row_group(1) == [3, 4, 5]
    assert grid.col_group(2) == [2, 5, 8]


def test_grid_block_bounds_cover_dimension():
    grid = ProcessGrid(4)
    bounds = [grid.block_bounds(10, i) for i in range(4)]
    assert bounds[0][0] == 0
    assert bounds[-1][1] == 10
    sizes = [hi - lo for lo, hi in bounds]
    assert sum(sizes) == 10
    assert max(sizes) - min(sizes) <= 1


def test_grid_owner_and_local_shape():
    grid = ProcessGrid(2)
    owner = grid.owner_of(10, 10, 7, 2)
    assert owner == grid.rank_of(1, 0)
    shape = grid.local_shape(10, 10, 0)
    assert shape == (5, 5)


# ---------------------------------------------------------------- collectives
@pytest.fixture()
def engine():
    ledger = CostLedger(4)
    return CollectiveEngine(network=summit_subset(4).network, ledger=ledger), ledger


def test_payload_nbytes_variants():
    assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
    assert payload_nbytes(None) == 0
    assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 40
    assert payload_nbytes(CooMatrix.empty((3, 3))) == 0
    assert payload_nbytes(3.14) == 8
    assert payload_nbytes("abcd") == 4


def test_bcast_delivers_and_charges(engine):
    eng, ledger = engine
    data = np.arange(100)
    out = eng.bcast(data, root=0, participants=[0, 1, 2])
    assert set(out.keys()) == {0, 1, 2}
    assert out[2] is data
    assert ledger.per_rank("comm")[0] > 0
    assert ledger.per_rank("comm")[3] == 0
    with pytest.raises(ValueError):
        eng.bcast(data, root=3, participants=[0, 1])


def test_allgather(engine):
    eng, ledger = engine
    out = eng.allgather({0: "a", 1: "b", 2: "c", 3: "d"})
    assert out[2] == ["a", "b", "c", "d"]
    assert ledger.component_time("comm") > 0


def test_alltoallv(engine):
    eng, _ = engine
    send = {src: {dst: (src, dst) for dst in range(4) if dst != src} for src in range(4)}
    recv = eng.alltoallv(send)
    assert recv[3][1] == (1, 3)
    assert 3 not in recv[3]


def test_reduce_and_allreduce(engine):
    eng, _ = engine
    total = eng.reduce({r: r + 1 for r in range(4)}, op=lambda a, b: a + b, root=0)
    assert total == 10
    everywhere = eng.allreduce({r: r for r in range(4)}, op=max)
    assert everywhere[2] == 3


def test_point_to_point_and_barrier(engine):
    eng, ledger = engine
    eng.point_to_point(np.zeros(1000), src=0, dst=3, category="cwait")
    assert ledger.per_rank("cwait")[0] > 0
    assert ledger.per_rank("cwait")[3] > 0
    eng.barrier([0, 1, 2, 3])
    assert ledger.component_time("comm") > 0


# ---------------------------------------------------------------- communicator / executor / io
def test_communicator_grid_and_charges():
    comm = SimCommunicator(4)
    assert comm.size == 4
    assert comm.require_grid().grid_dim == 2
    comm.charge_compute(1, "align", 2.5)
    assert comm.component_times()["align"] == 2.5
    seconds = comm.charge_io(10**6)
    assert seconds > 0
    assert comm.total_time() > 2.5


def test_communicator_non_square_world():
    comm = SimCommunicator(6)
    assert comm.grid is None
    with pytest.raises(ValueError):
        comm.require_grid()


def test_communicator_invalid_size():
    with pytest.raises(ValueError):
        SimCommunicator(0)


def test_spmd_executor_serial_and_threaded():
    ledger = CostLedger(4)
    executor = SpmdExecutor(ledger=ledger, use_threads=False)
    results = executor.run(4, lambda rank: rank * rank, category="work")
    assert results == [0, 1, 4, 9]
    assert np.all(ledger.per_rank("work") >= 0)

    ledger2 = CostLedger(4)
    threaded = SpmdExecutor(ledger=ledger2, use_threads=True)
    assert threaded.run(4, lambda rank: rank + 1, category="work") == [1, 2, 3, 4]


def test_spmd_executor_charged_variant():
    ledger = CostLedger(2)
    executor = SpmdExecutor(ledger=ledger)
    results = executor.run_charged(2, lambda rank: (rank, 0.5 + rank), category="align")
    assert results == [0, 1]
    assert ledger.per_rank("align").tolist() == [0.5, 1.5]


def test_parallel_io_model():
    comm = SimCommunicator(4)
    io = ParallelIoModel(cluster=comm.cluster, ledger=comm.ledger)
    read_s = io.collective_read(10**9)
    write_s = io.collective_write(2 * 10**9)
    assert write_s > read_s > 0
    assert comm.ledger.component_time("io") == pytest.approx(read_s + write_s)
    assert ParallelIoModel.fasta_bytes(1000, 10) > 1000
    assert ParallelIoModel.triples_bytes(100) == 4000
