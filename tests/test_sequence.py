"""Tests for repro.sequences.sequence (SequenceSet)."""

import numpy as np
import pytest

from repro.sequences.alphabet import MURPHY10, PROTEIN
from repro.sequences.sequence import Sequence, SequenceSet


@pytest.fixture()
def simple_set() -> SequenceSet:
    return SequenceSet.from_strings(
        ["ACDEF", "GHIKLMN", "PQR"], names=["s0", "s1", "s2"]
    )


def test_from_strings_lengths(simple_set):
    assert len(simple_set) == 3
    assert simple_set.lengths.tolist() == [5, 7, 3]
    assert simple_set.total_residues == 15


def test_residue_roundtrip(simple_set):
    assert simple_set.residues(0) == "ACDEF"
    assert simple_set.residues(2) == "PQR"


def test_record_and_iteration(simple_set):
    records = list(simple_set)
    assert records[1] == Sequence(name="s1", residues="GHIKLMN")
    assert len(records[1]) == 7


def test_negative_index(simple_set):
    assert simple_set.record(-1).name == "s2"


def test_out_of_range_raises(simple_set):
    with pytest.raises(IndexError):
        simple_set.codes(3)


def test_default_names():
    s = SequenceSet.from_strings(["AA", "CC"])
    assert list(s.names) == ["seq0", "seq1"]


def test_names_length_mismatch_raises():
    with pytest.raises(ValueError):
        SequenceSet.from_strings(["AA"], names=["a", "b"])


def test_subset_preserves_order_and_content(simple_set):
    sub = simple_set.subset(np.array([2, 0]))
    assert len(sub) == 2
    assert sub.residues(0) == "PQR"
    assert sub.residues(1) == "ACDEF"
    assert list(sub.names) == ["s2", "s0"]


def test_getitem_slice_and_boolean(simple_set):
    assert len(simple_set[0:2]) == 2
    mask = np.array([True, False, True])
    assert len(simple_set[mask]) == 2
    assert isinstance(simple_set[1], Sequence)


def test_subset_out_of_range(simple_set):
    with pytest.raises(IndexError):
        simple_set.subset(np.array([5]))


def test_concatenate(simple_set):
    merged = SequenceSet.concatenate([simple_set, simple_set])
    assert len(merged) == 6
    assert merged.total_residues == 30
    assert merged.residues(3) == "ACDEF"


def test_concatenate_empty_raises():
    with pytest.raises(ValueError):
        SequenceSet.concatenate([])


def test_reencode_to_reduced_alphabet(simple_set):
    reduced = simple_set.reencode(MURPHY10)
    assert reduced.alphabet.name == "murphy10"
    assert len(reduced) == len(simple_set)
    assert np.array_equal(reduced.lengths, simple_set.lengths)
    assert int(reduced.data.max()) < MURPHY10.size


def test_length_statistics(simple_set):
    stats = simple_set.length_statistics()
    assert stats["count"] == 3
    assert stats["min"] == 3
    assert stats["max"] == 7
    assert stats["total"] == 15


def test_length_statistics_empty():
    empty = SequenceSet.from_strings([])
    assert empty.length_statistics()["count"] == 0


def test_memory_bytes_positive(simple_set):
    assert simple_set.memory_bytes() > 0


def test_offsets_validation():
    with pytest.raises(ValueError):
        SequenceSet(
            np.zeros(4, dtype=np.uint8), np.array([0, 2, 3]), ["a", "b"], PROTEIN
        )


def test_data_views_are_readonly(simple_set):
    with pytest.raises(ValueError):
        simple_set.data[0] = 3
    with pytest.raises(ValueError):
        simple_set.offsets[0] = 1
