"""Content-hashed stage cache: bit-identity, invalidation, resume.

The cache invariant under test: **a cache hit is bit-identical to
recomputation**.  A warm run (every block replayed from disk) must produce
the same records, edges, statistics and per-rank ledger state as the cold
run that populated the cache — across all three schedulers — because an
entry stores the block's outputs *and* the absolute post-discover ledger
vectors of the discover lane, which replay restores instead of re-deriving.

Also covered: every ingredient of the content-hash key invalidates
(parameters, input sequences, kernel/schema version), corrupt entries
degrade to misses, and ``run(resume=True)`` continues a killed run from its
last completed block with results identical to an uncached reference.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.engine import cache as cache_mod
from repro.core.engine.stages import BlockTask
from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.distsparse.blocked_summa import BlockedSpGemm
from repro.sequences.synthetic import synthetic_dataset

#: Per-rank ledger time categories that are deterministic on the modeled
#: clock and therefore must match bit-exactly between cold and warm runs.
LEDGER_CATEGORIES = ("align", "spgemm", "comm", "cwait", "sparse_other", "io")

#: Per-rank ledger counters — always deterministic, always compared.
LEDGER_COUNTERS = (
    "spgemm_flops",
    "bytes_sent",
    "bytes_received",
    "alignments",
    "alignment_cells",
)

#: SearchStats keys that legitimately differ between a cold and a warm run:
#: real wall time, the cache's own hit/miss counters, and (threaded only)
#: race-dependent concurrency peaks — the same classes test_engine.py's
#: TIMING_AND_MEMORY_KEYS excludes from scheduler comparisons.
NONDETERMINISTIC_STATS_KEYS = frozenset({"wall_seconds", "cache", "phase_seconds"})
CONCURRENCY_STATS_KEYS = frozenset({"peak_live_blocks", "peak_live_block_bytes"})
#: Process-scheduler-only extras: worker pids differ run to run, and a warm
#: run ships cache entries over the pipe instead of shm segments.
PROCESS_STATS_KEYS = frozenset(
    {"process_lanes", "shm_peak_block_bytes", "shm_total_bytes"}
)
#: Measured wall-time aggregates: identical between cold and warm runs of
#: the *same* cache (replay restores the stored seconds) but not between
#: independent executions — skipped when comparing against an uncached
#: reference or when part of the run was recomputed.
MEASURED_STATS_KEYS = frozenset({"measured_align_seconds", "measured_discover_seconds"})


def _params(tmp_path, **overrides):
    return PastisParams(
        kmer_length=5,
        nodes=4,
        num_blocks=4,
        common_kmer_threshold=1,
        align_batch_size=64,
        cache_dir=str(tmp_path / "cache"),
        **overrides,
    )


def assert_results_identical(cold, warm, *, skip_stats=frozenset(),
                             categories=LEDGER_CATEGORIES):
    """Assert two runs are bit-identical on everything deterministic."""
    # block records
    assert len(cold.block_records) == len(warm.block_records)
    for ra, rb in zip(cold.block_records, warm.block_records):
        assert (ra.block_row, ra.block_col, ra.kind) == (rb.block_row, rb.block_col, rb.kind)
        assert (ra.candidates, ra.aligned_pairs, ra.similar_pairs) == (
            rb.candidates, rb.aligned_pairs, rb.similar_pairs)
        assert ra.block_bytes == rb.block_bytes
        assert np.array_equal(ra.sparse_seconds_per_rank, rb.sparse_seconds_per_rank)
        assert np.array_equal(ra.align_seconds_per_rank, rb.align_seconds_per_rank)
        assert np.array_equal(ra.pairs_per_rank, rb.pairs_per_rank)
        assert np.array_equal(ra.cells_per_rank, rb.cells_per_rank)
    # similarity graph
    assert np.array_equal(cold.similarity_graph.edges, warm.similarity_graph.edges)
    # ledger: per-rank times and counters
    for category in categories:
        assert np.array_equal(
            cold.ledger.per_rank(category), warm.ledger.per_rank(category)
        ), f"ledger category {category!r} differs"
    for counter in LEDGER_COUNTERS:
        assert np.array_equal(
            cold.ledger.counter_per_rank(counter), warm.ledger.counter_per_rank(counter)
        ), f"ledger counter {counter!r} differs"
    # statistics
    skip = NONDETERMINISTIC_STATS_KEYS | skip_stats
    sc, sw = cold.stats.as_dict(), warm.stats.as_dict()
    assert set(sc) - skip == set(sw) - skip
    for key in set(sc) & set(sw):
        if key in skip:
            continue
        assert sc[key] == sw[key], f"stats key {key!r} differs: {sc[key]} != {sw[key]}"


# ---------------------------------------------------------------------------
# warm == cold bit-identity, per scheduler
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "overrides, skip_stats",
    [
        pytest.param({}, frozenset(), id="serial"),
        pytest.param({"pre_blocking": True}, frozenset(), id="overlapped"),
        pytest.param(
            {"pre_blocking": True, "use_threads": True, "preblock_depth": 2,
             "preblock_workers": 2},
            CONCURRENCY_STATS_KEYS,
            id="threaded-depth2",
        ),
        pytest.param(
            {"pre_blocking": True, "scheduler": "process", "preblock_depth": 2,
             "preblock_workers": 2},
            CONCURRENCY_STATS_KEYS | PROCESS_STATS_KEYS,
            id="process-depth2",
        ),
    ],
)
def test_warm_run_bit_identical_to_cold(tmp_path, tiny_seqs, overrides, skip_stats):
    params = _params(tmp_path, **overrides)
    cold = PastisPipeline(params).run(tiny_seqs)
    warm = PastisPipeline(params).run(tiny_seqs, resume=True)
    assert cold.stats.extras["cache"] == {"hits": 0, "misses": 4, "stores": 4}
    assert warm.stats.extras["cache"] == {"hits": 4, "misses": 0, "stores": 0}
    # the full-ledger contract includes the measured discover-lane category:
    # warm replay *restores* the cold run's absolute spgemm_measured vectors
    assert_results_identical(
        cold, warm,
        skip_stats=skip_stats,
        categories=LEDGER_CATEGORIES + ("spgemm_measured",),
    )


def test_warm_run_matches_uncached_reference(tmp_path, tiny_seqs):
    """Caching never changes results vs. a run with no cache at all."""
    params = _params(tmp_path)
    reference = PastisPipeline(params.replace(cache_dir=None)).run(tiny_seqs)
    PastisPipeline(params).run(tiny_seqs)
    warm = PastisPipeline(params).run(tiny_seqs, resume=True)
    # spgemm_measured / measured_* are real wall time — deterministic only
    # *through* the cache (restore), not between independent executions
    assert_results_identical(reference, warm, skip_stats=MEASURED_STATS_KEYS)


def test_measured_clock_stage_categories_replay(tmp_path, tiny_seqs):
    """Under clock="measured" the stage-graph categories still replay
    bit-identically; pre-block phases (k-mer build -> sparse_other) are
    re-measured wall time outside the per-block cache's scope."""
    params = _params(tmp_path, pre_blocking=True, clock="measured")
    cold = PastisPipeline(params).run(tiny_seqs)
    warm = PastisPipeline(params).run(tiny_seqs, resume=True)
    for category in ("align", "spgemm", "comm", "spgemm_measured", "overlap_hidden"):
        assert np.array_equal(
            cold.ledger.per_rank(category), warm.ledger.per_rank(category)
        ), category
    for counter in LEDGER_COUNTERS:
        assert np.array_equal(
            cold.ledger.counter_per_rank(counter), warm.ledger.counter_per_rank(counter)
        )
    assert np.array_equal(cold.similarity_graph.edges, warm.similarity_graph.edges)


def test_entries_shared_across_schedulers(tmp_path, tiny_seqs):
    """Cache keys exclude scheduler knobs: a serial-written cache warms a
    threaded run, whose results equal a cold threaded reference."""
    params = _params(tmp_path)
    threaded = dict(pre_blocking=True, use_threads=True, preblock_depth=2,
                    preblock_workers=2)
    reference = PastisPipeline(
        params.replace(cache_dir=None, **threaded)
    ).run(tiny_seqs)
    PastisPipeline(params).run(tiny_seqs)  # serial cold run populates
    warm = PastisPipeline(params.replace(**threaded)).run(tiny_seqs, resume=True)
    assert warm.stats.extras["cache"] == {"hits": 4, "misses": 0, "stores": 0}
    assert_results_identical(
        reference, warm, skip_stats=CONCURRENCY_STATS_KEYS | MEASURED_STATS_KEYS
    )


def test_fully_warm_run_executes_zero_spgemm_stages(tmp_path, tiny_seqs, monkeypatch):
    """ISSUE acceptance: a fully-warm re-run performs no SpGEMM at all."""
    params = _params(tmp_path)
    PastisPipeline(params).run(tiny_seqs)

    def poisoned(self, block_row, block_col):
        raise AssertionError("SpGEMM executed on a fully warm run")

    monkeypatch.setattr(BlockedSpGemm, "compute_block", poisoned)
    warm = PastisPipeline(params).run(tiny_seqs, resume=True)
    assert warm.stats.extras["cache"] == {"hits": 4, "misses": 0, "stores": 0}


# ---------------------------------------------------------------------------
# key ingredients invalidate
# ---------------------------------------------------------------------------


def test_param_change_invalidates(tmp_path, tiny_seqs):
    params = _params(tmp_path)
    PastisPipeline(params).run(tiny_seqs)
    changed = PastisPipeline(params.replace(ani_threshold=0.35)).run(tiny_seqs)
    assert changed.stats.extras["cache"] == {"hits": 0, "misses": 4, "stores": 4}


def test_scheduler_knobs_do_not_invalidate(tmp_path, tiny_seqs):
    params = _params(tmp_path)
    PastisPipeline(params).run(tiny_seqs)
    warm = PastisPipeline(params.replace(pre_blocking=True)).run(tiny_seqs, resume=True)
    assert warm.stats.extras["cache"]["hits"] == 4


def test_input_change_invalidates(tmp_path, tiny_seqs):
    params = _params(tmp_path)
    PastisPipeline(params).run(tiny_seqs)
    other = synthetic_dataset(n_sequences=30, seed=8)
    rerun = PastisPipeline(params).run(other)
    assert rerun.stats.extras["cache"]["hits"] == 0


def test_version_tag_bump_invalidates(tmp_path, tiny_seqs, monkeypatch):
    params = _params(tmp_path)
    PastisPipeline(params).run(tiny_seqs)
    monkeypatch.setattr(cache_mod, "CACHE_VERSION", "999-test")
    rerun = PastisPipeline(params).run(tiny_seqs)
    assert rerun.stats.extras["cache"]["hits"] == 0


def test_cache_invalidate_forces_recompute(tmp_path, tiny_seqs):
    params = _params(tmp_path)
    PastisPipeline(params).run(tiny_seqs)
    forced = PastisPipeline(params.replace(cache_invalidate=True)).run(tiny_seqs)
    # reads disabled entirely (misses aren't counted), entries rewritten
    assert forced.stats.extras["cache"] == {"hits": 0, "misses": 0, "stores": 4}
    warm = PastisPipeline(params).run(tiny_seqs, resume=True)
    assert warm.stats.extras["cache"]["hits"] == 4


# ---------------------------------------------------------------------------
# robustness: corrupt entries, killed runs, parameter validation
# ---------------------------------------------------------------------------


def test_corrupt_entry_is_a_miss_not_a_crash(tmp_path, tiny_seqs):
    params = _params(tmp_path)
    cold = PastisPipeline(params).run(tiny_seqs)
    entries = sorted((tmp_path / "cache").glob("run-*/block-*.npz"))
    assert len(entries) == 4
    entries[1].write_bytes(entries[1].read_bytes()[:50])  # truncate mid-header
    entries[2].write_bytes(b"not an npz archive")
    warm = PastisPipeline(params).run(tiny_seqs, resume=True)
    assert warm.stats.extras["cache"] == {"hits": 2, "misses": 2, "stores": 2}
    # the two recomputed blocks re-measure their wall time
    assert_results_identical(cold, warm, skip_stats=MEASURED_STATS_KEYS)


def test_killed_run_resumes_from_last_completed_block(tmp_path, tiny_seqs, monkeypatch):
    """ISSUE acceptance: kill a run mid-way, resume, get identical results."""
    params = _params(tmp_path)
    reference = PastisPipeline(params.replace(cache_dir=None)).run(tiny_seqs)

    calls = {"n": 0}
    original_align = BlockTask.align

    def dying_align(self, ctx):
        calls["n"] += 1
        if calls["n"] == 3:
            raise RuntimeError("simulated kill")
        return original_align(self, ctx)

    monkeypatch.setattr(BlockTask, "align", dying_align)
    with pytest.raises(RuntimeError, match="simulated kill"):
        PastisPipeline(params).run(tiny_seqs)
    monkeypatch.setattr(BlockTask, "align", original_align)

    resumed = PastisPipeline(params).run(tiny_seqs, resume=True)
    counters = resumed.stats.extras["cache"]
    # the two blocks completed before the kill replay; the rest recompute
    assert counters["hits"] == 2 and counters["misses"] == 2, counters
    assert_results_identical(reference, resumed, skip_stats=MEASURED_STATS_KEYS)


def test_resume_requires_cache_dir(tiny_seqs):
    params = PastisParams(kmer_length=5, nodes=4, num_blocks=4,
                          common_kmer_threshold=1, align_batch_size=64)
    with pytest.raises(ValueError, match="cache_dir"):
        PastisPipeline(params).run(tiny_seqs, resume=True)


def test_resume_conflicts_with_invalidate(tmp_path, tiny_seqs):
    params = _params(tmp_path, cache_invalidate=True)
    with pytest.raises(ValueError, match="cache_invalidate"):
        PastisPipeline(params).run(tiny_seqs, resume=True)


def test_invalidate_requires_cache_dir():
    with pytest.raises(ValueError, match="cache_invalidate"):
        PastisParams(cache_invalidate=True)


def test_empty_cache_dir_rejected():
    with pytest.raises(ValueError, match="cache_dir"):
        PastisParams(cache_dir="")


# ---------------------------------------------------------------------------
# cache internals: keys and serialization round-trip
# ---------------------------------------------------------------------------


def test_run_key_stable_and_sensitive(tiny_seqs):
    base = PastisParams(kmer_length=5, nodes=4, num_blocks=4)
    key = cache_mod.run_cache_key(base, tiny_seqs)
    assert key == cache_mod.run_cache_key(base, tiny_seqs)  # deterministic
    # scheduler/cache knobs are excluded from the key ...
    assert key == cache_mod.run_cache_key(
        base.replace(pre_blocking=True, preblock_depth=3, cache_dir="/x"), tiny_seqs
    )
    # ... search-defining parameters and the input content are not
    assert key != cache_mod.run_cache_key(base.replace(kmer_length=6), tiny_seqs)
    other = synthetic_dataset(n_sequences=30, seed=8)
    assert key != cache_mod.run_cache_key(base, other)


def test_cached_block_rejects_malformed_payload():
    with pytest.raises(Exception):
        cache_mod.CachedBlock.from_bytes(b"garbage", nranks=4)


# ---------------------------------------------------------------------------
# maintenance CLI: python -m repro.core.engine.cache ls|gc
# ---------------------------------------------------------------------------


def _age_entry(path, days: float) -> None:
    """Backdate an entry's mtime by ``days`` (gc decides on mtime)."""
    import os
    import time

    stamp = time.time() - days * 86400.0
    os.utime(path, (stamp, stamp))


def test_list_cache_inventories_run_directories(tmp_path, tiny_seqs):
    assert cache_mod.list_cache(tmp_path / "missing") == []
    params = _params(tmp_path)
    PastisPipeline(params).run(tiny_seqs)
    rows = cache_mod.list_cache(tmp_path / "cache")
    assert len(rows) == 1
    (row,) = rows
    assert row["run"].startswith("run-")
    assert row["entries"] == 4
    entries = sorted((tmp_path / "cache").glob("run-*/block-*.npz"))
    assert row["bytes"] == sum(e.stat().st_size for e in entries)
    assert row["oldest_age_seconds"] >= row["newest_age_seconds"] >= 0.0


def test_gc_cache_by_age_then_warm_run_recomputes_collected(tmp_path, tiny_seqs):
    params = _params(tmp_path)
    PastisPipeline(params).run(tiny_seqs)
    entries = sorted((tmp_path / "cache").glob("run-*/block-*.npz"))
    for entry in entries[:2]:
        _age_entry(entry, days=30)

    dry = cache_mod.gc_cache(tmp_path / "cache", max_age_days=7, dry_run=True)
    assert dry == {
        "removed_entries": 2,
        "removed_bytes": sum(e.stat().st_size for e in entries[:2]),
        "kept_entries": 2,
        "kept_bytes": sum(e.stat().st_size for e in entries[2:]),
        "dry_run": True,
    }
    assert all(e.exists() for e in entries)  # dry run removed nothing

    summary = cache_mod.gc_cache(tmp_path / "cache", max_age_days=7)
    assert summary["removed_entries"] == 2 and not summary["dry_run"]
    assert [e.exists() for e in entries] == [False, False, True, True]
    # a warm run replays the survivors and recomputes exactly the collected
    warm = PastisPipeline(params).run(tiny_seqs, resume=True)
    assert warm.stats.extras["cache"] == {"hits": 2, "misses": 2, "stores": 2}


def test_gc_cache_byte_budget_removes_oldest_first(tmp_path, tiny_seqs):
    params = _params(tmp_path)
    PastisPipeline(params).run(tiny_seqs)
    entries = sorted((tmp_path / "cache").glob("run-*/block-*.npz"))
    for index, entry in enumerate(entries):
        _age_entry(entry, days=len(entries) - index)  # entries[0] oldest
    keep = sum(e.stat().st_size for e in entries[2:])
    summary = cache_mod.gc_cache(tmp_path / "cache", max_bytes=keep)
    assert summary["removed_entries"] == 2
    assert summary["kept_bytes"] == keep
    assert [e.exists() for e in entries] == [False, False, True, True]


def test_gc_cache_empties_and_removes_run_directory(tmp_path, tiny_seqs):
    params = _params(tmp_path)
    PastisPipeline(params).run(tiny_seqs)
    (run_dir,) = [p for p in (tmp_path / "cache").iterdir() if p.is_dir()]
    assert (run_dir / "manifest.json").exists()
    summary = cache_mod.gc_cache(tmp_path / "cache", max_bytes=0)
    assert summary["removed_entries"] == 4 and summary["kept_entries"] == 0
    assert not run_dir.exists()  # manifest went with the last entry


def test_cache_cli_main(tmp_path, tiny_seqs, capsys):
    params = _params(tmp_path)
    PastisPipeline(params).run(tiny_seqs)
    cache_dir = str(tmp_path / "cache")

    assert cache_mod.main(["ls", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "run-" in out and "total" in out

    # gc without a policy is an argparse error, not a silent full wipe
    with pytest.raises(SystemExit):
        cache_mod.main(["gc", cache_dir])
    capsys.readouterr()

    assert cache_mod.main(["gc", cache_dir, "--max-bytes", "0", "--dry-run"]) == 0
    assert "would remove 4 entries" in capsys.readouterr().out
    assert cache_mod.main(["gc", cache_dir, "--max-bytes", "0"]) == 0
    assert "removed 4 entries" in capsys.readouterr().out
    assert cache_mod.main(["ls", cache_dir]) == 0
    assert "no run directories" in capsys.readouterr().out


def test_cache_cli_module_invocation(tmp_path):
    """``python -m repro.core.engine.cache`` is wired as a console entry."""
    import os
    import subprocess
    import sys

    env = dict(os.environ)
    root = Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = str(root / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.core.engine.cache", "ls", str(tmp_path)],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0
    assert "no run directories" in proc.stdout


def test_report_hoists_cache_counters(tmp_path, tiny_seqs):
    from repro.io.report import run_report

    params = _params(tmp_path)
    PastisPipeline(params).run(tiny_seqs)
    warm = PastisPipeline(params).run(tiny_seqs, resume=True)
    report = run_report(warm.stats)
    assert report["cache_hits"] == 4
    assert report["cache_misses"] == 0
    table = warm.stats.as_table()
    assert "Stage cache" in table
