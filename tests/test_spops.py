"""Tests for repro.sparse.spops."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.coo import CooMatrix
from repro.sparse.semiring import CountSemiring
from repro.sparse.spops import (
    add_coo,
    filter_values,
    from_scipy,
    prune_by_parity,
    symmetrize_pattern,
    to_scipy_csr,
    transpose,
    tril,
    triu,
)


def dense_symmetric(n=8, seed=0):
    rng = np.random.default_rng(seed)
    rows, cols = np.triu_indices(n, k=1)
    keep = rng.random(rows.size) < 0.5
    rows, cols = rows[keep], cols[keep]
    all_rows = np.concatenate([rows, cols])
    all_cols = np.concatenate([cols, rows])
    return CooMatrix((n, n), all_rows, all_cols, np.ones(all_rows.size))


def test_triu_and_tril_partition_offdiagonal():
    m = dense_symmetric()
    upper = triu(m, k=1)
    lower = tril(m, k=-1)
    assert upper.nnz + lower.nnz == m.nnz
    assert np.all(upper.cols > upper.rows)
    assert np.all(lower.cols < lower.rows)


def test_triu_keeps_diagonal_with_k0():
    m = CooMatrix((3, 3), np.array([0, 1, 2]), np.array([0, 0, 2]), np.ones(3))
    assert triu(m, k=0).nnz == 2


def test_prune_by_parity_keeps_each_pair_once():
    m = dense_symmetric(n=12, seed=3)
    pruned = prune_by_parity(m)
    # each unordered pair must appear exactly once
    keys = set()
    for r, c in zip(pruned.rows, pruned.cols):
        key = (min(r, c), max(r, c))
        assert key not in keys
        keys.add(key)
    # and every original unordered pair must survive
    original = {(min(r, c), max(r, c)) for r, c in zip(m.rows, m.cols) if r != c}
    assert keys == original


def test_prune_by_parity_rule():
    # lower triangle (row > col): keep only same-parity indices
    m = CooMatrix((6, 6), np.array([3, 3, 2]), np.array([1, 2, 0]), np.ones(3))
    pruned = prune_by_parity(m)
    kept = set(zip(pruned.rows.tolist(), pruned.cols.tolist()))
    assert (3, 1) in kept      # both odd
    assert (2, 0) in kept      # both even
    assert (3, 2) not in kept  # mixed parity in lower triangle


def test_prune_by_parity_drops_diagonal_by_default():
    m = CooMatrix((4, 4), np.array([1, 2]), np.array([1, 3]), np.ones(2))
    assert prune_by_parity(m).nnz == 1
    assert prune_by_parity(m, keep_diagonal=True).nnz == 2


def test_prune_halves_uniform_matrix():
    m = dense_symmetric(n=40, seed=5)
    pruned = prune_by_parity(m)
    assert pruned.nnz == m.nnz // 2


def test_filter_values():
    m = CooMatrix((3, 3), np.array([0, 1, 2]), np.array([0, 1, 2]), np.array([1, 5, 9]))
    assert filter_values(m, lambda v: v >= 5).nnz == 2
    with pytest.raises(ValueError):
        filter_values(m, lambda v: np.array([True]))


def test_add_coo_numeric_sums_duplicates():
    a = CooMatrix((2, 2), np.array([0, 1]), np.array([0, 1]), np.array([1.0, 2.0]))
    b = CooMatrix((2, 2), np.array([0]), np.array([0]), np.array([10.0]))
    c = add_coo(a, b)
    dense = c.todense()
    assert dense[0, 0] == 11.0
    assert dense[1, 1] == 2.0


def test_add_coo_with_semiring():
    a = CooMatrix((2, 2), np.array([0]), np.array([1]), np.array([2], dtype=np.int64))
    b = CooMatrix((2, 2), np.array([0]), np.array([1]), np.array([3], dtype=np.int64))
    c = add_coo(a, b, CountSemiring())
    assert c.nnz == 1
    assert c.values[0] == 5


def test_add_coo_shape_mismatch():
    with pytest.raises(ValueError):
        add_coo(CooMatrix.empty((2, 2)), CooMatrix.empty((3, 3)))


def test_transpose_function():
    m = CooMatrix((2, 3), np.array([0]), np.array([2]), np.array([7.0]))
    t = transpose(m)
    assert t.shape == (3, 2)
    assert t.rows.tolist() == [2]


def test_scipy_roundtrip():
    mat = sp.random(10, 12, density=0.2, random_state=1)
    coo = from_scipy(mat)
    back = to_scipy_csr(coo)
    assert np.allclose(back.toarray(), mat.toarray())


def test_to_scipy_rejects_structured():
    from repro.sparse.semiring import OVERLAP_DTYPE

    m = CooMatrix((2, 2), np.array([0]), np.array([0]), np.zeros(1, dtype=OVERLAP_DTYPE))
    with pytest.raises(TypeError):
        to_scipy_csr(m)


def test_symmetrize_pattern():
    m = CooMatrix((4, 4), np.array([0, 1]), np.array([2, 3]), np.ones(2))
    s = symmetrize_pattern(m)
    pairs = set(zip(s.rows.tolist(), s.cols.tolist()))
    assert (2, 0) in pairs and (0, 2) in pairs
    assert s.nnz == 4
