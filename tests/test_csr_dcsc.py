"""Tests for repro.sparse.csr and repro.sparse.dcsc."""

import numpy as np
import pytest

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.dcsc import DcscMatrix


def sample_coo(rng=None, shape=(8, 2000), nnz=40):
    rng = rng or np.random.default_rng(0)
    rows = rng.integers(0, shape[0], nnz)
    cols = rng.integers(0, shape[1], nnz)
    vals = rng.random(nnz)
    return CooMatrix(shape, rows, cols, vals).deduplicate()


# ---------------------------------------------------------------------- CSR
def test_csr_roundtrip():
    coo = sample_coo()
    csr = CsrMatrix.from_coo(coo)
    assert csr.nnz == coo.nnz
    assert csr.to_coo() == coo.copy().sort_rowmajor()


def test_csr_row_access():
    coo = CooMatrix((3, 4), np.array([1, 1, 2]), np.array([0, 3, 2]), np.array([1.0, 2.0, 3.0]))
    csr = CsrMatrix.from_coo(coo)
    cols, vals = csr.row(1)
    assert cols.tolist() == [0, 3]
    assert vals.tolist() == [1.0, 2.0]
    cols0, _ = csr.row(0)
    assert cols0.size == 0
    with pytest.raises(IndexError):
        csr.row(5)


def test_csr_row_nnz_and_slice():
    coo = sample_coo()
    csr = CsrMatrix.from_coo(coo)
    assert csr.row_nnz().sum() == csr.nnz
    sl = csr.row_slice(2, 5)
    assert sl.shape[0] == 3
    assert sl.nnz == int(csr.row_nnz()[2:5].sum())


def test_csr_validation():
    with pytest.raises(ValueError):
        CsrMatrix((2, 2), np.array([0, 1]), np.array([0]), np.array([1.0]))
    with pytest.raises(ValueError):
        CsrMatrix((2, 2), np.array([0, 0, 2]), np.array([0]), np.array([1.0]))


def test_csr_memory_bytes():
    csr = CsrMatrix.from_coo(sample_coo())
    assert csr.memory_bytes() > 0


# ---------------------------------------------------------------------- DCSC
def test_dcsc_roundtrip():
    coo = sample_coo()
    dcsc = DcscMatrix.from_coo(coo)
    assert dcsc.nnz == coo.nnz
    assert dcsc.to_coo().sort_rowmajor() == coo.copy().sort_rowmajor()


def test_dcsc_nonempty_columns_only():
    coo = sample_coo()
    dcsc = DcscMatrix.from_coo(coo)
    assert dcsc.nzc == np.unique(coo.cols).size
    assert dcsc.nzc <= dcsc.nnz


def test_dcsc_column_access():
    coo = CooMatrix((5, 100), np.array([0, 3]), np.array([42, 42]), np.array([1.0, 2.0]))
    dcsc = DcscMatrix.from_coo(coo)
    rows, vals = dcsc.column(42)
    assert sorted(rows.tolist()) == [0, 3]
    empty_rows, _ = dcsc.column(7)
    assert empty_rows.size == 0


def test_dcsc_empty_matrix():
    dcsc = DcscMatrix.from_coo(CooMatrix.empty((5, 100)))
    assert dcsc.nnz == 0
    assert dcsc.nzc == 0
    assert dcsc.to_coo().nnz == 0


def test_dcsc_hypersparse_compression():
    # 8 rows x 2,000 columns with only 40 nonzeros: DCSC pointers should be
    # far smaller than a CSC column-pointer array
    dcsc = DcscMatrix.from_coo(sample_coo())
    assert dcsc.compression_ratio_vs_csc() > 10
    assert dcsc.memory_bytes() < (2000 + 1) * 8


def test_dcsc_validation():
    with pytest.raises(ValueError):
        DcscMatrix((2, 5), np.array([1, 0]), np.array([0, 1, 2]), np.array([0, 1]), np.array([1.0, 2.0]))
