"""Tests for repro.sparse.csr and repro.sparse.dcsc."""

import numpy as np
import pytest

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.dcsc import DcscMatrix


def sample_coo(rng=None, shape=(8, 2000), nnz=40):
    rng = rng or np.random.default_rng(0)
    rows = rng.integers(0, shape[0], nnz)
    cols = rng.integers(0, shape[1], nnz)
    vals = rng.random(nnz)
    return CooMatrix(shape, rows, cols, vals).deduplicate()


# ---------------------------------------------------------------------- CSR
def test_csr_roundtrip():
    coo = sample_coo()
    csr = CsrMatrix.from_coo(coo)
    assert csr.nnz == coo.nnz
    assert csr.to_coo() == coo.copy().sort_rowmajor()


def test_csr_row_access():
    coo = CooMatrix((3, 4), np.array([1, 1, 2]), np.array([0, 3, 2]), np.array([1.0, 2.0, 3.0]))
    csr = CsrMatrix.from_coo(coo)
    cols, vals = csr.row(1)
    assert cols.tolist() == [0, 3]
    assert vals.tolist() == [1.0, 2.0]
    cols0, _ = csr.row(0)
    assert cols0.size == 0
    with pytest.raises(IndexError):
        csr.row(5)


def test_csr_row_nnz_and_slice():
    coo = sample_coo()
    csr = CsrMatrix.from_coo(coo)
    assert csr.row_nnz().sum() == csr.nnz
    sl = csr.row_slice(2, 5)
    assert sl.shape[0] == 3
    assert sl.nnz == int(csr.row_nnz()[2:5].sum())


def test_csr_validation():
    with pytest.raises(ValueError):
        CsrMatrix((2, 2), np.array([0, 1]), np.array([0]), np.array([1.0]))
    with pytest.raises(ValueError):
        CsrMatrix((2, 2), np.array([0, 0, 2]), np.array([0]), np.array([1.0]))


def test_csr_memory_bytes():
    csr = CsrMatrix.from_coo(sample_coo())
    assert csr.memory_bytes() > 0


# ------------------------------------------------- CSR round-trip edge cases
# These paths back the Gustavson SpGEMM kernel, which walks CSR row ranges of
# arbitrary (including empty and boundary) extent.
def test_csr_empty_matrix_roundtrip():
    coo = CooMatrix.empty((6, 9), dtype=np.float64)
    csr = CsrMatrix.from_coo(coo)
    assert csr.nnz == 0
    assert csr.indptr.tolist() == [0] * 7
    back = csr.to_coo()
    assert back == coo
    assert back.dtype == np.float64


@pytest.mark.parametrize("shape", [(0, 7), (7, 0), (0, 0)])
def test_csr_zero_dimension_roundtrip(shape):
    csr = CsrMatrix.from_coo(CooMatrix.empty(shape))
    assert csr.shape == shape
    assert csr.nnz == 0
    assert csr.to_coo().shape == shape
    assert csr.row_nnz().size == shape[0]


def test_csr_single_row_slices():
    coo = CooMatrix((3, 4), np.array([0, 2, 2]), np.array([1, 0, 3]),
                    np.array([1.0, 2.0, 3.0]))
    csr = CsrMatrix.from_coo(coo)
    for i in range(3):
        sl = csr.row_slice(i, i + 1)
        assert sl.shape == (1, 4)
        cols, vals = csr.row(i)
        assert sl.indices.tolist() == cols.tolist()
        assert sl.values.tolist() == vals.tolist()
        assert sl.to_coo() == coo.submatrix((i, i + 1), (0, 4))


def test_csr_row_slice_boundaries():
    coo = sample_coo()
    csr = CsrMatrix.from_coo(coo)
    nrows = csr.shape[0]
    # full-range slice is the identity
    assert csr.row_slice(0, nrows).to_coo() == csr.to_coo()
    # out-of-range bounds are clamped
    clamped = csr.row_slice(-5, nrows + 10)
    assert clamped.shape[0] == nrows
    assert clamped.nnz == csr.nnz
    # empty slices at both boundaries
    assert csr.row_slice(0, 0).nnz == 0
    assert csr.row_slice(nrows, nrows).shape == (0, csr.shape[1])
    # slice ending exactly at the last row
    tail = csr.row_slice(nrows - 1, nrows)
    assert tail.shape == (1, csr.shape[1])
    assert tail.nnz == int(csr.row_nnz()[-1])


def test_csr_roundtrip_with_duplicate_coordinates():
    # duplicates are separate entries; CSR keeps them in stable row-major order
    coo = CooMatrix((2, 3), np.array([0, 0, 1]), np.array([1, 1, 2]),
                    np.array([1.0, 2.0, 3.0]))
    csr = CsrMatrix.from_coo(coo)
    assert csr.nnz == 3
    cols, vals = csr.row(0)
    assert cols.tolist() == [1, 1]
    assert vals.tolist() == [1.0, 2.0]
    assert csr.to_coo() == coo.copy().sort_rowmajor()


# ---------------------------------------------------------------------- DCSC
def test_dcsc_roundtrip():
    coo = sample_coo()
    dcsc = DcscMatrix.from_coo(coo)
    assert dcsc.nnz == coo.nnz
    assert dcsc.to_coo().sort_rowmajor() == coo.copy().sort_rowmajor()


def test_dcsc_nonempty_columns_only():
    coo = sample_coo()
    dcsc = DcscMatrix.from_coo(coo)
    assert dcsc.nzc == np.unique(coo.cols).size
    assert dcsc.nzc <= dcsc.nnz


def test_dcsc_column_access():
    coo = CooMatrix((5, 100), np.array([0, 3]), np.array([42, 42]), np.array([1.0, 2.0]))
    dcsc = DcscMatrix.from_coo(coo)
    rows, vals = dcsc.column(42)
    assert sorted(rows.tolist()) == [0, 3]
    empty_rows, _ = dcsc.column(7)
    assert empty_rows.size == 0


def test_dcsc_empty_matrix():
    dcsc = DcscMatrix.from_coo(CooMatrix.empty((5, 100)))
    assert dcsc.nnz == 0
    assert dcsc.nzc == 0
    assert dcsc.to_coo().nnz == 0


def test_dcsc_hypersparse_compression():
    # 8 rows x 2,000 columns with only 40 nonzeros: DCSC pointers should be
    # far smaller than a CSC column-pointer array
    dcsc = DcscMatrix.from_coo(sample_coo())
    assert dcsc.compression_ratio_vs_csc() > 10
    assert dcsc.memory_bytes() < (2000 + 1) * 8


@pytest.mark.parametrize("shape", [(0, 7), (7, 0), (0, 0)])
def test_dcsc_zero_dimension_roundtrip(shape):
    dcsc = DcscMatrix.from_coo(CooMatrix.empty(shape))
    assert dcsc.shape == shape
    assert dcsc.nnz == 0
    assert dcsc.nzc == 0
    assert dcsc.to_coo().shape == shape


def test_dcsc_single_nonempty_column_roundtrip():
    coo = CooMatrix((4, 1000), np.array([3]), np.array([999]), np.array([2.5]))
    dcsc = DcscMatrix.from_coo(coo)
    assert dcsc.nzc == 1
    assert dcsc.jc.tolist() == [999]
    rows, vals = dcsc.column(999)
    assert rows.tolist() == [3]
    assert vals.tolist() == [2.5]
    assert dcsc.to_coo().sort_rowmajor() == coo


def test_dcsc_validation():
    with pytest.raises(ValueError):
        DcscMatrix((2, 5), np.array([1, 0]), np.array([0, 1, 2]), np.array([0, 1]), np.array([1.0, 2.0]))
