"""Tests for the repro.graph clustering subsystem.

Covers the acceptance criteria of the subsystem: the union-find component
labelling matches the former SciPy path bit for bit, Markov clustering is
deterministic and bit-identical across every registered SpGEMM backend,
converges on seeded pipeline outputs, and recovers a planted family
partition that connected components provably over-merge.
"""

import numpy as np
import pytest

from repro.core.align_phase import EDGE_DTYPE
from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.core.similarity_graph import SimilarityGraph
from repro.graph import (
    ClusterParams,
    MarkovClustering,
    StochasticMatrix,
    UnionFind,
    cluster_similarity_graph,
    connected_components,
    evaluate_clustering,
    interpret_clusters,
    modularity,
    similarity_weights,
    size_histogram,
)
from repro.sequences.synthetic import synthetic_dataset
from repro.sparse.kernels import available_kernels

#: Backends exercised by the cross-backend bit-identity tests ("scipy"
#: participates exactly when it is registered, i.e. when scipy importable).
MCL_BACKENDS = [k for k in ("expand", "gustavson", "auto", "scipy") if k in available_kernels()]


def make_edges(pairs, ani=0.8, coverage=0.9, score=50):
    edges = np.zeros(len(pairs), dtype=EDGE_DTYPE)
    for idx, (i, j) in enumerate(pairs):
        edges[idx]["row"] = i
        edges[idx]["col"] = j
        edges[idx]["ani"] = ani
        edges[idx]["coverage"] = coverage
        edges[idx]["score"] = score
    return edges


def clique(vertices):
    vertices = list(vertices)
    return [(a, b) for i, a in enumerate(vertices) for b in vertices[i + 1:]]


def bridged_cliques(size=5):
    """Two cliques joined by one bridge edge — the over-merge fixture."""
    pairs = clique(range(size)) + clique(range(size, 2 * size)) + [(size - 1, size)]
    return SimilarityGraph.from_edges(make_edges(pairs), 2 * size)


def random_graph(seed, n=40, m=60):
    rng = np.random.default_rng(seed)
    edges = make_edges(
        [(int(a), int(b)) for a, b in rng.integers(0, n, size=(m, 2))],
        ani=0.5,
    )
    return SimilarityGraph.from_edges(edges, n)


# ------------------------------------------------------------------ union-find
def scipy_reference_labels(graph):
    """The labelling the seed's scipy.sparse.csgraph implementation produced."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import connected_components as scipy_cc

    if graph.num_edges == 0:
        return np.arange(graph.n_vertices, dtype=np.int64)
    rows = np.concatenate([graph.edges["row"], graph.edges["col"]])
    cols = np.concatenate([graph.edges["col"], graph.edges["row"]])
    adj = csr_matrix(
        (np.ones(rows.size, dtype=np.int8), (rows, cols)),
        shape=(graph.n_vertices, graph.n_vertices),
    )
    return scipy_cc(adj, directed=False)[1].astype(np.int64)


@pytest.mark.parametrize("seed", range(12))
def test_union_find_matches_scipy_exactly(seed):
    graph = random_graph(seed)
    assert np.array_equal(connected_components(graph), scipy_reference_labels(graph))


def test_union_find_backs_similarity_graph_method():
    graph = random_graph(99)
    assert np.array_equal(graph.connected_components(), scipy_reference_labels(graph))


def test_union_find_empty_and_isolated():
    assert connected_components(SimilarityGraph.empty(5)).tolist() == [0, 1, 2, 3, 4]
    assert UnionFind(0).labels().size == 0
    uf = UnionFind(4)
    assert uf.union(0, 2)
    assert not uf.union(2, 0)  # already merged
    assert uf.n_sets == 3
    assert uf.labels().tolist() == [0, 1, 0, 2]


@pytest.mark.parametrize("seed", range(8))
def test_vectorized_sweep_agrees_with_incremental_union_find(seed):
    """component_roots (the hot path) and UnionFind label identically."""
    from repro.graph import canonical_labels, component_roots

    graph = random_graph(seed, n=60, m=90)
    rows = graph.edges["row"].astype(np.int64)
    cols = graph.edges["col"].astype(np.int64)
    vectorized = canonical_labels(component_roots(graph.n_vertices, rows, cols))
    uf = UnionFind(graph.n_vertices)
    uf.union_edges(rows, cols)
    assert np.array_equal(vectorized, uf.labels())
    # a long path is the pointer-jumping worst case
    chain_rows = np.arange(199, dtype=np.int64)
    chain_cols = chain_rows + 1
    roots = component_roots(200, chain_rows, chain_cols)
    assert np.all(roots == 0)


# ------------------------------------------------------------------ stochastic matrix
def test_from_similarity_graph_is_column_stochastic():
    graph = bridged_cliques()
    for transform in ("ani", "score", "log_score", "unit"):
        m = StochasticMatrix.from_similarity_graph(graph, transform=transform)
        assert m.shape == (10, 10)
        assert np.allclose(m.column_sums(), 1.0)


def test_unknown_weight_transform_rejected():
    graph = bridged_cliques()
    with pytest.raises(ValueError, match="unknown weight transform"):
        StochasticMatrix.from_similarity_graph(graph, transform="bogus")
    with pytest.raises(ValueError, match="unknown weight transform"):
        similarity_weights(graph.edges, "nope")


def test_self_loops_make_isolated_vertices_valid_columns():
    graph = SimilarityGraph.from_edges(make_edges([(0, 1)]), 4)
    m = StochasticMatrix.from_similarity_graph(graph)
    assert np.allclose(m.column_sums(), 1.0)  # vertices 2, 3 carry self loops
    labels = MarkovClustering().fit(m).labels
    assert labels[2] != labels[3] != labels[0]


def test_prune_accounts_discarded_mass():
    graph = bridged_cliques()
    m = StochasticMatrix.from_similarity_graph(graph, transform="unit")
    pruned, stats = m.prune(threshold=0.21)
    assert stats.pruned_entries > 0
    assert stats.pruned_mass > 0
    assert stats.pruned_mass_max <= stats.pruned_mass
    assert pruned.nnz + stats.pruned_entries == m.nnz
    assert np.allclose(pruned.column_sums(), 1.0)  # renormalized after pruning
    # accounting: the dropped mass is the input mass minus what survived
    surviving = np.isin(
        m._column_ids() * m.n + m.tcsr.indices,
        pruned._column_ids() * m.n + pruned.tcsr.indices,
    )
    assert stats.pruned_mass == pytest.approx(float(m.tcsr.values[~surviving].sum()))
    # a no-op prune returns zero stats
    _, none_stats = m.prune(threshold=0.0)
    assert none_stats.pruned_entries == 0 and none_stats.pruned_mass == 0.0


def test_prune_top_k_bounds_column_nnz_deterministically():
    graph = bridged_cliques()
    m = StochasticMatrix.from_similarity_graph(graph, transform="unit")
    pruned, _ = m.prune(top_k=2)
    assert np.all(np.diff(pruned.tcsr.indptr) <= 2)
    assert np.all(np.diff(pruned.tcsr.indptr) >= 1)  # the max always survives
    again, _ = m.prune(top_k=2)
    assert pruned.same_bits(again)


def test_prune_never_empties_a_column():
    graph = bridged_cliques()
    m = StochasticMatrix.from_similarity_graph(graph, transform="unit")
    pruned, _ = m.prune(threshold=0.999)  # above every entry
    assert np.all(np.diff(pruned.tcsr.indptr) == 1)  # only the max survives
    assert np.allclose(pruned.column_sums(), 1.0)


def test_chaos_zero_on_idempotent_matrix():
    graph = SimilarityGraph.empty(6)
    m = StochasticMatrix.from_similarity_graph(graph)  # identity (self loops only)
    assert m.chaos() == 0.0
    # a column spread over *unequal* probabilities has positive chaos
    # (uniform columns are the other chaos-zero fixed point, by design)
    edges = make_edges([(0, 1), (0, 2)])
    edges["ani"] = [0.9, 0.2]
    spread = StochasticMatrix.from_similarity_graph(
        SimilarityGraph.from_edges(edges, 3), transform="ani"
    )
    assert spread.chaos() > 0.0


def test_expand_rejects_batch_flops_on_non_batching_backend():
    m = StochasticMatrix.from_similarity_graph(bridged_cliques())
    with pytest.raises(ValueError, match="batch_flops"):
        m.expand(kernel="expand", batch_flops=128)


# ------------------------------------------------------------------ MCL
def test_mcl_separates_families_that_components_over_merge():
    """The planted fixture where connectivity provably fails: one bridge edge."""
    graph = bridged_cliques()
    cc = connected_components(graph)
    assert len(set(cc.tolist())) == 1  # components over-merge the two families
    result = MarkovClustering(inflation=2.0).fit_graph(graph, transform="unit")
    assert result.converged
    planted = np.array([0] * 5 + [1] * 5)
    assert np.array_equal(result.labels, planted)


def test_mcl_is_deterministic():
    graph = bridged_cliques()
    m = StochasticMatrix.from_similarity_graph(graph)
    a = MarkovClustering().fit(m)
    b = MarkovClustering().fit(m)
    assert np.array_equal(a.labels, b.labels)
    assert a.final_matrix.same_bits(b.final_matrix)

    def stable(result):  # everything but wall time must repeat exactly
        return [
            {k: v for k, v in it.as_dict().items() if k != "expand_seconds"}
            for it in result.iterations
        ]

    assert stable(a) == stable(b)


@pytest.mark.parametrize("workload_seed", [3, 11])
def test_mcl_bit_identical_across_backends(workload_seed):
    """Every registered backend produces the same labels AND the same bits."""
    seqs = synthetic_dataset(n_sequences=50, seed=workload_seed)
    params = PastisParams(kmer_length=5, common_kmer_threshold=1, nodes=4, num_blocks=4)
    graph = PastisPipeline(params).run(seqs).similarity_graph
    m = StochasticMatrix.from_similarity_graph(graph)
    results = {
        backend: MarkovClustering(spgemm_backend=backend).fit(m) for backend in MCL_BACKENDS
    }
    baseline = results[MCL_BACKENDS[0]]
    for backend, result in results.items():
        assert np.array_equal(result.labels, baseline.labels), backend
        assert result.final_matrix.same_bits(baseline.final_matrix), backend
        assert result.n_iterations == baseline.n_iterations, backend


@pytest.mark.parametrize("workload_seed", [0, 7, 23])
def test_mcl_converges_on_seeded_pipeline_outputs(workload_seed):
    seqs = synthetic_dataset(n_sequences=60, seed=workload_seed)
    params = PastisParams(kmer_length=5, common_kmer_threshold=1, nodes=4, num_blocks=4)
    graph = PastisPipeline(params).run(seqs).similarity_graph
    result = MarkovClustering().fit_graph(graph)
    assert result.converged
    assert result.labels.size == graph.n_vertices
    assert result.n_clusters == len(set(result.labels.tolist()))
    # MCL refines connectivity: it never merges distinct components
    cc = connected_components(graph)
    for label in set(result.labels.tolist()):
        members = np.flatnonzero(result.labels == label)
        assert len(set(cc[members].tolist())) == 1


def test_mcl_records_iteration_stats():
    result = MarkovClustering(top_k=4).fit_graph(bridged_cliques(), transform="unit")
    assert result.n_iterations == len(result.iterations) >= 1
    assert result.total_flops > 0
    assert result.peak_intermediate_bytes > 0
    first = result.iterations[0]
    assert first.iteration == 1
    assert first.nnz > 0
    assert result.memory.peak("mcl_iterate") > 0


def test_mcl_parameter_validation():
    with pytest.raises(ValueError, match="inflation"):
        MarkovClustering(inflation=1.0)
    with pytest.raises(ValueError, match="max_iterations"):
        MarkovClustering(max_iterations=0)
    with pytest.raises(ValueError, match="prune_threshold"):
        MarkovClustering(prune_threshold=1.0)
    with pytest.raises(ValueError, match="top_k"):
        MarkovClustering(top_k=0)
    with pytest.raises(ValueError, match="tolerance"):
        MarkovClustering(tolerance=-1.0)
    with pytest.raises(ValueError, match="unknown SpGEMM kernel"):
        MarkovClustering(spgemm_backend="bogus")


def test_interpret_clusters_joins_overlapping_attractors():
    # column 0 split across attractors 1 and 2 joins all three into a cluster
    from repro.sparse.csr import CsrMatrix

    tcsr = CsrMatrix(
        (3, 3),
        np.array([0, 2, 3, 4]),
        np.array([1, 2, 1, 2]),
        np.array([0.5, 0.5, 1.0, 1.0]),
    )
    labels = interpret_clusters(StochasticMatrix(tcsr))
    assert labels.tolist() == [0, 0, 0]


# ------------------------------------------------------------------ quality
def test_modularity_prefers_planted_partition():
    graph = bridged_cliques()
    planted = np.array([0] * 5 + [1] * 5)
    merged = np.zeros(10, dtype=np.int64)
    assert modularity(graph, planted, "unit") > modularity(graph, merged, "unit")
    with pytest.raises(ValueError, match="labels length"):
        modularity(graph, planted[:-1], "unit")


def test_modularity_empty_graph_is_zero():
    assert modularity(SimilarityGraph.empty(4), np.zeros(4, dtype=np.int64)) == 0.0


def test_evaluate_clustering_metrics():
    pairs = clique(range(4)) + [(4, 5)]
    edges = make_edges(pairs, score=100)
    edges["score"][-1] = 10  # the inter-family edge is weak
    graph = SimilarityGraph.from_edges(edges, 7)
    labels = np.array([0, 0, 0, 0, 1, 2, 3])  # (4,5) split across clusters
    quality = evaluate_clustering(graph, labels)
    assert quality.n_clusters == 4
    assert quality.intra_mean_score == pytest.approx(100.0)
    assert quality.inter_mean_score == pytest.approx(10.0)
    assert quality.intra_edge_fraction == pytest.approx(6 / 7)
    assert quality.largest_cluster == 4
    assert quality.singleton_clusters == 3
    assert quality.size_histogram == {1: 3, 4: 1}
    assert size_histogram(labels) == {1: 3, 4: 1}


# ------------------------------------------------------------------ api / pipeline wiring
def test_cluster_params_validation():
    with pytest.raises(ValueError, match="method"):
        ClusterParams(method="kmeans")
    with pytest.raises(ValueError, match="weight_transform"):
        ClusterParams(weight_transform="bogus")
    with pytest.raises(ValueError, match="inflation"):
        ClusterParams(inflation=0.5)
    with pytest.raises(ValueError, match="spgemm_backend"):
        ClusterParams(spgemm_backend="bogus")
    with pytest.raises(ValueError, match="batch_flops"):
        ClusterParams(batch_flops=0)
    params = ClusterParams()
    assert params.resolve_backend() == ("scipy" if "scipy" in available_kernels() else None)
    assert ClusterParams(spgemm_backend="expand").resolve_backend() == "expand"


def test_cluster_params_batch_flops_resolves_to_batching_backend():
    """A flop budget must never land on a backend that cannot honor it."""
    budget = ClusterParams(batch_flops=4096)
    assert budget.resolve_backend() == "gustavson"
    result = cluster_similarity_graph(bridged_cliques(), budget)  # must not raise
    assert result.n_clusters == 2
    with pytest.raises(ValueError, match="batch_flops"):
        ClusterParams(spgemm_backend="expand", batch_flops=4096)
    if "scipy" in available_kernels():
        with pytest.raises(ValueError, match="batch_flops"):
            ClusterParams(spgemm_backend="scipy", batch_flops=4096)
    ClusterParams(spgemm_backend="auto", batch_flops=4096)  # batching backends fine


def test_cluster_similarity_graph_components_method():
    graph = bridged_cliques()
    result = cluster_similarity_graph(graph, ClusterParams(method="components"))
    assert result.method == "components"
    assert result.n_clusters == 1
    assert result.converged
    assert result.n_iterations == 0
    assert result.total_expand_flops == 0
    assert np.array_equal(result.labels, connected_components(graph))


def test_pipeline_cluster_stage_end_to_end():
    seqs = synthetic_dataset(n_sequences=60, seed=5)
    params = PastisParams(
        kmer_length=5,
        common_kmer_threshold=1,
        nodes=4,
        num_blocks=4,
        cluster=ClusterParams(enabled=True),
    )
    result = PastisPipeline(params).run(seqs)
    clustering = result.clustering
    assert clustering is not None
    assert clustering.labels.size == len(seqs)
    extras = result.stats.extras["clustering"]
    assert extras["method"] == "mcl"
    assert extras["n_clusters"] == clustering.n_clusters
    assert extras["modeled_seconds"] > 0
    # the pipeline stage is exactly the standalone API call on the graph
    direct = cluster_similarity_graph(result.similarity_graph, params.cluster)
    assert np.array_equal(direct.labels, clustering.labels)
    # clustering is excluded from the Table-IV search total
    search_only = PastisPipeline(
        params.replace(cluster=ClusterParams(enabled=False))
    ).run(seqs)
    assert search_only.clustering is None
    assert search_only.stats.time_total == pytest.approx(result.stats.time_total)
    assert "cluster" in result.ledger.categories()


def test_pipeline_cluster_report_is_json_serializable(tmp_path):
    import json

    from repro.io.report import clustering_report, clustering_table, run_report

    seqs = synthetic_dataset(n_sequences=50, seed=9)
    params = PastisParams(
        kmer_length=5, common_kmer_threshold=1, nodes=4, num_blocks=1,
        cluster=ClusterParams(enabled=True),
    )
    result = PastisPipeline(params).run(seqs)
    json.dumps(run_report(result.stats))
    report = clustering_report(result.clustering)
    json.dumps(report)
    assert len(report["iterations"]) == result.clustering.n_iterations
    table = clustering_table(result.clustering)
    assert "Clustering" in table and "Modularity" in table


# ---------------------------------------------------------------- regularized MCL
def test_regularized_mcl_expands_against_original_matrix():
    """R-MCL's expansion flops stay bounded by the original matrix's sparsity."""
    graph = bridged_cliques(6)
    matrix = StochasticMatrix.from_similarity_graph(graph)
    plain = MarkovClustering(prune_threshold=0.0).fit(matrix)
    regularized = MarkovClustering(prune_threshold=0.0, regularized=True).fit(matrix)
    # with pruning disabled, plain MCL densifies (flops grow across
    # iterations); regularized MCL's right operand stays the original matrix
    assert regularized.iterations[1].flops < plain.iterations[1].flops
    # both converge to a valid partition of all vertices
    for result in (plain, regularized):
        assert result.labels.size == graph.n_vertices
        assert result.labels.min() == 0


@pytest.mark.parametrize("backend", MCL_BACKENDS)
def test_regularized_mcl_bit_identical_across_backends(backend):
    graph = bridged_cliques(5)
    matrix = StochasticMatrix.from_similarity_graph(graph)
    baseline = MarkovClustering(regularized=True, spgemm_backend=MCL_BACKENDS[0]).fit(matrix)
    result = MarkovClustering(regularized=True, spgemm_backend=backend).fit(matrix)
    assert np.array_equal(result.labels, baseline.labels)
    assert result.final_matrix.same_bits(baseline.final_matrix)


def test_cluster_params_regularized_route():
    graph = bridged_cliques(5)
    plain = cluster_similarity_graph(graph, ClusterParams())
    regularized = cluster_similarity_graph(graph, ClusterParams(regularized=True))
    assert plain.n_clusters >= 2  # MCL separates the bridged cliques
    # R-MCL keeps routing flow through the original edges, so its iterates
    # need not reach the strict idempotency plain MCL converges to — the
    # route must still produce a valid best-so-far partition
    assert regularized.labels.size == graph.n_vertices
    assert regularized.labels.min() == 0
    assert regularized.n_iterations >= 1


def test_rmcl_flow_residual_stops_before_max_iterations():
    """Regression for the ROADMAP open item: R-MCL runs used to spin to
    max_iterations because the chaos tolerance rarely fires for flow-balanced
    iterates; the flow-balance residual criterion stops them early."""
    graph = bridged_cliques(6)
    full = MarkovClustering(
        regularized=True, max_iterations=40, tolerance=0.0
    ).fit_graph(graph)
    early = MarkovClustering(
        regularized=True, max_iterations=40, tolerance=0.0, rmcl_tolerance=1e-6
    ).fit_graph(graph)
    # the chaos criterion never fired; the residual criterion did
    assert not full.converged
    assert early.converged
    assert early.n_iterations < full.n_iterations
    # the flow had balanced: stopping early does not change the partition
    assert np.array_equal(early.labels, full.labels)
    # residuals are recorded per iteration and decrease to the threshold
    residuals = [it.flow_residual for it in early.iterations]
    assert all(r is not None and np.isfinite(r) for r in residuals)
    assert residuals[-1] <= 1e-6
    assert residuals[0] > residuals[-1]


def test_rmcl_residual_not_tracked_when_disabled():
    graph = bridged_cliques(4)
    result = MarkovClustering(regularized=True, max_iterations=5).fit_graph(graph)
    assert all(it.flow_residual is None for it in result.iterations)


def test_rmcl_tolerance_via_cluster_params():
    graph = bridged_cliques(5)
    base = ClusterParams(regularized=True, max_iterations=40, tolerance=0.0)
    spin = cluster_similarity_graph(graph, base)
    stop = cluster_similarity_graph(graph, base.replace(rmcl_tolerance=1e-6))
    assert stop.converged and stop.n_iterations < spin.n_iterations
    assert np.array_equal(stop.labels, spin.labels)


def test_flow_residual_tcsr_counts_structural_churn():
    from repro.graph.matrix import flow_residual_tcsr
    from repro.sparse.csr import CsrMatrix

    prev = CsrMatrix(
        (2, 3),
        np.array([0, 2, 3]),
        np.array([0, 2, 1]),
        np.array([0.5, 0.5, 1.0]),
    )
    # row 0: entry at col 2 vanishes (0.5), col 0 moves by 0.3 -> L1 = 0.8
    # row 1: new entry at col 0 (0.25), col 1 drops by 0.25 -> L1 = 0.5
    curr = CsrMatrix(
        (2, 3),
        np.array([0, 1, 3]),
        np.array([0, 0, 1]),
        np.array([0.8, 0.25, 0.75]),
    )
    assert flow_residual_tcsr(prev, curr) == pytest.approx(0.8)
    assert flow_residual_tcsr(prev, prev) == 0.0
    empty = CsrMatrix((2, 3), np.zeros(3, dtype=np.int64), np.array([], dtype=np.int64), np.array([]))
    assert flow_residual_tcsr(empty, empty) == 0.0
    with pytest.raises(ValueError, match="shapes differ"):
        flow_residual_tcsr(prev, empty_matrix_of_other_shape())


def empty_matrix_of_other_shape():
    from repro.sparse.csr import CsrMatrix

    return CsrMatrix((3, 3), np.zeros(4, dtype=np.int64), np.array([], dtype=np.int64), np.array([]))


def test_rmcl_tolerance_validation():
    with pytest.raises(ValueError, match="rmcl_tolerance"):
        MarkovClustering(rmcl_tolerance=-1.0)
    with pytest.raises(ValueError, match="rmcl_tolerance"):
        ClusterParams(rmcl_tolerance=-0.5)
