"""Tests for the core building blocks: params, blocking, load balancing, filtering,
pre-blocking, k-mer matrix construction, costing."""

import numpy as np
import pytest

from repro.core.blocking import make_schedule, schedule_for_num_blocks
from repro.core.costing import CostModel
from repro.core.filtering import drop_self_pairs, filter_common_kmers
from repro.core.kmer_matrix import build_distributed_kmer_matrix, build_kmer_coo
from repro.core.load_balance import (
    BlockKind,
    IndexScheme,
    TriangularityScheme,
    classify_block,
    make_scheme,
    pairs_align_exactly_once,
)
from repro.core.params import PastisParams, nearly_square_factors
from repro.core.preblocking import PreblockingModel
from repro.distsparse.blocked_summa import BlockSchedule
from repro.mpi.communicator import SimCommunicator
from repro.sequences.synthetic import synthetic_dataset
from repro.sparse.coo import CooMatrix
from repro.sparse.semiring import OVERLAP_DTYPE


# ---------------------------------------------------------------- params
def test_default_params_match_paper():
    params = PastisParams()
    assert params.kmer_length == 6
    assert params.gap_open == 11
    assert params.gap_extend == 2
    assert params.common_kmer_threshold == 2
    assert params.ani_threshold == 0.30
    assert params.coverage_threshold == 0.70


def test_params_validation():
    with pytest.raises(ValueError):
        PastisParams(kmer_length=0)
    with pytest.raises(ValueError):
        PastisParams(load_balancing="bogus")
    with pytest.raises(ValueError):
        PastisParams(clock="wallclock")
    with pytest.raises(ValueError):
        PastisParams(ani_threshold=1.5)
    with pytest.raises(ValueError):
        PastisParams(nodes=0)


def test_params_replace_and_blocking_factors():
    params = PastisParams(num_blocks=12)
    assert params.blocking_factors() == (3, 4)
    explicit = params.replace(blocking=(2, 5))
    assert explicit.blocking_factors() == (2, 5)
    assert params.blocking_factors() == (3, 4)  # original unchanged


def test_params_alphabet_and_scoring():
    assert PastisParams(seed_alphabet="murphy10").alphabet.size == 10
    assert PastisParams().scoring.gap_open == 11


def test_nearly_square_factors():
    assert nearly_square_factors(1) == (1, 1)
    assert nearly_square_factors(400) == (20, 20)
    assert nearly_square_factors(12) == (3, 4)
    assert nearly_square_factors(7) == (1, 7)
    with pytest.raises(ValueError):
        nearly_square_factors(0)


# ---------------------------------------------------------------- blocking
def test_make_schedule_respects_params():
    params = PastisParams(num_blocks=16)
    schedule = make_schedule(100, params)
    assert (schedule.br, schedule.bc) == (4, 4)
    # blocking clamped for tiny datasets
    tiny = make_schedule(3, PastisParams(num_blocks=100))
    assert tiny.br <= 3 and tiny.bc <= 3


def test_schedule_for_num_blocks():
    schedule = schedule_for_num_blocks(50, 6)
    assert schedule.num_blocks == 6


# ---------------------------------------------------------------- block classification
def test_classify_block_kinds():
    assert classify_block((0, 5), (5, 10)) is BlockKind.FULL
    assert classify_block((0, 5), (0, 5)) is BlockKind.PARTIAL
    assert classify_block((5, 10), (0, 5)) is BlockKind.AVOIDABLE
    assert classify_block((5, 10), (0, 6)) is BlockKind.AVOIDABLE
    assert classify_block((4, 8), (6, 10)) is BlockKind.PARTIAL


def test_triangularity_scheme_skips_avoidable_blocks():
    schedule = BlockSchedule(12, 12, 3, 3)
    scheme = TriangularityScheme()
    blocks = scheme.blocks_to_compute(schedule)
    assert (2, 0) not in blocks  # entirely below the diagonal
    assert (0, 2) in blocks
    assert (1, 1) in blocks  # diagonal block is partial
    assert len(blocks) == 6
    assert scheme.sparse_savings_fraction(schedule) == pytest.approx(3 / 9)
    classification = scheme.block_classification(schedule)
    assert classification[(0, 2)] is BlockKind.FULL
    assert classification[(2, 0)] is BlockKind.AVOIDABLE


def test_index_scheme_computes_all_blocks():
    schedule = BlockSchedule(12, 12, 3, 3)
    assert len(IndexScheme().blocks_to_compute(schedule)) == 9


def test_full_block_growth_quadratic_vs_partial_linear():
    # paper §VI-B: full blocks grow quadratically, partial blocks linearly
    def counts(b):
        schedule = BlockSchedule(100, 100, b, b)
        kinds = TriangularityScheme().block_classification(schedule)
        full = sum(1 for k in kinds.values() if k is BlockKind.FULL)
        partial = sum(1 for k in kinds.values() if k is BlockKind.PARTIAL)
        return full, partial

    full4, partial4 = counts(4)
    full8, partial8 = counts(8)
    assert full8 > 3 * full4      # ~quadratic growth
    assert partial8 == 2 * partial4  # linear growth (diagonal blocks)


def make_symmetric_overlap(n=16, seed=0):
    rng = np.random.default_rng(seed)
    rows, cols = np.triu_indices(n, k=1)
    keep = rng.random(rows.size) < 0.4
    rows, cols = rows[keep], cols[keep]
    all_rows = np.concatenate([rows, cols, np.arange(n)])
    all_cols = np.concatenate([cols, rows, np.arange(n)])
    values = np.zeros(all_rows.size, dtype=OVERLAP_DTYPE)
    values["count"] = 2
    return CooMatrix((n, n), all_rows, all_cols, values)


@pytest.mark.parametrize("scheme_name", ["index", "triangularity"])
def test_schemes_align_each_pair_exactly_once(scheme_name):
    n = 16
    matrix = make_symmetric_overlap(n)
    schedule = BlockSchedule(n, n, 4, 4)
    scheme = make_scheme(scheme_name)
    pruned_blocks = []
    selected_pairs = set()
    for r, c in scheme.blocks_to_compute(schedule):
        (rlo, rhi), (clo, chi) = schedule.block_bounds(r, c)
        block = matrix.select(
            (matrix.rows >= rlo) & (matrix.rows < rhi) & (matrix.cols >= clo) & (matrix.cols < chi)
        )
        pruned = drop_self_pairs(scheme.prune(block))
        pruned_blocks.append(pruned)
        for i, j in zip(pruned.rows, pruned.cols):
            selected_pairs.add((min(i, j), max(i, j)))
    assert pairs_align_exactly_once(pruned_blocks, n)
    # every off-diagonal pair of the symmetric matrix is aligned exactly once
    expected = {
        (min(i, j), max(i, j)) for i, j in zip(matrix.rows, matrix.cols) if i != j
    }
    assert selected_pairs == expected


def test_both_schemes_same_alignment_volume():
    n = 20
    matrix = make_symmetric_overlap(n, seed=3)
    schedule = BlockSchedule(n, n, 5, 5)
    totals = {}
    for name in ("index", "triangularity"):
        scheme = make_scheme(name)
        total = 0
        for r, c in scheme.blocks_to_compute(schedule):
            (rlo, rhi), (clo, chi) = schedule.block_bounds(r, c)
            block = matrix.select(
                (matrix.rows >= rlo) & (matrix.rows < rhi)
                & (matrix.cols >= clo) & (matrix.cols < chi)
            )
            total += drop_self_pairs(scheme.prune(block)).nnz
        totals[name] = total
    # the two schemes incur the same amount of alignment work (§VI-B)
    assert totals["index"] == totals["triangularity"]


def test_make_scheme_unknown():
    with pytest.raises(ValueError):
        make_scheme("roundrobin")


# ---------------------------------------------------------------- filtering
def test_filter_common_kmers_structured_and_plain():
    values = np.zeros(3, dtype=OVERLAP_DTYPE)
    values["count"] = [1, 2, 5]
    m = CooMatrix((4, 4), np.array([0, 1, 2]), np.array([1, 2, 3]), values)
    assert filter_common_kmers(m, 2).nnz == 2
    plain = CooMatrix((4, 4), np.array([0, 1]), np.array([1, 2]), np.array([1, 3], dtype=np.int64))
    assert filter_common_kmers(plain, 2).nnz == 1
    assert filter_common_kmers(CooMatrix.empty((4, 4)), 2).nnz == 0


def test_drop_self_pairs():
    m = CooMatrix((3, 3), np.array([0, 1, 2]), np.array([0, 2, 2]), np.ones(3))
    assert drop_self_pairs(m).nnz == 1


# ---------------------------------------------------------------- pre-blocking
def test_preblocking_reduces_total_time():
    model = PreblockingModel()
    nblocks, nranks = 10, 4
    rng = np.random.default_rng(0)
    align = rng.uniform(5, 6, size=(nblocks, nranks))
    sparse = rng.uniform(4, 5, size=(nblocks, nranks))
    report = model.evaluate(sparse, align, other_seconds=3.0)
    assert report.total_seconds_pre < report.total_seconds
    assert report.normalized_total < 1.0
    assert report.normalized_align > 1.0
    assert report.normalized_sparse > 1.0
    assert 0 < report.efficiency_percent <= 100.0
    assert report.sum_seconds == pytest.approx(report.align_seconds + report.sparse_seconds)


def test_preblocking_efficiency_degrades_with_imbalance():
    """Uneven per-block alignment (as in the triangularity scheme's partial
    blocks) hides the next block's SpGEMM less effectively, even when the
    total alignment work is unchanged (§VI-C)."""
    model = PreblockingModel()
    nblocks, nranks = 8, 4
    balanced_align = np.full((nblocks, nranks), 5.0)
    balanced_sparse = np.full((nblocks, nranks), 4.0)
    imbalanced_align = balanced_align.copy()
    # one rank does all its alignment in half the blocks and idles in the rest
    imbalanced_align[::2, 0] = 10.0
    imbalanced_align[1::2, 0] = 0.0
    balanced = model.evaluate(balanced_sparse, balanced_align)
    imbalanced = model.evaluate(balanced_sparse, imbalanced_align)
    assert imbalanced.efficiency_percent < balanced.efficiency_percent
    assert imbalanced.total_seconds_pre > balanced.total_seconds_pre


def test_preblocking_contention_grows_with_blocks():
    model = PreblockingModel()
    assert model.sparse_contention(50) > model.sparse_contention(10)


def test_preblocking_shape_mismatch():
    with pytest.raises(ValueError):
        PreblockingModel().evaluate(np.ones((2, 3)), np.ones((3, 2)))


# ---------------------------------------------------------------- k-mer matrix
def test_build_kmer_coo_counts():
    seqs = synthetic_dataset(n_sequences=20, seed=2)
    params = PastisParams(kmer_length=5)
    coo, info = build_kmer_coo(seqs, params)
    assert coo.shape == (20, 20**5)
    assert info.nnz == coo.nnz
    assert info.nnz <= info.kmer_occurrences
    assert info.hypersparsity_ratio > 1.0
    # positions are valid indices into their sequences
    assert int(coo.values.max()) < int(seqs.lengths.max())


def test_build_kmer_coo_with_substitutes_increases_nnz():
    seqs = synthetic_dataset(n_sequences=15, seed=3)
    base, _ = build_kmer_coo(seqs, PastisParams(kmer_length=5, substitute_kmers=0))
    expanded, info = build_kmer_coo(seqs, PastisParams(kmer_length=5, substitute_kmers=1))
    assert expanded.nnz >= base.nnz
    assert info.substitute_nnz >= 0


def test_build_distributed_kmer_matrix():
    seqs = synthetic_dataset(n_sequences=25, seed=4)
    comm = SimCommunicator(4)
    a, at, info = build_distributed_kmer_matrix(seqs, PastisParams(kmer_length=5), comm)
    assert a.shape == (25, 20**5)
    assert at.shape == (20**5, 25)
    assert a.nnz == at.nnz == info.nnz


# ---------------------------------------------------------------- costing
def test_cost_model_rates():
    model = CostModel()
    assert model.alignment_seconds(6e10) == pytest.approx(1.0, rel=0.1)
    # one second of SpGEMM corresponds to the node's calibrated product rate
    assert model.spgemm_seconds(model.node.sparse_gflops * 1e9) == pytest.approx(1.0)
    assert model.sparse_traversal_seconds(340e9) == pytest.approx(1.0)
    assert model.alignment_kernel_seconds(1e9) < model.alignment_seconds(1e9) * 10
