"""Shared fixtures for the test suite.

Datasets are intentionally tiny (tens to a couple hundred sequences) so the
whole suite runs in minutes; the pipeline invariants being tested (identical
results across blockings and load-balancing schemes, exact agreement of
alignment kernels, SUMMA vs. direct SpGEMM equality) do not depend on scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import PastisParams
from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic random generator shared across tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_seqs():
    """A ~30-sequence synthetic dataset (fast unit-level fixture)."""
    return synthetic_dataset(n_sequences=30, seed=7)


@pytest.fixture(scope="session")
def small_seqs():
    """A ~90-sequence synthetic dataset used by pipeline-level tests."""
    config = SyntheticDatasetConfig(
        n_sequences=90,
        family_fraction=0.75,
        mean_family_size=5.0,
        mutation_rate=0.08,
        seed=11,
    )
    return synthetic_dataset(config=config)


@pytest.fixture(scope="session")
def fast_params() -> PastisParams:
    """Pipeline parameters tuned for tiny test datasets."""
    return PastisParams(
        kmer_length=5,
        nodes=4,
        num_blocks=4,
        common_kmer_threshold=1,
        load_balancing="index",
        align_batch_size=64,
    )


@pytest.fixture(scope="session")
def pipeline_result(small_seqs, fast_params):
    """One shared end-to-end pipeline run (expensive; reused by many tests)."""
    from repro.core.pipeline import PastisPipeline

    return PastisPipeline(fast_params).run(small_seqs)
