"""Shared fixtures for the test suite.

Datasets are intentionally tiny (tens to a couple hundred sequences) so the
whole suite runs in minutes; the pipeline invariants being tested (identical
results across blockings and load-balancing schemes, exact agreement of
alignment kernels, SUMMA vs. direct SpGEMM equality) do not depend on scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import PastisParams
from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic random generator shared across tests."""
    return np.random.default_rng(12345)


def random_sequence_pairs(seed, n_pairs=8, min_len=1, max_len=60,
                          related_fraction=0.6, mutation_rate=0.15):
    """Seeded random (a, b) code-array pairs for alignment property tests.

    A mix of unrelated pairs and related pairs (mutated, possibly truncated
    copies), so both the zero-score and the meaningful-alignment paths of the
    kernels are exercised.  Shared by ``test_smith_waterman.py`` and
    ``test_batch_align.py`` via the ``make_random_seq_pairs`` fixture.
    """
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(n_pairs):
        a = rng.integers(0, 20, rng.integers(min_len, max_len + 1)).astype(np.uint8)
        if rng.random() < related_fraction and a.size >= 4:
            b = a.copy()
            mutate = rng.random(b.size) < mutation_rate
            b[mutate] = rng.integers(0, 20, int(mutate.sum()))
            # occasionally truncate so begin/end coordinates move around
            if rng.random() < 0.5:
                lo = int(rng.integers(0, b.size // 4 + 1))
                hi = int(b.size - rng.integers(0, b.size // 4 + 1))
                b = b[lo:hi]
        else:
            b = rng.integers(0, 20, rng.integers(min_len, max_len + 1)).astype(np.uint8)
        pairs.append((a, b))
    return pairs


@pytest.fixture(scope="session")
def make_random_seq_pairs():
    """Factory fixture exposing :func:`random_sequence_pairs` to test modules."""
    return random_sequence_pairs


@pytest.fixture(scope="session")
def tiny_seqs():
    """A ~30-sequence synthetic dataset (fast unit-level fixture)."""
    return synthetic_dataset(n_sequences=30, seed=7)


@pytest.fixture(scope="session")
def small_seqs():
    """A ~90-sequence synthetic dataset used by pipeline-level tests."""
    config = SyntheticDatasetConfig(
        n_sequences=90,
        family_fraction=0.75,
        mean_family_size=5.0,
        mutation_rate=0.08,
        seed=11,
    )
    return synthetic_dataset(config=config)


@pytest.fixture(scope="session")
def fast_params() -> PastisParams:
    """Pipeline parameters tuned for tiny test datasets."""
    return PastisParams(
        kmer_length=5,
        nodes=4,
        num_blocks=4,
        common_kmer_threshold=1,
        load_balancing="index",
        align_batch_size=64,
    )


@pytest.fixture(scope="session")
def pipeline_result(small_seqs, fast_params):
    """One shared end-to-end pipeline run (expensive; reused by many tests)."""
    from repro.core.pipeline import PastisPipeline

    return PastisPipeline(fast_params).run(small_seqs)
