"""Tests for the batched wavefront kernel and the ADEPT-like driver."""

import numpy as np
import pytest

from repro.align.adept import AdeptDriver, AlignmentWorkloadStats
from repro.align.batch import batch_smith_waterman, estimate_batch_cells
from repro.align.result import ALIGNMENT_RESULT_DTYPE
from repro.align.smith_waterman import smith_waterman_reference
from repro.align.substitution import ScoringScheme, identity_matrix
from repro.hardware.node import NodeSpec
from repro.sequences.alphabet import PROTEIN
from repro.sequences.synthetic import synthetic_dataset


def encode(s):
    return PROTEIN.encode(s)


def test_batch_scores_match_reference_on_random_pairs():
    rng = np.random.default_rng(0)
    a_list, b_list = [], []
    for _ in range(12):
        a_list.append(rng.integers(0, 20, rng.integers(5, 45)).astype(np.uint8))
        b_list.append(rng.integers(0, 20, rng.integers(5, 45)).astype(np.uint8))
    results = batch_smith_waterman(a_list, b_list)
    assert results.dtype == ALIGNMENT_RESULT_DTYPE
    for k in range(12):
        ref = smith_waterman_reference(a_list[k], b_list[k])
        assert int(results["score"][k]) == ref.score
        assert int(results["cells"][k]) == ref.cells


@pytest.mark.parametrize("seed", [100, 101, 102])
def test_batch_matches_reference_on_all_fields(seed, make_random_seq_pairs):
    """Property test: the batched wavefront kernel reproduces the reference —
    score, begin/end coordinates, match count and alignment length — on the
    shared seeded generator of related and unrelated pairs."""
    pairs = make_random_seq_pairs(seed, n_pairs=10)
    results = batch_smith_waterman([a for a, _ in pairs], [b for _, b in pairs])
    for k, (a, b) in enumerate(pairs):
        ref = smith_waterman_reference(a, b)
        assert int(results["score"][k]) == ref.score
        assert int(results["begin_a"][k]) == ref.begin_a
        assert int(results["end_a"][k]) == ref.end_a
        assert int(results["begin_b"][k]) == ref.begin_b
        assert int(results["end_b"][k]) == ref.end_b
        assert int(results["matches"][k]) == ref.matches
        assert int(results["length"][k]) == ref.length


def test_batch_handles_heterogeneous_lengths():
    a_list = [encode("A" * 5), encode("ACDEFGHIKLMNPQRSTVWY" * 4), encode("WYW")]
    b_list = [encode("A" * 50), encode("ACDEFGHIKLMNPQRSTVWY" * 2), encode("PPP")]
    results = batch_smith_waterman(a_list, b_list)
    ref0 = smith_waterman_reference(a_list[0], b_list[0])
    ref1 = smith_waterman_reference(a_list[1], b_list[1])
    assert int(results["score"][0]) == ref0.score
    assert int(results["score"][1]) == ref1.score
    assert int(results["score"][2]) == 0


def test_batch_identity_and_coverage_fields():
    seq = encode("ACDEFGHIKLMNPQRSTVWY")
    results = batch_smith_waterman([seq], [seq])
    assert int(results["matches"][0]) == 20
    assert int(results["length"][0]) == 20
    assert int(results["begin_a"][0]) == 0
    assert int(results["end_a"][0]) == 19


def test_batch_empty_inputs():
    assert batch_smith_waterman([], []).size == 0
    results = batch_smith_waterman([encode("")], [encode("ACD")])
    assert int(results["score"][0]) == 0
    assert int(results["end_a"][0]) == -1


def test_batch_mismatched_lengths_raises():
    with pytest.raises(ValueError):
        batch_smith_waterman([encode("AC")], [])


def test_batch_scoring_scheme_is_honoured():
    scoring = ScoringScheme(matrix=identity_matrix(PROTEIN, match=3, mismatch=-2),
                            gap_open=5, gap_extend=2)
    seq = encode("ACDEACDE")
    results = batch_smith_waterman([seq], [seq], scoring)
    assert int(results["score"][0]) == 24


def test_estimate_batch_cells():
    a_list = [encode("AAAA"), encode("CC")]
    b_list = [encode("AAA"), encode("CCCC")]
    assert estimate_batch_cells(a_list, b_list) == 4 * 3 + 2 * 4


# ---------------------------------------------------------------- AdeptDriver
@pytest.fixture(scope="module")
def driver_dataset():
    return synthetic_dataset(n_sequences=40, seed=21)


def test_adept_driver_results_in_input_order(driver_dataset):
    driver = AdeptDriver(batch_size=8)
    rows = np.array([0, 5, 10, 3, 7])
    cols = np.array([1, 6, 11, 4, 8])
    results, stats = driver.align_pairs(driver_dataset, rows, cols)
    assert results.size == 5
    assert stats.pairs == 5
    # spot-check one pair against the reference kernel
    ref = smith_waterman_reference(driver_dataset.codes(0), driver_dataset.codes(1))
    assert int(results["score"][0]) == ref.score


def test_adept_driver_empty_input(driver_dataset):
    driver = AdeptDriver()
    results, stats = driver.align_pairs(driver_dataset, np.array([]), np.array([]))
    assert results.size == 0
    assert stats.pairs == 0
    assert stats.modeled_seconds == 0.0


def test_adept_driver_threaded_matches_serial(driver_dataset):
    rows = np.arange(0, 20)
    cols = np.arange(1, 21)
    serial, _ = AdeptDriver(batch_size=4, use_threads=False).align_pairs(
        driver_dataset, rows, cols
    )
    threaded, _ = AdeptDriver(batch_size=4, use_threads=True).align_pairs(
        driver_dataset, rows, cols
    )
    assert np.array_equal(serial["score"], threaded["score"])
    assert np.array_equal(serial["matches"], threaded["matches"])


def test_adept_driver_stats_and_cups(driver_dataset):
    driver = AdeptDriver(batch_size=16)
    rows = np.arange(0, 10)
    cols = np.arange(10, 20)
    _, stats = driver.align_pairs(driver_dataset, rows, cols)
    assert stats.cells > 0
    assert stats.modeled_seconds > 0
    assert stats.measured_cups > 0
    assert stats.modeled_cups > stats.measured_cups  # the GPU model is far faster than Python
    assert stats.alignments_per_second_modeled > 0


def test_adept_driver_gpu_count_affects_model(driver_dataset):
    rows = np.arange(0, 12)
    cols = np.arange(12, 24)
    one_gpu = AdeptDriver(node=NodeSpec(gpus_per_node=1), batch_size=2)
    six_gpu = AdeptDriver(node=NodeSpec(gpus_per_node=6), batch_size=2)
    _, s1 = one_gpu.align_pairs(driver_dataset, rows, cols)
    _, s6 = six_gpu.align_pairs(driver_dataset, rows, cols)
    assert s6.modeled_seconds < s1.modeled_seconds


def test_adept_driver_pair_length_metric(driver_dataset):
    driver = AdeptDriver()
    rows = np.array([0, 1])
    cols = np.array([2, 3])
    cells = driver.align_pair_lengths(driver_dataset, rows, cols)
    lengths = driver_dataset.lengths
    assert cells.tolist() == [
        int(lengths[0] * lengths[2]),
        int(lengths[1] * lengths[3]),
    ]


def test_workload_stats_merge():
    a = AlignmentWorkloadStats(pairs=2, cells=100, measured_seconds=1.0, modeled_seconds=0.5, batches=1)
    b = AlignmentWorkloadStats(pairs=3, cells=200, measured_seconds=2.0, modeled_seconds=0.25, batches=2)
    merged = a.merge(b)
    assert merged.pairs == 5
    assert merged.cells == 300
    assert merged.batches == 3
    assert merged.measured_seconds == pytest.approx(3.0)


def test_pair_shape_mismatch_raises(driver_dataset):
    with pytest.raises(ValueError):
        AdeptDriver().align_pairs(driver_dataset, np.array([0, 1]), np.array([2]))
