"""Tests for repro.sequences.kmers."""

import numpy as np
import pytest

from repro.align.substitution import BLOSUM62
from repro.sequences.alphabet import MURPHY10, PROTEIN
from repro.sequences.kmers import (
    KmerExtractor,
    decode_kmer,
    encode_kmers,
    kmer_space_size,
    substitute_kmers,
)
from repro.sequences.sequence import SequenceSet


def test_kmer_space_size():
    assert kmer_space_size(PROTEIN, 2) == 400
    assert kmer_space_size(MURPHY10, 3) == 1000


def test_encode_kmers_values():
    codes = np.array([1, 2, 3, 4], dtype=np.uint8)
    ids = encode_kmers(codes, 2, 20)
    assert ids.tolist() == [1 * 20 + 2, 2 * 20 + 3, 3 * 20 + 4]


def test_encode_kmers_short_sequence():
    assert encode_kmers(np.array([1, 2], dtype=np.uint8), 5, 20).size == 0


def test_decode_kmer_roundtrip():
    seq = "ACDEF"
    codes = PROTEIN.encode(seq)
    kid = int(encode_kmers(codes, 5, 20)[0])
    assert decode_kmer(kid, 5, PROTEIN) == seq


def test_extractor_counts_and_positions():
    seqs = SequenceSet.from_strings(["ACDEFG", "ACD"])
    extractor = KmerExtractor(k=3)
    sid, kid, pos = extractor.extract(seqs)
    # sequence 0 has 4 k-mers, sequence 1 has 1
    assert sid.tolist() == [0, 0, 0, 0, 1]
    assert pos.tolist() == [0, 1, 2, 3, 0]
    # identical k-mer ACD appears in both sequences with the same id
    assert kid[0] == kid[4]


def test_extractor_shared_kmers_between_homologs():
    base = "ACDEFGHIKLMNPQRSTVWY" * 3
    mutated = base[:25] + "W" + base[26:]
    seqs = SequenceSet.from_strings([base, mutated])
    sid, kid, _ = KmerExtractor(k=6).extract(seqs)
    kmers0 = set(kid[sid == 0].tolist())
    kmers1 = set(kid[sid == 1].tolist())
    # the base sequence is periodic with period 20, so it has ~20 distinct
    # 6-mers; a single substitution removes at most 6 of them
    assert len(kmers0 & kmers1) >= 14


def test_extractor_reduced_alphabet_increases_sharing():
    a = "ILMVILMVILMV"
    b = "LIVMLIVMLIVM"
    seqs = SequenceSet.from_strings([a, b])
    sid_p, kid_p, _ = KmerExtractor(k=4, alphabet=PROTEIN).extract(seqs)
    sid_m, kid_m, _ = KmerExtractor(k=4, alphabet=MURPHY10).extract(seqs)
    shared_protein = len(set(kid_p[sid_p == 0]) & set(kid_p[sid_p == 1]))
    shared_murphy = len(set(kid_m[sid_m == 0]) & set(kid_m[sid_m == 1]))
    assert shared_murphy > shared_protein


def test_extractor_frequency_filter():
    seqs = SequenceSet.from_strings(["AAAAAA", "AAAAAA", "CDEFGH"])
    extractor = KmerExtractor(k=3, max_kmer_frequency=2)
    sid, kid, _ = extractor.extract(seqs)
    # the AAA k-mer occurs 8 times (4 per poly-A sequence) and is dropped
    aaa = int(encode_kmers(PROTEIN.encode("AAA"), 3, 20)[0])
    assert aaa not in set(kid.tolist())
    assert (sid == 2).sum() == 4


def test_extractor_space_size():
    assert KmerExtractor(k=4).space_size() == 20**4


def test_substitute_kmers_produces_neighbors():
    seqs = SequenceSet.from_strings(["ACDEFGHIKL"])
    _, kid, _ = KmerExtractor(k=4).extract(seqs)
    src, neighbors = substitute_kmers(
        kid, 4, PROTEIN, BLOSUM62.astype(float), num_neighbors=1, min_score_fraction=0.0
    )
    assert src.size == neighbors.size
    assert src.size > 0
    # neighbours differ from their sources
    assert np.all(neighbors != kid[src])
    # neighbour of a neighbour is within the k-mer space
    assert int(neighbors.max()) < 20**4


def test_substitute_kmers_respects_score_fraction():
    seqs = SequenceSet.from_strings(["WWWWWW"])  # W has no close substitute
    _, kid, _ = KmerExtractor(k=4).extract(seqs)
    src, neighbors = substitute_kmers(
        kid, 4, PROTEIN, BLOSUM62.astype(float), num_neighbors=1, min_score_fraction=0.99
    )
    assert neighbors.size == 0


def test_substitute_kmers_bad_matrix_shape():
    with pytest.raises(ValueError):
        substitute_kmers(np.array([0]), 3, PROTEIN, np.zeros((5, 5)))
