"""Tests for repro.align.result and repro.align.substitution."""

import numpy as np
import pytest

from repro.align.result import (
    ALIGNMENT_RESULT_DTYPE,
    AlignmentResult,
    coverage_array,
    identity_array,
    passes_thresholds,
)
from repro.align.substitution import (
    BLOSUM62,
    DEFAULT_SCORING,
    ScoringScheme,
    identity_matrix,
    reduce_matrix,
)
from repro.sequences.alphabet import MURPHY10, PROTEIN


# ---------------------------------------------------------------- substitution
def test_blosum62_is_symmetric_and_has_positive_diagonal():
    assert BLOSUM62.shape == (20, 20)
    assert np.array_equal(BLOSUM62, BLOSUM62.T)
    assert np.all(np.diag(BLOSUM62) > 0)


def test_blosum62_known_values():
    idx = {aa: i for i, aa in enumerate("ARNDCQEGHILKMFPSTWYV")}
    assert BLOSUM62[idx["W"], idx["W"]] == 11
    assert BLOSUM62[idx["A"], idx["A"]] == 4
    assert BLOSUM62[idx["L"], idx["I"]] == 2
    assert BLOSUM62[idx["W"], idx["G"]] == -2


def test_default_scoring_parameters_match_paper():
    assert DEFAULT_SCORING.gap_open == 11
    assert DEFAULT_SCORING.gap_extend == 2
    assert DEFAULT_SCORING.alphabet_size == 20


def test_scoring_rejects_negative_penalties():
    with pytest.raises(ValueError):
        ScoringScheme(matrix=BLOSUM62, gap_open=-1, gap_extend=2)


def test_score_pairs_vectorized():
    a = PROTEIN.encode("AW")
    b = PROTEIN.encode("AA")
    scores = DEFAULT_SCORING.score_pairs(a, b)
    assert scores.tolist() == [4, -3]


def test_identity_matrix():
    mat = identity_matrix(PROTEIN, match=7, mismatch=-3)
    assert mat[0, 0] == 7
    assert mat[0, 1] == -3


def test_reduce_matrix_to_murphy10():
    reduced = reduce_matrix(BLOSUM62.astype(float), PROTEIN, MURPHY10)
    assert reduced.shape == (10, 10)
    # diagonal (within-group averages) should be positive on average
    assert np.diag(reduced).mean() > 0


def test_reduce_matrix_shape_mismatch():
    with pytest.raises(ValueError):
        reduce_matrix(np.zeros((5, 5)), PROTEIN, MURPHY10)


# ---------------------------------------------------------------- results
def make_result(score=50, begin_a=0, end_a=9, begin_b=0, end_b=9, matches=8, length=10):
    return AlignmentResult(
        score=score, begin_a=begin_a, end_a=end_a, begin_b=begin_b, end_b=end_b,
        matches=matches, length=length, cells=100,
    )


def test_identity_property():
    assert make_result(matches=8, length=10).identity == pytest.approx(0.8)
    assert make_result(matches=0, length=0).identity == 0.0


def test_coverage_property():
    res = make_result(begin_a=0, end_a=9, begin_b=5, end_b=14)
    assert res.coverage(len_a=10, len_b=100) == pytest.approx(1.0)
    assert res.coverage(len_a=20, len_b=100) == pytest.approx(0.5)
    assert make_result(length=0).coverage(0, 10) == 0.0


def test_record_roundtrip():
    res = make_result()
    record = res.to_record()
    assert record.dtype == ALIGNMENT_RESULT_DTYPE
    back = AlignmentResult.from_record(record[0])
    assert back == res


def test_identity_array_and_coverage_array():
    records = np.zeros(2, dtype=ALIGNMENT_RESULT_DTYPE)
    records["matches"] = [5, 0]
    records["length"] = [10, 0]
    records["begin_a"] = [0, 0]
    records["end_a"] = [9, -1]
    records["begin_b"] = [0, 0]
    records["end_b"] = [9, -1]
    ani = identity_array(records)
    assert ani.tolist() == [0.5, 0.0]
    cov = coverage_array(records, np.array([10, 10]), np.array([20, 20]))
    assert cov[0] == pytest.approx(1.0)
    assert cov[1] == 0.0


def test_passes_thresholds():
    records = np.zeros(3, dtype=ALIGNMENT_RESULT_DTYPE)
    records["matches"] = [9, 9, 2]
    records["length"] = [10, 10, 10]
    records["begin_a"] = 0
    records["end_a"] = [9, 4, 9]
    records["begin_b"] = 0
    records["end_b"] = [9, 4, 9]
    mask = passes_thresholds(
        records, np.array([10, 10, 10]), np.array([12, 12, 12]),
        ani_threshold=0.5, coverage_threshold=0.7,
    )
    assert mask.tolist() == [True, False, False]
