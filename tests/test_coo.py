"""Tests for repro.sparse.coo."""

import numpy as np
import pytest

from repro.sparse.coo import CooMatrix
from repro.sparse.semiring import CountSemiring, OVERLAP_DTYPE


def make_matrix():
    return CooMatrix(
        (4, 5),
        np.array([0, 2, 1, 2]),
        np.array([1, 3, 0, 3]),
        np.array([1.0, 2.0, 3.0, 4.0]),
    )


def test_basic_properties():
    m = make_matrix()
    assert m.shape == (4, 5)
    assert m.nnz == 4
    assert m.dtype == np.float64


def test_default_pattern_values():
    m = CooMatrix((3, 3), np.array([0, 1]), np.array([1, 2]))
    assert m.values.dtype == np.int8
    assert np.all(m.values == 1)


def test_coordinate_validation():
    with pytest.raises(ValueError):
        CooMatrix((2, 2), np.array([2]), np.array([0]))
    with pytest.raises(ValueError):
        CooMatrix((2, 2), np.array([0]), np.array([5]))


def test_mismatched_lengths():
    with pytest.raises(ValueError):
        CooMatrix((2, 2), np.array([0, 1]), np.array([0]))
    with pytest.raises(ValueError):
        CooMatrix((2, 2), np.array([0]), np.array([0]), np.array([1.0, 2.0]))


def test_empty_constructor():
    m = CooMatrix.empty((10, 10), dtype=np.float32)
    assert m.nnz == 0
    assert m.dtype == np.float32


def test_sort_rowmajor_and_colmajor():
    m = make_matrix()
    m.sort_rowmajor()
    assert m.rows.tolist() == [0, 1, 2, 2]
    m.sort_colmajor()
    assert m.cols.tolist() == [0, 1, 3, 3]


def test_transpose():
    m = make_matrix()
    t = m.transpose()
    assert t.shape == (5, 4)
    assert set(zip(t.rows.tolist(), t.cols.tolist())) == {(1, 0), (3, 2), (0, 1)}


def test_select_mask():
    m = make_matrix()
    sel = m.select(m.values > 2.0)
    assert sel.nnz == 2
    with pytest.raises(ValueError):
        m.select(np.array([True]))


def test_submatrix_relabel():
    m = make_matrix()
    sub = m.submatrix((1, 3), (0, 4), relabel=True)
    assert sub.shape == (2, 4)
    assert set(zip(sub.rows.tolist(), sub.cols.tolist())) == {(0, 0), (1, 3)}


def test_submatrix_no_relabel():
    m = make_matrix()
    sub = m.submatrix((1, 3), (0, 4), relabel=False)
    assert sub.shape == m.shape
    assert set(sub.rows.tolist()) == {1, 2}


def test_with_offset():
    m = CooMatrix((2, 2), np.array([0]), np.array([1]), np.array([5.0]))
    big = m.with_offset(3, 4, (10, 10))
    assert big.rows.tolist() == [3]
    assert big.cols.tolist() == [5]


def test_deduplicate_last_wins():
    m = CooMatrix(
        (3, 3), np.array([0, 0, 1]), np.array([1, 1, 2]), np.array([1.0, 9.0, 2.0])
    )
    d = m.deduplicate()
    assert d.nnz == 2
    assert d.values[d.rows == 0][0] == 9.0


def test_deduplicate_with_semiring_counts():
    m = CooMatrix(
        (3, 3),
        np.array([0, 0, 1]),
        np.array([1, 1, 2]),
        np.array([1, 1, 1], dtype=np.int64),
    )
    d = m.deduplicate(CountSemiring())
    assert d.nnz == 2
    assert sorted(d.values.tolist()) == [1, 2]


def test_todense_and_structured_rejection():
    m = make_matrix()
    dense = m.todense()
    assert dense[2, 3] == pytest.approx(6.0) or dense[2, 3] in (2.0, 4.0, 6.0)
    structured = CooMatrix(
        (2, 2), np.array([0]), np.array([0]), np.zeros(1, dtype=OVERLAP_DTYPE)
    )
    with pytest.raises(TypeError):
        structured.todense()


def test_equality_and_copy():
    m = make_matrix()
    c = m.copy()
    assert m == c
    c.values[0] += 1.0
    assert m != c
    assert m != "not a matrix"


def test_memory_bytes():
    m = make_matrix()
    assert m.memory_bytes() == m.rows.nbytes + m.cols.nbytes + m.values.nbytes
