"""Structured run tracing: non-perturbation, export schema, worker merge.

The tracing contract under test has three legs:

* **Non-perturbation** — a traced run is bit-identical to the same run
  untraced, per scheduler: records, edges, every deterministic ledger
  category and counter.  The recorder only ever appends to its own lists,
  and these tests are the proof.
* **Export schema** — the Chrome trace-event document is structurally
  valid (every complete event has ``ph``/``ts``/``dur``/``pid``/``tid``)
  and spans on one ``(pid, tid)`` row are disjoint or properly nested, so
  Perfetto renders them without overlap artifacts.
* **Worker merge** — process-scheduler workers journal spans into the
  per-block header; the parent merge preserves worker-pid attribution
  (≥ 2 worker pids on a multi-worker run) and a SIGKILLed run still
  exports a valid partial trace from the failure path.
"""

from __future__ import annotations

import json
import time as time_mod

import numpy as np
import pytest

from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.io.report import run_report
from repro.trace import (
    CHROME_NAME,
    JSONL_NAME,
    TraceRecorder,
    current_tracer,
    maybe_span,
    read_jsonl,
)
from repro.trace.__main__ import main as trace_cli
from repro.trace.recorder import NULL_SPAN

#: Ledger state that must be bit-identical with tracing on: the modeled
#: time categories plus the informational overlap category, and every
#: deterministic counter.  ``spgemm_measured`` (wall seconds) is excluded.
LEDGER_CATEGORIES = (
    "align", "spgemm", "comm", "cwait", "sparse_other", "io", "overlap_hidden",
)
LEDGER_COUNTERS = (
    "spgemm_flops", "bytes_sent", "bytes_received", "alignments", "alignment_cells",
)

#: SearchStats keys that legitimately differ between two executions of the
#: same run (wall clocks, per-run cache/lane identities, concurrency peaks).
NONCOMPARABLE_STATS_KEYS = frozenset(
    {
        "wall_seconds",
        "phase_seconds",
        "cache",
        "measured_align_seconds",
        "measured_discover_seconds",
        "peak_live_blocks",
        "peak_live_block_bytes",
        "process_lanes",
        "shm_peak_block_bytes",
        "shm_total_bytes",
    }
)

SCHEDULER_OVERRIDES = [
    pytest.param({}, id="serial"),
    pytest.param({"pre_blocking": True}, id="overlapped"),
    pytest.param(
        {"pre_blocking": True, "preblock_depth": 2, "preblock_workers": 2,
         "scheduler": "threaded"},
        id="threaded",
    ),
    pytest.param(
        {"pre_blocking": True, "preblock_depth": 2, "preblock_workers": 2,
         "scheduler": "process"},
        id="process",
    ),
]


def _run(seqs, fast_params, **overrides):
    return PastisPipeline(fast_params.replace(num_blocks=4, **overrides)).run(seqs)


def assert_traced_identical(untraced, traced):
    """Bit-identity of everything deterministic between a traced and an
    untraced execution of the same configuration."""
    assert np.array_equal(
        untraced.similarity_graph.edges, traced.similarity_graph.edges
    )
    assert len(untraced.block_records) == len(traced.block_records)
    for ra, rb in zip(untraced.block_records, traced.block_records):
        assert (ra.block_row, ra.block_col) == (rb.block_row, rb.block_col)
        assert (ra.candidates, ra.aligned_pairs, ra.similar_pairs) == (
            rb.candidates, rb.aligned_pairs, rb.similar_pairs
        )
        assert np.array_equal(ra.sparse_seconds_per_rank, rb.sparse_seconds_per_rank)
        assert np.array_equal(ra.align_seconds_per_rank, rb.align_seconds_per_rank)
    for category in LEDGER_CATEGORIES:
        assert np.array_equal(
            untraced.ledger.per_rank(category), traced.ledger.per_rank(category)
        ), f"ledger category {category!r} perturbed by tracing"
    for counter in LEDGER_COUNTERS:
        assert np.array_equal(
            untraced.ledger.counter_per_rank(counter),
            traced.ledger.counter_per_rank(counter),
        ), f"ledger counter {counter!r} perturbed by tracing"
    su, st = untraced.stats.as_dict(), traced.stats.as_dict()
    assert set(su) == set(st), "tracing changed the stats key set"
    for key in su:
        if key in NONCOMPARABLE_STATS_KEYS:
            continue
        assert su[key] == st[key], f"stats key {key!r} perturbed by tracing"


# ---------------------------------------------------------------------------
# recorder unit behavior
# ---------------------------------------------------------------------------


def test_recorder_span_and_counter_basics():
    rec = TraceRecorder()
    with rec.span("discover", "stage", lane="discover", block=(0, 1), nnz=7) as span:
        span.set(flops=12.0)
    rec.add_span("turnstile_wait", "wait", 1.0, 2.5, lane="discover")
    assert len(rec.spans) == 2
    first = rec.spans[0]
    assert first.name == "discover" and first.category == "stage"
    assert first.block == (0, 1)
    assert first.attrs_dict() == {"flops": 12.0, "nnz": 7}
    assert first.duration >= 0.0
    assert rec.spans[1].duration == 2.5 - 1.0

    rec.bump("ledger.align", 0.25)
    rec.bump("ledger.align", 0.25)
    rec.set_value("shm_total_bytes", 1024.0)
    assert rec.counters == []  # cumulative counters are not yet events
    rec.sample_counters(live_blocks=2.0)
    names = {c.name: c.value for c in rec.counters}
    assert names == {
        "live_blocks": 2.0, "ledger.align": 0.5, "shm_total_bytes": 1024.0,
    }
    summary = rec.summary()
    assert summary[("wait", "turnstile_wait")]["count"] == 1


def test_recorder_span_records_error_attribute():
    rec = TraceRecorder()
    with pytest.raises(ValueError):
        with rec.span("align", "stage"):
            raise ValueError("boom")
    assert rec.spans[0].attrs_dict()["error"] == "ValueError"


def test_maybe_span_disabled_is_shared_noop():
    handle = maybe_span(None, "discover", "stage", block=(0, 0), nnz=3)
    assert handle is NULL_SPAN
    with handle as h:
        h.set(anything=1)  # no-op, must not raise


def test_recorder_drain_and_merge_preserve_attribution():
    worker = TraceRecorder(epoch=123.0)
    worker.add_span("discover", "stage", 124.0, 125.0, lane="discover")
    worker.sample_counters(x=1.0)
    spans, counters = worker.drain()
    assert worker.spans == [] and worker.counters == []
    parent = TraceRecorder(epoch=123.0)
    parent.merge(spans, counters)
    assert parent.spans[0].pid == spans[0].pid  # pid baked in at record time
    assert parent.counters[0].name == "x"


def test_active_tracer_defaults_to_none():
    assert current_tracer() is None


# ---------------------------------------------------------------------------
# non-perturbation: traced == untraced, per scheduler
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("overrides", SCHEDULER_OVERRIDES)
def test_tracing_is_non_perturbing_per_scheduler(tiny_seqs, fast_params, overrides):
    untraced = _run(tiny_seqs, fast_params, **overrides)
    traced = _run(tiny_seqs, fast_params, trace=True, **overrides)
    assert untraced.trace is None
    assert traced.trace is not None and len(traced.trace.spans) > 0
    assert_traced_identical(untraced, traced)
    # the run's stage spans are all present
    by_name: dict[str, int] = {}
    for span in traced.trace.spans:
        by_name[span.name] = by_name.get(span.name, 0) + 1
    for stage in ("discover", "prune", "align", "accumulate"):
        assert by_name.get(stage, 0) == 4, f"missing {stage!r} spans: {by_name}"
    assert by_name.get("summa_stage", 0) > 0
    if overrides.get("scheduler") == "threaded":
        assert by_name.get("turnstile_wait", 0) == 4
        assert by_name.get("admission_wait", 0) == 4
    if overrides.get("scheduler") == "process":
        assert by_name.get("admission_wait", 0) == 4
        assert by_name.get("ledger_replay", 0) == 4
        worker_pids = {s.pid for s in traced.trace.spans if s.name == "discover"}
        assert traced.trace.pid not in worker_pids  # discovers ran off-parent


def test_phase_seconds_reported_with_and_without_tracing(tiny_seqs, fast_params):
    result = _run(tiny_seqs, fast_params)
    phases = result.stats.extras["phase_seconds"]
    assert {"input_io", "kmer_matrix", "stage_graph", "output_io"} <= set(phases)
    assert all(v >= 0.0 for v in phases.values())
    # tracing adds phase *spans* on top of the always-on registry timers
    traced = _run(tiny_seqs, fast_params, trace=True)
    phase_spans = {s.name for s in traced.trace.spans if s.category == "phase"}
    assert phase_spans == set(traced.stats.extras["phase_seconds"])


def test_ledger_counter_series_sampled_at_block_boundaries(tiny_seqs, fast_params):
    traced = _run(tiny_seqs, fast_params, trace=True)
    by_name: dict[str, list] = {}
    for sample in traced.trace.counters:
        by_name.setdefault(sample.name, []).append(sample.value)
    assert len(by_name["live_blocks"]) == 4  # one sample per block boundary
    # ledger totals accumulate monotonically across block boundaries, and the
    # last sampled value equals the ledger's own in-graph total for align
    align_series = by_name["ledger.align"]
    assert align_series == sorted(align_series)
    assert align_series[-1] == pytest.approx(
        float(traced.ledger.per_rank("align").sum())
    )


# ---------------------------------------------------------------------------
# export schema
# ---------------------------------------------------------------------------


def _assert_spans_disjoint_or_nested(rows):
    """Intervals sorted by start must close LIFO per (pid, tid)."""
    for (pid, tid), intervals in rows.items():
        intervals.sort(key=lambda iv: (iv[0], -iv[1]))
        stack: list[tuple[float, float]] = []
        for t0, t1 in intervals:
            while stack and t0 >= stack[-1][1]:
                stack.pop()
            if stack:
                assert t1 <= stack[-1][1], (
                    f"span [{t0}, {t1}] straddles [{stack[-1][0]}, "
                    f"{stack[-1][1]}] on row (pid={pid}, tid={tid})"
                )
            stack.append((t0, t1))


def test_chrome_export_schema_and_nesting(tmp_path, tiny_seqs, fast_params):
    trace_dir = tmp_path / "trace"
    result = _run(
        tiny_seqs, fast_params, trace_dir=str(trace_dir),
        pre_blocking=True, preblock_depth=2, preblock_workers=2,
        scheduler="threaded",
    )
    assert result.trace is not None
    document = json.loads((trace_dir / CHROME_NAME).read_text())
    events = document["traceEvents"]
    assert events, "empty trace document"
    rows: dict[tuple[int, int], list] = {}
    complete = counters = metadata = 0
    for event in events:
        assert "ph" in event and "pid" in event and "tid" in event
        if event["ph"] == "X":
            complete += 1
            assert "ts" in event and "dur" in event and event["dur"] >= 0.0
            assert "name" in event and "cat" in event
            rows.setdefault((event["pid"], event["tid"]), []).append(
                (event["ts"], event["ts"] + event["dur"])
            )
        elif event["ph"] == "C":
            counters += 1
            assert "value" in event["args"]
        elif event["ph"] == "M":
            metadata += 1
            assert event["name"] in ("process_name", "thread_name")
    assert complete == len(result.trace.spans)
    assert counters == len(result.trace.counters)
    assert metadata > 0
    _assert_spans_disjoint_or_nested(rows)


def test_jsonl_roundtrip_matches_recorder(tmp_path, tiny_seqs, fast_params):
    trace_dir = tmp_path / "trace"
    result = _run(tiny_seqs, fast_params, trace_dir=str(trace_dir))
    meta, spans, counters = read_jsonl(trace_dir / JSONL_NAME)
    assert meta["schema"] == 1
    assert meta["pid"] == result.trace.pid
    assert len(spans) == len(result.trace.spans)
    assert len(counters) == len(result.trace.counters)
    # relative times: everything recorded after the recorder was built
    assert all(s["t0"] >= 0.0 and s["t1"] >= s["t0"] for s in spans)


def test_failed_run_still_exports_valid_trace(
    tmp_path, tiny_seqs, fast_params, monkeypatch
):
    from repro.core.engine.schedulers import SerialScheduler

    def boom(self, tasks, ctx):
        raise RuntimeError("injected scheduler failure")

    monkeypatch.setattr(SerialScheduler, "run", boom)
    trace_dir = tmp_path / "trace"
    with pytest.raises(RuntimeError, match="injected scheduler failure"):
        PastisPipeline(
            fast_params.replace(num_blocks=4, trace_dir=str(trace_dir))
        ).run(tiny_seqs)
    # both documents exist and parse; the failing phase span carries the error
    document = json.loads((trace_dir / CHROME_NAME).read_text())
    _, spans, _ = read_jsonl(trace_dir / JSONL_NAME)
    assert document["traceEvents"]
    failed = [s for s in spans if s["name"] == "stage_graph"]
    assert failed and failed[0]["attrs"]["error"] == "RuntimeError"
    assert current_tracer() is None  # pipeline teardown deactivated the tracer


# ---------------------------------------------------------------------------
# process-scheduler worker merge (the acceptance-criterion run)
# ---------------------------------------------------------------------------


def test_process_warm_run_merges_spans_from_multiple_workers(
    tmp_path, tiny_seqs, fast_params, monkeypatch
):
    """A traced warm-cache process run produces a Chrome trace with spans
    from ≥ 2 worker pids, cache-replay spans and admission-wait spans —
    while staying bit-identical to the same run untraced."""
    from repro.core.engine.cache import StageCache

    params = fast_params.replace(
        num_blocks=6,
        pre_blocking=True,
        scheduler="process",
        preblock_depth=3,
        preblock_workers=2,
        cache_dir=str(tmp_path / "cache"),
    )
    PastisPipeline(params).run(tiny_seqs)  # cold: populate the cache

    # slow the per-block cache load slightly so both pool workers get blocks
    # (class-level patch: forked workers inherit it, same pattern as the
    # fault injection in test_engine.py)
    original_load = StageCache.load

    def slow_load(self, coords):
        time_mod.sleep(0.05)
        return original_load(self, coords)

    monkeypatch.setattr(StageCache, "load", slow_load)
    untraced = PastisPipeline(params).run(tiny_seqs, resume=True)
    trace_dir = tmp_path / "trace"
    traced = PastisPipeline(
        params.replace(trace_dir=str(trace_dir))
    ).run(tiny_seqs, resume=True)

    assert traced.stats.extras["cache"]["hits"] == 6
    assert_traced_identical(untraced, traced)

    spans = traced.trace.spans
    worker_pids = {s.pid for s in spans if s.name == "cache_load"}
    assert traced.trace.pid not in worker_pids
    assert len(worker_pids) >= 2, f"expected ≥2 worker pids, got {worker_pids}"
    assert sum(1 for s in spans if s.name == "cache_replay") == 6
    assert sum(1 for s in spans if s.name == "admission_wait") == 6
    # the exported chrome document names both worker processes
    document = json.loads((trace_dir / CHROME_NAME).read_text())
    process_names = {
        event["args"]["name"]
        for event in document["traceEvents"]
        if event["ph"] == "M" and event["name"] == "process_name"
    }
    workers_named = {n for n in process_names if n.startswith("discover-worker")}
    assert len(workers_named) >= 2


def test_sigkilled_process_run_exports_valid_partial_trace(
    tmp_path, small_seqs, fast_params, monkeypatch
):
    """A worker SIGKILL mid-run must still leave parseable trace documents
    (the pipeline's failure-path export)."""
    import os
    import signal
    import threading

    from repro.distsparse.blocked_summa import BlockedSpGemm

    calls = {"n": 0}
    original = BlockedSpGemm.compute_block

    def kamikaze(self, block_row, block_col):
        calls["n"] += 1
        if calls["n"] == 2:
            os.kill(os.getpid(), signal.SIGKILL)
        return original(self, block_row, block_col)

    monkeypatch.setattr(BlockedSpGemm, "compute_block", kamikaze)
    trace_dir = tmp_path / "trace"
    params = fast_params.replace(
        num_blocks=6,
        pre_blocking=True,
        scheduler="process",
        preblock_depth=3,
        preblock_workers=2,
        trace_dir=str(trace_dir),
    )
    outcome: list[BaseException] = []

    def run():
        try:
            PastisPipeline(params).run(small_seqs)
        except BaseException as exc:  # noqa: BLE001 - the assertion target
            outcome.append(exc)

    runner = threading.Thread(target=run)
    runner.start()
    runner.join(timeout=60.0)
    assert not runner.is_alive(), "killed traced run deadlocked in teardown"
    assert len(outcome) == 1 and isinstance(outcome[0], RuntimeError)
    # partial trace: valid JSON in both formats, phases recorded up to death
    document = json.loads((trace_dir / CHROME_NAME).read_text())
    meta, spans, _ = read_jsonl(trace_dir / JSONL_NAME)
    assert meta["schema"] == 1
    assert isinstance(document["traceEvents"], list)
    assert any(s["name"] == "kmer_matrix" for s in spans)
    assert current_tracer() is None


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


@pytest.fixture()
def traced_dirs(tmp_path, tiny_seqs, fast_params):
    """Two traced runs (serial / overlapped) for the CLI tests."""
    dir_a = tmp_path / "a"
    dir_b = tmp_path / "b"
    _run(tiny_seqs, fast_params, trace_dir=str(dir_a))
    _run(tiny_seqs, fast_params, trace_dir=str(dir_b), pre_blocking=True)
    return dir_a, dir_b


def test_cli_summarize(traced_dirs, capsys):
    dir_a, _ = traced_dirs
    assert trace_cli(["summarize", str(dir_a)]) == 0
    out = capsys.readouterr().out
    assert "discover" in out and "stage" in out and "spans" in out


def test_cli_export_produces_loadable_chrome_trace(traced_dirs, tmp_path, capsys):
    dir_a, _ = traced_dirs
    out_path = tmp_path / "exported.trace.json"
    assert trace_cli(["export", str(dir_a), "-o", str(out_path)]) == 0
    document = json.loads(out_path.read_text())
    assert {e["ph"] for e in document["traceEvents"]} >= {"X", "M"}
    # default output name derives from the source file
    assert trace_cli(["export", str(dir_a)]) == 0
    assert (dir_a / "trace.trace.json").exists()


def test_cli_diff(traced_dirs, capsys):
    dir_a, dir_b = traced_dirs
    assert trace_cli(["diff", str(dir_a), str(dir_b)]) == 0
    out = capsys.readouterr().out
    assert "delta" in out and "discover" in out


# ---------------------------------------------------------------------------
# report hoisting and table section (satellite)
# ---------------------------------------------------------------------------


def test_run_report_hoists_process_lane_keys(tiny_seqs, fast_params):
    result = _run(
        tiny_seqs, fast_params,
        pre_blocking=True, scheduler="process", preblock_workers=2,
        preblock_depth=2,
    )
    report = run_report(result.stats)
    lanes = result.stats.extras["process_lanes"]
    assert report["process_lane_count"] == len(lanes)
    assert report["process_lane_blocks"] == 4  # every block went through a lane
    assert report["process_lane_discover_seconds"] == pytest.approx(
        sum(float(lane["discover_seconds"]) for lane in lanes.values())
    )
    # the shm/memory gauges arrive flat through the ordinary extras merge
    assert "shm_peak_block_bytes" in report and "shm_total_bytes" in report
    assert "peak_live_blocks" in report

    table = result.stats.as_table()
    assert "Process lanes" in table
    assert "Discover workers" in table
    assert "Shm peak block / total" in table


def test_run_report_without_process_extras_has_no_lane_keys(tiny_seqs, fast_params):
    result = _run(tiny_seqs, fast_params)
    report = run_report(result.stats)
    assert "process_lane_count" not in report
    assert "process_lane_blocks" not in report
    assert "Process lanes" not in result.stats.as_table()


def test_trace_params_validation():
    with pytest.raises(ValueError, match="trace_dir"):
        PastisParams(trace_dir="   ")
    params = PastisParams(trace_dir="/tmp/somewhere")
    assert params.trace_enabled
    assert PastisParams(trace=True).trace_enabled
    assert not PastisParams().trace_enabled
