"""Tracing-overhead benchmark: traced vs. untraced pipeline wall time.

Tracing is designed to be cheap enough to leave on for any run someone
wants to inspect: span handles are slot-based context managers, ledger
hooks are single dictionary adds, and counter events only materialize at
block boundaries.  This benchmark quantifies that claim — the same seeded
workload runs untraced and traced (min over repeats, so transient noise
does not masquerade as overhead) — and writes
``benchmarks/results/BENCH_trace_overhead.json`` with both wall times,
the overhead ratio, and the traced run's span/counter volume.  The smoke
mode asserts the budget CI enforces: **under 5 % overhead** with tracing
on, and a trace artifact written next to the numbers.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset
from repro.trace import CHROME_NAME, write_trace

from _results import RESULTS_DIR, save_results

#: Same seeded workload as bench_pipeline/bench_cache, so artifacts are
#: comparable run-for-run across commits.
WORKLOAD = dict(
    n_sequences=120,
    family_fraction=0.75,
    mean_family_size=5.0,
    mutation_rate=0.09,
    fragment_probability=0.1,
    seed=97,
)

#: CI budget: a traced run may cost at most this much over an untraced one.
MAX_OVERHEAD_FRACTION = 0.05

#: number of (untraced, traced) measurement pairs.  The recorded hooks are
#: tiny (tens of spans, ~200 counter bumps per run), so the signal is far
#: below run-to-run machine noise; the estimator below is built to survive
#: that, not to need many samples.
REPEATS = 4


def _params(**overrides) -> PastisParams:
    return PastisParams(
        kmer_length=5,
        common_kmer_threshold=1,
        nodes=4,
        num_blocks=6,
        load_balancing="index",
        **overrides,
    )


def run_overhead_comparison(workload: dict, repeats: int = REPEATS) -> dict:
    """Paired traced/untraced wall-time comparison on one workload.

    Shared CI boxes drift by ±10 % over a measurement window — far more
    than tracing's real cost — and drift is roughly monotone in time, so
    whichever variant runs *second* in a pair looks slower.  Two
    countermeasures: the order within each pair alternates
    (untraced→traced, traced→untraced, ...) so drift penalizes each
    variant equally often, and the reported overhead is the **median** of
    the per-pair ratios, which a single noisy pair cannot move.
    """
    seqs = synthetic_dataset(config=SyntheticDatasetConfig(**workload))

    # one discarded warmup run so imports/allocator warmup don't contaminate
    # the first measured pair
    PastisPipeline(_params()).run(seqs)
    untraced_walls: list[float] = []
    traced_walls: list[float] = []
    ratios: list[float] = []
    traced = None
    for i in range(repeats):
        variants = [False, True] if i % 2 == 0 else [True, False]
        pair: dict[bool, float] = {}
        for with_trace in variants:
            result = PastisPipeline(_params(trace=with_trace)).run(seqs)
            pair[with_trace] = result.stats.wall_seconds
            if with_trace:
                traced = result
        untraced_walls.append(pair[False])
        traced_walls.append(pair[True])
        ratios.append(pair[True] / pair[False])
    ratios.sort()
    mid = len(ratios) // 2
    median_ratio = (
        ratios[mid] if len(ratios) % 2 else (ratios[mid - 1] + ratios[mid]) / 2
    )
    overhead = median_ratio - 1.0
    untraced_wall = min(untraced_walls)
    traced_wall = min(traced_walls)
    return {
        "workload": dict(workload),
        "repeats": repeats,
        "untraced_wall_seconds": untraced_wall,
        "traced_wall_seconds": traced_wall,
        "pair_ratios": ratios,
        "overhead_fraction": overhead,
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
        "spans_recorded": len(traced.trace.spans),
        "counter_samples_recorded": len(traced.trace.counters),
        "_traced_result": traced,  # stripped before serialization
    }


def _serializable(out: dict) -> dict:
    return {k: v for k, v in out.items() if not k.startswith("_")}


def _print_report(out: dict) -> None:
    header = f"{'variant':<10} {'wall s (min)':>14}"
    print(header)
    print("-" * len(header))
    print(f"{'untraced':<10} {out['untraced_wall_seconds']:>14.4f}")
    print(f"{'traced':<10} {out['traced_wall_seconds']:>14.4f}")
    print("pair ratios " + ", ".join(f"{r:.4f}" for r in out["pair_ratios"]))
    print(
        f"overhead {100 * out['overhead_fraction']:+.2f}% (median of pairs, "
        f"budget {100 * out['max_overhead_fraction']:.0f}%); "
        f"{out['spans_recorded']} spans, "
        f"{out['counter_samples_recorded']} counter samples"
    )


def _check(out: dict) -> None:
    assert out["spans_recorded"] > 0, "traced run recorded no spans"
    assert out["overhead_fraction"] < out["max_overhead_fraction"], (
        f"tracing overhead {100 * out['overhead_fraction']:.2f}% exceeds the "
        f"{100 * out['max_overhead_fraction']:.0f}% budget"
    )


def _export_artifact(out: dict) -> Path:
    """Write the traced run's Perfetto document into benchmarks/results/
    (picked up by the CI artifact upload alongside the JSON numbers)."""
    traced = out["_traced_result"]
    with tempfile.TemporaryDirectory(prefix="bench-trace-") as tmp:
        paths = write_trace(traced.trace, tmp)
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        artifact = RESULTS_DIR / "BENCH_trace_overhead.trace.json"
        artifact.write_text(Path(paths["chrome"]).read_text())
    return artifact


def test_trace_overhead_benchmark(benchmark, bench_sequences, bench_params):
    """Traced-pipeline benchmark plus the overhead comparison (pytest-benchmark)."""
    out = run_overhead_comparison(WORKLOAD)
    params = bench_params.replace(num_blocks=6, trace=True)
    benchmark(lambda: PastisPipeline(params).run(bench_sequences))
    benchmark.extra_info["overhead_fraction"] = out["overhead_fraction"]
    save_results("BENCH_trace_overhead", _serializable(out))
    _export_artifact(out)
    _print_report(out)
    _check(out)


def _smoke() -> None:
    """Standalone comparison (no pytest-benchmark needed) — used by CI."""
    out = run_overhead_comparison(WORKLOAD)
    _print_report(out)
    save_results("BENCH_trace_overhead", _serializable(out))
    artifact = _export_artifact(out)
    _check(out)
    print(f"smoke OK: tracing stays under the "
          f"{100 * MAX_OVERHEAD_FRACTION:.0f}% overhead budget; "
          f"Perfetto artifact at {artifact} ({CHROME_NAME} schema)")


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        _smoke()
    else:
        sys.exit("usage: python benchmarks/bench_trace_overhead.py --smoke "
                 "(full benchmarks run via: pytest benchmarks/ --benchmark-only)")
