"""Table I: the effect of pre-blocking for both load-balancing schemes.

Paper setup: block counts {10..50} on the 20M-sequence dataset; columns are
the align / sparse / sum / total times with and without pre-blocking, their
ratios, and the pre-blocking efficiency (max(align, sparse) / achieved
combined time).  Observed: pre-blocking cuts the total by ~30% (index) and
~20% (triangularity); its efficiency is ~95-98% for the index scheme and
~78-89% for the triangularity scheme (load imbalance hides the sparse work
less effectively).

Reproduction: the same table from the per-block, per-rank component times of
pipeline runs on the synthetic dataset.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import PastisPipeline
from repro.core.preblocking import PreblockingModel
from repro.io.tables import format_table

from _results import save_results

BLOCK_COUNTS = [4, 9, 16]


def run_sweep(bench_sequences, bench_params):
    model = PreblockingModel()
    series = []
    for scheme in ("index", "triangularity"):
        for blocks in BLOCK_COUNTS:
            params = bench_params.replace(num_blocks=blocks, load_balancing=scheme)
            result = PastisPipeline(params).run(bench_sequences)
            sparse = np.stack([r.sparse_seconds_per_rank for r in result.block_records])
            align = np.stack([r.align_seconds_per_rank for r in result.block_records])
            ledger = result.ledger
            other = (
                result.stats.time_total
                - ledger.component_time("align")
                - ledger.component_time("spgemm")
            )
            report = model.evaluate(sparse, align, other_seconds=max(other, 0.0))
            series.append(
                {
                    "scheme": scheme,
                    "blocks": blocks,
                    "align": report.align_seconds,
                    "sparse": report.sparse_seconds,
                    "sum": report.sum_seconds,
                    "total": report.total_seconds,
                    "align_pre": report.align_seconds_pre,
                    "sparse_pre": report.sparse_seconds_pre,
                    "combined_pre": report.combined_seconds_pre,
                    "total_pre": report.total_seconds_pre,
                    "norm_align": report.normalized_align,
                    "norm_sparse": report.normalized_sparse,
                    "norm_total": report.normalized_total,
                    "efficiency_pct": report.efficiency_percent,
                }
            )
    print("\nTable I — effect of pre-blocking (modelled seconds)")
    print(
        format_table(
            [
                "scheme", "blocks", "align", "sparse", "sum", "total",
                "align(pre)", "sparse(pre)", "sum(pre)", "total(pre)",
                "n.align", "n.sparse", "n.total", "eff %",
            ],
            [
                [
                    s["scheme"], s["blocks"], s["align"], s["sparse"], s["sum"], s["total"],
                    s["align_pre"], s["sparse_pre"], s["combined_pre"], s["total_pre"],
                    s["norm_align"], s["norm_sparse"], s["norm_total"], s["efficiency_pct"],
                ]
                for s in series
            ],
            precision=5,
        )
    )
    save_results("table1_preblocking", series)
    return series


def test_table1_preblocking(benchmark, bench_sequences, bench_params):
    series = benchmark.pedantic(
        run_sweep, args=(bench_sequences, bench_params), rounds=1, iterations=1
    )
    for s in series:
        # pre-blocking inflates the individual components ...
        assert s["norm_align"] >= 1.0
        assert s["norm_sparse"] >= 1.0
        # ... but never beyond running them back to back
        assert s["combined_pre"] <= s["align_pre"] + s["sparse_pre"] + 1e-12
        assert 0.0 < s["efficiency_pct"] <= 100.0
    # the index scheme's better load balance gives it a lower (or equal)
    # overlapped align+sparse time than the triangularity scheme at every
    # block count.  (The paper additionally reports a higher pre-blocking
    # *efficiency* for the index scheme; at 4 virtual ranks the triangularity
    # scheme's alignment is so concentrated on few ranks that its sparse work
    # hides trivially behind it, so that particular ordering does not emerge
    # at toy scale — see EXPERIMENTS.md.)
    by_key = {(s["scheme"], s["blocks"]): s for s in series}
    for blocks in BLOCK_COUNTS:
        assert (
            by_key[("index", blocks)]["combined_pre"]
            <= by_key[("triangularity", blocks)]["combined_pre"] * 1.05
        )
