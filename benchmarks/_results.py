"""Shared benchmark result writer: stamped JSON + the bench trajectory.

Every benchmark persists its series through :func:`save_results`, which

* stamps dict-shaped results with a ``meta`` block (result schema
  version, bench name, host fingerprint, git revision, timestamp) so
  ``python -m repro.obs regress`` can match baselines per bench and per
  host; and
* appends the flattened numeric view of the result as one line to
  ``benchmarks/results/trajectory.jsonl`` — the append-only perf
  trajectory that turns forgotten ``BENCH_*.json`` snapshots into
  baselines (``regress`` reads ``*.jsonl`` baselines natively).

Non-dict series (figure point lists) are written unchanged and skipped
by the trajectory: they carry no comparable scalars.  Benchmarks that
call :func:`save_results` more than once per run (progressive writes)
append one trajectory entry per call; entries from the same run carry
the same values, so the median-based detector is unaffected.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.io.report import save_json
from repro.obs.manifest import git_revision, host_fingerprint
from repro.obs.regress import flatten_numeric

#: bump when the meta block or trajectory entry shape changes incompatibly
BENCH_SCHEMA_VERSION = 1

RESULTS_DIR = Path(__file__).parent / "results"
TRAJECTORY_PATH = RESULTS_DIR / "trajectory.jsonl"


def result_meta(name: str) -> dict:
    """The stamp attached to every dict-shaped benchmark result."""
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "bench": name,
        "host": host_fingerprint(),
        "git_revision": git_revision(),
        "timestamp": time.time(),
    }


def save_results(name: str, data) -> None:
    """Persist a benchmark's series under benchmarks/results/<name>.json."""
    if isinstance(data, dict):
        data = {**data, "meta": result_meta(name)}
    save_json(data, RESULTS_DIR / f"{name}.json")
    if isinstance(data, dict):
        append_trajectory(name, data)


def append_trajectory(name: str, stamped: dict, path: Path | None = None) -> None:
    """Append one flattened entry for a stamped result to the trajectory."""
    meta = stamped.get("meta") or {}
    entry = {
        "schema": BENCH_SCHEMA_VERSION,
        "bench": name,
        "timestamp": meta.get("timestamp"),
        "git_revision": meta.get("git_revision"),
        "host_fingerprint": (meta.get("host") or {}).get("fingerprint"),
        "metrics": flatten_numeric(stamped),
    }
    path = TRAJECTORY_PATH if path is None else path
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
