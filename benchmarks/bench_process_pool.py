"""Measured-clock scheduler x workers x kernel sweep of the process executor.

``bench_overlap_depth.py`` sweeps the *threaded* executor's depth axis; this
bench pits the two real executors against each other on the axis that
separates them: the GIL.  The threaded discover lane only overlaps to the
extent the SpGEMM kernels release the GIL; the
:class:`~repro.core.engine.process_executor.ProcessScheduler` runs the lane
in worker processes with shared-memory block transport, so the overlap
survives pure-Python stage orchestration at the cost of fork + shm-mapping
overhead per block.

The sweep crosses scheduler {threaded, process} x discover workers x local
SpGEMM kernel ({gustavson} plus ``gustavson-numba`` when the optional numba
extra is installed — ``pip install .[fast]``), all at speculative depth 2
under ``clock="measured"``.  Every configuration is asserted bit-identical
to the serial baseline — scheduler, worker count and kernel may move wall
time, never results.

Reported per row (same semantics as bench_overlap_depth):

* ``wall_speedup`` — serial stage-loop wall seconds over the executor's
  (best of ``repeats``); needs >= 2 usable cores to materialize, so the
  smoke asserts it only when the machine has them.
* ``schedule_speedup`` — the depth-k overlap algebra on the measured
  per-rank stage seconds: how much of the discover lane the schedule hid.
* process rows add ``shm_peak_block_bytes`` / ``shm_total_bytes`` — the
  shared-memory transport footprint surfaced by the executor.

Writes ``benchmarks/results/BENCH_process_pool.json``; CI runs ``--smoke``
and uploads the JSON as a workflow artifact.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset
from repro.sparse.kernels import available_kernels

from _results import save_results

#: Substitute-k-mer seeding keeps the discover lane a large share of the
#: phase — the regime where moving it off the GIL can pay (same workload as
#: the depth sweep, so the two benches are comparable).
WORKLOAD = dict(
    n_sequences=90,
    family_fraction=0.75,
    mean_family_size=5.0,
    mutation_rate=0.09,
    fragment_probability=0.1,
    seed=97,
)
SCHEDULERS = ("threaded", "process")
WORKERS = (1, 2)
DEPTH = 2


def _kernels() -> tuple[str, ...]:
    """Pure-NumPy gustavson always; the compiled backend when registered."""
    kernels = ["gustavson"]
    if "gustavson-numba" in available_kernels():
        kernels.append("gustavson-numba")
    return tuple(kernels)


def _params(**overrides) -> PastisParams:
    return PastisParams(
        kmer_length=6,
        substitute_kmers=2,
        common_kmer_threshold=2,
        nodes=4,
        num_blocks=8,
        clock="measured",
        **overrides,
    )


def _run(seqs, params, repeats: int):
    """Best stage-loop wall seconds over ``repeats`` runs + the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        result = PastisPipeline(params).run(seqs)
        best = min(best, result.timeline.measured_phase_seconds)
    return best, result


def _schedule_speedup(result) -> float:
    """sum(align + spgemm) / combined clock on the run's measured seconds."""
    ledger = result.ledger
    summed = float((ledger.per_rank("align") + ledger.per_rank("spgemm")).max())
    combined = float(result.timeline.combined_per_rank.max())
    return summed / combined if combined > 0 else 1.0


def run_pool_sweep(
    schedulers=SCHEDULERS,
    workers=WORKERS,
    kernels: tuple[str, ...] | None = None,
    repeats: int = 2,
    workload=WORKLOAD,
) -> dict:
    """Serial baseline per kernel + scheduler x workers x kernel sweep."""
    if kernels is None:
        kernels = _kernels()
    seqs = synthetic_dataset(config=SyntheticDatasetConfig(**workload))

    serials = {}
    reference_edges = None
    for kernel in kernels:
        best, result = _run(seqs, _params(spgemm_backend=kernel), repeats)
        edges = result.similarity_graph.edges
        if reference_edges is None:
            reference_edges = edges
        else:
            # the kernels themselves are bit-identical backends
            assert np.array_equal(edges, reference_edges), (
                f"kernel {kernel}: serial results diverged across kernels"
            )
        serials[kernel] = {
            "phase_seconds": best,
            "measured_discover_seconds": result.stats.extras[
                "measured_discover_seconds"
            ],
            "measured_align_seconds": result.stats.extras["measured_align_seconds"],
        }

    rows = []
    for kernel in kernels:
        for scheduler in schedulers:
            for nworkers in workers:
                best, result = _run(
                    seqs,
                    _params(
                        spgemm_backend=kernel,
                        pre_blocking=True,
                        preblock_depth=DEPTH,
                        preblock_workers=nworkers,
                        scheduler=scheduler,
                    ),
                    repeats,
                )
                assert result.scheduler == scheduler
                assert np.array_equal(
                    result.similarity_graph.edges, reference_edges
                ), (
                    f"scheduler={scheduler} workers={nworkers} kernel={kernel}: "
                    "results diverged from serial"
                )
                row = {
                    "scheduler": scheduler,
                    "workers": nworkers,
                    "kernel": kernel,
                    "phase_seconds": best,
                    "wall_speedup": serials[kernel]["phase_seconds"] / best,
                    "schedule_speedup": _schedule_speedup(result),
                    "peak_live_blocks": result.stats.extras["peak_live_blocks"],
                }
                if scheduler == "process":
                    row["shm_peak_block_bytes"] = result.stats.extras[
                        "shm_peak_block_bytes"
                    ]
                    row["shm_total_bytes"] = result.stats.extras["shm_total_bytes"]
                rows.append(row)

    best_row = max(rows, key=lambda r: r["wall_speedup"])
    return {
        "workload": dict(workload),
        "repeats": repeats,
        "depth": DEPTH,
        "kernels": list(kernels),
        "cpu_count": os.cpu_count(),
        "usable_cpus": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count(),
        "serial": serials,
        "rows": rows,
        "best_wall_speedup": best_row["wall_speedup"],
        "best_config": {
            "scheduler": best_row["scheduler"],
            "workers": best_row["workers"],
            "kernel": best_row["kernel"],
        },
    }


def _print_report(out: dict) -> None:
    for kernel, serial in out["serial"].items():
        print(
            f"serial[{kernel}] phase {serial['phase_seconds']:.2f}s "
            f"(discover {serial['measured_discover_seconds']:.2f}s, "
            f"align {serial['measured_align_seconds']:.2f}s)"
        )
    print(f"{out['usable_cpus']} usable CPUs, depth={out['depth']}")
    header = (
        f"{'scheduler':>9} {'workers':>7} {'kernel':>15} {'phase s':>8} "
        f"{'wall x':>7} {'sched x':>8} {'shm peak':>10}"
    )
    print(header)
    print("-" * len(header))
    for row in out["rows"]:
        shm = row.get("shm_peak_block_bytes")
        print(
            f"{row['scheduler']:>9} {row['workers']:>7} {row['kernel']:>15} "
            f"{row['phase_seconds']:>8.2f} {row['wall_speedup']:>7.2f} "
            f"{row['schedule_speedup']:>8.2f} "
            f"{'-' if shm is None else f'{shm:.0f}':>10}"
        )
    best = out["best_config"]
    print(
        f"best wall speedup x{out['best_wall_speedup']:.2f} at "
        f"scheduler={best['scheduler']} workers={best['workers']} "
        f"kernel={best['kernel']}"
    )


def _assert_invariants(out: dict) -> None:
    for row in out["rows"]:
        label = f"{row['scheduler']} workers={row['workers']} kernel={row['kernel']}"
        assert row["peak_live_blocks"] <= out["depth"] + 1, (
            f"{label}: accumulator admitted more than depth+1 blocks"
        )
        assert row["schedule_speedup"] > 1.0, (
            f"{label}: the executed schedule hid nothing"
        )
        if row["scheduler"] == "process":
            # shm transport actually carried the blocks
            assert row["shm_total_bytes"] >= row["shm_peak_block_bytes"] > 0, label


def _remeasure_best(out: dict, repeats: int = 3) -> float:
    """Re-measure serial vs. the best process config back to back.

    Shared CI hardware is noisy; before declaring the process overlap gone,
    re-run the contenders head to head with more repeats.
    """
    seqs = synthetic_dataset(config=SyntheticDatasetConfig(**out["workload"]))
    process_rows = [r for r in out["rows"] if r["scheduler"] == "process"]
    best = max(process_rows, key=lambda r: r["wall_speedup"])
    serial_best, _ = _run(
        seqs, _params(spgemm_backend=best["kernel"]), repeats
    )
    process_best, _ = _run(
        seqs,
        _params(
            spgemm_backend=best["kernel"],
            pre_blocking=True,
            preblock_depth=DEPTH,
            preblock_workers=best["workers"],
            scheduler="process",
        ),
        repeats,
    )
    return serial_best / process_best


def test_process_pool_benchmark(benchmark):
    """Scheduler x workers x kernel sweep (pytest-benchmark wrapper)."""
    out = run_pool_sweep(repeats=2)
    save_results("BENCH_process_pool", out)
    _print_report(out)
    _assert_invariants(out)
    seqs = synthetic_dataset(config=SyntheticDatasetConfig(**WORKLOAD))
    params = _params(
        pre_blocking=True, preblock_depth=DEPTH, preblock_workers=2,
        scheduler="process",
    )
    benchmark(lambda: PastisPipeline(params).run(seqs))
    benchmark.extra_info["best_wall_speedup"] = out["best_wall_speedup"]


def _smoke() -> None:
    """Standalone sweep (reduced grid) — used by CI."""
    out = run_pool_sweep(workers=(2,), repeats=2)
    _print_report(out)
    save_results("BENCH_process_pool", out)
    _assert_invariants(out)
    process_rows = [r for r in out["rows"] if r["scheduler"] == "process"]
    best_process = max(r["wall_speedup"] for r in process_rows)
    if out["usable_cpus"] >= 2:
        # acceptance: the process pool beats serial by a real margin once
        # the lanes can actually run in parallel
        if best_process <= 1.3:
            best_process = max(best_process, _remeasure_best(out))
            out["remeasured_process_wall_speedup"] = best_process
            save_results("BENCH_process_pool", out)
        assert best_process > 1.3, (
            "process executor wall speedup x"
            f"{best_process:.2f} <= 1.3 on a {out['usable_cpus']}-CPU machine "
            "(even after re-measuring)"
        )
        print(
            f"smoke OK: process pool wall speedup x{best_process:.2f} over "
            "serial; schedule hid background work in every configuration"
        )
    else:
        # one usable core: the speculative worker time-slices against the
        # foreground lane, so every in-order block round-trip runs at a
        # fraction of native speed — a ~2x slowdown is the *expected* cost
        # of oversubscribing one core, not an executor bug.  The floor only
        # guards against a pathological regression (deadlock-adjacent
        # stalls, per-block fork storms); the real gates on this machine
        # are bit-identity and the schedule invariants above.
        assert best_process > 0.25, (
            "process executor overhead is pathological on one core "
            f"(x{best_process:.2f})"
        )
        print(
            "smoke OK (single CPU: wall speedup not asserted, process best "
            f"x{best_process:.2f}); schedule hid background work in every "
            "configuration"
        )


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        _smoke()
    else:
        sys.exit("usage: python benchmarks/bench_process_pool.py --smoke "
                 "(full benchmarks run via: pytest benchmarks/ --benchmark-only)")
