"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md's experiment index).  Each prints a paper-style table to
stdout (run with ``pytest benchmarks/ --benchmark-only -s`` to see them) and
writes the underlying series to ``benchmarks/results/*.json`` so
EXPERIMENTS.md can reference the numbers.

Datasets are small synthetic surrogates; the quantities compared against the
paper are *shapes* (who wins, by what factor, how trends move with the number
of blocks / nodes), not absolute seconds — see EXPERIMENTS.md for the
paper-vs-measured discussion.
"""

from __future__ import annotations

import pytest

from repro.core.params import PastisParams
from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset

# the writer lives in _results.py (stamped meta + the bench trajectory);
# re-exported here for backward compatibility with `from conftest import ...`
from _results import RESULTS_DIR, save_results  # noqa: F401


@pytest.fixture(scope="session")
def bench_sequences():
    """The dataset used by the figure/table benchmarks (~120 sequences)."""
    config = SyntheticDatasetConfig(
        n_sequences=120,
        family_fraction=0.75,
        mean_family_size=5.0,
        mutation_rate=0.09,
        fragment_probability=0.1,
        seed=97,
    )
    return synthetic_dataset(config=config)


@pytest.fixture(scope="session")
def bench_params() -> PastisParams:
    """Baseline pipeline parameters for the benchmarks."""
    return PastisParams(
        kmer_length=5,
        common_kmer_threshold=1,
        nodes=4,
        num_blocks=4,
        load_balancing="index",
        pre_blocking=False,
        align_batch_size=128,
    )
