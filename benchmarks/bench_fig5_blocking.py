"""Figure 5: effect of the number of blocks on the runtime of each component.

Paper setup: 20M sequences on 100 Summit nodes, block counts 1..40; observed
behaviour: relative to a single block, alignment time grows by ~10-15%, the
sparse multiply by ~40-45%, and the overall runtime by ~30%, while the peak
memory of the overlap matrix shrinks with the number of blocks (the search
could not even run with one block on fewer nodes).

Reproduction: the same sweep on the synthetic dataset and 4 virtual nodes,
reporting modelled component times (sparse multiply, other sparse work,
alignment, other) and the peak per-block memory.
"""

from __future__ import annotations

from repro.core.pipeline import PastisPipeline
from repro.io.tables import format_table

from _results import save_results

BLOCK_COUNTS = [1, 2, 4, 9, 16, 25]


def run_sweep(bench_sequences, bench_params):
    rows = []
    series = []
    for blocks in BLOCK_COUNTS:
        params = bench_params.replace(num_blocks=blocks, load_balancing="index")
        result = PastisPipeline(params).run(bench_sequences)
        stats = result.stats
        other = stats.time_total - stats.time_align - stats.time_sparse_all
        record = {
            "blocks": blocks,
            "sparse_mult": stats.time_spgemm,
            "sparse_other": stats.time_sparse_all - stats.time_spgemm,
            "align": stats.time_align,
            "other": max(other, 0.0),
            "total": stats.time_total,
            "peak_block_bytes": stats.peak_block_bytes,
            "candidates": stats.candidates_discovered,
        }
        series.append(record)
        rows.append(
            [
                blocks,
                record["sparse_mult"],
                record["sparse_other"],
                record["align"],
                record["other"],
                record["total"],
                record["peak_block_bytes"],
            ]
        )
    baseline = series[0]
    print("\nFigure 5 — component runtime vs number of blocks (modelled seconds)")
    print(
        format_table(
            ["blocks", "sparse(mult)", "sparse(other)", "align", "other", "total", "peak block B"],
            rows,
            precision=5,
        )
    )
    last = series[-1]
    print(
        f"\nshape check (paper: align +10-15%, sparse(mult) +40-45%, total +~30% at 40 blocks):\n"
        f"  align   x{last['align'] / baseline['align']:.2f}\n"
        f"  sparse  x{last['sparse_mult'] / baseline['sparse_mult']:.2f}\n"
        f"  total   x{last['total'] / baseline['total']:.2f}\n"
        f"  peak block memory x{last['peak_block_bytes'] / max(baseline['peak_block_bytes'], 1):.2f} "
        f"(paper: single block does not fit in memory at all)"
    )
    save_results("fig5_blocking", series)
    return series


def test_fig5_blocking_sweep(benchmark, bench_sequences, bench_params):
    series = benchmark.pedantic(
        run_sweep, args=(bench_sequences, bench_params), rounds=1, iterations=1
    )
    baseline, last = series[0], series[-1]
    # the paper's qualitative claims
    assert last["peak_block_bytes"] < baseline["peak_block_bytes"]
    assert last["sparse_mult"] >= baseline["sparse_mult"] * 0.95
    assert last["total"] >= baseline["total"] * 0.95
    # identical search results regardless of blocking
    assert last["candidates"] >= baseline["candidates"] * 0.99
