"""Kernel microbenchmarks: the calibration anchors of the hardware model.

These are not paper figures; they measure the reproduction's own kernels —
the batched Smith-Waterman wavefront (CUPS of the Python "device") and the
semiring SpGEMM (partial products per second) — so the gap between the
measured Python rates and the modelled Summit rates used by the pipeline's
"modeled" clock is explicit and documented (see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from repro.align.batch import batch_smith_waterman
from repro.sequences.synthetic import synthetic_dataset
from repro.sparse.coo import CooMatrix
from repro.sparse.semiring import CountSemiring, OverlapSemiring
from repro.sparse.spgemm import spgemm

from conftest import save_results


def test_batch_smith_waterman_throughput(benchmark):
    seqs = synthetic_dataset(n_sequences=64, seed=33)
    a_list = [seqs.codes(i) for i in range(0, 32)]
    b_list = [seqs.codes(i) for i in range(32, 64)]

    result = benchmark(batch_smith_waterman, a_list, b_list)
    cells = int(result["cells"].sum())
    mcups = cells / benchmark.stats["mean"] / 1e6
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["measured_mcups"] = mcups
    save_results("kernel_batch_sw", {"cells": cells, "measured_mcups": mcups})
    assert cells > 0
    assert np.all(result["score"] >= 0)


def test_overlap_spgemm_throughput(benchmark):
    rng = np.random.default_rng(7)
    n, k, nnz = 400, 4000, 12000
    a = CooMatrix(
        (n, k), rng.integers(0, n, nnz), rng.integers(0, k, nnz),
        rng.integers(0, 90, nnz).astype(np.int32),
    ).deduplicate()
    at = a.transpose()

    def multiply():
        return spgemm(a, at, OverlapSemiring(), return_stats=True)

    _, stats = benchmark(multiply)
    products_per_second = stats.flops / benchmark.stats["mean"]
    benchmark.extra_info["flops"] = stats.flops
    benchmark.extra_info["compression_factor"] = stats.compression_factor
    benchmark.extra_info["products_per_second"] = products_per_second
    save_results(
        "kernel_spgemm",
        {
            "flops": stats.flops,
            "output_nnz": stats.output_nnz,
            "compression_factor": stats.compression_factor,
            "products_per_second": products_per_second,
        },
    )
    assert stats.flops > 0
    assert stats.compression_factor >= 1.0


def test_count_spgemm_scales_with_nnz(benchmark):
    rng = np.random.default_rng(11)
    n, k, nnz = 600, 8000, 30000
    a = CooMatrix(
        (n, k), rng.integers(0, n, nnz), rng.integers(0, k, nnz), np.ones(nnz, dtype=np.int64)
    ).deduplicate()
    at = a.transpose()
    result = benchmark(spgemm, a, at, CountSemiring())
    assert result.nnz > 0
