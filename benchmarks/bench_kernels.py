"""Kernel microbenchmarks: the calibration anchors of the hardware model.

These are not paper figures; they measure the reproduction's own kernels —
the batched Smith-Waterman wavefront (CUPS of the Python "device") and the
semiring SpGEMM (partial products per second) — so the gap between the
measured Python rates and the modelled Summit rates used by the pipeline's
"modeled" clock is explicit and documented (see EXPERIMENTS.md).
"""

from __future__ import annotations

import time

import numpy as np

from repro.align.batch import batch_smith_waterman
from repro.sequences.synthetic import synthetic_dataset
from repro.sparse.coo import CooMatrix
from repro.sparse.kernels import available_kernels, get_kernel, kernel_supports_semiring
from repro.sparse.semiring import CountSemiring, OverlapSemiring
from repro.sparse.spgemm import spgemm

from _results import save_results


def test_batch_smith_waterman_throughput(benchmark):
    seqs = synthetic_dataset(n_sequences=64, seed=33)
    a_list = [seqs.codes(i) for i in range(0, 32)]
    b_list = [seqs.codes(i) for i in range(32, 64)]

    result = benchmark(batch_smith_waterman, a_list, b_list)
    cells = int(result["cells"].sum())
    mcups = cells / benchmark.stats["mean"] / 1e6
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["measured_mcups"] = mcups
    save_results("kernel_batch_sw", {"cells": cells, "measured_mcups": mcups})
    assert cells > 0
    assert np.all(result["score"] >= 0)


def test_overlap_spgemm_throughput(benchmark):
    a, at = _overlap_operand(n=400, k=4000, nnz=12000, seed=7)

    def multiply():
        return spgemm(a, at, OverlapSemiring(), return_stats=True)

    _, stats = benchmark(multiply)
    products_per_second = stats.flops / benchmark.stats["mean"]
    benchmark.extra_info["flops"] = stats.flops
    benchmark.extra_info["compression_factor"] = stats.compression_factor
    benchmark.extra_info["products_per_second"] = products_per_second
    save_results(
        "kernel_spgemm",
        {
            "flops": stats.flops,
            "output_nnz": stats.output_nnz,
            "compression_factor": stats.compression_factor,
            "products_per_second": products_per_second,
        },
    )
    assert stats.flops > 0
    assert stats.compression_factor >= 1.0


def _overlap_operand(n, k, nnz, seed):
    """A k-mer-position-like matrix whose A·Aᵀ has a high compression factor."""
    rng = np.random.default_rng(seed)
    a = CooMatrix(
        (n, k), rng.integers(0, n, nnz), rng.integers(0, k, nnz),
        rng.integers(0, 90, nnz).astype(np.int32),
    ).deduplicate()
    return a, a.transpose()


# high-compression-factor operand used by the head-to-head and its
# pytest-benchmark timing (keep the two in sync)
HEAD_TO_HEAD_CASE = dict(n=300, k=40, nnz=4000, seed=5)


def spgemm_backend_head_to_head(n, k, nnz, seed, repeats=3):
    """Run ``C = A·Aᵀ`` through every registered backend and compare.

    Returns per-backend timing and :class:`SpGemmStats` numbers; asserts the
    outputs agree bit-for-bit, so the comparison is purely about resources.
    """
    a, at = _overlap_operand(n, k, nnz, seed)
    semiring = OverlapSemiring()
    report = {}
    baseline = None
    for name in available_kernels():
        kernel = get_kernel(name)
        if not kernel_supports_semiring(kernel, semiring):
            continue  # e.g. the scipy backend, plain-arithmetic only
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            result, stats = kernel(a, at, semiring, return_stats=True)
            best = min(best, time.perf_counter() - t0)
        if baseline is None:
            baseline = result
        else:
            assert result == baseline, f"backend {name!r} disagrees with the others"
        report[name] = {
            "seconds": best,
            "flops": stats.flops,
            "output_nnz": stats.output_nnz,
            "compression_factor": stats.compression_factor,
            "intermediate_bytes": stats.intermediate_bytes,
            "products_per_second": stats.flops / best if best else 0.0,
        }
    return report


def test_spgemm_backend_head_to_head(benchmark):
    """Expand vs Gustavson on a high-compression-factor overlap product."""
    report = spgemm_backend_head_to_head(**HEAD_TO_HEAD_CASE)
    # also time the challenger under pytest-benchmark so the head-to-head is
    # collected by the documented `pytest benchmarks/ --benchmark-only` run
    a, at = _overlap_operand(**HEAD_TO_HEAD_CASE)
    benchmark(get_kernel("gustavson"), a, at, OverlapSemiring(), return_stats=True)
    for name, row in report.items():
        benchmark.extra_info[f"{name}_intermediate_bytes"] = row["intermediate_bytes"]
        benchmark.extra_info[f"{name}_seconds"] = row["seconds"]
    save_results("kernel_spgemm_backends", report)
    expand, gustavson = report["expand"], report["gustavson"]
    # identical work and output accounting...
    assert gustavson["flops"] == expand["flops"] > 0
    assert gustavson["output_nnz"] == expand["output_nnz"] > 0
    assert expand["compression_factor"] > 2.0
    # ...but the Gustavson backend bounds its intermediate memory
    assert gustavson["intermediate_bytes"] < expand["intermediate_bytes"]


def test_count_spgemm_scales_with_nnz(benchmark):
    rng = np.random.default_rng(11)
    n, k, nnz = 600, 8000, 30000
    a = CooMatrix(
        (n, k), rng.integers(0, n, nnz), rng.integers(0, k, nnz), np.ones(nnz, dtype=np.int64)
    ).deduplicate()
    at = a.transpose()
    result = benchmark(spgemm, a, at, CountSemiring())
    assert result.nnz > 0


def _smoke() -> None:
    """Standalone head-to-head (no pytest-benchmark needed) — used by CI.

    Runs the same high-compression-factor case as the pytest head-to-head so
    the memory-bound guarantee is asserted on every CI run, not only when the
    benchmark suite is invoked by hand.
    """
    report = spgemm_backend_head_to_head(**HEAD_TO_HEAD_CASE, repeats=1)
    header = f"{'backend':<12} {'seconds':>10} {'flops':>8} {'nnz':>8} {'cf':>6} {'intermediate':>13}"
    print(header)
    print("-" * len(header))
    for name, row in report.items():
        print(
            f"{name:<12} {row['seconds']:>10.4f} {row['flops']:>8d} "
            f"{row['output_nnz']:>8d} {row['compression_factor']:>6.2f} "
            f"{row['intermediate_bytes']:>13d}"
        )
    assert report["gustavson"]["intermediate_bytes"] < report["expand"]["intermediate_bytes"]
    print("smoke OK: backends agree bit-for-bit; gustavson intermediate memory is lower")


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        _smoke()
    else:
        sys.exit("usage: python benchmarks/bench_kernels.py --smoke "
                 "(full benchmarks run via: pytest benchmarks/ --benchmark-only)")
