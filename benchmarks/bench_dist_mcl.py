"""Distributed Markov clustering benchmark: grid sizes x backends x overlap.

Runs the pipeline on the shared seeded workload, then sweeps
:class:`repro.graph.dist.DistMarkovClustering` over grid sizes, SpGEMM
backends and the overlapped schedule.  Asserts on every configuration that

* labels and the final matrix are **bit-identical** to single-rank MCL,
* the charged ``cluster_comm`` volume matches the closed-form broadcast
  model to the bit,
* the per-rank ledger reconciles with the simulated clock
  (``cluster_expand + cluster_prune − cluster_overlap_hidden == clock``),

and records the resource numbers: modeled expand/prune/comm seconds, bytes
moved, overlap-hidden time, and a strong-scaling projection of the stage
(:func:`repro.perfmodel.scaling.cluster_strong_scaling_series`).  Writes
``benchmarks/results/BENCH_dist_mcl.json``; CI runs ``--smoke`` on every
build and uploads the JSON as a workflow artifact.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.graph import (
    CLUSTER_COMM_CATEGORY,
    CLUSTER_EXPAND_CATEGORY,
    CLUSTER_OVERLAP_HIDDEN_CATEGORY,
    CLUSTER_PRUNE_CATEGORY,
    DistMarkovClustering,
    MarkovClustering,
    StochasticMatrix,
)
from repro.perfmodel.scaling import cluster_strong_scaling_series
from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset
from repro.sparse.kernels import available_kernels

from _results import save_results

#: The shared seeded workload of ``bench_pipeline.py`` / ``bench_graph.py``.
WORKLOAD = dict(
    n_sequences=120,
    family_fraction=0.75,
    mean_family_size=5.0,
    mutation_rate=0.09,
    fragment_probability=0.1,
    seed=97,
)

BACKENDS = tuple(
    k for k in ("expand", "gustavson", "auto", "scipy") if k in available_kernels()
)
GRID_SIZES = (1, 4, 9)
PROJECTION_NODES = [1, 4, 16, 64, 256]


def _search_matrix(workload: dict) -> StochasticMatrix:
    seqs = synthetic_dataset(config=SyntheticDatasetConfig(**workload))
    params = PastisParams(
        kmer_length=5, common_kmer_threshold=1, nodes=4, num_blocks=4,
        load_balancing="index",
    )
    result = PastisPipeline(params).run(seqs)
    return StochasticMatrix.from_similarity_graph(result.similarity_graph)


def run_dist_mcl_sweep(
    workload: dict,
    grid_sizes=GRID_SIZES,
    backends=BACKENDS,
    overlaps=(False, True),
    matrix: StochasticMatrix | None = None,
) -> dict:
    """Sweep grid sizes x backends x overlap on one seeded search output.

    ``matrix`` lets a caller that already ran the (deterministic) search
    reuse its transition matrix instead of paying for a second pipeline run.
    """
    if matrix is None:
        matrix = _search_matrix(workload)
    serial = MarkovClustering().fit(matrix)
    out = {
        "workload": dict(workload),
        "backends": list(backends),
        "grid_sizes": list(grid_sizes),
        "matrix": {"n": matrix.n, "nnz": matrix.nnz},
        "serial": {
            "n_clusters": serial.n_clusters,
            "n_iterations": serial.n_iterations,
            "converged": serial.converged,
        },
        "runs": [],
    }
    for nprocs in grid_sizes:
        for backend in backends:
            for overlap in overlaps:
                mcl = DistMarkovClustering(
                    nprocs=nprocs, spgemm_backend=backend, overlap=overlap
                )
                t0 = time.perf_counter()
                result = mcl.fit(matrix)
                wall = time.perf_counter() - t0
                assert np.array_equal(result.labels, serial.labels), (
                    f"grid {nprocs} backend {backend!r} labels diverge from serial MCL"
                )
                assert result.final_matrix.same_bits(serial.final_matrix), (
                    f"grid {nprocs} backend {backend!r} final matrix differs bitwise"
                )
                assert (
                    result.volume["charged_bytes_sent"]
                    == result.volume["predicted_bytes_sent"]
                ), f"grid {nprocs}: charged volume deviates from the closed form"
                ledger = result.ledger
                reconstructed = (
                    ledger.per_rank(CLUSTER_EXPAND_CATEGORY)
                    + ledger.per_rank(CLUSTER_PRUNE_CATEGORY)
                    - ledger.per_rank(CLUSTER_OVERLAP_HIDDEN_CATEGORY)
                )
                np.testing.assert_allclose(
                    reconstructed, result.clock_per_rank, rtol=1e-12
                )
                out["runs"].append(
                    {
                        "nprocs": nprocs,
                        "grid": f"{result.grid_dim}x{result.grid_dim}",
                        "backend": backend,
                        "overlap": overlap,
                        "wall_seconds": wall,
                        "n_iterations": result.n_iterations,
                        "flops": result.total_flops,
                        "expand_seconds": float(
                            ledger.per_rank(CLUSTER_EXPAND_CATEGORY).max()
                        ),
                        "prune_seconds": float(
                            ledger.per_rank(CLUSTER_PRUNE_CATEGORY).max()
                        ),
                        "comm_seconds": float(
                            ledger.per_rank(CLUSTER_COMM_CATEGORY).max()
                        ),
                        "overlap_hidden_seconds": float(
                            ledger.per_rank(CLUSTER_OVERLAP_HIDDEN_CATEGORY).max()
                        ),
                        "clock_seconds": float(result.clock_per_rank.max()),
                        "total_seconds": result.total_seconds(),
                        "bytes_sent": result.volume["charged_bytes_sent"],
                    }
                )
    iterate_bytes = matrix.nnz * 24.0
    out["strong_scaling_projection"] = {
        str(overlap): [
            p.as_dict()
            for p in cluster_strong_scaling_series(
                expand_flops=serial.total_flops,
                iterate_bytes=iterate_bytes,
                n_iterations=serial.n_iterations,
                node_counts=PROJECTION_NODES,
                overlap=overlap,
            )
        ]
        for overlap in (False, True)
    }
    return out


def _print_report(out: dict) -> None:
    print(
        f"matrix: n={out['matrix']['n']} nnz={out['matrix']['nnz']}; serial MCL: "
        f"{out['serial']['n_clusters']} clusters in {out['serial']['n_iterations']} iterations"
    )
    header = (
        f"{'grid':>5} {'backend':>10} {'overlap':>7} {'expand s':>10} {'prune s':>9} "
        f"{'comm s':>9} {'hidden s':>9} {'clock s':>9} {'MB sent':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in out["runs"]:
        print(
            f"{row['grid']:>5} {row['backend']:>10} {str(row['overlap']):>7} "
            f"{row['expand_seconds']:>10.4f} {row['prune_seconds']:>9.4f} "
            f"{row['comm_seconds']:>9.4f} {row['overlap_hidden_seconds']:>9.4f} "
            f"{row['clock_seconds']:>9.4f} {row['bytes_sent'] / 1e6:>8.2f}"
        )


def test_dist_mcl_benchmark(benchmark):
    """Full sweep + a pytest-benchmark timing of one 3x3 overlapped fit."""
    matrix = _search_matrix(WORKLOAD)
    out = run_dist_mcl_sweep(WORKLOAD, matrix=matrix)
    save_results("BENCH_dist_mcl", out)
    _print_report(out)
    benchmark(lambda: DistMarkovClustering(nprocs=9, overlap=True).fit(matrix))
    overlapped = [r for r in out["runs"] if r["overlap"] and r["nprocs"] > 1]
    assert all(r["overlap_hidden_seconds"] > 0 for r in overlapped)


def _smoke() -> None:
    """Reduced sweep (no pytest-benchmark needed) — used by CI."""
    out = run_dist_mcl_sweep(
        WORKLOAD, grid_sizes=(1, 4), backends=BACKENDS, overlaps=(False, True)
    )
    _print_report(out)
    save_results("BENCH_dist_mcl", out)
    overlapped = [r for r in out["runs"] if r["overlap"] and r["nprocs"] > 1]
    assert overlapped and all(r["overlap_hidden_seconds"] > 0 for r in overlapped), (
        "the overlapped cluster schedule stopped hiding time"
    )
    projection = out["strong_scaling_projection"]["True"]
    # the compute components must strong-scale; the toy workload's total is
    # latency-bound at large node counts (the broadcast alpha term grows
    # with br·sqrt(p)·log sqrt(p)), which is itself the paper's §VI-A point
    assert projection[0]["expand_seconds"] > projection[-1]["expand_seconds"], (
        "the cluster stage's expansion no longer projects to scale"
    )
    assert projection[-1]["comm_seconds"] > projection[0]["comm_seconds"], (
        "the blocked-SUMMA broadcast cost lost its node-count growth"
    )
    print(
        f"smoke OK: {len(out['runs'])} configurations bit-identical to serial MCL; "
        "volume model and ledger identity hold"
    )


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        _smoke()
    else:
        sys.exit("usage: python benchmarks/bench_dist_mcl.py --smoke "
                 "(full benchmarks run via: pytest benchmarks/ --benchmark-only)")
