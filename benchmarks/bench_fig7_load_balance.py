"""Figure 7: triangularity-based vs index-based load balancing.

Paper setup: 20M sequences, 64 nodes, block counts 5..50.  Four panels:

* (a) aligned pairs per process (min/avg/max) — the index-based scheme is
  better balanced at every block count, the triangularity-based scheme
  improves as the number of blocks grows;
* (b) aligned pair lengths (sum of DP-matrix sizes) — same trend;
* (c) alignment time — follows (b);
* (d) total time breakdown — the triangularity scheme does less sparse work
  and wins at high block counts despite its worse alignment balance.

Reproduction: same sweep on the synthetic dataset with 4 virtual ranks.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import PastisPipeline
from repro.io.tables import format_table
from repro.mpi.costmodel import TimeBreakdown

from _results import save_results

BLOCK_COUNTS = [4, 9, 16, 25]


def _minavgmax(values: np.ndarray) -> tuple[float, float, float]:
    tb = TimeBreakdown.from_values(values)
    return tb.minimum, tb.average, tb.maximum


def run_sweep(bench_sequences, bench_params):
    series = []
    for scheme in ("index", "triangularity"):
        for blocks in BLOCK_COUNTS:
            params = bench_params.replace(num_blocks=blocks, load_balancing=scheme)
            result = PastisPipeline(params).run(bench_sequences)
            pairs = np.zeros(params.nodes)
            cells = np.zeros(params.nodes)
            align_s = np.zeros(params.nodes)
            for rec in result.block_records:
                pairs += rec.pairs_per_rank
                cells += rec.cells_per_rank
                align_s += rec.align_seconds_per_rank
            stats = result.stats
            series.append(
                {
                    "scheme": scheme,
                    "blocks": blocks,
                    "pairs_min": _minavgmax(pairs)[0],
                    "pairs_avg": _minavgmax(pairs)[1],
                    "pairs_max": _minavgmax(pairs)[2],
                    "cells_min": _minavgmax(cells)[0],
                    "cells_avg": _minavgmax(cells)[1],
                    "cells_max": _minavgmax(cells)[2],
                    "align_time_max": _minavgmax(align_s)[2],
                    "align_imbalance_pct": TimeBreakdown.from_values(pairs).imbalance_percent,
                    "time_align": stats.time_align,
                    "time_sparse": stats.time_sparse_all,
                    "time_total": stats.time_total,
                    "aligned_pairs_total": stats.alignments_performed,
                    "similar_pairs": stats.similar_pairs,
                }
            )

    print("\nFigure 7a/b/c — load balance of aligned pairs / DP cells / alignment time")
    print(
        format_table(
            ["scheme", "blocks", "pairs min", "avg", "max", "imb %", "cells max", "align s (max)"],
            [
                [
                    s["scheme"], s["blocks"], s["pairs_min"], s["pairs_avg"], s["pairs_max"],
                    s["align_imbalance_pct"], s["cells_max"], s["align_time_max"],
                ]
                for s in series
            ],
            precision=2,
        )
    )
    print("\nFigure 7d — total time breakdown (modelled seconds)")
    print(
        format_table(
            ["scheme", "blocks", "align", "sparse", "total"],
            [[s["scheme"], s["blocks"], s["time_align"], s["time_sparse"], s["time_total"]] for s in series],
            precision=5,
        )
    )
    save_results("fig7_load_balance", series)
    return series


def test_fig7_load_balance(benchmark, bench_sequences, bench_params):
    series = benchmark.pedantic(
        run_sweep, args=(bench_sequences, bench_params), rounds=1, iterations=1
    )
    by_key = {(s["scheme"], s["blocks"]): s for s in series}
    for blocks in BLOCK_COUNTS:
        index = by_key[("index", blocks)]
        tri = by_key[("triangularity", blocks)]
        # both schemes perform the same number of alignments and find the same pairs
        assert index["aligned_pairs_total"] == tri["aligned_pairs_total"]
        assert index["similar_pairs"] == tri["similar_pairs"]
        # the index-based scheme is at least as well balanced in aligned pairs
        assert index["align_imbalance_pct"] <= tri["align_imbalance_pct"] + 1e-9
        # the triangularity-based scheme does less sparse work
        assert tri["time_sparse"] <= index["time_sparse"] * 1.001
    # triangularity imbalance improves (or stays equal) as blocks increase
    tri_imb = [by_key[("triangularity", b)]["align_imbalance_pct"] for b in BLOCK_COUNTS]
    assert tri_imb[-1] <= tri_imb[0] + 25.0
