"""Stage-cache benchmark: cold population vs. fully-warm replay.

Runs the full pipeline on a seeded synthetic workload twice against the
same cache directory — a cold run that stores every block and a warm run
that replays every block from disk — and writes a machine-readable
artifact, ``benchmarks/results/BENCH_cache.json``: wall seconds of both
runs, the warm/cold speedup, hit/miss/store counters, and the on-disk
footprint of the cache.  The smoke mode additionally asserts the cache
contract CI cares about: the warm run misses nothing, replays every block,
and reproduces the cold run's edges bit-identically.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset

from _results import save_results

#: Same seeded workload as bench_pipeline, so the two artifacts are
#: comparable run-for-run across commits.
WORKLOAD = dict(
    n_sequences=120,
    family_fraction=0.75,
    mean_family_size=5.0,
    mutation_rate=0.09,
    fragment_probability=0.1,
    seed=97,
)


def run_cold_warm_comparison(workload: dict, num_blocks: int = 6, nodes: int = 4) -> dict:
    """Cold (populate) then warm (replay) run against one cache directory."""
    seqs = synthetic_dataset(config=SyntheticDatasetConfig(**workload))
    with tempfile.TemporaryDirectory(prefix="bench-cache-") as cache_dir:
        params = PastisParams(
            kmer_length=5,
            common_kmer_threshold=1,
            nodes=nodes,
            num_blocks=num_blocks,
            load_balancing="index",
            cache_dir=cache_dir,
        )
        cold = PastisPipeline(params).run(seqs)
        warm = PastisPipeline(params).run(seqs, resume=True)
        entries = list(Path(cache_dir).glob("run-*/block-*.npz"))
        cache_bytes = sum(entry.stat().st_size for entry in entries)
        edges_identical = bool(
            np.array_equal(cold.similarity_graph.edges, warm.similarity_graph.edges)
        )
    return {
        "workload": dict(workload),
        "num_blocks": num_blocks,
        "nodes": nodes,
        "cold": {
            "wall_seconds": cold.stats.wall_seconds,
            "cache": dict(cold.stats.extras["cache"]),
        },
        "warm": {
            "wall_seconds": warm.stats.wall_seconds,
            "cache": dict(warm.stats.extras["cache"]),
        },
        "warm_speedup": cold.stats.wall_seconds / warm.stats.wall_seconds,
        "cache_entries": len(entries),
        "cache_bytes": cache_bytes,
        "edges_identical": edges_identical,
        "similar_pairs": cold.stats.similar_pairs,
    }


def _print_report(out: dict) -> None:
    header = f"{'run':<6} {'wall s':>10} {'hits':>6} {'misses':>8} {'stores':>8}"
    print(header)
    print("-" * len(header))
    for name in ("cold", "warm"):
        row = out[name]
        cache = row["cache"]
        print(
            f"{name:<6} {row['wall_seconds']:>10.4f} {cache['hits']:>6} "
            f"{cache['misses']:>8} {cache['stores']:>8}"
        )
    print(
        f"warm replay x{out['warm_speedup']:.2f} over cold; "
        f"{out['cache_entries']} entries, {out['cache_bytes']:,} B on disk, "
        f"edges identical: {out['edges_identical']}"
    )


def _check(out: dict) -> None:
    cold, warm = out["cold"]["cache"], out["warm"]["cache"]
    assert cold["hits"] == 0 and cold["stores"] == out["num_blocks"], cold
    assert warm["misses"] == 0 and warm["hits"] == out["num_blocks"], (
        "warm run recomputed blocks it should have replayed"
    )
    assert out["edges_identical"], "warm replay changed the similarity graph"
    assert out["warm_speedup"] > 1.0, "replaying from cache slower than recomputing"


def test_cache_cold_warm_benchmark(benchmark, bench_sequences, bench_params):
    """Warm-replay benchmark against a pre-populated cache (pytest-benchmark)."""
    out = run_cold_warm_comparison(WORKLOAD)
    with tempfile.TemporaryDirectory(prefix="bench-cache-") as cache_dir:
        params = bench_params.replace(num_blocks=6, cache_dir=cache_dir)
        PastisPipeline(params).run(bench_sequences)  # populate once
        benchmark(lambda: PastisPipeline(params).run(bench_sequences, resume=True))
    benchmark.extra_info["warm_speedup"] = out["warm_speedup"]
    benchmark.extra_info["cache_bytes"] = out["cache_bytes"]
    save_results("BENCH_cache", out)
    _print_report(out)
    _check(out)


def _smoke() -> None:
    """Standalone comparison (no pytest-benchmark needed) — used by CI."""
    out = run_cold_warm_comparison(WORKLOAD, num_blocks=6)
    _print_report(out)
    save_results("BENCH_cache", out)
    _check(out)
    print("smoke OK: fully-warm replay hits every block, reproduces the cold "
          "run's edges, and beats recomputation on wall time")


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        _smoke()
    else:
        sys.exit("usage: python benchmarks/bench_cache.py --smoke "
                 "(full benchmarks run via: pytest benchmarks/ --benchmark-only)")
