"""Serial vs. overlapped (pre-blocking) scheduler benchmark.

Runs the full pipeline on a seeded synthetic workload under both schedulers
of the stage-graph execution engine and writes a machine-readable trajectory
artifact, ``benchmarks/results/BENCH_pipeline.json``: total and component
seconds on the modeled clock, the Table-I overlap ratios, and the streaming
accumulator's peak/retained block bytes.  CI runs the ``--smoke`` mode on
every build and uploads the JSON as a workflow artifact, so scheduler
regressions (overlap stops paying, streaming stops bounding memory) show up
as a diffable time series across commits.
"""

from __future__ import annotations

from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset

from _results import save_results

#: Seeded workload: enough families that alignment and sparse discovery are
#: both substantial and reasonably balanced, so the overlap has something to
#: hide.  (At toy scale the *total* is dominated by IO/communication, so the
#: benchmark asserts the overlap gain on the discovery/alignment phase —
#: ``combined_pre < sum`` — and reports the total ratio informationally,
#: like ``bench_table1_preblocking``; see EXPERIMENTS.md.)
WORKLOAD = dict(
    n_sequences=120,
    family_fraction=0.75,
    mean_family_size=5.0,
    mutation_rate=0.09,
    fragment_probability=0.1,
    seed=97,
)


def _result_row(result) -> dict:
    stats = result.stats
    return {
        "scheduler": result.scheduler,
        "time_total": stats.time_total,
        "time_align": stats.time_align,
        "time_spgemm": stats.time_spgemm,
        "time_sparse_all": stats.time_sparse_all,
        "time_io": stats.time_io,
        "time_comm": stats.time_comm,
        "time_cwait": stats.time_cwait,
        "similar_pairs": stats.similar_pairs,
        "alignments_performed": stats.alignments_performed,
        "peak_block_bytes": stats.peak_block_bytes,
        "peak_live_block_bytes": stats.extras["peak_live_block_bytes"],
        "retained_block_bytes": stats.extras["retained_block_bytes"],
        "wall_seconds": stats.wall_seconds,
    }


def run_scheduler_comparison(workload: dict, num_blocks: int = 6, nodes: int = 4) -> dict:
    """Run both schedulers on the same workload; return the comparison report."""
    seqs = synthetic_dataset(config=SyntheticDatasetConfig(**workload))
    base = PastisParams(
        kmer_length=5,
        common_kmer_threshold=1,
        nodes=nodes,
        num_blocks=num_blocks,
        load_balancing="index",
    )
    serial = PastisPipeline(base).run(seqs)
    overlapped = PastisPipeline(base.replace(pre_blocking=True)).run(seqs)
    assert serial.similarity_graph == overlapped.similarity_graph, (
        "schedulers disagree on the similarity graph"
    )

    report = overlapped.preblocking_report
    out = {
        "workload": dict(workload),
        "num_blocks": num_blocks,
        "nodes": nodes,
        "serial": _result_row(serial),
        "overlapped": _result_row(overlapped),
        "preblocking": {
            "sum_seconds": report.sum_seconds,
            "combined_seconds_pre": report.combined_seconds_pre,
            "normalized_total": report.normalized_total,
            "normalized_align": report.normalized_align,
            "normalized_sparse": report.normalized_sparse,
            "efficiency_percent": report.efficiency_percent,
        },
        "phase_speedup": report.sum_seconds / report.combined_seconds_pre,
        "total_speedup": serial.stats.time_total / overlapped.stats.time_total,
    }
    return out


def _print_report(out: dict) -> None:
    header = f"{'scheduler':<12} {'total':>10} {'align':>10} {'sparse':>10} {'peak live B':>12} {'retained B':>12}"
    print(header)
    print("-" * len(header))
    for name in ("serial", "overlapped"):
        row = out[name]
        print(
            f"{name:<12} {row['time_total']:>10.4f} {row['time_align']:>10.4f} "
            f"{row['time_spgemm']:>10.4f} {row['peak_live_block_bytes']:>12.0f} "
            f"{row['retained_block_bytes']:>12.0f}"
        )
    pre = out["preblocking"]
    print(
        f"overlap: discover+align phase x{1 / out['phase_speedup']:.3f}, total "
        f"x{pre['normalized_total']:.3f}  (align x{pre['normalized_align']:.2f}, "
        f"sparse x{pre['normalized_sparse']:.2f}, efficiency {pre['efficiency_percent']:.1f}%)"
    )


def test_pipeline_scheduler_benchmark(benchmark, bench_sequences, bench_params):
    """Serial vs overlapped on the shared benchmark workload (pytest-benchmark)."""
    out = run_scheduler_comparison(WORKLOAD)
    params = bench_params.replace(num_blocks=6, pre_blocking=True)
    benchmark(lambda: PastisPipeline(params).run(bench_sequences))
    for name in ("serial", "overlapped"):
        benchmark.extra_info[f"{name}_time_total"] = out[name]["time_total"]
    save_results("BENCH_pipeline", out)
    _print_report(out)
    assert out["phase_speedup"] > 1.0
    assert (
        out["overlapped"]["peak_live_block_bytes"]
        < out["overlapped"]["retained_block_bytes"]
    )


def _smoke() -> None:
    """Standalone comparison (no pytest-benchmark needed) — used by CI."""
    out = run_scheduler_comparison(WORKLOAD, num_blocks=6)
    _print_report(out)
    save_results("BENCH_pipeline", out)
    pre = out["preblocking"]
    assert out["phase_speedup"] > 1.0, "overlap stopped paying on the overlapped phase"
    assert 0.0 < pre["efficiency_percent"] <= 100.0
    for name in ("serial", "overlapped"):
        row = out[name]
        assert row["peak_live_block_bytes"] < row["retained_block_bytes"], (
            f"{name}: streaming no longer bounds block memory"
        )
    print("smoke OK: overlapped discover+align beats back-to-back on the modeled "
          "clock; streaming peak stays below retained block bytes")


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        _smoke()
    else:
        sys.exit("usage: python benchmarks/bench_pipeline.py --smoke "
                 "(full benchmarks run via: pytest benchmarks/ --benchmark-only)")
