"""Similarity-graph clustering benchmark: MCL across SpGEMM backends.

Runs the pipeline on the shared seeded workload, then sweeps Markov
clustering over inflation and pruning settings with every registered SpGEMM
backend executing the expansion.  Writes
``benchmarks/results/BENCH_graph.json``: per-configuration cluster counts,
iteration counts, expansion flops/seconds per backend, pruned probability
mass, modularity, and the ground-truth pairwise F1 against the generator's
planted families — alongside the union-find connected-components baseline.

CI runs the ``--smoke`` mode on every build and uploads the JSON as a
workflow artifact, so clustering regressions (a backend stops agreeing bit
for bit, MCL stops converging, quality drops below connectivity) show up as
a diffable time series across commits.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.graph import (
    MarkovClustering,
    StochasticMatrix,
    connected_components,
    evaluate_clustering,
    pairwise_f1,
)
from repro.metrics.counters import format_rate
from repro.sequences.synthetic import SyntheticDatasetConfig, family_labels, synthetic_dataset
from repro.sparse.kernels import available_kernels

from _results import save_results

#: The shared seeded workload of ``bench_pipeline.py`` — family-structured,
#: so the recovered clustering can be scored against ground truth.
WORKLOAD = dict(
    n_sequences=120,
    family_fraction=0.75,
    mean_family_size=5.0,
    mutation_rate=0.09,
    fragment_probability=0.1,
    seed=97,
)

#: Backends sweeping the expansion ("scipy" participates when registered).
BACKENDS = tuple(
    k for k in ("expand", "gustavson", "auto", "scipy") if k in available_kernels()
)


def _search(workload: dict):
    seqs = synthetic_dataset(config=SyntheticDatasetConfig(**workload))
    params = PastisParams(
        kmer_length=5, common_kmer_threshold=1, nodes=4, num_blocks=4,
        load_balancing="index",
    )
    result = PastisPipeline(params).run(seqs)
    return seqs, result.similarity_graph


def run_graph_sweep(
    workload: dict,
    inflations=(1.5, 2.0, 4.0),
    prune_thresholds=(1e-4, 1e-2),
) -> dict:
    """Sweep MCL settings x backends on one seeded search output."""
    seqs, graph = _search(workload)
    truth = family_labels(seqs)
    matrix = StochasticMatrix.from_similarity_graph(graph)

    cc_labels = connected_components(graph)
    cc_quality = evaluate_clustering(graph, cc_labels)
    out = {
        "workload": dict(workload),
        "backends": list(BACKENDS),
        "graph": {"n_vertices": graph.n_vertices, "num_edges": graph.num_edges},
        "components": {
            "n_clusters": cc_quality.n_clusters,
            "modularity": cc_quality.modularity,
            "f1": pairwise_f1(truth, cc_labels),
        },
        "mcl": [],
    }
    for inflation in inflations:
        for threshold in prune_thresholds:
            per_backend = {}
            baseline = None
            for backend in BACKENDS:
                mcl = MarkovClustering(
                    inflation=inflation, prune_threshold=threshold, spgemm_backend=backend
                )
                t0 = time.perf_counter()
                result = mcl.fit(matrix)
                seconds = time.perf_counter() - t0
                if baseline is None:
                    baseline = result
                else:
                    assert np.array_equal(result.labels, baseline.labels), (
                        f"backend {backend!r} disagrees at inflation={inflation}"
                    )
                    assert result.final_matrix.same_bits(baseline.final_matrix), (
                        f"backend {backend!r} differs bitwise at inflation={inflation}"
                    )
                per_backend[backend] = {
                    "seconds": seconds,
                    "expand_seconds": sum(it.expand_seconds for it in result.iterations),
                    "flops": result.total_flops,
                    "peak_intermediate_bytes": result.peak_intermediate_bytes,
                }
            quality = evaluate_clustering(graph, baseline.labels)
            out["mcl"].append(
                {
                    "inflation": inflation,
                    "prune_threshold": threshold,
                    "converged": baseline.converged,
                    "n_iterations": baseline.n_iterations,
                    "n_clusters": baseline.n_clusters,
                    "modularity": quality.modularity,
                    "f1": pairwise_f1(truth, baseline.labels),
                    "pruned_mass": baseline.total_pruned_mass,
                    "backends": per_backend,
                }
            )
    return out


def _print_report(out: dict) -> None:
    cc = out["components"]
    print(
        f"graph: {out['graph']['n_vertices']} vertices, {out['graph']['num_edges']} edges; "
        f"components: {cc['n_clusters']} clusters, modularity {cc['modularity']:.3f}, "
        f"F1 {cc['f1']:.3f}"
    )
    header = (
        f"{'inflation':>9} {'thresh':>8} {'iters':>5} {'clusters':>8} "
        f"{'modularity':>10} {'F1':>6} {'pruned mass':>11} {'flops/s (best)':>15}"
    )
    print(header)
    print("-" * len(header))
    for row in out["mcl"]:
        best = max(
            row["backends"].values(),
            key=lambda b: b["flops"] / b["expand_seconds"] if b["expand_seconds"] else 0.0,
        )
        rate = best["flops"] / best["expand_seconds"] if best["expand_seconds"] else 0.0
        print(
            f"{row['inflation']:>9.2f} {row['prune_threshold']:>8.0e} "
            f"{row['n_iterations']:>5d} {row['n_clusters']:>8d} "
            f"{row['modularity']:>10.4f} {row['f1']:>6.3f} "
            f"{row['pruned_mass']:>11.4f} {format_rate(rate):>15}"
        )


def test_graph_clustering_benchmark(benchmark):
    """MCL sweep + a pytest-benchmark timing of one fit (default settings)."""
    out = run_graph_sweep(WORKLOAD)
    save_results("BENCH_graph", out)
    _print_report(out)
    _, graph = _search(WORKLOAD)
    matrix = StochasticMatrix.from_similarity_graph(graph)
    benchmark(lambda: MarkovClustering().fit(matrix))
    for row in out["mcl"]:
        if row["inflation"] == 2.0 and row["prune_threshold"] == 1e-4:
            benchmark.extra_info["n_clusters"] = row["n_clusters"]
            benchmark.extra_info["modularity"] = row["modularity"]
    assert all(row["converged"] for row in out["mcl"])


def _smoke() -> None:
    """Standalone sweep (no pytest-benchmark needed) — used by CI."""
    out = run_graph_sweep(WORKLOAD, inflations=(2.0,), prune_thresholds=(1e-4,))
    _print_report(out)
    save_results("BENCH_graph", out)
    row = out["mcl"][0]
    assert row["converged"], "MCL stopped converging on the seeded workload"
    assert row["n_clusters"] > 1
    assert row["modularity"] > 0.0, "clustering no longer beats the random-graph expectation"
    assert row["f1"] >= out["components"]["f1"] - 0.05, (
        "MCL quality fell below the connectivity baseline"
    )
    print(
        f"smoke OK: {len(out['backends'])} backends bit-identical; MCL converged in "
        f"{row['n_iterations']} iterations with modularity {row['modularity']:.3f}"
    )


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        _smoke()
    else:
        sys.exit("usage: python benchmarks/bench_graph.py --smoke "
                 "(full benchmarks run via: pytest benchmarks/ --benchmark-only)")
