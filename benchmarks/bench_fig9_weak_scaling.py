"""Figure 9 / Table III: weak scaling.

Paper setup: the number of sequences grows with sqrt(nodes) so that the
(quadratically growing) number of alignments per node stays constant —
20M sequences at 25 nodes up to 112M at 784 nodes, 13.5 to 452.4 billion
alignments (Table III).  Observed: every component except IO scales well and
the overall weak-scaling efficiency stays above 80%.

Reproduction: (1) Table III regenerated from the workload scaling rules;
(2) the weak-scaling efficiency series from the analytic model; (3) a
functional weak-scaling run of the real pipeline (dataset grows with
sqrt(virtual nodes)).
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import PastisPipeline
from repro.io.tables import format_table
from repro.perfmodel import AnalyticModel, WorkloadProfile, weak_scaling_series
from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset

from _results import save_results

PAPER_NODES = [25, 49, 100, 196, 400, 784]
PAPER_TABLE3 = {25: 13.5e9, 49: 26.7e9, 100: 55.1e9, 196: 108.9e9, 400: 225.4e9, 784: 452.4e9}
FUNCTIONAL = [(1, 60), (4, 120), (16, 240)]  # (virtual nodes, sequences)


def run(bench_params):
    base = WorkloadProfile.paper_weak_scaling_base()
    series = weak_scaling_series(
        base, PAPER_NODES, AnalyticModel(load_balancing="index", pre_blocking=True)
    )
    print("\nTable III — sequences and alignments per node count (paper values in parentheses)")
    print(
        format_table(
            ["nodes", "#seqs (M)", "#alignments (B)", "paper #alignments (B)"],
            [
                [
                    p.nodes,
                    p.n_sequences / 1e6,
                    p.alignments / 1e9,
                    PAPER_TABLE3[p.nodes] / 1e9,
                ]
                for p in series
            ],
            precision=1,
        )
    )
    print("\nFigure 9 — weak scaling efficiency per component (analytic model)")
    print(
        format_table(
            ["nodes", "eff total", "eff align", "eff spgemm", "eff sparse_all", "eff io"],
            [
                [
                    p.nodes,
                    p.efficiency_total,
                    p.efficiency_per_component["align"],
                    p.efficiency_per_component["spgemm"],
                    p.efficiency_per_component["sparse_all"],
                    p.efficiency_per_component["io"],
                ]
                for p in series
            ],
            precision=3,
        )
    )

    # functional weak scaling: synthetic dataset grows with sqrt(nodes)
    functional = []
    for nodes, n_seq in FUNCTIONAL:
        seqs = synthetic_dataset(
            config=SyntheticDatasetConfig(n_sequences=n_seq, seed=5, mean_family_size=5.0)
        )
        params = bench_params.replace(nodes=nodes, num_blocks=4)
        result = PastisPipeline(params).run(seqs)
        functional.append(
            {
                "nodes": nodes,
                "n_sequences": n_seq,
                "alignments": result.stats.alignments_performed,
                "alignments_per_node": result.stats.alignments_performed / nodes,
                "time_total": result.stats.time_total,
            }
        )
    print("\nFunctional weak scaling (synthetic; alignments per node should stay roughly flat)")
    print(
        format_table(
            ["nodes", "#seqs", "alignments", "alignments/node", "total s"],
            [
                [f["nodes"], f["n_sequences"], f["alignments"], f["alignments_per_node"], f["time_total"]]
                for f in functional
            ],
            precision=4,
        )
    )
    save_results("fig9_weak_scaling", {"model": [p.as_dict() for p in series], "functional": functional})
    return series, functional


def test_fig9_weak_scaling(benchmark, bench_params):
    series, functional = benchmark.pedantic(run, args=(bench_params,), rounds=1, iterations=1)
    # Table III shape: alignments grow quadratically with sequences (linearly with nodes)
    for point in series:
        paper = PAPER_TABLE3[point.nodes]
        assert point.alignments == pytest.approx(paper, rel=0.35)
    # weak scaling efficiency stays high (paper: > 0.80)
    assert series[-1].efficiency_total > 0.75
    assert all(p.efficiency_per_component["align"] > 0.9 for p in series)
    # functional: work per node stays within a factor ~2 while nodes grow 16x
    per_node = [f["alignments_per_node"] for f in functional]
    assert max(per_node) / max(min(per_node), 1) < 3.0
