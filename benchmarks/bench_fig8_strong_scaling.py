"""Figure 8: strong scaling on 49-400 nodes for both load-balancing schemes.

Paper observations (50M sequences, 8x8 blocking, pre-blocking on):

* parallel efficiency at 400 vs 49 nodes: 66% (index) and 76% (triangularity);
* the alignment component scales best (78% / 87%), the sparse components
  reach ~60%;
* the triangularity scheme is faster overall thanks to its avoided sparse
  computations, despite worse alignment balance.

Reproduction has two parts: (1) the analytic model evaluated at the paper's
node counts on the 50M-sequence workload profile; (2) a functional
strong-scaling run of the real pipeline on the synthetic dataset with 1, 4,
9 and 16 virtual nodes (identical results required at every scale).
"""

from __future__ import annotations

from repro.core.pipeline import PastisPipeline
from repro.io.tables import format_table
from repro.perfmodel import AnalyticModel, WorkloadProfile, strong_scaling_series

from _results import save_results

PAPER_NODES = [49, 81, 100, 144, 196, 289, 400]
FUNCTIONAL_NODES = [1, 4, 9, 16]


def run(bench_sequences, bench_params):
    # ---- analytic model at paper scale -------------------------------------
    profile = WorkloadProfile.paper_strong_scaling().with_blocks(64)
    model_series = {}
    for scheme in ("index", "triangularity"):
        series = strong_scaling_series(
            profile, PAPER_NODES, AnalyticModel(load_balancing=scheme, pre_blocking=True)
        )
        model_series[scheme] = [p.as_dict() for p in series]
        print(f"\nFigure 8 — strong scaling, {scheme}-based load balancing (analytic model)")
        print(
            format_table(
                ["nodes", "total s", "eff total", "eff align", "eff spgemm", "eff sparse_all", "eff io"],
                [
                    [
                        p.nodes,
                        p.times.total,
                        p.efficiency_total,
                        p.efficiency_per_component["align"],
                        p.efficiency_per_component["spgemm"],
                        p.efficiency_per_component["sparse_all"],
                        p.efficiency_per_component["io"],
                    ]
                    for p in series
                ],
                precision=3,
            )
        )

    # ---- functional pipeline: growing virtual node counts -------------------
    functional = []
    reference_edges = None
    for nodes in FUNCTIONAL_NODES:
        params = bench_params.replace(nodes=nodes, num_blocks=4, pre_blocking=True,
                                      load_balancing="triangularity")
        result = PastisPipeline(params).run(bench_sequences)
        edges = result.similarity_graph.edge_key_set()
        if reference_edges is None:
            reference_edges = edges
        functional.append(
            {
                "nodes": nodes,
                "time_align": result.stats.time_align,
                "time_sparse": result.stats.time_sparse_all,
                "time_total": result.stats.time_total,
                "similar_pairs": result.similarity_graph.num_edges,
                "identical_results": edges == reference_edges,
            }
        )
    print("\nFunctional strong scaling (synthetic dataset, virtual nodes)")
    print(
        format_table(
            ["nodes", "align s", "sparse s", "total s", "similar pairs", "identical"],
            [
                [f["nodes"], f["time_align"], f["time_sparse"], f["time_total"],
                 f["similar_pairs"], str(f["identical_results"])]
                for f in functional
            ],
            precision=5,
        )
    )
    save_results("fig8_strong_scaling", {"model": model_series, "functional": functional})
    return model_series, functional


def test_fig8_strong_scaling(benchmark, bench_sequences, bench_params):
    model_series, functional = benchmark.pedantic(
        run, args=(bench_sequences, bench_params), rounds=1, iterations=1
    )
    for scheme, series in model_series.items():
        effs = [p["efficiency_total"] for p in series]
        # efficiency decreases with node count but stays in a sane band
        assert all(effs[i] >= effs[i + 1] - 1e-9 for i in range(len(effs) - 1))
        assert 0.5 < effs[-1] <= 1.0
        # alignment scales at least as well as the sparse multiply
        last = series[-1]
        assert last["eff_align"] >= last["eff_spgemm"] - 0.15
    # triangularity-based total time is lower than index-based at every scale
    for idx_point, tri_point in zip(model_series["index"], model_series["triangularity"]):
        assert tri_point["time_total"] <= idx_point["time_total"] * 1.05
    # the functional pipeline returns identical similarity graphs at every node count
    assert all(f["identical_results"] for f in functional)
