"""Serving benchmark: warm-index query batches vs. cold all-vs-all.

The serving claim the index has to earn: once a database is indexed, a
small query batch is answered by computing *one block row* against stripes
replayed from disk, instead of recomputing the whole all-vs-all product.
This benchmark builds the index once (the amortized cost), then times

* the cold path — a full all-vs-all pipeline run over the database, which
  is what answering any query would cost without an index; and
* the warm path — a ``mode="query"`` run of a small batch against the
  persisted index, plus a :class:`~repro.serve.QueryBatcher` drain of
  several requests to exercise the modeled request queue.

Writes ``benchmarks/results/BENCH_serve.json``.  Smoke mode asserts the
serving contract CI cares about: the warm query run is faster than the
cold all-vs-all run, every query's partner set matches its all-vs-all
neighborhood, and the batcher's queue books reconcile exactly.
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset
from repro.serve import KmerIndex, QueryBatcher, build_index

from _results import save_results

#: Same seeded workload family as bench_pipeline/bench_cache, so the
#: artifacts are comparable run-for-run across commits.
WORKLOAD = dict(
    n_sequences=120,
    family_fraction=0.75,
    mean_family_size=5.0,
    mutation_rate=0.09,
    fragment_probability=0.1,
    seed=97,
)

N_QUERIES = 8


def run_serve_comparison(workload: dict, num_blocks: int = 4, nodes: int = 4) -> dict:
    """Build an index, then time cold all-vs-all vs. warm query batches."""
    seqs = synthetic_dataset(config=SyntheticDatasetConfig(**workload))
    params = PastisParams(
        kmer_length=5,
        common_kmer_threshold=1,
        nodes=nodes,
        num_blocks=num_blocks,
        load_balancing="index",
        cache_dir=None,
    )
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as index_dir:
        t0 = time.perf_counter()
        build_index(seqs, params, index_dir, force=True)
        build_seconds = time.perf_counter() - t0
        index = KmerIndex.open(index_dir)

        # cold path: what answering a batch costs without an index
        t0 = time.perf_counter()
        cold = PastisPipeline(params).run(seqs)
        cold_seconds = time.perf_counter() - t0

        # warm path: a small member batch served from the persisted index
        qparams = params.replace(mode="query", index_dir=index_dir)
        queries = seqs.subset(np.arange(N_QUERIES))
        t0 = time.perf_counter()
        warm = PastisPipeline(qparams).run(queries)
        warm_seconds = time.perf_counter() - t0

        # each query's partner set must be its all-vs-all neighborhood
        edges = cold.similarity_graph.edges
        qedges = warm.similarity_graph.edges
        neighborhoods_match = True
        for q in range(N_QUERIES):
            expected = set(edges["col"][edges["row"] == q]) | set(
                edges["row"][edges["col"] == q]
            )
            got = set(qedges["col"][qedges["row"] == q]) | set(
                qedges["row"][qedges["col"] == q]
            )
            got.discard(q)
            if got != {int(p) for p in expected}:
                neighborhoods_match = False

        # the request queue: several requests coalesced and drained
        batcher = QueryBatcher(index_dir, params, max_batch_queries=N_QUERIES)
        for lo in range(0, 3 * N_QUERIES, N_QUERIES // 2):
            batcher.submit(seqs.subset(np.arange(lo, lo + N_QUERIES // 2)))
        t0 = time.perf_counter()
        answers = batcher.drain()
        drain_seconds = time.perf_counter() - t0
        queue = batcher.queue_summary()

        return {
            "workload": dict(workload),
            "num_blocks": num_blocks,
            "nodes": nodes,
            "n_queries": N_QUERIES,
            "index": {
                "build_seconds": build_seconds,
                "payload_bytes": index.payload_bytes(),
                "nnz": index.nnz,
                "stripes": index.bc,
            },
            "cold_all_vs_all_seconds": cold_seconds,
            "warm_query_seconds": warm_seconds,
            "warm_speedup": cold_seconds / warm_seconds,
            "neighborhoods_match": neighborhoods_match,
            "batcher": {
                "requests": len(answers),
                "total_matches": sum(a.total_matches for a in answers),
                "drain_seconds": drain_seconds,
                **queue,
            },
            "similar_pairs_all_vs_all": cold.stats.similar_pairs,
            "similar_pairs_query": warm.stats.similar_pairs,
        }


def _print_report(out: dict) -> None:
    header = f"{'path':<22} {'wall s':>10}"
    print(header)
    print("-" * len(header))
    print(f"{'index build':<22} {out['index']['build_seconds']:>10.4f}")
    print(f"{'cold all-vs-all':<22} {out['cold_all_vs_all_seconds']:>10.4f}")
    print(f"{'warm query batch':<22} {out['warm_query_seconds']:>10.4f}")
    queue = out["batcher"]
    print(
        f"warm batch of {out['n_queries']} x{out['warm_speedup']:.2f} over cold; "
        f"index {out['index']['payload_bytes']:,} B on disk; "
        f"neighborhoods match: {out['neighborhoods_match']}"
    )
    print(
        f"batcher: {queue['requests']} requests -> {queue['batches']} batches, "
        f"queue clock {queue['clock_seconds']:.6f}s modeled "
        f"(serial {queue['serial_clock_seconds']:.6f}s, "
        f"hidden {queue['hidden_seconds']:.6f}s)"
    )


def _check(out: dict) -> None:
    assert out["warm_speedup"] > 1.0, (
        "serving a warm-index query batch was slower than a cold all-vs-all run"
    )
    assert out["neighborhoods_match"], (
        "query-mode partner sets diverged from the all-vs-all neighborhoods"
    )
    queue = out["batcher"]
    assert queue["identity_residual"] < 1e-9, "queue books do not reconcile"
    assert queue["clock_seconds"] <= queue["serial_clock_seconds"] + 1e-12, (
        "overlapped queue clock exceeded the serial clock"
    )


def test_serve_benchmark(benchmark, bench_sequences, bench_params):
    """Warm-index query batch benchmark (pytest-benchmark)."""
    out = run_serve_comparison(WORKLOAD)
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as index_dir:
        build_index(bench_sequences, bench_params, index_dir, force=True)
        qparams = bench_params.replace(mode="query", index_dir=index_dir)
        queries = bench_sequences.subset(np.arange(N_QUERIES))
        benchmark(lambda: PastisPipeline(qparams).run(queries))
    benchmark.extra_info["warm_speedup"] = out["warm_speedup"]
    benchmark.extra_info["index_payload_bytes"] = out["index"]["payload_bytes"]
    save_results("BENCH_serve", out)
    _print_report(out)
    _check(out)


def _smoke() -> None:
    """Standalone comparison (no pytest-benchmark needed) — used by CI."""
    out = run_serve_comparison(WORKLOAD)
    _print_report(out)
    save_results("BENCH_serve", out)
    _check(out)
    print("smoke OK: warm-index query batch beats cold all-vs-all, neighborhoods "
          "match, and the request-queue books reconcile")


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        _smoke()
    else:
        sys.exit("usage: python benchmarks/bench_serve.py --smoke "
                 "(full benchmarks run via: pytest benchmarks/ --benchmark-only)")
