"""§VIII-C: comparison against DIAMOND's published supercomputer run.

Paper arithmetic: DIAMOND searched 281M queries against 39M references on 520
Cobra nodes in 5.42 hours performing 23.0 billion alignments (1.2M
alignments/s).  PASTIS searched a 15.0x larger space (405M x 405M) at 690.6M
alignments/s — 575.5x the rate — performing 24.8x more alignments per unit of
search space (the sensitivity proxy), and a linear-scaling projection of
DIAMOND to 2025 nodes would still take 12.53 hours vs PASTIS's 3.44 (3.6x).

Reproduction: (1) recompute that arithmetic from the model's projected
production run; (2) a functional head-to-head of the PASTIS pipeline against
the DIAMOND-like baseline on the same synthetic dataset (recall and
alignments per second under the same hardware model).
"""

from __future__ import annotations

import pytest

from repro.baselines import BruteForceSearch, DiamondLikeSearch, candidate_recall
from repro.core.pipeline import PastisPipeline
from repro.io.tables import format_table
from repro.perfmodel import AnalyticModel, WorkloadProfile

from _results import save_results

DIAMOND_PAPER = {
    "queries": 281e6,
    "references": 39e6,
    "nodes": 520,
    "hours": 5.42,
    "alignments": 23.0e9,
}


def run(bench_sequences, bench_params):
    # ---- paper-scale arithmetic ------------------------------------------------
    production = AnalyticModel(load_balancing="triangularity", pre_blocking=True).production_metrics(
        WorkloadProfile.paper_production(), 3364
    )
    pastis_space = 405e6 * 405e6
    diamond_space = DIAMOND_PAPER["queries"] * DIAMOND_PAPER["references"]
    diamond_rate = DIAMOND_PAPER["alignments"] / (DIAMOND_PAPER["hours"] * 3600)
    pastis_rate = production["alignments_per_second"]
    pastis_sensitivity = WorkloadProfile.paper_production().alignments / pastis_space
    diamond_sensitivity = DIAMOND_PAPER["alignments"] / diamond_space
    # linear scaling of DIAMOND's run to the search space and node count of PASTIS
    diamond_projected_alignments = DIAMOND_PAPER["alignments"] * pastis_space / diamond_space
    diamond_projected_hours = (
        DIAMOND_PAPER["hours"]
        * (pastis_space / diamond_space)
        * (DIAMOND_PAPER["nodes"] / 2025.0)
    )
    comparison = {
        "search_space_ratio": pastis_space / diamond_space,
        "rate_ratio": pastis_rate / diamond_rate,
        "sensitivity_ratio": pastis_sensitivity / diamond_sensitivity,
        "diamond_projected_hours_2025_nodes": diamond_projected_hours,
        "pastis_hours": production["runtime_hours"],
        "time_to_solution_ratio": diamond_projected_hours / production["runtime_hours"],
        "diamond_projected_alignments": diamond_projected_alignments,
    }
    print("\n§VIII-C — PASTIS (projected production run) vs DIAMOND (published run)")
    print(
        format_table(
            ["metric", "reproduction", "paper"],
            [
                ["search-space ratio", comparison["search_space_ratio"], 15.0],
                ["alignments/s ratio", comparison["rate_ratio"], 575.5],
                ["sensitivity ratio (aligns per search space)", comparison["sensitivity_ratio"], 24.8],
                ["DIAMOND projected hours @2025 nodes", comparison["diamond_projected_hours_2025_nodes"], 12.53],
                ["PASTIS hours", comparison["pastis_hours"], 3.44],
                ["time-to-solution ratio", comparison["time_to_solution_ratio"], 3.6],
            ],
            precision=2,
        )
    )

    # ---- functional head-to-head on the synthetic dataset -----------------------
    truth = BruteForceSearch().run(bench_sequences)
    pastis = PastisPipeline(
        bench_params.replace(load_balancing="triangularity", pre_blocking=True, num_blocks=9)
    ).run(bench_sequences)
    diamond = DiamondLikeSearch(kmer_length=5, common_kmer_threshold=1).run(bench_sequences)
    functional = {
        "pastis_recall": candidate_recall(pastis.similarity_graph, truth.similarity_graph),
        "diamond_recall": candidate_recall(diamond.similarity_graph, truth.similarity_graph),
        "pastis_alignments": pastis.stats.alignments_performed,
        "diamond_alignments": diamond.stats.alignments,
        "pastis_aps": pastis.stats.alignments_per_second,
        "diamond_aps": diamond.stats.alignments_per_second,
        "diamond_staged_bytes": diamond.stats.intermediate_io_bytes,
    }
    print("\nFunctional head-to-head (synthetic dataset)")
    print(
        format_table(
            ["tool", "recall vs brute force", "alignments", "alignments/s (model)", "staged IO bytes"],
            [
                ["PASTIS (repro)", functional["pastis_recall"], functional["pastis_alignments"],
                 functional["pastis_aps"], 0],
                ["DIAMOND-like", functional["diamond_recall"], functional["diamond_alignments"],
                 functional["diamond_aps"], functional["diamond_staged_bytes"]],
            ],
            precision=3,
        )
    )
    save_results("diamond_comparison", {"paper_scale": comparison, "functional": functional})
    return comparison, functional


def test_diamond_comparison(benchmark, bench_sequences, bench_params):
    comparison, functional = benchmark.pedantic(
        run, args=(bench_sequences, bench_params), rounds=1, iterations=1
    )
    # who wins and by roughly what factor (paper: 15.0x space, 575.5x rate, 3.6x time)
    assert comparison["search_space_ratio"] == pytest.approx(15.0, rel=0.05)
    assert 300 < comparison["rate_ratio"] < 1200
    assert 15 < comparison["sensitivity_ratio"] < 40
    assert comparison["time_to_solution_ratio"] > 2.0
    # functionally, PASTIS is at least as sensitive as the DIAMOND-like baseline
    assert functional["pastis_recall"] >= functional["diamond_recall"] - 0.05
    assert functional["diamond_staged_bytes"] > 0
