"""Table IV: the full-scale production run.

Paper result (405M Metaclust sequences, 3364 Summit nodes, 20x20 blocking,
triangularity LB, pre-blocking on): 95.9T discovered candidates, 8.55T
alignments performed (8.9%), 1.05T similar pairs (12.3%), 3.44 hours,
690.6M alignments/s, 176.3 TCUPS peak, IO 12 minutes, imbalance 7.1%/3.1%.

Reproduction has two layers:

1. a *functional* production-style run of the real pipeline on the synthetic
   dataset with the production configuration (triangularity LB, pre-blocking,
   near-square blocking), reporting the same Table-IV quantities;
2. the analytic projection of the paper's workload to 3364 nodes, compared
   against the paper's measured headline numbers.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import PastisPipeline
from repro.io.tables import format_table
from repro.perfmodel import AnalyticModel, WorkloadProfile

from _results import save_results

PAPER = {
    "runtime_hours": 3.44,
    "alignments_per_second": 690_609_577.0,
    "tcups": 176.3,
    "align_hours": 2.62,
    "spgemm_hours": 2.06,
    "io_minutes": 12.0,
    "aligned_fraction": 0.089,
    "similar_fraction": 0.123,
}


def run(bench_sequences, bench_params):
    # ---- functional production-style run ------------------------------------
    params = bench_params.replace(
        load_balancing="triangularity",
        pre_blocking=True,
        num_blocks=16,
    )
    result = PastisPipeline(params).run(bench_sequences)
    stats = result.stats
    print("\nProduction-style functional run (synthetic dataset)")
    print(stats.as_table())

    # ---- analytic projection of the paper workload ---------------------------
    metrics = AnalyticModel(load_balancing="triangularity", pre_blocking=True).production_metrics(
        WorkloadProfile.paper_production(), 3364
    )
    rows = [
        ["runtime (hours)", metrics["runtime_hours"], PAPER["runtime_hours"]],
        ["alignments per second", metrics["alignments_per_second"], PAPER["alignments_per_second"]],
        ["TCUPS", metrics["tcups"], PAPER["tcups"]],
        ["align (hours)", metrics["align_hours"], PAPER["align_hours"]],
        ["SpGEMM (hours)", metrics["spgemm_hours"], PAPER["spgemm_hours"]],
        ["IO (minutes)", metrics["io_minutes"], PAPER["io_minutes"]],
    ]
    print("\nTable IV — analytic projection (3364 nodes, paper workload) vs paper measurement")
    print(format_table(["metric", "model", "paper"], rows, precision=3))

    save_results(
        "table4_production",
        {"functional": stats.as_dict(), "model": metrics, "paper": PAPER},
    )
    return stats, metrics


def test_table4_production(benchmark, bench_sequences, bench_params):
    stats, metrics = benchmark.pedantic(
        run, args=(bench_sequences, bench_params), rounds=1, iterations=1
    )
    # functional run: the filtering funnel of the paper (candidates >= aligned >= similar)
    assert stats.candidates_discovered > stats.alignments_performed > stats.similar_pairs > 0
    assert 0.0 < stats.aligned_fraction < 1.0
    assert 0.0 < stats.similar_fraction < 1.0
    assert stats.imbalance_align_percent >= 0.0
    # analytic projection lands within the documented tolerance of the paper
    assert metrics["runtime_hours"] == pytest.approx(PAPER["runtime_hours"], rel=0.35)
    assert metrics["alignments_per_second"] == pytest.approx(
        PAPER["alignments_per_second"], rel=0.35
    )
    assert metrics["tcups"] == pytest.approx(PAPER["tcups"], rel=0.35)
    assert metrics["align_hours"] == pytest.approx(PAPER["align_hours"], rel=0.35)
    assert metrics["spgemm_hours"] == pytest.approx(PAPER["spgemm_hours"], rel=0.45)
    assert metrics["io_percent"] < 5.0
