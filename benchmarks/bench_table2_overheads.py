"""Table II: sequence-communication wait and IO as percentages of the runtime.

Paper observation: on 49-400 nodes the wait for the (non-blocking) sequence
exchange stays below ~0.3% and IO below ~3% of the total runtime — "the sum
of the percentages of these two components is usually less than 3%".

Reproduction: the functional pipeline's ledger percentages at small scale,
plus the analytic model's prediction across the paper's node counts.
"""

from __future__ import annotations

from repro.core.pipeline import PastisPipeline
from repro.io.tables import format_table
from repro.perfmodel import AnalyticModel, WorkloadProfile

from _results import save_results

NODE_COUNTS = [49, 81, 100, 144, 196, 289, 400]


def run(bench_sequences, bench_params):
    # ---- analytic model at paper scale
    profile = WorkloadProfile.paper_strong_scaling()
    series = []
    for scheme in ("index", "triangularity"):
        model = AnalyticModel(load_balancing=scheme, pre_blocking=True)
        for nodes in NODE_COUNTS:
            times = model.component_times(profile, nodes)
            series.append(
                {
                    "scheme": scheme,
                    "nodes": nodes,
                    "cwait_pct": 100.0 * times.cwait / times.total,
                    "io_pct": 100.0 * times.io / times.total,
                }
            )
    print("\nTable II — cwait%% and IO%% of overall runtime (analytic model, 50M-seq workload)")
    print(
        format_table(
            ["scheme", "nodes", "cwait %", "IO %"],
            [[s["scheme"], s["nodes"], s["cwait_pct"], s["io_pct"]] for s in series],
            precision=3,
        )
    )

    # ---- functional pipeline at small scale (for reference)
    result = PastisPipeline(bench_params.replace(num_blocks=4)).run(bench_sequences)
    functional = {
        "nodes": bench_params.nodes,
        "cwait_pct": result.stats.cwait_percent,
        "io_pct": result.stats.io_percent,
    }
    print(
        f"\nfunctional pipeline ({len(bench_sequences)} seqs, {bench_params.nodes} virtual nodes): "
        f"cwait {functional['cwait_pct']:.2f}%, IO {functional['io_pct']:.2f}% "
        f"(IO dominates at toy scale because the modelled compute shrinks faster than the\n"
        f" fixed file-system latency; at paper scale the model reproduces the <3% behaviour)"
    )
    save_results("table2_overheads", {"model": series, "functional": functional})
    return series, functional


def test_table2_overheads(benchmark, bench_sequences, bench_params):
    series, functional = benchmark.pedantic(
        run, args=(bench_sequences, bench_params), rounds=1, iterations=1
    )
    for s in series:
        # the paper's headline claim: cwait + IO stay small at scale
        assert s["cwait_pct"] < 1.0
        assert s["io_pct"] < 5.0
    # cwait wait is negligible in the functional run too
    assert functional["cwait_pct"] < 5.0
