"""Calibration sweep for ``auto_compression_threshold``.

The ``"auto"`` SpGEMM backend routes each invocation to Gustavson when the
predicted compression factor exceeds a threshold
(``PastisParams.auto_compression_threshold``, default
:data:`repro.sparse.kernels.AUTO_COMPRESSION_THRESHOLD`).  The knob has been
plumbed end to end since PR 3, but the ROADMAP noted that a *measured*
calibration curve did not yet exist.  This bench produces it:

1. generate overlap-style operands spanning a range of compression factors
   (dense inner dimension → high cf; sparse → low cf);
2. time the two fixed kernels head to head on every case (asserting
   bit-identical outputs, so the comparison is purely about resources) —
   the *crossover curve*;
3. sweep the threshold over the ``"auto"`` kernel and record the total
   sweep time each setting yields, plus which backend it dispatched per
   case.

Writes ``benchmarks/results/BENCH_auto_threshold.json``: per-case predicted
and exact compression factors, per-kernel seconds, the empirical crossover,
and the per-threshold totals — the numbers to set the default from.

``--write-default`` closes the loop: the measured best crossover is
persisted via :func:`repro.config.write_calibration`, after which
:data:`repro.config.DEFAULTS` (and therefore every
``PastisParams.auto_compression_threshold``) uses the measured value
instead of the shipped registry constant.
"""

from __future__ import annotations

import time

import numpy as np

from repro.sparse.coo import CooMatrix
from repro.sparse.kernels import (
    AUTO_COMPRESSION_THRESHOLD,
    predict_compression_factor,
    spgemm_auto,
)
from repro.sparse.gustavson import spgemm_gustavson
from repro.sparse.semiring import OverlapSemiring
from repro.sparse.spgemm import spgemm

from _results import save_results

#: Inner-dimension sizes spanning low to high compression factors at fixed
#: nnz (smaller k -> more collisions -> higher cf).
INNER_DIMS = (20, 60, 200, 800, 3000, 12000)
CASE = dict(n=300, nnz=5000, seed=13)
#: The "never dispatch to Gustavson" sentinel (finite so the JSON artifact
#: stays strictly parseable — float("inf") would serialize as the
#: non-standard token Infinity).
NEVER_GUSTAVSON_SENTINEL = 1e30
THRESHOLDS = (0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 10.0, NEVER_GUSTAVSON_SENTINEL)


def _operand(n: int, k: int, nnz: int, seed: int) -> tuple[CooMatrix, CooMatrix]:
    rng = np.random.default_rng(seed)
    a = CooMatrix(
        (n, k), rng.integers(0, n, nnz), rng.integers(0, k, nnz),
        rng.integers(0, 90, nnz).astype(np.int32),
    ).deduplicate()
    return a, a.transpose()


def _best_seconds(fn, *args, repeats: int, **kwargs) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


def run_threshold_sweep(inner_dims=INNER_DIMS, repeats: int = 3) -> dict:
    """Head-to-head crossover curve + per-threshold auto-dispatch totals."""
    semiring = OverlapSemiring()
    cases = []
    for k in inner_dims:
        a, at = _operand(k=k, **CASE)
        predicted_cf = predict_compression_factor(a, at)
        expand_result, stats = spgemm(a, at, semiring, return_stats=True)
        gustavson_result = spgemm_gustavson(a, at, semiring)
        assert expand_result == gustavson_result, f"kernels disagree at k={k}"
        cases.append(
            {
                "inner_dim": k,
                "predicted_cf": predicted_cf,
                "exact_cf": stats.compression_factor,
                "flops": stats.flops,
                "expand_seconds": _best_seconds(spgemm, a, at, semiring, repeats=repeats),
                "gustavson_seconds": _best_seconds(
                    spgemm_gustavson, a, at, semiring, repeats=repeats
                ),
                "_operands": (a, at),
            }
        )
    # empirical crossover: the lowest predicted cf at which Gustavson wins
    winners = [
        c["predicted_cf"] for c in cases if c["gustavson_seconds"] < c["expand_seconds"]
    ]
    crossover = min(winners) if winners else None

    thresholds = []
    for threshold in THRESHOLDS:
        total = 0.0
        routed = []
        for case in cases:
            a, at = case["_operands"]
            total += _best_seconds(
                spgemm_auto, a, at, semiring,
                compression_threshold=threshold, repeats=repeats,
            )
            routed.append(
                "gustavson" if case["predicted_cf"] >= threshold else "expand"
            )
        thresholds.append(
            {"threshold": threshold, "total_seconds": total, "routed": routed}
        )
    for case in cases:
        del case["_operands"]
    best = min(thresholds, key=lambda t: t["total_seconds"])
    return {
        "case": dict(CASE),
        "default_threshold": AUTO_COMPRESSION_THRESHOLD,
        "cases": cases,
        "empirical_crossover_cf": crossover,
        "thresholds": thresholds,
        "best_threshold": best["threshold"],
        "best_total_seconds": best["total_seconds"],
    }


def _print_report(out: dict) -> None:
    header = (
        f"{'inner dim':>9} {'pred cf':>8} {'exact cf':>9} "
        f"{'expand s':>9} {'gustavson s':>11} {'winner':>10}"
    )
    print(header)
    print("-" * len(header))
    for case in out["cases"]:
        winner = (
            "gustavson" if case["gustavson_seconds"] < case["expand_seconds"] else "expand"
        )
        print(
            f"{case['inner_dim']:>9} {case['predicted_cf']:>8.2f} {case['exact_cf']:>9.2f} "
            f"{case['expand_seconds']:>9.4f} {case['gustavson_seconds']:>11.4f} {winner:>10}"
        )
    print(
        f"empirical crossover at predicted cf ~ {out['empirical_crossover_cf']}; "
        f"default threshold {out['default_threshold']}; "
        f"best sweep threshold {out['best_threshold']} "
        f"({out['best_total_seconds']:.4f}s total)"
    )


def test_auto_threshold_calibration(benchmark):
    """Crossover curve + a pytest-benchmark timing of one auto dispatch."""
    out = run_threshold_sweep()
    save_results("BENCH_auto_threshold", out)
    _print_report(out)
    a, at = _operand(k=60, **CASE)
    benchmark(spgemm_auto, a, at, OverlapSemiring())
    benchmark.extra_info["best_threshold"] = out["best_threshold"]
    # the compression factors must actually span the crossover regime
    cfs = [c["predicted_cf"] for c in out["cases"]]
    assert max(cfs) > 2.0 > min(cfs)


def calibration_value(out: dict) -> float:
    """The threshold a sweep feeds back into :data:`repro.config.DEFAULTS`.

    The best sweep threshold, unless that is the "never dispatch to
    Gustavson" sentinel — a sweep winner, not a usable default crossover —
    in which case the empirical crossover (or, failing that, the shipped
    registry default) is written instead.
    """
    best = float(out["best_threshold"])
    if best < NEVER_GUSTAVSON_SENTINEL:
        return best
    if out["empirical_crossover_cf"] is not None:
        return float(out["empirical_crossover_cf"])
    return float(out["default_threshold"])


def _write_default(out: dict) -> None:
    """Close the ROADMAP loop: persist the measured best crossover.

    The value lands in ``repro/config.py``'s calibration file, from which
    :data:`repro.config.DEFAULTS` (and therefore
    ``PastisParams.auto_compression_threshold``) picks it up on the next
    import — see :func:`repro.config.write_calibration`.
    """
    from repro.config import load_calibration, write_calibration

    value = calibration_value(out)
    path = write_calibration({"auto_compression_threshold": value})
    readback = load_calibration(path)
    assert readback["auto_compression_threshold"] == value, "calibration did not round-trip"
    print(f"wrote auto_compression_threshold={value} to {path}")


def _smoke() -> None:
    """Standalone sweep (reduced repeats) — runnable without pytest."""
    out = run_threshold_sweep(repeats=1)
    _print_report(out)
    save_results("BENCH_auto_threshold", out)
    cfs = [c["predicted_cf"] for c in out["cases"]]
    assert max(cfs) > 2.0 > min(cfs), "cases no longer span the dispatch crossover"
    assert out["thresholds"], "threshold sweep produced no rows"
    assert calibration_value(out) > 0
    print("smoke OK: crossover curve measured; outputs bit-identical across kernels")


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        _smoke()
    elif "--write-default" in sys.argv:
        out = run_threshold_sweep(repeats=3)
        _print_report(out)
        save_results("BENCH_auto_threshold", out)
        _write_default(out)
    else:
        sys.exit("usage: python benchmarks/bench_auto_threshold.py --smoke | --write-default "
                 "(full benchmarks run via: pytest benchmarks/ --benchmark-only)")
