"""Measured-clock depth x threads sweep of the threaded executor.

``bench_pipeline.py`` compares the schedulers on the *modeled* clock; this
bench measures the real thing: the pipeline runs under ``clock="measured"``
with the :class:`~repro.core.engine.executor.ThreadedScheduler` actually
executing ``discover(b+1..b+k)`` on a worker pool concurrent with
``align(b)``, over a sweep of speculative depth x worker threads.  The
workload uses substitute k-mer seeding, which makes candidate discovery
(the background lane) a substantial share of the phase — the regime where
pre-blocking has something to hide.

The discover lane is sequential by design (block-order turnstile), so the
depth axis is what moves wall time; the threads axis is swept to exercise
the executor's thread-count invariance (results and lane throughput must
not change with pool size), not to scale the lane.

Two speedups are reported per configuration, deliberately distinct:

* ``schedule_speedup`` — the depth-k overlap algebra applied to the
  *measured* per-rank stage seconds (``sum(align + spgemm)`` over the
  combined clock): how much of the background lane the schedule hid.  This
  is machine-independent and must exceed 1.0 whenever overlap occurred.
* ``wall_speedup`` — serial stage-loop wall seconds over threaded stage-loop
  wall seconds (best of ``repeats``): the hardware fact.  It needs at least
  two usable cores to materialize (the GIL interleaves, NumPy kernels
  release it), so the smoke asserts it only when the machine has them; the
  JSON always records it together with the visible CPU count.

Writes ``benchmarks/results/BENCH_overlap_depth.json``; CI runs ``--smoke``
and uploads the JSON as a workflow artifact.  Results are asserted
bit-identical across every configuration — concurrency may reorder
execution, never results.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.params import PastisParams
from repro.core.pipeline import PastisPipeline
from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset

from _results import save_results

#: Substitute-k-mer seeding makes the overlap SpGEMM heavy enough that the
#: discover lane is worth hiding (~40-60% of the phase on one core).
WORKLOAD = dict(
    n_sequences=90,
    family_fraction=0.75,
    mean_family_size=5.0,
    mutation_rate=0.09,
    fragment_probability=0.1,
    seed=97,
)
DEPTHS = (1, 2, 4)
THREADS = (1, 2, 4)


def _params(**overrides) -> PastisParams:
    return PastisParams(
        kmer_length=6,
        substitute_kmers=2,
        common_kmer_threshold=2,
        nodes=4,
        num_blocks=8,
        clock="measured",
        **overrides,
    )


def _run(seqs, params, repeats: int):
    """Best stage-loop wall seconds over ``repeats`` runs + the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        result = PastisPipeline(params).run(seqs)
        best = min(best, result.timeline.measured_phase_seconds)
    return best, result


def _schedule_speedup(result) -> float:
    """sum(align + spgemm) / combined clock on the run's measured seconds."""
    ledger = result.ledger
    summed = float((ledger.per_rank("align") + ledger.per_rank("spgemm")).max())
    combined = float(result.timeline.combined_per_rank.max())
    return summed / combined if combined > 0 else 1.0


def run_depth_sweep(
    depths=DEPTHS, threads=THREADS, repeats: int = 2, workload=WORKLOAD
) -> dict:
    """Serial baseline + depth x threads sweep under the measured clock."""
    seqs = synthetic_dataset(config=SyntheticDatasetConfig(**workload))
    serial_best, serial = _run(seqs, _params(), repeats)
    serial_edges = serial.similarity_graph.edges

    rows = []
    for depth in depths:
        for nthreads in threads:
            best, result = _run(
                seqs,
                _params(
                    pre_blocking=True,
                    preblock_depth=depth,
                    preblock_workers=nthreads,
                    scheduler="threaded",
                ),
                repeats,
            )
            assert result.scheduler == "threaded"
            assert np.array_equal(result.similarity_graph.edges, serial_edges), (
                f"depth={depth} threads={nthreads}: results diverged from serial"
            )
            rows.append(
                {
                    "depth": depth,
                    "threads": nthreads,
                    "phase_seconds": best,
                    "wall_speedup": serial_best / best,
                    "schedule_speedup": _schedule_speedup(result),
                    "peak_live_blocks": result.stats.extras["peak_live_blocks"],
                    "measured_discover_seconds": result.stats.extras[
                        "measured_discover_seconds"
                    ],
                    "measured_align_seconds": result.stats.extras[
                        "measured_align_seconds"
                    ],
                }
            )
    best_row = max(rows, key=lambda r: r["wall_speedup"])
    return {
        "workload": dict(workload),
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "usable_cpus": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count(),
        "serial": {
            "phase_seconds": serial_best,
            "measured_discover_seconds": serial.stats.extras[
                "measured_discover_seconds"
            ],
            "measured_align_seconds": serial.stats.extras["measured_align_seconds"],
        },
        "rows": rows,
        "best_wall_speedup": best_row["wall_speedup"],
        "best_config": {"depth": best_row["depth"], "threads": best_row["threads"]},
    }


def _print_report(out: dict) -> None:
    serial = out["serial"]
    print(
        f"serial phase {serial['phase_seconds']:.2f}s "
        f"(discover {serial['measured_discover_seconds']:.2f}s, "
        f"align {serial['measured_align_seconds']:.2f}s, "
        f"{out['usable_cpus']} usable CPUs)"
    )
    header = (
        f"{'depth':>5} {'threads':>7} {'phase s':>8} {'wall x':>7} "
        f"{'sched x':>8} {'live blk':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in out["rows"]:
        print(
            f"{row['depth']:>5} {row['threads']:>7} {row['phase_seconds']:>8.2f} "
            f"{row['wall_speedup']:>7.2f} {row['schedule_speedup']:>8.2f} "
            f"{row['peak_live_blocks']:>8.0f}"
        )
    print(
        f"best wall speedup x{out['best_wall_speedup']:.2f} at "
        f"depth={out['best_config']['depth']} threads={out['best_config']['threads']}"
    )


def _assert_invariants(out: dict) -> None:
    for row in out["rows"]:
        assert row["peak_live_blocks"] <= row["depth"] + 1, (
            f"depth={row['depth']}: accumulator admitted more than depth+1 blocks"
        )
        assert row["schedule_speedup"] > 1.0, (
            f"depth={row['depth']} threads={row['threads']}: "
            "the executed schedule hid nothing"
        )


def test_overlap_depth_benchmark(benchmark):
    """Depth x threads sweep (pytest-benchmark wrapper around one config)."""
    out = run_depth_sweep(repeats=2)
    save_results("BENCH_overlap_depth", out)
    _print_report(out)
    _assert_invariants(out)
    seqs = synthetic_dataset(config=SyntheticDatasetConfig(**WORKLOAD))
    params = _params(pre_blocking=True, preblock_depth=2, preblock_workers=2)
    benchmark(lambda: PastisPipeline(params).run(seqs))
    benchmark.extra_info["best_wall_speedup"] = out["best_wall_speedup"]


def _remeasure_best(out: dict, repeats: int = 3) -> float:
    """Re-measure serial vs. the sweep's best config head to head.

    Wall-clock comparisons on shared CI hardware are noisy: a co-tenant
    spike during one baseline run can sink a genuine speedup below 1.0.
    Before declaring the overlap gone, re-run the two contenders
    back-to-back with more repeats and take the better reading.
    """
    seqs = synthetic_dataset(config=SyntheticDatasetConfig(**out["workload"]))
    serial_best, _ = _run(seqs, _params(), repeats)
    best = out["best_config"]
    threaded_best, _ = _run(
        seqs,
        _params(
            pre_blocking=True,
            preblock_depth=best["depth"],
            preblock_workers=best["threads"],
            scheduler="threaded",
        ),
        repeats,
    )
    return serial_best / threaded_best


def _smoke() -> None:
    """Standalone sweep (reduced grid) — used by CI."""
    out = run_depth_sweep(threads=(2,), repeats=2)
    _print_report(out)
    save_results("BENCH_overlap_depth", out)
    _assert_invariants(out)
    if out["usable_cpus"] >= 2:
        wall_speedup = out["best_wall_speedup"]
        if wall_speedup <= 1.0:
            wall_speedup = max(wall_speedup, _remeasure_best(out))
            out["remeasured_wall_speedup"] = wall_speedup
            save_results("BENCH_overlap_depth", out)
        assert wall_speedup > 1.0, (
            "no measured wall-clock speedup from the threaded executor on a "
            f"{out['usable_cpus']}-CPU machine (even after re-measuring)"
        )
        print(
            "smoke OK: real wall-clock speedup "
            f"x{wall_speedup:.2f} over serial; schedule hid "
            "background work at every depth; memory stayed within depth+1 blocks"
        )
    else:
        # a single usable core cannot run the lanes in parallel; the
        # schedule-level assertions above still gate the executor
        assert out["best_wall_speedup"] > 0.7, (
            "threaded executor overhead is pathological on one core"
        )
        print(
            "smoke OK (single CPU: wall speedup not asserted, measured "
            f"x{out['best_wall_speedup']:.2f}); schedule hid background work "
            "at every depth; memory stayed within depth+1 blocks"
        )


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        _smoke()
    else:
        sys.exit("usage: python benchmarks/bench_overlap_depth.py --smoke "
                 "(full benchmarks run via: pytest benchmarks/ --benchmark-only)")
