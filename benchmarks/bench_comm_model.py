"""Ablation: communication cost of blocked vs. plain 2D Sparse SUMMA (§VI-A).

The paper gives closed-form per-rank broadcast costs

* plain:    ``2 alpha sqrt(p) log sqrt(p) + 2 beta s sqrt(p) log sqrt(p)``
* blocked:  ``2 alpha (br bc) sqrt(p) log sqrt(p) + beta s (br+bc) sqrt(p) log sqrt(p)``

i.e. the latency term grows with the *number of blocks* while the bandwidth
term grows only with ``br + bc``.  This ablation (1) evaluates the formulas
across blocking factors, and (2) cross-checks them against the communication
time actually charged by the simulated collectives when running the blocked
SUMMA, confirming the bandwidth-term scaling and the memory/communication
trade-off that motivates blocking.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distsparse.blocked_summa import BlockedSpGemm, BlockSchedule
from repro.distsparse.distmat import DistSparseMatrix
from repro.hardware.topology import SUMMIT_NETWORK
from repro.io.tables import format_table
from repro.mpi.communicator import SimCommunicator
from repro.perfmodel.analytic import blocked_summa_communication_seconds, summa_communication_seconds
from repro.sparse.coo import CooMatrix
from repro.sparse.semiring import OverlapSemiring

from _results import save_results

BLOCKINGS = [(1, 1), (2, 2), (4, 4), (8, 8)]


def run():
    # ---- closed-form formulas at paper-like scale --------------------------------
    p, local_bytes = 3364, 48.8e9 * 20 / 3364
    formula_rows = []
    for br, bc in BLOCKINGS + [(20, 20)]:
        cost = blocked_summa_communication_seconds(p, local_bytes, br, bc, SUMMIT_NETWORK)
        formula_rows.append([f"{br}x{bc}", br * bc, cost])
    plain = summa_communication_seconds(p, local_bytes, SUMMIT_NETWORK)
    print("\n§VI-A — SUMMA broadcast cost model at 3364 nodes (seconds per rank)")
    print(format_table(["blocking", "blocks", "modelled comm s"], formula_rows, precision=2))
    print(f"plain (unblocked) SUMMA: {plain:.2f} s")

    # ---- simulated collectives on a real (small) blocked SUMMA --------------------
    rng = np.random.default_rng(0)
    n, k, nnz = 48, 400, 900
    a = CooMatrix(
        (n, k), rng.integers(0, n, nnz), rng.integers(0, k, nnz),
        rng.integers(0, 60, nnz).astype(np.int32),
    ).deduplicate()
    measured_rows = []
    measured = []
    for br, bc in BLOCKINGS:
        comm = SimCommunicator(4)
        engine = BlockedSpGemm(
            DistSparseMatrix.from_global_coo(a, comm),
            DistSparseMatrix.from_global_coo(a.transpose(), comm),
            OverlapSemiring(),
            BlockSchedule(n, n, br, bc),
        )
        for _ in engine.iter_blocks():
            pass
        comm_seconds = comm.ledger.component_time("comm")
        measured.append(
            {
                "blocking": f"{br}x{bc}",
                "blocks": br * bc,
                "simulated_comm_s": comm_seconds,
                "peak_block_bytes": engine.peak_block_bytes,
                "model": engine.broadcast_volume_model(),
            }
        )
        measured_rows.append([f"{br}x{bc}", br * bc, comm_seconds, engine.peak_block_bytes])
    print("\nSimulated collectives (4 virtual ranks, synthetic matrix): comm time vs peak block memory")
    print(
        format_table(
            ["blocking", "blocks", "simulated comm s", "peak block bytes"],
            measured_rows,
            precision=6,
        )
    )
    save_results(
        "comm_model_ablation",
        {"formula": formula_rows, "plain": plain, "measured": measured},
    )
    return formula_rows, plain, measured


def test_comm_model_ablation(benchmark):
    formula_rows, plain, measured = benchmark.pedantic(run, rounds=1, iterations=1)
    # 1x1 blocked == plain SUMMA cost
    assert formula_rows[0][2] == pytest.approx(plain, rel=1e-9)
    # communication cost increases with the number of blocks ...
    costs = [row[2] for row in formula_rows]
    assert all(costs[i] <= costs[i + 1] for i in range(len(costs) - 1))
    # ... but sub-linearly: 64x more blocks costs far less than 64x more time
    assert costs[3] / costs[0] < 10
    # the simulated collectives show the same monotone trade-off:
    sim = [m["simulated_comm_s"] for m in measured]
    mem = [m["peak_block_bytes"] for m in measured]
    assert all(sim[i] <= sim[i + 1] * 1.001 for i in range(len(sim) - 1))
    assert mem[-1] < mem[0]
