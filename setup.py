"""Setuptools shim.

The ``wheel`` package is not available in the offline environment, so PEP-517
editable installs (which build a wheel) fail.  Keeping a ``setup.py`` lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to the
legacy develop-mode install, which needs only setuptools.
"""

from setuptools import setup

setup(
    extras_require={
        # optional compiled SpGEMM backend: registers the "gustavson-numba"
        # kernel (repro.sparse.gustavson_numba); everything degrades
        # gracefully to the pure-NumPy kernels without it
        "fast": ["numba"],
    },
)
