#!/usr/bin/env python
"""FASTA → similarity graph → protein families, end to end.

The walkthrough for the :mod:`repro.graph` clustering subsystem:

1. generate a family-structured synthetic catalog and round-trip it through
   FASTA (the on-disk form a real catalog arrives in);
2. run the PASTIS many-against-many search with the clustering stage
   enabled (``ClusterParams.enabled``), so the pipeline appends sparse
   Markov clustering after the similarity graph is accumulated;
3. compare MCL against plain connected components — including on a graph
   deliberately polluted with a spurious bridge edge, the failure mode
   connectivity cannot recover from;
4. print the clustering report table and the recovered family-size
   histogram.

Run with:  python examples/cluster_families.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import ClusterParams, PastisParams, PastisPipeline, read_fasta, write_fasta
from repro.core.similarity_graph import SimilarityGraph
from repro.graph import cluster_similarity_graph, evaluate_clustering, pairwise_f1
from repro.io.report import clustering_table
from repro.sequences.synthetic import SyntheticDatasetConfig, family_labels, synthetic_dataset


def main() -> None:
    # ---- 1. a catalog on disk ------------------------------------------------
    config = SyntheticDatasetConfig(
        n_sequences=180,
        family_fraction=0.75,
        mean_family_size=6.0,
        mutation_rate=0.08,
        fragment_probability=0.10,
        seed=17,
    )
    generated = synthetic_dataset(config=config)
    with tempfile.TemporaryDirectory() as tmp:
        fasta_path = Path(tmp) / "catalog.fasta"
        write_fasta(fasta_path, generated)
        sequences = read_fasta(fasta_path)
        print(f"catalog: {len(sequences)} sequences read back from {fasta_path.name}")
    truth = family_labels(sequences)
    n_true = len(set(truth[truth >= 0].tolist()))
    print(f"ground truth: {n_true} families, {(truth < 0).sum()} singletons")

    # ---- 2. search + clustering in one pipeline run --------------------------
    params = PastisParams(
        kmer_length=5,
        common_kmer_threshold=1,
        ani_threshold=0.40,
        nodes=4,
        num_blocks=16,
        pre_blocking=True,
        cluster=ClusterParams(enabled=True, inflation=2.0, weight_transform="ani"),
    )
    result = PastisPipeline(params).run(sequences)
    graph = result.similarity_graph
    print(
        f"search: {result.stats.alignments_performed} alignments → "
        f"{graph.num_edges} similar pairs"
    )
    print()
    print(clustering_table(result.clustering))
    print()

    # ---- 3. MCL vs connected components --------------------------------------
    mcl_labels = result.clustering.labels
    cc = cluster_similarity_graph(graph, ClusterParams(method="components"))
    print(
        f"components: {cc.n_clusters} clusters, F1 {pairwise_f1(truth, cc.labels):.3f} | "
        f"mcl: {result.clustering.n_clusters} clusters, "
        f"F1 {pairwise_f1(truth, mcl_labels):.3f}"
    )

    # the over-merge demonstration: pollute the graph with one spurious
    # bridge between the two largest recovered families
    sizes = np.bincount(mcl_labels)
    big_a, big_b = np.argsort(sizes)[-2:]
    bridge = np.zeros(1, dtype=graph.edges.dtype)
    bridge["row"] = int(np.flatnonzero(mcl_labels == big_a)[0])
    bridge["col"] = int(np.flatnonzero(mcl_labels == big_b)[0])
    bridge["ani"], bridge["coverage"], bridge["score"] = 0.41, 0.71, 30
    polluted = SimilarityGraph.from_edges(
        np.concatenate([graph.edges, bridge]), graph.n_vertices
    )
    cc_polluted = cluster_similarity_graph(polluted, ClusterParams(method="components"))
    mcl_polluted = cluster_similarity_graph(polluted, ClusterParams())
    print(
        "after one spurious bridge edge: "
        f"components {cc.n_clusters} → {cc_polluted.n_clusters} clusters (merged!), "
        f"mcl {result.clustering.n_clusters} → {mcl_polluted.n_clusters} "
        f"(F1 {pairwise_f1(truth, mcl_polluted.labels):.3f})"
    )

    # ---- 4. family-size histogram -------------------------------------------
    quality = evaluate_clustering(graph, mcl_labels)
    non_singleton = {s: c for s, c in quality.size_histogram.items() if s > 1}
    print(f"recovered family-size histogram (size: count): {non_singleton}")


if __name__ == "__main__":
    main()
