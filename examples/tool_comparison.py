#!/usr/bin/env python
"""Compare PASTIS against the baseline search strategies on one dataset.

Reproduces, at laptop scale, the comparison of §IV/§VIII-C: the PASTIS
pipeline vs. an MMseqs2-like chunk-and-replicate search, a DIAMOND-like
work-package search, and the brute-force ground truth.  For each tool it
reports sensitivity (recall of the true similar pairs), the number of
alignments performed, per-node memory behaviour, and modelled runtime.

Run with:  python examples/tool_comparison.py
"""

from __future__ import annotations

from repro import PastisParams, PastisPipeline
from repro.baselines import (
    BruteForceSearch,
    DiamondLikeSearch,
    MmseqsLikeSearch,
    candidate_recall,
)
from repro.io.tables import format_table
from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset


def main() -> None:
    config = SyntheticDatasetConfig(
        n_sequences=150, family_fraction=0.7, mean_family_size=5.0, mutation_rate=0.09, seed=23
    )
    sequences = synthetic_dataset(config=config)
    print(f"dataset: {len(sequences)} sequences, {sequences.total_residues} residues\n")

    kmer, threshold = 5, 1

    # ground truth: align everything
    truth = BruteForceSearch().run(sequences)

    # PASTIS pipeline
    pastis = PastisPipeline(
        PastisParams(
            kmer_length=kmer,
            common_kmer_threshold=threshold,
            nodes=4,
            num_blocks=9,
            load_balancing="triangularity",
            pre_blocking=True,
        )
    ).run(sequences)

    # baselines
    mmseqs = MmseqsLikeSearch(kmer_length=kmer, common_kmer_threshold=threshold, nodes=4).run(
        sequences
    )
    diamond = DiamondLikeSearch(
        kmer_length=kmer, common_kmer_threshold=threshold, query_chunks=2, reference_chunks=2
    ).run(sequences)

    rows = []
    rows.append(
        [
            "brute-force",
            truth.stats.alignments,
            truth.similarity_graph.num_edges,
            1.000,
            truth.stats.peak_node_bytes,
            0,
            f"{truth.stats.modeled_seconds:.4f}",
        ]
    )
    rows.append(
        [
            "PASTIS (repro)",
            pastis.stats.alignments_performed,
            pastis.similarity_graph.num_edges,
            round(candidate_recall(pastis.similarity_graph, truth.similarity_graph), 3),
            int(pastis.stats.peak_block_bytes),
            0,
            f"{pastis.stats.time_total:.4f}",
        ]
    )
    rows.append(
        [
            "MMseqs2-like",
            mmseqs.stats.alignments,
            mmseqs.similarity_graph.num_edges,
            round(candidate_recall(mmseqs.similarity_graph, truth.similarity_graph), 3),
            mmseqs.stats.peak_node_bytes,
            0,
            f"{mmseqs.stats.modeled_seconds:.4f}",
        ]
    )
    rows.append(
        [
            "DIAMOND-like",
            diamond.stats.alignments,
            diamond.similarity_graph.num_edges,
            round(candidate_recall(diamond.similarity_graph, truth.similarity_graph), 3),
            diamond.stats.peak_node_bytes,
            diamond.stats.intermediate_io_bytes,
            f"{diamond.stats.modeled_seconds:.4f}",
        ]
    )
    print(
        format_table(
            ["tool", "alignments", "similar pairs", "recall", "peak node B", "staged IO B", "model time s"],
            rows,
        )
    )

    print(
        "\nNotes:\n"
        "  * recall is measured against the brute-force ground truth at the same\n"
        "    ANI/coverage thresholds;\n"
        "  * 'peak node B' shows the memory behaviour the paper criticises: the\n"
        "    MMseqs2-like baseline replicates a full k-mer index per node, while\n"
        "    PASTIS's peak is one overlap block (2D-distributed);\n"
        "  * 'staged IO B' is the DIAMOND-like baseline's intermediate file-system\n"
        "    traffic (PASTIS and MMseqs2-like stage nothing)."
    )


if __name__ == "__main__":
    main()
