#!/usr/bin/env python
"""Protein-family clustering of a metagenome sample (the paper's §III use case).

Many-against-many search followed by clustering is how catalogs like
Metaclust are built: every sequence is compared against every other, the
similarity graph is thresholded, and its connected components become protein
families.  This example generates a synthetic sample with *known* family
structure, runs PASTIS, clusters the similarity graph, and scores the
recovered clustering against the ground truth.

Run with:  python examples/metagenome_clustering.py
"""

from __future__ import annotations

import numpy as np

from repro import PastisParams, PastisPipeline
from repro.sequences.synthetic import SyntheticDatasetConfig, family_labels, synthetic_dataset


def pairwise_f1(true_labels: np.ndarray, pred_labels: np.ndarray) -> tuple[float, float, float]:
    """Precision/recall/F1 over co-clustered pairs (singletons excluded from truth)."""
    n = len(true_labels)
    true_pairs = set()
    pred_pairs = set()
    for i in range(n):
        for j in range(i + 1, n):
            if true_labels[i] >= 0 and true_labels[i] == true_labels[j]:
                true_pairs.add((i, j))
            if pred_labels[i] == pred_labels[j]:
                pred_pairs.add((i, j))
    if not pred_pairs or not true_pairs:
        return 0.0, 0.0, 0.0
    tp = len(true_pairs & pred_pairs)
    precision = tp / len(pred_pairs)
    recall = tp / len(true_pairs)
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return precision, recall, f1


def main() -> None:
    # families with moderate divergence; a quarter of the catalog is singletons
    config = SyntheticDatasetConfig(
        n_sequences=240,
        family_fraction=0.75,
        mean_family_size=6.0,
        mutation_rate=0.08,
        fragment_probability=0.10,
        seed=17,
    )
    sequences = synthetic_dataset(config=config)
    truth = family_labels(sequences)
    n_true_families = len(set(truth[truth >= 0].tolist()))
    print(f"dataset: {len(sequences)} sequences, {n_true_families} true families, "
          f"{(truth < 0).sum()} singletons")

    params = PastisParams(
        kmer_length=5,
        common_kmer_threshold=1,
        ani_threshold=0.40,
        coverage_threshold=0.70,
        nodes=4,
        num_blocks=16,
        load_balancing="index",
        pre_blocking=True,
    )
    result = PastisPipeline(params).run(sequences)
    graph = result.similarity_graph
    print(f"search: {result.stats.alignments_performed} alignments, "
          f"{graph.num_edges} similar pairs "
          f"({100 * result.stats.similar_fraction:.1f}% of alignments)")

    predicted = graph.connected_components()
    # relabel predicted singletons distinctly so they never count as co-clustered
    cluster_sizes = np.bincount(predicted)
    print(f"clustering: {len(set(predicted.tolist()))} components, "
          f"largest has {cluster_sizes.max()} members")

    precision, recall, f1 = pairwise_f1(truth, predicted)
    print(f"pairwise clustering quality vs. ground truth: "
          f"precision={precision:.3f} recall={recall:.3f} F1={f1:.3f}")

    # family-size distribution of the recovered clusters
    sizes, counts = np.unique(cluster_sizes[cluster_sizes > 1], return_counts=True)
    print("recovered family-size histogram (size: count):",
          {int(s): int(c) for s, c in zip(sizes, counts)})


if __name__ == "__main__":
    main()
