#!/usr/bin/env python
"""Metrics, the run registry, and the regression gate, end to end.

The walkthrough for :mod:`repro.obs` — where :mod:`repro.trace` answers
"when did what happen inside this one run", the metrics layer answers
"how much, and is it getting slower across runs":

1. run the PASTIS search twice with ``PastisParams.run_registry`` set —
   a cold cache-populating run and a warm run under the process
   scheduler — so each run appends a schema-versioned manifest
   (``run.json``) to the local registry;
2. look at what the metrics facade collected: ledger seconds per
   category, per-SUMMA-stage kernel seconds and measured compression
   factors (journaled in the discover workers, merged parent-side),
   cache hit/miss counters, per-lane stats;
3. drive the registry CLI the way CI does: ``ls`` the runs, ``diff``
   cold vs warm, ``export`` Prometheus text, and ``regress`` the warm
   run against the cold baseline;
4. show the regression gate firing: inject a synthetic 2x slowdown into
   a copy of the warm manifest and watch ``regress`` flag it.

Metrics are off by default and non-perturbing: the observed run's edges
are bit-identical to an unobserved one (asserted below, and by
``tests/test_obs.py`` for all four schedulers).

Run with:  python examples/metrics_run.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np

from repro import PastisParams, PastisPipeline
from repro.obs.__main__ import main as obs_cli
from repro.obs.registry import RunRegistry

from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset

OUT_DIR = Path("metrics-example")


def main() -> None:
    # ---- 1. two observed runs feeding one registry ---------------------------
    config = SyntheticDatasetConfig(
        n_sequences=120,
        family_fraction=0.75,
        mean_family_size=5.0,
        mutation_rate=0.09,
        fragment_probability=0.10,
        seed=97,
    )
    sequences = synthetic_dataset(config=config)
    registry_dir = OUT_DIR
    with tempfile.TemporaryDirectory(prefix="metrics-example-cache-") as cache_dir:
        params = PastisParams(
            kmer_length=5,
            common_kmer_threshold=1,
            nodes=4,
            num_blocks=6,
            load_balancing="index",
            pre_blocking=True,
            scheduler="process",
            preblock_depth=3,
            preblock_workers=2,
            cache_dir=cache_dir,
            run_registry=str(registry_dir),
        )
        registry = RunRegistry(registry_dir)
        print(f"cold run (populates the stage cache, registry={registry_dir})...")
        baseline = PastisPipeline(params).run(sequences)
        cold_id = registry.latest()["run_id"]
        print(f"  {baseline.stats.similar_pairs:,} similar pairs, "
              f"{baseline.stats.extras['cache']['stores']} blocks cached")

        print("warm observed run (cache hits, same registry)...")
        observed = PastisPipeline(params).run(sequences, resume=True)
        warm_id = registry.latest()["run_id"]

        # non-perturbation: metrics never change results
        unobserved = PastisPipeline(
            params.replace(run_registry=None)
        ).run(sequences, resume=True)
    assert np.array_equal(
        observed.similarity_graph.edges, unobserved.similarity_graph.edges
    ), "observed run diverged from the unobserved one"

    # ---- 2. what the metrics facade collected --------------------------------
    hub = observed.metrics
    snapshot = hub.snapshot()
    print(f"\ncollected {len(snapshot['counters'])} counters, "
          f"{len(snapshot['gauges'])} gauges, "
          f"{len(snapshot['histograms'])} histograms")
    print(f"  ledger align seconds      "
          f"{hub.value('ledger_seconds', category='align'):.6f}")
    print(f"  cache hits                "
          f"{hub.value('cache_events', kind='hits'):.0f}")
    # kernel histograms live in the *cold* run's hub — the warm run replayed
    # every block from the cache, so no SpGEMM kernel ever executed
    kernel = baseline.metrics.histogram("spgemm_kernel_seconds",
                                        backend="gustavson", stage="0")
    if kernel is not None:
        print(f"  stage-0 kernel seconds    {kernel['count']:.0f} obs, "
              f"sum {kernel['sum']:.6f} (cold run; journaled in the "
              f"workers, merged parent-side)")

    # ---- 3. the registry CLI, as CI drives it --------------------------------
    print(f"\n$ python -m repro.obs ls --registry {registry_dir}")
    obs_cli(["ls", "--registry", str(registry_dir)])
    print(f"\n$ python -m repro.obs diff {cold_id} {warm_id}")
    obs_cli(["diff", cold_id, warm_id, "--registry", str(registry_dir)])
    print(f"\n$ python -m repro.obs export {warm_id} | head")
    text = registry.load(warm_id)
    from repro.obs import prometheus_from_snapshot
    for line in prometheus_from_snapshot(
        text.get("metrics") or {"counters": [], "gauges": [], "histograms": []}
    ).splitlines()[:8]:
        print(line)

    print(f"\n$ python -m repro.obs regress {warm_id}  (warm vs cold baseline)")
    rc = obs_cli(["regress", warm_id, "--registry", str(registry_dir)])
    print(f"exit status: {rc}")

    # ---- 4. the gate firing on a synthetic 2x slowdown -----------------------
    slow = dict(registry.load(warm_id))
    slow["run_id"] = slow["run_id"] + "-slow"
    slow["phase_seconds"] = {
        k: v * 2.0 for k, v in slow["phase_seconds"].items()
    }
    if slow.get("wall_seconds") is not None:
        slow["wall_seconds"] = slow["wall_seconds"] * 2.0
    registry.record(slow)
    print(f"\n$ python -m repro.obs regress {slow['run_id']}  (injected 2x slowdown)")
    rc = obs_cli(["regress", slow["run_id"], "--registry", str(registry_dir)])
    print(f"exit status: {rc}  (non-zero fails the CI gate; "
          f"--warn-only downgrades it)")

    print(f"\nregistry manifests: {registry.runs_dir}/*.json — "
          "schema-versioned, one per run, success and failure paths alike")


if __name__ == "__main__":
    main()
