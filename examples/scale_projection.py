#!/usr/bin/env python
"""Project a measured small-scale run to Summit scale (the paper's Table IV).

Runs the actual pipeline on a few hundred synthetic sequences, calibrates a
workload profile from the measured counters (candidates per sequence pair,
DP cells per alignment, SpGEMM flops per candidate, ...), scales that profile
to 405 million sequences with the paper's quadratic/linear growth rules, and
feeds it to the analytic performance model to estimate the full-scale
production run on 3364 Summit nodes — alongside the projection built directly
from the paper's own Table IV workload numbers.

Run with:  python examples/scale_projection.py
"""

from __future__ import annotations

from repro import PastisParams, PastisPipeline, synthetic_dataset
from repro.io.tables import format_table
from repro.perfmodel import AnalyticModel, WorkloadProfile, calibrate_profile


def main() -> None:
    # ---- 1. measure a small run of the real pipeline ------------------------
    sequences = synthetic_dataset(n_sequences=250, seed=3)
    params = PastisParams(
        kmer_length=6,
        common_kmer_threshold=1,
        nodes=4,
        num_blocks=4,
        load_balancing="triangularity",
        pre_blocking=True,
    )
    result = PastisPipeline(params).run(sequences)
    print(
        f"measured run: {len(sequences)} sequences, "
        f"{result.stats.candidates_discovered} candidates, "
        f"{result.stats.alignments_performed} alignments, "
        f"{result.stats.similar_pairs} similar pairs"
    )

    # ---- 2. calibrate a workload profile and scale it to 405M sequences ------
    coeffs = calibrate_profile(result)
    calibrated = coeffs.profile_for(405e6, num_blocks=400)

    # ---- 3. paper-derived profile for reference ------------------------------
    paper_profile = WorkloadProfile.paper_production()

    model = AnalyticModel(load_balancing="triangularity", pre_blocking=True)
    rows = []
    for name, profile in (("calibrated (synthetic)", calibrated), ("paper workload", paper_profile)):
        metrics = model.production_metrics(profile, 3364)
        rows.append(
            [
                name,
                f"{profile.alignments:.3g}",
                f"{metrics['runtime_hours']:.2f}",
                f"{metrics['align_hours']:.2f}",
                f"{metrics['spgemm_hours']:.2f}",
                f"{metrics['alignments_per_second']:.3g}",
                f"{metrics['tcups']:.1f}",
                f"{metrics['io_percent']:.2f}",
            ]
        )
    rows.append(
        ["paper (measured, Table IV)", "8.55e+12", "3.44", "2.62", "2.06", "6.91e+08", "176.3", "~3"]
    )
    print()
    print(
        format_table(
            ["profile", "alignments", "total h", "align h", "spgemm h", "aln/s", "TCUPS", "IO %"],
            rows,
        )
    )
    print(
        "\nThe calibrated row extrapolates the synthetic dataset's per-pair\n"
        "statistics quadratically; synthetic families are denser than Metaclust,\n"
        "so its workload (and runtime) overshoots.  The 'paper workload' row uses\n"
        "the paper's own candidate/alignment counts and reproduces the headline\n"
        "rates within the tolerances documented in EXPERIMENTS.md."
    )


if __name__ == "__main__":
    main()
