#!/usr/bin/env python
"""Trace a run and open it in Perfetto, end to end.

The walkthrough for :mod:`repro.trace`:

1. run the PASTIS search on a synthetic catalog with
   ``PastisParams.trace_dir`` set, under the process scheduler with a
   stage cache — a cold populating run, then a traced warm run, so the
   trace shows cache loads in the worker processes and the parent's
   block-ordered replay;
2. look at what the recorder collected: per-stage spans (discover /
   prune / align / accumulate), SUMMA broadcast stages, admission waits,
   cache loads and replays, with pid attribution across the parent and
   the discover workers;
3. print the per-stage/per-lane breakdown the CLI would print
   (``python -m repro.trace summarize <trace_dir>``);
4. point at the Perfetto document — drag ``trace.json`` onto
   https://ui.perfetto.dev (or ``chrome://tracing``) to see the timeline.

Tracing is off by default and non-perturbing: the traced run's edges are
bit-identical to an untraced one (asserted below, and by
``tests/test_trace.py`` for all four schedulers).

Run with:  python examples/trace_run.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import PastisParams, PastisPipeline
from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset
from repro.trace import summarize_text

OUT_DIR = Path("trace-example")


def main() -> None:
    # ---- 1. a traced warm-cache run under the process scheduler --------------
    config = SyntheticDatasetConfig(
        n_sequences=120,
        family_fraction=0.75,
        mean_family_size=5.0,
        mutation_rate=0.09,
        fragment_probability=0.10,
        seed=97,
    )
    sequences = synthetic_dataset(config=config)
    with tempfile.TemporaryDirectory(prefix="trace-example-cache-") as cache_dir:
        params = PastisParams(
            kmer_length=5,
            common_kmer_threshold=1,
            nodes=4,
            num_blocks=6,
            load_balancing="index",
            pre_blocking=True,
            scheduler="process",
            preblock_depth=3,
            preblock_workers=2,
            cache_dir=cache_dir,
        )
        print("cold run (populates the stage cache, untraced)...")
        cold = PastisPipeline(params).run(sequences)
        print(f"  {cold.stats.similar_pairs:,} similar pairs, "
              f"{cold.stats.extras['cache']['stores']} blocks cached")

        print(f"warm traced run (trace_dir={OUT_DIR})...")
        traced = PastisPipeline(
            params.replace(trace_dir=str(OUT_DIR))
        ).run(sequences, resume=True)

    # non-perturbation: tracing never changes results
    assert np.array_equal(
        cold.similarity_graph.edges, traced.similarity_graph.edges
    ), "traced run diverged from the untraced one"

    # ---- 2. what the recorder collected --------------------------------------
    recorder = traced.trace
    pids = sorted({span.pid for span in recorder.spans})
    workers = [pid for pid in pids if pid != recorder.pid]
    print(f"\nrecorded {len(recorder.spans)} spans, "
          f"{len(recorder.counters)} counter samples")
    print(f"parent pid {recorder.pid}, discover workers {workers}")
    for name in ("cache_load", "cache_replay", "admission_wait", "accumulate"):
        count = sum(1 for span in recorder.spans if span.name == name)
        print(f"  {name:<16} x{count}")

    # ---- 3. the CLI's per-stage / per-lane breakdown -------------------------
    print("\n" + summarize_text(OUT_DIR / "trace.jsonl"))

    # ---- 4. where to look at it ----------------------------------------------
    print(f"\nPerfetto document: {OUT_DIR / 'trace.json'}")
    print("open https://ui.perfetto.dev and drag the file in, or load it "
          "in chrome://tracing; the same breakdown is available via\n"
          f"  python -m repro.trace summarize {OUT_DIR}")


if __name__ == "__main__":
    main()
