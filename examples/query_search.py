#!/usr/bin/env python
"""Query-vs-database search: build an index once, answer query batches from it.

Builds a persistent k-mer index over a synthetic protein database
(:func:`repro.serve.build_index`), then serves two kinds of requests
through the :class:`repro.serve.QueryBatcher`:

* member queries — sequences that are in the database (the common
  "annotate my reads against the reference" case); and
* a novel query — a mutated variant the database has never seen, which
  gets an appended output row and is searched against every database
  sequence.

Prints each request's per-query matches and the modeled request-queue
books (the same OverlapWindow algebra the engine's overlapped scheduler
uses, one level up).

Run with:  python examples/query_search.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import PastisParams, SequenceSet, synthetic_dataset
from repro.serve import KmerIndex, QueryBatcher, build_index


def main() -> None:
    out_dir = Path("examples_output")
    out_dir.mkdir(exist_ok=True)
    index_dir = out_dir / "query_search_index"

    # 1. the database: a synthetic metagenome surrogate
    database = synthetic_dataset(n_sequences=80, seed=12)
    params = PastisParams(
        kmer_length=5,
        common_kmer_threshold=1,
        nodes=4,
        num_blocks=4,
    )

    # 2. build the persistent index (one-time, amortized over all queries)
    index = build_index(database, params, index_dir, force=True)
    print(f"index: {index.n_sequences} sequences, {index.nnz:,} nnz, "
          f"{index.bc} stripes, {index.payload_bytes():,} B at {index.path}")

    # 3. an opened index is self-describing and self-verifying
    print(f"verify: {KmerIndex.open(index_dir).verify()}")

    # 4. serve query batches against it
    batcher = QueryBatcher(index_dir, params, max_batch_queries=16)
    members = batcher.submit(database.subset(np.arange(0, 6)), request_id="members")

    # a novel query: database sequence 0 with a duplicated head — a variant
    # the index has never seen, searched against the whole database
    head = database.codes(0)
    variant = np.concatenate([head, head[: len(head) // 4]])
    novel_set = SequenceSet(
        data=variant,
        offsets=np.array([0, variant.size], dtype=np.int64),
        names=["novel-variant-of-seq0"],
        alphabet=database.alphabet,
    )
    novel = batcher.submit(novel_set, request_id="novel")

    answers = {answer.request_id: answer for answer in batcher.drain()}

    # 5. per-request, per-query match tables
    for request_id in (members, novel):
        answer = answers[request_id]
        print(f"\nrequest {answer.request_id!r} "
              f"(batch {answer.batch_index}, "
              f"wall {answer.batch_wall_seconds:.3f}s, "
              f"queue clock {answer.queue_clock_seconds:.6f}s modeled):")
        for name, row, matches in zip(answer.query_names, answer.rows, answer.matches):
            partners = ", ".join(
                f"{int(m['partner'])} (ani {float(m['ani']):.2f})" for m in matches[:5]
            )
            suffix = " …" if matches.size > 5 else ""
            print(f"  {name} [row {int(row)}]: {matches.size} matches: {partners}{suffix}")

    # 6. the request queue's books (reconciliation identity holds exactly)
    queue = batcher.queue_summary()
    print(f"\nqueue: {queue['batches']} batches, {queue['queries']} queries, "
          f"clock {queue['clock_seconds']:.6f}s modeled "
          f"(serial {queue['serial_clock_seconds']:.6f}s, "
          f"hidden {queue['hidden_seconds']:.6f}s, "
          f"residual {queue['identity_residual']:.1e})")


if __name__ == "__main__":
    main()
