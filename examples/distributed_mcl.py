#!/usr/bin/env python
"""Distributed Markov clustering on the 2D process grid, end to end.

The walkthrough for :mod:`repro.graph.dist`:

1. run the PASTIS search on a family-structured synthetic catalog and build
   the MCL transition matrix from its similarity graph;
2. run single-rank MCL, then distributed MCL on 2x2 and 3x3 grids — with
   and without the overlapped expand/prune schedule — and verify the labels
   and the final matrix are **bit-identical** in every configuration;
3. read the cluster-stage cost ledger: modeled expand/prune/comm seconds
   per rank, the seconds hidden by the overlap, the charged ``cluster_comm``
   volume against the closed-form broadcast model;
4. run the whole thing through the pipeline instead
   (``ClusterParams.nprocs/overlap``) and print the clustering report;
5. project the stage's strong scaling to node counts the simulator never
   ran (:func:`repro.perfmodel.scaling.cluster_strong_scaling_series`).

Run with:  python examples/distributed_mcl.py
"""

from __future__ import annotations

import numpy as np

from repro import ClusterParams, PastisParams, PastisPipeline
from repro.graph import (
    CLUSTER_COMM_CATEGORY,
    CLUSTER_EXPAND_CATEGORY,
    CLUSTER_OVERLAP_HIDDEN_CATEGORY,
    CLUSTER_PRUNE_CATEGORY,
    DistMarkovClustering,
    MarkovClustering,
    StochasticMatrix,
)
from repro.io.report import clustering_table
from repro.perfmodel.scaling import cluster_strong_scaling_series
from repro.sequences.synthetic import SyntheticDatasetConfig, synthetic_dataset


def main() -> None:
    # ---- 1. search → similarity graph → transition matrix --------------------
    sequences = synthetic_dataset(
        config=SyntheticDatasetConfig(
            n_sequences=150,
            family_fraction=0.75,
            mean_family_size=6.0,
            mutation_rate=0.08,
            seed=29,
        )
    )
    params = PastisParams(kmer_length=5, common_kmer_threshold=1, nodes=4, num_blocks=4)
    search = PastisPipeline(params).run(sequences)
    graph = search.similarity_graph
    matrix = StochasticMatrix.from_similarity_graph(graph)
    print(
        f"similarity graph: {graph.n_vertices} vertices, {graph.num_edges} edges; "
        f"transition matrix nnz={matrix.nnz}"
    )

    # ---- 2. serial vs distributed: bit-identity across grids -----------------
    serial = MarkovClustering().fit(matrix)
    print(
        f"\nsingle-rank MCL: {serial.n_clusters} clusters in "
        f"{serial.n_iterations} iterations (converged={serial.converged})"
    )
    for nprocs in (4, 9):
        for overlap in (False, True):
            dist = DistMarkovClustering(nprocs=nprocs, overlap=overlap).fit(matrix)
            assert np.array_equal(dist.labels, serial.labels)
            assert dist.final_matrix.same_bits(serial.final_matrix)
            sched = "overlapped" if overlap else "serial"
            print(
                f"  {dist.grid_dim}x{dist.grid_dim} grid, {sched:>10} schedule: "
                f"bit-identical; stage total {dist.total_seconds():.4f}s"
            )

    # ---- 3. the cluster-stage ledger ------------------------------------------
    dist = DistMarkovClustering(nprocs=9, overlap=True).fit(matrix)
    ledger = dist.ledger
    expand = ledger.per_rank(CLUSTER_EXPAND_CATEGORY)
    prune = ledger.per_rank(CLUSTER_PRUNE_CATEGORY)
    hidden = ledger.per_rank(CLUSTER_OVERLAP_HIDDEN_CATEGORY)
    comm = ledger.per_rank(CLUSTER_COMM_CATEGORY)
    print("\n3x3 overlapped run, per-rank ledger (seconds):")
    print(f"  expand  max {expand.max():.6f}  avg {expand.mean():.6f}")
    print(f"  prune   max {prune.max():.6f}  avg {prune.mean():.6f}")
    print(f"  comm    max {comm.max():.6f}  avg {comm.mean():.6f}")
    print(f"  hidden by overlap: {hidden.max():.6f} (max rank)")
    reconstructed = expand + prune - hidden
    assert np.allclose(reconstructed, dist.clock_per_rank, rtol=1e-12)
    print("  identity holds: expand + prune − hidden == combined clock")
    vol = dist.volume
    assert vol["charged_bytes_sent"] == vol["predicted_bytes_sent"]
    print(
        f"  cluster_comm volume: {vol['charged_bytes_sent']:,} B sent "
        f"== closed-form model (to the bit)"
    )

    # ---- 4. the same stage through the pipeline --------------------------------
    clustered = PastisPipeline(
        params.replace(
            cluster=ClusterParams(enabled=True, nprocs=9, overlap=True)
        )
    ).run(sequences)
    assert np.array_equal(clustered.clustering.labels, serial.labels)
    print("\npipeline run with ClusterParams(nprocs=9, overlap=True):\n")
    print(clustering_table(clustered.clustering))

    # ---- 5. strong-scaling projection ------------------------------------------
    print("\nstrong-scaling projection of the cluster stage (overlapped):")
    points = cluster_strong_scaling_series(
        expand_flops=serial.total_flops * 1e6,   # paper-scale workload surrogate
        iterate_bytes=matrix.nnz * 24.0 * 1e4,
        n_iterations=serial.n_iterations,
        node_counts=[1, 4, 16, 64, 256],
        overlap=True,
    )
    print(f"  {'nodes':>6} {'expand s':>10} {'prune s':>9} {'comm s':>9} {'eff':>6}")
    for p in points:
        print(
            f"  {p.nodes:>6} {p.expand_seconds:>10.2f} {p.prune_seconds:>9.2f} "
            f"{p.comm_seconds:>9.4f} {p.efficiency_total:>6.2f}"
        )


if __name__ == "__main__":
    main()
