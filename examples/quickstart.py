#!/usr/bin/env python
"""Quickstart: run a many-against-many protein similarity search end to end.

Generates a small synthetic metagenome-like dataset, runs the PASTIS pipeline
(candidate discovery via Blocked 2D Sparse SUMMA, batched Smith-Waterman,
ANI/coverage filtering), prints the Table-IV-style run report, and writes the
similarity graph as a triplet file.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

from repro import PastisParams, PastisPipeline, synthetic_dataset
from repro.sequences.fasta import write_fasta


def main() -> None:
    out_dir = Path("examples_output")
    out_dir.mkdir(exist_ok=True)

    # 1. a synthetic metagenome surrogate (see repro.sequences.synthetic)
    sequences = synthetic_dataset(n_sequences=300, seed=0)
    write_fasta(out_dir / "quickstart_input.fasta", sequences)
    print(f"dataset: {len(sequences)} sequences, {sequences.total_residues} residues")

    # 2. configure the search: small k and a permissive common-k-mer threshold
    #    are appropriate for a dataset this small (the paper's production
    #    values are k=6, threshold=2 at 405M sequences)
    params = PastisParams(
        kmer_length=5,
        common_kmer_threshold=1,
        nodes=4,                     # virtual Summit nodes (perfect square)
        num_blocks=9,                # 3x3 Blocked 2D Sparse SUMMA
        load_balancing="triangularity",
        pre_blocking=True,
    )

    # 3. run the pipeline
    result = PastisPipeline(params).run(sequences)

    # 4. inspect the results
    print()
    print(result.stats.as_table())
    print()
    graph = result.similarity_graph
    out_path = out_dir / "quickstart_similarity_graph.tsv"
    nbytes = graph.write_triples(out_path, names=sequences.names)
    print(f"similarity graph: {graph.num_edges} edges written to {out_path} ({nbytes} bytes)")

    labels = graph.connected_components()
    n_clusters = len(set(labels.tolist()))
    print(f"connected components (protein families): {n_clusters}")

    if result.preblocking_report is not None:
        report = result.preblocking_report
        print(
            f"pre-blocking: total {report.total_seconds:.4f}s -> "
            f"{report.total_seconds_pre:.4f}s (x{report.normalized_total:.2f}), "
            f"efficiency {report.efficiency_percent:.1f}%"
        )


if __name__ == "__main__":
    main()
