"""Global configuration defaults for the PASTIS reproduction.

The values here mirror the program parameters of the paper's production run
(Table IV) and the system parameters of Summit used throughout the
evaluation.  Individual runs override them through
:class:`repro.core.params.PastisParams` and the hardware specs in
:mod:`repro.hardware`.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from .sparse.kernels import AUTO_COMPRESSION_THRESHOLD, DEFAULT_OVERLAP_KERNEL


@dataclass(frozen=True)
class ReproConfig:
    """Package-wide defaults.

    Attributes
    ----------
    kmer_length:
        k-mer length used for seeding (paper: 6).
    gap_open:
        Affine gap-open penalty (paper: 11).
    gap_extend:
        Affine gap-extension penalty (paper: 2).
    common_kmer_threshold:
        Minimum number of shared k-mers for a candidate pair to be aligned
        (paper: 2).
    ani_threshold:
        Minimum average nucleotide/aminoacid identity for a pair to enter the
        similarity graph (paper: 0.30).
    coverage_threshold:
        Minimum coverage of the shorter sequence (paper: 0.70).
    default_blocking:
        Default blocking factor (paper production run: 20x20; strong scaling
        experiments use 8x8).
    spgemm_backend:
        Default SpGEMM kernel for the pipeline's overlap-semiring multiply,
        by registry name (``"expand"``, ``"gustavson"``, or ``"auto"``).
        Mirrors :data:`repro.sparse.kernels.DEFAULT_OVERLAP_KERNEL` — the
        registry is the single source of truth, so the two can never
        disagree.  ``"gustavson"`` since the ``bench_kernels.py --smoke``
        head-to-head confirmed bit-identical results with bounded
        intermediate memory at the overlap matrix's high compression
        factors; generic consumers calling ``resolve_kernel(None)`` still
        get :data:`repro.sparse.kernels.DEFAULT_KERNEL` (``"expand"``).
        This value seeds ``PastisParams.spgemm_backend``, which individual
        runs override.
    auto_compression_threshold:
        Predicted-compression-factor crossover of the ``"auto"`` SpGEMM
        backend's dispatch.  The shipped default is the registry constant
        :data:`repro.sparse.kernels.AUTO_COMPRESSION_THRESHOLD`; a
        *measured* value can be fed back by
        ``benchmarks/bench_auto_threshold.py --write-default``, which
        persists the best sweep crossover via :func:`write_calibration` so
        the singleton (and therefore ``PastisParams``) picks it up on the
        next import.
    cache_dir:
        Default directory for the content-hashed stage cache
        (:mod:`repro.core.engine.cache`).  ``None`` (the shipped default)
        disables caching; runs opt in through ``PastisParams.cache_dir``,
        which this value seeds.
    seed:
        Default RNG seed used by synthetic data generators.
    """

    kmer_length: int = 6
    gap_open: int = 11
    gap_extend: int = 2
    common_kmer_threshold: int = 2
    ani_threshold: float = 0.30
    coverage_threshold: float = 0.70
    default_blocking: tuple[int, int] = field(default=(8, 8))
    spgemm_backend: str = DEFAULT_OVERLAP_KERNEL
    auto_compression_threshold: float = AUTO_COMPRESSION_THRESHOLD
    cache_dir: str | None = None
    seed: int = 0


#: Fields a measured calibration may override, with their validators.
CALIBRATABLE_FIELDS: dict[str, object] = {
    "auto_compression_threshold": lambda v: (
        isinstance(v, (int, float)) and not isinstance(v, bool) and v > 0
    ),
}

#: Default location of the persisted calibration (next to this module, so a
#: written calibration survives as part of the installed package).
CALIBRATION_PATH = Path(__file__).with_name("calibration.json")


def _validate_calibration(values: dict) -> None:
    """Shared field/value validation for reads and writes (one rule set, so a
    value that writes always loads and vice versa)."""
    for key, value in values.items():
        validator = CALIBRATABLE_FIELDS.get(key)
        if validator is None:
            raise ValueError(
                f"unknown calibration field {key!r}; "
                f"calibratable: {sorted(CALIBRATABLE_FIELDS)}"
            )
        if not validator(value):
            raise ValueError(f"calibration field {key!r} has invalid value {value!r}")


def load_calibration(path: str | Path | None = None) -> dict:
    """Read persisted calibration overrides ({} when none has been written).

    Raises ``ValueError`` for unknown fields, out-of-range values or
    unparseable JSON, so a corrupted calibration file fails loudly instead
    of silently steering every subsequent run.
    """
    p = CALIBRATION_PATH if path is None else Path(path)
    if not p.exists():
        return {}
    data = json.loads(p.read_text())  # JSONDecodeError is a ValueError
    if not isinstance(data, dict):
        raise ValueError(f"calibration file {p} must hold a JSON object")
    _validate_calibration(data)
    return {key: float(value) for key, value in data.items()}


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (temp file + rename).

    Readers never observe a partially written file: the payload lands in a
    sibling ``<name>.tmp`` first and is renamed over the target only once
    fully written.  If anything fails after the temp file exists — a full
    disk mid-write, a failed ``os.replace`` — the temp file is unlinked
    before the error propagates, so a crash cannot strand ``.tmp`` litter
    next to the real file.  Shared by :func:`write_calibration` and the
    stage cache's entry writer (:mod:`repro.core.engine.cache`).
    """
    p = Path(path)
    tmp = p.with_name(p.name + ".tmp")
    try:
        tmp.write_bytes(data)
        os.replace(tmp, p)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return p


def atomic_write_text(path: str | Path, text: str) -> Path:
    """UTF-8 text variant of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def write_calibration(values: dict, path: str | Path | None = None) -> Path:
    """Persist measured calibration overrides; returns the written path.

    ``values`` must only contain :data:`CALIBRATABLE_FIELDS`; the write is
    validated through the same rules :func:`load_calibration` applies, so a
    written calibration always round-trips.  The write is atomic (temp file
    + rename via :func:`atomic_write_text`), so a killed benchmark can never
    leave a truncated file — or a stranded ``.tmp`` — behind.
    """
    _validate_calibration(values)
    p = CALIBRATION_PATH if path is None else Path(path)
    payload = json.dumps({k: float(v) for k, v in values.items()}, indent=2) + "\n"
    return atomic_write_text(p, payload)


def calibrated_defaults(path: str | Path | None = None) -> ReproConfig:
    """Build the package defaults with any persisted calibration applied."""
    return ReproConfig(**load_calibration(path))


def _import_time_defaults() -> ReproConfig:
    """The singleton's construction: never let a bad calibration file make
    the package unimportable (that would also brick the tool that could
    rewrite it) — warn loudly and fall back to the shipped defaults."""
    try:
        return calibrated_defaults()
    except (ValueError, OSError) as exc:
        warnings.warn(
            f"ignoring unreadable calibration {CALIBRATION_PATH}: {exc}; "
            "using shipped defaults (rewrite it with "
            "`python benchmarks/bench_auto_threshold.py --write-default` "
            "or delete the file)",
            RuntimeWarning,
            stacklevel=2,
        )
        return ReproConfig()


#: Module-level singleton with the paper's default parameters, overlaid with
#: any measured calibration previously written by
#: ``bench_auto_threshold.py --write-default``.
DEFAULTS = _import_time_defaults()
