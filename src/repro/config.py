"""Global configuration defaults for the PASTIS reproduction.

The values here mirror the program parameters of the paper's production run
(Table IV) and the system parameters of Summit used throughout the
evaluation.  Individual runs override them through
:class:`repro.core.params.PastisParams` and the hardware specs in
:mod:`repro.hardware`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .sparse.kernels import DEFAULT_OVERLAP_KERNEL


@dataclass(frozen=True)
class ReproConfig:
    """Package-wide defaults.

    Attributes
    ----------
    kmer_length:
        k-mer length used for seeding (paper: 6).
    gap_open:
        Affine gap-open penalty (paper: 11).
    gap_extend:
        Affine gap-extension penalty (paper: 2).
    common_kmer_threshold:
        Minimum number of shared k-mers for a candidate pair to be aligned
        (paper: 2).
    ani_threshold:
        Minimum average nucleotide/aminoacid identity for a pair to enter the
        similarity graph (paper: 0.30).
    coverage_threshold:
        Minimum coverage of the shorter sequence (paper: 0.70).
    default_blocking:
        Default blocking factor (paper production run: 20x20; strong scaling
        experiments use 8x8).
    spgemm_backend:
        Default SpGEMM kernel for the pipeline's overlap-semiring multiply,
        by registry name (``"expand"``, ``"gustavson"``, or ``"auto"``).
        Mirrors :data:`repro.sparse.kernels.DEFAULT_OVERLAP_KERNEL` — the
        registry is the single source of truth, so the two can never
        disagree.  ``"gustavson"`` since the ``bench_kernels.py --smoke``
        head-to-head confirmed bit-identical results with bounded
        intermediate memory at the overlap matrix's high compression
        factors; generic consumers calling ``resolve_kernel(None)`` still
        get :data:`repro.sparse.kernels.DEFAULT_KERNEL` (``"expand"``).
        This value seeds ``PastisParams.spgemm_backend``, which individual
        runs override.
    seed:
        Default RNG seed used by synthetic data generators.
    """

    kmer_length: int = 6
    gap_open: int = 11
    gap_extend: int = 2
    common_kmer_threshold: int = 2
    ani_threshold: float = 0.30
    coverage_threshold: float = 0.70
    default_blocking: tuple[int, int] = field(default=(8, 8))
    spgemm_backend: str = DEFAULT_OVERLAP_KERNEL
    seed: int = 0


#: Module-level singleton with the paper's default parameters.
DEFAULTS = ReproConfig()
