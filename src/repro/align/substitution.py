"""Amino-acid substitution matrices.

The scoring model of the paper's production run is BLOSUM62 with affine gap
penalties (open 11, extend 2).  Matrices are stored as ``(size, size)``
``int32`` arrays indexed by the residue codes of
:data:`repro.sequences.alphabet.PROTEIN` (order ``ARNDCQEGHILKMFPSTWYV``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sequences.alphabet import AMINO_ACIDS, Alphabet, PROTEIN

#: BLOSUM62 in ARNDCQEGHILKMFPSTWYV order.
_BLOSUM62_ROWS = [
    #  A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    [  4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0],  # A
    [ -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3],  # R
    [ -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3],  # N
    [ -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3],  # D
    [  0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1],  # C
    [ -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2],  # Q
    [ -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2],  # E
    [  0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3],  # G
    [ -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3],  # H
    [ -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3],  # I
    [ -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1],  # L
    [ -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2],  # K
    [ -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1],  # M
    [ -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1],  # F
    [ -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2],  # P
    [  1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2],  # S
    [  0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0],  # T
    [ -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3],  # W
    [ -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1],  # Y
    [  0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4],  # V
]

#: BLOSUM62 substitution matrix, indexed by PROTEIN residue codes.
BLOSUM62 = np.array(_BLOSUM62_ROWS, dtype=np.int32)


def identity_matrix(alphabet: Alphabet = PROTEIN, match: int = 2, mismatch: int = -1) -> np.ndarray:
    """A simple match/mismatch matrix for any alphabet (tests, reduced alphabets)."""
    size = alphabet.size
    mat = np.full((size, size), mismatch, dtype=np.int32)
    np.fill_diagonal(mat, match)
    return mat


def reduce_matrix(matrix: np.ndarray, source: Alphabet, target: Alphabet) -> np.ndarray:
    """Average a substitution matrix over the groups of a reduced alphabet.

    Used when seeding works on a reduced alphabet but still wants
    substitution-aware neighbour k-mers.
    """
    if matrix.shape != (source.size, source.size):
        raise ValueError("matrix shape must match source alphabet")
    out = np.zeros((target.size, target.size), dtype=np.float64)
    # map every source code to its target code
    mapping = np.empty(source.size, dtype=np.int64)
    for code, group in enumerate(source.groups):
        mapping[code] = int(target.encode(group[0])[0])
    counts = np.zeros((target.size, target.size), dtype=np.int64)
    for i in range(source.size):
        for j in range(source.size):
            out[mapping[i], mapping[j]] += matrix[i, j]
            counts[mapping[i], mapping[j]] += 1
    counts[counts == 0] = 1
    return out / counts


@dataclass(frozen=True)
class ScoringScheme:
    """Alignment scoring: substitution matrix plus affine gap penalties.

    A gap of length ``L`` costs ``gap_open + L * gap_extend`` (the
    BLAST/DIAMOND convention; the paper's production parameters are
    ``gap_open=11, gap_extend=2``).
    """

    matrix: np.ndarray = None
    gap_open: int = 11
    gap_extend: int = 2

    def __post_init__(self) -> None:
        matrix = BLOSUM62 if self.matrix is None else np.asarray(self.matrix, dtype=np.int32)
        object.__setattr__(self, "matrix", matrix)
        if self.gap_open < 0 or self.gap_extend < 0:
            raise ValueError("gap penalties must be non-negative magnitudes")

    @property
    def alphabet_size(self) -> int:
        """Number of residue codes the matrix covers."""
        return int(self.matrix.shape[0])

    def score_pairs(self, a_codes: np.ndarray, b_codes: np.ndarray) -> np.ndarray:
        """Vectorized substitution scores for aligned residue code arrays."""
        return self.matrix[np.asarray(a_codes, dtype=np.intp), np.asarray(b_codes, dtype=np.intp)]


#: Default scheme: BLOSUM62, gap open 11, gap extend 2 (Table IV of the paper).
DEFAULT_SCORING = ScoringScheme(matrix=BLOSUM62, gap_open=11, gap_extend=2)
