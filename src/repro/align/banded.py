"""Banded Smith–Waterman.

When a candidate pair comes with seed positions (as the overlap matrix
provides), the optimal local alignment is expected to lie near the diagonal
through the seed.  Restricting the DP to a band of width ``2*bandwidth+1``
around that diagonal reduces work from ``m*n`` to ``~(m+n)*bandwidth`` cells.
PASTIS's production configuration uses the full matrix (ADEPT computes the
entire DP), but the banded kernel is provided as the cheaper alternative the
SeqAn backend offers, and is used by the seed-and-extend path.
"""

from __future__ import annotations

import numpy as np

from .result import AlignmentResult
from .substitution import DEFAULT_SCORING, ScoringScheme


def banded_smith_waterman(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: ScoringScheme = DEFAULT_SCORING,
    seed_a: int = 0,
    seed_b: int = 0,
    bandwidth: int = 32,
) -> AlignmentResult:
    """Smith–Waterman restricted to a band around the seed diagonal.

    The band is centred on the diagonal ``j - i = seed_b - seed_a``.  Cells
    outside the band are treated as unreachable.  The result is exact whenever
    the optimal path stays within the band; otherwise it is a lower bound on
    the unbanded score.
    """
    a = np.asarray(a_codes, dtype=np.intp)
    b = np.asarray(b_codes, dtype=np.intp)
    m, n = a.size, b.size
    if m == 0 or n == 0:
        return AlignmentResult(
            score=0, begin_a=0, end_a=-1, begin_b=0, end_b=-1, matches=0, length=0, cells=0
        )
    center = seed_b - seed_a
    neg_inf = -(10**8)
    go = scoring.gap_open + scoring.gap_extend
    ge = scoring.gap_extend
    matrix = scoring.matrix

    H = np.zeros((m + 1, n + 1), dtype=np.int32)
    E = np.full((m + 1, n + 1), neg_inf, dtype=np.int32)
    F = np.full((m + 1, n + 1), neg_inf, dtype=np.int32)

    cells = 0
    best = 0
    best_pos = (0, 0)
    for i in range(1, m + 1):
        jlo = max(1, i + center - bandwidth)
        jhi = min(n, i + center + bandwidth)
        if jlo > jhi:
            continue
        j = np.arange(jlo, jhi + 1)
        cells += j.size
        E[i, j] = np.maximum(H[i, j - 1] - go, E[i, j - 1] - ge)
        F[i, j] = np.maximum(H[i - 1, j] - go, F[i - 1, j] - ge)
        diag = H[i - 1, j - 1] + matrix[a[i - 1], b[j - 1]].astype(np.int32)
        H[i, j] = np.maximum(np.maximum(diag, 0), np.maximum(E[i, j], F[i, j]))
        row_best_idx = int(H[i, j].argmax())
        row_best = int(H[i, jlo + row_best_idx])
        if row_best > best:
            best = row_best
            best_pos = (i, jlo + row_best_idx)

    if best == 0:
        return AlignmentResult(
            score=0, begin_a=0, end_a=-1, begin_b=0, end_b=-1, matches=0, length=0, cells=cells
        )

    # traceback within the band
    i, j = best_pos
    end_a, end_b = i - 1, j - 1
    matches = 0
    length = 0
    state = "H"
    while i > 0 and j > 0:
        if state == "H":
            h = int(H[i, j])
            if h == 0:
                break
            diag = int(H[i - 1, j - 1]) + int(matrix[a[i - 1], b[j - 1]])
            if h == diag:
                matches += int(a[i - 1] == b[j - 1])
                length += 1
                i -= 1
                j -= 1
            elif h == int(F[i, j]):
                state = "F"
            elif h == int(E[i, j]):
                state = "E"
            else:  # pragma: no cover - defensive
                break
        elif state == "E":
            length += 1
            if int(E[i, j]) == int(H[i, j - 1]) - go:
                state = "H"
            j -= 1
        else:
            length += 1
            if int(F[i, j]) == int(H[i - 1, j]) - go:
                state = "H"
            i -= 1
    return AlignmentResult(
        score=int(best),
        begin_a=int(i),
        end_a=int(end_a),
        begin_b=int(j),
        end_b=int(end_b),
        matches=int(matches),
        length=int(length),
        cells=int(cells),
    )
