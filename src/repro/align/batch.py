"""Batched Smith–Waterman: the ADEPT-like wavefront kernel.

ADEPT assigns one pairwise alignment per GPU thread block and sweeps the DP
matrix one anti-diagonal at a time, keeping only the previous diagonals in
registers/shared memory.  This module reproduces that execution structure on
the CPU with NumPy: a *batch* of pairs is padded to a common size and the
whole batch advances through anti-diagonals together, so every NumPy
operation works on a ``(batch, diagonal_width)`` array — the SIMD dimension
that the GPU provides in hardware.

Besides the score and end coordinates (what ADEPT's forward pass returns),
the kernel propagates, along the best-scoring path, the number of matches,
the alignment length, and the begin coordinates.  This avoids a traceback
pass while still providing everything PASTIS needs to compute ANI and
coverage for the similarity-graph filter.
"""

from __future__ import annotations

import numpy as np

from .result import ALIGNMENT_RESULT_DTYPE
from .substitution import DEFAULT_SCORING, ScoringScheme

_NEG = np.int32(-(10**8))


class _PathState:
    """Aux state (matches, length, begin coords) carried along DP paths."""

    __slots__ = ("matches", "length", "begin_a", "begin_b")

    def __init__(self, batch: int, width: int):
        self.matches = np.zeros((batch, width), dtype=np.int32)
        self.length = np.zeros((batch, width), dtype=np.int32)
        self.begin_a = np.zeros((batch, width), dtype=np.int32)
        self.begin_b = np.zeros((batch, width), dtype=np.int32)

    def copy(self) -> "_PathState":
        out = _PathState.__new__(_PathState)
        out.matches = self.matches.copy()
        out.length = self.length.copy()
        out.begin_a = self.begin_a.copy()
        out.begin_b = self.begin_b.copy()
        return out

    def select(self, cond: np.ndarray, other: "_PathState", sl: slice) -> "_PathState":
        """Blend two states under a condition over the given slice (new object)."""
        out = _PathState.__new__(_PathState)
        out.matches = np.where(cond, self.matches[:, sl], other.matches[:, sl])
        out.length = np.where(cond, self.length[:, sl], other.length[:, sl])
        out.begin_a = np.where(cond, self.begin_a[:, sl], other.begin_a[:, sl])
        out.begin_b = np.where(cond, self.begin_b[:, sl], other.begin_b[:, sl])
        return out


def _pack(codes_list: list[np.ndarray], width: int) -> tuple[np.ndarray, np.ndarray]:
    """Pad code arrays into a ``(batch, width)`` matrix plus a length vector."""
    batch = len(codes_list)
    packed = np.zeros((batch, width), dtype=np.intp)
    lengths = np.zeros(batch, dtype=np.int64)
    for idx, codes in enumerate(codes_list):
        L = len(codes)
        lengths[idx] = L
        if L:
            packed[idx, :L] = codes
    return packed, lengths


def batch_smith_waterman(
    a_list: list[np.ndarray],
    b_list: list[np.ndarray],
    scoring: ScoringScheme = DEFAULT_SCORING,
) -> np.ndarray:
    """Align ``a_list[k]`` against ``b_list[k]`` for every ``k`` in the batch.

    Returns a structured array of dtype
    :data:`repro.align.result.ALIGNMENT_RESULT_DTYPE`, one record per pair.
    """
    if len(a_list) != len(b_list):
        raise ValueError("a_list and b_list must have equal length")
    batch = len(a_list)
    results = np.zeros(batch, dtype=ALIGNMENT_RESULT_DTYPE)
    if batch == 0:
        return results

    M = max((len(s) for s in a_list), default=0)
    N = max((len(s) for s in b_list), default=0)
    results["end_a"] = -1
    results["end_b"] = -1
    results["cells"] = np.array([len(a) for a in a_list], dtype=np.int64) * np.array(
        [len(b) for b in b_list], dtype=np.int64
    )
    if M == 0 or N == 0:
        return results

    a_pad, len_a = _pack(a_list, M)
    b_pad, len_b = _pack(b_list, N)
    go = np.int32(scoring.gap_open + scoring.gap_extend)
    ge = np.int32(scoring.gap_extend)
    sub = scoring.matrix

    width = M + 1  # buffers indexed by DP row i in [0, M]
    rows = np.arange(width, dtype=np.int32)

    def boundary_state(diag: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, _PathState]:
        """Fresh buffers filled with local-alignment boundary values for a diagonal."""
        H = np.zeros((batch, width), dtype=np.int32)
        E = np.full((batch, width), _NEG, dtype=np.int32)
        F = np.full((batch, width), _NEG, dtype=np.int32)
        state = _PathState(batch, width)
        state.begin_a[:] = rows[None, :]
        state.begin_b[:] = np.maximum(diag - rows[None, :], 0)
        return H, E, F, state

    H_prev2, _, _, SH_prev2 = boundary_state(0)
    H_prev, E_prev, F_prev, SH_prev = boundary_state(1)
    SE_prev = SH_prev.copy()
    SF_prev = SH_prev.copy()

    best_score = np.zeros(batch, dtype=np.int32)
    best_i = np.zeros(batch, dtype=np.int32)
    best_j = np.zeros(batch, dtype=np.int32)
    best_state_matches = np.zeros(batch, dtype=np.int32)
    best_state_length = np.zeros(batch, dtype=np.int32)
    best_state_begin_a = np.zeros(batch, dtype=np.int32)
    best_state_begin_b = np.zeros(batch, dtype=np.int32)

    for d in range(2, M + N + 1):
        ilo = max(1, d - N)
        ihi = min(M, d - 1)
        if ilo > ihi:
            continue
        sl = slice(ilo, ihi + 1)
        sl_up = slice(ilo - 1, ihi)  # index i-1
        i_idx = np.arange(ilo, ihi + 1, dtype=np.int64)
        j_idx = d - i_idx

        # --- E: gap in A (left move), predecessor (i, j-1) lives at same index i
        open_e = H_prev[:, sl] - go
        ext_e = E_prev[:, sl] - ge
        E_new = np.maximum(open_e, ext_e)
        take_open_e = open_e >= ext_e
        SE_new = SH_prev.select(take_open_e, SE_prev, sl)
        SE_new.length = SE_new.length + 1

        # --- F: gap in B (up move), predecessor (i-1, j) lives at index i-1
        open_f = H_prev[:, sl_up] - go
        ext_f = F_prev[:, sl_up] - ge
        F_new = np.maximum(open_f, ext_f)
        take_open_f = open_f >= ext_f
        SF_new = SH_prev.select(take_open_f, SF_prev, sl_up)
        SF_new.length = SF_new.length + 1

        # --- H: diagonal move from (i-1, j-1), which lives on diag d-2 at index i-1
        a_res = a_pad[:, i_idx - 1]                     # residues a[i-1]
        b_res = b_pad[:, j_idx - 1]                     # residues b[j-1]
        match_scores = sub[a_res, b_res].astype(np.int32)
        diag_score = H_prev2[:, sl_up] + match_scores
        H_new = np.maximum(np.maximum(diag_score, 0), np.maximum(E_new, F_new))

        from_diag = (H_new == diag_score) & (H_new > 0)
        from_f = ~from_diag & (H_new == F_new) & (H_new > 0)
        from_e = ~from_diag & ~from_f & (H_new == E_new) & (H_new > 0)
        is_match = (a_res == b_res).astype(np.int32)

        SH_new = _PathState(batch, ihi - ilo + 1)
        SH_new.matches = np.select(
            [from_diag, from_f, from_e],
            [SH_prev2.matches[:, sl_up] + is_match, SF_new.matches, SE_new.matches],
            default=0,
        ).astype(np.int32)
        SH_new.length = np.select(
            [from_diag, from_f, from_e],
            [SH_prev2.length[:, sl_up] + 1, SF_new.length, SE_new.length],
            default=0,
        ).astype(np.int32)
        SH_new.begin_a = np.select(
            [from_diag, from_f, from_e],
            [SH_prev2.begin_a[:, sl_up], SF_new.begin_a, SE_new.begin_a],
            default=0,
        ).astype(np.int32)
        SH_new.begin_b = np.select(
            [from_diag, from_f, from_e],
            [SH_prev2.begin_b[:, sl_up], SF_new.begin_b, SE_new.begin_b],
            default=0,
        ).astype(np.int32)

        # per-pair validity mask: padded cells behave like the 0-boundary
        valid = (i_idx[None, :] <= len_a[:, None]) & (j_idx[None, :] <= len_b[:, None])
        H_new = np.where(valid, H_new, 0)
        E_new = np.where(valid, E_new, _NEG)
        F_new = np.where(valid, F_new, _NEG)
        zero_h = H_new == 0
        SH_new.matches = np.where(zero_h, 0, SH_new.matches)
        SH_new.length = np.where(zero_h, 0, SH_new.length)
        SH_new.begin_a = np.where(zero_h, i_idx[None, :].astype(np.int32), SH_new.begin_a)
        SH_new.begin_b = np.where(zero_h, j_idx[None, :].astype(np.int32), SH_new.begin_b)

        # --- update running best cell per pair
        diag_best_idx = H_new.argmax(axis=1)
        rows_sel = np.arange(batch)
        diag_best = H_new[rows_sel, diag_best_idx]
        improved = diag_best > best_score
        if improved.any():
            best_score = np.where(improved, diag_best, best_score)
            best_i = np.where(improved, i_idx[diag_best_idx].astype(np.int32), best_i)
            best_j = np.where(improved, j_idx[diag_best_idx].astype(np.int32), best_j)
            best_state_matches = np.where(
                improved, SH_new.matches[rows_sel, diag_best_idx], best_state_matches
            )
            best_state_length = np.where(
                improved, SH_new.length[rows_sel, diag_best_idx], best_state_length
            )
            best_state_begin_a = np.where(
                improved, SH_new.begin_a[rows_sel, diag_best_idx], best_state_begin_a
            )
            best_state_begin_b = np.where(
                improved, SH_new.begin_b[rows_sel, diag_best_idx], best_state_begin_b
            )

        # --- roll buffers: write the new diagonal into full-width arrays
        H_cur, E_cur, F_cur, SH_cur = boundary_state(d)
        SE_cur = SH_cur.copy()
        SF_cur = SH_cur.copy()
        H_cur[:, sl] = H_new
        E_cur[:, sl] = E_new
        F_cur[:, sl] = F_new
        SH_cur.matches[:, sl] = SH_new.matches
        SH_cur.length[:, sl] = SH_new.length
        SH_cur.begin_a[:, sl] = SH_new.begin_a
        SH_cur.begin_b[:, sl] = SH_new.begin_b
        SE_cur.matches[:, sl] = SE_new.matches
        SE_cur.length[:, sl] = SE_new.length
        SE_cur.begin_a[:, sl] = SE_new.begin_a
        SE_cur.begin_b[:, sl] = SE_new.begin_b
        SF_cur.matches[:, sl] = SF_new.matches
        SF_cur.length[:, sl] = SF_new.length
        SF_cur.begin_a[:, sl] = SF_new.begin_a
        SF_cur.begin_b[:, sl] = SF_new.begin_b

        H_prev2, SH_prev2 = H_prev, SH_prev
        H_prev, E_prev, F_prev = H_cur, E_cur, F_cur
        SH_prev, SE_prev, SF_prev = SH_cur, SE_cur, SF_cur

    results["score"] = best_score
    aligned = best_score > 0
    results["end_a"] = np.where(aligned, best_i - 1, -1)
    results["end_b"] = np.where(aligned, best_j - 1, -1)
    results["begin_a"] = np.where(aligned, best_state_begin_a, 0)
    results["begin_b"] = np.where(aligned, best_state_begin_b, 0)
    results["matches"] = np.where(aligned, best_state_matches, 0)
    results["length"] = np.where(aligned, best_state_length, 0)
    return results


def estimate_batch_cells(a_list: list[np.ndarray], b_list: list[np.ndarray]) -> int:
    """Total number of DP cells a batch will update (the CUPS numerator)."""
    return int(
        sum(len(a) * len(b) for a, b in zip(a_list, b_list))
    )
