"""Smith–Waterman local alignment with affine gaps.

Two implementations:

* :func:`smith_waterman_reference` — a plain-Python dynamic program with an
  explicit traceback.  It is the ground truth the vectorized and batched
  kernels are validated against (and is intentionally written for clarity,
  not speed).
* :func:`smith_waterman` — a NumPy anti-diagonal wavefront implementation.
  All three dependencies of a cell (left, up, diagonal) live on the previous
  one or two anti-diagonals, so every anti-diagonal can be updated with a
  handful of vectorized operations; this is the same parallelization
  structure ADEPT uses across GPU threads.

Both compute the full DP matrix, as the paper's alignment kernel does ("the
alignment algorithm used in this work is a variant of the Smith-Waterman
algorithm which computes the entire distance matrix"), and return score,
local begin/end coordinates, match count and alignment length, from which ANI
and coverage are derived.
"""

from __future__ import annotations

import numpy as np

from .result import AlignmentResult
from .substitution import DEFAULT_SCORING, ScoringScheme


def smith_waterman_reference(
    a_codes: np.ndarray, b_codes: np.ndarray, scoring: ScoringScheme = DEFAULT_SCORING
) -> AlignmentResult:
    """Plain-Python Smith–Waterman with affine gaps and full traceback."""
    a = np.asarray(a_codes, dtype=np.intp)
    b = np.asarray(b_codes, dtype=np.intp)
    m, n = a.size, b.size
    neg_inf = -(10**9)
    go = scoring.gap_open + scoring.gap_extend  # cost of the first gapped column
    ge = scoring.gap_extend

    H = [[0] * (n + 1) for _ in range(m + 1)]
    E = [[neg_inf] * (n + 1) for _ in range(m + 1)]  # gap in A (move left)
    F = [[neg_inf] * (n + 1) for _ in range(m + 1)]  # gap in B (move up)

    best = 0
    best_pos = (0, 0)
    matrix = scoring.matrix
    for i in range(1, m + 1):
        ai = a[i - 1]
        for j in range(1, n + 1):
            E[i][j] = max(H[i][j - 1] - go, E[i][j - 1] - ge)
            F[i][j] = max(H[i - 1][j] - go, F[i - 1][j] - ge)
            diag = H[i - 1][j - 1] + int(matrix[ai, b[j - 1]])
            h = max(0, diag, E[i][j], F[i][j])
            H[i][j] = h
            if h > best:
                best = h
                best_pos = (i, j)

    if best == 0:
        return AlignmentResult(
            score=0, begin_a=0, end_a=-1, begin_b=0, end_b=-1, matches=0, length=0, cells=m * n
        )

    # traceback
    i, j = best_pos
    matches = 0
    length = 0
    state = "H"
    end_a, end_b = i - 1, j - 1
    while i > 0 and j > 0:
        if state == "H":
            h = H[i][j]
            if h == 0:
                break
            diag = H[i - 1][j - 1] + int(matrix[a[i - 1], b[j - 1]])
            if h == diag:
                matches += int(a[i - 1] == b[j - 1])
                length += 1
                i -= 1
                j -= 1
            elif h == F[i][j]:
                state = "F"
            elif h == E[i][j]:
                state = "E"
            else:  # pragma: no cover - defensive
                raise AssertionError("inconsistent traceback")
        elif state == "E":
            length += 1
            if E[i][j] == H[i][j - 1] - go:
                state = "H"
            j -= 1
        else:  # state == "F"
            length += 1
            if F[i][j] == H[i - 1][j] - go:
                state = "H"
            i -= 1
    begin_a, begin_b = i, j
    return AlignmentResult(
        score=int(best),
        begin_a=int(begin_a),
        end_a=int(end_a),
        begin_b=int(begin_b),
        end_b=int(end_b),
        matches=int(matches),
        length=int(length),
        cells=int(m) * int(n),
    )


def smith_waterman(
    a_codes: np.ndarray, b_codes: np.ndarray, scoring: ScoringScheme = DEFAULT_SCORING
) -> AlignmentResult:
    """Anti-diagonal vectorized Smith–Waterman with affine gaps and traceback."""
    a = np.asarray(a_codes, dtype=np.intp)
    b = np.asarray(b_codes, dtype=np.intp)
    m, n = a.size, b.size
    if m == 0 or n == 0:
        return AlignmentResult(
            score=0, begin_a=0, end_a=-1, begin_b=0, end_b=-1, matches=0, length=0, cells=0
        )
    neg_inf = np.int32(-(10**8))
    go = np.int32(scoring.gap_open + scoring.gap_extend)
    ge = np.int32(scoring.gap_extend)

    H = np.zeros((m + 1, n + 1), dtype=np.int32)
    E = np.full((m + 1, n + 1), neg_inf, dtype=np.int32)
    F = np.full((m + 1, n + 1), neg_inf, dtype=np.int32)

    matrix = scoring.matrix
    # iterate anti-diagonals d = i + j, i in [max(1, d-n), min(m, d-1)]
    for d in range(2, m + n + 1):
        ilo = max(1, d - n)
        ihi = min(m, d - 1)
        if ilo > ihi:
            continue
        i = np.arange(ilo, ihi + 1)
        j = d - i
        E[i, j] = np.maximum(H[i, j - 1] - go, E[i, j - 1] - ge)
        F[i, j] = np.maximum(H[i - 1, j] - go, F[i - 1, j] - ge)
        diag = H[i - 1, j - 1] + matrix[a[i - 1], b[j - 1]].astype(np.int32)
        H[i, j] = np.maximum(np.maximum(diag, 0), np.maximum(E[i, j], F[i, j]))

    best = int(H.max())
    if best == 0:
        return AlignmentResult(
            score=0, begin_a=0, end_a=-1, begin_b=0, end_b=-1, matches=0, length=0, cells=m * n
        )
    flat = int(H.argmax())
    bi, bj = divmod(flat, n + 1)

    # traceback (scalar; its cost is proportional to the alignment length)
    i, j = bi, bj
    matches = 0
    length = 0
    state = "H"
    end_a, end_b = i - 1, j - 1
    while i > 0 and j > 0:
        if state == "H":
            h = int(H[i, j])
            if h == 0:
                break
            diag = int(H[i - 1, j - 1]) + int(matrix[a[i - 1], b[j - 1]])
            if h == diag:
                matches += int(a[i - 1] == b[j - 1])
                length += 1
                i -= 1
                j -= 1
            elif h == int(F[i, j]):
                state = "F"
            elif h == int(E[i, j]):
                state = "E"
            else:  # pragma: no cover - defensive
                raise AssertionError("inconsistent traceback")
        elif state == "E":
            length += 1
            if int(E[i, j]) == int(H[i, j - 1]) - int(go):
                state = "H"
            j -= 1
        else:
            length += 1
            if int(F[i, j]) == int(H[i - 1, j]) - int(go):
                state = "H"
            i -= 1
    return AlignmentResult(
        score=best,
        begin_a=int(i),
        end_a=int(end_a),
        begin_b=int(j),
        end_b=int(end_b),
        matches=int(matches),
        length=int(length),
        cells=int(m) * int(n),
    )


def score_only(
    a_codes: np.ndarray, b_codes: np.ndarray, scoring: ScoringScheme = DEFAULT_SCORING
) -> int:
    """Best local alignment score only (cheapest single-pair entry point)."""
    return smith_waterman(a_codes, b_codes, scoring).score
