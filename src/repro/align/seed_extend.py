"""Seed-and-extend alignment (x-drop), the cheap alternative to full SW.

The overlap matrix gives, for every candidate pair, the positions of up to
two shared k-mers.  A seed-and-extend aligner starts from such a seed and
extends greedily along the diagonal in both directions, abandoning the
extension once the running score drops more than ``xdrop`` below the best
seen (the BLAST/DIAMOND strategy).  It is ungapped, so it is an
approximation — PASTIS's evaluated configuration performs full Smith–Waterman
— but it lets the pipeline trade sensitivity for speed, and serves as the
alignment model of the DIAMOND-like baseline.
"""

from __future__ import annotations

import numpy as np

from .result import AlignmentResult
from .substitution import DEFAULT_SCORING, ScoringScheme


def ungapped_extension(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    seed_a: int,
    seed_b: int,
    seed_length: int,
    scoring: ScoringScheme = DEFAULT_SCORING,
    xdrop: int = 20,
) -> AlignmentResult:
    """Extend an ungapped alignment from a seed in both directions with x-drop."""
    a = np.asarray(a_codes, dtype=np.intp)
    b = np.asarray(b_codes, dtype=np.intp)
    m, n = a.size, b.size
    seed_length = max(0, min(seed_length, m - seed_a, n - seed_b))
    if m == 0 or n == 0 or seed_length == 0:
        return AlignmentResult(
            score=0, begin_a=0, end_a=-1, begin_b=0, end_b=-1, matches=0, length=0, cells=0
        )
    matrix = scoring.matrix

    # score of the seed itself
    seed_scores = matrix[a[seed_a : seed_a + seed_length], b[seed_b : seed_b + seed_length]]
    score = int(seed_scores.sum())
    matches = int((a[seed_a : seed_a + seed_length] == b[seed_b : seed_b + seed_length]).sum())
    begin_a, begin_b = seed_a, seed_b
    end_a, end_b = seed_a + seed_length - 1, seed_b + seed_length - 1
    cells = seed_length

    # extend right
    best = score
    running = score
    run_matches = matches
    i, j = end_a + 1, end_b + 1
    best_right = (end_a, end_b, matches)
    while i < m and j < n:
        running += int(matrix[a[i], b[j]])
        run_matches += int(a[i] == b[j])
        cells += 1
        if running > best:
            best = running
            best_right = (i, j, run_matches)
        if running < best - xdrop:
            break
        i += 1
        j += 1
    end_a, end_b, matches = best_right
    score = best

    # extend left
    running = score
    run_matches = matches
    best = score
    i, j = begin_a - 1, begin_b - 1
    best_left = (begin_a, begin_b, matches)
    while i >= 0 and j >= 0:
        running += int(matrix[a[i], b[j]])
        run_matches += int(a[i] == b[j])
        cells += 1
        if running > best:
            best = running
            best_left = (i, j, run_matches)
        if running < best - xdrop:
            break
        i -= 1
        j -= 1
    begin_a, begin_b, matches = best_left
    score = best

    length = end_a - begin_a + 1
    return AlignmentResult(
        score=int(score),
        begin_a=int(begin_a),
        end_a=int(end_a),
        begin_b=int(begin_b),
        end_b=int(end_b),
        matches=int(matches),
        length=int(length),
        cells=int(cells),
    )


def seed_and_extend(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    seeds: list[tuple[int, int]],
    seed_length: int,
    scoring: ScoringScheme = DEFAULT_SCORING,
    xdrop: int = 20,
) -> AlignmentResult:
    """Run ungapped x-drop extension from each seed and keep the best result."""
    best: AlignmentResult | None = None
    total_cells = 0
    for seed_a, seed_b in seeds:
        if seed_a < 0 or seed_b < 0:
            continue
        res = ungapped_extension(
            a_codes, b_codes, seed_a, seed_b, seed_length, scoring, xdrop
        )
        total_cells += res.cells
        if best is None or res.score > best.score:
            best = res
    if best is None:
        return AlignmentResult(
            score=0, begin_a=0, end_a=-1, begin_b=0, end_b=-1, matches=0, length=0, cells=0
        )
    return AlignmentResult(
        score=best.score,
        begin_a=best.begin_a,
        end_a=best.end_a,
        begin_b=best.begin_b,
        end_b=best.end_b,
        matches=best.matches,
        length=best.length,
        cells=total_cells,
    )
