"""Alignment substrate: Smith–Waterman kernels and the ADEPT-like batch driver.

PASTIS deliberately separates distributed-memory parallelism (sparse
matrices, handled by :mod:`repro.distsparse`) from on-node alignment
parallelism, which is delegated to node-level libraries (SeqAn on CPUs, ADEPT
on GPUs).  This subpackage plays the role of those libraries:

* :mod:`repro.align.substitution` — BLOSUM62 and scoring schemes;
* :mod:`repro.align.smith_waterman` — reference and anti-diagonal vectorized
  single-pair kernels (the "SeqAn" role);
* :mod:`repro.align.batch` — the batched wavefront kernel (the "ADEPT kernel"
  role), returning score, end/begin coordinates, matches and alignment length;
* :mod:`repro.align.adept` — the multi-GPU driver with a V100 throughput
  model and CUPS accounting;
* :mod:`repro.align.banded` / :mod:`repro.align.seed_extend` — cheaper
  alignment modes (banded SW, x-drop seed extension);
* :mod:`repro.align.result` — result records, ANI and coverage.
"""

from .substitution import BLOSUM62, ScoringScheme, DEFAULT_SCORING, identity_matrix
from .result import (
    AlignmentResult,
    ALIGNMENT_RESULT_DTYPE,
    identity_array,
    coverage_array,
    passes_thresholds,
)
from .smith_waterman import smith_waterman, smith_waterman_reference, score_only
from .batch import batch_smith_waterman
from .banded import banded_smith_waterman
from .seed_extend import seed_and_extend, ungapped_extension
from .adept import AdeptDriver, AlignmentWorkloadStats

__all__ = [
    "BLOSUM62",
    "ScoringScheme",
    "DEFAULT_SCORING",
    "identity_matrix",
    "AlignmentResult",
    "ALIGNMENT_RESULT_DTYPE",
    "identity_array",
    "coverage_array",
    "passes_thresholds",
    "smith_waterman",
    "smith_waterman_reference",
    "score_only",
    "batch_smith_waterman",
    "banded_smith_waterman",
    "seed_and_extend",
    "ungapped_extension",
    "AdeptDriver",
    "AlignmentWorkloadStats",
]
