"""ADEPT-like batch alignment driver with a simulated multi-GPU device model.

ADEPT's driver class "detects all the available GPUs on a node and distributes
alignments across all the available GPUs"; one host thread per GPU packs the
sequence batches and launches kernels.  :class:`AdeptDriver` reproduces that
interface: it takes candidate pairs, packs them into length-sorted batches,
round-robins the batches over the node's (simulated) GPUs, runs the batched
wavefront kernel of :mod:`repro.align.batch` for the actual numbers, and
charges each batch the *modelled* device time from
:class:`repro.hardware.gpu.GpuSpec`.

Two clocks are therefore reported:

* ``measured_seconds`` — wall-clock time of the CPU execution of the kernel
  (what you actually waited for);
* ``modeled_seconds`` — what the same batches would take on the configured
  GPUs; this is what the scaling benchmarks and the perfmodel use, so that
  the reproduction's time breakdowns have the same *shape* as the paper's
  even though the absolute hardware is different.

Cell-updates-per-second (CUPS) is computed exactly as in §VII of the paper:
DP cells updated divided by forward-scoring kernel time.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..hardware.node import NodeSpec, SUMMIT_NODE
from ..sequences.sequence import SequenceSet
from .batch import batch_smith_waterman
from .result import ALIGNMENT_RESULT_DTYPE
from .substitution import DEFAULT_SCORING, ScoringScheme


@dataclass
class AlignmentWorkloadStats:
    """Instrumentation of one batch-alignment workload.

    Attributes
    ----------
    pairs:
        Number of pairwise alignments performed.
    cells:
        Total DP cells updated (sum of m*n over pairs).
    measured_seconds:
        Wall-clock CPU time of the kernel execution.
    modeled_seconds:
        Modelled GPU time for the same work on the configured node.
    batches:
        Number of device batches formed.
    """

    pairs: int = 0
    cells: int = 0
    measured_seconds: float = 0.0
    modeled_seconds: float = 0.0
    batches: int = 0

    @property
    def measured_cups(self) -> float:
        """Cell updates per second of the CPU execution."""
        return self.cells / self.measured_seconds if self.measured_seconds > 0 else 0.0

    @property
    def modeled_cups(self) -> float:
        """Cell updates per second under the GPU device model."""
        return self.cells / self.modeled_seconds if self.modeled_seconds > 0 else 0.0

    @property
    def alignments_per_second_modeled(self) -> float:
        """Alignments per second under the GPU device model."""
        return self.pairs / self.modeled_seconds if self.modeled_seconds > 0 else 0.0

    def merge(self, other: "AlignmentWorkloadStats") -> "AlignmentWorkloadStats":
        """Combine stats from two workloads (e.g. per-GPU partial stats)."""
        return AlignmentWorkloadStats(
            pairs=self.pairs + other.pairs,
            cells=self.cells + other.cells,
            measured_seconds=self.measured_seconds + other.measured_seconds,
            modeled_seconds=self.modeled_seconds + other.modeled_seconds,
            batches=self.batches + other.batches,
        )


@dataclass
class AdeptDriver:
    """Batch Smith–Waterman driver over the simulated GPUs of one node.

    Parameters
    ----------
    node:
        Node model: number of GPUs and their throughput.
    scoring:
        Substitution matrix and gap penalties.
    batch_size:
        Pairs per device batch (ADEPT uses batches sized to fill the GPU).
    use_threads:
        If true, device batches run concurrently on a thread pool with one
        worker per simulated GPU (mirrors ADEPT's one-host-thread-per-GPU
        design).  NumPy releases the GIL for large array ops, so this gives a
        modest real speedup; correctness does not depend on it.
    """

    node: NodeSpec = field(default_factory=lambda: SUMMIT_NODE)
    scoring: ScoringScheme = field(default_factory=lambda: DEFAULT_SCORING)
    batch_size: int = 128
    use_threads: bool = False

    def align_pairs(
        self,
        sequences: SequenceSet,
        pair_rows: np.ndarray,
        pair_cols: np.ndarray,
    ) -> tuple[np.ndarray, AlignmentWorkloadStats]:
        """Align sequence pairs ``(pair_rows[k], pair_cols[k])``.

        Returns a structured array (in the *input pair order*) and workload
        statistics.
        """
        pair_rows = np.asarray(pair_rows, dtype=np.int64)
        pair_cols = np.asarray(pair_cols, dtype=np.int64)
        if pair_rows.shape != pair_cols.shape:
            raise ValueError("pair_rows and pair_cols must have the same shape")
        n_pairs = int(pair_rows.size)
        results = np.zeros(n_pairs, dtype=ALIGNMENT_RESULT_DTYPE)
        stats = AlignmentWorkloadStats()
        if n_pairs == 0:
            return results, stats

        lengths = sequences.lengths
        # sort pairs by the larger sequence length so batches have little padding
        sort_key = np.maximum(lengths[pair_rows], lengths[pair_cols])
        order = np.argsort(sort_key, kind="stable")

        batches: list[np.ndarray] = [
            order[start : start + self.batch_size]
            for start in range(0, n_pairs, self.batch_size)
        ]
        stats.batches = len(batches)
        stats.pairs = n_pairs

        def run_batch(batch_indices: np.ndarray) -> tuple[np.ndarray, np.ndarray, float, float, int]:
            a_list = [sequences.codes(int(pair_rows[k])) for k in batch_indices]
            b_list = [sequences.codes(int(pair_cols[k])) for k in batch_indices]
            t0 = time.perf_counter()
            res = batch_smith_waterman(a_list, b_list, self.scoring)
            measured = time.perf_counter() - t0
            cells = int(res["cells"].sum())
            bytes_moved = int(sum(len(a) + len(b) for a, b in zip(a_list, b_list)))
            modeled = self.node.gpu.batch_seconds(cells, bytes_moved)
            return batch_indices, res, measured, modeled, cells

        gpu_measured = np.zeros(max(self.node.gpus_per_node, 1))
        gpu_modeled = np.zeros(max(self.node.gpus_per_node, 1))

        if self.use_threads and len(batches) > 1:
            with ThreadPoolExecutor(max_workers=max(self.node.gpus_per_node, 1)) as pool:
                outputs = list(pool.map(run_batch, batches))
        else:
            outputs = [run_batch(b) for b in batches]

        for batch_no, (batch_indices, res, measured, modeled, cells) in enumerate(outputs):
            results[batch_indices] = res
            gpu = batch_no % max(self.node.gpus_per_node, 1)
            gpu_measured[gpu] += measured
            gpu_modeled[gpu] += modeled
            stats.cells += cells

        # the node finishes when its slowest GPU finishes; measured time is the
        # actual CPU wall time (sum if serial, max if threaded)
        stats.modeled_seconds = float(gpu_modeled.max())
        stats.measured_seconds = (
            float(gpu_measured.max()) if self.use_threads else float(gpu_measured.sum())
        )
        return results, stats

    def align_pair_lengths(
        self, sequences: SequenceSet, pair_rows: np.ndarray, pair_cols: np.ndarray
    ) -> np.ndarray:
        """DP-matrix sizes (m*n) of each pair — the paper's Fig. 7b imbalance metric."""
        lengths = sequences.lengths
        return lengths[np.asarray(pair_rows, dtype=np.int64)] * lengths[
            np.asarray(pair_cols, dtype=np.int64)
        ]
