"""Alignment result containers and derived similarity metrics.

PASTIS filters aligned pairs on two metrics before admitting them to the
similarity graph (Table IV): **ANI** (identity over the alignment, threshold
0.30) and **coverage** (fraction of the shorter sequence covered by the
alignment, threshold 0.70).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Structured dtype for batched alignment results.
ALIGNMENT_RESULT_DTYPE = np.dtype(
    [
        ("score", np.int32),
        ("begin_a", np.int32),
        ("end_a", np.int32),     # inclusive, 0-based residue coordinates
        ("begin_b", np.int32),
        ("end_b", np.int32),
        ("matches", np.int32),
        ("length", np.int32),    # number of alignment columns
        ("cells", np.int64),     # DP matrix size (m * n) — the CUPS unit
    ]
)


@dataclass(frozen=True)
class AlignmentResult:
    """Result of one pairwise local alignment."""

    score: int
    begin_a: int
    end_a: int
    begin_b: int
    end_b: int
    matches: int
    length: int
    cells: int

    @property
    def identity(self) -> float:
        """ANI: matches divided by the number of alignment columns."""
        return self.matches / self.length if self.length else 0.0

    def coverage(self, len_a: int, len_b: int) -> float:
        """Coverage of the shorter sequence by the aligned span."""
        shorter = min(len_a, len_b)
        if shorter == 0 or self.length == 0:
            return 0.0
        span_a = self.end_a - self.begin_a + 1
        span_b = self.end_b - self.begin_b + 1
        return min(span_a, span_b) / shorter

    def to_record(self) -> np.ndarray:
        """Pack into a single-element structured array."""
        out = np.zeros(1, dtype=ALIGNMENT_RESULT_DTYPE)
        out["score"] = self.score
        out["begin_a"] = self.begin_a
        out["end_a"] = self.end_a
        out["begin_b"] = self.begin_b
        out["end_b"] = self.end_b
        out["matches"] = self.matches
        out["length"] = self.length
        out["cells"] = self.cells
        return out

    @classmethod
    def from_record(cls, record: np.ndarray) -> "AlignmentResult":
        """Unpack one element of an :data:`ALIGNMENT_RESULT_DTYPE` array."""
        return cls(
            score=int(record["score"]),
            begin_a=int(record["begin_a"]),
            end_a=int(record["end_a"]),
            begin_b=int(record["begin_b"]),
            end_b=int(record["end_b"]),
            matches=int(record["matches"]),
            length=int(record["length"]),
            cells=int(record["cells"]),
        )


def identity_array(results: np.ndarray) -> np.ndarray:
    """Vectorized ANI for a structured result array."""
    lengths = results["length"].astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        ani = np.where(lengths > 0, results["matches"] / lengths, 0.0)
    return ani


def coverage_array(results: np.ndarray, len_a: np.ndarray, len_b: np.ndarray) -> np.ndarray:
    """Vectorized coverage of the shorter sequence for a result array."""
    len_a = np.asarray(len_a, dtype=np.float64)
    len_b = np.asarray(len_b, dtype=np.float64)
    shorter = np.minimum(len_a, len_b)
    span_a = (results["end_a"] - results["begin_a"] + 1).astype(np.float64)
    span_b = (results["end_b"] - results["begin_b"] + 1).astype(np.float64)
    span = np.minimum(span_a, span_b)
    with np.errstate(divide="ignore", invalid="ignore"):
        cov = np.where((shorter > 0) & (results["length"] > 0), span / shorter, 0.0)
    return cov


def passes_thresholds(
    results: np.ndarray,
    len_a: np.ndarray,
    len_b: np.ndarray,
    ani_threshold: float,
    coverage_threshold: float,
) -> np.ndarray:
    """Boolean mask of pairs passing both the ANI and coverage thresholds."""
    return (identity_array(results) >= ani_threshold) & (
        coverage_array(results, len_a, len_b) >= coverage_threshold
    )
