"""Pre-blocking: overlapping next-block discovery with current-block alignment (§VI-C).

In the incremental (blocked) pipeline, the CPU-side SpGEMM that discovers the
candidates of block ``b+1`` can run while the GPUs align block ``b``; the CPU
cores are otherwise mostly idle during alignment.  The cost of the overlap is
resource contention: ADEPT's host threads and the SpGEMM now share the CPU
(and memory bandwidth), so both components get individually slower — the
paper measures ~1.10-1.15x for alignment and ~1.15-1.55x for the sparse
multiply (growing with the number of blocks) — but the *total* drops from the
sum of the two components to roughly the maximum of the two, a ~30% saving
for the index-based scheme and ~20% for the triangularity-based one.

:class:`PreblockingModel` is the *closed-form reference* for that schedule
arithmetic, including the efficiency metric of Table I (``max(align,
sparse) / achieved combined time``), whose degradation under load imbalance
is exactly what makes the triangularity-based scheme benefit less.

The pipeline itself no longer calls :meth:`PreblockingModel.evaluate`: the
overlap is executed live by
:class:`repro.core.engine.schedulers.OverlappedScheduler`, which shares this
model's contention parameterization, advances the simulated per-rank clock
step by step, and records a
:class:`~repro.core.engine.timeline.StageTimeline` from which the
:class:`PreblockingReport` (the Table-I row) is derived.  The closed form
remains for the Table-I benchmark and as a cross-check: on the same
per-block times it must produce the same report as the executed schedule
(asserted in ``tests/test_engine.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PreblockingReport:
    """The Table-I row for one configuration.

    All times are bulk-synchronous component times (max over ranks).
    """

    blocks: int
    align_seconds: float
    sparse_seconds: float
    sum_seconds: float
    total_seconds: float
    align_seconds_pre: float
    sparse_seconds_pre: float
    combined_seconds_pre: float
    total_seconds_pre: float

    @property
    def normalized_align(self) -> float:
        """Alignment slowdown caused by pre-blocking (paper: ~1.1x)."""
        return self.align_seconds_pre / self.align_seconds if self.align_seconds else 1.0

    @property
    def normalized_sparse(self) -> float:
        """Sparse slowdown caused by pre-blocking (paper: ~1.15-1.55x)."""
        return self.sparse_seconds_pre / self.sparse_seconds if self.sparse_seconds else 1.0

    @property
    def normalized_total(self) -> float:
        """Total-runtime ratio with/without pre-blocking (paper: ~0.7-0.8)."""
        return self.total_seconds_pre / self.total_seconds if self.total_seconds else 1.0

    @property
    def efficiency_percent(self) -> float:
        """Pre-blocking efficiency: ``max(align, sparse) / combined`` (Table I)."""
        if self.combined_seconds_pre <= 0:
            return 100.0
        ideal = max(self.align_seconds_pre, self.sparse_seconds_pre)
        return 100.0 * ideal / self.combined_seconds_pre


@dataclass
class PreblockingModel:
    """Schedule arithmetic for the pre-blocking optimization.

    Parameters
    ----------
    align_contention:
        Multiplier on alignment time while it shares the node with SpGEMM.
    sparse_contention_base, sparse_contention_per_block:
        The sparse multiply slows by ``base + per_block * num_blocks`` —
        the paper's Table I shows the sparse slowdown growing with the block
        count (more, smaller multiplies interleave less efficiently).
    """

    align_contention: float = 1.13
    sparse_contention_base: float = 1.10
    sparse_contention_per_block: float = 0.006

    def sparse_contention(self, num_blocks: int) -> float:
        """Sparse-multiply slowdown factor for a given block count."""
        return self.sparse_contention_base + self.sparse_contention_per_block * num_blocks

    def evaluate(
        self,
        sparse_per_block_per_rank: np.ndarray,
        align_per_block_per_rank: np.ndarray,
        other_seconds: float = 0.0,
    ) -> PreblockingReport:
        """Compute the with/without pre-blocking timings.

        Parameters
        ----------
        sparse_per_block_per_rank, align_per_block_per_rank:
            Arrays of shape ``(num_blocks, nranks)`` with the per-rank sparse
            (SpGEMM) and alignment time of every processed block.
        other_seconds:
            Remaining runtime (IO, other sparse work, waits) added to both
            totals unchanged.
        """
        sparse = np.atleast_2d(np.asarray(sparse_per_block_per_rank, dtype=np.float64))
        align = np.atleast_2d(np.asarray(align_per_block_per_rank, dtype=np.float64))
        if sparse.shape != align.shape:
            raise ValueError("sparse and align arrays must have the same shape")
        num_blocks = sparse.shape[0]

        # ---- without pre-blocking: strictly sequential per block
        align_total = float(align.sum(axis=0).max())
        sparse_total = float(sparse.sum(axis=0).max())
        sum_seconds = align_total + sparse_total
        total_seconds = sum_seconds + other_seconds

        # ---- with pre-blocking: next block's SpGEMM hides behind this block's alignment
        align_pre = align * self.align_contention
        sparse_pre = sparse * self.sparse_contention(num_blocks)
        per_rank_combined = sparse_pre[0].copy()
        for b in range(num_blocks - 1):
            per_rank_combined += np.maximum(align_pre[b], sparse_pre[b + 1])
        per_rank_combined += align_pre[num_blocks - 1]
        combined = float(per_rank_combined.max())
        align_total_pre = float(align_pre.sum(axis=0).max())
        sparse_total_pre = float(sparse_pre.sum(axis=0).max())
        total_pre = combined + other_seconds

        return PreblockingReport(
            blocks=num_blocks,
            align_seconds=align_total,
            sparse_seconds=sparse_total,
            sum_seconds=sum_seconds,
            total_seconds=total_seconds,
            align_seconds_pre=align_total_pre,
            sparse_seconds_pre=sparse_total_pre,
            combined_seconds_pre=combined,
            total_seconds_pre=total_pre,
        )
