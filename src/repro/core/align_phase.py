"""The distributed alignment phase of one overlap-matrix block.

Each virtual rank owns the overlap elements it computed during the blocked
SUMMA; after pruning (load balancing) and the common-k-mer filter, those
elements are exactly the pairwise alignments that rank must perform.  The
rank hands them to its node's ADEPT driver (6 simulated GPUs), collects
scores/ANI/coverage, and keeps the pairs that pass the similarity thresholds.

Per-rank counters (pairs aligned, DP cells, modelled alignment seconds) are
recorded so the load-imbalance plots of Fig. 7 and the "Imbalance (%)" rows of
Table IV can be produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..align.adept import AdeptDriver
from ..align.result import ALIGNMENT_RESULT_DTYPE, coverage_array, identity_array
from ..align.seed_extend import seed_and_extend
from ..mpi.communicator import SimCommunicator
from ..sequences.sequence import SequenceSet
from ..sparse.coo import CooMatrix
from .costing import CostModel
from .filtering import similarity_mask
from .params import PastisParams

#: Structured dtype of similarity-graph edges produced by the alignment phase.
EDGE_DTYPE = np.dtype(
    [
        ("row", np.int64),
        ("col", np.int64),
        ("score", np.int32),
        ("ani", np.float32),
        ("coverage", np.float32),
    ]
)


@dataclass
class BlockAlignmentOutput:
    """Result of aligning one block's candidates.

    Attributes
    ----------
    edges:
        Similar pairs (passing ANI/coverage) found in this block.
    pairs_aligned_per_rank, cells_per_rank, align_seconds_per_rank:
        Per-rank workload metrics (the Fig. 7 imbalance quantities).
    kernel_seconds:
        Modelled forward-scoring kernel time (CUPS denominator).
    measured_seconds:
        Actual CPU wall time spent in the kernels.
    """

    edges: np.ndarray
    pairs_aligned_per_rank: np.ndarray
    cells_per_rank: np.ndarray
    align_seconds_per_rank: np.ndarray
    kernel_seconds: float = 0.0
    measured_seconds: float = 0.0

    @property
    def pairs_aligned(self) -> int:
        """Total alignments performed for this block."""
        return int(self.pairs_aligned_per_rank.sum())

    @property
    def cells(self) -> int:
        """Total DP cells updated for this block."""
        return int(self.cells_per_rank.sum())


@dataclass
class AlignmentPhase:
    """Executes the per-rank batch alignments of overlap-matrix blocks."""

    sequences: SequenceSet
    params: PastisParams
    comm: SimCommunicator
    cost_model: CostModel = field(default_factory=CostModel)
    driver: AdeptDriver = field(init=False)

    def __post_init__(self) -> None:
        self.driver = AdeptDriver(
            node=self.comm.cluster.node,
            scoring=self.params.scoring,
            batch_size=self.params.align_batch_size,
            use_threads=self.params.use_threads,
        )

    # ------------------------------------------------------------------ execution
    def align_block(
        self, per_rank_candidates: list[CooMatrix], charge: bool = True
    ) -> BlockAlignmentOutput:
        """Align each rank's candidate pairs and filter to similar pairs.

        ``per_rank_candidates`` holds, for every rank, the (already pruned and
        filtered) overlap elements in global coordinates.  With
        ``charge=False`` the ledger is left untouched: the per-rank seconds
        and counters are only returned, so a scheduler can charge them itself
        (possibly scaled by a contention multiplier — see
        :mod:`repro.core.engine.schedulers`).
        """
        nranks = self.comm.size
        lengths = self.sequences.lengths
        pairs_per_rank = np.zeros(nranks, dtype=np.int64)
        cells_per_rank = np.zeros(nranks, dtype=np.int64)
        seconds_per_rank = np.zeros(nranks, dtype=np.float64)
        kernel_seconds = 0.0
        measured_seconds = 0.0
        edge_parts: list[np.ndarray] = []

        for rank in range(nranks):
            candidates = per_rank_candidates[rank]
            if candidates.nnz == 0:
                continue
            rows = candidates.rows
            cols = candidates.cols
            if self.params.alignment_mode == "seed_extend":
                results = self._seed_extend_rank(candidates)
                measured = 0.0
            else:
                results, stats = self.driver.align_pairs(self.sequences, rows, cols)
                measured = stats.measured_seconds
            cells = int(results["cells"].sum())
            bytes_moved = int(lengths[rows].sum() + lengths[cols].sum())

            pairs_per_rank[rank] = rows.size
            cells_per_rank[rank] = cells
            measured_seconds += measured

            if self.params.clock == "modeled":
                seconds = self.cost_model.alignment_seconds(cells, bytes_moved)
            else:
                seconds = measured
            seconds_per_rank[rank] = seconds
            kernel_seconds += self.cost_model.alignment_kernel_seconds(cells)
            if charge:
                self.comm.ledger.charge(rank, "align", seconds)
                self.comm.ledger.count(rank, "alignments", rows.size)
                self.comm.ledger.count(rank, "alignment_cells", cells)

            mask = similarity_mask(
                results,
                lengths[rows],
                lengths[cols],
                self.params.ani_threshold,
                self.params.coverage_threshold,
            )
            if mask.any():
                edges = np.zeros(int(mask.sum()), dtype=EDGE_DTYPE)
                edges["row"] = rows[mask]
                edges["col"] = cols[mask]
                edges["score"] = results["score"][mask]
                edges["ani"] = identity_array(results)[mask]
                edges["coverage"] = coverage_array(results, lengths[rows], lengths[cols])[mask]
                edge_parts.append(edges)

        edges = (
            np.concatenate(edge_parts)
            if edge_parts
            else np.zeros(0, dtype=EDGE_DTYPE)
        )
        return BlockAlignmentOutput(
            edges=edges,
            pairs_aligned_per_rank=pairs_per_rank,
            cells_per_rank=cells_per_rank,
            align_seconds_per_rank=seconds_per_rank,
            kernel_seconds=kernel_seconds,
            measured_seconds=measured_seconds,
        )

    # ------------------------------------------------------------------ helpers
    def _seed_extend_rank(self, candidates: CooMatrix) -> np.ndarray:
        """X-drop seed-extension alignment of one rank's candidates."""
        results = np.zeros(candidates.nnz, dtype=ALIGNMENT_RESULT_DTYPE)
        values = candidates.values
        has_seeds = values.dtype.names is not None and "first_pos_a" in values.dtype.names
        for idx in range(candidates.nnz):
            i = int(candidates.rows[idx])
            j = int(candidates.cols[idx])
            a_codes = self.sequences.codes(i)
            b_codes = self.sequences.codes(j)
            if has_seeds:
                seeds = [
                    (int(values["first_pos_a"][idx]), int(values["first_pos_b"][idx])),
                    (int(values["second_pos_a"][idx]), int(values["second_pos_b"][idx])),
                ]
            else:
                seeds = [(0, 0)]
            res = seed_and_extend(
                a_codes,
                b_codes,
                seeds,
                seed_length=self.params.kmer_length,
                scoring=self.params.scoring,
            )
            results[idx] = res.to_record()[0]
        return results
