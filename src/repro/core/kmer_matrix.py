"""Construction of the sequence-by-k-mer matrix ``A`` (and its transpose).

``A[i, t]`` is nonzero when sequence ``i`` contains k-mer ``t``; the value is
the position of (the first occurrence of) the k-mer in the sequence, the seed
location carried into the overlap matrix.  With substitute k-mers enabled,
near-neighbour k-mers are added with the same position (they represent the
same seed, reachable by one substitution).

The matrix is hypersparse per rank (the k-mer dimension is ``|alphabet|^k``,
e.g. 64 M for k=6), which is why CombBLAS/PASTIS store it in DCSC; the
builder reports that compression ratio as part of its info record.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..align.substitution import BLOSUM62, identity_matrix, reduce_matrix
from ..distsparse.distmat import DistSparseMatrix
from ..distsparse.distribute import distribute_coo
from ..mpi.communicator import SimCommunicator
from ..sequences.alphabet import PROTEIN
from ..sequences.kmers import KmerExtractor, substitute_kmers
from ..sequences.sequence import SequenceSet
from ..sparse.coo import CooMatrix
from ..sparse.dcsc import DcscMatrix
from .params import PastisParams


@dataclass
class KmerMatrixInfo:
    """Facts about the constructed k-mer matrix (Table IV's bottom section)."""

    n_sequences: int
    kmer_space: int
    nnz: int
    kmer_occurrences: int
    substitute_nnz: int
    build_seconds: float
    hypersparsity_ratio: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reports."""
        return {
            "n_sequences": self.n_sequences,
            "kmer_space": self.kmer_space,
            "nnz": self.nnz,
            "kmer_occurrences": self.kmer_occurrences,
            "substitute_nnz": self.substitute_nnz,
            "build_seconds": self.build_seconds,
            "hypersparsity_ratio": self.hypersparsity_ratio,
        }


def extract_seed_triples(
    sequences: SequenceSet,
    params: PastisParams,
    *,
    apply_frequency_filter: bool = True,
    banned_kmers: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int, KmerExtractor]:
    """Extract the seed (seq, k-mer, position) triples, substitutes included.

    Returns ``(seq_ids, kmer_ids, positions, occurrences, substitute_nnz,
    extractor)`` in the exact entry order :func:`build_kmer_coo` has always
    produced — exact occurrences first (per sequence, position-ascending),
    then substitutes grouped by neighbour rank.  That ordering is load-bearing:
    deduplication keeps the last entry per coordinate, so two extractions must
    interleave a row's duplicates identically to produce bitwise-equal rows.

    The query-vs-database path (:mod:`repro.serve.query`) reuses this with
    ``apply_frequency_filter=False`` and the database's persisted banned
    k-mer set: ``max_kmer_frequency`` is a *global* filter over the database,
    so queries drop the database's banned ids instead of recounting — which
    is what keeps a member query's row bitwise equal to its database row.
    """
    alphabet = params.alphabet
    extractor = KmerExtractor(
        k=params.kmer_length,
        alphabet=alphabet,
        max_kmer_frequency=params.max_kmer_frequency if apply_frequency_filter else None,
    )
    seq_ids, kmer_ids, positions = extractor.extract(sequences)
    if banned_kmers is not None and banned_kmers.size and kmer_ids.size:
        keep = ~np.isin(kmer_ids, banned_kmers)
        seq_ids, kmer_ids, positions = seq_ids[keep], kmer_ids[keep], positions[keep]
    occurrences = int(seq_ids.size)

    substitute_nnz = 0
    if params.substitute_kmers > 0 and occurrences:
        if alphabet.name == PROTEIN.name:
            scores = BLOSUM62.astype(np.float64)
        else:
            scores = reduce_matrix(BLOSUM62.astype(np.float64), PROTEIN, alphabet)
            if scores.shape[0] != alphabet.size:  # pragma: no cover - defensive
                scores = identity_matrix(alphabet).astype(np.float64)
        src_idx, neighbor_ids = substitute_kmers(
            kmer_ids,
            params.kmer_length,
            alphabet,
            scores,
            num_neighbors=params.substitute_kmers,
        )
        substitute_nnz = int(neighbor_ids.size)
        seq_ids = np.concatenate([seq_ids, seq_ids[src_idx]])
        kmer_ids = np.concatenate([kmer_ids, neighbor_ids])
        positions = np.concatenate([positions, positions[src_idx]])
    return seq_ids, kmer_ids, positions, occurrences, substitute_nnz, extractor


def build_kmer_coo(sequences: SequenceSet, params: PastisParams) -> tuple[CooMatrix, KmerMatrixInfo]:
    """Build the global (undistributed) sequence-by-k-mer COO matrix."""
    t0 = time.perf_counter()
    seq_ids, kmer_ids, positions, occurrences, substitute_nnz, extractor = (
        extract_seed_triples(sequences, params)
    )
    shape = (len(sequences), extractor.space_size())
    coo = CooMatrix(shape, seq_ids, kmer_ids, positions.astype(np.int32), check=False)
    # one entry per (sequence, k-mer): keep the first position
    coo = coo.sort_rowmajor().deduplicate()
    build_seconds = time.perf_counter() - t0

    dcsc = DcscMatrix.from_coo(coo)
    info = KmerMatrixInfo(
        n_sequences=len(sequences),
        kmer_space=shape[1],
        nnz=coo.nnz,
        kmer_occurrences=occurrences,
        substitute_nnz=substitute_nnz,
        build_seconds=build_seconds,
        hypersparsity_ratio=dcsc.compression_ratio_vs_csc(),
    )
    return coo, info


def build_distributed_kmer_matrix(
    sequences: SequenceSet,
    params: PastisParams,
    comm: SimCommunicator,
    cost_seconds_per_rank: np.ndarray | None = None,
) -> tuple[DistSparseMatrix, DistSparseMatrix, KmerMatrixInfo]:
    """Build ``A`` and ``Aᵀ`` distributed over the communicator's 2D grid.

    Returns ``(A, A_transpose, info)``.  The distribution traffic is charged
    by :func:`repro.distsparse.distribute.distribute_coo`.
    """
    coo, info = build_kmer_coo(sequences, params)
    a_dist = distribute_coo(coo, comm)
    at_dist = distribute_coo(coo.transpose(), comm)
    if cost_seconds_per_rank is not None:
        for rank in range(comm.size):
            comm.ledger.charge(rank, "sparse_other", float(cost_seconds_per_rank[rank]))
    return a_dist, at_dist, info
