"""The PASTIS many-against-many similarity-search pipeline.

``PastisPipeline.run`` executes the three stages of §V on the simulated
distributed runtime:

1. **candidate discovery** — build the distributed sequence-by-k-mer matrix
   ``A`` and form the overlap matrix ``C = A·Aᵀ`` incrementally with the
   Blocked 2D Sparse SUMMA under the configured load-balancing scheme;
2. **batch alignment** — for every block, prune the candidates (symmetry +
   common-k-mer threshold) and align each rank's pairs with the ADEPT-like
   batched Smith–Waterman driver;
3. **similarity graph** — keep the pairs passing the ANI/coverage thresholds
   and assemble the output graph;
4. **clustering** (optional, ``params.cluster.enabled``) — hand the finished
   graph to :func:`repro.graph.api.cluster_similarity_graph` (Markov
   clustering on the SpGEMM kernel registry, or union-find components).
   This is a post-graph stage independent of the per-block stage graph, so
   the schedulers are untouched; its result lands on
   ``SearchResult.clustering`` and in ``stats.extras["clustering"]``.

Execution order of the per-block work is owned by the **stage-graph
execution engine** (:mod:`repro.core.engine`): each output block becomes a
:class:`~repro.core.engine.stages.BlockTask` with explicit
``discover → prune → align → accumulate`` stages, run by a pluggable
scheduler — :class:`~repro.core.engine.schedulers.SerialScheduler` for the
bulk-synchronous schedule, or (with ``pre_blocking=True``)
:class:`~repro.core.engine.schedulers.OverlappedScheduler`, which interleaves
``discover(b+1)`` with ``align(b)`` on the simulated clock and charges the
§VI-C contention slowdowns as it schedules.  Edges stream into an
incremental :class:`~repro.core.engine.accumulator.StreamingGraphAccumulator`
so block outputs are discarded as soon as they are consumed; peak live
memory is reported through the result's
:class:`~repro.metrics.memory.MemoryTracker`.

All communication, IO and computation is charged to the per-rank cost
ledger.  The result object carries the similarity graph, Table-IV-style
statistics, the per-block records used by the figure benchmarks, the
Table-I :class:`~repro.core.preblocking.PreblockingReport` (now *derived*
from the executed schedule's timeline, not recomputed post hoc), and the
raw ledger.
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from dataclasses import dataclass, field

import numpy as np

from ..distsparse.blocked_summa import BlockedSpGemm
from ..graph.api import ClusteringResult, cluster_similarity_graph
from ..metrics.memory import MemoryTracker
from ..metrics.timers import TimerRegistry
from ..mpi.communicator import SimCommunicator
from ..obs import LedgerFanout, MetricsHub, activate_metrics, deactivate_metrics
from ..obs.manifest import build_manifest
from ..obs.registry import RunRegistry
from ..trace import TraceRecorder, activate, deactivate, maybe_span, write_trace
from ..mpi.io import ParallelIoModel
from ..mpi.process_grid import is_perfect_square
from ..distsparse.distribute import distribute_sequences
from ..sequences.sequence import SequenceSet
from ..sparse.semiring import OverlapSemiring
from .align_phase import AlignmentPhase, EDGE_DTYPE  # noqa: F401  (EDGE_DTYPE re-export)
from .blocking import make_block_tasks
from .costing import CostModel
from .engine import (
    BlockRecord,
    ScheduleOutcome,
    StageContext,
    StageTimeline,
    StreamingGraphAccumulator,
    make_scheduler,
)
from .engine.cache import StageCache, build_stage_cache
from .engine.schedulers import OVERLAP_HIDDEN_CATEGORY
from .kmer_matrix import KmerMatrixInfo, build_distributed_kmer_matrix
from .params import PastisParams
from .preblocking import PreblockingReport
from .similarity_graph import SimilarityGraph
from .stats import SearchStats


@dataclass
class SearchResult:
    """Everything a PASTIS run produces."""

    similarity_graph: SimilarityGraph
    stats: SearchStats
    params: PastisParams
    comm: SimCommunicator
    kmer_info: KmerMatrixInfo
    block_records: list[BlockRecord] = field(default_factory=list)
    preblocking_report: PreblockingReport | None = None
    timeline: StageTimeline | None = None
    memory: MemoryTracker | None = None
    scheduler: str = "serial"
    clustering: ClusteringResult | None = None
    #: the run's span recorder when ``params.trace``/``trace_dir`` enabled
    #: tracing (None otherwise); see :mod:`repro.trace`
    trace: TraceRecorder | None = None
    #: the run's metrics hub when ``params.metrics``/``run_registry``
    #: enabled collection (None otherwise); see :mod:`repro.obs`
    metrics: MetricsHub | None = None
    #: query mode only: global output row of each input query, in input
    #: order (database members keep their database row, novel queries get
    #: appended rows ``>= n_db``); None for all-vs-all runs
    query_rows: np.ndarray | None = None

    @property
    def ledger(self):
        """The per-rank cost ledger of the run."""
        return self.comm.ledger


class PastisPipeline:
    """End-to-end many-against-many protein similarity search."""

    def __init__(self, params: PastisParams | None = None) -> None:
        self.params = params if params is not None else PastisParams()

    # ------------------------------------------------------------------ public API
    def run(self, sequences: SequenceSet, resume: bool = False) -> SearchResult:
        """Search ``sequences`` against themselves and return the similarity graph.

        With ``params.cache_dir`` set, every completed block is persisted in
        the content-hashed stage cache and blocks whose entries already exist
        are replayed instead of recomputed (bit-identically).  ``resume=True``
        declares that a previous (possibly killed) run is being continued: it
        requires a configured ``cache_dir`` and fails loudly otherwise —
        stored blocks are skipped and execution continues from the first
        missing one, so a SIGKILL loses at most the in-flight block.

        With ``params.trace``/``params.trace_dir`` set, the run records
        structured spans through a :class:`repro.trace.TraceRecorder`
        (returned on ``SearchResult.trace``) and — when ``trace_dir`` is
        set — exports ``trace.jsonl`` plus a Perfetto-loadable
        ``trace.json`` into that directory, on success *and* on failure
        (a partial trace of a crashed run is often the most useful one).
        Tracing never perturbs results.

        With ``params.metrics``/``params.run_registry`` set, the run
        additionally collects typed metrics into a
        :class:`repro.obs.MetricsHub` (returned on
        ``SearchResult.metrics``) and — when ``run_registry`` is set —
        appends a schema-versioned ``run.json`` manifest to that registry
        directory, again on success *and* on failure: a crashed run's
        manifest records its exit status and whatever phase timers had
        accumulated.  Metrics collection never perturbs results either.
        """
        params = self.params
        tracer = TraceRecorder() if params.trace_enabled else None
        hub = MetricsHub() if params.metrics_enabled else None
        phases = TimerRegistry()
        if tracer is None and hub is None:
            return self._run_impl(sequences, resume, None, None, phases, None)
        # the failure path reports from whatever state the run built before
        # dying; _run_impl fills this in as the pieces come up
        state = _RunState()
        if tracer is not None:
            # deep sites without a StageContext (the SUMMA stage loop, MCL
            # iterations) reach the recorder through the active-tracer global
            activate(tracer)
        if hub is not None:
            # same pattern for metrics: spgemm_auto dispatch decisions and
            # the SUMMA stage loop find the hub through the active global
            activate_metrics(hub)
        try:
            result = self._run_impl(sequences, resume, tracer, hub, phases, state)
        except BaseException as exc:
            if tracer is not None and params.trace_dir is not None:
                try:  # best effort: never mask the run's own failure
                    write_trace(tracer, params.trace_dir)
                except Exception:
                    pass
            if params.run_registry is not None:
                try:  # ditto — and the partial phase timers (the Timer
                    # context manager accumulates on exceptions) are often
                    # the only timing a crashed run leaves behind
                    RunRegistry(params.run_registry).record(
                        build_manifest(
                            params=params,
                            status="error",
                            error=exc,
                            scheduler=state.scheduler,
                            phases=phases,
                            hub=hub,
                            comm=state.comm,
                            cache=state.cache,
                        )
                    )
                except Exception:
                    pass
            raise
        finally:
            if tracer is not None:
                deactivate()
            if hub is not None:
                deactivate_metrics()
        return result

    def _run_impl(
        self,
        sequences: SequenceSet,
        resume: bool,
        tracer: TraceRecorder | None,
        hub: MetricsHub | None,
        phases: TimerRegistry,
        state: "_RunState | None",
    ) -> SearchResult:
        params = self.params

        def phase(name: str) -> ExitStack:
            # one top-level phase: always timed into the registry (reported
            # as extras["phase_seconds"]), additionally spanned when tracing
            stack = ExitStack()
            stack.enter_context(phases.timer(name))
            stack.enter_context(maybe_span(tracer, name, "phase", lane="phase"))
            return stack

        if resume and params.cache_dir is None:
            raise ValueError(
                "resume=True requires params.cache_dir: a resumable run needs "
                "the stage cache the previous attempt wrote its blocks to"
            )
        if resume and params.cache_invalidate:
            raise ValueError(
                "resume=True reads the cache; cache_invalidate=True forces "
                "recomputation — pick one"
            )
        query_mode = params.mode == "query"
        if not query_mode and len(sequences) < 2:
            raise ValueError("need at least two sequences to search")
        if not is_perfect_square(params.nodes):
            raise ValueError(
                f"nodes={params.nodes} must be a perfect square (2D process grid requirement)"
            )
        wall_start = time.perf_counter()

        comm = SimCommunicator(params.nodes)
        if state is not None:
            state.comm = comm
        # the ledger's trace hook feeds whichever sinks are active: every
        # charge/charge_all bumps the tracer's per-category cumulative
        # counters (sampled into events at block boundaries) and/or the
        # metrics hub's labeled ledger_seconds counters
        if tracer is not None and hub is not None:
            comm.ledger.trace = LedgerFanout(tracer, hub)
        elif tracer is not None:
            comm.ledger.trace = tracer
        elif hub is not None:
            comm.ledger.trace = hub
        cost_model = CostModel(node=comm.cluster.node)
        io_model = ParallelIoModel(cluster=comm.cluster, ledger=comm.ledger)
        # "cluster" is excluded from the Table-IV total: the paper's runtime
        # breakdown covers the search; the clustering stage reports its own
        # modeled seconds in stats.extras["clustering"]
        scoring_category_exclude = ("spgemm_measured", OVERLAP_HIDDEN_CATEGORY, "cluster")

        # ---- input IO and sequence exchange -------------------------------------
        # query mode reads the persistent database operand (stripe shards +
        # residues) instead of re-deriving it; the index open/validate happens
        # inside the IO phase because a refused index is an input failure
        plan = None
        if query_mode:
            from ..serve.query import open_index_for, prepare_query_run

            index = open_index_for(params)
        with phase("input_io"):
            io_model.collective_read(
                ParallelIoModel.fasta_bytes(sequences.total_residues, len(sequences))
            )
            if query_mode:
                io_model.collective_read(index.payload_bytes())
            distribute_sequences(sequences, comm, category="cwait")

        # ---- sequence-by-k-mer matrix --------------------------------------------
        with phase("kmer_matrix"):
            if query_mode:
                plan = prepare_query_run(params, sequences, index, comm)
                kmer_info = plan.kmer_info
            else:
                a_dist, at_dist, kmer_info = build_distributed_kmer_matrix(
                    sequences, params, comm
                )
            kmer_bytes = kmer_info.nnz * (8 + 8 + 4)
            comm.ledger.charge_all(
                "sparse_other",
                cost_model.sparse_traversal_seconds(kmer_bytes / comm.size)
                if params.clock == "modeled"
                else kmer_info.build_seconds / comm.size,
            )

        # ---- stage graph: blocked overlap computation + alignment ------------------
        if query_mode:
            a_dist, b_operand = plan.a_dist, plan.b
            schedule, scheme, tasks = plan.schedule, plan.scheme, plan.tasks
            align_sequences, n_vertices = plan.align_sequences, plan.n_vertices
        else:
            schedule, scheme, tasks = make_block_tasks(len(sequences), params)
            b_operand = at_dist
            align_sequences, n_vertices = sequences, len(sequences)
        engine = BlockedSpGemm(
            a_dist,
            b_operand,
            OverlapSemiring(),
            schedule,
            compute_category="spgemm_measured",
            spgemm_backend=params.spgemm_backend,
            batch_flops=params.batch_flops,
            auto_compression_threshold=params.auto_compression_threshold,
        )
        aligner = AlignmentPhase(align_sequences, params, comm, cost_model)
        accumulator = StreamingGraphAccumulator(n_vertices=n_vertices)
        # every block re-traverses its row/column stripes of A and Aᵀ — the
        # "split sparse computations" overhead of §VI-A that makes the sparse
        # multiply grow with the number of blocks.  Query mode models both
        # stripe terms from the *database* operand: the stripes traversed are
        # database-coordinate stripes whatever the query set's density, which
        # is also what keeps query-mode records bit-identical to the
        # corresponding all-vs-all rows
        if query_mode:
            stripe_row_nnz = stripe_col_nnz = plan.index.nnz
        else:
            stripe_row_nnz, stripe_col_nnz = a_dist.nnz, b_operand.nnz
        stripe_bytes_per_rank = (
            (stripe_row_nnz / schedule.br + stripe_col_nnz / schedule.bc)
            / comm.size
            * 20.0
        )
        stage_cache: StageCache | None = None
        if params.cache_dir is not None:
            # the cache token records the blocking the run actually executes
            # (query mode pins bc to the index's stripes) and, in query mode,
            # the database's content digest — two databases can share k-mer
            # stripes yet differ in sub-k residues, which changes alignment
            cache_params = (
                params.replace(blocking=(schedule.br, schedule.bc))
                if query_mode
                else params
            )
            stage_cache = build_stage_cache(
                cache_params,
                sequences,
                engine,
                read=not params.cache_invalidate,
                write=True,
                extra_digest=index.sequence_digest if query_mode else None,
            )
        ctx = StageContext(
            params=params,
            comm=comm,
            cost_model=cost_model,
            engine=engine,
            aligner=aligner,
            scheme=scheme,
            schedule=schedule,
            accumulator=accumulator,
            stripe_seconds=cost_model.sparse_traversal_seconds(stripe_bytes_per_rank),
            cache=stage_cache,
            trace=tracer,
            metrics=hub,
        )
        if state is not None:
            state.cache = stage_cache
        # scheduler selection: no pre-blocking -> serial; pre-blocking on the
        # modeled clock at depth 1 -> the simulated overlapped scheduler with
        # the paper's contention multipliers; measured clock or speculative
        # depth > 1 -> the threaded executor (real worker-pool concurrency).
        # params.scheduler overrides the derivation — "process" opts into the
        # GIL-free process-pool executor (never derived: it needs fork).
        if params.scheduler is not None:
            scheduler_name = params.scheduler
        elif not params.pre_blocking:
            scheduler_name = "serial"
        elif params.clock == "measured" or params.preblock_depth > 1:
            scheduler_name = "threaded"
        else:
            scheduler_name = "overlapped"
        if scheduler_name in ("threaded", "process"):
            scheduler = make_scheduler(
                scheduler_name,
                depth=params.preblock_depth,
                max_workers=params.preblock_workers,
            )
        else:
            scheduler = make_scheduler(scheduler_name)
        if state is not None:
            state.scheduler = scheduler.name
        with phase("stage_graph"):
            outcome: ScheduleOutcome = scheduler.run(tasks, ctx)
        block_records = outcome.records

        # ---- output IO -------------------------------------------------------------
        with phase("output_io"):
            graph = accumulator.finalize()
            io_model.collective_write(ParallelIoModel.triples_bytes(graph.num_edges))

        # ---- optional clustering stage (post-graph; schedulers untouched) ----------
        # runs after the stage graph has been drained: it consumes the one
        # artifact every block contributed to, so it is a BlockTask-independent
        # stage and no scheduler needs to know about it
        clustering = None
        cluster_seconds = 0.0
        if params.cluster.enabled:
            t0 = time.perf_counter()
            with phase("cluster"):
                clustering = cluster_similarity_graph(graph, params.cluster)
            cluster_wall = time.perf_counter() - t0
            if params.clock != "modeled":
                # measured clock: every category holds wall seconds, so the
                # cluster stage must too (whatever driver produced it)
                cluster_seconds = cluster_wall / comm.size
            elif clustering.dist is not None:
                # distributed MCL (ClusterParams.nprocs > 1) ran on its own
                # cluster_* ledger grid; its bulk-synchronous stage total
                # (slowest rank's clock + comm) is spread over the search
                # ranks, and the full per-rank breakdown lands in
                # stats.extras["clustering"]["dist"]
                cluster_seconds = float(clustering.dist["total_seconds"]) / comm.size
            else:
                # MCL expansion traffic is ~24 bytes per partial product
                # (row, col, float64 value), spread over the ranks like the
                # other sparse work; charged to its own ledger category so
                # component breakdowns of search-only runs are unchanged
                cluster_seconds = cost_model.sparse_traversal_seconds(
                    24.0 * clustering.total_expand_flops / comm.size
                )
            comm.ledger.charge_all("cluster", cluster_seconds)

        # ---- totals, pre-blocking view, statistics ----------------------------------
        ledger = comm.ledger
        time_align = ledger.component_time("align")
        time_spgemm = ledger.component_time("spgemm")
        time_sparse_other = ledger.component_time("sparse_other")
        time_io = ledger.component_time("io")
        time_cwait = ledger.component_time("cwait")
        time_comm = ledger.component_time("comm")
        other_seconds = time_sparse_other + time_io + time_cwait + time_comm

        preblocking_report = outcome.timeline.preblocking_report(other_seconds)
        if preblocking_report is not None:
            time_total = preblocking_report.total_seconds_pre
            time_align_reported = preblocking_report.align_seconds_pre
            time_spgemm_reported = preblocking_report.sparse_seconds_pre
        else:
            time_total = ledger.total_time(exclude=scoring_category_exclude)
            time_align_reported = time_align
            time_spgemm_reported = time_spgemm

        stats = SearchStats(
            n_sequences=len(sequences),
            nodes=params.nodes,
            blocks_total=schedule.num_blocks,
            blocks_computed=len(tasks),
            candidates_discovered=outcome.candidates_discovered,
            alignments_performed=outcome.alignments_performed,
            similar_pairs=graph.num_edges,
            alignment_cells=outcome.alignment_cells,
            spgemm_flops=int(engine.total_stats.flops),
            compression_factor=engine.total_stats.compression_factor,
            peak_block_bytes=engine.peak_block_bytes,
            time_align=time_align_reported,
            time_spgemm=time_spgemm_reported,
            time_sparse_all=time_spgemm_reported + time_sparse_other,
            time_io=time_io,
            time_cwait=time_cwait,
            time_comm=time_comm,
            time_total=time_total,
            kernel_seconds=outcome.kernel_seconds,
            wall_seconds=time.perf_counter() - wall_start,
            imbalance_align_percent=_imbalance_percent(ledger.per_rank("align")),
            imbalance_sparse_percent=_imbalance_percent(ledger.per_rank("spgemm")),
            extras={
                "measured_align_seconds": outcome.measured_align_seconds,
                "measured_discover_seconds": outcome.measured_discover_seconds,
                "peak_live_block_bytes": float(accumulator.peak_live_block_bytes),
                "retained_block_bytes": float(accumulator.retained_block_bytes),
                "peak_live_blocks": float(accumulator.peak_live_blocks),
                "edge_buffer_bytes": float(accumulator.memory.peak("edge_buffer")),
                "spgemm_row_groups": float(engine.total_stats.row_groups),
                # measured wall seconds of the top-level phases, backed by
                # the TimerRegistry (a timing key: values vary run to run)
                "phase_seconds": phases.summary(),
            },
        )
        # scheduler-specific report entries (process-lane timings, shm bytes)
        stats.extras.update(outcome.extras)
        if query_mode:
            stats.extras["query"] = {
                "n_queries": len(sequences),
                "members": plan.n_members,
                "novel": plan.n_novel,
                "db_sequences": index.n_sequences,
                "index_dir": str(params.index_dir),
                "dedup": bool(params.query_dedup),
            }
        if stage_cache is not None:
            stats.extras["cache"] = stage_cache.counters()
        if clustering is not None:
            stats.extras["clustering"] = {
                **clustering.summary(),
                "modeled_seconds": cluster_seconds,
            }
        if hub is not None:
            _feed_metrics(hub, phases, stage_cache, outcome, engine, accumulator)
        if tracer is not None and params.trace_dir is not None:
            write_trace(tracer, params.trace_dir)
        if params.run_registry is not None:
            RunRegistry(params.run_registry).record(
                build_manifest(
                    params=params,
                    status="ok",
                    scheduler=scheduler.name,
                    phases=phases,
                    hub=hub,
                    comm=comm,
                    cache=stage_cache,
                    stats=stats,
                    wall_seconds=stats.wall_seconds,
                )
            )
        return SearchResult(
            similarity_graph=graph,
            stats=stats,
            params=params,
            comm=comm,
            kmer_info=kmer_info,
            block_records=block_records,
            preblocking_report=preblocking_report,
            timeline=outcome.timeline,
            memory=accumulator.memory,
            scheduler=scheduler.name,
            clustering=clustering,
            trace=tracer,
            metrics=hub,
            query_rows=plan.query_rows if query_mode else None,
        )


@dataclass
class _RunState:
    """What an observed run has built so far — the failure-path manifest
    reports from whatever subset exists when the run dies."""

    comm: SimCommunicator | None = None
    cache: StageCache | None = None
    scheduler: str | None = None


def _feed_metrics(hub, phases, stage_cache, outcome, engine, accumulator) -> None:
    """End-of-run ingestion of everything the hub can't see live:
    phase timers, cache counters, scheduler lane stats, peak memory.
    (Ledger seconds and SUMMA kernel records arrive live via the ledger
    hook and the active-hub global.)"""
    for name, seconds in phases.summary().items():
        hub.gauge_set("phase_seconds", seconds, phase=name)
    if stage_cache is not None:
        for kind, count in stage_cache.counters().items():
            hub.counter_add("cache_events", float(count), kind=kind)
    lanes = outcome.extras.get("process_lanes") or {}
    for pid, lane in lanes.items():
        hub.gauge_set(
            "process_lane_blocks", float(lane.get("blocks", 0)), pid=str(pid)
        )
        hub.gauge_set(
            "process_lane_discover_seconds",
            float(lane.get("discover_seconds", 0.0)),
            pid=str(pid),
        )
    for key in ("shm_peak_block_bytes", "shm_total_bytes"):
        if key in outcome.extras:
            hub.gauge_set(key, float(outcome.extras[key]))
    hub.gauge_set("peak_block_bytes", float(engine.peak_block_bytes))
    hub.gauge_set(
        "peak_live_block_bytes", float(accumulator.peak_live_block_bytes)
    )


def _imbalance_percent(per_rank: np.ndarray) -> float:
    """(max/avg - 1) * 100, 0 when the average is zero."""
    avg = float(np.mean(per_rank)) if per_rank.size else 0.0
    if avg <= 0:
        return 0.0
    return (float(np.max(per_rank)) / avg - 1.0) * 100.0
