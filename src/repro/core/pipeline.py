"""The PASTIS many-against-many similarity-search pipeline.

``PastisPipeline.run`` executes the three stages of §V on the simulated
distributed runtime:

1. **candidate discovery** — build the distributed sequence-by-k-mer matrix
   ``A`` and form the overlap matrix ``C = A·Aᵀ`` incrementally with the
   Blocked 2D Sparse SUMMA under the configured load-balancing scheme;
2. **batch alignment** — for every block, prune the candidates (symmetry +
   common-k-mer threshold) and align each rank's pairs with the ADEPT-like
   batched Smith–Waterman driver;
3. **similarity graph** — keep the pairs passing the ANI/coverage thresholds
   and assemble the output graph.

All communication, IO and computation is charged to the per-rank cost ledger,
and the optional pre-blocking model (§VI-C) rearranges the per-block
component times into the overlapped schedule.  The result object carries the
similarity graph, Table-IV-style statistics, the per-block records used by
the figure benchmarks, and the raw ledger.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..distsparse.blocked_summa import BlockedSpGemm
from ..mpi.communicator import SimCommunicator
from ..mpi.io import ParallelIoModel
from ..mpi.process_grid import is_perfect_square
from ..distsparse.distribute import distribute_sequences
from ..sequences.sequence import SequenceSet
from ..sparse.coo import CooMatrix
from ..sparse.semiring import OverlapSemiring
from .align_phase import AlignmentPhase, EDGE_DTYPE
from .blocking import make_schedule
from .costing import CostModel
from .filtering import drop_self_pairs, filter_common_kmers
from .kmer_matrix import KmerMatrixInfo, build_distributed_kmer_matrix
from .load_balance import BlockKind, classify_block, make_scheme
from .params import PastisParams
from .preblocking import PreblockingModel, PreblockingReport
from .similarity_graph import SimilarityGraph
from .stats import SearchStats


@dataclass
class BlockRecord:
    """Per-block bookkeeping used by the figure benchmarks."""

    block_row: int
    block_col: int
    kind: BlockKind
    candidates: int
    aligned_pairs: int
    similar_pairs: int
    sparse_seconds_per_rank: np.ndarray
    align_seconds_per_rank: np.ndarray
    pairs_per_rank: np.ndarray
    cells_per_rank: np.ndarray
    block_bytes: int


@dataclass
class SearchResult:
    """Everything a PASTIS run produces."""

    similarity_graph: SimilarityGraph
    stats: SearchStats
    params: PastisParams
    comm: SimCommunicator
    kmer_info: KmerMatrixInfo
    block_records: list[BlockRecord] = field(default_factory=list)
    preblocking_report: PreblockingReport | None = None

    @property
    def ledger(self):
        """The per-rank cost ledger of the run."""
        return self.comm.ledger


class PastisPipeline:
    """End-to-end many-against-many protein similarity search."""

    def __init__(self, params: PastisParams | None = None) -> None:
        self.params = params if params is not None else PastisParams()

    # ------------------------------------------------------------------ public API
    def run(self, sequences: SequenceSet) -> SearchResult:
        """Search ``sequences`` against themselves and return the similarity graph."""
        params = self.params
        if len(sequences) < 2:
            raise ValueError("need at least two sequences to search")
        if not is_perfect_square(params.nodes):
            raise ValueError(
                f"nodes={params.nodes} must be a perfect square (2D process grid requirement)"
            )
        wall_start = time.perf_counter()

        comm = SimCommunicator(params.nodes)
        cost_model = CostModel(node=comm.cluster.node)
        io_model = ParallelIoModel(cluster=comm.cluster, ledger=comm.ledger)
        scoring_category_exclude = ("spgemm_measured",)

        # ---- input IO and sequence exchange -------------------------------------
        io_model.collective_read(
            ParallelIoModel.fasta_bytes(sequences.total_residues, len(sequences))
        )
        distribute_sequences(sequences, comm, category="cwait")

        # ---- sequence-by-k-mer matrix --------------------------------------------
        a_dist, at_dist, kmer_info = build_distributed_kmer_matrix(sequences, params, comm)
        kmer_bytes = kmer_info.nnz * (8 + 8 + 4)
        comm.ledger.charge_all(
            "sparse_other",
            cost_model.sparse_traversal_seconds(kmer_bytes / comm.size)
            if params.clock == "modeled"
            else kmer_info.build_seconds / comm.size,
        )

        # ---- blocked overlap computation + alignment ------------------------------
        schedule = make_schedule(len(sequences), params)
        scheme = make_scheme(params.load_balancing)
        blocks = scheme.blocks_to_compute(schedule)
        engine = BlockedSpGemm(
            a_dist,
            at_dist,
            OverlapSemiring(),
            schedule,
            compute_category="spgemm_measured",
            spgemm_backend=params.spgemm_backend,
        )
        aligner = AlignmentPhase(sequences, params, comm, cost_model)

        block_records: list[BlockRecord] = []
        edge_parts: list[np.ndarray] = []
        candidates_discovered = 0
        alignments_performed = 0
        alignment_cells = 0
        kernel_seconds = 0.0
        measured_align_seconds = 0.0

        for block_row, block_col in blocks:
            block = engine.compute_block(block_row, block_col)
            candidates_discovered += block.nnz

            # charge SpGEMM under the configured clock.  Besides the partial
            # products, every block re-traverses its row/column stripes of A
            # and Aᵀ — the "split sparse computations" overhead of §VI-A that
            # makes the sparse multiply grow with the number of blocks.
            if params.clock == "modeled":
                stripe_bytes_per_rank = (
                    (a_dist.nnz / schedule.br + at_dist.nnz / schedule.bc) / comm.size * 20.0
                )
                stripe_seconds = cost_model.sparse_traversal_seconds(stripe_bytes_per_rank)
                sparse_seconds = np.array(
                    [
                        cost_model.spgemm_seconds(f) + stripe_seconds
                        for f in block.result.flops_per_rank
                    ]
                )
            else:
                sparse_seconds = np.asarray(block.result.compute_seconds_per_rank, dtype=float)
            for rank in range(comm.size):
                comm.ledger.charge(rank, "spgemm", float(sparse_seconds[rank]))

            # prune for symmetry / parity, apply the common-k-mer threshold
            per_rank_candidates: list[CooMatrix] = []
            for rank_piece in block.result.per_rank:
                pruned = scheme.prune(rank_piece)
                pruned = drop_self_pairs(pruned)
                pruned = filter_common_kmers(pruned, params.common_kmer_threshold)
                per_rank_candidates.append(pruned)

            output = aligner.align_block(per_rank_candidates)
            alignments_performed += output.pairs_aligned
            alignment_cells += output.cells
            kernel_seconds += output.kernel_seconds
            measured_align_seconds += output.measured_seconds
            if output.edges.size:
                edge_parts.append(output.edges)

            block_records.append(
                BlockRecord(
                    block_row=block_row,
                    block_col=block_col,
                    kind=classify_block(
                        schedule.row_range(block_row), schedule.col_range(block_col)
                    ),
                    candidates=block.nnz,
                    aligned_pairs=output.pairs_aligned,
                    similar_pairs=int(output.edges.size),
                    sparse_seconds_per_rank=sparse_seconds,
                    align_seconds_per_rank=output.align_seconds_per_rank,
                    pairs_per_rank=output.pairs_aligned_per_rank,
                    cells_per_rank=output.cells_per_rank,
                    block_bytes=block.memory_bytes(),
                )
            )

        # ---- output IO -------------------------------------------------------------
        edges = np.concatenate(edge_parts) if edge_parts else np.zeros(0, dtype=EDGE_DTYPE)
        graph = SimilarityGraph.from_edges(edges, len(sequences))
        io_model.collective_write(ParallelIoModel.triples_bytes(graph.num_edges))

        # ---- totals, pre-blocking, statistics ---------------------------------------
        ledger = comm.ledger
        time_align = ledger.component_time("align")
        time_spgemm = ledger.component_time("spgemm")
        time_sparse_other = ledger.component_time("sparse_other")
        time_io = ledger.component_time("io")
        time_cwait = ledger.component_time("cwait")
        time_comm = ledger.component_time("comm")
        other_seconds = time_sparse_other + time_io + time_cwait + time_comm

        preblocking_report: PreblockingReport | None = None
        if params.pre_blocking and block_records:
            model = PreblockingModel()
            sparse_matrix = np.stack([rec.sparse_seconds_per_rank for rec in block_records])
            align_matrix = np.stack([rec.align_seconds_per_rank for rec in block_records])
            preblocking_report = model.evaluate(sparse_matrix, align_matrix, other_seconds)
            time_total = preblocking_report.total_seconds_pre
            time_align_reported = preblocking_report.align_seconds_pre
            time_spgemm_reported = preblocking_report.sparse_seconds_pre
        else:
            time_total = ledger.total_time(exclude=scoring_category_exclude)
            time_align_reported = time_align
            time_spgemm_reported = time_spgemm

        stats = SearchStats(
            n_sequences=len(sequences),
            nodes=params.nodes,
            blocks_total=schedule.num_blocks,
            blocks_computed=len(blocks),
            candidates_discovered=candidates_discovered,
            alignments_performed=alignments_performed,
            similar_pairs=graph.num_edges,
            alignment_cells=alignment_cells,
            spgemm_flops=int(engine.total_stats.flops),
            compression_factor=engine.total_stats.compression_factor,
            peak_block_bytes=engine.peak_block_bytes,
            time_align=time_align_reported,
            time_spgemm=time_spgemm_reported,
            time_sparse_all=time_spgemm_reported + time_sparse_other,
            time_io=time_io,
            time_cwait=time_cwait,
            time_comm=time_comm,
            time_total=time_total,
            kernel_seconds=kernel_seconds,
            wall_seconds=time.perf_counter() - wall_start,
            imbalance_align_percent=_imbalance_percent(ledger.per_rank("align")),
            imbalance_sparse_percent=_imbalance_percent(ledger.per_rank("spgemm")),
            extras={"measured_align_seconds": measured_align_seconds},
        )
        return SearchResult(
            similarity_graph=graph,
            stats=stats,
            params=params,
            comm=comm,
            kmer_info=kmer_info,
            block_records=block_records,
            preblocking_report=preblocking_report,
        )


def _imbalance_percent(per_rank: np.ndarray) -> float:
    """(max/avg - 1) * 100, 0 when the average is zero."""
    avg = float(np.mean(per_rank)) if per_rank.size else 0.0
    if avg <= 0:
        return 0.0
    return (float(np.max(per_rank)) / avg - 1.0) * 100.0
