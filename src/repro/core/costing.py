"""Workload-to-time conversion under the hardware model.

The reproduction executes the real algorithms on a laptop-class CPU, but the
paper's figures compare component times *on Summit nodes*.  To keep the shape
of those comparisons meaningful (alignment on GPUs vs. memory-bound sparse
computation on CPUs, roughly a 2:1 ratio in the paper's runs), the pipeline
can charge the ledger with *modelled* node time derived from workload
quantities instead of raw Python wall time:

* alignment — DP cells / (GPUs per node x GCUPS per GPU), via the
  :class:`repro.hardware.gpu.GpuSpec` batch model;
* SpGEMM — semiring flops (partial products) / effective node sparse
  throughput;
* other sparse work (k-mer matrix construction, pruning, merging) — bytes
  touched / node memory bandwidth.

With ``clock="measured"`` the raw wall times are charged instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.node import NodeSpec, SUMMIT_NODE


@dataclass
class CostModel:
    """Converts workload counters into modelled per-node seconds."""

    node: NodeSpec = field(default_factory=lambda: SUMMIT_NODE)
    #: average bytes touched per semiring flop (hash/sort based SpGEMM reads
    #: and writes roughly this much per partial product)
    bytes_per_flop: float = 24.0

    def spgemm_seconds(self, flops: float) -> float:
        """Modelled node time for a local semiring SpGEMM workload."""
        return float(flops) / (self.node.sparse_gflops * 1e9)

    def sparse_traversal_seconds(self, nbytes: float) -> float:
        """Modelled node time for streaming sparse work (build/prune/merge)."""
        return float(nbytes) / (self.node.memory_bandwidth_gbps * 1e9)

    def alignment_seconds(self, cells: float, bytes_moved: float = 0.0) -> float:
        """Modelled node time for a batch-alignment workload on all GPUs.

        Kernel launch overhead is omitted: at production scale it is
        negligible against multi-second batches, and charging it per block of
        a toy-sized run would dominate the alignment time and distort the
        component shapes the benchmarks compare against the paper.
        """
        per_gpu_cells = float(cells) / max(self.node.gpus_per_node, 1)
        per_gpu_bytes = float(bytes_moved) / max(self.node.gpus_per_node, 1)
        return self.node.gpu.kernel_seconds(int(per_gpu_cells)) + self.node.gpu.transfer_seconds(
            int(per_gpu_bytes)
        )

    def alignment_kernel_seconds(self, cells: float) -> float:
        """Forward-scoring kernel time only (the CUPS denominator)."""
        per_gpu_cells = float(cells) / max(self.node.gpus_per_node, 1)
        return self.node.gpu.kernel_seconds(int(per_gpu_cells))
