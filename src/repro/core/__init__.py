"""The PASTIS core: parameters, pipeline, load balancing, pre-blocking, outputs.

The modules here implement the paper's primary contribution on top of the
substrates (:mod:`repro.sequences`, :mod:`repro.sparse`, :mod:`repro.align`,
:mod:`repro.mpi`, :mod:`repro.distsparse`):

* :mod:`repro.core.params` — run configuration (Table IV's program parameters);
* :mod:`repro.core.kmer_matrix` — the distributed sequence-by-k-mer matrix;
* :mod:`repro.core.blocking` — output blocking schedules;
* :mod:`repro.core.load_balance` — the triangularity- and index-based schemes (§VI-B);
* :mod:`repro.core.preblocking` — the closed-form pre-blocking model (§VI-C);
* :mod:`repro.core.engine` — the stage-graph execution engine: per-block
  ``discover → prune → align → accumulate`` tasks, the serial and overlapped
  (pre-blocking) schedulers, and the streaming similarity-graph accumulator;
* :mod:`repro.core.align_phase` — distributed batch alignment of block candidates;
* :mod:`repro.core.filtering` — common-k-mer and ANI/coverage filters;
* :mod:`repro.core.similarity_graph` — the output graph;
* :mod:`repro.core.stats` — Table-IV-style run statistics;
* :mod:`repro.core.pipeline` — the end-to-end :class:`PastisPipeline`.
"""

from .params import PastisParams, nearly_square_factors
from .pipeline import PastisPipeline, SearchResult, BlockRecord
from .similarity_graph import SimilarityGraph
from .stats import SearchStats
from .load_balance import (
    BlockKind,
    IndexScheme,
    TriangularityScheme,
    classify_block,
    make_scheme,
    pairs_align_exactly_once,
)
from .preblocking import PreblockingModel, PreblockingReport
from .engine import (
    BlockTask,
    OverlappedScheduler,
    ScheduleOutcome,
    Scheduler,
    SerialScheduler,
    StageContext,
    StageTimeline,
    StreamingGraphAccumulator,
    make_scheduler,
)
from .blocking import make_block_tasks, make_schedule, schedule_for_num_blocks
from .costing import CostModel
from .align_phase import AlignmentPhase, EDGE_DTYPE
from .kmer_matrix import build_kmer_coo, build_distributed_kmer_matrix, KmerMatrixInfo
from .filtering import filter_common_kmers, drop_self_pairs, similarity_mask

__all__ = [
    "PastisParams",
    "nearly_square_factors",
    "PastisPipeline",
    "SearchResult",
    "BlockRecord",
    "SimilarityGraph",
    "SearchStats",
    "BlockKind",
    "IndexScheme",
    "TriangularityScheme",
    "classify_block",
    "make_scheme",
    "pairs_align_exactly_once",
    "PreblockingModel",
    "PreblockingReport",
    "BlockTask",
    "OverlappedScheduler",
    "ScheduleOutcome",
    "Scheduler",
    "SerialScheduler",
    "StageContext",
    "StageTimeline",
    "StreamingGraphAccumulator",
    "make_scheduler",
    "make_block_tasks",
    "make_schedule",
    "schedule_for_num_blocks",
    "CostModel",
    "AlignmentPhase",
    "EDGE_DTYPE",
    "build_kmer_coo",
    "build_distributed_kmer_matrix",
    "KmerMatrixInfo",
    "filter_common_kmers",
    "drop_self_pairs",
    "similarity_mask",
]
