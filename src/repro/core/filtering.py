"""Candidate and similarity filters.

Two filters bracket the alignment phase:

* **before alignment** — the common-k-mer threshold (paper: 2).  Of the 95.9
  trillion discovered candidates in the production run, only 8.9% survive
  this filter and are aligned;
* **after alignment** — the ANI (>= 0.30) and coverage (>= 0.70) thresholds.
  Only 12.3% of the performed alignments pass and become edges of the
  similarity graph.
"""

from __future__ import annotations

import numpy as np

from ..align.result import passes_thresholds
from ..sparse.coo import CooMatrix
from ..sparse.spops import filter_values


def filter_common_kmers(block: CooMatrix, threshold: int) -> CooMatrix:
    """Keep overlap elements with at least ``threshold`` shared k-mers.

    Works on overlap-semiring values (``count`` field) as well as plain
    integer counts (the :class:`repro.sparse.semiring.CountSemiring` output).
    """
    if block.nnz == 0:
        return block
    if block.values.dtype.names and "count" in block.values.dtype.names:
        return filter_values(block, lambda v: v["count"] >= threshold)
    return filter_values(block, lambda v: np.asarray(v) >= threshold)


def drop_self_pairs(block: CooMatrix) -> CooMatrix:
    """Remove diagonal elements (a sequence trivially matches itself)."""
    return block.select(block.rows != block.cols)


def similarity_mask(
    results: np.ndarray,
    len_a: np.ndarray,
    len_b: np.ndarray,
    ani_threshold: float,
    coverage_threshold: float,
) -> np.ndarray:
    """Boolean mask of aligned pairs admitted to the similarity graph."""
    return passes_thresholds(results, len_a, len_b, ani_threshold, coverage_threshold)
