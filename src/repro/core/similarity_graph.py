"""The protein similarity graph — the output of the search.

Vertices are sequences; an edge ``(i, j)`` with attributes (score, ANI,
coverage) means the pair passed both thresholds.  PASTIS writes the graph as
triplets ("two sequences and the similarity between them"); downstream uses
include clustering into protein families — connected components here (via
the union-find in :mod:`repro.graph.components`), sparse Markov clustering
in :mod:`repro.graph` for structure finer than connectivity, and networkx
export for anything richer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..sparse.coo import CooMatrix
from .align_phase import EDGE_DTYPE


@dataclass
class SimilarityGraph:
    """An undirected similarity graph over ``n_vertices`` sequences.

    Edges are stored once per unordered pair with ``row < col``.
    """

    n_vertices: int
    edges: np.ndarray  # structured array of EDGE_DTYPE

    # ------------------------------------------------------------------ constructors
    @classmethod
    def from_edges(cls, edges: np.ndarray, n_vertices: int) -> "SimilarityGraph":
        """Build from an edge record array (duplicates and self-loops removed).

        Deduplication keeps the first occurrence of each unordered pair.  It
        compares the ``(row, col)`` coordinates directly — a scalar key like
        ``row * n_vertices + col`` overflows int64 once ``n_vertices``
        exceeds ``~3e9`` and silently merges distinct pairs whose wrapped
        keys collide.
        """
        edges = np.asarray(edges, dtype=EDGE_DTYPE)
        if edges.size:
            rows = np.minimum(edges["row"], edges["col"])
            cols = np.maximum(edges["row"], edges["col"])
            canon = edges.copy()
            canon["row"] = rows
            canon["col"] = cols
            canon = canon[rows != cols]
            # lexsort is stable, so within a (row, col) group entries keep
            # input order and the group leader is the first occurrence
            order = np.lexsort((canon["col"], canon["row"]))
            canon = canon[order]
            if canon.size:
                leader = np.empty(canon.size, dtype=bool)
                leader[0] = True
                leader[1:] = (np.diff(canon["row"]) != 0) | (np.diff(canon["col"]) != 0)
                canon = canon[leader]
            edges = canon
        return cls(n_vertices=n_vertices, edges=edges)

    @classmethod
    def empty(cls, n_vertices: int) -> "SimilarityGraph":
        """A graph with no edges."""
        return cls(n_vertices=n_vertices, edges=np.zeros(0, dtype=EDGE_DTYPE))

    # ------------------------------------------------------------------ basic queries
    @property
    def num_edges(self) -> int:
        """Number of similar pairs."""
        return int(self.edges.size)

    def edge_pairs(self) -> np.ndarray:
        """An ``(m, 2)`` array of (row, col) with ``row < col``."""
        out = np.empty((self.num_edges, 2), dtype=np.int64)
        out[:, 0] = self.edges["row"]
        out[:, 1] = self.edges["col"]
        return out

    def edge_key_set(self) -> set[tuple[int, int]]:
        """Set of unordered pairs — used to compare runs for exact equality."""
        return {(int(r), int(c)) for r, c in self.edge_pairs()}

    def degrees(self) -> np.ndarray:
        """Vertex degrees."""
        deg = np.zeros(self.n_vertices, dtype=np.int64)
        if self.num_edges:
            np.add.at(deg, self.edges["row"], 1)
            np.add.at(deg, self.edges["col"], 1)
        return deg

    # ------------------------------------------------------------------ conversions
    def to_coo(self) -> CooMatrix:
        """Upper-triangular adjacency as a COO matrix of ANI values."""
        return CooMatrix(
            (self.n_vertices, self.n_vertices),
            self.edges["row"].astype(np.int64),
            self.edges["col"].astype(np.int64),
            self.edges["ani"].astype(np.float64),
            check=False,
        )

    def to_networkx(self):
        """Export to a ``networkx.Graph`` with edge attributes."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.n_vertices))
        for edge in self.edges:
            graph.add_edge(
                int(edge["row"]),
                int(edge["col"]),
                score=int(edge["score"]),
                ani=float(edge["ani"]),
                coverage=float(edge["coverage"]),
            )
        return graph

    def connected_components(self) -> np.ndarray:
        """Component label per vertex (protein-family clustering).

        Runs on the dependency-free union-find in
        :mod:`repro.graph.components` (labels in first-vertex order, exactly
        matching what the former ``scipy.sparse.csgraph`` path produced).
        For cluster structure finer than connectivity — families joined by a
        spurious bridge edge — see :func:`repro.graph.api.cluster_similarity_graph`.
        """
        from ..graph.components import connected_components

        return connected_components(self)

    # ------------------------------------------------------------------ IO
    def write_triples(self, path: str | os.PathLike, names: np.ndarray | None = None) -> int:
        """Write the graph as text triplets; returns bytes written.

        Columns: sequence-i, sequence-j, ANI, coverage, score — the "triplets
        whose entries indicate two sequences and the similarity between them"
        of §V-B.
        """
        path = Path(path)
        with path.open("w") as handle:
            for edge in self.edges:
                i, j = int(edge["row"]), int(edge["col"])
                label_i = str(names[i]) if names is not None else str(i)
                label_j = str(names[j]) if names is not None else str(j)
                handle.write(
                    f"{label_i}\t{label_j}\t{edge['ani']:.4f}\t{edge['coverage']:.4f}\t{int(edge['score'])}\n"
                )
        return path.stat().st_size

    @classmethod
    def read_triples(cls, path: str | os.PathLike, n_vertices: int) -> "SimilarityGraph":
        """Read a triplet file written with numeric vertex ids."""
        path = Path(path)
        rows, cols, anis, covs, scores = [], [], [], [], []
        with path.open("r") as handle:
            for line in handle:
                parts = line.rstrip("\n").split("\t")
                if len(parts) < 5:
                    continue
                rows.append(int(parts[0]))
                cols.append(int(parts[1]))
                anis.append(float(parts[2]))
                covs.append(float(parts[3]))
                scores.append(int(parts[4]))
        edges = np.zeros(len(rows), dtype=EDGE_DTYPE)
        edges["row"] = rows
        edges["col"] = cols
        edges["ani"] = anis
        edges["coverage"] = covs
        edges["score"] = scores
        return cls.from_edges(edges, n_vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimilarityGraph):
            return NotImplemented
        return (
            self.n_vertices == other.n_vertices
            and self.edge_key_set() == other.edge_key_set()
        )

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimilarityGraph(n_vertices={self.n_vertices}, num_edges={self.num_edges})"
