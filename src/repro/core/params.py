"""PASTIS run parameters.

Defaults follow the paper's production configuration (Table IV) where a value
is given there, and the small-scale evaluation configuration (§VI) otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..align.substitution import BLOSUM62, ScoringScheme
from ..config import DEFAULTS
from ..graph.api import ClusterParams
from ..sequences.alphabet import Alphabet, MURPHY10, PROTEIN
from ..sparse.kernels import (
    available_kernels,
    get_kernel,
    kernel_supports_semiring,
)
from ..sparse.semiring import OverlapSemiring


@dataclass
class PastisParams:
    """All knobs of a PASTIS similarity search.

    Attributes
    ----------
    kmer_length:
        Seed k-mer length (paper: 6; smaller values increase sensitivity and
        candidate counts — convenient for small synthetic datasets).
    seed_alphabet:
        ``"protein"`` (exact 20-letter k-mers) or ``"murphy10"`` (reduced
        alphabet seeding, the paper's sensitivity option).
    substitute_kmers:
        Number of nearest-neighbour substitute k-mers to add per exact k-mer
        (0 disables; the paper's other sensitivity option).
    max_kmer_frequency:
        Discard k-mers occurring at more than this many positions (None keeps
        all).
    gap_open, gap_extend:
        Affine gap penalties (paper: 11 / 2).
    common_kmer_threshold:
        Minimum shared k-mers for a candidate to be aligned (paper: 2).
    ani_threshold, coverage_threshold:
        Similarity-graph admission thresholds (paper: 0.30 / 0.70).
    num_blocks:
        Total number of output blocks; translated to a near-square ``br x bc``
        blocking (paper: 400 blocks = 20x20 at full scale, 64 = 8x8 in the
        scaling study).  Ignored when ``blocking`` is given explicitly.
    blocking:
        Explicit ``(br, bc)`` blocking factors, or ``None`` to derive from
        ``num_blocks``.
    load_balancing:
        ``"index"`` or ``"triangularity"`` (§VI-B).
    pre_blocking:
        Overlap next-block SpGEMM with current-block alignment (§VI-C).
        Under ``clock="modeled"`` (and ``preblock_depth == 1``) the overlap
        is simulated by
        :class:`~repro.core.engine.schedulers.OverlappedScheduler` with the
        paper's contention multipliers; under ``clock="measured"`` (or any
        ``preblock_depth > 1``) it is *executed* by the threaded
        measured-clock executor
        (:class:`~repro.core.engine.executor.ThreadedScheduler`).  Results
        are bit-identical in every case.
    preblock_depth:
        Speculative discovery depth ``k`` of the threaded executor: while
        block ``b`` aligns, the discover stages of blocks ``b+1..b+k`` are
        in flight, memory-bounded to ``k + 1`` live blocks by the streaming
        accumulator's admission gate.  ``1`` is classic pre-blocking.
        Ignored without ``pre_blocking``.
    preblock_workers:
        Workers of the executor's discover pool (``None`` = 1) — threads
        for ``scheduler="threaded"``, processes for ``scheduler="process"``.
        The discover lane's results land in block order by design, so one
        worker carries it at full speed; the knob exists because worker
        count must never change results (asserted in the engine tests).
    scheduler:
        Explicit scheduler override (``"serial"``, ``"overlapped"``,
        ``"threaded"`` or ``"process"``); ``None`` (default) derives the
        scheduler from ``pre_blocking``/``clock``/``preblock_depth``.
        ``"process"`` runs the discover lane in worker *processes* with the
        block results shipped back through shared memory — the GIL-free
        variant of ``"threaded"`` (see
        :class:`~repro.core.engine.process_executor.ProcessScheduler`);
        it requires the ``fork`` start method (Linux/macOS-with-fork).
        Results are bit-identical across schedulers — the override selects
        an execution strategy, not a computation.
    nodes:
        Number of virtual nodes / MPI ranks; must be a perfect square.
    align_batch_size:
        Pairs per ADEPT batch.
    use_threads:
        Use a thread pool for per-rank work (real concurrency; results are
        identical either way).
    clock:
        ``"modeled"`` charges hardware-model time (GPU GCUPS for alignment,
        node sparse throughput for SpGEMM) so component ratios resemble the
        paper's; ``"measured"`` charges actual Python wall time.
    alignment_mode:
        ``"full_sw"`` (paper default: full Smith–Waterman on GPUs) or
        ``"seed_extend"`` (x-drop, cheaper, less sensitive).
    spgemm_backend:
        Local SpGEMM kernel used inside every SUMMA stage, by registry name
        (see :mod:`repro.sparse.kernels`): ``"expand"`` (sort–expand–reduce,
        fastest at low compression factors), ``"gustavson"`` (row-wise with
        bounded intermediate memory, preferred when the compression factor
        is high), or ``"auto"`` (pick per SUMMA stage from the predicted
        compression factor).  Results are bit-identical in every case.  The
        default comes from :data:`repro.config.DEFAULTS` — ``"gustavson"``
        for the pipeline's overlap semiring, the memory-safe choice at the
        high compression factors of ``A·Aᵀ``.
    batch_flops:
        Flop budget per row group of the ``"gustavson"`` backend (and of
        ``"auto"`` when it picks it); bounds the kernel's peak intermediate
        memory for memory-constrained runs.  ``None`` uses the kernel's
        default; backends without batching reject an explicit value.
    auto_compression_threshold:
        Predicted-compression-factor crossover at which the ``"auto"``
        backend routes to Gustavson instead of expand.  Promoted from the
        former module constant so the crossover can be calibrated per run;
        defaults to :data:`repro.config.DEFAULTS`'s value, which is the
        registry constant :data:`repro.sparse.kernels.AUTO_COMPRESSION_THRESHOLD`
        unless a measured calibration has been written back by
        ``benchmarks/bench_auto_threshold.py --write-default`` (see
        :func:`repro.config.write_calibration`).  Fixed backends ignore it.
    cluster:
        Post-search clustering stage configuration
        (:class:`repro.graph.api.ClusterParams`); disabled by default, in
        which case the similarity graph remains the terminal output.
    cache_dir:
        Directory of the content-hashed stage cache
        (:mod:`repro.core.engine.cache`).  When set, every completed block
        is persisted under a deterministic content-hash key and later runs
        with the same inputs/parameters replay stored blocks instead of
        recomputing them — bit-identically, across all three schedulers —
        which is also what makes ``PastisPipeline.run(resume=True)`` pick a
        killed run up from its last completed block.  ``None`` (the default,
        seeded from :data:`repro.config.DEFAULTS`) disables caching.
    cache_invalidate:
        Ignore existing cache entries and overwrite them with freshly
        computed blocks (a forced re-population, e.g. after changing
        something the key cannot see).  Only meaningful with ``cache_dir``.
    trace:
        Record structured spans and counter series for the run (see
        :mod:`repro.trace`): stage spans (discover/prune/align/accumulate),
        cache hit/miss replays, SUMMA broadcast stages, admission and
        turnstile waits, MCL iterations.  Off by default; the disabled
        path costs nothing, and tracing never perturbs results — records,
        edges and the deterministic ledger categories are bit-identical
        with tracing on (asserted in ``tests/test_trace.py``).  The
        recorder is returned on ``SearchResult.trace``; with ``trace_dir``
        also set, the run additionally writes ``trace.jsonl`` (canonical)
        and ``trace.json`` (Chrome trace-event, loadable in Perfetto /
        ``chrome://tracing``) into that directory, even when the run fails.
    trace_dir:
        Directory the trace files are exported into (created if missing).
        Implies ``trace=True``.
    metrics:
        Collect typed counters/gauges/histograms for the run through a
        :class:`repro.obs.MetricsHub` (ledger seconds per category, phase
        timers, cache hit/miss counters, scheduler lane stats, and
        per-SUMMA-stage kernel dispatch records with measured compression
        factors).  Off by default; like tracing it is near-zero-cost when
        disabled and never perturbs results (asserted per scheduler in
        ``tests/test_obs.py``).  The hub is returned on
        ``SearchResult.metrics``.
    run_registry:
        Directory of the persistent run registry (see
        :mod:`repro.obs.registry`).  When set, every run — successful or
        failed — appends a schema-versioned ``run.json`` manifest (params
        cache token, host fingerprint, config, phase seconds, ledger
        totals, cache counters, peak memory, exit status) inspectable with
        ``python -m repro.obs ls|show|diff|export|regress``.  Implies
        ``metrics=True``.
    mode:
        ``"all_vs_all"`` (default: search the input against itself) or
        ``"query"`` (search the input against a persistent database index,
        see :mod:`repro.serve`).  Query mode loads the database operand's
        column stripes from ``index_dir`` instead of recomputing them and
        runs the one-sided product ``A_query · B_dbᵀ`` through the same
        engine; results are bit-identical to the corresponding rows of an
        all-vs-all run over the database (the serve contract, asserted in
        ``tests/test_query_mode.py``).
    index_dir:
        Directory of the database index built by
        :func:`repro.serve.index.build_index` /
        ``python -m repro.serve build``.  Required (and only meaningful)
        with ``mode="query"``.  The run refuses indexes whose digests or
        build parameters don't match (stale indexes never silently
        mis-answer).
    query_dedup:
        Query-mode candidate semantics.  ``False`` (default, the serving
        semantics): every query keeps all its non-self candidates, so row
        ``q`` of the output contains each match of ``q`` exactly once.
        ``True`` (the sharding/contract semantics): apply the configured
        ``load_balancing`` scheme's symmetric prune in database
        coordinates, making the run the literal row-restriction of the
        all-vs-all stage graph — partitioned query runs union to exactly
        the all-vs-all edge set.  Requires every query to be a database
        member (novel sequences have no database row to dedup against).
    """

    kmer_length: int = 6
    seed_alphabet: str = "protein"
    substitute_kmers: int = 0
    max_kmer_frequency: int | None = None
    gap_open: int = 11
    gap_extend: int = 2
    common_kmer_threshold: int = 2
    ani_threshold: float = 0.30
    coverage_threshold: float = 0.70
    num_blocks: int = 1
    blocking: tuple[int, int] | None = None
    load_balancing: str = "index"
    pre_blocking: bool = False
    preblock_depth: int = 1
    preblock_workers: int | None = None
    scheduler: str | None = None
    nodes: int = 4
    align_batch_size: int = 128
    use_threads: bool = False
    clock: str = "modeled"
    alignment_mode: str = "full_sw"
    spgemm_backend: str = DEFAULTS.spgemm_backend
    batch_flops: int | None = None
    auto_compression_threshold: float = DEFAULTS.auto_compression_threshold
    cluster: ClusterParams = field(default_factory=ClusterParams)
    cache_dir: str | None = DEFAULTS.cache_dir
    cache_invalidate: bool = False
    trace: bool = False
    trace_dir: str | None = None
    metrics: bool = False
    run_registry: str | None = None
    mode: str = "all_vs_all"
    index_dir: str | None = None
    query_dedup: bool = False
    substitution_matrix: np.ndarray = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------ helpers
    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent settings."""
        if self.kmer_length < 1:
            raise ValueError("kmer_length must be >= 1")
        if self.seed_alphabet not in ("protein", "murphy10"):
            raise ValueError("seed_alphabet must be 'protein' or 'murphy10'")
        if self.load_balancing not in ("index", "triangularity"):
            raise ValueError("load_balancing must be 'index' or 'triangularity'")
        if self.clock not in ("modeled", "measured"):
            raise ValueError("clock must be 'modeled' or 'measured'")
        if self.alignment_mode not in ("full_sw", "seed_extend"):
            raise ValueError("alignment_mode must be 'full_sw' or 'seed_extend'")
        if self.spgemm_backend not in available_kernels():
            raise ValueError(
                f"spgemm_backend must be one of {available_kernels()}, "
                f"got {self.spgemm_backend!r}"
            )
        if not kernel_supports_semiring(get_kernel(self.spgemm_backend), OverlapSemiring()):
            raise ValueError(
                f"spgemm_backend {self.spgemm_backend!r} does not support the "
                "pipeline's overlap semiring (it is registered for the plain "
                "arithmetic semiring only, e.g. for repro.graph clustering)"
            )
        if self.batch_flops is not None and self.batch_flops < 1:
            raise ValueError("batch_flops must be >= 1 (or None for the kernel default)")
        if self.preblock_depth < 1:
            raise ValueError("preblock_depth must be >= 1")
        if self.preblock_workers is not None and self.preblock_workers < 1:
            raise ValueError("preblock_workers must be >= 1 (or None for auto-sizing)")
        if self.scheduler not in (None, "serial", "overlapped", "threaded", "process"):
            raise ValueError(
                "scheduler must be None, 'serial', 'overlapped', 'threaded' or "
                f"'process', got {self.scheduler!r}"
            )
        if self.auto_compression_threshold <= 0:
            raise ValueError("auto_compression_threshold must be positive")
        if self.cache_dir is not None and not str(self.cache_dir).strip():
            raise ValueError("cache_dir must be a non-empty path (or None)")
        if self.cache_invalidate and self.cache_dir is None:
            raise ValueError(
                "cache_invalidate=True has no effect without cache_dir; "
                "set cache_dir or drop the flag"
            )
        if self.trace_dir is not None and not str(self.trace_dir).strip():
            raise ValueError("trace_dir must be a non-empty path (or None)")
        if self.run_registry is not None and not str(self.run_registry).strip():
            raise ValueError("run_registry must be a non-empty path (or None)")
        if self.mode not in ("all_vs_all", "query"):
            raise ValueError(f"mode must be 'all_vs_all' or 'query', got {self.mode!r}")
        if self.mode == "query" and (
            self.index_dir is None or not str(self.index_dir).strip()
        ):
            raise ValueError("mode='query' requires index_dir (a built serve index)")
        if self.index_dir is not None and self.mode != "query":
            raise ValueError("index_dir is only meaningful with mode='query'")
        if self.query_dedup and self.mode != "query":
            raise ValueError("query_dedup is only meaningful with mode='query'")
        if not isinstance(self.cluster, ClusterParams):
            raise ValueError("cluster must be a ClusterParams instance")
        self.cluster.validate()
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if self.blocking is not None and (self.blocking[0] < 1 or self.blocking[1] < 1):
            raise ValueError("blocking factors must be >= 1")
        if not 0.0 <= self.ani_threshold <= 1.0:
            raise ValueError("ani_threshold must be in [0, 1]")
        if not 0.0 <= self.coverage_threshold <= 1.0:
            raise ValueError("coverage_threshold must be in [0, 1]")
        if self.common_kmer_threshold < 1:
            raise ValueError("common_kmer_threshold must be >= 1")

    @property
    def trace_enabled(self) -> bool:
        """Whether the run records spans (``trace_dir`` implies ``trace``)."""
        return self.trace or self.trace_dir is not None

    @property
    def metrics_enabled(self) -> bool:
        """Whether the run collects metrics (``run_registry`` implies it:
        a manifest without its metrics snapshot would be half a record)."""
        return self.metrics or self.run_registry is not None

    @property
    def alphabet(self) -> Alphabet:
        """The seeding alphabet object."""
        return MURPHY10 if self.seed_alphabet == "murphy10" else PROTEIN

    @property
    def scoring(self) -> ScoringScheme:
        """Alignment scoring scheme (BLOSUM62 unless overridden)."""
        matrix = BLOSUM62 if self.substitution_matrix is None else self.substitution_matrix
        return ScoringScheme(matrix=matrix, gap_open=self.gap_open, gap_extend=self.gap_extend)

    def blocking_factors(self) -> tuple[int, int]:
        """The (br, bc) blocking, derived from ``num_blocks`` when not explicit."""
        if self.blocking is not None:
            return self.blocking
        return nearly_square_factors(self.num_blocks)

    def replace(self, **overrides) -> "PastisParams":
        """A copy with the given fields replaced (dataclasses.replace wrapper)."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **overrides)


def nearly_square_factors(n: int) -> tuple[int, int]:
    """Factor ``n`` into ``(br, bc)`` with ``br <= bc`` as square as possible.

    Used to translate "number of blocks" (as in Fig. 5 / Table I) into the
    two-dimensional blocking the algorithm needs.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    best = (1, n)
    root = int(np.sqrt(n))
    for a in range(root, 0, -1):
        if n % a == 0:
            best = (a, n // a)
            break
    return best
