"""Blocking schedule helpers for the incremental similarity search."""

from __future__ import annotations

from ..distsparse.blocked_summa import BlockSchedule
from .engine.stages import BlockTask
from .load_balance import LoadBalancingScheme, make_scheme
from .params import PastisParams, nearly_square_factors


def make_schedule(n_sequences: int, params: PastisParams) -> BlockSchedule:
    """Build the output-matrix blocking from the run parameters.

    The blocking factors are clamped to the matrix dimension so tiny test
    datasets with large ``num_blocks`` still produce a valid schedule.
    """
    br, bc = params.blocking_factors()
    br = min(br, n_sequences)
    bc = min(bc, n_sequences)
    return BlockSchedule(n_rows=n_sequences, n_cols=n_sequences, br=br, bc=bc)


def make_block_tasks(
    n_sequences: int, params: PastisParams
) -> tuple[BlockSchedule, LoadBalancingScheme, list[BlockTask]]:
    """Blocking, load-balancing scheme, and the stage-graph task list of a run.

    One :class:`~repro.core.engine.stages.BlockTask` is created per block the
    scheme computes, in the scheme's block order; schedulers decide how the
    tasks' stages interleave.
    """
    schedule = make_schedule(n_sequences, params)
    scheme = make_scheme(params.load_balancing)
    tasks = [BlockTask(r, c) for r, c in scheme.blocks_to_compute(schedule)]
    return schedule, scheme, tasks


def schedule_for_num_blocks(n_sequences: int, num_blocks: int) -> BlockSchedule:
    """Schedule with ``num_blocks`` blocks factored as squarely as possible."""
    br, bc = nearly_square_factors(num_blocks)
    br = min(br, n_sequences)
    bc = min(bc, n_sequences)
    return BlockSchedule(n_rows=n_sequences, n_cols=n_sequences, br=br, bc=bc)
