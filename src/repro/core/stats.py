"""Run statistics — the quantities of Table IV.

The production-run table reports, besides the time breakdown: the number of
discovered candidates, the number of alignments actually performed (and their
fraction of the candidates), the number of similar pairs admitted to the
graph (and their fraction of the alignments), the search space ``n^2``, the
"alignment space" (alignments per unit of search space, the paper's
sensitivity proxy in the DIAMOND comparison), alignments per second, CUPS,
and per-component load imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SearchStats:
    """Aggregate statistics of one similarity-search run."""

    n_sequences: int = 0
    nodes: int = 0
    blocks_total: int = 0
    blocks_computed: int = 0
    candidates_discovered: int = 0
    alignments_performed: int = 0
    similar_pairs: int = 0
    alignment_cells: int = 0
    spgemm_flops: int = 0
    compression_factor: float = 1.0
    peak_block_bytes: int = 0
    #: component times (seconds, bulk-synchronous max over ranks)
    time_align: float = 0.0
    time_spgemm: float = 0.0
    time_sparse_all: float = 0.0
    time_io: float = 0.0
    time_cwait: float = 0.0
    time_comm: float = 0.0
    time_total: float = 0.0
    #: modelled forward-scoring kernel time (CUPS denominator)
    kernel_seconds: float = 0.0
    #: actual wall-clock seconds of the whole Python run
    wall_seconds: float = 0.0
    #: load imbalance percentages (max/avg - 1)
    imbalance_align_percent: float = 0.0
    imbalance_sparse_percent: float = 0.0
    extras: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ derived quantities
    @property
    def search_space(self) -> float:
        """Size of the all-vs-all search space (n^2)."""
        return float(self.n_sequences) ** 2

    @property
    def aligned_fraction(self) -> float:
        """Alignments performed / candidates discovered (Table IV: 8.9%)."""
        return (
            self.alignments_performed / self.candidates_discovered
            if self.candidates_discovered
            else 0.0
        )

    @property
    def similar_fraction(self) -> float:
        """Similar pairs / alignments performed (Table IV: 12.3%)."""
        return (
            self.similar_pairs / self.alignments_performed if self.alignments_performed else 0.0
        )

    @property
    def alignment_space(self) -> float:
        """Alignments per unit of search space (the sensitivity proxy of §VIII-C)."""
        return self.alignments_performed / self.search_space if self.search_space else 0.0

    @property
    def alignments_per_second(self) -> float:
        """Alignments performed per second of total (modelled) runtime."""
        return self.alignments_performed / self.time_total if self.time_total > 0 else 0.0

    @property
    def cups(self) -> float:
        """Cell updates per second over the alignment-kernel time."""
        return self.alignment_cells / self.kernel_seconds if self.kernel_seconds > 0 else 0.0

    @property
    def tcups(self) -> float:
        """CUPS in tera units."""
        return self.cups / 1e12

    @property
    def io_percent(self) -> float:
        """IO share of the total runtime in percent (Table II)."""
        return 100.0 * self.time_io / self.time_total if self.time_total > 0 else 0.0

    @property
    def cwait_percent(self) -> float:
        """Sequence-communication wait share of total runtime in percent (Table II)."""
        return 100.0 * self.time_cwait / self.time_total if self.time_total > 0 else 0.0

    # ------------------------------------------------------------------ presentation
    def as_dict(self) -> dict[str, float]:
        """Flat dictionary of all raw and derived quantities."""
        out = {
            "n_sequences": self.n_sequences,
            "nodes": self.nodes,
            "blocks_total": self.blocks_total,
            "blocks_computed": self.blocks_computed,
            "candidates_discovered": self.candidates_discovered,
            "alignments_performed": self.alignments_performed,
            "similar_pairs": self.similar_pairs,
            "alignment_cells": self.alignment_cells,
            "spgemm_flops": self.spgemm_flops,
            "compression_factor": self.compression_factor,
            "peak_block_bytes": self.peak_block_bytes,
            "aligned_fraction": self.aligned_fraction,
            "similar_fraction": self.similar_fraction,
            "search_space": self.search_space,
            "alignment_space": self.alignment_space,
            "alignments_per_second": self.alignments_per_second,
            "tcups": self.tcups,
            "time_align": self.time_align,
            "time_spgemm": self.time_spgemm,
            "time_sparse_all": self.time_sparse_all,
            "time_io": self.time_io,
            "time_cwait": self.time_cwait,
            "time_comm": self.time_comm,
            "time_total": self.time_total,
            "io_percent": self.io_percent,
            "cwait_percent": self.cwait_percent,
            "imbalance_align_percent": self.imbalance_align_percent,
            "imbalance_sparse_percent": self.imbalance_sparse_percent,
            "wall_seconds": self.wall_seconds,
        }
        out.update(self.extras)
        return out

    def as_table(self) -> str:
        """Pretty-printed Table-IV-style report."""
        lines = [
            "Results",
            f"  Number of input sequences     {self.n_sequences:,}",
            f"  Virtual nodes                 {self.nodes}",
            f"  Discovered candidates         {self.candidates_discovered:,}",
            f"  Performed alignments          {self.alignments_performed:,} "
            f"({100 * self.aligned_fraction:.1f}%)",
            f"  Similar pairs (output)        {self.similar_pairs:,} "
            f"({100 * self.similar_fraction:.1f}%)",
            f"  Search space                  {self.search_space:.3g}",
            f"  Alignment space               {self.alignment_space:.3g}",
            f"  Runtime (modelled)            {self.time_total:.3f} s",
            f"  Alignments per second         {self.alignments_per_second:,.0f}",
            f"  Cell updates per second       {self.tcups:.4f} TCUPs",
            "Breakdown",
            f"  Align                         {self.time_align:.3f} s",
            f"  SpGEMM                        {self.time_spgemm:.3f} s",
            f"  Sparse (all)                  {self.time_sparse_all:.3f} s",
            f"  IO                            {self.time_io:.3f} s ({self.io_percent:.2f}%)",
            f"  Communication wait            {self.time_cwait:.4f} s ({self.cwait_percent:.2f}%)",
            "Imbalance (%)",
            f"  Alignment                     {self.imbalance_align_percent:.1f}",
            f"  Sparse                        {self.imbalance_sparse_percent:.1f}",
        ]
        phase_seconds = self.extras.get("phase_seconds")
        if isinstance(phase_seconds, dict) and phase_seconds:
            lines.append("Phase timers")
            for name in sorted(phase_seconds):
                lines.append(
                    f"  {name:<29} {float(phase_seconds[name]):.3f} s"
                )
        cache = self.extras.get("cache")
        if isinstance(cache, dict):
            lines += [
                "Stage cache",
                f"  Hits / misses                 {cache.get('hits', 0):,} / "
                f"{cache.get('misses', 0):,}",
                f"  Entries stored                {cache.get('stores', 0):,}",
            ]
        lanes = self.extras.get("process_lanes")
        if isinstance(lanes, dict):
            lines += [
                "Process lanes",
                f"  Discover workers              {len(lanes)}",
            ]
            for pid in sorted(lanes):
                lane = lanes[pid]
                lines.append(
                    f"  Worker {pid:<12}           {int(lane.get('blocks', 0)):,} blocks, "
                    f"{float(lane.get('discover_seconds', 0.0)):.3f} s discover"
                )
            peak = self.extras.get("shm_peak_block_bytes")
            total = self.extras.get("shm_total_bytes")
            if peak is not None and total is not None:
                lines.append(
                    f"  Shm peak block / total        {int(peak):,} B / {int(total):,} B"
                )
        return "\n".join(lines)
