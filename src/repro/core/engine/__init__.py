"""The stage-graph execution engine of the incremental similarity search.

The pipeline's block loop is decomposed into an explicit graph of per-block
stages, executed by pluggable schedulers:

* :mod:`repro.core.engine.stages` — :class:`BlockTask`, one node of the
  graph per output block, with the four stages ``discover`` (blocked SUMMA
  SpGEMM), ``prune`` (load balancing + common-k-mer filter), ``align``
  (batched Smith–Waterman) and ``accumulate`` (stream edges out, discard
  the block), plus the shared :class:`StageContext`;
* :mod:`repro.core.engine.accumulator` — the streaming
  :class:`StreamingGraphAccumulator` that consumes each block's edges the
  moment they are produced, so peak memory is bounded by the *live* blocks
  (one for the serial schedule, two under depth-1 pre-blocking, ``k + 1``
  under speculative depth ``k``); with ``max_live_blocks`` set it is also
  the admission gate that enforces that bound on a concurrent schedule;
* :mod:`repro.core.engine.timeline` — the per-block scheduled timings from
  which the Table-I :class:`~repro.core.preblocking.PreblockingReport` is
  *derived* (it is no longer computed post hoc by
  ``PreblockingModel.evaluate`` inside the pipeline);
* :mod:`repro.core.engine.schedulers` — the scheduler contract and the two
  single-threaded implementations: :class:`SerialScheduler`
  (bulk-synchronous, bit-identical to the historical monolithic loop) and
  :class:`OverlappedScheduler` (§VI-C pre-blocking *simulated*:
  ``discover(b+1)`` is interleaved with ``align(b)`` on the modeled clock,
  with the paper's contention slowdowns charged as the schedule is
  executed);
* :mod:`repro.core.engine.executor` — :class:`ThreadedScheduler`, the
  *measured-clock executor* of §VI-C: where the paper overlaps the next
  block's CPU-side SpGEMM with the current block's GPU alignment, the
  executor runs ``discover(b+1..b+k)`` on a bounded worker pool genuinely
  concurrent with the main thread's ``align(b)``, generalizing pre-blocking
  to speculative depth ``k`` (``PastisParams.preblock_depth``).  Discovers
  execute in block order through a determinism turnstile, so records, edges
  and ledger categories stay bit-identical to :class:`SerialScheduler` for
  every depth and thread count; memory is bounded to ``k + 1`` live blocks
  by the accumulator's admission gate; and the per-rank clock is derived
  through the shared depth-``k`` overlap algebra
  (:class:`repro.mpi.costmodel.OverlapWindow`), so
  ``align + spgemm − overlap_hidden == combined clock`` holds for measured
  wall seconds exactly as it does for modeled ones.

* :mod:`repro.core.engine.process_executor` — :class:`ProcessScheduler`,
  the *GIL-free* variant of the threaded executor: discover lanes run in
  worker **processes** (``fork``) that execute the SpGEMM stage against a
  forked copy of the run state and ship the block's CSR/COO arrays back
  zero-copy through ``multiprocessing.shared_memory`` segments, with a
  small picklable header carrying stats and an ordered journal of ledger
  events.  The parent replays every side effect strictly in block order
  (the role the threaded turnstile plays), so records, edges, stats and
  every deterministic ledger category stay bit-identical to
  :class:`SerialScheduler` across depth and worker count, and the clock
  closes through the same :class:`~repro.mpi.costmodel.OverlapWindow`
  algebra.

* :mod:`repro.core.engine.cache` — the content-hashed :class:`StageCache`,
  the engine's analogue of the synpp/pisa declare-then-decide pipeline
  design: stages *declare* what they depend on (the canonicalized parameter
  subset, content digests of the operand stripes and input sequences, a
  kernel/schema version tag — all folded into a deterministic per-block
  key) and the framework *decides* what actually runs — a stored block is
  replayed instead of recomputed.  The cache invariant is that a hit is
  bit-identical to recomputation: an entry carries the block's outputs
  *and* the absolute post-block ledger state of the discover lane, which
  replay restores while the schedulers recharge their own categories
  through the ordinary code paths; entries are therefore shareable across
  all three schedulers, and ``PastisPipeline.run(resume=True)`` continues a
  killed run from its last completed block.

Schedulers — not the pipeline — own execution order and ledger charging;
the pipeline builds the task list and hands it over.

**Choosing a scheduler** (``PastisParams.scheduler``, or derived from
``pre_blocking``/``clock``/``preblock_depth`` when ``None``):

* ``"serial"`` — bulk-synchronous reference schedule.  Simplest, no
  concurrency; the baseline every other scheduler is bit-identical to.
* ``"overlapped"`` — §VI-C pre-blocking *simulated* on the modeled clock
  with the paper's contention multipliers.  Choose it for paper-faithful
  Table-I numbers; no real concurrency happens.
* ``"threaded"`` — the schedule actually executed on a thread pool.
  Choose it for measured-clock runs or depth > 1.  Real overlap is limited
  by the GIL: it helps exactly when the discover lane spends its time in
  NumPy kernels that release the GIL, and collapses when the lane is
  dominated by pure-Python stage orchestration.
* ``"process"`` — the same schedule with discover workers in *processes*
  (shared-memory block transport).  The GIL does not apply, so overlap
  survives Python-heavy discover work; costs fork + shm-mapping overhead
  per block, so prefer ``"threaded"`` for tiny blocks and ``"process"``
  when blocks are large enough to amortize it (see
  ``benchmarks/bench_process_pool.py``).  Requires the ``fork`` start
  method.

All four produce bit-identical records, edges, stats and deterministic
ledger categories; only wall-clock behavior differs.

**Observability** (``PastisParams.trace`` / ``trace_dir``; see
:mod:`repro.trace`): every scheduler emits spans through the optional
``StageContext.trace`` recorder, and each span category maps onto one of
the mechanisms above —

* ``stage`` spans (``discover``/``prune``/``align``/``accumulate``) — the
  four :class:`BlockTask` stages, wherever they execute (main thread,
  pool thread, or worker process);
* ``cache`` spans (``cache_load``/``cache_replay``) — the
  :class:`StageCache` consult and the bit-identical replay of a hit;
* ``wait`` spans — the concurrency gates: ``admission_wait`` is time
  blocked in the accumulator's ``admit_block`` admission gate (the
  ``k + 1`` live-block memory bound), ``turnstile_wait`` is a threaded
  worker waiting its turn in the ``_Turnstile`` determinism gate;
* ``summa`` spans (``summa_stage``/``summa_merge``) — the broadcast
  stages inside one discover's 2D SUMMA;
* ``transport``/``replay`` spans (``shm_ship``/``ledger_replay``) — the
  process executor's shared-memory shipping and the parent's block-ordered
  journal replay;
* counter series (live blocks, ``ledger.<category>`` totals, shm bytes,
  cache hits) are sampled once per block at the accumulate boundary.

Serial/Overlapped/Threaded record directly into the run's recorder; the
process executor's workers journal spans into the block header (the same
pattern as their ledger journal) and the parent merges them in block
order with worker-pid attribution.  Tracing is off by default, zero-cost
when disabled, and non-perturbing: results stay bit-identical with it on.

**Tracing vs metrics** — two complementary observability layers share
the instrumentation points above; pick by the question being asked:

* *"When did what happen inside this one run?"* → **tracing**
  (``PastisParams.trace``/``trace_dir``, :mod:`repro.trace`): ordered
  spans with pid/tid attribution and block-boundary counter series,
  exported as a Perfetto-loadable timeline.  High detail, one run at a
  time, meant for eyeballs and ``python -m repro.trace diff``.
* *"How much, and is it getting slower across runs?"* → **metrics**
  (``PastisParams.metrics``/``run_registry``, :mod:`repro.obs`): typed
  counters/gauges/histograms with label sets — ledger seconds per
  category, phase timers, cache hit/miss counts, lane stats, per-SUMMA
  -stage kernel seconds and measured compression factors — aggregated
  per run, persisted as registry manifests, scraped via Prometheus text
  exposition, and guarded by ``python -m repro.obs regress``.

Both ride the same ledger trace hook (fanned out when both are on), use
the same worker-journaling transport under the process scheduler, and
carry the same contract: off by default, near-zero-cost when disabled,
and non-perturbing — ``tests/test_trace.py`` and ``tests/test_obs.py``
assert bit-identity per scheduler.
"""

from .accumulator import StreamingGraphAccumulator
from .cache import CachedBlock, StageCache, build_stage_cache
from .executor import ThreadedScheduler
from .process_executor import ProcessScheduler
from .schedulers import (
    OverlappedScheduler,
    ScheduleOutcome,
    Scheduler,
    SerialScheduler,
    make_scheduler,
)
from .stages import BlockRecord, BlockTask, StageContext
from .timeline import BlockTiming, StageTimeline

__all__ = [
    "BlockRecord",
    "BlockTask",
    "BlockTiming",
    "CachedBlock",
    "OverlappedScheduler",
    "ProcessScheduler",
    "ScheduleOutcome",
    "Scheduler",
    "SerialScheduler",
    "StageCache",
    "StageContext",
    "StageTimeline",
    "build_stage_cache",
    "StreamingGraphAccumulator",
    "ThreadedScheduler",
    "make_scheduler",
]
