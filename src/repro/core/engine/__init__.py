"""The stage-graph execution engine of the incremental similarity search.

The pipeline's block loop is decomposed into an explicit graph of per-block
stages, executed by pluggable schedulers:

* :mod:`repro.core.engine.stages` — :class:`BlockTask`, one node of the
  graph per output block, with the four stages ``discover`` (blocked SUMMA
  SpGEMM), ``prune`` (load balancing + common-k-mer filter), ``align``
  (batched Smith–Waterman) and ``accumulate`` (stream edges out, discard
  the block), plus the shared :class:`StageContext`;
* :mod:`repro.core.engine.accumulator` — the streaming
  :class:`StreamingGraphAccumulator` that consumes each block's edges the
  moment they are produced, so peak memory is bounded by the *live* blocks
  (one for the serial schedule, two under pre-blocking) instead of the sum
  of all block outputs;
* :mod:`repro.core.engine.timeline` — the per-block scheduled timings from
  which the Table-I :class:`~repro.core.preblocking.PreblockingReport` is
  *derived* (it is no longer computed post hoc by
  ``PreblockingModel.evaluate`` inside the pipeline);
* :mod:`repro.core.engine.schedulers` — the scheduler contract and its two
  implementations: :class:`SerialScheduler` (bulk-synchronous, bit-identical
  to the historical monolithic loop) and :class:`OverlappedScheduler`
  (§VI-C pre-blocking: ``discover(b+1)`` is interleaved with ``align(b)`` on
  the simulated clock, with the paper's contention slowdowns charged as the
  schedule is executed).

Schedulers — not the pipeline — own execution order and ledger charging;
the pipeline builds the task list and hands it over.
"""

from .accumulator import StreamingGraphAccumulator
from .schedulers import (
    OverlappedScheduler,
    ScheduleOutcome,
    Scheduler,
    SerialScheduler,
    make_scheduler,
)
from .stages import BlockRecord, BlockTask, StageContext
from .timeline import BlockTiming, StageTimeline

__all__ = [
    "BlockRecord",
    "BlockTask",
    "BlockTiming",
    "OverlappedScheduler",
    "ScheduleOutcome",
    "Scheduler",
    "SerialScheduler",
    "StageContext",
    "StageTimeline",
    "StreamingGraphAccumulator",
    "make_scheduler",
]
