"""Block tasks: the nodes of the stage graph.

One :class:`BlockTask` per output block of the blocked overlap computation,
with four explicit stages:

``discover``
    Run the Blocked 2D Sparse SUMMA for this block and derive the per-rank
    sparse (SpGEMM + stripe-traversal) seconds under the configured clock.
``prune``
    Apply the load-balancing scheme's element selection, drop self pairs,
    and apply the common-k-mer threshold — per rank.
``align``
    Batch-align the surviving candidate pairs (no ledger charging here; the
    scheduler owns charging so it can apply contention multipliers).
``accumulate``
    Stream the block's similar pairs into the
    :class:`~repro.core.engine.accumulator.StreamingGraphAccumulator`,
    snapshot the :class:`BlockRecord`, and discard the block's candidate
    matrices (the "incremental" part of incremental similarity search).

Stages communicate through fields on the task; a stage may only run after
its predecessor (asserted).  Schedulers decide *when* each stage of each
task runs — the serial scheduler finishes a task before starting the next,
the overlapped scheduler interleaves ``discover(b+1)`` with ``align(b)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...distsparse.blocked_summa import BlockedSpGemm, BlockSchedule, OutputBlock
from ...metrics.timers import time_call
from ...mpi.communicator import SimCommunicator
from ...sparse.coo import CooMatrix
from ..align_phase import AlignmentPhase, BlockAlignmentOutput
from ..costing import CostModel
from ..filtering import drop_self_pairs, filter_common_kmers
from ..load_balance import BlockKind, LoadBalancingScheme, classify_block
from ..params import PastisParams
from .accumulator import StreamingGraphAccumulator


@dataclass
class BlockRecord:
    """Per-block bookkeeping used by the figure benchmarks.

    Timing vectors hold *raw* (uninflated) per-rank seconds; contention
    multipliers applied by an overlapping scheduler live in the run's
    :class:`~repro.core.engine.timeline.StageTimeline`, so records are
    comparable across schedulers.
    """

    block_row: int
    block_col: int
    kind: BlockKind
    candidates: int
    aligned_pairs: int
    similar_pairs: int
    sparse_seconds_per_rank: np.ndarray
    align_seconds_per_rank: np.ndarray
    pairs_per_rank: np.ndarray
    cells_per_rank: np.ndarray
    block_bytes: int


@dataclass
class StageContext:
    """Shared state every stage executes against.

    Built once per run by the pipeline; schedulers thread it through the
    stages.  ``stripe_seconds`` is the per-block cost of re-traversing the
    operand stripes (the "split sparse computations" overhead of §VI-A),
    precomputed because it is identical for every block.
    """

    params: PastisParams
    comm: SimCommunicator
    cost_model: CostModel
    engine: BlockedSpGemm
    aligner: AlignmentPhase
    scheme: LoadBalancingScheme
    schedule: BlockSchedule
    accumulator: StreamingGraphAccumulator
    stripe_seconds: float = 0.0


@dataclass
class BlockTask:
    """One output block's journey through discover → prune → align → accumulate."""

    block_row: int
    block_col: int
    block: OutputBlock | None = field(default=None, repr=False)
    sparse_seconds: np.ndarray | None = field(default=None, repr=False)
    candidates: list[CooMatrix] | None = field(default=None, repr=False)
    output: BlockAlignmentOutput | None = field(default=None, repr=False)
    record: BlockRecord | None = field(default=None, repr=False)
    #: wall-clock seconds the discover stage took (whatever thread ran it);
    #: what the threaded executor reports as the background lane's real time
    discover_wall_seconds: float = 0.0

    # ------------------------------------------------------------------ stages
    def discover(self, ctx: StageContext) -> OutputBlock:
        """Compute this block via SUMMA and derive per-rank sparse seconds."""
        assert self.block is None, "discover ran twice"
        block, self.discover_wall_seconds = time_call(
            ctx.engine.compute_block, self.block_row, self.block_col
        )
        if ctx.params.clock == "modeled":
            sparse_seconds = np.array(
                [
                    ctx.cost_model.spgemm_seconds(f) + ctx.stripe_seconds
                    for f in block.result.flops_per_rank
                ]
            )
        else:
            sparse_seconds = np.asarray(block.result.compute_seconds_per_rank, dtype=float)
        self.block = block
        self.sparse_seconds = sparse_seconds
        ctx.accumulator.block_computed(block.memory_bytes())
        return block

    def prune(self, ctx: StageContext) -> list[CooMatrix]:
        """Select the elements each rank will align."""
        assert self.block is not None, "prune before discover"
        per_rank: list[CooMatrix] = []
        for rank_piece in self.block.result.per_rank:
            pruned = ctx.scheme.prune(rank_piece)
            pruned = drop_self_pairs(pruned)
            pruned = filter_common_kmers(pruned, ctx.params.common_kmer_threshold)
            per_rank.append(pruned)
        self.candidates = per_rank
        return per_rank

    def align(self, ctx: StageContext) -> BlockAlignmentOutput:
        """Align the pruned candidates (ledger charging deferred to the scheduler)."""
        assert self.candidates is not None, "align before prune"
        self.output = ctx.aligner.align_block(self.candidates, charge=False)
        return self.output

    def accumulate(self, ctx: StageContext) -> BlockRecord:
        """Stream edges out, snapshot the record, and discard the block."""
        assert self.block is not None and self.output is not None, "accumulate before align"
        block, output = self.block, self.output
        block_bytes = block.memory_bytes()
        self.record = BlockRecord(
            block_row=self.block_row,
            block_col=self.block_col,
            kind=classify_block(
                ctx.schedule.row_range(self.block_row), ctx.schedule.col_range(self.block_col)
            ),
            candidates=block.nnz,
            aligned_pairs=output.pairs_aligned,
            similar_pairs=int(output.edges.size),
            sparse_seconds_per_rank=self.sparse_seconds,
            align_seconds_per_rank=output.align_seconds_per_rank,
            pairs_per_rank=output.pairs_aligned_per_rank,
            cells_per_rank=output.cells_per_rank,
            block_bytes=block_bytes,
        )
        ctx.accumulator.consume(output.edges)
        ctx.accumulator.block_discarded(block_bytes)
        # drop the bulky stage products; the record and the streamed edges survive
        self.block = None
        self.candidates = None
        return self.record
