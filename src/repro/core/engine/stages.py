"""Block tasks: the nodes of the stage graph.

One :class:`BlockTask` per output block of the blocked overlap computation,
with four explicit stages:

``discover``
    Run the Blocked 2D Sparse SUMMA for this block and derive the per-rank
    sparse (SpGEMM + stripe-traversal) seconds under the configured clock.
``prune``
    Apply the load-balancing scheme's element selection, drop self pairs,
    and apply the common-k-mer threshold — per rank.
``align``
    Batch-align the surviving candidate pairs (no ledger charging here; the
    scheduler owns charging so it can apply contention multipliers).
``accumulate``
    Stream the block's similar pairs into the
    :class:`~repro.core.engine.accumulator.StreamingGraphAccumulator`,
    snapshot the :class:`BlockRecord`, and discard the block's candidate
    matrices (the "incremental" part of incremental similarity search).

Stages communicate through fields on the task; a stage may only run after
its predecessor (asserted).  Schedulers decide *when* each stage of each
task runs — the serial scheduler finishes a task before starting the next,
the overlapped scheduler interleaves ``discover(b+1)`` with ``align(b)``.

When the context carries a :class:`~repro.core.engine.cache.StageCache`,
``discover`` first consults it: a hit replays the stored block — restoring
the discover lane's ledger state, merging the stored SpGEMM stats, and
turning the remaining stages into replays of the stored outputs — while the
schedulers keep charging "spgemm"/"align"/overlap through their ordinary
code paths, so a warm run stays bit-identical to the cold run that stored
the entries.  A miss executes normally, captures the lane's post-block
ledger snapshot, and stores the completed entry when ``accumulate``
finishes the block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...distsparse.blocked_summa import BlockedSpGemm, BlockSchedule, OutputBlock
from ...metrics.timers import time_call
from ...mpi.communicator import SimCommunicator
from ...obs import MetricsHub
from ...trace import TraceRecorder, maybe_span
from ...sparse.coo import CooMatrix
from ..align_phase import AlignmentPhase, BlockAlignmentOutput
from ..costing import CostModel
from ..filtering import drop_self_pairs, filter_common_kmers
from ..load_balance import BlockKind, LoadBalancingScheme, classify_block
from ..params import PastisParams
from .accumulator import StreamingGraphAccumulator
from .cache import LANE_COUNTERS, CachedBlock, StageCache, lane_time_categories


@dataclass
class BlockRecord:
    """Per-block bookkeeping used by the figure benchmarks.

    Timing vectors hold *raw* (uninflated) per-rank seconds; contention
    multipliers applied by an overlapping scheduler live in the run's
    :class:`~repro.core.engine.timeline.StageTimeline`, so records are
    comparable across schedulers.
    """

    block_row: int
    block_col: int
    kind: BlockKind
    candidates: int
    aligned_pairs: int
    similar_pairs: int
    sparse_seconds_per_rank: np.ndarray
    align_seconds_per_rank: np.ndarray
    pairs_per_rank: np.ndarray
    cells_per_rank: np.ndarray
    block_bytes: int


@dataclass
class StageContext:
    """Shared state every stage executes against.

    Built once per run by the pipeline; schedulers thread it through the
    stages.  ``stripe_seconds`` is the per-block cost of re-traversing the
    operand stripes (the "split sparse computations" overhead of §VI-A),
    precomputed because it is identical for every block.
    """

    params: PastisParams
    comm: SimCommunicator
    cost_model: CostModel
    engine: BlockedSpGemm
    aligner: AlignmentPhase
    scheme: LoadBalancingScheme
    schedule: BlockSchedule
    accumulator: StreamingGraphAccumulator
    stripe_seconds: float = 0.0
    #: optional per-block result cache (None disables caching entirely)
    cache: StageCache | None = None
    #: optional span recorder (None — the default — disables tracing; every
    #: instrumented site guards on it, so the disabled path costs nothing)
    trace: TraceRecorder | None = None
    #: optional metrics hub (None — the default — disables collection, with
    #: the same guard-on-None zero-cost contract as tracing)
    metrics: MetricsHub | None = None


@dataclass
class BlockTask:
    """One output block's journey through discover → prune → align → accumulate."""

    block_row: int
    block_col: int
    block: OutputBlock | None = field(default=None, repr=False)
    sparse_seconds: np.ndarray | None = field(default=None, repr=False)
    candidates: list[CooMatrix] | None = field(default=None, repr=False)
    output: BlockAlignmentOutput | None = field(default=None, repr=False)
    record: BlockRecord | None = field(default=None, repr=False)
    #: cache hit being replayed through the remaining stages (None on a miss)
    cached: CachedBlock | None = field(default=None, repr=False)
    #: post-discover ledger snapshot of a miss, pending store on completion
    _capture: tuple | None = field(default=None, repr=False)
    #: wall-clock seconds the discover stage took (whatever thread ran it);
    #: what the threaded executor reports as the background lane's real time
    discover_wall_seconds: float = 0.0

    # ------------------------------------------------------------------ stages
    def discover(self, ctx: StageContext) -> OutputBlock | None:
        """Compute this block via SUMMA (or replay it from the stage cache)."""
        assert self.block is None and self.cached is None, "discover ran twice"
        cache = ctx.cache
        coords = (self.block_row, self.block_col)
        if cache is not None:
            with maybe_span(
                ctx.trace, "cache_load", "cache", lane="discover", block=coords
            ) as span:
                entry = cache.load(coords)
                span.set(hit=entry is not None)
            if entry is not None:
                with maybe_span(
                    ctx.trace, "cache_replay", "cache", lane="discover", block=coords
                ):
                    self._replay_discover(ctx, entry)
                return None
        with maybe_span(
            ctx.trace, "discover", "stage", lane="discover", block=coords
        ) as span:
            block, self.discover_wall_seconds = time_call(
                ctx.engine.compute_block, self.block_row, self.block_col
            )
            span.set(nnz=block.nnz, flops=float(block.result.flops_per_rank.sum()))
        if ctx.params.clock == "modeled":
            sparse_seconds = np.array(
                [
                    ctx.cost_model.spgemm_seconds(f) + ctx.stripe_seconds
                    for f in block.result.flops_per_rank
                ]
            )
        else:
            sparse_seconds = np.asarray(block.result.compute_seconds_per_rank, dtype=float)
        self.block = block
        self.sparse_seconds = sparse_seconds
        if cache is not None:
            # absolute lane state *after* this block's discover: the entry
            # restores (not re-adds) these vectors on replay, which is the
            # only way the float sums stay bit-identical
            times, counters = ctx.comm.ledger.snapshot(
                lane_time_categories(ctx.engine.compute_category), LANE_COUNTERS
            )
            self._capture = (times, counters, block.stats)
        ctx.accumulator.block_computed(block.memory_bytes())
        return block

    def _replay_discover(self, ctx: StageContext, entry: CachedBlock) -> None:
        """Reproduce every side effect the cold discover had, from the entry.

        Runs inside whatever ordering discipline the scheduler imposes on
        discovers (the threaded executor's turnstile), so restores land in
        block order exactly like the original charges did.
        """
        ctx.comm.ledger.restore(entry.ledger_times, entry.ledger_counters)
        engine = ctx.engine
        engine.total_stats = engine.total_stats.merge(entry.spgemm_stats())
        engine.peak_block_bytes = max(engine.peak_block_bytes, entry.block_bytes)
        self.cached = entry
        self.sparse_seconds = entry.sparse_seconds_per_rank
        self.discover_wall_seconds = entry.discover_wall_seconds
        ctx.accumulator.block_computed(entry.block_bytes)

    def prune(self, ctx: StageContext) -> list[CooMatrix]:
        """Select the elements each rank will align."""
        if self.cached is not None:
            self.candidates = []
            return self.candidates
        assert self.block is not None, "prune before discover"
        with maybe_span(
            ctx.trace, "prune", "stage", block=(self.block_row, self.block_col)
        ):
            per_rank: list[CooMatrix] = []
            for rank_piece in self.block.result.per_rank:
                pruned = ctx.scheme.prune(rank_piece)
                pruned = drop_self_pairs(pruned)
                pruned = filter_common_kmers(pruned, ctx.params.common_kmer_threshold)
                per_rank.append(pruned)
            self.candidates = per_rank
        return per_rank

    def align(self, ctx: StageContext) -> BlockAlignmentOutput:
        """Align the pruned candidates (ledger charging deferred to the scheduler)."""
        if self.cached is not None:
            self.output = self.cached.alignment_output()
            return self.output
        assert self.candidates is not None, "align before prune"
        with maybe_span(
            ctx.trace, "align", "stage", block=(self.block_row, self.block_col)
        ) as span:
            self.output = ctx.aligner.align_block(self.candidates, charge=False)
            span.set(pairs=self.output.pairs_aligned)
        return self.output

    def accumulate(self, ctx: StageContext) -> BlockRecord:
        """Stream edges out, snapshot the record, and discard the block."""
        if self.cached is not None:
            with maybe_span(
                ctx.trace,
                "accumulate",
                "stage",
                block=(self.block_row, self.block_col),
                cached=True,
            ):
                return self._accumulate_cached(ctx)
        assert self.block is not None and self.output is not None, "accumulate before align"
        with maybe_span(
            ctx.trace, "accumulate", "stage", block=(self.block_row, self.block_col)
        ) as span:
            block, output = self.block, self.output
            block_bytes = block.memory_bytes()
            self.record = BlockRecord(
                block_row=self.block_row,
                block_col=self.block_col,
                kind=classify_block(
                    ctx.schedule.row_range(self.block_row),
                    ctx.schedule.col_range(self.block_col),
                ),
                candidates=block.nnz,
                aligned_pairs=output.pairs_aligned,
                similar_pairs=int(output.edges.size),
                sparse_seconds_per_rank=self.sparse_seconds,
                align_seconds_per_rank=output.align_seconds_per_rank,
                pairs_per_rank=output.pairs_aligned_per_rank,
                cells_per_rank=output.cells_per_rank,
                block_bytes=block_bytes,
            )
            ctx.accumulator.consume(output.edges)
            ctx.accumulator.block_discarded(block_bytes)
            if ctx.cache is not None and self._capture is not None:
                times, counters, stats = self._capture
                ctx.cache.store(
                    (self.block_row, self.block_col),
                    CachedBlock(
                        candidates=self.record.candidates,
                        block_bytes=block_bytes,
                        sparse_seconds_per_rank=self.sparse_seconds,
                        align_seconds_per_rank=output.align_seconds_per_rank,
                        pairs_per_rank=output.pairs_aligned_per_rank,
                        cells_per_rank=output.cells_per_rank,
                        edges=output.edges,
                        kernel_seconds=output.kernel_seconds,
                        measured_align_seconds=output.measured_seconds,
                        discover_wall_seconds=self.discover_wall_seconds,
                        stats_flops=stats.flops,
                        stats_output_nnz=stats.output_nnz,
                        stats_intermediate_bytes=stats.intermediate_bytes,
                        stats_row_groups=stats.row_groups,
                        ledger_times=times,
                        ledger_counters=counters,
                    ),
                )
                self._capture = None
            span.set(edges=int(output.edges.size))
            # drop the bulky stage products; the record and the streamed edges
            # survive
            self.block = None
            self.candidates = None
        return self.record

    def _accumulate_cached(self, ctx: StageContext) -> BlockRecord:
        """The accumulate stage of a replayed block: same consumption order,
        record rebuilt from the stored values (``kind`` is recomputed — it is
        a pure function of the block's index ranges)."""
        entry, output = self.cached, self.output
        assert output is not None, "accumulate before align"
        self.record = BlockRecord(
            block_row=self.block_row,
            block_col=self.block_col,
            kind=classify_block(
                ctx.schedule.row_range(self.block_row), ctx.schedule.col_range(self.block_col)
            ),
            candidates=entry.candidates,
            aligned_pairs=output.pairs_aligned,
            similar_pairs=int(output.edges.size),
            sparse_seconds_per_rank=self.sparse_seconds,
            align_seconds_per_rank=output.align_seconds_per_rank,
            pairs_per_rank=output.pairs_aligned_per_rank,
            cells_per_rank=output.cells_per_rank,
            block_bytes=entry.block_bytes,
        )
        ctx.accumulator.consume(output.edges)
        ctx.accumulator.block_discarded(entry.block_bytes)
        self.candidates = None
        return self.record
