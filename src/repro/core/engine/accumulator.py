"""Streaming accumulation of the similarity graph.

The paper's "incremental similarity search" promises that a block's overlap
elements can be discarded as soon as they are aligned; what must survive to
the end of the run is only the (much smaller) stream of similar pairs.  The
accumulator makes that life cycle explicit and auditable: every computed
block is registered as *live*, its edges are consumed the moment the
alignment stage produces them, and the block is released when the task's
``accumulate`` stage discards it.  Peak live bytes are tracked with
:class:`repro.metrics.memory.MemoryTracker`, so a run can report that
streaming held one block (serial schedule), two (depth-1 pre-blocking: the
current block plus the one being discovered) or ``k + 1`` (speculative
depth-``k`` pre-blocking) instead of the cumulative
``retained_block_bytes`` a keep-everything run would have paid.

The accumulator is also the engine's **memory governor**: with
``max_live_blocks`` set (the threaded executor sets it to ``depth + 1``),
:meth:`admit_block` blocks the calling worker until a slot frees, so a deep
speculative schedule can never hold more than ``k + 1`` blocks no matter
how far the discover lane runs ahead of alignment.  Admission, consumption
and release are thread-safe — the threaded scheduler's workers admit and
register blocks while the main thread consumes edges and discards them —
and the measured peak is reported via :attr:`peak_live_blocks`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ...metrics.memory import MemoryTracker
from ..align_phase import EDGE_DTYPE
from ..similarity_graph import SimilarityGraph

#: Memory-tracker component for block outputs currently held in memory.
LIVE_BLOCKS = "live_blocks"
#: Memory-tracker component for the growing similar-pair edge buffer.
EDGE_BUFFER = "edge_buffer"


@dataclass
class StreamingGraphAccumulator:
    """Consumes per-block edge streams and assembles the similarity graph.

    Attributes
    ----------
    n_vertices:
        Number of sequences (graph vertices).
    max_live_blocks:
        Admission bound: at most this many blocks may be live (admitted and
        not yet discarded) at once; :meth:`admit_block` blocks until a slot
        frees.  ``None`` (the default) disables admission control — the
        serial and modeled overlapped schedulers regulate liveness through
        their schedule shape instead.
    memory:
        Tracker recording current/peak bytes of the ``live_blocks`` and
        ``edge_buffer`` components.
    retained_block_bytes:
        Sum of every consumed block's bytes — what peak memory would have
        been had all block outputs been retained instead of streamed.
    edges_streamed:
        Total edges consumed (before the final canonicalization).
    peak_live_blocks:
        Measured peak number of simultaneously live blocks (1 serial, 2
        depth-1 overlapped, at most ``depth + 1`` under the threaded
        executor).
    """

    n_vertices: int
    max_live_blocks: int | None = None
    memory: MemoryTracker = field(default_factory=MemoryTracker)
    retained_block_bytes: int = 0
    edges_streamed: int = 0
    peak_live_blocks: int = 0
    _edge_parts: list[np.ndarray] = field(default_factory=list, repr=False)
    _live: int = field(default=0, repr=False)
    _pending_admissions: int = field(default=0, repr=False)
    _aborted: bool = field(default=False, repr=False)
    _cond: threading.Condition = field(default_factory=threading.Condition, repr=False)

    # ------------------------------------------------------------------ admission
    def admit_block(self) -> None:
        """Reserve a live-block slot *before* computing a block.

        Blocks the caller until fewer than ``max_live_blocks`` blocks are
        live, then counts the reservation as live — this is what bounds the
        threaded executor's speculation to ``depth + 1`` blocks.  A
        subsequent :meth:`block_computed` consumes the reservation instead
        of admitting again.  Note: wakeup order among *concurrent* waiters
        is not FIFO (plain condition-variable semantics); oldest-block-first
        admission holds because callers serialize their admissions — the
        executor's block-order turnstile admits one block at a time.
        """
        with self._cond:
            self._admit_locked()
            self._pending_admissions += 1

    def abort_admission(self) -> None:
        """Wake all admission waiters with an error (executor teardown)."""
        with self._cond:
            self._aborted = True
            self._cond.notify_all()

    def _admit_locked(self, blocking: bool = True) -> None:
        while (
            blocking
            and self.max_live_blocks is not None
            and self._live >= self.max_live_blocks
            and not self._aborted
        ):
            self._cond.wait()
        if self._aborted:
            raise RuntimeError("accumulator admission aborted (run torn down)")
        if self.max_live_blocks is not None and self._live >= self.max_live_blocks:
            # non-blocking path: the caller is the only thread there is, so
            # waiting for an eviction it would itself have to perform is a
            # guaranteed deadlock — fail loudly instead
            raise RuntimeError(
                f"live-block bound exceeded: {self._live} blocks live with "
                f"max_live_blocks={self.max_live_blocks}; single-threaded "
                "schedulers must discard before computing the next block (or "
                "reserve concurrently via admit_block)"
            )
        self._live += 1
        self.peak_live_blocks = max(self.peak_live_blocks, self._live)

    # ------------------------------------------------------------------ block life cycle
    def block_computed(self, nbytes: int) -> None:
        """Register a freshly discovered block's output as live.

        Blocks replayed from the stage cache go through the exact same
        admission/registration/discard life cycle as computed ones (with the
        stored ``block_bytes``), so live-block bounds, peak accounting and —
        under the threaded executor — the admission gate behave identically
        on warm and cold runs.
        """
        with self._cond:
            if self._pending_admissions:
                self._pending_admissions -= 1
            else:
                # caller did not pre-admit (serial / modeled overlapped
                # schedulers): admit on registration, without blocking — the
                # registering thread may be the only one able to evict
                self._admit_locked(blocking=False)
            self.memory.allocate(LIVE_BLOCKS, int(nbytes))
            self.retained_block_bytes += int(nbytes)

    def consume(self, edges: np.ndarray) -> None:
        """Stream one block's similar-pair edges into the output buffer."""
        with self._cond:
            if edges.size:
                self._edge_parts.append(edges)
                self.memory.allocate(EDGE_BUFFER, int(edges.nbytes))
            self.edges_streamed += int(edges.size)

    def block_discarded(self, nbytes: int) -> None:
        """Release a block whose edges have been consumed."""
        with self._cond:
            self.memory.release(LIVE_BLOCKS, int(nbytes))
            self._live = max(0, self._live - 1)
            self._cond.notify_all()

    # ------------------------------------------------------------------ results
    @property
    def live_blocks(self) -> int:
        """Number of currently live (admitted, not yet discarded) blocks."""
        return self._live

    @property
    def peak_live_block_bytes(self) -> int:
        """Peak bytes of simultaneously live block outputs."""
        return self.memory.peak(LIVE_BLOCKS)

    @property
    def live_block_bytes(self) -> int:
        """Bytes of block outputs currently live (0 after a finished run)."""
        return self.memory.current(LIVE_BLOCKS)

    def finalize(self) -> SimilarityGraph:
        """Canonicalize the streamed edges into the similarity graph."""
        edges = (
            np.concatenate(self._edge_parts)
            if self._edge_parts
            else np.zeros(0, dtype=EDGE_DTYPE)
        )
        return SimilarityGraph.from_edges(edges, self.n_vertices)
