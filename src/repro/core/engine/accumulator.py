"""Streaming accumulation of the similarity graph.

The paper's "incremental similarity search" promises that a block's overlap
elements can be discarded as soon as they are aligned; what must survive to
the end of the run is only the (much smaller) stream of similar pairs.  The
accumulator makes that life cycle explicit and auditable: every computed
block is registered as *live*, its edges are consumed the moment the
alignment stage produces them, and the block is released when the task's
``accumulate`` stage discards it.  Peak live bytes are tracked with
:class:`repro.metrics.memory.MemoryTracker`, so a run can report that
streaming held one block (serial schedule) or two (pre-blocking: the current
block plus the one being discovered) instead of the cumulative
``retained_block_bytes`` a keep-everything run would have paid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...metrics.memory import MemoryTracker
from ..align_phase import EDGE_DTYPE
from ..similarity_graph import SimilarityGraph

#: Memory-tracker component for block outputs currently held in memory.
LIVE_BLOCKS = "live_blocks"
#: Memory-tracker component for the growing similar-pair edge buffer.
EDGE_BUFFER = "edge_buffer"


@dataclass
class StreamingGraphAccumulator:
    """Consumes per-block edge streams and assembles the similarity graph.

    Attributes
    ----------
    n_vertices:
        Number of sequences (graph vertices).
    memory:
        Tracker recording current/peak bytes of the ``live_blocks`` and
        ``edge_buffer`` components.
    retained_block_bytes:
        Sum of every consumed block's bytes — what peak memory would have
        been had all block outputs been retained instead of streamed.
    edges_streamed:
        Total edges consumed (before the final canonicalization).
    """

    n_vertices: int
    memory: MemoryTracker = field(default_factory=MemoryTracker)
    retained_block_bytes: int = 0
    edges_streamed: int = 0
    _edge_parts: list[np.ndarray] = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------ block life cycle
    def block_computed(self, nbytes: int) -> None:
        """Register a freshly discovered block's output as live."""
        self.memory.allocate(LIVE_BLOCKS, int(nbytes))
        self.retained_block_bytes += int(nbytes)

    def consume(self, edges: np.ndarray) -> None:
        """Stream one block's similar-pair edges into the output buffer."""
        if edges.size:
            self._edge_parts.append(edges)
            self.memory.allocate(EDGE_BUFFER, int(edges.nbytes))
        self.edges_streamed += int(edges.size)

    def block_discarded(self, nbytes: int) -> None:
        """Release a block whose edges have been consumed."""
        self.memory.release(LIVE_BLOCKS, int(nbytes))

    # ------------------------------------------------------------------ results
    @property
    def peak_live_block_bytes(self) -> int:
        """Peak bytes of simultaneously live block outputs."""
        return self.memory.peak(LIVE_BLOCKS)

    @property
    def live_block_bytes(self) -> int:
        """Bytes of block outputs currently live (0 after a finished run)."""
        return self.memory.current(LIVE_BLOCKS)

    def finalize(self) -> SimilarityGraph:
        """Canonicalize the streamed edges into the similarity graph."""
        edges = (
            np.concatenate(self._edge_parts)
            if self._edge_parts
            else np.zeros(0, dtype=EDGE_DTYPE)
        )
        return SimilarityGraph.from_edges(edges, self.n_vertices)
