"""Measured-clock threaded executor: real concurrency for §VI-C pre-blocking.

:class:`~repro.core.engine.schedulers.OverlappedScheduler` *simulates* the
paper's pre-blocking on a modeled clock.  :class:`ThreadedScheduler` is the
executor that actually runs it: the discover stages of blocks ``b+1..b+k``
execute on a bounded worker pool **genuinely concurrent** with the main
thread aligning block ``b``, generalizing pre-blocking to speculative depth
``k >= 1`` (``PastisParams.preblock_depth``).  Under ``clock="measured"``
the per-rank stage seconds are real wall time, so the overlap gain is a
hardware fact rather than a model output; under ``clock="modeled"`` the
same schedule runs (results are identical either way) and the clock algebra
consumes modeled seconds.

Three mechanisms keep concurrency from ever touching results:

**Ordered discover lane.**  Workers enter the SUMMA engine through a
turnstile that admits them strictly in block order, so every mutation of
shared state (the blocked-SUMMA stats, the communication ledger charges
made inside ``summa``) happens in exactly the sequence the serial scheduler
produces — records, edges and ledger categories are bit-identical to
:class:`~repro.core.engine.schedulers.SerialScheduler` for every depth and
thread count.  Concurrency lives *between* the lanes (discover vs. align),
never inside the bookkeeping.

**Admission-bounded memory.**  Before computing, each worker reserves a
live-block slot from the
:class:`~repro.core.engine.accumulator.StreamingGraphAccumulator`
(``max_live_blocks = depth + 1``), so speculation can never hold more than
``k + 1`` blocks however far the discover lane runs ahead; the measured
peak is reported via ``peak_live_blocks``.

**Shared overlap algebra.**  The per-rank clock is derived by replaying the
executed schedule through :class:`repro.mpi.costmodel.OverlapWindow` — the
depth-``k`` generalization of the ``charge_overlap_slot`` slot the modeled
overlapped scheduler and distributed MCL use — so the ledger invariant
``align + spgemm − overlap_hidden == combined clock`` holds per rank for
*measured* seconds exactly as it does for modeled ones.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ...metrics.timers import Timer
from ...mpi.costmodel import OverlapWindow
from ...trace import maybe_span
from .schedulers import (
    OVERLAP_HIDDEN_CATEGORY,
    ScheduleOutcome,
    Scheduler,
    _charge_sparse,
    _run_foreground_stages,
)
from .stages import BlockRecord, BlockTask, StageContext
from .timeline import StageTimeline


class _Turnstile:
    """Admit ticket holders strictly in ticket order.

    The determinism gate of the discover lane: worker ``j`` may only enter
    the engine after worker ``j - 1`` has left it, so shared-state mutation
    order is identical to the serial schedule no matter how many pool
    threads exist.  The turn advances even when the holder raises, so an
    error unwinds the lane instead of deadlocking it; :meth:`abort` wakes
    every worker still waiting for its turn during teardown, so a failed run
    can join the pool without stranding parked threads.
    """

    def __init__(self) -> None:
        self._turn = 0
        self._aborted = False
        self._cond = threading.Condition()

    @contextmanager
    def turn(self, ticket: int, trace=None, block: tuple[int, int] | None = None):
        """Hold ticket ``ticket``'s turn.  With ``trace`` set, the waiting
        portion (entry to admission) is recorded as a ``turnstile_wait``
        span on the calling worker thread."""
        t0 = time.perf_counter() if trace is not None else 0.0
        with self._cond:
            while self._turn != ticket and not self._aborted:
                self._cond.wait()
            if self._aborted:
                raise RuntimeError("discover turnstile aborted (run torn down)")
        if trace is not None:
            trace.add_span(
                "turnstile_wait", "wait", t0, time.perf_counter(),
                lane="discover", block=block,
            )
        try:
            yield
        finally:
            with self._cond:
                self._turn += 1
                self._cond.notify_all()

    def abort(self) -> None:
        """Wake all waiters with an error (executor teardown)."""
        with self._cond:
            self._aborted = True
            self._cond.notify_all()


@dataclass
class ThreadedScheduler(Scheduler):
    """Speculative depth-``k`` pre-blocking on a real worker pool.

    Parameters
    ----------
    depth:
        Speculative discovery depth ``k``: while block ``b`` is aligned,
        the discover stages of blocks ``b+1..b+k`` are in flight.  ``1``
        is classic §VI-C pre-blocking (one block ahead).
    max_workers:
        Worker threads in the discover pool (``None`` = 1).  The discover
        lane is deliberately **sequential**: discovers execute strictly in
        block order (the determinism turnstile), matching both the FIFO
        background lane of the :class:`~repro.mpi.costmodel.OverlapWindow`
        clock model and the serial schedule's shared-state mutation order
        that the bit-identity guarantee rests on.  One worker therefore
        carries the lane at full speed; extra workers change how the queue
        is carried, never what is computed or how fast the lane drains —
        the knob exists so tests can assert that thread count is
        result-invariant.  Parallelism lives between the discover lane and
        the main thread's align lane.
    """

    name: str = "threaded"
    depth: int = 1
    max_workers: int | None = None

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("depth must be >= 1")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1 (or None)")

    def run(self, tasks: list[BlockTask], ctx: StageContext) -> ScheduleOutcome:
        depth = int(self.depth)
        timeline = StageTimeline(scheduler=self.name, preblock_depth=depth)
        if not tasks:
            return ScheduleOutcome(records=[], timeline=timeline)

        num_blocks = len(tasks)
        workers = self.max_workers if self.max_workers is not None else 1
        if ctx.accumulator.max_live_blocks is None:
            # the executor's memory contract: current block + k speculative
            ctx.accumulator.max_live_blocks = depth + 1
        turnstile = _Turnstile()

        def discover_job(index: int, task: BlockTask) -> None:
            # ordered lane: admission and engine entry happen inside the
            # turn, so slots are granted oldest-block-first and all shared
            # state mutates in serial-schedule order
            coords = (task.block_row, task.block_col)
            with turnstile.turn(index, trace=ctx.trace, block=coords):
                with maybe_span(
                    ctx.trace, "admission_wait", "wait", lane="discover", block=coords
                ):
                    ctx.accumulator.admit_block()
                task.discover(ctx)

        records: list[BlockRecord] = []
        kernel_seconds = 0.0
        measured_align = 0.0
        measured_discover = 0.0
        align_per_block: list[np.ndarray] = []
        phase_timer = Timer()
        futures: dict[int, object] = {}
        pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="discover")
        failed = False
        try:
            with phase_timer:

                def ensure_submitted(upto: int) -> None:
                    for j in range(len(futures), min(upto, num_blocks - 1) + 1):
                        futures[j] = pool.submit(discover_job, j, tasks[j])

                ensure_submitted(depth)
                for index, task in enumerate(tasks):
                    futures[index].result()  # discover(b) must be complete
                    _charge_sparse(ctx, task.sparse_seconds, 1.0)
                    measured_discover += task.discover_wall_seconds
                    # keep k discovers in flight beyond the current block
                    ensure_submitted(index + depth)

                    # no synthetic contention multipliers: under the measured
                    # clock contention is already in the measured seconds,
                    # under the modeled clock the executor charges what the
                    # model produced
                    record, output, align_sched = _run_foreground_stages(
                        task, ctx, timeline
                    )
                    kernel_seconds += output.kernel_seconds
                    measured_align += output.measured_seconds
                    align_per_block.append(align_sched)
                    records.append(record)
        except BaseException:
            failed = True
            raise
        finally:
            if failed:
                # a failed run must wake *every* lane a worker can be parked
                # in before joining the pool: later-block workers may be
                # blocked in the accumulator's admission gate (their blocks
                # can never be drained once the main thread stops aligning)
                # or still waiting for their discover turn — aborting only
                # one lane would leave shutdown(wait=True) joining a thread
                # that can never wake
                ctx.accumulator.abort_admission()
                turnstile.abort()
            pool.shutdown(wait=True, cancel_futures=True)

        # ---- derive the per-rank clock by replaying the executed schedule
        # through the shared depth-k overlap algebra (same invariant as the
        # modeled scheduler: align + spgemm - overlap_hidden == clock)
        clock = np.zeros(ctx.comm.size)
        window = OverlapWindow(ctx.comm.ledger, clock, OVERLAP_HIDDEN_CATEGORY)
        window.run_schedule(
            align_per_block,
            [record.sparse_seconds_per_rank for record in records],
            depth=depth,
        )

        timeline.combined_per_rank = clock
        timeline.measured_phase_seconds = phase_timer.elapsed
        return ScheduleOutcome(
            records=records,
            timeline=timeline,
            kernel_seconds=kernel_seconds,
            measured_align_seconds=measured_align,
            measured_discover_seconds=measured_discover,
        )
