"""Process-pool executor: a GIL-free discover lane over shared memory.

:class:`~repro.core.engine.executor.ThreadedScheduler` overlaps the discover
lane with the foreground align lane on *threads* — genuine concurrency for
the NumPy-heavy SpGEMM only to the extent the kernels release the GIL.
:class:`ProcessScheduler` runs the same speculative depth-``k`` schedule with
the discover lane in worker **processes**: the Python interpreter of the
SUMMA stage loop no longer shares the GIL with the aligner, so the overlap
gain survives pure-Python hot loops.  Results stay bit-identical to
:class:`~repro.core.engine.schedulers.SerialScheduler` — records, edges,
stats and every deterministic ledger category — for every depth and worker
count (asserted in ``tests/test_engine.py``).

Three mechanisms replace the threaded executor's shared-state machinery:

**Pure workers, parent-ordered replay.**  A worker computes its block
against a *forked copy* of the run state and mutates nothing the parent can
see.  Before computing it swaps a :class:`RecordingLedger` into its copy of
the communicator (both ``comm.ledger`` and ``comm.collectives.ledger`` —
they alias one object), so every ``charge``/``count`` the SUMMA stages make
is applied locally (``summa`` reads ``per_rank`` to derive its comm delta)
*and* recorded as an ordered event list.  The parent replays those events —
and the engine's ``blocks_computed``/``total_stats``/``peak_block_bytes``
mutations, the accumulator admission, and the cache snapshot — strictly in
block order as it consumes results.  Same charges, same order, same starting
state: float sums land bit-identically to the serial schedule, without any
cross-process turnstile.

**Shared-memory block transport.**  The block's per-rank COO arrays travel
through one ``multiprocessing.shared_memory`` segment per block (name
``repro-psched-{token}-{index}``, parent-chosen so crashed runs can be swept
by name); only a small picklable :class:`_BlockHeader` (array layout, stats,
timings, ledger events) crosses the pipe.  The parent maps the arrays
zero-copy into :class:`~repro.sparse.coo.CooMatrix` views and unlinks the
segment once the block is accumulated and discarded.  A failed run unlinks
every segment that was or could have been created, so ``/dev/shm`` never
leaks (fault-injection test in ``tests/test_engine.py``).

**Shared admission and overlap algebra.**  The parent reserves the
accumulator's live-block slot at submission time, in block order, so
speculation is memory-bounded to ``depth + 1`` live blocks exactly like the
threaded executor; the per-rank clock is closed through the same
:class:`repro.mpi.costmodel.OverlapWindow` replay, so
``align + spgemm − overlap_hidden == combined clock`` holds per rank.

Requires the ``fork`` start method (the workers inherit the run state
instead of pickling it); :meth:`ProcessScheduler.run` raises a clear error
on platforms without it.
"""

from __future__ import annotations

import itertools
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context, shared_memory

import numpy as np

from ...distsparse.blocked_summa import OutputBlock
from ...distsparse.summa import SummaResult
from ...metrics.timers import Timer, time_call
from ...mpi.costmodel import CostLedger, OverlapWindow
from ...obs import MetricsHub, activate_metrics
from ...sparse.coo import CooMatrix
from ...trace import TraceRecorder, activate, maybe_span
from .cache import LANE_COUNTERS, CachedBlock, lane_time_categories
from .schedulers import (
    OVERLAP_HIDDEN_CATEGORY,
    ScheduleOutcome,
    Scheduler,
    _charge_sparse,
    _run_foreground_stages,
)
from .stages import BlockRecord, BlockTask, StageContext
from .timeline import StageTimeline


class RecordingLedger(CostLedger):
    """A :class:`~repro.mpi.costmodel.CostLedger` that journals every mutation.

    Charges and counts are applied to the local (fresh, zero-initialized)
    ledger as usual — ``summa`` reads ``per_rank`` of the comm category to
    derive its per-block comm delta, so reads must keep working — and every
    mutation is appended to :attr:`events` in call order.  The parent replays
    the journal onto the real ledger in block order; since ``charge`` is a
    plain ``+=`` of the recorded value, replay reproduces the serial
    schedule's float sums bit for bit.
    """

    def __init__(self, nranks: int) -> None:
        super().__init__(nranks)
        self.events: list[tuple] = []

    def charge(self, rank: int, category: str, seconds: float) -> None:
        super().charge(rank, category, seconds)
        self.events.append(("charge", int(rank), category, float(seconds)))

    def charge_all(self, category: str, seconds) -> None:
        super().charge_all(category, seconds)
        arr = np.broadcast_to(np.asarray(seconds, dtype=np.float64), (self.nranks,)).copy()
        self.events.append(("charge_all", category, arr))

    def count(self, rank: int, counter: str, amount: float = 1.0) -> None:
        super().count(rank, counter, amount)
        self.events.append(("count", int(rank), counter, float(amount)))

    def count_all(self, counter: str, amounts) -> None:
        super().count_all(counter, amounts)
        arr = np.broadcast_to(np.asarray(amounts, dtype=np.float64), (self.nranks,)).copy()
        self.events.append(("count_all", counter, arr))


def replay_ledger_events(ledger: CostLedger, events: list[tuple]) -> None:
    """Apply a :class:`RecordingLedger` journal onto ``ledger``, in order."""
    for event in events:
        kind = event[0]
        if kind == "charge":
            ledger.charge(event[1], event[2], event[3])
        elif kind == "count":
            ledger.count(event[1], event[2], event[3])
        elif kind == "charge_all":
            ledger.charge_all(event[1], event[2])
        elif kind == "count_all":
            ledger.count_all(event[1], event[2])
        else:  # pragma: no cover - journal is produced by RecordingLedger only
            raise ValueError(f"unknown ledger event kind {kind!r}")


# --------------------------------------------------------------------------- shm transport
#: Prefix of every segment this executor creates; the fault-injection test
#: asserts no ``/dev/shm`` entry with this prefix survives a run.
SEGMENT_PREFIX = "repro-psched"

_ALIGNMENT = 16
_TOKEN_COUNTER = itertools.count()


def _segment_name(token: str, index: int) -> str:
    return f"{SEGMENT_PREFIX}-{token}-{index}"


def _align_up(nbytes: int) -> int:
    return (nbytes + _ALIGNMENT - 1) & ~(_ALIGNMENT - 1)


@dataclass
class _BlockHeader:
    """The picklable part of one worker result (arrays travel via shm)."""

    index: int
    worker_pid: int
    discover_wall_seconds: float
    #: cache hit: the entry itself ships over the pipe, no shm segment
    entry: CachedBlock | None = None
    #: miss: shm layout + everything needed to rebuild the OutputBlock
    shm_name: str | None = None
    shm_bytes: int = 0
    #: per rank: (rows_offset, cols_offset, values_offset, nnz, values_descr)
    rank_specs: list[tuple] | None = None
    result_shape: tuple[int, int] | None = None
    stats: object = None
    comm_seconds: float = 0.0
    compute_seconds_per_rank: np.ndarray | None = None
    flops_per_rank: np.ndarray | None = None
    sparse_seconds: np.ndarray | None = None
    ledger_events: list[tuple] = field(default_factory=list)
    #: spans/counters the worker recorded for this block (same journaling
    #: pattern as ``ledger_events``); merged into the parent recorder with
    #: the worker's pid attribution intact, in block order
    trace_spans: list = field(default_factory=list)
    trace_counters: list = field(default_factory=list)
    #: metrics events the worker's journaling hub recorded for this block
    #: (SUMMA kernel dispatch records); merged parent-side in block order
    metrics_events: list = field(default_factory=list)


def _ship_result(result: SummaResult, segment_name: str):
    """Write a SUMMA result's per-rank arrays into one shm segment.

    Returns ``(shm_name, total_bytes, rank_specs)``; an all-empty result
    ships no segment at all (``shm_name=None``).
    """
    layout = []
    total = 0
    for piece in result.per_rank:
        if piece.nnz:
            rows_off = total
            total = _align_up(rows_off + piece.rows.nbytes)
            cols_off = total
            total = _align_up(cols_off + piece.cols.nbytes)
            vals_off = total
            total = _align_up(vals_off + piece.values.nbytes)
        else:
            rows_off = cols_off = vals_off = 0
        layout.append((rows_off, cols_off, vals_off))
    specs = [
        (r, c, v, piece.nnz, np.lib.format.dtype_to_descr(piece.values.dtype))
        for piece, (r, c, v) in zip(result.per_rank, layout)
    ]
    if total == 0:
        return None, 0, specs
    shm = shared_memory.SharedMemory(name=segment_name, create=True, size=total)
    try:
        for piece, (rows_off, cols_off, vals_off) in zip(result.per_rank, layout):
            if not piece.nnz:
                continue
            shape = (piece.nnz,)
            np.ndarray(shape, dtype=np.int64, buffer=shm.buf, offset=rows_off)[:] = piece.rows
            np.ndarray(shape, dtype=np.int64, buffer=shm.buf, offset=cols_off)[:] = piece.cols
            np.ndarray(shape, dtype=piece.values.dtype, buffer=shm.buf, offset=vals_off)[
                :
            ] = piece.values
    finally:
        # the worker's mapping only; the parent attaches by name and unlinks
        shm.close()
    return segment_name, total, specs


class _ShmBlock:
    """Parent-side zero-copy view of a shipped block; owns the segment."""

    def __init__(self, header: _BlockHeader) -> None:
        self.nbytes = header.shm_bytes
        self._shm = None
        if header.shm_name is not None:
            self._shm = shared_memory.SharedMemory(name=header.shm_name)
        per_rank: list[CooMatrix] = []
        for rows_off, cols_off, vals_off, nnz, descr in header.rank_specs:
            dtype = np.lib.format.descr_to_dtype(descr)
            if nnz:
                shape = (nnz,)
                rows = np.ndarray(shape, dtype=np.int64, buffer=self._shm.buf, offset=rows_off)
                cols = np.ndarray(shape, dtype=np.int64, buffer=self._shm.buf, offset=cols_off)
                values = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=vals_off)
            else:
                rows = np.empty(0, dtype=np.int64)
                cols = np.empty(0, dtype=np.int64)
                values = np.empty(0, dtype=dtype)
            per_rank.append(CooMatrix(header.result_shape, rows, cols, values, check=False))
        self.per_rank = per_rank

    def release(self) -> None:
        """Unlink the segment and drop the mappings.

        Called after ``accumulate`` discarded the block, so the COO views are
        the last references; ``unlink`` first — it removes the ``/dev/shm``
        name unconditionally, whereas ``close`` can only unmap once every
        exported view is gone (a straggler view just delays the unmap to GC,
        never the unlink).
        """
        self.per_rank = []
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        try:
            shm.close()
        except BufferError:  # pragma: no cover - view lifetime is deterministic
            pass


def _sweep_segments(token: str, num_blocks: int) -> None:
    """Unlink every segment a run could have created (teardown hygiene).

    Runs after the pool has been joined, so no worker can re-create a
    segment behind the sweep; segments never created (or already consumed
    and unlinked) are simply absent.
    """
    for index in range(num_blocks):
        try:
            shm = shared_memory.SharedMemory(name=_segment_name(token, index))
        except FileNotFoundError:
            continue
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        shm.close()


# --------------------------------------------------------------------------- worker side
#: The run context workers inherit through fork.  Set by the parent before
#: the pool exists; workers treat it as read-only apart from swapping their
#: private ledger copy.
_WORKER_CTX: StageContext | None = None

#: The worker process's own span recorder (fresh, parent epoch) — built
#: lazily on first traced block and reused for the worker's lifetime.  The
#: forked copy of the *parent* recorder is never appended to: it already
#: holds the parent's pre-fork spans, and appending would duplicate them
#: on every block header.  ``perf_counter`` is CLOCK_MONOTONIC system-wide
#: on Linux, so the parent epoch is a valid origin in the fork.
_WORKER_TRACE: TraceRecorder | None = None


def _worker_trace(ctx: StageContext) -> TraceRecorder | None:
    """The per-process worker recorder (None when the run is untraced)."""
    global _WORKER_TRACE
    if ctx.trace is None:
        return None
    if _WORKER_TRACE is None:
        _WORKER_TRACE = TraceRecorder(epoch=ctx.trace.epoch)
        # deep sites (the SUMMA stage loop) find the recorder through the
        # active-tracer global; re-point the fork's copy at the worker's own
        activate(_WORKER_TRACE)
    return _WORKER_TRACE


#: The worker process's own journaling metrics hub — same lifecycle as
#: :data:`_WORKER_TRACE`: built lazily, re-pointing the forked copy of the
#: active-hub global so the SUMMA stage loop records into the worker's own
#: journal instead of the (forked, dead-end) parent hub.
_WORKER_METRICS: MetricsHub | None = None


def _worker_metrics(ctx: StageContext) -> MetricsHub | None:
    """The per-process worker hub (None when the run collects no metrics)."""
    global _WORKER_METRICS
    if ctx.metrics is None:
        return None
    if _WORKER_METRICS is None:
        _WORKER_METRICS = MetricsHub(journal=True)
        activate_metrics(_WORKER_METRICS)
    return _WORKER_METRICS


def _worker_discover(index: int, block_row: int, block_col: int, segment_name: str):
    """Compute one block in a worker process; ship the result via shm.

    Pure computation: every side effect lands either in the forked copy of
    the run state (discarded) or in the returned header for the parent to
    replay in block order.
    """
    ctx = _WORKER_CTX
    if ctx is None:  # pragma: no cover - guards against a spawn-context pool
        raise RuntimeError(
            "worker has no inherited run context; ProcessScheduler requires "
            "the 'fork' start method"
        )
    trace = _worker_trace(ctx)
    metrics = _worker_metrics(ctx)
    coords = (block_row, block_col)
    cache = ctx.cache
    if cache is not None:
        with maybe_span(
            trace, "cache_load", "cache", lane="discover", block=coords
        ) as span:
            entry = cache.load(coords)
            span.set(hit=entry is not None)
        if entry is not None:
            header = _BlockHeader(
                index=index,
                worker_pid=os.getpid(),
                discover_wall_seconds=entry.discover_wall_seconds,
                entry=entry,
            )
            if trace is not None:
                header.trace_spans, header.trace_counters = trace.drain()
            if metrics is not None:
                header.metrics_events = metrics.drain()
            return header
    # journal the discover lane's ledger traffic in this worker's forked
    # copy; comm.ledger and comm.collectives.ledger alias one object, so
    # both references must point at the recorder
    recorder = RecordingLedger(ctx.comm.nranks)
    ctx.comm.ledger = recorder
    ctx.comm.collectives.ledger = recorder
    with maybe_span(trace, "discover", "stage", lane="discover", block=coords) as span:
        block, wall_seconds = time_call(ctx.engine.compute_block, block_row, block_col)
        span.set(nnz=block.nnz, flops=float(block.result.flops_per_rank.sum()))
    result = block.result
    if ctx.params.clock == "modeled":
        sparse_seconds = np.array(
            [
                ctx.cost_model.spgemm_seconds(f) + ctx.stripe_seconds
                for f in result.flops_per_rank
            ]
        )
    else:
        sparse_seconds = np.asarray(result.compute_seconds_per_rank, dtype=float)
    with maybe_span(
        trace, "shm_ship", "transport", lane="discover", block=coords
    ) as span:
        shm_name, shm_bytes, rank_specs = _ship_result(result, segment_name)
        span.set(bytes=shm_bytes)
    header = _BlockHeader(
        index=index,
        worker_pid=os.getpid(),
        discover_wall_seconds=wall_seconds,
        shm_name=shm_name,
        shm_bytes=shm_bytes,
        rank_specs=rank_specs,
        result_shape=result.shape,
        stats=block.stats,
        comm_seconds=result.comm_seconds,
        compute_seconds_per_rank=result.compute_seconds_per_rank,
        flops_per_rank=result.flops_per_rank,
        sparse_seconds=sparse_seconds,
        ledger_events=recorder.events,
    )
    if trace is not None:
        header.trace_spans, header.trace_counters = trace.drain()
    if metrics is not None:
        header.metrics_events = metrics.drain()
    return header


# --------------------------------------------------------------------------- parent side
def _admit_block(header: _BlockHeader, task: BlockTask, ctx: StageContext):
    """Replay one worker result's discover side effects, in block order.

    This is the process executor's determinism gate (the role the threaded
    executor's turnstile plays): ledger events, engine stat merges, the
    accumulator admission and the cache snapshot all land here, on the
    parent, strictly in block index order.  Returns the attached
    :class:`_ShmBlock` (``None`` for cache hits and empty blocks shipped
    without a segment).
    """
    if ctx.trace is not None:
        # worker-journaled spans arrive with the header and merge here, in
        # block order, keeping the worker's pid/tid attribution intact
        ctx.trace.merge(header.trace_spans, header.trace_counters)
    if ctx.metrics is not None and header.metrics_events:
        # worker kernel-dispatch records, merged in the same block order
        # (ledger-fed metrics need no journal: replay_ledger_events below
        # re-fires the parent ledger's trace hook)
        ctx.metrics.merge(header.metrics_events)
    coords = (task.block_row, task.block_col)
    cache = ctx.cache
    if header.entry is not None:
        if cache is not None:
            cache.note_hit()
        with maybe_span(
            ctx.trace, "cache_replay", "cache", lane="admit", block=coords
        ):
            task._replay_discover(ctx, header.entry)
        return None
    if cache is not None:
        cache.note_miss()
    with maybe_span(
        ctx.trace, "ledger_replay", "replay", lane="admit", block=coords
    ) as span:
        replay_ledger_events(ctx.comm.ledger, header.ledger_events)
        span.set(events=len(header.ledger_events))
    shm_block = _ShmBlock(header)
    result = SummaResult(
        shape=header.result_shape,
        per_rank=shm_block.per_rank,
        stats=header.stats,
        comm_seconds=header.comm_seconds,
        compute_seconds_per_rank=header.compute_seconds_per_rank,
        flops_per_rank=header.flops_per_rank,
    )
    engine = ctx.engine
    block = OutputBlock(
        block_row=task.block_row,
        block_col=task.block_col,
        row_range=ctx.schedule.row_range(task.block_row),
        col_range=ctx.schedule.col_range(task.block_col),
        result=result,
        stats=header.stats,
    )
    # the mutations compute_block applies, replayed in serial order
    engine.blocks_computed += 1
    engine.total_stats = engine.total_stats.merge(header.stats)
    block_bytes = block.memory_bytes()
    engine.peak_block_bytes = max(engine.peak_block_bytes, block_bytes)
    task.block = block
    task.sparse_seconds = header.sparse_seconds
    task.discover_wall_seconds = header.discover_wall_seconds
    if cache is not None:
        times, counters = ctx.comm.ledger.snapshot(
            lane_time_categories(engine.compute_category), LANE_COUNTERS
        )
        task._capture = (times, counters, header.stats)
    ctx.accumulator.block_computed(block_bytes)
    return shm_block


@dataclass
class ProcessScheduler(Scheduler):
    """Speculative depth-``k`` pre-blocking on a process pool (GIL-free lane).

    Parameters
    ----------
    depth:
        Speculative discovery depth ``k``: while block ``b`` is aligned,
        the discover stages of blocks ``b+1..b+k`` are in flight in worker
        processes.  ``1`` is classic §VI-C pre-blocking.
    max_workers:
        Worker processes in the discover pool (``None`` = 1).  At most
        ``depth`` discovers are submitted beyond the block being consumed,
        so extra workers beyond ``depth`` idle; like the threaded
        executor's knob, worker count can never change results (asserted
        in the engine tests).
    """

    name: str = "process"
    depth: int = 1
    max_workers: int | None = None
    #: per-worker lane statistics of the last run (pid -> blocks/seconds),
    #: surfaced in ``stats.extras`` via the outcome
    lane_stats: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("depth must be >= 1")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1 (or None)")

    def run(self, tasks: list[BlockTask], ctx: StageContext) -> ScheduleOutcome:
        global _WORKER_CTX
        depth = int(self.depth)
        timeline = StageTimeline(scheduler=self.name, preblock_depth=depth)
        if not tasks:
            return ScheduleOutcome(records=[], timeline=timeline)
        try:
            mp_context = get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-fork platforms only
            raise RuntimeError(
                "scheduler='process' requires the 'fork' multiprocessing start "
                "method (workers inherit the run state); use scheduler="
                "'threaded' on platforms without it"
            ) from exc
        # make sure the shm resource tracker exists *before* the pool forks,
        # so parent and workers share one tracker and the worker-side
        # register / parent-side unlink pairs balance out silently
        try:  # pragma: no cover - tracker is a singleton after first use
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass

        num_blocks = len(tasks)
        workers = self.max_workers if self.max_workers is not None else 1
        if ctx.accumulator.max_live_blocks is None:
            # the executor's memory contract: current block + k speculative
            ctx.accumulator.max_live_blocks = depth + 1
        # submissions reserve their live-block slot up front, so the in-flight
        # window must fit under the admission bound (the parent is the only
        # drainer — an over-submission would deadlock, not block briefly)
        bound = ctx.accumulator.max_live_blocks
        inflight = depth if bound is None else max(0, min(depth, int(bound) - 1))
        token = f"{os.getpid():x}-{next(_TOKEN_COUNTER):x}"

        records: list[BlockRecord] = []
        kernel_seconds = 0.0
        measured_align = 0.0
        measured_discover = 0.0
        align_per_block: list[np.ndarray] = []
        lane_blocks: dict[int, int] = {}
        lane_seconds: dict[int, float] = {}
        shm_peak_block = 0
        shm_total = 0
        futures: dict[int, object] = {}
        phase_timer = Timer()
        failed = False
        previous_ctx = _WORKER_CTX
        _WORKER_CTX = ctx
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=mp_context)
        try:
            with phase_timer:

                def ensure_submitted(upto: int) -> None:
                    for j in range(len(futures) + len(records), min(upto, num_blocks - 1) + 1):
                        # block-order slot reservation: the submit window is
                        # sized so this can never block (see `inflight`)
                        with maybe_span(
                            ctx.trace,
                            "admission_wait",
                            "wait",
                            lane="submit",
                            block=(tasks[j].block_row, tasks[j].block_col),
                        ):
                            ctx.accumulator.admit_block()
                        try:
                            futures[j] = pool.submit(
                                _worker_discover,
                                j,
                                tasks[j].block_row,
                                tasks[j].block_col,
                                _segment_name(token, j),
                            )
                        except BrokenProcessPool as exc:
                            raise RuntimeError(
                                f"discover worker died before block {j} could "
                                "be submitted (killed or crashed); the run is "
                                "torn down and its shared-memory segments "
                                "unlinked"
                            ) from exc

                ensure_submitted(inflight)
                for index, task in enumerate(tasks):
                    try:
                        header = futures.pop(index).result()
                    except BrokenProcessPool as exc:
                        raise RuntimeError(
                            f"discover worker died while block {index} was in "
                            "flight (killed or crashed); the run is torn down "
                            "and its shared-memory segments unlinked"
                        ) from exc
                    shm_block = _admit_block(header, task, ctx)
                    _charge_sparse(ctx, task.sparse_seconds, 1.0)
                    measured_discover += task.discover_wall_seconds
                    lane_blocks[header.worker_pid] = lane_blocks.get(header.worker_pid, 0) + 1
                    lane_seconds[header.worker_pid] = (
                        lane_seconds.get(header.worker_pid, 0.0)
                        + header.discover_wall_seconds
                    )
                    if shm_block is not None:
                        shm_peak_block = max(shm_peak_block, shm_block.nbytes)
                        shm_total += shm_block.nbytes
                    if ctx.trace is not None:
                        # gauges picked up by the block-boundary counter sample
                        # inside _run_foreground_stages
                        ctx.trace.set_value("shm_total_bytes", float(shm_total))
                        ctx.trace.set_value(
                            "shm_peak_block_bytes", float(shm_peak_block)
                        )

                    record, output, align_sched = _run_foreground_stages(
                        task, ctx, timeline
                    )
                    kernel_seconds += output.kernel_seconds
                    measured_align += output.measured_seconds
                    align_per_block.append(align_sched)
                    records.append(record)
                    if shm_block is not None:
                        shm_block.release()
                    # keep `inflight` discovers in the pipe now that this
                    # block's live slot has been released by accumulate
                    ensure_submitted(index + 1 + inflight)
        except BaseException:
            failed = True
            raise
        finally:
            if failed:
                ctx.accumulator.abort_admission()
            pool.shutdown(wait=True, cancel_futures=True)
            _WORKER_CTX = previous_ctx
            # the pool is joined: nothing can re-create a segment behind us
            _sweep_segments(token, num_blocks)

        clock = np.zeros(ctx.comm.size)
        window = OverlapWindow(ctx.comm.ledger, clock, OVERLAP_HIDDEN_CATEGORY)
        window.run_schedule(
            align_per_block,
            [record.sparse_seconds_per_rank for record in records],
            depth=depth,
        )
        timeline.combined_per_rank = clock
        timeline.measured_phase_seconds = phase_timer.elapsed
        self.lane_stats = {
            str(pid): {
                "blocks": int(count),
                "discover_seconds": float(lane_seconds[pid]),
            }
            for pid, count in lane_blocks.items()
        }
        return ScheduleOutcome(
            records=records,
            timeline=timeline,
            kernel_seconds=kernel_seconds,
            measured_align_seconds=measured_align,
            measured_discover_seconds=measured_discover,
            extras={
                "process_lanes": self.lane_stats,
                "shm_peak_block_bytes": float(shm_peak_block),
                "shm_total_bytes": float(shm_total),
            },
        )
