"""Scheduled per-block timings and the derived Table-I report.

Schedulers append one :class:`BlockTiming` per executed block: the *raw*
per-rank sparse/align seconds (what the hardware model or measured clock
produced) and the *scheduled* seconds actually charged to the ledger (raw
times inflated by the contention multipliers of §VI-C when the overlapped
scheduler shares the node between ADEPT's host threads and the next block's
SpGEMM).  The overlapped scheduler also advances a per-rank simulated clock
as it goes — ``combined_per_rank`` is that clock at the end of the run.

:meth:`StageTimeline.preblocking_report` derives the
:class:`~repro.core.preblocking.PreblockingReport` (the Table-I row) from
those recorded timings.  The arithmetic is the same schedule algebra
``PreblockingModel.evaluate`` implements in closed form — the difference is
that here the numbers are read off a schedule that was actually executed,
not rearranged after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..preblocking import PreblockingReport


@dataclass
class BlockTiming:
    """Raw and as-scheduled per-rank seconds of one executed block."""

    block_row: int
    block_col: int
    sparse_raw: np.ndarray
    align_raw: np.ndarray
    sparse_scheduled: np.ndarray
    align_scheduled: np.ndarray


@dataclass
class StageTimeline:
    """The executed schedule: per-block timings plus the simulated clock.

    Attributes
    ----------
    scheduler:
        Name of the scheduler that produced this timeline.
    align_contention, sparse_contention:
        Multipliers relating the scheduled seconds to the raw seconds
        (1.0 under the serial scheduler).
    preblock_depth:
        Speculative discovery depth the schedule ran with (1 for the
        serial and depth-1 overlapped schedules).
    blocks:
        One :class:`BlockTiming` per executed block, in execution order.
    combined_per_rank:
        Final value of the scheduler's per-rank clock for the interleaved
        discover/align phases — simulated seconds under the modeled clock,
        real wall seconds fed through the same overlap algebra under
        ``clock="measured"``; ``None`` for schedules with no overlap.
    measured_phase_seconds:
        Actual wall-clock seconds the scheduler's stage loop took (all
        schedulers record it), so a measured-clock run can compare the real
        interleaved elapsed time against the per-stage sum; ``None`` when
        the scheduler did not time its loop.
    """

    scheduler: str
    align_contention: float = 1.0
    sparse_contention: float = 1.0
    preblock_depth: int = 1
    blocks: list[BlockTiming] = field(default_factory=list)
    combined_per_rank: np.ndarray | None = None
    measured_phase_seconds: float | None = None

    def append(self, timing: BlockTiming) -> None:
        """Record one executed block."""
        self.blocks.append(timing)

    # ------------------------------------------------------------------ derived views
    def sparse_raw_matrix(self) -> np.ndarray:
        """``(num_blocks, nranks)`` raw sparse seconds."""
        return np.stack([b.sparse_raw for b in self.blocks])

    def align_raw_matrix(self) -> np.ndarray:
        """``(num_blocks, nranks)`` raw alignment seconds."""
        return np.stack([b.align_raw for b in self.blocks])

    def preblocking_report(self, other_seconds: float = 0.0) -> PreblockingReport | None:
        """Derive the Table-I row from the executed schedule.

        Returns ``None`` when the schedule had no overlap (serial runs) or
        no blocks.  ``other_seconds`` is the remaining runtime (IO, other
        sparse work, waits) added to both totals unchanged, exactly as in
        the closed-form model.
        """
        if not self.blocks or self.combined_per_rank is None:
            return None
        sparse = self.sparse_raw_matrix()
        align = self.align_raw_matrix()
        sparse_pre = np.stack([b.sparse_scheduled for b in self.blocks])
        align_pre = np.stack([b.align_scheduled for b in self.blocks])

        align_total = float(align.sum(axis=0).max())
        sparse_total = float(sparse.sum(axis=0).max())
        sum_seconds = align_total + sparse_total
        combined = float(self.combined_per_rank.max())
        return PreblockingReport(
            blocks=len(self.blocks),
            align_seconds=align_total,
            sparse_seconds=sparse_total,
            sum_seconds=sum_seconds,
            total_seconds=sum_seconds + other_seconds,
            align_seconds_pre=float(align_pre.sum(axis=0).max()),
            sparse_seconds_pre=float(sparse_pre.sum(axis=0).max()),
            combined_seconds_pre=combined,
            total_seconds_pre=combined + other_seconds,
        )
