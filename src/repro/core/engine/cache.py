"""Content-hashed stage cache: skip recomputation without changing results.

Following the declare-then-decide design of the synpp and pisa pipeline
frameworks (stages declare their configuration and dependencies; the
framework hashes both and decides what actually has to run), every
:class:`~repro.core.engine.stages.BlockTask` gets a deterministic
content-hash key and the completed block is persisted under it:

* the **run key** hashes a canonicalized subset of
  :class:`~repro.core.params.PastisParams` (only fields that influence what
  a block computes or charges — scheduler/pre-blocking knobs are excluded,
  so a cache written by one scheduler is readable by all three), a digest of
  the input :class:`~repro.sequences.sequence.SequenceSet`, and a
  kernel/schema :data:`CACHE_VERSION` tag combined with the package version
  (bumping either invalidates everything);
* the **block key** extends the run key with the block's coordinates, index
  ranges, and content digests of the row/column operand stripes it consumes.

A :class:`StageCache` stores one ``.npz`` file per completed block in a
per-run directory, written atomically (temp file + rename via
:func:`repro.config.atomic_write_bytes`, the same hardened helper the
calibration writer uses), so a SIGKILL mid-run loses at most the in-flight
block.  Unreadable or truncated entries are treated as misses, never as
errors.

**The cache invariant: a hit is bit-identical to recomputation.**  An entry
records everything a block's execution produced *and* every externally
visible side effect it had: the similar-pair edges, the per-rank timing and
workload vectors, the block's :class:`~repro.sparse.spgemm.SpGemmStats`,
and — crucially — the absolute post-block per-rank state of the ledger
categories the discover stage charges ("comm", the measured compute
category, and the flop/byte counters).  Replay *restores* those absolute
vectors rather than re-adding per-block deltas, because float addition does
not round-trip through subtraction; everything the schedulers charge
themselves ("spgemm", "align", the overlap algebra) is recharged from the
stored raw seconds through the ordinary scheduler code paths, which is what
keeps the invariant intact across all three schedulers and makes entries
scheduler-portable.
"""

from __future__ import annotations

import hashlib
import io
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ...config import atomic_write_bytes, atomic_write_text
from ...distsparse.blocked_summa import BlockedSpGemm
from ...distsparse.distmat import DistSparseMatrix
from ...sequences.sequence import SequenceSet
from ...sparse.spgemm import SpGemmStats
from ...version import __version__
from ..align_phase import EDGE_DTYPE, BlockAlignmentOutput
from ..params import PastisParams

#: Cache schema / kernel-suite version.  Bump whenever the on-disk entry
#: layout changes or a kernel change makes previously stored results stale;
#: combined with the package version into every key (see :func:`version_tag`).
CACHE_VERSION = "2"

#: Ledger counters charged exclusively by the discover lane (inside
#: ``summa``); captured and restored per block alongside the lane's time
#: categories ("comm" plus the engine's measured compute category).
LANE_COUNTERS = ("spgemm_flops", "bytes_sent", "bytes_received")

#: npz keys of the scalar entry fields (stored as 0-d arrays).
_SCALAR_KEYS = (
    "candidates",
    "block_bytes",
    "kernel_seconds",
    "measured_align_seconds",
    "discover_wall_seconds",
    "stats_flops",
    "stats_output_nnz",
    "stats_intermediate_bytes",
    "stats_row_groups",
)

#: npz keys of the per-rank array fields.
_ARRAY_KEYS = (
    "sparse_seconds_per_rank",
    "align_seconds_per_rank",
    "pairs_per_rank",
    "cells_per_rank",
)

_LTIME_PREFIX = "ltime__"
_LCOUNT_PREFIX = "lcount__"


def version_tag() -> str:
    """The kernel/backend version component of every cache key."""
    return f"{CACHE_VERSION}:{__version__}"


def lane_time_categories(compute_category: str) -> tuple[str, ...]:
    """Ledger time categories the discover stage charges (the worker lane)."""
    return ("comm", compute_category)


# --------------------------------------------------------------------------- keys
def _update_array(h, arr: np.ndarray) -> None:
    arr = np.ascontiguousarray(arr)
    h.update(str(arr.dtype.str).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())


def _digest_matrix(matrix: np.ndarray) -> str:
    h = hashlib.sha256()
    _update_array(h, np.asarray(matrix))
    return h.hexdigest()


def params_cache_token(params: PastisParams) -> dict:
    """Canonical dict of the parameter fields that determine block results.

    Scheduler-selection knobs (``scheduler``, ``pre_blocking``,
    ``preblock_depth``, ``preblock_workers``, ``use_threads``) are excluded
    on purpose: results are bit-identical across schedulers, so entries must
    be shareable across them.  The clustering stage runs after the stage
    graph on its finished output, so ``cluster`` is excluded too.
    """
    br, bc = params.blocking_factors()
    return {
        "mode": params.mode,
        "kmer_length": params.kmer_length,
        "seed_alphabet": params.seed_alphabet,
        "substitute_kmers": params.substitute_kmers,
        "max_kmer_frequency": params.max_kmer_frequency,
        "gap_open": params.gap_open,
        "gap_extend": params.gap_extend,
        "common_kmer_threshold": params.common_kmer_threshold,
        "ani_threshold": params.ani_threshold,
        "coverage_threshold": params.coverage_threshold,
        "blocking": [br, bc],
        "load_balancing": params.load_balancing,
        "nodes": params.nodes,
        "align_batch_size": params.align_batch_size,
        "clock": params.clock,
        "alignment_mode": params.alignment_mode,
        "spgemm_backend": params.spgemm_backend,
        "batch_flops": params.batch_flops,
        "auto_compression_threshold": params.auto_compression_threshold,
        "substitution_matrix": _digest_matrix(params.scoring.matrix),
    }


def sequence_digest(sequences: SequenceSet) -> str:
    """Content digest of the input set (alignment depends on the residues
    themselves, not just the derived k-mer matrix)."""
    h = hashlib.sha256()
    h.update(sequences.alphabet.name.encode())
    _update_array(h, sequences.offsets)
    _update_array(h, sequences.data)
    return h.hexdigest()


def stripe_digest(stripe: DistSparseMatrix) -> str:
    """Content digest of one operand stripe (per-rank blocks + placement)."""
    h = hashlib.sha256()
    h.update(str(stripe.shape).encode())
    for rank in range(stripe.grid.nprocs):
        local = stripe.local(rank)
        h.update(str(stripe.offsets(rank)).encode())
        h.update(str(local.shape).encode())
        _update_array(h, local.rows)
        _update_array(h, local.cols)
        _update_array(h, local.values)
    return h.hexdigest()


def run_cache_key(
    params: PastisParams, sequences: SequenceSet, extra_digest: str | None = None
) -> str:
    """Run-level key: version tag + canonical params + input digest.

    ``extra_digest`` folds in a second content digest when the run consumes
    an input beyond ``sequences`` — query-mode runs pass the database's
    ``sequence_digest`` (two databases can share identical k-mer stripes
    yet differ in sub-k sequences' residues, which changes alignment).
    """
    h = hashlib.sha256()
    h.update(version_tag().encode())
    h.update(json.dumps(params_cache_token(params), sort_keys=True).encode())
    h.update(sequence_digest(sequences).encode())
    if extra_digest is not None:
        h.update(extra_digest.encode())
    return h.hexdigest()


# --------------------------------------------------------------------------- entries
@dataclass
class CachedBlock:
    """Everything needed to replay one completed block bit-identically."""

    candidates: int
    block_bytes: int
    sparse_seconds_per_rank: np.ndarray
    align_seconds_per_rank: np.ndarray
    pairs_per_rank: np.ndarray
    cells_per_rank: np.ndarray
    edges: np.ndarray
    kernel_seconds: float
    measured_align_seconds: float
    discover_wall_seconds: float
    stats_flops: int
    stats_output_nnz: int
    stats_intermediate_bytes: int
    stats_row_groups: int
    #: absolute post-discover per-rank ledger state of the discover lane
    ledger_times: dict[str, np.ndarray]
    ledger_counters: dict[str, np.ndarray]

    def spgemm_stats(self) -> SpGemmStats:
        """The block's SpGEMM stats (compression factor is derived)."""
        return SpGemmStats(
            flops=self.stats_flops,
            output_nnz=self.stats_output_nnz,
            intermediate_bytes=self.stats_intermediate_bytes,
            compression_factor=(
                self.stats_flops / self.stats_output_nnz if self.stats_output_nnz else 1.0
            ),
            row_groups=self.stats_row_groups,
        )

    def alignment_output(self) -> BlockAlignmentOutput:
        """Reconstruct the align stage's output for the foreground replay."""
        return BlockAlignmentOutput(
            edges=self.edges,
            pairs_aligned_per_rank=self.pairs_per_rank,
            cells_per_rank=self.cells_per_rank,
            align_seconds_per_rank=self.align_seconds_per_rank,
            kernel_seconds=self.kernel_seconds,
            measured_seconds=self.measured_align_seconds,
        )

    # ------------------------------------------------------------------ serialization
    def to_bytes(self) -> bytes:
        buffer = io.BytesIO()
        payload = {
            "candidates": np.int64(self.candidates),
            "block_bytes": np.int64(self.block_bytes),
            "kernel_seconds": np.float64(self.kernel_seconds),
            "measured_align_seconds": np.float64(self.measured_align_seconds),
            "discover_wall_seconds": np.float64(self.discover_wall_seconds),
            "stats_flops": np.int64(self.stats_flops),
            "stats_output_nnz": np.int64(self.stats_output_nnz),
            "stats_intermediate_bytes": np.int64(self.stats_intermediate_bytes),
            "stats_row_groups": np.int64(self.stats_row_groups),
            "sparse_seconds_per_rank": self.sparse_seconds_per_rank,
            "align_seconds_per_rank": self.align_seconds_per_rank,
            "pairs_per_rank": self.pairs_per_rank,
            "cells_per_rank": self.cells_per_rank,
            "edges": self.edges,
        }
        for cat, values in self.ledger_times.items():
            payload[_LTIME_PREFIX + cat] = values
        for cnt, values in self.ledger_counters.items():
            payload[_LCOUNT_PREFIX + cnt] = values
        np.savez(buffer, **payload)
        return buffer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes, nranks: int) -> "CachedBlock":
        """Parse a stored entry; raises on any malformation (callers treat
        every failure as a cache miss)."""
        with np.load(io.BytesIO(data), allow_pickle=False) as npz:
            files = set(npz.files)
            missing = (set(_SCALAR_KEYS) | set(_ARRAY_KEYS) | {"edges"}) - files
            if missing:
                raise ValueError(f"cache entry missing fields: {sorted(missing)}")
            arrays = {key: npz[key] for key in _ARRAY_KEYS}
            for key, arr in arrays.items():
                if arr.shape != (nranks,):
                    raise ValueError(
                        f"cache entry field {key!r} has shape {arr.shape}, "
                        f"expected ({nranks},)"
                    )
            edges = npz["edges"]
            if edges.dtype != EDGE_DTYPE:
                raise ValueError(f"cache entry edges have dtype {edges.dtype}")
            times: dict[str, np.ndarray] = {}
            counters: dict[str, np.ndarray] = {}
            for key in files:
                if key.startswith(_LTIME_PREFIX):
                    times[key[len(_LTIME_PREFIX):]] = npz[key]
                elif key.startswith(_LCOUNT_PREFIX):
                    counters[key[len(_LCOUNT_PREFIX):]] = npz[key]
            for name, vec in {**times, **counters}.items():
                if vec.shape != (nranks,):
                    raise ValueError(
                        f"cache entry ledger vector {name!r} has shape {vec.shape}"
                    )
            return cls(
                candidates=int(npz["candidates"]),
                block_bytes=int(npz["block_bytes"]),
                sparse_seconds_per_rank=arrays["sparse_seconds_per_rank"],
                align_seconds_per_rank=arrays["align_seconds_per_rank"],
                pairs_per_rank=arrays["pairs_per_rank"],
                cells_per_rank=arrays["cells_per_rank"],
                edges=edges,
                kernel_seconds=float(npz["kernel_seconds"]),
                measured_align_seconds=float(npz["measured_align_seconds"]),
                discover_wall_seconds=float(npz["discover_wall_seconds"]),
                stats_flops=int(npz["stats_flops"]),
                stats_output_nnz=int(npz["stats_output_nnz"]),
                stats_intermediate_bytes=int(npz["stats_intermediate_bytes"]),
                stats_row_groups=int(npz["stats_row_groups"]),
                ledger_times=times,
                ledger_counters=counters,
            )


# --------------------------------------------------------------------------- cache
@dataclass
class StageCache:
    """Disk-backed per-block result cache consulted by every scheduler.

    ``keys`` maps block coordinates to their content-hash keys (computed
    once per run by :func:`build_stage_cache`).  ``read=False`` (the
    ``cache_invalidate`` knob) skips lookups and overwrites entries;
    ``write=False`` makes the cache read-only.  Lookup/store counters are
    thread-safe — the threaded executor loads entries on worker threads
    while the main thread stores completed blocks.
    """

    directory: Path
    keys: dict[tuple[int, int], str]
    nranks: int
    read: bool = True
    write: bool = True
    hits: int = 0
    misses: int = 0
    stores: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def entry_path(self, block: tuple[int, int]) -> Path:
        r, c = block
        return self.directory / f"block-r{r}-c{c}-{self.keys[block][:16]}.npz"

    def load(self, block: tuple[int, int]) -> CachedBlock | None:
        """The stored entry for a block, or ``None`` (miss).

        A corrupted, truncated or otherwise unreadable entry is a miss, not
        an error: the block simply recomputes (and the store overwrites the
        bad file).
        """
        if not self.read:
            return None
        entry: CachedBlock | None = None
        path = self.entry_path(block)
        try:
            entry = CachedBlock.from_bytes(path.read_bytes(), self.nranks)
        except FileNotFoundError:
            entry = None
        except Exception:
            # unreadable/corrupt entry: recompute rather than crash
            entry = None
        with self._lock:
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
        return entry

    def store(self, block: tuple[int, int], entry: CachedBlock) -> None:
        """Persist a completed block atomically (temp file + rename)."""
        if not self.write:
            return
        atomic_write_bytes(self.entry_path(block), entry.to_bytes())
        with self._lock:
            self.stores += 1

    def note_hit(self) -> None:
        """Record a hit observed elsewhere (e.g. in a worker process).

        The process executor's workers consult their *forked copies* of the
        cache, whose counters the parent never sees; the parent mirrors each
        worker-side lookup through :meth:`note_hit`/:meth:`note_miss` so
        ``counters()`` reports the same numbers every other scheduler would.
        """
        with self._lock:
            self.hits += 1

    def note_miss(self) -> None:
        """Record a miss observed elsewhere (see :meth:`note_hit`)."""
        with self._lock:
            self.misses += 1

    def counters(self) -> dict[str, int]:
        """Hit/miss/store counts for ``stats.extras`` and run reports."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


def build_stage_cache(
    params: PastisParams,
    sequences: SequenceSet,
    engine: BlockedSpGemm,
    *,
    read: bool = True,
    write: bool = True,
    extra_digest: str | None = None,
) -> StageCache:
    """Key every block of the run and open (or create) its cache directory.

    Row/column stripe digests are computed once per block row/column — the
    same stripes ``compute_block`` re-slices per block — so a block's key
    covers exactly the inputs it consumes.  A human-readable ``manifest.json``
    (version tag + canonical params + input digest) is dropped next to the
    entries for debuggability.  ``extra_digest`` is folded into the run key
    (see :func:`run_cache_key`); query-mode runs pass the database index's
    sequence digest.
    """
    schedule = engine.schedule
    run_key = run_cache_key(params, sequences, extra_digest)
    row_digests = {
        r: stripe_digest(engine.a.row_stripe(schedule.row_range(r)))
        for r in range(schedule.br)
    }
    col_digests = {
        c: stripe_digest(engine.b.col_stripe(schedule.col_range(c)))
        for c in range(schedule.bc)
    }
    keys: dict[tuple[int, int], str] = {}
    for r in range(schedule.br):
        for c in range(schedule.bc):
            h = hashlib.sha256()
            h.update(run_key.encode())
            h.update(f"block:{r}:{c}".encode())
            h.update(str(schedule.row_range(r)).encode())
            h.update(str(schedule.col_range(c)).encode())
            h.update(row_digests[r].encode())
            h.update(col_digests[c].encode())
            keys[(r, c)] = h.hexdigest()
    directory = Path(params.cache_dir) / f"run-{run_key[:16]}"
    directory.mkdir(parents=True, exist_ok=True)
    manifest = directory / "manifest.json"
    if not manifest.exists():
        atomic_write_text(
            manifest,
            json.dumps(
                {
                    "version_tag": version_tag(),
                    "params": params_cache_token(params),
                    "sequence_digest": sequence_digest(sequences),
                    "extra_digest": extra_digest,
                    "run_key": run_key,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
        )
    return StageCache(
        directory=directory,
        keys=keys,
        nranks=params.nodes,
        read=read,
        write=write,
    )


# --------------------------------------------------------------------------- maintenance CLI
#
# ``python -m repro.core.engine.cache ls|gc`` — the operational counterpart of
# the cache: long-lived cache directories accumulate run directories whose
# inputs no longer exist, and a resumable-run workflow needs a way to see and
# bound what is on disk without poking at the file layout by hand.


def list_cache(cache_dir: str | Path) -> list[dict]:
    """Inventory of a cache directory: one row per run directory.

    Each row reports the run directory name, its entry count, total entry
    bytes, and the age in seconds of its oldest and newest entries (ages are
    ``None`` for a run directory holding only a manifest).
    """
    import time

    now = time.time()
    rows: list[dict] = []
    root = Path(cache_dir)
    if not root.is_dir():
        return rows
    for run_dir in sorted(p for p in root.iterdir() if p.is_dir() and p.name.startswith("run-")):
        entries = sorted(run_dir.glob("block-*.npz"))
        mtimes = [entry.stat().st_mtime for entry in entries]
        rows.append(
            {
                "run": run_dir.name,
                "entries": len(entries),
                "bytes": sum(entry.stat().st_size for entry in entries),
                "oldest_age_seconds": (now - min(mtimes)) if mtimes else None,
                "newest_age_seconds": (now - max(mtimes)) if mtimes else None,
            }
        )
    return rows


def gc_cache(
    cache_dir: str | Path,
    max_age_days: float | None = None,
    max_bytes: int | None = None,
    dry_run: bool = False,
) -> dict:
    """Collect cache entries by age and/or total-size budget.

    Entries older than ``max_age_days`` are removed first; if the surviving
    total still exceeds ``max_bytes``, further entries are removed oldest
    first until the budget holds.  Run directories left without entries are
    removed along with their manifest.  Returns a summary dict with the
    removed/kept entry counts and bytes (``dry_run=True`` only reports).
    """
    import time

    now = time.time()
    root = Path(cache_dir)
    entries: list[tuple[float, int, Path]] = []  # (mtime, size, path)
    if root.is_dir():
        for run_dir in root.iterdir():
            if run_dir.is_dir() and run_dir.name.startswith("run-"):
                for entry in run_dir.glob("block-*.npz"):
                    stat = entry.stat()
                    entries.append((stat.st_mtime, stat.st_size, entry))
    entries.sort()  # oldest first
    doomed: list[tuple[float, int, Path]] = []
    kept = list(entries)
    if max_age_days is not None:
        cutoff = now - max_age_days * 86400.0
        doomed = [item for item in kept if item[0] < cutoff]
        kept = [item for item in kept if item[0] >= cutoff]
    if max_bytes is not None:
        total = sum(size for _, size, _ in kept)
        while kept and total > max_bytes:
            item = kept.pop(0)  # oldest survivor goes first
            doomed.append(item)
            total -= item[1]
    if not dry_run:
        emptied: set[Path] = set()
        for _, _, path in doomed:
            path.unlink(missing_ok=True)
            emptied.add(path.parent)
        for run_dir in emptied:
            if not any(run_dir.glob("block-*.npz")):
                (run_dir / "manifest.json").unlink(missing_ok=True)
                try:
                    run_dir.rmdir()
                except OSError:
                    pass  # something else lives there; leave it
    return {
        "removed_entries": len(doomed),
        "removed_bytes": sum(size for _, size, _ in doomed),
        "kept_entries": len(kept),
        "kept_bytes": sum(size for _, size, _ in kept),
        "dry_run": dry_run,
    }


def _format_age(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds < 3600:
        return f"{seconds / 60:.0f}m"
    if seconds < 86400:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.core.engine.cache ls|gc`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.core.engine.cache",
        description="Inspect and garbage-collect the content-hashed stage cache.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    ls_parser = sub.add_parser("ls", help="list run directories with sizes and ages")
    ls_parser.add_argument("cache_dir", help="cache directory (PastisParams.cache_dir)")
    gc_parser = sub.add_parser("gc", help="remove entries by age and/or size budget")
    gc_parser.add_argument("cache_dir", help="cache directory (PastisParams.cache_dir)")
    gc_parser.add_argument(
        "--max-age-days", type=float, default=None,
        help="remove entries older than this many days",
    )
    gc_parser.add_argument(
        "--max-bytes", type=int, default=None,
        help="remove oldest entries until the total is under this many bytes",
    )
    gc_parser.add_argument(
        "--dry-run", action="store_true", help="report what would be removed, remove nothing"
    )
    args = parser.parse_args(argv)

    if args.command == "ls":
        rows = list_cache(args.cache_dir)
        if not rows:
            print(f"no run directories under {args.cache_dir}")
            return 0
        print(f"{'run':<42} {'entries':>7} {'bytes':>12} {'oldest':>7} {'newest':>7}")
        for row in rows:
            print(
                f"{row['run']:<42} {row['entries']:>7} {row['bytes']:>12} "
                f"{_format_age(row['oldest_age_seconds']):>7} "
                f"{_format_age(row['newest_age_seconds']):>7}"
            )
        total_entries = sum(row["entries"] for row in rows)
        total_bytes = sum(row["bytes"] for row in rows)
        print(f"{'total':<42} {total_entries:>7} {total_bytes:>12}")
        return 0

    if args.max_age_days is None and args.max_bytes is None:
        parser.error("gc needs --max-age-days and/or --max-bytes")
    summary = gc_cache(
        args.cache_dir,
        max_age_days=args.max_age_days,
        max_bytes=args.max_bytes,
        dry_run=args.dry_run,
    )
    verb = "would remove" if summary["dry_run"] else "removed"
    print(
        f"{verb} {summary['removed_entries']} entries ({summary['removed_bytes']} bytes); "
        f"kept {summary['kept_entries']} entries ({summary['kept_bytes']} bytes)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
