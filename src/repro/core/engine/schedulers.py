"""Schedulers: who runs which stage when, and what the ledger is charged.

The scheduler contract is deliberately small::

    outcome = scheduler.run(tasks, ctx)   # tasks: list[BlockTask]

A scheduler must execute every stage of every task exactly once, respecting
the per-task stage order (discover → prune → align → accumulate), stream
results through ``ctx.accumulator``, charge the per-rank cost ledger for the
sparse and alignment work it schedules, and return a
:class:`ScheduleOutcome` with the per-block records and the executed
:class:`~repro.core.engine.timeline.StageTimeline`.  Everything else — task
ordering across blocks, interleaving, contention charging — is scheduler
policy.

:class:`SerialScheduler` reproduces the historical monolithic pipeline loop
bit-for-bit: stages run strictly in block order and raw component times are
charged.

:class:`OverlappedScheduler` implements §VI-C pre-blocking on the simulated
clock: ``discover(b+1)`` is issued while block ``b`` is aligned, both
components are charged with the paper's measured contention slowdowns
(~1.13x for alignment; ``1.10 + 0.006 · num_blocks`` for the sparse
multiply, growing with the block count), and the per-rank clock advances by
``max(align(b), discover(b+1))`` per step — the schedule *is* the
computation, not post-hoc arithmetic.  The time hidden by the overlap
(``min(align(b), discover(b+1))`` per step) is charged to the informational
``overlap_hidden`` ledger category, so per-rank clock and ledger stay
reconcilable: ``align + spgemm − overlap_hidden == combined clock``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...metrics.timers import Timer
from ...mpi.costmodel import charge_overlap_slot
from ..align_phase import BlockAlignmentOutput
from ..preblocking import PreblockingModel
from .stages import BlockRecord, BlockTask, StageContext
from .timeline import BlockTiming, StageTimeline

#: Ledger category holding the per-rank seconds hidden by pre-blocking
#: overlap (charged by :class:`OverlappedScheduler` only; excluded from
#: reported totals).
OVERLAP_HIDDEN_CATEGORY = "overlap_hidden"


@dataclass
class ScheduleOutcome:
    """What a scheduler hands back to the pipeline."""

    records: list[BlockRecord]
    timeline: StageTimeline
    kernel_seconds: float = 0.0
    measured_align_seconds: float = 0.0
    measured_discover_seconds: float = 0.0
    #: scheduler-specific report entries merged into ``stats.extras`` by the
    #: pipeline (e.g. the process executor's per-lane timings and shm bytes)
    extras: dict = field(default_factory=dict)

    @property
    def candidates_discovered(self) -> int:
        """Total overlap elements discovered across blocks."""
        return sum(rec.candidates for rec in self.records)

    @property
    def alignments_performed(self) -> int:
        """Total pairwise alignments executed across blocks."""
        return sum(rec.aligned_pairs for rec in self.records)

    @property
    def alignment_cells(self) -> int:
        """Total DP cells updated across blocks."""
        return sum(int(rec.cells_per_rank.sum()) for rec in self.records)


def _charge_sparse(ctx: StageContext, seconds: np.ndarray, multiplier: float) -> None:
    """Charge one block's per-rank sparse seconds (scaled) to the ledger."""
    ledger = ctx.comm.ledger
    for rank in range(ctx.comm.size):
        ledger.charge(rank, "spgemm", float(seconds[rank]) * multiplier)


def _charge_alignment(
    ctx: StageContext, output: BlockAlignmentOutput, multiplier: float
) -> None:
    """Charge one block's per-rank alignment seconds (scaled) and counters."""
    ledger = ctx.comm.ledger
    for rank in range(ctx.comm.size):
        ledger.charge(rank, "align", float(output.align_seconds_per_rank[rank]) * multiplier)
        ledger.count(rank, "alignments", float(output.pairs_aligned_per_rank[rank]))
        ledger.count(rank, "alignment_cells", float(output.cells_per_rank[rank]))


def _run_foreground_stages(
    task: BlockTask,
    ctx: StageContext,
    timeline: StageTimeline,
    align_mult: float = 1.0,
    sparse_scheduled: np.ndarray | None = None,
):
    """The foreground half of one block, shared by every scheduler:
    prune -> align -> charge alignment -> accumulate -> record the timing.

    ``align_mult`` inflates the charged/scheduled alignment seconds (the
    overlapped scheduler's contention); ``sparse_scheduled`` overrides the
    timing's as-scheduled sparse seconds (raw when ``None``).  Returns
    ``(record, output, align_scheduled)``.
    """
    task.prune(ctx)
    output = task.align(ctx)
    _charge_alignment(ctx, output, align_mult)
    align_sched = (
        output.align_seconds_per_rank
        if align_mult == 1.0
        else output.align_seconds_per_rank * align_mult
    )
    record = task.accumulate(ctx)
    timeline.append(
        BlockTiming(
            block_row=task.block_row,
            block_col=task.block_col,
            sparse_raw=record.sparse_seconds_per_rank,
            align_raw=record.align_seconds_per_rank,
            sparse_scheduled=(
                record.sparse_seconds_per_rank
                if sparse_scheduled is None
                else sparse_scheduled
            ),
            align_scheduled=align_sched,
        )
    )
    if ctx.trace is not None:
        # one counter sample per block boundary: live-memory gauges, cache
        # hit/miss counters, plus every cumulative counter the recorder holds
        # (the ledger charge hooks bump per-category totals between samples)
        values = {
            "live_blocks": float(ctx.accumulator.live_blocks),
            "live_block_bytes": float(ctx.accumulator.live_block_bytes),
        }
        if ctx.cache is not None:
            cache_counters = ctx.cache.counters()
            values["cache_hits"] = float(cache_counters.get("hits", 0))
            values["cache_misses"] = float(cache_counters.get("misses", 0))
        ctx.trace.sample_counters(**values)
    return record, output, align_sched


class Scheduler:
    """Base scheduler: executes a list of block tasks against a context."""

    name: str = "base"

    def run(self, tasks: list[BlockTask], ctx: StageContext) -> ScheduleOutcome:
        """Execute every stage of every task; return records and timeline."""
        raise NotImplementedError


@dataclass
class SerialScheduler(Scheduler):
    """Bulk-synchronous execution: finish block ``b`` before starting ``b+1``.

    Stage order, ledger charges and streamed edges are bit-identical to the
    pre-engine monolithic pipeline loop (asserted by the scheduler
    equivalence harness in ``tests/test_engine.py``).
    """

    name: str = "serial"

    def run(self, tasks: list[BlockTask], ctx: StageContext) -> ScheduleOutcome:
        timeline = StageTimeline(scheduler=self.name)
        records: list[BlockRecord] = []
        kernel_seconds = 0.0
        measured_seconds = 0.0
        measured_discover = 0.0
        phase_timer = Timer()
        with phase_timer:
            for task in tasks:
                task.discover(ctx)
                _charge_sparse(ctx, task.sparse_seconds, 1.0)
                measured_discover += task.discover_wall_seconds
                record, output, _ = _run_foreground_stages(task, ctx, timeline)
                kernel_seconds += output.kernel_seconds
                measured_seconds += output.measured_seconds
                records.append(record)
        timeline.measured_phase_seconds = phase_timer.elapsed
        return ScheduleOutcome(
            records=records,
            timeline=timeline,
            kernel_seconds=kernel_seconds,
            measured_align_seconds=measured_seconds,
            measured_discover_seconds=measured_discover,
        )


@dataclass
class OverlappedScheduler(Scheduler):
    """Pre-blocking (§VI-C): discover the next block while aligning this one.

    The contention parameterization is shared with the closed-form
    :class:`~repro.core.preblocking.PreblockingModel` (which remains the
    reference for Table-I arithmetic); this scheduler *executes* the
    schedule instead of evaluating it after the run.  At most two blocks
    are live at any point: the one being aligned and the one being
    discovered.
    """

    name: str = "overlapped"
    contention: PreblockingModel = field(default_factory=PreblockingModel)

    def run(self, tasks: list[BlockTask], ctx: StageContext) -> ScheduleOutcome:
        num_blocks = len(tasks)
        align_mult = self.contention.align_contention
        sparse_mult = self.contention.sparse_contention(num_blocks)
        timeline = StageTimeline(
            scheduler=self.name,
            align_contention=align_mult,
            sparse_contention=sparse_mult,
        )
        if not tasks:
            return ScheduleOutcome(records=[], timeline=timeline)

        ledger = ctx.comm.ledger
        records: list[BlockRecord] = []
        kernel_seconds = 0.0
        measured_seconds = 0.0
        measured_discover = 0.0
        clock = np.zeros(ctx.comm.size)
        phase_timer = Timer()

        with phase_timer:
            # prologue: the first block's discovery has nothing to hide behind
            tasks[0].discover(ctx)
            _charge_sparse(ctx, tasks[0].sparse_seconds, sparse_mult)
            measured_discover += tasks[0].discover_wall_seconds
            sparse_sched_next = tasks[0].sparse_seconds * sparse_mult
            clock += sparse_sched_next

            for index, task in enumerate(tasks):
                sparse_sched = sparse_sched_next
                nxt = tasks[index + 1] if index + 1 < num_blocks else None
                if nxt is not None:
                    # CPU SpGEMM of block b+1 runs while block b is on the GPUs
                    nxt.discover(ctx)
                    _charge_sparse(ctx, nxt.sparse_seconds, sparse_mult)
                    measured_discover += nxt.discover_wall_seconds
                    sparse_sched_next = nxt.sparse_seconds * sparse_mult

                record, output, align_sched = _run_foreground_stages(
                    task, ctx, timeline,
                    align_mult=align_mult,
                    sparse_scheduled=sparse_sched,
                )
                kernel_seconds += output.kernel_seconds
                measured_seconds += output.measured_seconds
                records.append(record)

                if nxt is not None:
                    # the slot costs the slower of the two co-scheduled stages;
                    # the hidden remainder is ledgered for reconciliation
                    charge_overlap_slot(
                        ledger, clock, align_sched, sparse_sched_next, OVERLAP_HIDDEN_CATEGORY
                    )
                else:
                    # epilogue: the last block's alignment runs alone
                    clock += align_sched

        timeline.combined_per_rank = clock
        timeline.measured_phase_seconds = phase_timer.elapsed
        return ScheduleOutcome(
            records=records,
            timeline=timeline,
            kernel_seconds=kernel_seconds,
            measured_align_seconds=measured_seconds,
            measured_discover_seconds=measured_discover,
        )


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Factory: ``"serial"``, ``"overlapped"``, ``"threaded"`` or ``"process"``.

    Keyword arguments go to the scheduler — the threaded and process
    executors take ``depth`` (speculative discovery depth) and
    ``max_workers`` (discover pool size).
    """
    if name == "serial":
        return SerialScheduler(**kwargs)
    if name == "overlapped":
        return OverlappedScheduler(**kwargs)
    if name == "threaded":
        from .executor import ThreadedScheduler  # circular-import guard

        return ThreadedScheduler(**kwargs)
    if name == "process":
        from .process_executor import ProcessScheduler  # circular-import guard

        return ProcessScheduler(**kwargs)
    raise ValueError(
        f"unknown scheduler {name!r}; available: serial, overlapped, threaded, process"
    )
