"""The two load-balancing schemes of §VI-B.

The overlap matrix is symmetric (``C[i,j]`` and ``C[j,i]`` describe the same
pairwise alignment), so half of the discovery and alignment work can be
avoided — but with blocked formation this must be done carefully or entire
process-grid portions idle.  The paper proposes two schemes:

**Triangularity-based** — only blocks whose intersection with the strictly
upper triangle is non-empty are computed.  Blocks are classified as

* *full*: entirely above the diagonal — every element is aligned;
* *partial*: straddling the diagonal — only the strictly-upper elements are
  aligned (the source of load imbalance: ranks owning the lower-triangle
  part of such a block have nothing to align);
* *avoidable*: entirely on/below the diagonal — neither computed nor aligned.

**Index-based** — every block is computed, and elements are pruned by the
parity rule (keep lower-triangle elements with equal index parity, upper-
triangle elements with opposite parity), which keeps exactly one of
``C[i,j]``/``C[j,i]`` and preserves the uniform nonzero distribution, hence
better balance at the cost of computing all blocks.

Both schemes must align every similar pair exactly once; the tests assert the
resulting similarity graphs are identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..distsparse.blocked_summa import BlockSchedule
from ..sparse.coo import CooMatrix
from ..sparse.spops import prune_by_parity, triu


class BlockKind(Enum):
    """Classification of an output block by the triangularity-based scheme."""

    FULL = "full"
    PARTIAL = "partial"
    AVOIDABLE = "avoidable"


def classify_block(
    row_range: tuple[int, int], col_range: tuple[int, int]
) -> BlockKind:
    """Classify a block against the strictly upper triangle (col > row)."""
    rlo, rhi = row_range
    clo, chi = col_range
    # every element strictly upper:  min(col) > max(row)  <=>  clo > rhi - 1
    if clo >= rhi:
        return BlockKind.FULL
    # no element strictly upper:  max(col) <= min(row) + ... : chi - 1 <= rlo
    if chi - 1 <= rlo:
        return BlockKind.AVOIDABLE
    return BlockKind.PARTIAL


@dataclass
class LoadBalancingScheme:
    """Base class: which blocks to compute and which elements to align."""

    name: str = "base"

    def blocks_to_compute(self, schedule: BlockSchedule) -> list[tuple[int, int]]:
        """Blocks the Blocked SUMMA must compute."""
        raise NotImplementedError

    def prune(self, block: CooMatrix) -> CooMatrix:
        """Select the elements (global coordinates) that will be aligned."""
        raise NotImplementedError

    def block_classification(self, schedule: BlockSchedule) -> dict[tuple[int, int], BlockKind]:
        """Classification of every block (informational for both schemes)."""
        return {
            (r, c): classify_block(schedule.row_range(r), schedule.col_range(c))
            for r, c in schedule.all_blocks()
        }


@dataclass
class TriangularityScheme(LoadBalancingScheme):
    """Compute only blocks intersecting the strictly upper triangle (§VI-B)."""

    name: str = "triangularity"

    def blocks_to_compute(self, schedule: BlockSchedule) -> list[tuple[int, int]]:
        blocks = []
        for r, c in schedule.all_blocks():
            kind = classify_block(schedule.row_range(r), schedule.col_range(c))
            if kind is not BlockKind.AVOIDABLE:
                blocks.append((r, c))
        return blocks

    def prune(self, block: CooMatrix) -> CooMatrix:
        # keep only the strictly upper triangular elements (each unordered
        # pair exactly once, no self-pairs)
        return triu(block, k=1)

    def sparse_savings_fraction(self, schedule: BlockSchedule) -> float:
        """Fraction of blocks avoided entirely (the scheme's sparse saving)."""
        total = schedule.num_blocks
        computed = len(self.blocks_to_compute(schedule))
        return 1.0 - computed / total if total else 0.0


@dataclass
class IndexScheme(LoadBalancingScheme):
    """Compute all blocks; prune elements by the index-parity rule (§VI-B)."""

    name: str = "index"

    def blocks_to_compute(self, schedule: BlockSchedule) -> list[tuple[int, int]]:
        return schedule.all_blocks()

    def prune(self, block: CooMatrix) -> CooMatrix:
        return prune_by_parity(block, keep_diagonal=False)


def make_scheme(name: str) -> LoadBalancingScheme:
    """Factory: ``"index"`` or ``"triangularity"``."""
    if name == "index":
        return IndexScheme()
    if name == "triangularity":
        return TriangularityScheme()
    raise ValueError(f"unknown load balancing scheme {name!r}")


def pairs_align_exactly_once(pruned_blocks: list[CooMatrix], n: int) -> bool:
    """Invariant check: across all pruned blocks, each unordered pair appears at most once.

    Used by tests and by the pipeline's self-check: the union of pruned block
    elements, mapped to unordered pairs, must contain no duplicates.
    """
    keys = []
    for block in pruned_blocks:
        if block.nnz == 0:
            continue
        lo = np.minimum(block.rows, block.cols)
        hi = np.maximum(block.rows, block.cols)
        keys.append(lo * n + hi)
    if not keys:
        return True
    all_keys = np.concatenate(keys)
    return np.unique(all_keys).size == all_keys.size
