"""Row-wise Gustavson SpGEMM with bounded intermediate memory.

The sort–expand–reduce kernel in :mod:`repro.sparse.spgemm` materializes
*every* partial product of ``C = A·B`` at once, so its peak intermediate
memory grows with the flop count.  When the compression factor
(``flops / output nnz``, §V-B of the paper) is high — exactly the regime of
the overlap matrix ``A·Aᵀ``, where popular k-mers make many partial products
collapse onto few output entries — that peak dwarfs the output itself and
caps the reachable problem size.

:func:`spgemm_gustavson` instead forms the output row by row (Gustavson's
algorithm): for each row ``i`` of ``A``, the rows of ``B`` selected by
``A(i, :)`` are gathered and accumulated into ``C(i, :)``.  Rows are
processed in flop-bounded groups, so peak intermediate memory is
``O(max(batch_flops, max_row_flops))`` instead of ``O(total_flops)``.  The
per-group accumulator is a stable sort by output coordinate — NumPy's
vectorized stand-in for the per-row hash table of a scalar Gustavson kernel;
it yields the same grouping while keeping partial products in deterministic
order.

The kernel is *bit-identical* to the sort–expand–reduce kernel, including
for order-sensitive semirings such as
:class:`repro.sparse.semiring.OverlapSemiring` (which keeps the first two
seed pairs of each group): both kernels enumerate the partial products of an
output entry in ascending inner-index order, with ties in original input
order, and reduce them with the same ``semiring.reduce`` call.  The
randomized cross-kernel harness in ``tests/test_spgemm_equivalence.py``
asserts this equivalence, down to ``SpGemmStats.flops``/``output_nnz``.
"""

from __future__ import annotations

import numpy as np

from .coo import CooMatrix
from .csr import CsrMatrix
from .semiring import ArithmeticSemiring, Semiring
from .spgemm import SpGemmStats, reduce_by_coordinate

#: Default flop budget per row group.  Large enough that NumPy per-call
#: overheads amortize, small enough that intermediate memory stays a fraction
#: of the total flop count on high-compression inputs.
DEFAULT_BATCH_FLOPS = 1 << 16


def _require_sorted_columns(csr: CsrMatrix, name: str) -> None:
    """Reject CSR operands whose rows are not column-sorted.

    Partial products must be enumerated in ascending inner-index order for
    the output to be bit-identical to the other backends; ``from_coo``
    guarantees that order, hand-built CSR may not.
    """
    if csr.nnz < 2:
        return
    decreasing = csr.indices[1:] < csr.indices[:-1]
    row_start = np.zeros(csr.nnz - 1, dtype=bool)
    interior = csr.indptr[1:-1]
    row_start[interior[(interior > 0) & (interior < csr.nnz)] - 1] = True
    if np.any(decreasing & ~row_start):
        raise ValueError(
            f"CSR operand {name!r} has unsorted columns within a row; "
            "build it with CsrMatrix.from_coo to get the required order"
        )


def spgemm_gustavson(
    a: CooMatrix | CsrMatrix,
    b: CooMatrix | CsrMatrix,
    semiring: Semiring | None = None,
    return_stats: bool = False,
    batch_flops: int = DEFAULT_BATCH_FLOPS,
) -> CooMatrix | tuple[CooMatrix, SpGemmStats]:
    """Compute ``C = A ·(semiring) B`` row-wise with bounded intermediates.

    Parameters
    ----------
    a, b:
        Operands with compatible shapes; COO inputs are converted to CSR.
        CSR inputs are used as-is — the fast path for callers that already
        hold row-compressed stripes — but must be in the row-major,
        column-sorted entry order :meth:`CsrMatrix.from_coo` produces, since
        the bit-identity guarantee depends on it; unsorted columns are
        rejected.  (The other registered backend accepts COO only; select
        the operand format for the backend you call.)
    semiring:
        Semiring supplying multiply/reduce; defaults to arithmetic (+, ×).
    return_stats:
        If true, also return :class:`~repro.sparse.spgemm.SpGemmStats`.
    batch_flops:
        Flop budget per row group.  A group never splits a row, so the
        effective bound is ``max(batch_flops, max_row_flops)``.

    Notes
    -----
    Output entries are sorted row-major with one entry per distinct output
    coordinate, exactly as :func:`repro.sparse.spgemm.spgemm` produces them.
    """
    if semiring is None:
        semiring = ArithmeticSemiring()
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions do not match: {a.shape} x {b.shape}")
    if batch_flops < 1:
        raise ValueError("batch_flops must be >= 1")
    out_shape = (a.shape[0], b.shape[1])

    if isinstance(a, CsrMatrix):
        _require_sorted_columns(a, "a")
        a_csr = a
    else:
        a_csr = CsrMatrix.from_coo(a)
    if isinstance(b, CsrMatrix):
        _require_sorted_columns(b, "b")
        b_csr = b
    else:
        b_csr = CsrMatrix.from_coo(b)

    # per-A-entry cost: nnz of the B row its inner index selects
    b_row_nnz = np.diff(b_csr.indptr)
    entry_cost = b_row_nnz[a_csr.indices] if a_csr.nnz else np.empty(0, dtype=np.int64)
    flops = int(entry_cost.sum())
    if flops == 0:
        result = CooMatrix.empty(out_shape, dtype=semiring.value_dtype)
        stats = SpGemmStats(flops=0, output_nnz=0, intermediate_bytes=0, compression_factor=1.0)
        return (result, stats) if return_stats else result

    # cumulative flops at every A row boundary: cum[i] = flops of rows [0, i)
    entry_cum = np.zeros(a_csr.nnz + 1, dtype=np.int64)
    np.cumsum(entry_cost, out=entry_cum[1:])
    row_cum = entry_cum[a_csr.indptr]

    # row of every A entry (needed to label partial products)
    a_entry_rows = np.repeat(np.arange(out_shape[0], dtype=np.int64), np.diff(a_csr.indptr))

    rows_parts: list[np.ndarray] = []
    cols_parts: list[np.ndarray] = []
    vals_parts: list[np.ndarray] = []
    peak_bytes = 0

    r = 0
    nrows = out_shape[0]
    while r < nrows:
        # largest row range [r, r_next) whose flops fit the budget (≥ 1 row)
        r_next = int(np.searchsorted(row_cum, row_cum[r] + batch_flops, side="right")) - 1
        r_next = min(max(r_next, r + 1), nrows)
        lo, hi = int(a_csr.indptr[r]), int(a_csr.indptr[r_next])
        r = r_next
        if lo == hi:
            continue
        reps = entry_cost[lo:hi]
        group_flops = int(entry_cum[hi] - entry_cum[lo])
        if group_flops == 0:
            continue

        # expand: for each A entry in CSR order, all entries of B's row —
        # ascending inner index with input-order ties, mirroring the
        # expansion order of the sort–expand–reduce kernel
        a_idx = np.repeat(np.arange(lo, hi, dtype=np.int64), reps)
        starts = entry_cum[lo:hi] - entry_cum[lo]
        local = np.arange(group_flops, dtype=np.int64) - np.repeat(starts, reps)
        b_idx = np.repeat(b_csr.indptr[a_csr.indices[lo:hi]], reps) + local
        out_rows = a_entry_rows[a_idx]
        out_cols = b_csr.indices[b_idx]
        products = np.asarray(semiring.multiply(a_csr.values[a_idx], b_csr.values[b_idx]))
        peak_bytes = max(peak_bytes, out_rows.nbytes + out_cols.nbytes + products.nbytes)

        # accumulate: stable group-by output coordinate, then semiring reduce
        # (shared with the expand kernel — the bit-identity linchpin)
        group_rows, group_cols, group_vals = reduce_by_coordinate(
            out_rows, out_cols, products, semiring
        )
        rows_parts.append(group_rows)
        cols_parts.append(group_cols)
        vals_parts.append(group_vals)

    result = CooMatrix(
        out_shape,
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        np.concatenate(vals_parts),
        check=False,
    )
    stats = SpGemmStats(
        flops=flops,
        output_nnz=result.nnz,
        intermediate_bytes=peak_bytes,
        compression_factor=flops / result.nnz if result.nnz else 1.0,
        row_groups=len(rows_parts),
    )
    return (result, stats) if return_stats else result
