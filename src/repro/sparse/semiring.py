"""Semiring abstraction for sparse matrix computations.

A semiring supplies the "multiply" used when a nonzero of ``A`` meets a
nonzero of ``B`` on a shared inner index, and the "add" used to combine
multiple such products landing on the same output coordinate.  PASTIS's
candidate discovery is exactly such an overloaded SpGEMM (Fig. 2 of the
paper): the multiply pairs the seed positions of a k-mer in two sequences,
and the add accumulates the common-k-mer count while retaining the first two
seed locations for the aligner.

The SpGEMM kernel in :mod:`repro.sparse.spgemm` works on *expanded* product
arrays, so a semiring here is expressed with two vectorized hooks:

``multiply(a_values, b_values) -> values``
    Elementwise on arrays of equal length (one entry per partial product).

``reduce(values, group_starts) -> values``
    Combine partial products that share an output coordinate.  The products
    are pre-sorted by output coordinate; ``group_starts`` gives the first
    index of each output group (reduceat semantics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Structured dtype of overlap-matrix elements: number of shared k-mers and
#: the (query, target) seed positions of the first two shared k-mers.  -1
#: marks "no second seed".  This mirrors the custom element types sketched in
#: Fig. 1 of the paper.
OVERLAP_DTYPE = np.dtype(
    [
        ("count", np.int32),
        ("first_pos_a", np.int32),
        ("first_pos_b", np.int32),
        ("second_pos_a", np.int32),
        ("second_pos_b", np.int32),
    ]
)


class Semiring:
    """Base class for semirings.  Subclasses override the vectorized hooks."""

    #: dtype of output (and intermediate product) values
    value_dtype: np.dtype = np.dtype(np.float64)
    #: human-readable name
    name: str = "abstract"

    def multiply(self, a_values: np.ndarray, b_values: np.ndarray) -> np.ndarray:
        """Combine aligned arrays of A-values and B-values into product values."""
        raise NotImplementedError

    def reduce(self, values: np.ndarray, group_starts: np.ndarray) -> np.ndarray:
        """Reduce contiguous groups of product values (reduceat semantics)."""
        raise NotImplementedError

    # convenience scalar API used by reference implementations / tests -----
    def scalar_multiply(self, a, b):
        """Scalar version of :meth:`multiply` (reference/tests only)."""
        return self.multiply(np.array([a], dtype=None), np.array([b], dtype=None))[0]

    def scalar_add(self, a, b):
        """Scalar version of the additive combine (reference/tests only)."""
        values = np.array([a, b], dtype=self.value_dtype)
        return self.reduce(values, np.array([0]))[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


#: Strictly sequential prefix-sum primitive.  ``np.ufunc.accumulate`` is
#: defined (and implemented) as a left-to-right recurrence, so every prefix
#: carries the exact association a scalar ``acc += v`` loop would produce.
#: Module-level so the regression test in ``tests/test_semiring.py`` can
#: instrument the padded work actually performed.
_accumulate = np.add.accumulate


def sequential_segment_sum(values: np.ndarray, group_starts: np.ndarray) -> np.ndarray:
    """Per-group sums with *strict left-to-right* float association.

    ``np.add.reduceat`` accumulates with SIMD partial sums, so its result
    depends on how the loop happens to be vectorized; a scalar kernel (such
    as SciPy's C++ CSR matmul, which does ``sums[k] += v`` in generation
    order) rounds differently at the ULP level.  This helper instead sums
    each group's elements one at a time, left to right — the association
    every scalar accumulator uses.

    Implementation: groups are bucketed into power-of-two width classes
    (class ``w`` holds groups with ``w/2 < count <= w``).  Each class
    gathers its groups into a padded ``(n_groups, w)`` table (padding
    zeroed), runs ``np.add.accumulate`` along the rows — a strictly
    sequential recurrence, so prefix ``count - 1`` is exactly the
    left-to-right sum of the group — and scatters that prefix back.  A
    group of ``s`` elements occupies at most ``2s`` padded cells, so the
    total work is ``O(2 x total)`` regardless of how skewed the group sizes
    are, with only ``O(log max_group_size)`` NumPy dispatches.  (The
    previous implementation looped ``max_group_size`` times over *all*
    groups — ``O(total x max_group_size)`` under pathological compression
    factors; ``test_sequential_segment_sum_pathological_cost`` pins the new
    bound.)

    This is what makes the plain arithmetic semiring bit-identical across
    every registered SpGEMM backend *including* the SciPy wrapper
    (``tests/test_spgemm_equivalence.py`` asserts it).
    """
    values = np.asarray(values, dtype=np.float64)
    group_starts = np.asarray(group_starts, dtype=np.int64)
    counts = np.diff(np.concatenate([group_starts, [values.size]]))
    out = np.empty(group_starts.size, dtype=np.float64)
    if counts.size == 0:
        return out
    max_count = int(counts.max())
    lower = 0  # exclusive lower bound of the current width class
    width = 1
    while lower < max_count:
        in_class = (counts > lower) & (counts <= width)
        if in_class.any():
            starts = group_starts[in_class]
            class_counts = counts[in_class]
            cols = np.arange(width, dtype=np.int64)
            # groups are contiguous runs, so the gather is starts + cols;
            # clip keeps padding cells of the final group in bounds
            table = values[np.minimum(starts[:, None] + cols[None, :], values.size - 1)]
            # zero the padding so stray values past a group's end can never
            # overflow/warn; prefixes at column count-1 never read them
            table[cols[None, :] >= class_counts[:, None]] = 0.0
            prefix = _accumulate(table, axis=1)
            out[in_class] = prefix[np.arange(starts.size), class_counts - 1]
        lower = width
        width *= 2
    return out


@dataclass
class ArithmeticSemiring(Semiring):
    """Conventional (+, ×) semiring over float64 — for validation against SciPy.

    The additive reduce uses :func:`sequential_segment_sum` (strict
    left-to-right association) rather than ``np.add.reduceat``, so the sums
    are bit-identical to any scalar accumulator that adds partial products
    in generation order — in particular SciPy's CSR matmul, which backs the
    registry's ``"scipy"`` kernel.
    """

    value_dtype: np.dtype = np.dtype(np.float64)
    name: str = "plus_times"

    def multiply(self, a_values: np.ndarray, b_values: np.ndarray) -> np.ndarray:
        return np.asarray(a_values, dtype=np.float64) * np.asarray(b_values, dtype=np.float64)

    def reduce(self, values: np.ndarray, group_starts: np.ndarray) -> np.ndarray:
        return sequential_segment_sum(values, group_starts)


@dataclass
class CountSemiring(Semiring):
    """Counts how many partial products land on each output coordinate.

    With boolean inputs this computes, for ``A·Aᵀ``, the number of shared
    inner indices (e.g. shared k-mers) — the simplest overlap detector.
    """

    value_dtype: np.dtype = np.dtype(np.int64)
    name: str = "count"

    def multiply(self, a_values: np.ndarray, b_values: np.ndarray) -> np.ndarray:
        return np.ones(len(a_values), dtype=np.int64)

    def reduce(self, values: np.ndarray, group_starts: np.ndarray) -> np.ndarray:
        return np.add.reduceat(np.asarray(values, dtype=np.int64), group_starts)


@dataclass
class MinPlusSemiring(Semiring):
    """Tropical (min, +) semiring — e.g. shortest paths on the similarity graph."""

    value_dtype: np.dtype = np.dtype(np.float64)
    name: str = "min_plus"

    def multiply(self, a_values: np.ndarray, b_values: np.ndarray) -> np.ndarray:
        return np.asarray(a_values, dtype=np.float64) + np.asarray(b_values, dtype=np.float64)

    def reduce(self, values: np.ndarray, group_starts: np.ndarray) -> np.ndarray:
        return np.minimum.reduceat(np.asarray(values, dtype=np.float64), group_starts)


@dataclass
class MaxSemiring(Semiring):
    """(max, ×) semiring — e.g. keeping the best score among parallel products."""

    value_dtype: np.dtype = np.dtype(np.float64)
    name: str = "max_times"

    def multiply(self, a_values: np.ndarray, b_values: np.ndarray) -> np.ndarray:
        return np.asarray(a_values, dtype=np.float64) * np.asarray(b_values, dtype=np.float64)

    def reduce(self, values: np.ndarray, group_starts: np.ndarray) -> np.ndarray:
        return np.maximum.reduceat(np.asarray(values, dtype=np.float64), group_starts)


class OverlapSemiring(Semiring):
    """The PASTIS candidate-discovery semiring.

    Inputs are k-mer *positions*: ``A[i, t]`` holds the position of k-mer
    ``t`` in sequence ``i`` and ``B = Aᵀ`` holds the same for the other
    sequence.  The multiply forms one "shared k-mer" record per partial
    product; the add accumulates the shared-k-mer count and keeps the first
    two seed position pairs (enough for the seed-and-extend or full
    Smith–Waterman alignment that follows).
    """

    value_dtype: np.dtype = OVERLAP_DTYPE
    name: str = "overlap"

    def multiply(self, a_values: np.ndarray, b_values: np.ndarray) -> np.ndarray:
        a_pos = np.asarray(a_values).astype(np.int32, copy=False)
        b_pos = np.asarray(b_values).astype(np.int32, copy=False)
        out = np.empty(a_pos.size, dtype=OVERLAP_DTYPE)
        out["count"] = 1
        out["first_pos_a"] = a_pos
        out["first_pos_b"] = b_pos
        out["second_pos_a"] = -1
        out["second_pos_b"] = -1
        return out

    def reduce(self, values: np.ndarray, group_starts: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        n_groups = group_starts.size
        out = np.empty(n_groups, dtype=OVERLAP_DTYPE)
        out["count"] = np.add.reduceat(values["count"].astype(np.int64), group_starts).astype(
            np.int32
        )
        out["first_pos_a"] = values["first_pos_a"][group_starts]
        out["first_pos_b"] = values["first_pos_b"][group_starts]
        # second seed: the element right after the group start, when the
        # group has at least two members
        group_ends = np.empty(n_groups, dtype=np.int64)
        group_ends[:-1] = group_starts[1:]
        group_ends[-1] = values.size
        has_second = (group_ends - group_starts) >= 2
        second_index = np.where(has_second, group_starts + 1, group_starts)
        out["second_pos_a"] = np.where(has_second, values["first_pos_a"][second_index], -1)
        out["second_pos_b"] = np.where(has_second, values["first_pos_b"][second_index], -1)
        return out
