"""DCSC (doubly compressed sparse column) matrix.

When a matrix is distributed over thousands of processes, each local
submatrix is *hypersparse*: the number of nonzeros can be far smaller than
the number of columns, so storing a full column-pointer array (as CSC does)
wastes memory proportional to the matrix dimension per process.  CombBLAS
(and hence PASTIS) uses the doubly compressed sparse column format of Buluç &
Gilbert (2008), which stores pointers only for the columns that actually have
nonzeros.  The k-mer dimension in PASTIS is ~244 million columns, so DCSC is
essential for the per-process submatrices of the sequence-by-k-mer matrix.
"""

from __future__ import annotations

import numpy as np

from .coo import CooMatrix


class DcscMatrix:
    """Doubly compressed sparse column matrix.

    Attributes
    ----------
    shape:
        ``(nrows, ncols)`` of the logical matrix.
    jc:
        Column indices of the non-empty columns, strictly increasing.
    cp:
        Column pointers into ``ir``/``values``, length ``len(jc) + 1``.
    ir:
        Row indices, grouped by (non-empty) column.
    values:
        Values aligned with ``ir``.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        jc: np.ndarray,
        cp: np.ndarray,
        ir: np.ndarray,
        values: np.ndarray,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.jc = np.ascontiguousarray(jc, dtype=np.int64)
        self.cp = np.ascontiguousarray(cp, dtype=np.int64)
        self.ir = np.ascontiguousarray(ir, dtype=np.int64)
        self.values = np.ascontiguousarray(values)
        if self.cp.size != self.jc.size + 1:
            raise ValueError("cp length must be len(jc) + 1")
        if self.cp.size and (self.cp[0] != 0 or self.cp[-1] != self.ir.size):
            raise ValueError("cp must start at 0 and end at nnz")
        if self.values.shape[0] != self.ir.size:
            raise ValueError("values length must equal ir length")
        if self.jc.size > 1 and np.any(np.diff(self.jc) <= 0):
            raise ValueError("jc must be strictly increasing")

    # ------------------------------------------------------------------ basics
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.ir.size)

    @property
    def nzc(self) -> int:
        """Number of non-empty columns."""
        return int(self.jc.size)

    @property
    def dtype(self) -> np.dtype:
        """Value dtype."""
        return self.values.dtype

    @classmethod
    def from_coo(cls, coo: CooMatrix) -> "DcscMatrix":
        """Convert from COO."""
        m = coo.copy().sort_colmajor()
        if m.nnz == 0:
            return cls(
                m.shape,
                np.empty(0, dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=m.values.dtype),
            )
        changed = np.empty(m.nnz, dtype=bool)
        changed[0] = True
        changed[1:] = np.diff(m.cols) != 0
        starts = np.flatnonzero(changed)
        jc = m.cols[starts]
        cp = np.concatenate([starts, [m.nnz]]).astype(np.int64)
        return cls(m.shape, jc, cp, m.rows.copy(), m.values.copy())

    def to_coo(self) -> CooMatrix:
        """Convert back to COO."""
        if self.nnz == 0:
            return CooMatrix.empty(self.shape, dtype=self.values.dtype)
        col_counts = np.diff(self.cp)
        cols = np.repeat(self.jc, col_counts)
        return CooMatrix(self.shape, self.ir.copy(), cols, self.values.copy(), check=False)

    # ------------------------------------------------------------------ access
    def column(self, col: int) -> tuple[np.ndarray, np.ndarray]:
        """Row indices and values of logical column ``col`` (possibly empty)."""
        pos = np.searchsorted(self.jc, col)
        if pos == self.jc.size or self.jc[pos] != col:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=self.values.dtype),
            )
        lo, hi = self.cp[pos], self.cp[pos + 1]
        return self.ir[lo:hi], self.values[lo:hi]

    def memory_bytes(self) -> int:
        """Approximate memory footprint (the point of DCSC: no O(ncols) term)."""
        return int(self.jc.nbytes + self.cp.nbytes + self.ir.nbytes + self.values.nbytes)

    def compression_ratio_vs_csc(self) -> float:
        """Memory of a plain CSC column-pointer array divided by DCSC's.

        Large values indicate hypersparsity, the regime DCSC is designed for.
        """
        csc_pointer_bytes = (self.shape[1] + 1) * 8
        dcsc_pointer_bytes = max(self.jc.nbytes + self.cp.nbytes, 1)
        return float(csc_pointer_bytes) / float(dcsc_pointer_bytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DcscMatrix(shape={self.shape}, nnz={self.nnz}, nzc={self.nzc}, "
            f"dtype={self.values.dtype})"
        )
