"""COO (triplet) sparse matrix with arbitrary value dtypes.

COO is the interchange format of the package: k-mer extraction produces
triplets, SUMMA stages exchange triplets, and the overlap matrix blocks are
consumed by the aligner as triplets.  Values may use any NumPy dtype,
including the structured :data:`repro.sparse.semiring.OVERLAP_DTYPE`.
"""

from __future__ import annotations

import numpy as np


class CooMatrix:
    """A sparse matrix in coordinate (triplet) format.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)``.
    rows, cols:
        ``int64`` coordinate arrays of equal length.
    values:
        Value array of the same length (any dtype).  If ``None``, an all-ones
        ``int8`` pattern matrix is created.
    sort:
        If true, sort entries into row-major order on construction.
    check:
        If true (default) validate coordinates are in range.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray | None = None,
        sort: bool = False,
        check: bool = True,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        if rows.shape != cols.shape or rows.ndim != 1:
            raise ValueError("rows and cols must be 1D arrays of the same length")
        if values is None:
            values = np.ones(rows.size, dtype=np.int8)
        else:
            values = np.ascontiguousarray(values)
            if values.shape[0] != rows.size:
                raise ValueError("values length must match rows/cols")
        if check and rows.size:
            if rows.min() < 0 or rows.max() >= self.shape[0]:
                raise ValueError("row index out of range")
            if cols.min() < 0 or cols.max() >= self.shape[1]:
                raise ValueError("column index out of range")
        self.rows = rows
        self.cols = cols
        self.values = values
        if sort:
            self.sort_rowmajor()

    # ------------------------------------------------------------------ basic
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.rows.size)

    @property
    def dtype(self) -> np.dtype:
        """Value dtype."""
        return self.values.dtype

    @classmethod
    def empty(cls, shape: tuple[int, int], dtype=np.int8) -> "CooMatrix":
        """An empty matrix of the given shape and value dtype."""
        return cls(
            shape,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=dtype),
            check=False,
        )

    def copy(self) -> "CooMatrix":
        """Deep copy."""
        return CooMatrix(
            self.shape, self.rows.copy(), self.cols.copy(), self.values.copy(), check=False
        )

    def sort_rowmajor(self) -> "CooMatrix":
        """Sort entries in (row, col) order in place.  Returns self."""
        if self.nnz:
            order = np.lexsort((self.cols, self.rows))
            self.rows = self.rows[order]
            self.cols = self.cols[order]
            self.values = self.values[order]
        return self

    def sort_colmajor(self) -> "CooMatrix":
        """Sort entries in (col, row) order in place.  Returns self."""
        if self.nnz:
            order = np.lexsort((self.rows, self.cols))
            self.rows = self.rows[order]
            self.cols = self.cols[order]
            self.values = self.values[order]
        return self

    # ------------------------------------------------------------------ algebra helpers
    def transpose(self) -> "CooMatrix":
        """Return the transpose (values are shared copies)."""
        return CooMatrix(
            (self.shape[1], self.shape[0]),
            self.cols.copy(),
            self.rows.copy(),
            self.values.copy(),
            check=False,
        )

    def select(self, mask: np.ndarray) -> "CooMatrix":
        """Return a new matrix keeping only entries where ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self.nnz:
            raise ValueError("mask length must equal nnz")
        return CooMatrix(
            self.shape, self.rows[mask], self.cols[mask], self.values[mask], check=False
        )

    def submatrix(
        self, row_range: tuple[int, int], col_range: tuple[int, int], relabel: bool = True
    ) -> "CooMatrix":
        """Extract the block ``[row_range) x [col_range)``.

        With ``relabel=True`` (default) the block's coordinates are shifted so
        the block starts at (0, 0) — the form needed for distributed block
        ownership.
        """
        r0, r1 = row_range
        c0, c1 = col_range
        mask = (self.rows >= r0) & (self.rows < r1) & (self.cols >= c0) & (self.cols < c1)
        rows = self.rows[mask]
        cols = self.cols[mask]
        values = self.values[mask]
        if relabel:
            rows = rows - r0
            cols = cols - c0
            shape = (r1 - r0, c1 - c0)
        else:
            shape = self.shape
        return CooMatrix(shape, rows, cols, values, check=False)

    def with_offset(self, row_offset: int, col_offset: int, shape: tuple[int, int]) -> "CooMatrix":
        """Return a copy re-embedded into a larger matrix at the given offset."""
        return CooMatrix(
            shape,
            self.rows + int(row_offset),
            self.cols + int(col_offset),
            self.values.copy(),
            check=True,
        )

    def deduplicate(self, semiring=None) -> "CooMatrix":
        """Merge duplicate coordinates.

        Without a semiring, the *last* value wins.  With a semiring, duplicate
        entries are combined with the semiring's additive reduce.
        """
        if self.nnz == 0:
            return self.copy()
        m = self.copy().sort_rowmajor()
        keys_changed = np.empty(m.nnz, dtype=bool)
        keys_changed[0] = True
        keys_changed[1:] = (np.diff(m.rows) != 0) | (np.diff(m.cols) != 0)
        group_starts = np.flatnonzero(keys_changed)
        if semiring is None:
            # last value wins: take last entry of every group
            group_ends = np.empty(group_starts.size, dtype=np.int64)
            group_ends[:-1] = group_starts[1:] - 1
            group_ends[-1] = m.nnz - 1
            return CooMatrix(
                m.shape,
                m.rows[group_starts],
                m.cols[group_starts],
                m.values[group_ends],
                check=False,
            )
        values = semiring.reduce(m.values, group_starts)
        return CooMatrix(
            m.shape, m.rows[group_starts], m.cols[group_starts], values, check=False
        )

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the triplet representation."""
        return int(self.rows.nbytes + self.cols.nbytes + self.values.nbytes)

    def todense(self) -> np.ndarray:
        """Dense array (numeric dtypes only; tests/small matrices)."""
        if self.values.dtype.names is not None:
            raise TypeError("cannot densify a structured-dtype matrix")
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, (self.rows, self.cols), self.values.astype(np.float64))
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CooMatrix):
            return NotImplemented
        if self.shape != other.shape or self.nnz != other.nnz:
            return False
        a = self.copy().sort_rowmajor()
        b = other.copy().sort_rowmajor()
        if not (np.array_equal(a.rows, b.rows) and np.array_equal(a.cols, b.cols)):
            return False
        if a.values.dtype != b.values.dtype:
            return False
        if a.values.dtype.names is None:
            return bool(np.array_equal(a.values, b.values))
        return all(np.array_equal(a.values[f], b.values[f]) for f in a.values.dtype.names)

    def __hash__(self) -> int:  # CooMatrix is mutable; identity hash
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CooMatrix(shape={self.shape}, nnz={self.nnz}, dtype={self.values.dtype})"
