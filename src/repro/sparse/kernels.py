"""SpGEMM kernel registry: select a backend by name.

The package ships three interchangeable SpGEMM kernels:

``"expand"``
    The vectorized sort–expand–reduce kernel
    (:func:`repro.sparse.spgemm.spgemm`).  Fastest when the compression
    factor is low — intermediate memory is proportional to the flop count,
    so little is wasted when most partial products are distinct outputs.

``"gustavson"``
    The row-wise Gustavson kernel
    (:func:`repro.sparse.gustavson.spgemm_gustavson`).  Peak intermediate
    memory is bounded by the per-row-group flop budget instead of the total
    flop count, so it wins when the compression factor is high (popular
    k-mers, dense overlap structure) — the regime that otherwise caps the
    reachable problem size.

``"auto"``
    Per-invocation dispatch (:func:`spgemm_auto`): every call — e.g. every
    local multiply of every SUMMA stage — estimates a lower bound on the
    compression factor from the operand sparsity patterns
    (:func:`predict_compression_factor`) and routes to ``"gustavson"`` above
    :data:`AUTO_COMPRESSION_THRESHOLD`, ``"expand"`` below it.

All produce bit-identical outputs and :class:`~repro.sparse.spgemm.SpGemmStats`
flop/nnz accounting (asserted by ``tests/test_spgemm_equivalence.py``), so
every consumer — :func:`repro.distsparse.summa.summa`,
:class:`repro.distsparse.blocked_summa.BlockedSpGemm`, the pipeline via
``PastisParams.spgemm_backend`` — selects one purely on performance grounds.

A kernel is any callable with the signature
``kernel(a, b, semiring=None, return_stats=False)`` accepting
:class:`~repro.sparse.coo.CooMatrix` operands and returning a
:class:`~repro.sparse.coo.CooMatrix` (plus stats when requested) — COO is
the interchange format every backend must accept; extra operand formats
(e.g. the Gustavson kernel's CSR fast path) are backend-specific extras.
Kernels that form the output in flop-bounded batches may additionally
accept a ``batch_flops`` keyword (probe with
:func:`kernel_supports_batch_flops`).  Register additional backends with
:func:`register_kernel`.
"""

from __future__ import annotations

import inspect
from typing import Callable

import numpy as np

from .gustavson import spgemm_gustavson
from .spgemm import spgemm

#: Signature shared by all SpGEMM backends.
SpGemmKernel = Callable[..., object]

#: Name of the backend used when none is requested (generic consumers).
DEFAULT_KERNEL = "expand"

#: Default backend for the pipeline's overlap semiring (``A·Aᵀ`` candidate
#: discovery): the head-to-head in ``benchmarks/bench_kernels.py --smoke``
#: confirms bit-identical results with strictly lower intermediate memory at
#: the overlap matrix's high compression factors, so the memory-safe kernel
#: is the default there.  Seeds :data:`repro.config.DEFAULTS`.
DEFAULT_OVERLAP_KERNEL = "gustavson"

#: Predicted-compression-factor threshold above which ``"auto"`` routes to
#: the Gustavson kernel (the head-to-head crossover regime).
AUTO_COMPRESSION_THRESHOLD = 2.0

_KERNELS: dict[str, SpGemmKernel] = {}


def register_kernel(name: str, kernel: SpGemmKernel | None = None):
    """Register ``kernel`` under ``name`` (usable as a decorator).

    Raises ``ValueError`` if the name is already taken — backends are
    global, and silent replacement would change results of unrelated runs.
    """

    def _register(fn: SpGemmKernel) -> SpGemmKernel:
        if name in _KERNELS:
            raise ValueError(f"SpGEMM kernel {name!r} is already registered")
        _KERNELS[name] = fn
        return fn

    return _register(kernel) if kernel is not None else _register


def available_kernels() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_KERNELS))


def get_kernel(name: str) -> SpGemmKernel:
    """Look up a backend by name, with a helpful error for typos."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown SpGEMM kernel {name!r}; available: {', '.join(available_kernels())}"
        ) from None


def resolve_kernel(kernel: str | SpGemmKernel | None) -> SpGemmKernel:
    """Normalize a backend spec (name, callable, or ``None``) to a callable."""
    if kernel is None:
        return _KERNELS[DEFAULT_KERNEL]
    if callable(kernel):
        return kernel
    return get_kernel(kernel)


def kernel_supports_batch_flops(kernel: SpGemmKernel) -> bool:
    """Whether a backend accepts the ``batch_flops`` flop-budget keyword.

    Only an explicitly named ``batch_flops`` parameter counts — a bare
    ``**kwargs`` would swallow the budget without honoring it, silently
    defeating the memory bound the caller asked for.
    """
    try:
        parameters = inspect.signature(kernel).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
    return "batch_flops" in parameters


# ------------------------------------------------------------------ auto dispatch
def _inner_indices(matrix, transposed: bool) -> np.ndarray:
    """Inner-dimension index of every nonzero (A's columns / B's rows)."""
    if hasattr(matrix, "indptr"):  # CSR: column indices; rows via indptr
        if transposed:
            return np.repeat(
                np.arange(matrix.shape[0], dtype=np.int64), np.diff(matrix.indptr)
            )
        return matrix.indices
    return matrix.rows if transposed else matrix.cols


def _outer_count(matrix, transposed: bool) -> int:
    """Number of distinct outer indices with nonzeros (A's rows / B's cols)."""
    if hasattr(matrix, "indptr"):
        if transposed:
            return int(np.unique(matrix.indices).size)
        return int(np.count_nonzero(np.diff(matrix.indptr)))
    outer = matrix.cols if transposed else matrix.rows
    return int(np.unique(outer).size)


def predict_compression_factor(a, b) -> float:
    """Cheap lower bound on ``flops / output nnz`` of ``C = A·B``.

    The exact flop count is read off the sparsity patterns (each A nonzero
    contributes the nnz of the B row its inner index selects); the output
    nonzero count is bounded above by ``distinct A rows x distinct B cols``
    (and by the flop count itself), so the returned ratio never exceeds the
    true compression factor.  Runs in ``O(nnz log nnz)`` without touching
    the (possibly hypersparse, ``|alphabet|^k``-sized) inner dimension.
    """
    a_inner = np.asarray(_inner_indices(a, transposed=False))
    b_inner = np.asarray(_inner_indices(b, transposed=True))
    if a_inner.size == 0 or b_inner.size == 0:
        return 1.0
    b_keys, b_counts = np.unique(b_inner, return_counts=True)
    pos = np.searchsorted(b_keys, a_inner)
    pos_clipped = np.minimum(pos, b_keys.size - 1)
    matched = b_keys[pos_clipped] == a_inner
    flops = int(b_counts[pos_clipped[matched]].sum())
    if flops == 0:
        return 1.0
    output_cap = _outer_count(a, transposed=False) * _outer_count(b, transposed=True)
    return flops / max(1, min(flops, output_cap))


def spgemm_auto(
    a,
    b,
    semiring=None,
    return_stats: bool = False,
    batch_flops: int | None = None,
):
    """Backend-dispatching SpGEMM: Gustavson at high predicted compression.

    Decides per invocation — inside SUMMA that is per stage and per rank —
    so one distributed multiply can mix backends as the local operand
    structure varies.  CSR operands always take the Gustavson path (the only
    CSR-capable backend), and so does an explicit ``batch_flops``: a flop
    budget is a request for bounded intermediate memory, which the expand
    kernel cannot honor.
    """
    is_csr = hasattr(a, "indptr") or hasattr(b, "indptr")
    if (
        is_csr
        or batch_flops is not None
        or predict_compression_factor(a, b) >= AUTO_COMPRESSION_THRESHOLD
    ):
        kwargs = {} if batch_flops is None else {"batch_flops": batch_flops}
        return spgemm_gustavson(a, b, semiring, return_stats=return_stats, **kwargs)
    return spgemm(a, b, semiring, return_stats=return_stats)


register_kernel("expand", spgemm)
register_kernel("gustavson", spgemm_gustavson)
register_kernel("auto", spgemm_auto)
