"""SpGEMM kernel registry: select a backend by name.

The package ships three interchangeable SpGEMM kernels:

``"expand"``
    The vectorized sort–expand–reduce kernel
    (:func:`repro.sparse.spgemm.spgemm`).  Fastest when the compression
    factor is low — intermediate memory is proportional to the flop count,
    so little is wasted when most partial products are distinct outputs.

``"gustavson"``
    The row-wise Gustavson kernel
    (:func:`repro.sparse.gustavson.spgemm_gustavson`).  Peak intermediate
    memory is bounded by the per-row-group flop budget instead of the total
    flop count, so it wins when the compression factor is high (popular
    k-mers, dense overlap structure) — the regime that otherwise caps the
    reachable problem size.

``"auto"``
    Per-invocation dispatch (:func:`spgemm_auto`): every call — e.g. every
    local multiply of every SUMMA stage — estimates a lower bound on the
    compression factor from the operand sparsity patterns
    (:func:`predict_compression_factor`) and routes to ``"gustavson"`` above
    the dispatch threshold, ``"expand"`` below it.  The threshold defaults
    to :data:`AUTO_COMPRESSION_THRESHOLD` and is calibratable per
    invocation via the ``compression_threshold`` keyword (plumbed from
    ``PastisParams.auto_compression_threshold`` by the pipeline).

``"gustavson-numba"``
    The compiled scalar SPA Gustavson kernel
    (:func:`repro.sparse.gustavson_numba.spgemm_gustavson_numba`).  Only
    registered when numba is importable (install the ``[fast]`` extra);
    supports the ``plus_times`` and ``overlap`` semirings and is
    bit-identical to ``"gustavson"`` — same flop-bounded row grouping, same
    ascending-inner-index enumeration, strict left-to-right accumulation —
    while replacing the per-group sort with an ``O(flops)`` dense sparse
    accumulator.  The raw-speed backend for process-pool discover lanes.

``"scipy"``
    :func:`spgemm_scipy`, wrapping ``scipy.sparse``'s C++ CSR matmul.  Only
    registered when SciPy is importable, and only supports the plain
    arithmetic (+, ×) semiring — but there it is the fastest backend by a
    wide margin, which is why ``repro.graph``'s Markov-clustering expansion
    prefers it.  Bit-identical to the other backends because
    :class:`~repro.sparse.semiring.ArithmeticSemiring` reduces with strict
    left-to-right association, the same order SciPy's scalar accumulator
    uses.  Operands with duplicate coordinates are pre-merged with ``+``
    (SciPy's own convention); canonical (duplicate-free) operands — all the
    registry's consumers produce them — are required for the bit-identity
    guarantee.

All produce bit-identical outputs and :class:`~repro.sparse.spgemm.SpGemmStats`
flop/nnz accounting (asserted by ``tests/test_spgemm_equivalence.py``), so
every consumer — :func:`repro.distsparse.summa.summa`,
:class:`repro.distsparse.blocked_summa.BlockedSpGemm`, the pipeline via
``PastisParams.spgemm_backend`` — selects one purely on performance grounds.

A kernel is any callable with the signature
``kernel(a, b, semiring=None, return_stats=False)`` accepting
:class:`~repro.sparse.coo.CooMatrix` operands and returning a
:class:`~repro.sparse.coo.CooMatrix` (plus stats when requested) — COO is
the interchange format every backend must accept; extra operand formats
(e.g. the Gustavson kernel's CSR fast path) are backend-specific extras.
Kernels that form the output in flop-bounded batches may additionally
accept a ``batch_flops`` keyword (probe with
:func:`kernel_supports_batch_flops`).  Register additional backends with
:func:`register_kernel`.
"""

from __future__ import annotations

import inspect
from typing import Callable

import numpy as np

from ..obs import current_metrics
from .coo import CooMatrix
from .gustavson import spgemm_gustavson
from .spgemm import SpGemmStats, spgemm

try:  # the scipy backend is registered only when scipy is importable
    import scipy.sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised on scipy-free installs
    _scipy_sparse = None

try:  # the compiled backend is registered only when numba is importable
    from .gustavson_numba import spgemm_gustavson_numba
except ImportError:  # pragma: no cover - exercised on numba-free installs
    spgemm_gustavson_numba = None

#: Signature shared by all SpGEMM backends.
SpGemmKernel = Callable[..., object]

#: Name of the backend used when none is requested (generic consumers).
DEFAULT_KERNEL = "expand"

#: Default backend for the pipeline's overlap semiring (``A·Aᵀ`` candidate
#: discovery): the head-to-head in ``benchmarks/bench_kernels.py --smoke``
#: confirms bit-identical results with strictly lower intermediate memory at
#: the overlap matrix's high compression factors, so the memory-safe kernel
#: is the default there.  Seeds :data:`repro.config.DEFAULTS`.
DEFAULT_OVERLAP_KERNEL = "gustavson"

#: Predicted-compression-factor threshold above which ``"auto"`` routes to
#: the Gustavson kernel (the head-to-head crossover regime).
AUTO_COMPRESSION_THRESHOLD = 2.0

_KERNELS: dict[str, SpGemmKernel] = {}


def register_kernel(name: str, kernel: SpGemmKernel | None = None):
    """Register ``kernel`` under ``name`` (usable as a decorator).

    Raises ``ValueError`` if the name is already taken — backends are
    global, and silent replacement would change results of unrelated runs.
    """

    def _register(fn: SpGemmKernel) -> SpGemmKernel:
        if name in _KERNELS:
            raise ValueError(f"SpGEMM kernel {name!r} is already registered")
        _KERNELS[name] = fn
        return fn

    return _register(kernel) if kernel is not None else _register


def available_kernels() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_KERNELS))


def get_kernel(name: str) -> SpGemmKernel:
    """Look up a backend by name, with a helpful error for typos."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown SpGEMM kernel {name!r}; available: {', '.join(available_kernels())}"
        ) from None


def resolve_kernel(kernel: str | SpGemmKernel | None) -> SpGemmKernel:
    """Normalize a backend spec (name, callable, or ``None``) to a callable."""
    if kernel is None:
        return _KERNELS[DEFAULT_KERNEL]
    if callable(kernel):
        return kernel
    return get_kernel(kernel)


def _kernel_has_parameter(kernel: SpGemmKernel, name: str) -> bool:
    try:
        parameters = inspect.signature(kernel).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
    return name in parameters


def kernel_supports_batch_flops(kernel: SpGemmKernel) -> bool:
    """Whether a backend accepts the ``batch_flops`` flop-budget keyword.

    Only an explicitly named ``batch_flops`` parameter counts — a bare
    ``**kwargs`` would swallow the budget without honoring it, silently
    defeating the memory bound the caller asked for.
    """
    return _kernel_has_parameter(kernel, "batch_flops")


def kernel_supports_compression_threshold(kernel: SpGemmKernel) -> bool:
    """Whether a backend accepts the ``compression_threshold`` keyword.

    Only the dispatching ``"auto"`` kernel does; fixed backends ignore the
    calibration knob, so callers plumbing a configured threshold probe with
    this instead of special-casing backend names.
    """
    return _kernel_has_parameter(kernel, "compression_threshold")


def kernel_supports_semiring(kernel: SpGemmKernel, semiring) -> bool:
    """Whether a backend supports ``semiring`` (or any semiring for ``None``).

    Backends are generic unless they declare a ``supported_semirings`` tuple
    of semiring names (the :func:`spgemm_scipy` wrapper declares
    ``("plus_times",)``).  Generic consumers that sweep every registered
    backend — the head-to-head benchmark, the cross-kernel test harness —
    filter with this instead of catching the backend's rejection error.
    """
    supported = getattr(kernel, "supported_semirings", None)
    if supported is None:
        return True
    name = "plus_times" if semiring is None else getattr(semiring, "name", None)
    return name in supported


# ------------------------------------------------------------------ auto dispatch
def _inner_indices(matrix, transposed: bool) -> np.ndarray:
    """Inner-dimension index of every nonzero (A's columns / B's rows)."""
    if hasattr(matrix, "indptr"):  # CSR: column indices; rows via indptr
        if transposed:
            return np.repeat(
                np.arange(matrix.shape[0], dtype=np.int64), np.diff(matrix.indptr)
            )
        return matrix.indices
    return matrix.rows if transposed else matrix.cols


def _outer_count(matrix, transposed: bool) -> int:
    """Number of distinct outer indices with nonzeros (A's rows / B's cols)."""
    if hasattr(matrix, "indptr"):
        if transposed:
            return int(np.unique(matrix.indices).size)
        return int(np.count_nonzero(np.diff(matrix.indptr)))
    outer = matrix.cols if transposed else matrix.rows
    return int(np.unique(outer).size)


def predict_compression_factor(a, b) -> float:
    """Cheap lower bound on ``flops / output nnz`` of ``C = A·B``.

    The exact flop count is read off the sparsity patterns (each A nonzero
    contributes the nnz of the B row its inner index selects); the output
    nonzero count is bounded above by ``distinct A rows x distinct B cols``
    (and by the flop count itself), so the returned ratio never exceeds the
    true compression factor.  Runs in ``O(nnz log nnz)`` without touching
    the (possibly hypersparse, ``|alphabet|^k``-sized) inner dimension.
    """
    a_inner = np.asarray(_inner_indices(a, transposed=False))
    b_inner = np.asarray(_inner_indices(b, transposed=True))
    if a_inner.size == 0 or b_inner.size == 0:
        return 1.0
    b_keys, b_counts = np.unique(b_inner, return_counts=True)
    pos = np.searchsorted(b_keys, a_inner)
    pos_clipped = np.minimum(pos, b_keys.size - 1)
    matched = b_keys[pos_clipped] == a_inner
    flops = int(b_counts[pos_clipped[matched]].sum())
    if flops == 0:
        return 1.0
    output_cap = _outer_count(a, transposed=False) * _outer_count(b, transposed=True)
    return flops / max(1, min(flops, output_cap))


def spgemm_auto(
    a,
    b,
    semiring=None,
    return_stats: bool = False,
    batch_flops: int | None = None,
    compression_threshold: float | None = None,
):
    """Backend-dispatching SpGEMM: Gustavson at high predicted compression.

    Decides per invocation — inside SUMMA that is per stage and per rank —
    so one distributed multiply can mix backends as the local operand
    structure varies.  CSR operands always take the Gustavson path (the only
    CSR-capable backend), and so does an explicit ``batch_flops``: a flop
    budget is a request for bounded intermediate memory, which the expand
    kernel cannot honor.  ``compression_threshold`` overrides the module
    default :data:`AUTO_COMPRESSION_THRESHOLD` so the dispatch crossover can
    be calibrated per run (``PastisParams.auto_compression_threshold``).
    """
    threshold = (
        AUTO_COMPRESSION_THRESHOLD if compression_threshold is None else compression_threshold
    )
    is_csr = hasattr(a, "indptr") or hasattr(b, "indptr")
    predicted = None
    if not is_csr and batch_flops is None:
        predicted = predict_compression_factor(a, b)
    use_gustavson = is_csr or batch_flops is not None or predicted >= threshold
    hub = current_metrics()
    if hub is not None:
        # routing decisions feed the adaptive-dispatch trajectory: which
        # kernel ran, and the predicted CF when one was computed
        hub.record_dispatch("gustavson" if use_gustavson else "expand", predicted)
    if use_gustavson:
        kwargs = {} if batch_flops is None else {"batch_flops": batch_flops}
        return spgemm_gustavson(a, b, semiring, return_stats=return_stats, **kwargs)
    return spgemm(a, b, semiring, return_stats=return_stats)


# ------------------------------------------------------------------ scipy backend
def _to_scipy_csr(matrix):
    """Convert a COO/CSR operand to a canonical float64 ``scipy.sparse.csr_array``."""
    if hasattr(matrix, "indptr"):  # our CsrMatrix: canonical by construction
        out = _scipy_sparse.csr_array(
            (matrix.values.astype(np.float64), matrix.indices, matrix.indptr),
            shape=matrix.shape,
        )
    else:
        out = _scipy_sparse.coo_array(
            (np.asarray(matrix.values, dtype=np.float64), (matrix.rows, matrix.cols)),
            shape=matrix.shape,
        ).tocsr()
    out.sum_duplicates()
    out.sort_indices()
    return out


def spgemm_scipy(a, b, semiring=None, return_stats: bool = False):
    """SpGEMM through SciPy's C++ CSR matmul — plain arithmetic semiring only.

    The fast path for conventional (+, ×) products such as the Markov
    clustering expansion in :mod:`repro.graph`.  Output entries are sorted
    row-major with one entry per coordinate and *bit-identical* to the other
    backends: SciPy's scalar accumulator adds partial products for an output
    entry in ascending inner-index order, exactly the order (and, since
    :class:`~repro.sparse.semiring.ArithmeticSemiring` reduces with strict
    left-to-right association, exactly the rounding) of the registry's other
    kernels.  Operands holding duplicate coordinates are pre-merged with
    ``+`` during CSR conversion — for duplicate-heavy inputs use a kernel
    that keeps duplicates as separate partial products.

    ``SpGemmStats.flops`` is the exact flop count read off the (merged)
    sparsity patterns; ``intermediate_bytes`` is the triplet footprint of
    the result, since the C++ kernel materializes no expanded intermediate.
    """
    if _scipy_sparse is None:  # pragma: no cover - registration is gated
        raise RuntimeError("the 'scipy' SpGEMM backend requires scipy")
    if semiring is not None and getattr(semiring, "name", None) != "plus_times":
        raise ValueError(
            "the 'scipy' SpGEMM backend supports only the plain arithmetic "
            f"semiring, got {semiring!r}; use 'expand'/'gustavson'/'auto' for "
            "overloaded semirings"
        )
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions do not match: {a.shape} x {b.shape}")
    out_shape = (a.shape[0], b.shape[1])

    a_s = _to_scipy_csr(a)
    b_s = _to_scipy_csr(b)
    b_row_nnz = np.diff(b_s.indptr)
    flops = int(b_row_nnz[a_s.indices].sum()) if a_s.nnz else 0
    if flops == 0:
        result = CooMatrix.empty(out_shape, dtype=np.float64)
        stats = SpGemmStats(flops=0, output_nnz=0, intermediate_bytes=0, compression_factor=1.0)
        return (result, stats) if return_stats else result

    c = (a_s @ b_s).tocsr()
    c.sum_duplicates()
    c.sort_indices()
    c_coo = c.tocoo()
    result = CooMatrix(
        out_shape,
        c_coo.row.astype(np.int64),
        c_coo.col.astype(np.int64),
        np.ascontiguousarray(c_coo.data, dtype=np.float64),
        check=False,
    )
    stats = SpGemmStats(
        flops=flops,
        output_nnz=result.nnz,
        intermediate_bytes=result.memory_bytes(),
        compression_factor=flops / result.nnz if result.nnz else 1.0,
        row_groups=1,
    )
    return (result, stats) if return_stats else result


#: Semiring capability declaration consumed by :func:`kernel_supports_semiring`.
spgemm_scipy.supported_semirings = ("plus_times",)


register_kernel("expand", spgemm)
register_kernel("gustavson", spgemm_gustavson)
register_kernel("auto", spgemm_auto)
if _scipy_sparse is not None:
    register_kernel("scipy", spgemm_scipy)
if spgemm_gustavson_numba is not None:
    register_kernel("gustavson-numba", spgemm_gustavson_numba)
