"""SpGEMM kernel registry: select a backend by name.

The package ships two interchangeable SpGEMM kernels:

``"expand"``
    The vectorized sort–expand–reduce kernel
    (:func:`repro.sparse.spgemm.spgemm`).  Fastest when the compression
    factor is low — intermediate memory is proportional to the flop count,
    so little is wasted when most partial products are distinct outputs.

``"gustavson"``
    The row-wise Gustavson kernel
    (:func:`repro.sparse.gustavson.spgemm_gustavson`).  Peak intermediate
    memory is bounded by the per-row-group flop budget instead of the total
    flop count, so it wins when the compression factor is high (popular
    k-mers, dense overlap structure) — the regime that otherwise caps the
    reachable problem size.

Both produce bit-identical outputs and :class:`~repro.sparse.spgemm.SpGemmStats`
flop/nnz accounting (asserted by ``tests/test_spgemm_equivalence.py``), so
every consumer — :func:`repro.distsparse.summa.summa`,
:class:`repro.distsparse.blocked_summa.BlockedSpGemm`, the pipeline via
``PastisParams.spgemm_backend`` — selects one purely on performance grounds.

A kernel is any callable with the signature
``kernel(a, b, semiring=None, return_stats=False)`` accepting
:class:`~repro.sparse.coo.CooMatrix` operands and returning a
:class:`~repro.sparse.coo.CooMatrix` (plus stats when requested) — COO is
the interchange format every backend must accept; extra operand formats
(e.g. the Gustavson kernel's CSR fast path) are backend-specific extras.
Register additional backends with :func:`register_kernel`.
"""

from __future__ import annotations

from typing import Callable

from .gustavson import spgemm_gustavson
from .spgemm import spgemm

#: Signature shared by all SpGEMM backends.
SpGemmKernel = Callable[..., object]

#: Name of the backend used when none is requested.
DEFAULT_KERNEL = "expand"

_KERNELS: dict[str, SpGemmKernel] = {}


def register_kernel(name: str, kernel: SpGemmKernel | None = None):
    """Register ``kernel`` under ``name`` (usable as a decorator).

    Raises ``ValueError`` if the name is already taken — backends are
    global, and silent replacement would change results of unrelated runs.
    """

    def _register(fn: SpGemmKernel) -> SpGemmKernel:
        if name in _KERNELS:
            raise ValueError(f"SpGEMM kernel {name!r} is already registered")
        _KERNELS[name] = fn
        return fn

    return _register(kernel) if kernel is not None else _register


def available_kernels() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_KERNELS))


def get_kernel(name: str) -> SpGemmKernel:
    """Look up a backend by name, with a helpful error for typos."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown SpGEMM kernel {name!r}; available: {', '.join(available_kernels())}"
        ) from None


def resolve_kernel(kernel: str | SpGemmKernel | None) -> SpGemmKernel:
    """Normalize a backend spec (name, callable, or ``None``) to a callable."""
    if kernel is None:
        return _KERNELS[DEFAULT_KERNEL]
    if callable(kernel):
        return kernel
    return get_kernel(kernel)


register_kernel("expand", spgemm)
register_kernel("gustavson", spgemm_gustavson)
