"""Semiring sparse general matrix-matrix multiplication (SpGEMM).

The kernel is a vectorized *sort–expand–reduce* (outer-product / column-by-
row) formulation:

1. sort the nonzeros of ``A`` by column and of ``B`` by row (the shared inner
   dimension);
2. for every inner index present in both, form the Cartesian product of A's
   nonzeros in that column with B's nonzeros in that row — these are the
   *partial products*, whose total count is the SpGEMM **flop count**;
3. apply the semiring multiply elementwise to the expanded arrays;
4. sort partial products by output coordinate and apply the semiring reduce
   per group.

The ratio ``flops / output nnz`` is the *compression factor* the paper
discusses (§V-B): it determines how much intermediate memory SpGEMM needs
beyond the output itself, and is reported in :class:`SpGemmStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .coo import CooMatrix
from .semiring import ArithmeticSemiring, Semiring


@dataclass
class SpGemmStats:
    """Instrumentation of one SpGEMM invocation.

    Attributes
    ----------
    flops:
        Number of partial products (semiring multiplies) performed.
    output_nnz:
        Nonzeros in the result after additive reduction.
    intermediate_bytes:
        Peak bytes held by the expanded partial-product arrays.
    compression_factor:
        ``flops / output_nnz`` (1.0 when the output is empty).
    row_groups:
        Number of flop-bounded batches the partial products were formed in
        (1 per invocation for the single-pass expand kernel; the Gustavson
        kernel's per-row-group count — observable evidence that a
        ``batch_flops`` budget forced multi-group batching).
    """

    flops: int = 0
    output_nnz: int = 0
    intermediate_bytes: int = 0
    compression_factor: float = 1.0
    row_groups: int = 0

    def merge(self, other: "SpGemmStats") -> "SpGemmStats":
        """Accumulate stats from another invocation (e.g. across SUMMA stages)."""
        flops = self.flops + other.flops
        nnz = self.output_nnz + other.output_nnz
        return SpGemmStats(
            flops=flops,
            output_nnz=nnz,
            intermediate_bytes=max(self.intermediate_bytes, other.intermediate_bytes),
            compression_factor=(flops / nnz) if nnz else 1.0,
            row_groups=self.row_groups + other.row_groups,
        )


@dataclass
class _InnerIndex:
    """Pre-sorted view of a matrix's nonzeros keyed by the inner dimension."""

    keys: np.ndarray          # unique inner indices with nonzeros
    starts: np.ndarray        # start offset of each key's group
    counts: np.ndarray        # group sizes
    outer: np.ndarray         # outer coordinate (row of A / col of B), sorted by key
    values: np.ndarray        # values, sorted by key
    order: np.ndarray = field(repr=False, default=None)


def _index_by(keys_raw: np.ndarray, outer_raw: np.ndarray, values_raw: np.ndarray) -> _InnerIndex:
    order = np.argsort(keys_raw, kind="stable")
    keys_sorted = keys_raw[order]
    outer = outer_raw[order]
    values = values_raw[order]
    if keys_sorted.size == 0:
        return _InnerIndex(
            keys=np.empty(0, dtype=np.int64),
            starts=np.empty(0, dtype=np.int64),
            counts=np.empty(0, dtype=np.int64),
            outer=outer,
            values=values,
            order=order,
        )
    changed = np.empty(keys_sorted.size, dtype=bool)
    changed[0] = True
    changed[1:] = np.diff(keys_sorted) != 0
    starts = np.flatnonzero(changed)
    keys = keys_sorted[starts]
    counts = np.diff(np.concatenate([starts, [keys_sorted.size]]))
    return _InnerIndex(keys=keys, starts=starts, counts=counts, outer=outer, values=values, order=order)


def _expand_products(
    a_index: _InnerIndex, b_index: _InnerIndex
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized Cartesian-product expansion over matching inner indices.

    Returns ``(out_rows, out_cols, a_value_idx, b_value_idx)`` where the value
    index arrays point into the *sorted* value arrays of the two indexes.
    """
    # match inner keys present in both matrices
    common, a_pos, b_pos = np.intersect1d(
        a_index.keys, b_index.keys, assume_unique=True, return_indices=True
    )
    if common.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, empty

    a_counts = a_index.counts[a_pos]
    b_counts = b_index.counts[b_pos]
    a_starts = a_index.starts[a_pos]
    b_starts = b_index.starts[b_pos]
    pair_counts = a_counts * b_counts  # products per inner key
    total = int(pair_counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, empty

    # global slot index s in [0, total); find which inner key each slot belongs to
    group_offsets = np.zeros(common.size + 1, dtype=np.int64)
    np.cumsum(pair_counts, out=group_offsets[1:])
    slots = np.arange(total, dtype=np.int64)
    group_of_slot = np.searchsorted(group_offsets, slots, side="right") - 1
    local = slots - group_offsets[group_of_slot]
    b_count_of_slot = b_counts[group_of_slot]
    a_local = local // b_count_of_slot
    b_local = local - a_local * b_count_of_slot

    a_value_idx = a_starts[group_of_slot] + a_local
    b_value_idx = b_starts[group_of_slot] + b_local
    out_rows = a_index.outer[a_value_idx]
    out_cols = b_index.outer[b_value_idx]
    return out_rows, out_cols, a_value_idx, b_value_idx


def reduce_by_coordinate(
    out_rows: np.ndarray,
    out_cols: np.ndarray,
    products: np.ndarray,
    semiring: Semiring,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stable-sort partial products by output coordinate and reduce per group.

    Shared epilogue of every SpGEMM backend: the *stable* lexsort preserves
    the generation order of partial products within each output-coordinate
    group, which order-sensitive semirings (e.g.
    :class:`~repro.sparse.semiring.OverlapSemiring`, which keeps the first
    two seed pairs) depend on.  Backends must produce partial products in
    ascending inner-index order with input-order ties and route them through
    this helper — that is what keeps their outputs bit-identical.
    """
    if out_rows.size == 0:
        return out_rows, out_cols, np.empty(0, dtype=semiring.value_dtype)
    order = np.lexsort((out_cols, out_rows))
    out_rows = out_rows[order]
    out_cols = out_cols[order]
    products = products[order]
    changed = np.empty(out_rows.size, dtype=bool)
    changed[0] = True
    changed[1:] = (np.diff(out_rows) != 0) | (np.diff(out_cols) != 0)
    group_starts = np.flatnonzero(changed)
    values = semiring.reduce(products, group_starts)
    return out_rows[group_starts], out_cols[group_starts], values


def spgemm(
    a: CooMatrix,
    b: CooMatrix,
    semiring: Semiring | None = None,
    return_stats: bool = False,
) -> CooMatrix | tuple[CooMatrix, SpGemmStats]:
    """Compute ``C = A ·(semiring) B``.

    Parameters
    ----------
    a, b:
        COO operands with compatible shapes (``a.shape[1] == b.shape[0]``).
    semiring:
        Semiring supplying multiply/reduce; defaults to the arithmetic
        (+, ×) semiring.
    return_stats:
        If true, also return :class:`SpGemmStats` (flops, compression factor,
        intermediate memory) for the invocation.

    Notes
    -----
    The output is returned with entries sorted in row-major order and exactly
    one entry per distinct output coordinate.
    """
    if semiring is None:
        semiring = ArithmeticSemiring()
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions do not match: {a.shape} x {b.shape}")
    out_shape = (a.shape[0], b.shape[1])

    a_index = _index_by(a.cols, a.rows, a.values)
    b_index = _index_by(b.rows, b.cols, b.values)
    out_rows, out_cols, a_idx, b_idx = _expand_products(a_index, b_index)
    flops = int(out_rows.size)
    if flops == 0:
        result = CooMatrix.empty(out_shape, dtype=semiring.value_dtype)
        stats = SpGemmStats(flops=0, output_nnz=0, intermediate_bytes=0, compression_factor=1.0)
        return (result, stats) if return_stats else result

    products = semiring.multiply(a_index.values[a_idx], b_index.values[b_idx])
    intermediate_bytes = int(
        out_rows.nbytes + out_cols.nbytes + np.asarray(products).nbytes
    )

    # group by output coordinate and reduce
    out_rows, out_cols, values = reduce_by_coordinate(
        out_rows, out_cols, np.asarray(products), semiring
    )
    result = CooMatrix(out_shape, out_rows, out_cols, values, check=False)
    stats = SpGemmStats(
        flops=flops,
        output_nnz=result.nnz,
        intermediate_bytes=intermediate_bytes,
        compression_factor=flops / result.nnz if result.nnz else 1.0,
        row_groups=1,
    )
    return (result, stats) if return_stats else result


def spgemm_reference(a: CooMatrix, b: CooMatrix, semiring: Semiring | None = None) -> CooMatrix:
    """Slow dictionary-based reference SpGEMM used to validate the kernel."""
    if semiring is None:
        semiring = ArithmeticSemiring()
    if a.shape[1] != b.shape[0]:
        raise ValueError("inner dimensions do not match")
    # build an index of B by row
    b_by_row: dict[int, list[tuple[int, int]]] = {}
    for idx in range(b.nnz):
        b_by_row.setdefault(int(b.rows[idx]), []).append((int(b.cols[idx]), idx))

    accum: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for idx in range(a.nnz):
        inner = int(a.cols[idx])
        for col, b_idx in b_by_row.get(inner, ()):
            accum.setdefault((int(a.rows[idx]), col), []).append((idx, b_idx))

    if not accum:
        return CooMatrix.empty((a.shape[0], b.shape[1]), dtype=semiring.value_dtype)

    rows_out = []
    cols_out = []
    values_out = []
    for (i, j), pairs in sorted(accum.items()):
        a_vals = a.values[[p[0] for p in pairs]]
        b_vals = b.values[[p[1] for p in pairs]]
        products = semiring.multiply(a_vals, b_vals)
        reduced = semiring.reduce(np.asarray(products), np.array([0]))
        rows_out.append(i)
        cols_out.append(j)
        values_out.append(reduced[0])
    values = np.array(values_out, dtype=semiring.value_dtype)
    return CooMatrix(
        (a.shape[0], b.shape[1]),
        np.array(rows_out, dtype=np.int64),
        np.array(cols_out, dtype=np.int64),
        values,
        check=False,
    )
