"""CSR (compressed sparse row) matrix with arbitrary value dtypes.

CombBLAS stores local submatrices in CSC/DCSC; our SpGEMM kernel is
sort-based and consumes COO, but CSR is used wherever row slicing is needed
(distributing row stripes of ``A`` in the blocked SUMMA, per-sequence k-mer
lookups, and the aligner's gather of candidate pairs by row).
"""

from __future__ import annotations

import numpy as np

from .coo import CooMatrix


class CsrMatrix:
    """Compressed sparse row matrix.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)``.
    indptr:
        ``int64`` array of length ``nrows + 1``.
    indices:
        Column indices per row, concatenated.
    values:
        Values aligned with ``indices``.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.values = np.ascontiguousarray(values)
        if self.indptr.size != self.shape[0] + 1:
            raise ValueError("indptr length must be nrows + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if self.values.shape[0] != self.indices.size:
            raise ValueError("values length must equal indices length")

    # ------------------------------------------------------------------ basics
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indices.size)

    @property
    def dtype(self) -> np.dtype:
        """Value dtype."""
        return self.values.dtype

    @classmethod
    def from_coo(cls, coo: CooMatrix) -> "CsrMatrix":
        """Convert from COO (entries are sorted row-major first)."""
        m = coo.copy().sort_rowmajor()
        counts = np.bincount(m.rows, minlength=m.shape[0])
        indptr = np.zeros(m.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(m.shape, indptr, m.cols, m.values)

    def to_coo(self) -> CooMatrix:
        """Convert back to COO."""
        rows = np.repeat(np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr))
        return CooMatrix(self.shape, rows, self.indices.copy(), self.values.copy(), check=False)

    # ------------------------------------------------------------------ access
    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Column indices and values of row ``i`` (zero-copy views)."""
        if not 0 <= i < self.shape[0]:
            raise IndexError("row index out of range")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def row_nnz(self) -> np.ndarray:
        """Number of nonzeros per row."""
        return np.diff(self.indptr)

    def row_slice(self, start: int, stop: int) -> "CsrMatrix":
        """Extract rows ``[start, stop)`` as a new CSR matrix (rows relabelled)."""
        start = max(0, start)
        stop = min(self.shape[0], stop)
        lo, hi = self.indptr[start], self.indptr[stop]
        indptr = self.indptr[start : stop + 1] - lo
        return CsrMatrix(
            (stop - start, self.shape[1]),
            indptr.copy(),
            self.indices[lo:hi].copy(),
            self.values[lo:hi].copy(),
        )

    def memory_bytes(self) -> int:
        """Approximate memory footprint."""
        return int(self.indptr.nbytes + self.indices.nbytes + self.values.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CsrMatrix(shape={self.shape}, nnz={self.nnz}, dtype={self.values.dtype})"
