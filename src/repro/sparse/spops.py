"""Elementwise and structural sparse operations.

These are the helpers PASTIS needs around SpGEMM: transposition, triangular
extraction (the symmetry argument of §VI-B — only the strictly upper triangle
of the overlap matrix needs aligning), the index-parity pruning rule of the
index-based load-balancing scheme, value filtering (common-k-mer threshold,
ANI/coverage thresholds) and conversions to/from SciPy for validation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .coo import CooMatrix
from .semiring import Semiring


def transpose(matrix: CooMatrix) -> CooMatrix:
    """Transpose a COO matrix."""
    return matrix.transpose()


def triu(matrix: CooMatrix, k: int = 0) -> CooMatrix:
    """Keep entries with ``col - row >= k`` (upper triangle).

    ``k=1`` gives the strictly upper triangle used for the symmetric overlap
    matrix: each unordered sequence pair is then represented exactly once.
    """
    mask = (matrix.cols - matrix.rows) >= k
    return matrix.select(mask)


def tril(matrix: CooMatrix, k: int = 0) -> CooMatrix:
    """Keep entries with ``col - row <= k`` (lower triangle)."""
    mask = (matrix.cols - matrix.rows) <= k
    return matrix.select(mask)


def prune_by_parity(matrix: CooMatrix, keep_diagonal: bool = False) -> CooMatrix:
    """Apply the paper's index-based load-balancing pruning rule.

    From §VI-B: in the lower triangular portion keep a nonzero if its row and
    column indices are *both odd or both even*; in the upper triangular
    portion keep a nonzero if exactly one of them is odd.  The rule respects
    the matrix's symmetry (if ``(i, j)`` is kept in the upper triangle then
    ``(j, i)`` is discarded from the lower triangle and vice versa), so each
    unordered pair survives exactly once, while roughly half of every block is
    pruned — preserving the uniform nonzero distribution.

    Diagonal entries (self pairs) are dropped unless ``keep_diagonal``.
    """
    rows, cols = matrix.rows, matrix.cols
    same_parity = (rows % 2) == (cols % 2)
    lower = rows > cols
    upper = rows < cols
    keep = (lower & same_parity) | (upper & ~same_parity)
    if keep_diagonal:
        keep = keep | (rows == cols)
    return matrix.select(keep)


def filter_values(matrix: CooMatrix, predicate: Callable[[np.ndarray], np.ndarray]) -> CooMatrix:
    """Keep entries for which ``predicate(values)`` is true (vectorized)."""
    mask = np.asarray(predicate(matrix.values), dtype=bool)
    if mask.shape[0] != matrix.nnz:
        raise ValueError("predicate must return one boolean per nonzero")
    return matrix.select(mask)


def add_coo(a: CooMatrix, b: CooMatrix, semiring: Semiring | None = None) -> CooMatrix:
    """Elementwise "addition": union of the patterns, duplicates combined.

    Without a semiring, numerical values are summed.  With a semiring, the
    semiring's reduce combines collisions — this is how partial SUMMA results
    from successive stages are merged.
    """
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    rows = np.concatenate([a.rows, b.rows])
    cols = np.concatenate([a.cols, b.cols])
    if a.values.dtype != b.values.dtype:
        values = np.concatenate(
            [a.values.astype(np.float64), b.values.astype(np.float64)]
        )
    else:
        values = np.concatenate([a.values, b.values])
    merged = CooMatrix(a.shape, rows, cols, values, check=False)
    if semiring is not None:
        return merged.deduplicate(semiring)
    if values.dtype.names is not None:
        # structured values: without a semiring keep the first occurrence
        return merged.deduplicate()
    # numeric: sum duplicates
    m = merged.sort_rowmajor()
    if m.nnz == 0:
        return m
    changed = np.empty(m.nnz, dtype=bool)
    changed[0] = True
    changed[1:] = (np.diff(m.rows) != 0) | (np.diff(m.cols) != 0)
    starts = np.flatnonzero(changed)
    summed = np.add.reduceat(m.values.astype(np.float64), starts).astype(values.dtype)
    return CooMatrix(m.shape, m.rows[starts], m.cols[starts], summed, check=False)


def to_scipy_csr(matrix: CooMatrix):
    """Convert a numeric COO matrix to ``scipy.sparse.csr_matrix`` (validation)."""
    from scipy import sparse as sp

    if matrix.values.dtype.names is not None:
        raise TypeError("cannot convert structured-dtype matrix to scipy")
    return sp.csr_matrix(
        (matrix.values.astype(np.float64), (matrix.rows, matrix.cols)), shape=matrix.shape
    )


def from_scipy(matrix) -> CooMatrix:
    """Convert any SciPy sparse matrix to :class:`CooMatrix`."""
    coo = matrix.tocoo()
    return CooMatrix(
        coo.shape,
        coo.row.astype(np.int64),
        coo.col.astype(np.int64),
        np.asarray(coo.data),
        check=False,
    )


def symmetrize_pattern(matrix: CooMatrix) -> CooMatrix:
    """Return the union of a matrix's pattern with its transpose's pattern.

    Used when turning the (upper-triangular) similarity graph back into a
    symmetric adjacency structure for clustering.
    """
    rows = np.concatenate([matrix.rows, matrix.cols])
    cols = np.concatenate([matrix.cols, matrix.rows])
    values = np.concatenate([matrix.values, matrix.values])
    return CooMatrix(matrix.shape, rows, cols, values, check=False).deduplicate()
