"""Compiled (numba) row-wise Gustavson SpGEMM — optional fast backend.

The pure-NumPy Gustavson kernel in :mod:`repro.sparse.gustavson` replaces
the per-row hash table of a scalar Gustavson implementation with a stable
sort over each flop-bounded row group — vectorized, but paying an
``O(group_flops log group_flops)`` sort plus several materialized index
arrays per group.  This module compiles the *scalar* formulation instead: a
dense sparse accumulator (SPA) per output row, accumulating partial
products in place as they are enumerated.

Bit-identity with the other registered backends
(``tests/test_spgemm_equivalence.py``) follows from two properties:

* Partial products for an output entry are enumerated in ascending
  inner-index order with ties in input order — the A row's CSR entries are
  walked left to right (``CsrMatrix.from_coo`` sorts row-major with a
  stable sort, so duplicate coordinates keep input order), and each B row
  is walked left to right too.  That is exactly the order the
  sort–expand–reduce kernel's stable sort produces.
* The SPA accumulates with a scalar ``acc += v`` in that order — the strict
  left-to-right association :func:`repro.sparse.semiring.sequential_segment_sum`
  reproduces for the NumPy kernels — and the overlap semiring's SPA keeps
  the first two seed pairs by arrival, matching
  :meth:`~repro.sparse.semiring.OverlapSemiring.reduce`.

Rows are processed in the *same* flop-bounded groups as the NumPy Gustavson
kernel (the grouping code is shared logic), so ``SpGemmStats.row_groups``
agrees as well; ``intermediate_bytes`` reports the SPA footprint
(``O(ncols)`` — the compiled kernel suits outputs with bounded column
counts, i.e. every sequence-by-sequence consumer in this package, not the
hypersparse k-mer dimension).

This module raises ``ImportError`` when numba is not installed; the kernel
registry (:mod:`repro.sparse.kernels`) gates registration on that, so the
``"gustavson-numba"`` backend is simply absent — never broken — on
numba-free installs.  Install it with the ``[fast]`` extra.
"""

from __future__ import annotations

import numpy as np

import numba
from numba import njit

from .coo import CooMatrix
from .csr import CsrMatrix
from .gustavson import DEFAULT_BATCH_FLOPS, _require_sorted_columns
from .semiring import OVERLAP_DTYPE, ArithmeticSemiring, Semiring
from .spgemm import SpGemmStats

__all__ = ["spgemm_gustavson_numba", "NUMBA_VERSION"]

#: Version of the numba runtime backing the compiled kernels.
NUMBA_VERSION = numba.__version__


@njit
def _spa_rows_arithmetic(
    a_indptr,
    a_indices,
    a_values,
    b_indptr,
    b_indices,
    b_values,
    r_lo,
    r_hi,
    acc,
    last_row,
    touched,
    out_rows,
    out_cols,
    out_vals,
):
    """SPA Gustavson over output rows [r_lo, r_hi) for the (+, x) semiring.

    ``acc``/``last_row``/``touched`` are caller-owned scratch of length
    ``ncols`` (``last_row`` initialized to -1 once; the marker makes
    clearing unnecessary).  Returns the number of entries emitted.
    """
    pos = 0
    for i in range(r_lo, r_hi):
        n_touched = 0
        for aa in range(a_indptr[i], a_indptr[i + 1]):
            k = a_indices[aa]
            av = a_values[aa]
            for bb in range(b_indptr[k], b_indptr[k + 1]):
                j = b_indices[bb]
                prod = av * b_values[bb]
                if last_row[j] != i:
                    last_row[j] = i
                    touched[n_touched] = j
                    n_touched += 1
                    acc[j] = prod
                else:
                    acc[j] = acc[j] + prod
        cols_sorted = np.sort(touched[:n_touched])
        for t in range(n_touched):
            j = cols_sorted[t]
            out_rows[pos] = i
            out_cols[pos] = j
            out_vals[pos] = acc[j]
            pos += 1
    return pos


@njit
def _spa_rows_overlap(
    a_indptr,
    a_indices,
    a_values,
    b_indptr,
    b_indices,
    b_values,
    r_lo,
    r_hi,
    acc_count,
    acc_fa,
    acc_fb,
    acc_sa,
    acc_sb,
    last_row,
    touched,
    out_rows,
    out_cols,
    out_count,
    out_fa,
    out_fb,
    out_sa,
    out_sb,
):
    """SPA Gustavson over output rows [r_lo, r_hi) for the overlap semiring.

    Accumulates the shared-k-mer count and the first two (a, b) seed-position
    pairs by arrival order — the same "first two elements of the sorted
    group" rule :meth:`OverlapSemiring.reduce` applies.
    """
    pos = 0
    for i in range(r_lo, r_hi):
        n_touched = 0
        for aa in range(a_indptr[i], a_indptr[i + 1]):
            k = a_indices[aa]
            a_pos = a_values[aa]
            for bb in range(b_indptr[k], b_indptr[k + 1]):
                j = b_indices[bb]
                b_pos = b_values[bb]
                if last_row[j] != i:
                    last_row[j] = i
                    touched[n_touched] = j
                    n_touched += 1
                    acc_count[j] = 1
                    acc_fa[j] = a_pos
                    acc_fb[j] = b_pos
                    acc_sa[j] = -1
                    acc_sb[j] = -1
                else:
                    if acc_count[j] == 1:
                        acc_sa[j] = a_pos
                        acc_sb[j] = b_pos
                    acc_count[j] = acc_count[j] + 1
        cols_sorted = np.sort(touched[:n_touched])
        for t in range(n_touched):
            j = cols_sorted[t]
            out_rows[pos] = i
            out_cols[pos] = j
            out_count[pos] = acc_count[j]
            out_fa[pos] = acc_fa[j]
            out_fb[pos] = acc_fb[j]
            out_sa[pos] = acc_sa[j]
            out_sb[pos] = acc_sb[j]
            pos += 1
    return pos


def spgemm_gustavson_numba(
    a: CooMatrix | CsrMatrix,
    b: CooMatrix | CsrMatrix,
    semiring: Semiring | None = None,
    return_stats: bool = False,
    batch_flops: int = DEFAULT_BATCH_FLOPS,
) -> CooMatrix | tuple[CooMatrix, SpGemmStats]:
    """Compute ``C = A ·(semiring) B`` with a compiled scalar SPA Gustavson.

    Accepts the same operands, flop-budget keyword, and semirings
    (``plus_times`` and ``overlap``) as the NumPy Gustavson kernel, and is
    bit-identical to it on results and flop/nnz/row-group stats.  The flop
    budget still sets the row grouping (and therefore the size of the
    per-group emit buffers); the SPA itself is ``O(ncols)`` regardless.
    """
    if semiring is None:
        semiring = ArithmeticSemiring()
    name = getattr(semiring, "name", None)
    if name not in ("plus_times", "overlap"):
        raise ValueError(
            "the 'gustavson-numba' backend supports the plus_times and "
            f"overlap semirings, got {semiring!r}"
        )
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions do not match: {a.shape} x {b.shape}")
    if batch_flops < 1:
        raise ValueError("batch_flops must be >= 1")
    out_shape = (a.shape[0], b.shape[1])

    if isinstance(a, CsrMatrix):
        _require_sorted_columns(a, "a")
        a_csr = a
    else:
        a_csr = CsrMatrix.from_coo(a)
    if isinstance(b, CsrMatrix):
        _require_sorted_columns(b, "b")
        b_csr = b
    else:
        b_csr = CsrMatrix.from_coo(b)

    b_row_nnz = np.diff(b_csr.indptr)
    entry_cost = b_row_nnz[a_csr.indices] if a_csr.nnz else np.empty(0, dtype=np.int64)
    flops = int(entry_cost.sum())
    if flops == 0:
        result = CooMatrix.empty(out_shape, dtype=semiring.value_dtype)
        stats = SpGemmStats(flops=0, output_nnz=0, intermediate_bytes=0, compression_factor=1.0)
        return (result, stats) if return_stats else result

    entry_cum = np.zeros(a_csr.nnz + 1, dtype=np.int64)
    np.cumsum(entry_cost, out=entry_cum[1:])
    row_cum = entry_cum[a_csr.indptr]

    nrows, ncols = out_shape
    a_indptr = a_csr.indptr
    a_indices = a_csr.indices
    b_indptr = b_csr.indptr
    b_indices = b_csr.indices
    last_row = np.full(ncols, -1, dtype=np.int64)
    touched = np.empty(ncols, dtype=np.int64)

    overlap = name == "overlap"
    if overlap:
        a_values = np.ascontiguousarray(a_csr.values).astype(np.int32, copy=False)
        b_values = np.ascontiguousarray(b_csr.values).astype(np.int32, copy=False)
        acc_count = np.empty(ncols, dtype=np.int64)
        acc_fa = np.empty(ncols, dtype=np.int32)
        acc_fb = np.empty(ncols, dtype=np.int32)
        acc_sa = np.empty(ncols, dtype=np.int32)
        acc_sb = np.empty(ncols, dtype=np.int32)
        spa_bytes = (
            last_row.nbytes + touched.nbytes + acc_count.nbytes
            + acc_fa.nbytes + acc_fb.nbytes + acc_sa.nbytes + acc_sb.nbytes
        )
    else:
        a_values = np.asarray(a_csr.values, dtype=np.float64)
        b_values = np.asarray(b_csr.values, dtype=np.float64)
        acc = np.empty(ncols, dtype=np.float64)
        spa_bytes = last_row.nbytes + touched.nbytes + acc.nbytes

    rows_parts: list[np.ndarray] = []
    cols_parts: list[np.ndarray] = []
    vals_parts: list[np.ndarray] = []
    peak_bytes = 0

    # identical flop-bounded row grouping to the NumPy Gustavson kernel, so
    # SpGemmStats.row_groups agrees backend-to-backend
    r = 0
    while r < nrows:
        r_next = int(np.searchsorted(row_cum, row_cum[r] + batch_flops, side="right")) - 1
        r_next = min(max(r_next, r + 1), nrows)
        lo, hi = int(a_csr.indptr[r]), int(a_csr.indptr[r_next])
        r_lo, r = r, r_next
        if lo == hi:
            continue
        group_flops = int(entry_cum[hi] - entry_cum[lo])
        if group_flops == 0:
            continue
        # output nnz of the group is at most its flop count
        out_rows = np.empty(group_flops, dtype=np.int64)
        out_cols = np.empty(group_flops, dtype=np.int64)
        if overlap:
            out_count = np.empty(group_flops, dtype=np.int64)
            out_fa = np.empty(group_flops, dtype=np.int32)
            out_fb = np.empty(group_flops, dtype=np.int32)
            out_sa = np.empty(group_flops, dtype=np.int32)
            out_sb = np.empty(group_flops, dtype=np.int32)
            n_out = _spa_rows_overlap(
                a_indptr, a_indices, a_values, b_indptr, b_indices, b_values,
                r_lo, r_next,
                acc_count, acc_fa, acc_fb, acc_sa, acc_sb, last_row, touched,
                out_rows, out_cols, out_count, out_fa, out_fb, out_sa, out_sb,
            )
            group_vals = np.empty(n_out, dtype=OVERLAP_DTYPE)
            group_vals["count"] = out_count[:n_out].astype(np.int32)
            group_vals["first_pos_a"] = out_fa[:n_out]
            group_vals["first_pos_b"] = out_fb[:n_out]
            group_vals["second_pos_a"] = out_sa[:n_out]
            group_vals["second_pos_b"] = out_sb[:n_out]
            emit_bytes = (
                out_rows.nbytes + out_cols.nbytes + out_count.nbytes
                + out_fa.nbytes + out_fb.nbytes + out_sa.nbytes + out_sb.nbytes
            )
        else:
            out_vals = np.empty(group_flops, dtype=np.float64)
            n_out = _spa_rows_arithmetic(
                a_indptr, a_indices, a_values, b_indptr, b_indices, b_values,
                r_lo, r_next,
                acc, last_row, touched,
                out_rows, out_cols, out_vals,
            )
            group_vals = out_vals[:n_out].copy()
            emit_bytes = out_rows.nbytes + out_cols.nbytes + out_vals.nbytes
        peak_bytes = max(peak_bytes, spa_bytes + emit_bytes)
        rows_parts.append(out_rows[:n_out].copy())
        cols_parts.append(out_cols[:n_out].copy())
        vals_parts.append(group_vals)

    result = CooMatrix(
        out_shape,
        np.concatenate(rows_parts),
        np.concatenate(cols_parts),
        np.concatenate(vals_parts),
        check=False,
    )
    stats = SpGemmStats(
        flops=flops,
        output_nnz=result.nnz,
        intermediate_bytes=peak_bytes,
        compression_factor=flops / result.nnz if result.nnz else 1.0,
        row_groups=len(rows_parts),
    )
    return (result, stats) if return_stats else result


#: Semiring capability declaration consumed by ``kernel_supports_semiring``.
spgemm_gustavson_numba.supported_semirings = ("plus_times", "overlap")
