"""Local semiring sparse-matrix substrate (the CombBLAS-like layer).

PASTIS stores every piece of search state in sparse matrices whose elements
are *custom data types* (seed positions, common-k-mer counts, alignment
scores) and manipulates them with *semirings* — user-defined multiply/add
operators plugged into SpGEMM.  This subpackage provides that substrate for a
single process; :mod:`repro.distsparse` layers the 2D distribution and SUMMA
algorithms on top.

Contents
--------
* :mod:`repro.sparse.semiring` — the semiring abstraction and the concrete
  semirings used by the pipeline (arithmetic, boolean/count, min-plus, and
  the overlap semiring carrying seed positions).
* :mod:`repro.sparse.coo` / :mod:`repro.sparse.csr` /
  :mod:`repro.sparse.dcsc` — storage formats (COO triplets, CSR, and the
  doubly-compressed sparse column format CombBLAS uses for hypersparse
  submatrices).
* :mod:`repro.sparse.spgemm` — sort/expand/reduce semiring SpGEMM with
  flop (compression-factor) accounting.
* :mod:`repro.sparse.spops` — transpose, triangular extraction, parity
  pruning, elementwise filtering, conversions.
"""

from .semiring import (
    Semiring,
    ArithmeticSemiring,
    CountSemiring,
    MinPlusSemiring,
    MaxSemiring,
    OverlapSemiring,
    OVERLAP_DTYPE,
)
from .coo import CooMatrix
from .csr import CsrMatrix
from .dcsc import DcscMatrix
from .spgemm import spgemm, SpGemmStats
from .spops import (
    transpose,
    triu,
    tril,
    prune_by_parity,
    filter_values,
    to_scipy_csr,
    from_scipy,
    add_coo,
)

__all__ = [
    "Semiring",
    "ArithmeticSemiring",
    "CountSemiring",
    "MinPlusSemiring",
    "MaxSemiring",
    "OverlapSemiring",
    "OVERLAP_DTYPE",
    "CooMatrix",
    "CsrMatrix",
    "DcscMatrix",
    "spgemm",
    "SpGemmStats",
    "transpose",
    "triu",
    "tril",
    "prune_by_parity",
    "filter_values",
    "to_scipy_csr",
    "from_scipy",
    "add_coo",
]
