"""Local semiring sparse-matrix substrate (the CombBLAS-like layer).

PASTIS stores every piece of search state in sparse matrices whose elements
are *custom data types* (seed positions, common-k-mer counts, alignment
scores) and manipulates them with *semirings* — user-defined multiply/add
operators plugged into SpGEMM.  This subpackage provides that substrate for a
single process; :mod:`repro.distsparse` layers the 2D distribution and SUMMA
algorithms on top.

Contents
--------
* :mod:`repro.sparse.semiring` — the semiring abstraction and the concrete
  semirings used by the pipeline (arithmetic, boolean/count, min-plus, and
  the overlap semiring carrying seed positions).
* :mod:`repro.sparse.coo` / :mod:`repro.sparse.csr` /
  :mod:`repro.sparse.dcsc` — storage formats (COO triplets, CSR, and the
  doubly-compressed sparse column format CombBLAS uses for hypersparse
  submatrices).
* :mod:`repro.sparse.spgemm` — sort/expand/reduce semiring SpGEMM with
  flop (compression-factor) accounting.
* :mod:`repro.sparse.gustavson` — row-wise Gustavson SpGEMM whose peak
  intermediate memory is bounded by a per-row-group flop budget instead of
  the total flop count.
* :mod:`repro.sparse.kernels` — the SpGEMM **kernel registry**.  Backends
  are selected by name (``"expand"`` or ``"gustavson"``) via
  :func:`~repro.sparse.kernels.get_kernel` /
  :func:`~repro.sparse.kernels.resolve_kernel`, and new ones can be added
  with :func:`~repro.sparse.kernels.register_kernel`.
* :mod:`repro.sparse.spops` — transpose, triangular extraction, parity
  pruning, elementwise filtering, conversions.

Choosing a backend
------------------
Both kernels return bit-identical outputs and flop/nnz statistics (the
randomized harness in ``tests/test_spgemm_equivalence.py`` asserts this), so
the choice is purely about resources.  The deciding quantity is the
*compression factor* ``flops / output nnz`` (§V-B of the paper): the
``"expand"`` kernel materializes every partial product at once, so its peak
memory grows with flops; the ``"gustavson"`` kernel forms the output in
flop-bounded row groups, so its peak memory stays near the output size.
With a high compression factor (popular k-mers, dense overlap structure)
prefer ``"gustavson"``; at low compression ``"expand"``'s single vectorized
pass is the faster choice; ``"auto"`` makes that call per invocation from
:func:`~repro.sparse.kernels.predict_compression_factor`.  End to end, the
backend is picked with ``PastisParams(spgemm_backend=...)`` (default
``"gustavson"``, the memory-safe choice for the overlap semiring), which
the pipeline routes through
:class:`repro.distsparse.blocked_summa.BlockedSpGemm` into every SUMMA
stage; ``benchmarks/bench_kernels.py`` reports a head-to-head.
"""

from .semiring import (
    Semiring,
    ArithmeticSemiring,
    CountSemiring,
    MinPlusSemiring,
    MaxSemiring,
    OverlapSemiring,
    OVERLAP_DTYPE,
)
from .coo import CooMatrix
from .csr import CsrMatrix
from .dcsc import DcscMatrix
from .spgemm import spgemm, SpGemmStats
from .gustavson import spgemm_gustavson
from .kernels import (
    AUTO_COMPRESSION_THRESHOLD,
    DEFAULT_KERNEL,
    DEFAULT_OVERLAP_KERNEL,
    available_kernels,
    get_kernel,
    kernel_supports_batch_flops,
    predict_compression_factor,
    register_kernel,
    resolve_kernel,
    spgemm_auto,
)
from .spops import (
    transpose,
    triu,
    tril,
    prune_by_parity,
    filter_values,
    to_scipy_csr,
    from_scipy,
    add_coo,
)

__all__ = [
    "Semiring",
    "ArithmeticSemiring",
    "CountSemiring",
    "MinPlusSemiring",
    "MaxSemiring",
    "OverlapSemiring",
    "OVERLAP_DTYPE",
    "CooMatrix",
    "CsrMatrix",
    "DcscMatrix",
    "spgemm",
    "spgemm_gustavson",
    "SpGemmStats",
    "AUTO_COMPRESSION_THRESHOLD",
    "DEFAULT_KERNEL",
    "DEFAULT_OVERLAP_KERNEL",
    "available_kernels",
    "get_kernel",
    "kernel_supports_batch_flops",
    "predict_compression_factor",
    "register_kernel",
    "resolve_kernel",
    "spgemm_auto",
    "transpose",
    "triu",
    "tril",
    "prune_by_parity",
    "filter_values",
    "to_scipy_csr",
    "from_scipy",
    "add_coo",
]
