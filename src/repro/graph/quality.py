"""Cluster-quality metrics for similarity-graph partitions.

A clustering of the similarity graph is only useful if it can be judged:
modularity says whether intra-cluster edge weight beats the random-graph
expectation, the intra/inter mean scores say whether the partition actually
separates strong alignments from borderline ones, and the size histogram is
the quantity protein-family catalogs report.  All metrics work on any label
vector — connected components, MCL, or an external tool's output — so the
two clustering paths in :mod:`repro.graph` can be compared on equal terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .matrix import similarity_weights


def cluster_sizes(labels: np.ndarray) -> np.ndarray:
    """Members per cluster, indexed by label."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(labels)


def size_histogram(labels: np.ndarray) -> dict[int, int]:
    """``{cluster size: number of clusters of that size}`` (catalog style)."""
    sizes = cluster_sizes(labels)
    uniq, counts = np.unique(sizes[sizes > 0], return_counts=True)
    return {int(s): int(c) for s, c in zip(uniq, counts)}


def pairwise_f1(true_labels: np.ndarray, pred_labels: np.ndarray) -> float:
    """F1 over co-clustered pairs against a ground-truth partition.

    Truth labels < 0 mark singletons that belong to no family — pairs
    involving them count on neither side of the recall denominator (the
    convention of the synthetic generator's
    :func:`repro.sequences.synthetic.family_labels`).  Materializes all
    ``n(n-1)/2`` pairs, so it is an evaluation-scale metric.
    """
    true_labels = np.asarray(true_labels, dtype=np.int64)
    pred_labels = np.asarray(pred_labels, dtype=np.int64)
    if true_labels.shape != pred_labels.shape:
        raise ValueError("label vectors must have the same length")
    ii, jj = np.triu_indices(true_labels.size, k=1)
    true_pairs = (true_labels[ii] >= 0) & (true_labels[ii] == true_labels[jj])
    pred_pairs = pred_labels[ii] == pred_labels[jj]
    tp = int(np.count_nonzero(true_pairs & pred_pairs))
    if tp == 0:
        return 0.0
    precision = tp / int(np.count_nonzero(pred_pairs))
    recall = tp / int(np.count_nonzero(true_pairs))
    return 2 * precision * recall / (precision + recall)


def modularity(graph, labels: np.ndarray, transform: str = "unit") -> float:
    """Newman modularity of a partition, under an edge-weight transform.

    ``Q = Σ_c (w_c / m − (d_c / 2m)²)`` over clusters ``c``, where ``w_c``
    is intra-cluster edge weight, ``d_c`` the summed weighted degree, and
    ``m`` the total edge weight.  Positive values mean more intra-cluster
    weight than a degree-preserving random graph would give; 0 for an
    edgeless graph.
    """
    labels = np.asarray(labels, dtype=np.int64)
    edges = graph.edges
    if labels.size != graph.n_vertices:
        raise ValueError("labels length must equal n_vertices")
    if edges.size == 0:
        return 0.0
    weights = similarity_weights(edges, transform)
    m = float(weights.sum())
    if m <= 0:
        return 0.0
    rows = np.asarray(edges["row"], dtype=np.int64)
    cols = np.asarray(edges["col"], dtype=np.int64)
    n_clusters = int(labels.max()) + 1
    intra_mask = labels[rows] == labels[cols]
    intra_w = np.bincount(labels[rows[intra_mask]], weights=weights[intra_mask],
                          minlength=n_clusters)
    degree = np.zeros(labels.max() + 1, dtype=np.float64)
    np.add.at(degree, labels[rows], weights)
    np.add.at(degree, labels[cols], weights)
    return float(np.sum(intra_w / m - (degree / (2.0 * m)) ** 2))


@dataclass
class ClusterQuality:
    """Summary quality metrics of one similarity-graph partition."""

    n_clusters: int = 0
    modularity: float = 0.0
    intra_mean_score: float = 0.0
    inter_mean_score: float = 0.0
    intra_edge_fraction: float = 1.0
    largest_cluster: int = 0
    singleton_clusters: int = 0
    size_histogram: dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        """Flat JSON-serializable view."""
        return {
            "n_clusters": self.n_clusters,
            "modularity": self.modularity,
            "intra_mean_score": self.intra_mean_score,
            "inter_mean_score": self.inter_mean_score,
            "intra_edge_fraction": self.intra_edge_fraction,
            "largest_cluster": self.largest_cluster,
            "singleton_clusters": self.singleton_clusters,
            "size_histogram": {str(k): v for k, v in self.size_histogram.items()},
        }


def evaluate_clustering(
    graph, labels: np.ndarray, transform: str = "unit"
) -> ClusterQuality:
    """Compute all quality metrics of a partition in one pass."""
    labels = np.asarray(labels, dtype=np.int64)
    sizes = cluster_sizes(labels)
    edges = graph.edges
    intra_mean = inter_mean = 0.0
    intra_fraction = 1.0
    if edges.size:
        intra_mask = labels[edges["row"]] == labels[edges["col"]]
        scores = np.asarray(edges["score"], dtype=np.float64)
        if np.any(intra_mask):
            intra_mean = float(scores[intra_mask].mean())
        if np.any(~intra_mask):
            inter_mean = float(scores[~intra_mask].mean())
        intra_fraction = float(intra_mask.mean())
    return ClusterQuality(
        n_clusters=int(sizes.size),
        modularity=modularity(graph, labels, transform),
        intra_mean_score=intra_mean,
        inter_mean_score=inter_mean,
        intra_edge_fraction=intra_fraction,
        largest_cluster=int(sizes.max()) if sizes.size else 0,
        singleton_clusters=int(np.count_nonzero(sizes == 1)),
        size_histogram=size_histogram(labels),
    )
