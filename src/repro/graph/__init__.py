"""repro.graph — similarity-graph clustering: the search output as a workload.

The paper frames the similarity graph as the *product* of the search, whose
downstream use is "clustering sequences into protein families".  This
subsystem makes that downstream step a first-class sparse-compute pipeline
on the same substrates the search uses:

* :mod:`repro.graph.matrix` — column-stochastic transition matrices over
  the similarity graph (transpose-CSR storage; expansion, inflation and
  pruning operators);
* :mod:`repro.graph.mcl` — sparse Markov clustering, with expansion
  executed through the SpGEMM kernel registry under the plain arithmetic
  semiring (bit-identical across every registered backend, including the
  ``"scipy"`` fast path) and per-iteration flop/nnz/pruned-mass stats;
* :mod:`repro.graph.dist` — *distributed* Markov clustering on the 2D
  process grid (see the stage map below);
* :mod:`repro.graph.components` — dependency-free union-find connected
  components (also backing
  :meth:`~repro.core.similarity_graph.SimilarityGraph.connected_components`);
* :mod:`repro.graph.quality` — modularity, intra/inter-cluster score
  separation, and family-size histograms for judging any partition;
* :mod:`repro.graph.api` — :class:`ClusterParams` (embedded in
  ``PastisParams.cluster``) and :func:`cluster_similarity_graph`, the
  entry point the pipeline's optional post-graph ``cluster`` stage calls.

**MCL stages and their paper counterparts.**  Distributed MCL reuses,
stage for stage, the machinery the paper builds for the search:

========================  =====================================================
MCL stage                 paper counterpart
========================  =====================================================
expansion ``M·M``         the overlap SpGEMM ``A·Aᵀ`` — 2D Sparse SUMMA on the
                          ``sqrt(p) x sqrt(p)`` grid (§V-B), blocked into
                          stored-row stripes exactly like the blocked output
                          of §VI-A (``br = sqrt(p), bc = 1``), broadcasts
                          charged with the ``(alpha + beta·s) log sqrt(p)``
                          terms of the SUMMA cost analysis
inflation / pruning       the per-block element selection and common-k-mer
                          filtering — grid-local streaming passes, with the
                          column-renormalization allreduce standing in for
                          the paper's bulk-synchronous reductions
expand/prune overlap      §VI-C pre-blocking: ``expand(b+1)`` hides behind
                          ``prune(b)`` on the simulated clock, hidden seconds
                          ledgered (``cluster_overlap_hidden``) exactly like
                          the search's ``overlap_hidden``
cost accounting           Table II / Table IV component breakdowns — the
                          ``cluster_expand``/``cluster_prune``/``cluster_comm``
                          ledger categories and ``cluster_bytes_*`` counters
========================  =====================================================

The subsystem imports nothing from :mod:`repro.core` (graphs are
duck-typed), so the core can embed its config and call it freely.
"""

from .api import (
    CLUSTER_METHODS,
    ClusteringResult,
    ClusterParams,
    cluster_similarity_graph,
)
from .components import (
    UnionFind,
    canonical_labels,
    component_roots,
    connected_components,
)
from .dist import (
    CLUSTER_COMM_CATEGORY,
    CLUSTER_EXPAND_CATEGORY,
    CLUSTER_OVERLAP_HIDDEN_CATEGORY,
    CLUSTER_PRUNE_CATEGORY,
    DistMarkovClustering,
    DistMclIterationStats,
    DistMclResult,
    DistStochasticMatrix,
    expansion_broadcast_bytes,
)
from .matrix import WEIGHT_TRANSFORMS, PruneStats, StochasticMatrix, similarity_weights
from .mcl import MarkovClustering, MclIterationStats, MclResult, interpret_clusters
from .quality import (
    ClusterQuality,
    cluster_sizes,
    evaluate_clustering,
    modularity,
    pairwise_f1,
    size_histogram,
)

__all__ = [
    "CLUSTER_METHODS",
    "ClusterParams",
    "ClusteringResult",
    "cluster_similarity_graph",
    "CLUSTER_COMM_CATEGORY",
    "CLUSTER_EXPAND_CATEGORY",
    "CLUSTER_OVERLAP_HIDDEN_CATEGORY",
    "CLUSTER_PRUNE_CATEGORY",
    "DistMarkovClustering",
    "DistMclIterationStats",
    "DistMclResult",
    "DistStochasticMatrix",
    "expansion_broadcast_bytes",
    "UnionFind",
    "canonical_labels",
    "component_roots",
    "connected_components",
    "WEIGHT_TRANSFORMS",
    "PruneStats",
    "StochasticMatrix",
    "similarity_weights",
    "MarkovClustering",
    "MclIterationStats",
    "MclResult",
    "interpret_clusters",
    "ClusterQuality",
    "cluster_sizes",
    "evaluate_clustering",
    "modularity",
    "pairwise_f1",
    "size_histogram",
]
