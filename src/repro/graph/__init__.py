"""repro.graph — similarity-graph clustering: the search output as a workload.

The paper frames the similarity graph as the *product* of the search, whose
downstream use is "clustering sequences into protein families".  This
subsystem makes that downstream step a first-class sparse-compute pipeline
on the same substrates the search uses:

* :mod:`repro.graph.matrix` — column-stochastic transition matrices over
  the similarity graph (transpose-CSR storage; expansion, inflation and
  pruning operators);
* :mod:`repro.graph.mcl` — sparse Markov clustering, with expansion
  executed through the SpGEMM kernel registry under the plain arithmetic
  semiring (bit-identical across every registered backend, including the
  ``"scipy"`` fast path) and per-iteration flop/nnz/pruned-mass stats;
* :mod:`repro.graph.components` — dependency-free union-find connected
  components (also backing
  :meth:`~repro.core.similarity_graph.SimilarityGraph.connected_components`);
* :mod:`repro.graph.quality` — modularity, intra/inter-cluster score
  separation, and family-size histograms for judging any partition;
* :mod:`repro.graph.api` — :class:`ClusterParams` (embedded in
  ``PastisParams.cluster``) and :func:`cluster_similarity_graph`, the
  entry point the pipeline's optional post-graph ``cluster`` stage calls.

The subsystem imports nothing from :mod:`repro.core` (graphs are
duck-typed), so the core can embed its config and call it freely.
"""

from .api import (
    CLUSTER_METHODS,
    ClusteringResult,
    ClusterParams,
    cluster_similarity_graph,
)
from .components import (
    UnionFind,
    canonical_labels,
    component_roots,
    connected_components,
)
from .matrix import WEIGHT_TRANSFORMS, PruneStats, StochasticMatrix, similarity_weights
from .mcl import MarkovClustering, MclIterationStats, MclResult, interpret_clusters
from .quality import (
    ClusterQuality,
    cluster_sizes,
    evaluate_clustering,
    modularity,
    pairwise_f1,
    size_histogram,
)

__all__ = [
    "CLUSTER_METHODS",
    "ClusterParams",
    "ClusteringResult",
    "cluster_similarity_graph",
    "UnionFind",
    "canonical_labels",
    "component_roots",
    "connected_components",
    "WEIGHT_TRANSFORMS",
    "PruneStats",
    "StochasticMatrix",
    "similarity_weights",
    "MarkovClustering",
    "MclIterationStats",
    "MclResult",
    "interpret_clusters",
    "ClusterQuality",
    "cluster_sizes",
    "evaluate_clustering",
    "modularity",
    "pairwise_f1",
    "size_histogram",
]
