"""Union-find connected components over the similarity graph.

The seed's component labelling leaned on ``scipy.sparse.csgraph`` — fine at
toy scale, but it materializes a CSR adjacency (two directed copies of every
edge) just to answer a connectivity question, and it drags a heavyweight
dependency into the one output-side operation every run performs.  This
module provides two dependency-free replacements: :func:`component_roots`,
a vectorized Shiloach–Vishkin-style min-hooking + pointer-jumping sweep
(``O(log n)`` whole-edge-array NumPy passes, no per-edge Python loop — the
path :func:`connected_components` takes), and :class:`UnionFind` (path
halving + union by rank) for incremental unions where edges arrive one at a
time.  Both label components in order of their smallest vertex — exactly
the labelling the SciPy path produced, so the replacement is bit for bit
(asserted in ``tests/test_graph.py``).

The module deliberately imports nothing from :mod:`repro.core`: it operates
on any object exposing ``n_vertices`` and an ``edges`` record array with
``row``/``col`` fields (duck-typed :class:`~repro.core.similarity_graph.SimilarityGraph`),
which keeps ``repro.graph`` a leaf subsystem the core can import freely.
"""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Disjoint-set forest with union by rank and path halving."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.int64)
        self.rank = np.zeros(n, dtype=np.int8)
        self.n_sets = n

    def find(self, i: int) -> int:
        """Root of ``i``'s set (halves the path as it walks)."""
        parent = self.parent
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return int(i)

    def union(self, i: int, j: int) -> bool:
        """Merge the sets of ``i`` and ``j``; returns whether a merge happened."""
        ri, rj = self.find(i), self.find(j)
        if ri == rj:
            return False
        if self.rank[ri] < self.rank[rj]:
            ri, rj = rj, ri
        self.parent[rj] = ri
        if self.rank[ri] == self.rank[rj]:
            self.rank[ri] += 1
        self.n_sets -= 1
        return True

    def union_edges(self, rows: np.ndarray, cols: np.ndarray) -> None:
        """Union every ``(rows[k], cols[k])`` pair."""
        for i, j in zip(rows.tolist(), cols.tolist()):
            self.union(i, j)

    def labels(self) -> np.ndarray:
        """Canonical component label per element.

        Components are numbered in order of their smallest member, which is
        also the order a vertex-index scan first meets them — the labelling
        ``scipy.sparse.csgraph.connected_components`` uses.
        """
        n = self.parent.size
        roots = np.fromiter((self.find(i) for i in range(n)), dtype=np.int64, count=n)
        return canonical_labels(roots)


def component_roots(n: int, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Smallest vertex of each vertex's component, fully vectorized.

    Shiloach–Vishkin-style: every round hooks each edge endpoint's parent
    onto the smaller of the two (``np.minimum.at``), then pointer-jumps
    parents to full compression.  Each round is a handful of whole-array
    NumPy operations and component diameters at least halve per round, so
    the sweep finishes in ``O(log n)`` rounds — no per-edge Python loop.
    """
    parent = np.arange(n, dtype=np.int64)
    if rows.size == 0 or n == 0:
        return parent
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    while True:
        pu = parent[rows]
        pv = parent[cols]
        if not np.any(pu != pv):
            return parent
        np.minimum.at(parent, np.maximum(pu, pv), np.minimum(pu, pv))
        while True:
            jumped = parent[parent]
            if np.array_equal(jumped, parent):
                break
            parent = jumped


def canonical_labels(roots: np.ndarray) -> np.ndarray:
    """Relabel arbitrary component roots to 0..k-1 in first-occurrence order."""
    if roots.size == 0:
        return roots.astype(np.int64)
    uniq, first_index, inverse = np.unique(roots, return_index=True, return_inverse=True)
    remap = np.empty(uniq.size, dtype=np.int64)
    remap[np.argsort(first_index, kind="stable")] = np.arange(uniq.size)
    return remap[inverse]


def connected_components(graph) -> np.ndarray:
    """Component label per vertex of a similarity graph.

    ``graph`` is anything with ``n_vertices`` and an ``edges`` record array
    carrying ``row``/``col``.  Labels are assigned in order of each
    component's smallest vertex; isolated vertices get singleton labels.
    """
    edges = graph.edges
    if edges.size == 0:
        return np.arange(int(graph.n_vertices), dtype=np.int64)
    roots = component_roots(
        int(graph.n_vertices),
        np.asarray(edges["row"], dtype=np.int64),
        np.asarray(edges["col"], dtype=np.int64),
    )
    return canonical_labels(roots)
