"""High-level clustering API: similarity graph in, protein families out.

:func:`cluster_similarity_graph` is the one call the pipeline (and users)
make; :class:`ClusterParams` is the sub-config ``PastisParams.cluster``
embeds, so a clustering run is configured next to the search that feeds it.
Two methods are offered: ``"components"`` (union-find connectivity — fast,
but a single spurious edge merges two families) and ``"mcl"`` (sparse
Markov clustering on the SpGEMM kernel registry — separates families that
connectivity over-merges, at the cost of a few sparse matrix products).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mpi.process_grid import is_perfect_square
from ..sparse.kernels import available_kernels, get_kernel, kernel_supports_batch_flops
from .components import connected_components
from .dist import DistMarkovClustering
from .matrix import WEIGHT_TRANSFORMS
from .mcl import MarkovClustering, MclIterationStats
from .quality import ClusterQuality, evaluate_clustering

#: Clustering methods selectable via :attr:`ClusterParams.method`.
CLUSTER_METHODS = ("mcl", "components")


@dataclass
class ClusterParams:
    """Configuration of the post-search clustering stage.

    Attributes
    ----------
    enabled:
        Whether the pipeline appends the clustering stage after the graph
        is accumulated (off by default: the similarity graph itself stays
        the primary output, as in the paper).
    method:
        ``"mcl"`` (Markov clustering) or ``"components"`` (union-find
        connectivity).
    weight_transform:
        How edge attributes become random-walk weights / modularity
        weights (see :data:`repro.graph.matrix.WEIGHT_TRANSFORMS`).
    self_loop_weight:
        Self-loop weight added to every vertex before normalization
        (MCL's oscillation fix; also what makes isolated vertices valid
        columns).
    inflation, max_iterations, prune_threshold, top_k, tolerance:
        The :class:`~repro.graph.mcl.MarkovClustering` knobs (ignored by
        ``"components"``).
    spgemm_backend:
        Registry name of the SpGEMM backend executing MCL expansion;
        ``None`` picks ``"scipy"`` when registered (the plain-semiring
        fast path) and the registry default otherwise.  Results are
        bit-identical either way.
    batch_flops:
        Optional flop budget bounding the expansion's intermediate memory.
        Requires a batching backend: with ``spgemm_backend=None`` the
        resolution switches to ``"gustavson"``; an explicit non-batching
        backend is rejected at validation.
    nprocs:
        Number of virtual ranks the clustering stage runs on (a perfect
        square, as for the search grid).  ``1`` keeps the single-rank
        :class:`~repro.graph.mcl.MarkovClustering`; larger values run
        :class:`~repro.graph.dist.DistMarkovClustering` — the transition
        matrix blocked over the 2D grid, expansion through the blocked
        SUMMA, collectives charged to the ``cluster_comm`` ledger category.
        Results are bit-identical either way.
    overlap:
        Distributed runs only: co-schedule ``expand(b+1)`` with ``prune(b)``
        on the simulated clock (hidden seconds ledgered under
        ``cluster_overlap_hidden``).  Labels are unaffected.
    overlap_depth:
        Speculative depth ``k`` of the distributed overlapped schedule
        (``expand(b+1..b+k)`` in flight behind ``prune(b)``), scheduled
        through the shared :class:`repro.mpi.costmodel.OverlapWindow`
        algebra; ``1`` is the classic slot schedule.  Ignored without
        ``overlap``.
    regularized:
        Regularized MCL (expand against the *original* transition matrix
        each iteration) — the cheap sensitivity option; honored by both the
        single-rank and the distributed driver.
    rmcl_tolerance:
        Flow-balance residual stop criterion for ``regularized`` runs: stop
        when the max per-column L1 change between consecutive iterates
        drops to this value or below (R-MCL iterates balance flow rather
        than reaching idempotency, so the chaos ``tolerance`` rarely fires
        for them).  Honored bit-identically by both drivers; ``0``
        disables.
    """

    enabled: bool = False
    method: str = "mcl"
    weight_transform: str = "ani"
    self_loop_weight: float = 1.0
    inflation: float = 2.0
    max_iterations: int = 60
    prune_threshold: float = 1e-4
    top_k: int | None = None
    tolerance: float = 1e-9
    spgemm_backend: str | None = None
    batch_flops: int | None = None
    nprocs: int = 1
    overlap: bool = False
    overlap_depth: int = 1
    regularized: bool = False
    rmcl_tolerance: float = 0.0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent settings."""
        if self.method not in CLUSTER_METHODS:
            raise ValueError(f"method must be one of {CLUSTER_METHODS}, got {self.method!r}")
        if self.weight_transform not in WEIGHT_TRANSFORMS:
            raise ValueError(
                f"weight_transform must be one of {WEIGHT_TRANSFORMS}, "
                f"got {self.weight_transform!r}"
            )
        if self.self_loop_weight < 0:
            raise ValueError("self_loop_weight must be non-negative")
        if self.inflation <= 1.0:
            raise ValueError("inflation must be > 1")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 <= self.prune_threshold < 1.0:
            raise ValueError("prune_threshold must be in [0, 1)")
        if self.top_k is not None and self.top_k < 1:
            raise ValueError("top_k must be >= 1 (or None)")
        if self.tolerance < 0.0:
            raise ValueError("tolerance must be non-negative")
        if self.rmcl_tolerance < 0.0:
            raise ValueError("rmcl_tolerance must be non-negative (0 disables)")
        if self.overlap_depth < 1:
            raise ValueError("overlap_depth must be >= 1")
        if self.spgemm_backend is not None and self.spgemm_backend not in available_kernels():
            raise ValueError(
                f"spgemm_backend must be one of {available_kernels()} (or None), "
                f"got {self.spgemm_backend!r}"
            )
        if self.batch_flops is not None:
            if self.batch_flops < 1:
                raise ValueError("batch_flops must be >= 1 (or None)")
            if self.spgemm_backend is not None and not kernel_supports_batch_flops(
                get_kernel(self.spgemm_backend)
            ):
                raise ValueError(
                    f"spgemm_backend {self.spgemm_backend!r} does not support "
                    "batch_flops; use 'gustavson' or 'auto' (or leave the "
                    "backend unset) for flop-budgeted expansion"
                )
        if not is_perfect_square(self.nprocs):
            raise ValueError(
                f"nprocs ({self.nprocs}) must be a perfect square (2D grid requirement)"
            )
        if self.nprocs > 1 and self.method != "mcl":
            raise ValueError(
                "distributed clustering (nprocs > 1) is only available for "
                f"method 'mcl', got {self.method!r}"
            )

    def resolve_backend(self) -> str | None:
        """The backend actually used when none is configured explicitly.

        ``"scipy"`` when registered (the plain-semiring fast path) — unless
        a ``batch_flops`` budget is set, which is a request for bounded
        intermediate memory only a batching backend can honor, so
        ``"gustavson"`` is picked instead.
        """
        if self.spgemm_backend is not None:
            return self.spgemm_backend
        if self.batch_flops is not None:
            return "gustavson"
        return "scipy" if "scipy" in available_kernels() else None

    def replace(self, **overrides) -> "ClusterParams":
        """A copy with the given fields replaced."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **overrides)


@dataclass
class ClusteringResult:
    """A clustering of the similarity graph, with provenance and quality.

    ``iterations`` holds per-iteration MCL stats —
    :class:`~repro.graph.mcl.MclIterationStats` for single-rank runs,
    :class:`~repro.graph.dist.DistMclIterationStats` for distributed ones
    (both expose ``flops``, ``pruned_mass`` and ``as_dict``).  ``dist`` is
    the distributed run's per-rank communication/compute summary (grid,
    ledger categories, byte counters, volume model), ``None`` for
    single-rank runs.
    """

    method: str
    labels: np.ndarray
    n_clusters: int
    converged: bool
    n_iterations: int
    quality: ClusterQuality
    iterations: list[MclIterationStats] = field(default_factory=list)
    backend: str | None = None
    nprocs: int = 1
    dist: dict | None = None

    @property
    def total_expand_flops(self) -> int:
        """MCL expansion flops over the whole run (0 for components)."""
        return sum(it.flops for it in self.iterations)

    @property
    def total_pruned_mass(self) -> float:
        """Probability mass discarded by pruning over the whole run."""
        return sum(it.pruned_mass for it in self.iterations)

    def summary(self) -> dict[str, object]:
        """Flat JSON-serializable summary (lands in ``stats.extras``)."""
        out: dict[str, object] = {
            "method": self.method,
            "n_clusters": self.n_clusters,
            "converged": self.converged,
            "n_iterations": self.n_iterations,
            "total_expand_flops": self.total_expand_flops,
            "total_pruned_mass": self.total_pruned_mass,
        }
        if self.backend is not None:
            out["backend"] = self.backend
        if self.nprocs > 1:
            out["nprocs"] = self.nprocs
        if self.dist is not None:
            out["dist"] = dict(self.dist)
        out.update(self.quality.as_dict())
        return out


def cluster_similarity_graph(graph, params: ClusterParams | None = None) -> ClusteringResult:
    """Cluster a similarity graph into protein families.

    ``graph`` is a :class:`~repro.core.similarity_graph.SimilarityGraph`
    (or anything duck-typing its ``n_vertices``/``edges``); ``params``
    defaults to MCL with the standard knobs.
    """
    params = params if params is not None else ClusterParams()
    params.validate()
    if params.method == "components":
        labels = connected_components(graph)
        return ClusteringResult(
            method="components",
            labels=labels,
            n_clusters=int(labels.max()) + 1 if labels.size else 0,
            converged=True,
            n_iterations=0,
            quality=evaluate_clustering(graph, labels, params.weight_transform),
        )
    backend = params.resolve_backend()
    if params.nprocs > 1:
        dist_mcl = DistMarkovClustering(
            nprocs=params.nprocs,
            inflation=params.inflation,
            max_iterations=params.max_iterations,
            prune_threshold=params.prune_threshold,
            top_k=params.top_k,
            tolerance=params.tolerance,
            spgemm_backend=backend,
            batch_flops=params.batch_flops,
            overlap=params.overlap,
            overlap_depth=params.overlap_depth,
            regularized=params.regularized,
            rmcl_tolerance=params.rmcl_tolerance,
        )
        dist_result = dist_mcl.fit_graph(
            graph,
            transform=params.weight_transform,
            self_loop_weight=params.self_loop_weight,
        )
        dist_stats = dist_result.comm_stats()
        dist_stats["total_seconds"] = dist_result.total_seconds()
        return ClusteringResult(
            method="mcl",
            labels=dist_result.labels,
            n_clusters=dist_result.n_clusters,
            converged=dist_result.converged,
            n_iterations=dist_result.n_iterations,
            quality=evaluate_clustering(graph, dist_result.labels, params.weight_transform),
            iterations=dist_result.iterations,
            backend=backend if isinstance(backend, str) else None,
            nprocs=params.nprocs,
            dist=dist_stats,
        )
    mcl = MarkovClustering(
        inflation=params.inflation,
        max_iterations=params.max_iterations,
        prune_threshold=params.prune_threshold,
        top_k=params.top_k,
        tolerance=params.tolerance,
        spgemm_backend=backend,
        batch_flops=params.batch_flops,
        regularized=params.regularized,
        rmcl_tolerance=params.rmcl_tolerance,
    )
    result = mcl.fit_graph(
        graph, transform=params.weight_transform, self_loop_weight=params.self_loop_weight
    )
    return ClusteringResult(
        method="mcl",
        labels=result.labels,
        n_clusters=result.n_clusters,
        converged=result.converged,
        n_iterations=result.n_iterations,
        quality=evaluate_clustering(graph, result.labels, params.weight_transform),
        iterations=result.iterations,
        backend=backend if isinstance(backend, str) else None,
    )
